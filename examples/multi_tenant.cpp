/**
 * @file
 * Multi-tenant serving: two extreme-classification models
 * time-multiplexed on one ECSSD, each with its own DRAM partition,
 * row-cache quota, deploy epoch, and SLO — the overloaded tenant
 * sheds and browns out its own traffic while its neighbour keeps
 * its latency.
 */

#include <cstdio>

#include "ecssd/multi_tenant.hh"
#include "sim/rng.hh"

using namespace ecssd;

namespace
{

TenantConfig
tenantConfig(const char *name, double p99_target_ms)
{
    TenantConfig config;
    config.name = name;
    config.dramBytes = 64ULL << 20;
    config.cacheQuotaBytes = 4ULL << 20;
    config.p99TargetMs = p99_target_ms;
    return config;
}

} // namespace

int
main()
{
    // One physical device; the builder validates the option set once.
    const EcssdOptions options = EcssdOptions::builder()
                                     .ssd(ssdsim::smallTestConfig())
                                     .threads(1)
                                     .seed(7)
                                     .build();

    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 1024);
    spec.hiddenDim = 128;
    spec.batchSize = 4;
    const xclass::SyntheticModel ranker(spec, 11);
    const xclass::SyntheticModel ads(spec, 23);

    // Two tenants on the shared device.  Each lane's DRAM budget is
    // its partition and its row cache is sized to its quota, so one
    // tenant can never evict the other's rows.
    MultiTenantServer device(options);
    const TenantHandle a =
        device.addTenant(tenantConfig("ranker", 5.0),
                         ranker.weights(), spec, ServerConfig{},
                         &ranker.basis());
    const TenantHandle b =
        device.addTenant(tenantConfig("ads", 1.0), ads.weights(),
                         spec, ServerConfig{}, &ads.basis());
    std::printf("admitted %zu tenants, %llu MiB partitioned\n",
                device.registry().size(),
                (unsigned long long)(device.registry().committedBytes()
                                     >> 20));

    // A calm stream for the ranker, a flood for ads: the mix merges
    // time-ordered onto the shared device clock.
    sim::Rng rng(17);
    std::vector<std::vector<float>> queries;
    for (int q = 0; q < 16; ++q)
        queries.push_back(ranker.sampleQuery(rng));

    sim::TrafficConfig calm;
    calm.ratePerSecond = 2000.0;
    calm.seed = 3;
    sim::TrafficConfig flood;
    flood.ratePerSecond = 50000.0;
    flood.seed = 4;

    device.run({{a, calm, 200}, {b, flood, 2000}}, queries, /*k=*/5);

    for (const TenantHandle t : {a, b}) {
        const InferenceServer &lane = *device.server(t);
        std::printf("tenant %-6s  p99 %7.3f ms  shed %4llu  "
                    "brownout transitions %llu\n",
                    device.registry().entry(t)->config.name.c_str(),
                    lane.latencyPercentiles().p99(),
                    (unsigned long long)
                        lane.serverStats().shedRequests,
                    (unsigned long long)
                        lane.serverStats().brownoutTransitions);
    }
    std::printf("shared device time %.3f ms\n",
                sim::tickToMs(device.deviceTime()));
    return 0;
}
