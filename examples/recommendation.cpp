/**
 * @file
 * Recommendation-serving scenario (the XMLCNN/Amazon-style workload
 * the paper's introduction motivates): a catalog with hundreds of
 * thousands of items, popularity-skewed traffic, and a latency
 * budget per request batch.
 *
 * The example compares the full ECSSD design point against the
 * naive in-storage baseline on the same trace, and reports the
 * accuracy the screening algorithm retains on a functional
 * (down-scaled) replica of the catalog.
 */

#include <cstdio>

#include "ecssd/system.hh"
#include "sim/rng.hh"
#include "xclass/metrics.hh"
#include "xclass/screening.hh"

using namespace ecssd;

int
main()
{
    // --- Serving latency on the full-size catalog (trace tier) ---
    const xclass::BenchmarkSpec catalog =
        xclass::benchmarkByName("XMLCNN-A670K");
    std::printf("Catalog: %llu items, hidden dim %u, %u queries "
                "per batch\n",
                (unsigned long long)catalog.categories,
                catalog.hiddenDim, catalog.batchSize);

    EcssdSystem ecssd(catalog, EcssdOptions::full());
    EcssdSystem baseline(catalog, EcssdOptions::startingBaseline());

    const accel::RunResult fast = ecssd.runInference(4);
    const accel::RunResult slow = baseline.runInference(4);
    std::printf("ECSSD:    %8.2f ms/batch  (channel util %.1f%%)\n",
                fast.meanBatchMs(),
                fast.channelUtilization * 100.0);
    std::printf("baseline: %8.2f ms/batch  (channel util %.1f%%)\n",
                slow.meanBatchMs(),
                slow.channelUtilization * 100.0);
    std::printf("speedup:  %8.2fx\n",
                slow.meanBatchMs() / fast.meanBatchMs());

    // --- Recommendation quality on a functional replica ----------
    xclass::BenchmarkSpec replica =
        xclass::scaledDown(catalog, 8192);
    replica.hiddenDim = 256;
    const xclass::SyntheticModel model(replica, 11);
    const xclass::ApproximateClassifier classifier(
        model.weights(), replica, 12, &model.basis());

    sim::Rng rng(13);
    double recall10 = 0.0;
    const int requests = 20;
    for (int r = 0; r < requests; ++r) {
        const std::vector<float> user = model.sampleQuery(rng);
        const auto exact = classifier.exact(user, 10);
        const auto approx = classifier.predict(user, 10);
        recall10 += xclass::recall(exact.topCategories,
                                   approx.topCategories);
    }
    std::printf("screened recommendation recall@10: %.1f%% "
                "(over %d requests, %.0f%% of items scored in "
                "full precision)\n",
                100.0 * recall10 / requests, requests,
                100.0 * replica.candidateRatio);
    return 0;
}
