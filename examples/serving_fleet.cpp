/**
 * @file
 * Production-style serving: a request queue in front of one ECSSD
 * (latency percentiles via the InferenceServer), and the Section 7.1
 * scale-out path when the model outgrows one device's DRAM.
 */

#include <cstdio>

#include "ecssd/scale_out.hh"
#include "ecssd/server.hh"
#include "sim/rng.hh"

using namespace ecssd;

int
main()
{
    // --- Single-device serving with a request queue ---------------
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 4096);
    spec.hiddenDim = 256;
    spec.batchSize = 8;
    const xclass::SyntheticModel model(spec, 41);

    InferenceServer server(model.weights(), spec,
                           EcssdOptions::full(), &model.basis());
    sim::Rng rng(42);
    for (int request = 0; request < 64; ++request)
        server.enqueue(model.sampleQuery(rng));

    const auto responses = server.processAll(/*k=*/5);
    std::printf("served %zu requests in %.3f ms of device time\n",
                responses.size(),
                sim::tickToMs(server.deviceTime()));
    std::printf("latency mean %.3f ms, min %.3f, max %.3f "
                "(batching holds early arrivals)\n",
                server.latencyMs().mean(), server.latencyMs().min(),
                server.latencyMs().max());

    // --- Scale-out when the layer outgrows one device --------------
    xclass::BenchmarkSpec huge =
        xclass::benchmarkByName("XMLCNN-S100M");
    huge.categories = 500000000; // the paper's 500M example
    const unsigned devices =
        ScaleOutEcssd::devicesNeeded(huge, 16ULL << 30);
    std::printf("\na 500M-category layer needs %u ECSSDs\n",
                devices);

    // Simulate the fleet on a scaled shard (ratios preserved).
    xclass::BenchmarkSpec scaled = xclass::scaledDown(huge, 327680);
    ScaleOutEcssd fleet(scaled, devices);
    const ScaleOutResult result = fleet.runInference(2);
    std::printf("fleet of %u: %.3f ms/batch, %.1f mJ/batch total\n",
                fleet.devices(), result.meanBatchMs,
                result.totalEnergyUj / 2.0 / 1000.0);

    ScaleOutEcssd single(scaled, 1);
    const ScaleOutResult alone = single.runInference(2);
    std::printf("one device:  %.3f ms/batch  (fleet is %.2fx "
                "faster)\n",
                alone.meanBatchMs,
                alone.meanBatchMs / result.meanBatchMs);
    return 0;
}
