/**
 * @file
 * Production-style serving: a request queue in front of one ECSSD
 * (latency percentiles via the InferenceServer), the Section 7.1
 * scale-out path when the model outgrows one device's DRAM, and the
 * fault-tolerance story — serving through uncorrectable reads via
 * the INT4 screener fallback, and merging over survivors when a
 * fleet device dies mid-run.
 */

#include <cstdio>

#include "ecssd/scale_out.hh"
#include "ecssd/server.hh"
#include "sim/rng.hh"

using namespace ecssd;

int
main()
{
    // --- Single-device serving with a request queue ---------------
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 4096);
    spec.hiddenDim = 256;
    spec.batchSize = 8;
    const xclass::SyntheticModel model(spec, 41);

    InferenceServer server(model.weights(), spec,
                           EcssdOptions::full(), &model.basis());
    sim::Rng rng(42);
    for (int request = 0; request < 64; ++request)
        server.enqueue(model.sampleQuery(rng));

    const auto responses = server.processAll(/*k=*/5);
    std::printf("served %zu requests in %.3f ms of device time\n",
                responses.size(),
                sim::tickToMs(server.deviceTime()));
    std::printf("latency mean %.3f ms, min %.3f, max %.3f "
                "(batching holds early arrivals)\n",
                server.latencyMs().mean(), server.latencyMs().min(),
                server.latencyMs().max());

    // --- Scale-out when the layer outgrows one device --------------
    xclass::BenchmarkSpec huge =
        xclass::benchmarkByName("XMLCNN-S100M");
    huge.categories = 500000000; // the paper's 500M example
    const unsigned devices =
        ScaleOutEcssd::devicesNeeded(huge, 16ULL << 30);
    std::printf("\na 500M-category layer needs %u ECSSDs\n",
                devices);

    // Simulate the fleet on a scaled shard (ratios preserved).
    xclass::BenchmarkSpec scaled = xclass::scaledDown(huge, 327680);
    ScaleOutEcssd fleet(scaled, devices);
    const ScaleOutResult result = fleet.runInference(2);
    std::printf("fleet of %u: %.3f ms/batch, %.1f mJ/batch total\n",
                fleet.devices(), result.meanBatchMs,
                result.totalEnergyUj / 2.0 / 1000.0);

    ScaleOutEcssd single(scaled, 1);
    const ScaleOutResult alone = single.runInference(2);
    std::printf("one device:  %.3f ms/batch  (fleet is %.2fx "
                "faster)\n",
                alone.meanBatchMs,
                alone.meanBatchMs / result.meanBatchMs);

    // --- Serving through media faults ------------------------------
    // Worn flash: 1 in 1000 page reads is uncorrectable. The default
    // ScreenerFallback policy keeps serving — rows on a lost FP32
    // page fall back to their INT4 screener score instead of
    // aborting the batch.
    EcssdOptions worn = EcssdOptions::full();
    worn.ssd.uncorrectableReadRate = 1e-3;
    worn.degradedPolicy =
        accel::DegradedReadPolicy::ScreenerFallback;
    InferenceServer degraded(model.weights(), spec, worn,
                             &model.basis());
    sim::Rng faulty_rng(43);
    for (int request = 0; request < 64; ++request)
        degraded.enqueue(model.sampleQuery(faulty_rng));
    const auto faulty = degraded.processAll(/*k=*/5);
    unsigned degraded_count = 0;
    for (const auto &response : faulty)
        if (response.status
            == InferenceServer::Response::Status::Degraded)
            ++degraded_count;
    std::printf("\nworn flash (1e-3 uncorrectable): served %zu/%zu "
                "requests, %u degraded, %llu rows on screener "
                "score, 0 batches aborted\n",
                faulty.size(), faulty.size(), degraded_count,
                static_cast<unsigned long long>(
                    degraded.serverStats().degradedRows));

    // --- Mid-run device loss in the fleet --------------------------
    // One of four devices dies after its first batch; the host merge
    // proceeds over the three survivors and quantifies the recall
    // lost with the dead shard's category range.
    ScaleOutEcssd lossy(scaled, 4);
    lossy.failShardAfterBatches(2, 1);
    const ScaleOutResult failover = lossy.runInference(3);
    std::printf("device 2 died mid-run: %u/%u shards survive, "
                "%.3f ms/batch, est. recall loss %.1f%%\n",
                failover.survivingDevices, lossy.devices(),
                failover.meanBatchMs,
                failover.recallLossEstimate * 100.0);

    // --- Proactive drain on SMART telemetry ------------------------
    // Same death schedule, but this fleet ages visibly (retention
    // errors accrue with service time), watches each shard's SMART
    // report, and holds a spare.  The degrading shard is
    // re-replicated before the failure can land, so nothing is lost.
    EcssdOptions aging = EcssdOptions::full();
    aging.ssd.retentionErrorCoefficient = 1e-3; // per second
    ScaleOutEcssd watched(scaled, 4, aging);
    watched.runInference(1); // accrue service time / wear
    watched.failShardAfterBatches(0, 1);
    DrainPolicy policy;
    policy.errorRateThreshold = 1e-9;
    watched.setDrainPolicy(policy);
    watched.provisionSpares(1);
    const ScaleOutResult drained = watched.runInference(3);
    std::printf("with SMART drain + 1 spare: %u shard(s) drained, "
                "%u/%u survive, est. recall loss %.1f%%\n",
                drained.drainedShards, drained.survivingDevices,
                watched.devices(),
                drained.recallLossEstimate * 100.0);
    return 0;
}
