/**
 * @file
 * Neural-machine-translation vocabulary scenario (GNMT): the output
 * softmax over a 32K-word vocabulary is the classification layer;
 * decoding needs the top-k logits of every step.
 *
 * The example walks a simulated decode of several steps, runs each
 * step's hidden state through the screened classifier, and checks
 * that the words the full softmax would pick survive screening.  It
 * also shows the device-side step latency of ECSSD vs a CPU host
 * doing the same work over the SSD I/O link.
 */

#include <cstdio>

#include "baselines/baselines.hh"
#include "ecssd/system.hh"
#include "sim/rng.hh"
#include "xclass/metrics.hh"
#include "xclass/screening.hh"

using namespace ecssd;

int
main()
{
    // Functional replica of the GNMT output layer (scaled so the
    // weights fit in memory for the bit-accurate math).
    xclass::BenchmarkSpec vocab = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 8192);
    vocab.hiddenDim = 256;
    const xclass::SyntheticModel model(vocab, 21);
    const xclass::ApproximateClassifier classifier(
        model.weights(), vocab, 22, &model.basis());

    std::printf("Decoding 10 steps over a %llu-word vocabulary...\n",
                (unsigned long long)vocab.categories);
    sim::Rng rng(23);
    double step_recall = 0.0;
    int exact_top1_matches = 0;
    for (int step = 0; step < 10; ++step) {
        // The decoder's hidden state at this step.
        const std::vector<float> hidden = model.sampleQuery(rng);
        const auto exact = classifier.exact(hidden, 8);
        const auto approx = classifier.predict(hidden, 8);
        step_recall += xclass::recall(exact.topCategories,
                                      approx.topCategories);
        exact_top1_matches +=
            exact.topCategories[0] == approx.topCategories[0];
    }
    std::printf("beam candidates recall@8: %.1f%%, "
                "top-1 agreement: %d/10\n",
                10.0 * step_recall, exact_top1_matches);

    // Device-side timing of the full-size vocabulary on ECSSD vs
    // the CPU baseline (weights streamed over the SSD I/O link).
    const xclass::BenchmarkSpec full =
        xclass::benchmarkByName("GNMT-E32K");
    const baselines::BaselineResult ecssd =
        baselines::simulate(baselines::Architecture::Ecssd, full, 2);
    const baselines::BaselineResult cpu = baselines::simulate(
        baselines::Architecture::CpuAp, full, 2);
    std::printf("softmax batch on ECSSD:  %8.3f ms\n",
                ecssd.batchMs);
    std::printf("softmax batch on CPU-AP: %8.3f ms  (%.1fx slower)\n",
                cpu.batchMs, cpu.batchMs / ecssd.batchMs);
    return 0;
}
