/**
 * @file
 * Dual-mode demonstration (Section 4.1): the same device serves
 * block I/O in SSD mode and extreme classification in accelerator
 * mode, with the FTL (mapping, GC, wear) underneath both.
 */

#include <cstdio>

#include "ecssd/api.hh"
#include "sim/rng.hh"
#include "xclass/workload.hh"

using namespace ecssd;

int
main()
{
    EcssdOptions options;
    options.ssd = ssdsim::smallTestConfig();
    options.ssd.channels = 8;
    EcssdApi device(options);

    // --- SSD mode: ordinary block storage -------------------------
    std::printf("[SSD mode] writing 64 pages...\n");
    sim::Tick last_write = 0;
    for (ssdsim::LogicalPage lpa = 0; lpa < 64; ++lpa)
        last_write = device.ssdWrite(lpa);
    std::printf("[SSD mode] last write completed at %.2f us\n",
                sim::tickToUs(last_write));

    // Overwrite a hot range to exercise GC, then read back.
    for (int round = 0; round < 200; ++round)
        device.ssdWrite(round % 4);
    const sim::Tick read_done = device.ssdRead(3);
    const auto &ftl = device.ssdSystem().ssd().ftl();
    std::printf("[SSD mode] read lpa 3 at %.2f us; GC runs: %llu, "
                "write amplification: %.2f\n",
                sim::tickToUs(read_done),
                (unsigned long long)ftl.stats().gcRuns,
                ftl.stats().writeAmplification());

    // --- Accelerator mode: extreme classification ----------------
    std::printf("[accel mode] switching...\n");
    device.ecssdEnable();

    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 2048);
    spec.hiddenDim = 128;
    const xclass::SyntheticModel model(spec, 31);
    device.weightDeploy(model.weights(), spec, &model.basis());

    sim::Rng rng(32);
    std::vector<std::vector<float>> calibration;
    for (int q = 0; q < 4; ++q)
        calibration.push_back(model.sampleQuery(rng));
    device.calibrateThreshold(calibration);

    const std::vector<float> query = model.sampleQuery(rng);
    InferenceSession session = device.beginInference();
    session.sendInt4(query);
    session.sendCfp32(query);
    session.screen();
    session.classify();
    xclass::ApproximateClassifier::Prediction top;
    session.results(3, top);
    std::printf("[accel mode] top-3:");
    for (const std::uint64_t cat : top.topCategories)
        std::printf(" %llu", (unsigned long long)cat);
    std::printf("  (%.3f ms device latency)\n",
                sim::tickToMs(session.latency()));

    // --- Back to SSD mode ------------------------------------------
    device.ecssdDisable();
    const sim::Tick again = device.ssdRead(3);
    std::printf("[SSD mode] data still readable at %.2f us\n",
                sim::tickToUs(again));
    return 0;
}
