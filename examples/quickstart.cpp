/**
 * @file
 * Quickstart: deploy a small classification layer on an ECSSD and
 * run one screened inference through the Table 1 API.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "ecssd/api.hh"
#include "sim/rng.hh"
#include "xclass/workload.hh"

using namespace ecssd;

int
main()
{
    // A 4096-category, 256-dimensional classification layer -- tiny
    // by extreme-classification standards, instant to simulate.
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 4096);
    spec.hiddenDim = 256;

    std::printf("Generating a synthetic %llu x %u classifier...\n",
                (unsigned long long)spec.categories, spec.hiddenDim);
    const xclass::SyntheticModel model(spec, /*seed=*/1);

    // Bring up the device and deploy the weights: the INT4 screener
    // goes to the SSD DRAM, the CFP32 rows go to flash, placed by
    // the learning-based interleaving framework.
    EcssdApi device;
    device.ecssdEnable();
    const sim::Tick deploy_time =
        device.weightDeploy(model.weights(), spec, &model.basis());
    std::printf("Weight deployment: %.2f ms simulated\n",
                sim::tickToMs(deploy_time));

    // Train the screening threshold on a few calibration queries.
    sim::Rng rng(2);
    std::vector<std::vector<float>> calibration;
    for (int q = 0; q < 8; ++q)
        calibration.push_back(model.sampleQuery(rng));
    device.calibrateThreshold(calibration);

    // One inference: send the projected INT4 input and the
    // pre-aligned CFP32 input, screen, classify, fetch results.
    const std::vector<float> query = model.sampleQuery(rng);
    device.int4InputSend(query);
    device.cfp32InputSend(query);
    device.int4Screen();
    std::printf("Screener kept %zu / %llu categories (%.1f%%)\n",
                device.lastCandidateCount(),
                (unsigned long long)spec.categories,
                100.0 * device.lastCandidateCount()
                    / spec.categories);
    device.cfp32Classify();

    const auto prediction = device.getResults(5);
    std::printf("Top-5 categories:");
    for (std::size_t i = 0; i < prediction.topCategories.size();
         ++i)
        std::printf(" %llu (%.3f)",
                    (unsigned long long)prediction.topCategories[i],
                    prediction.topScores[i]);
    std::printf("\nDevice-side inference latency: %.3f ms\n",
                sim::tickToMs(device.lastInferenceLatency()));
    return 0;
}
