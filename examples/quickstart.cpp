/**
 * @file
 * Quickstart: deploy a small classification layer on an ECSSD and
 * run one screened inference through an explicit InferenceSession
 * (the Status-reporting form of the Table 1 calls).
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>
#include <cstdlib>

#include "ecssd/api.hh"
#include "sim/rng.hh"
#include "xclass/workload.hh"

using namespace ecssd;

namespace
{

/** Die with the failing call's status instead of limping on. */
void
require(Status status, const char *call)
{
    if (status != Status::Ok) {
        std::fprintf(stderr, "%s failed: %s\n", call,
                     toString(status));
        std::exit(1);
    }
}

} // namespace

int
main()
{
    // A 4096-category, 256-dimensional classification layer -- tiny
    // by extreme-classification standards, instant to simulate.
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 4096);
    spec.hiddenDim = 256;

    std::printf("Generating a synthetic %llu x %u classifier...\n",
                (unsigned long long)spec.categories, spec.hiddenDim);
    const xclass::SyntheticModel model(spec, /*seed=*/1);

    // Bring up the device and deploy the weights: the INT4 screener
    // goes to the SSD DRAM, the CFP32 rows go to flash, placed by
    // the learning-based interleaving framework.
    EcssdApi device;
    device.ecssdEnable();
    const sim::Tick deploy_time =
        device.weightDeploy(model.weights(), spec, &model.basis());
    std::printf("Weight deployment: %.2f ms simulated\n",
                sim::tickToMs(deploy_time));

    // Train the screening threshold on a few calibration queries.
    sim::Rng rng(2);
    std::vector<std::vector<float>> calibration;
    for (int q = 0; q < 8; ++q)
        calibration.push_back(model.sampleQuery(rng));
    device.calibrateThreshold(calibration);

    // One inference, held in an explicit session: send the projected
    // INT4 input and the pre-aligned CFP32 input, screen, classify,
    // fetch results.  Each call reports misuse through its Status
    // (the free-form device.int4InputSend(...) etc. still work but
    // are deprecated in favour of sessions).
    const std::vector<float> query = model.sampleQuery(rng);
    InferenceSession session = device.beginInference();
    require(session.sendInt4(query), "sendInt4");
    require(session.sendCfp32(query), "sendCfp32");
    require(session.screen(), "screen");
    std::printf("Screener kept %zu / %llu categories (%.1f%%)\n",
                session.candidateCount(),
                (unsigned long long)spec.categories,
                100.0 * session.candidateCount()
                    / spec.categories);
    require(session.classify(), "classify");

    xclass::ApproximateClassifier::Prediction prediction;
    require(session.results(5, prediction), "results");
    std::printf("Top-5 categories:");
    for (std::size_t i = 0; i < prediction.topCategories.size();
         ++i)
        std::printf(" %llu (%.3f)",
                    (unsigned long long)prediction.topCategories[i],
                    prediction.topScores[i]);
    std::printf("\nDevice-side inference latency: %.3f ms\n",
                sim::tickToMs(session.latency()));
    return 0;
}
