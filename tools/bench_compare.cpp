/**
 * @file
 * Bench-baseline comparator: the CI perf-regression gate.
 *
 *   bench-compare BASELINE.json CURRENT.json
 *       [--latency-tol FRACTION] [--counter-tol FRACTION]
 *
 * Both files are flat JSON baselines as written by bench_smoke
 * ({"latency": {...}, "counters": {...}}).  Every key of BASELINE
 * must exist in CURRENT and sit within its tolerance — 10% for
 * "latency." keys, 1% for everything else by default (see
 * src/sim/baseline.hh).  Exit 0 = within tolerance, 1 = drift or
 * missing metrics, 2 = usage/IO error.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/baseline.hh"
#include "sim/json.hh"

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream is(path);
    if (!is) {
        std::fprintf(stderr, "bench-compare: cannot read '%s'\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return buffer.str();
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    ecssd::sim::BaselineTolerance tolerance;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--latency-tol") == 0
            && i + 1 < argc) {
            tolerance.latency = std::strtod(argv[++i], nullptr);
        } else if (std::strcmp(argv[i], "--counter-tol") == 0
                   && i + 1 < argc) {
            tolerance.counter = std::strtod(argv[++i], nullptr);
        } else {
            files.push_back(argv[i]);
        }
    }
    if (files.size() != 2) {
        std::fprintf(stderr,
                     "usage: %s BASELINE.json CURRENT.json "
                     "[--latency-tol F] [--counter-tol F]\n",
                     argv[0]);
        return 2;
    }

    const auto baseline =
        ecssd::sim::parseFlatJson(readFile(files[0]));
    const auto current =
        ecssd::sim::parseFlatJson(readFile(files[1]));

    // A baseline with nothing to gate on would "pass" every run —
    // the classic silent failure when a rename or a truncated
    // regeneration empties it.  Treat it as a hard error so CI can
    // never go green on a vacuous comparison.
    std::size_t gated = 0;
    for (const auto &[key, value] : baseline) {
        (void)value;
        if (!ecssd::sim::isTrendKey(key))
            ++gated;
    }
    if (gated == 0) {
        std::fprintf(stderr,
                     "bench-compare: baseline '%s' has no gateable "
                     "metrics (%zu keys, all trend-only or none); "
                     "regenerate it before gating on it\n",
                     files[0].c_str(), baseline.size());
        return 1;
    }

    const std::vector<std::string> failures =
        ecssd::sim::compareBaselines(baseline, current, tolerance);
    if (failures.empty()) {
        std::printf("bench-compare: %zu metrics within tolerance "
                    "(latency %.0f%%, counter %.0f%%)\n",
                    gated, tolerance.latency * 100.0,
                    tolerance.counter * 100.0);
        return 0;
    }
    // Split the diff: a metric that vanished is a different bug (a
    // dropped instrument or renamed key) than one that drifted, and
    // the fix for each is different.
    std::size_t missing = 0;
    for (const std::string &failure : failures) {
        if (failure.rfind("missing metric", 0) == 0)
            ++missing;
    }
    std::fprintf(stderr,
                 "bench-compare: %zu of %zu gated metrics failed "
                 "(%zu missing from current, %zu drifted):\n",
                 failures.size(), gated, missing,
                 failures.size() - missing);
    for (const std::string &failure : failures)
        std::fprintf(stderr, "  %s\n", failure.c_str());
    return 1;
}
