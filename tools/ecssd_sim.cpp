/**
 * @file
 * Command-line experiment driver: run any benchmark/architecture
 * combination without writing code.
 *
 *   ecssd_sim --benchmark GNMT-E32K --layout learning --batches 4
 *   ecssd_sim --benchmark XMLCNN-S10M --arch GenStore-AP
 *   ecssd_sim --list
 *   ecssd_sim --benchmark LSTM-W33K --sweep-layouts --energy
 *
 * Options:
 *   --benchmark NAME      Table 3 benchmark (see --list)
 *   --scale N             cap the category count at N
 *   --batches N           inference batches to simulate (default 2)
 *   --layout KIND         sequential | uniform | learning
 *   --mac KIND            naive | skhynix | alignment-free
 *   --int4 PLACE          dram | flash
 *   --no-screening        dense classification (the -N mode)
 *   --no-overlap          disable stage overlap
 *   --arch NAME           simulate a baseline architecture instead
 *   --sweep-layouts       run all three layouts and compare
 *   --energy              print the energy breakdown
 *   --trace CATS          enable trace categories (ftl,pipeline,...)
 *   --seed N              trace/workload seed
 *   --threads N           host-compute worker threads (wall-clock
 *                         only: output is bit-identical for any N)
 *   --isa LEVEL           host-compute SIMD level: auto | scalar |
 *                         vector | avx2 | avx512 (wall-clock only,
 *                         like --threads; ECSSD_ISA overrides)
 *   --cache-mb N          SSD-DRAM hot-row candidate cache capacity
 *                         in MiB (0 = disabled, the default)
 *   --list                list benchmarks and architectures
 *
 * Streaming deploy + background re-layout (MODELING.md Section 15):
 *   --deploy-host-budget-mb N  run an out-of-core streaming weight
 *                         deploy at benchmark scale before the
 *                         inference pass, with transient host bytes
 *                         hard-capped at N MiB (enforced by the
 *                         accounting allocator; 0 = off)
 *   --relayout            enable the background re-layout task: one
 *                         budgeted pass runs after the inference
 *                         batches (needs --cache-mb for the
 *                         observed-frequency feed)
 *   --relayout-threshold F  divergence (1 - observed balance) that
 *                         triggers migration (default 0.25)
 *   --relayout-pages N    migration page budget per pass (64)
 *   --relayout-io-budget F  device-time share of the migration task
 *                         (default 0.2)
 *
 * Reliability model (see docs/MODELING.md, "Wear lifecycle & scrub"):
 *   --uncorrectable-read-rate P   base per-read UECC probability
 *   --read-retry-rate P           per-read retry probability
 *   --erase-failure-rate P        per-erase block-retirement prob.
 *   --wear-coefficient C          erase-count error term weight
 *   --wear-exponent E             erase-count error term exponent
 *   --retention-coefficient C     per-second retention error term
 *   --scrub-threshold P           refresh pages predicted above P
 *   --scrub-budget N              patrol-scrub pages per pass
 *   --wear-level-bound N          erase-spread bound for leveling
 *   --health                      print the device SMART report
 *
 * Observability (see docs/MODELING.md Section 9):
 *   --metrics-json FILE   dump the metrics registry as JSON after the
 *                         run ("-" = stdout, suppressing the normal
 *                         report)
 *   --metrics-prom FILE   Prometheus-style text dump of the registry
 *   --span-log FILE       dump the hierarchical span trace as JSON
 *   --serve-requests N    additionally run a serving pass of N
 *                         requests through the InferenceServer
 *                         (functional tier; needs --scale small
 *                         enough for in-memory weights)
 *
 * Weight hot swap (see docs/MODELING.md Section 12):
 *   --redeploy-at N       during the serving pass, begin a staged
 *                         hot swap to a fresh weight version after
 *                         the first N requests; the swap stages,
 *                         validates, and flips under the remaining
 *                         live traffic (requires --serve-requests)
 *   --redeploy-io-budget F  background staging IO budget as a
 *                         fraction of device bandwidth (default 0.25)
 *
 * Open-loop traffic + overload control (MODELING.md Section 13):
 *   --traffic KIND        drive the serving pass open-loop from a
 *                         deterministic TrafficEngine instead of the
 *                         closed-loop request list; KIND is poisson,
 *                         diurnal, or bursty (requires
 *                         --serve-requests N = arrival count)
 *   --traffic-rate R      base arrival rate, requests/second (1000)
 *   --traffic-burst-mult M  bursty-state rate multiple (8)
 *   --traffic-users N     distinct Zipf-skewed user sessions (1024)
 *   --traffic-gold-fraction F  fraction of users in the Gold class
 *   --traffic-seed N      arrival-process seed (default --seed)
 *   --admission-target-us U  CoDel-style queue-delay admission
 *                         target; estimated sojourn beyond U sheds
 *                         BestEffort arrivals (0 = off)
 *   --brownout-enter-us U    batch sojourn that degrades the ladder
 *                         one rung (0 = ladder off)
 *   --brownout-exit-us U     sojourn at or below this is healthy
 *   --brownout-guard-us U    healthy dwell before recovering a rung
 *   --brownout-reduced-fraction F  candidate budget at the
 *                         ReducedCandidates rung (default 0.5)
 *   --batch-max-wait-us U    dynamic batching: partial batches wait
 *                         up to U for more arrivals (0 = eager)
 *   --retry-jitter F      seeded retry-backoff jitter fraction
 *
 * Multi-tenant serving (MODELING.md Section 16):
 *   --tenant SPEC         admit one tenant for the serving pass;
 *                         repeatable.  SPEC is
 *                         name:dramMb:cacheMb[:p99ms] — the tenant's
 *                         SSD-DRAM partition and row-cache quota in
 *                         MiB, plus an optional serving p99 target
 *                         that derives its admission and brownout
 *                         thresholds.  With tenants the serving pass
 *                         runs every tenant's open-loop stream on
 *                         the shared device (--serve-requests N =
 *                         arrivals per tenant) and reports per
 *                         tenant; metrics land under
 *                         "tenant.<name>.*"
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "baselines/baselines.hh"
#include "ecssd/multi_tenant.hh"
#include "ecssd/server.hh"
#include "ecssd/streaming_deploy.hh"
#include "ecssd/system.hh"
#include "sim/metrics.hh"
#include "sim/rng.hh"
#include "sim/trace.hh"
#include "sim/traffic.hh"

using namespace ecssd;

namespace
{

struct CliOptions
{
    std::string benchmark = "GNMT-E32K";
    std::uint64_t scale = 0;
    unsigned batches = 2;
    std::string arch;
    bool sweepLayouts = false;
    bool energy = false;
    bool health = false;
    std::string metricsJson;
    std::string metricsProm;
    std::string spanLog;
    unsigned serveRequests = 0;
    unsigned redeployAt = 0;
    double redeployIoBudget = 0.25;
    std::string traffic;
    sim::TrafficConfig trafficConfig;
    bool trafficSeedSet = false;
    ServerConfig serverConfig;
    std::vector<TenantConfig> tenants;
    EcssdOptions device = EcssdOptions::full();

    bool
    observability() const
    {
        return !metricsJson.empty() || !metricsProm.empty()
            || !spanLog.empty();
    }
};

[[noreturn]] void
usage(const char *argv0, int code)
{
    std::printf("usage: %s [--benchmark NAME] [--scale N] "
                "[--batches N]\n"
                "  [--layout sequential|uniform|learning]\n"
                "  [--mac naive|skhynix|alignment-free]\n"
                "  [--precision cfp32|cfp16]\n"
                "  [--int4 dram|flash] [--no-screening] "
                "[--no-overlap]\n"
                "  [--arch NAME] [--sweep-layouts] [--energy]\n"
                "  [--trace CATS] [--seed N] [--threads N]\n"
                "  [--isa auto|scalar|vector|avx2|avx512]\n"
                "  [--cache-mb N] [--list]\n"
                "  [--deploy-host-budget-mb N] [--relayout]\n"
                "  [--relayout-threshold F] [--relayout-pages N]\n"
                "  [--relayout-io-budget F]\n"
                "  [--uncorrectable-read-rate P] "
                "[--read-retry-rate P]\n"
                "  [--erase-failure-rate P] [--wear-coefficient C]\n"
                "  [--wear-exponent E] [--retention-coefficient C]\n"
                "  [--scrub-threshold P] [--scrub-budget N]\n"
                "  [--wear-level-bound N] [--health]\n"
                "  [--metrics-json FILE] [--metrics-prom FILE]\n"
                "  [--span-log FILE] [--serve-requests N]\n"
                "  [--redeploy-at N] [--redeploy-io-budget F]\n"
                "  [--traffic poisson|diurnal|bursty] "
                "[--traffic-rate R]\n"
                "  [--traffic-burst-mult M] [--traffic-users N]\n"
                "  [--traffic-gold-fraction F] [--traffic-seed N]\n"
                "  [--admission-target-us U] [--brownout-enter-us U]\n"
                "  [--brownout-exit-us U] [--brownout-guard-us U]\n"
                "  [--brownout-reduced-fraction F]\n"
                "  [--batch-max-wait-us U] [--retry-jitter F]\n"
                "  [--tenant name:dramMb:cacheMb[:p99ms]]...\n",
                argv0);
    std::exit(code);
}

void
listTargets()
{
    std::printf("benchmarks:\n");
    for (const xclass::BenchmarkSpec &spec :
         xclass::table3Benchmarks())
        std::printf("  %-20s L=%-11llu D=%u\n", spec.name.c_str(),
                    (unsigned long long)spec.categories,
                    spec.hiddenDim);
    std::printf("architectures:\n  ECSSD\n");
    for (const baselines::Architecture arch :
         baselines::allBaselines())
        std::printf("  %s\n", baselines::toString(arch).c_str());
}

layout::LayoutKind
parseLayout(const std::string &value)
{
    if (value == "sequential")
        return layout::LayoutKind::Sequential;
    if (value == "uniform")
        return layout::LayoutKind::Uniform;
    if (value == "learning")
        return layout::LayoutKind::LearningAdaptive;
    sim::fatal("unknown layout '", value, "'");
}

sim::ArrivalProcess
parseTrafficProcess(const std::string &value)
{
    if (value == "poisson")
        return sim::ArrivalProcess::Poisson;
    if (value == "diurnal")
        return sim::ArrivalProcess::Diurnal;
    if (value == "bursty")
        return sim::ArrivalProcess::BurstySpike;
    sim::fatal("unknown traffic process '", value,
               "' (poisson|diurnal|bursty)");
}

/** Parse one --tenant SPEC: name:dramMb:cacheMb[:p99ms]. */
TenantConfig
parseTenantSpec(const std::string &value)
{
    std::vector<std::string> fields;
    std::string::size_type start = 0;
    while (start <= value.size()) {
        const std::string::size_type colon = value.find(':', start);
        if (colon == std::string::npos) {
            fields.push_back(value.substr(start));
            break;
        }
        fields.push_back(value.substr(start, colon - start));
        start = colon + 1;
    }
    if (fields.size() < 3 || fields.size() > 4)
        sim::fatal("--tenant needs name:dramMb:cacheMb[:p99ms], "
                   "got '", value, "'");
    TenantConfig config;
    config.name = fields[0];
    config.dramBytes =
        std::strtoull(fields[1].c_str(), nullptr, 10) << 20;
    config.cacheQuotaBytes =
        std::strtoull(fields[2].c_str(), nullptr, 10) << 20;
    if (fields.size() == 4)
        config.p99TargetMs = std::strtod(fields[3].c_str(), nullptr);
    config.validate();
    return config;
}

circuit::FpMacKind
parseMac(const std::string &value)
{
    if (value == "naive")
        return circuit::FpMacKind::Naive;
    if (value == "skhynix")
        return circuit::FpMacKind::SkHynix;
    if (value == "alignment-free")
        return circuit::FpMacKind::AlignmentFree;
    sim::fatal("unknown MAC kind '", value, "'");
}

void
printHealth(const EcssdSystem &system, sim::Tick now)
{
    const ssdsim::HealthReport h = system.health(now);
    std::printf(
        "  health: life %.1f%%  erase min/mean/max %llu/%.1f/%llu  "
        "spare blocks %llu  bad %llu%s\n"
        "          scrub: %llu pages, %llu refreshed, "
        "%llu uncorrectable  wear-level moves %llu\n"
        "          media: %llu reads, %llu uncorrectable "
        "(observed %.2e, predicted %.2e)\n",
        h.lifeRemaining * 100.0,
        (unsigned long long)h.minEraseCount, h.meanEraseCount,
        (unsigned long long)h.maxEraseCount,
        (unsigned long long)h.spareBlocks,
        (unsigned long long)h.badBlocks,
        h.readOnly ? "  READ-ONLY" : "",
        (unsigned long long)h.scrubbedPages,
        (unsigned long long)h.scrubRelocations,
        (unsigned long long)h.scrubUncorrectable,
        (unsigned long long)h.wearLevelMoves,
        (unsigned long long)h.mediaReads,
        (unsigned long long)h.mediaUncorrectable,
        h.observedErrorRate, h.predictedErrorRate);
    std::printf("          serving: deploy epoch %llu  "
                "weight version %llu\n",
                (unsigned long long)h.deployEpoch,
                (unsigned long long)h.weightVersion);
}

void
report(const xclass::BenchmarkSpec &spec, const EcssdOptions &options,
       unsigned batches, bool energy, bool health,
       sim::MetricsRegistry *metrics = nullptr,
       sim::SpanTracer *spans = nullptr, bool quiet = false)
{
    EcssdSystem system(spec, options);
    system.attachObservability(metrics, spans);

    // Out-of-core streaming deploy demo: build the learning-adaptive
    // placement at benchmark scale from a procedural row source,
    // host bytes hard-capped at the configured budget.
    StreamingDeployResult streamed;
    if (options.deployHostBudgetBytes > 0) {
        const SyntheticRowSource rows(spec.categories,
                                      spec.hiddenDim, options.seed);
        StreamingDeployConfig config;
        config.hostBudgetBytes = options.deployHostBudgetBytes;
        config.rowBytes = spec.rowBytes();
        config.seed = options.seed;
        streamed = streamingWeightDeploy(
            rows, spec.shrunkDim(), options.ssd.channels,
            options.ssd, config);
        if (metrics) {
            metrics->gaugeSet("deploy.streaming_ms",
                              sim::tickToMs(streamed.deployTime));
            metrics->gaugeSet(
                "deploy.host_peak_bytes",
                static_cast<double>(streamed.hostPeakBytes));
            metrics->gaugeSet(
                "deploy.host_budget_bytes",
                static_cast<double>(streamed.hostBudgetBytes));
            metrics->gaugeSet(
                "deploy.runs_spilled",
                static_cast<double>(streamed.runsSpilled));
        }
    }

    const accel::RunResult result = system.runInference(batches);

    // Background re-layout: one budgeted pass on the traffic the
    // batches just generated.
    if (options.relayout.enabled)
        system.relayoutStep(result.totalTime);

    if (metrics) {
        system.publishMetrics(*metrics, result);
        system.publishRelayoutMetrics(*metrics);
    }
    if (quiet)
        return;
    std::printf("%-20s %-55s %10.3f ms/batch  util %5.1f%%  "
                "%6.1f GFLOPS\n",
                spec.name.c_str(), describe(options).c_str(),
                result.meanBatchMs(),
                result.channelUtilization * 100.0,
                result.effectiveGflops);
    if (options.cache.enabled()) {
        std::printf("  cache: hit-rate %5.1f%%  (%llu hit / %llu "
                    "miss candidate rows)\n",
                    result.cacheHitRate() * 100.0,
                    (unsigned long long)result.cacheHitRows,
                    (unsigned long long)result.cacheMissRows);
    }
    if (options.deployHostBudgetBytes > 0) {
        std::printf(
            "  deploy: streaming %.3f ms  host peak %.2f MiB "
            "(budget %.2f MiB)  %llu runs spilled  "
            "%llu/%llu spill pages w/r\n",
            sim::tickToMs(streamed.deployTime),
            static_cast<double>(streamed.hostPeakBytes)
                / (1 << 20),
            static_cast<double>(streamed.hostBudgetBytes)
                / (1 << 20),
            (unsigned long long)streamed.runsSpilled,
            (unsigned long long)streamed.spillPagesWritten,
            (unsigned long long)streamed.spillPagesRead);
    }
    if (options.relayout.enabled) {
        const RelayoutStats &rs = system.relayoutStats();
        std::printf(
            "  relayout: divergence %.3f  migrated %llu groups "
            "(%llu pages)  balance %.3f\n",
            rs.lastDivergence,
            (unsigned long long)rs.rowsMigrated,
            (unsigned long long)rs.pagesMoved,
            rs.recoveredBalance);
    }
    if (energy) {
        const circuit::EnergyBreakdown e =
            system.estimateRunEnergy(result);
        std::printf(
            "  energy: total %.2f mJ  (flash %.1f%%, dram %.1f%%, "
            "link %.1f%%, accel %.1f%%, background %.1f%%)\n",
            e.totalUj() / 1000.0, e.flashUj / e.totalUj() * 100.0,
            e.dramUj / e.totalUj() * 100.0,
            e.hostLinkUj / e.totalUj() * 100.0,
            e.acceleratorUj / e.totalUj() * 100.0,
            e.backgroundUj / e.totalUj() * 100.0);
    }
    if (health)
        printHealth(system, result.totalTime);
}

/**
 * Open-loop traffic pass: drive the server from a deterministic
 * TrafficEngine under the full overload-control stack, then print
 * the goodput / shed / brownout summary.
 */
void
runTrafficPass(InferenceServer &server, const CliOptions &cli,
               const xclass::SyntheticModel &model)
{
    // A small deterministic query pool; each arrival's querySeed
    // picks one, so user sessions replay identical sequences.
    std::vector<std::vector<float>> queries;
    sim::Rng qrng(cli.device.seed);
    for (int q = 0; q < 32; ++q)
        queries.push_back(model.sampleQuery(qrng));

    sim::TrafficEngine engine(cli.trafficConfig);
    const auto responses =
        server.runTraffic(engine, cli.serveRequests, queries, 5);

    const ServerStats &stats = server.serverStats();
    std::uint64_t served = 0;
    for (const auto &response : responses)
        if (response.status != InferenceServer::Response::Status::Shed)
            ++served;
    const double elapsed = sim::tickToSeconds(server.deviceTime());
    const double goodput =
        elapsed > 0.0 ? static_cast<double>(stats.okResponses
                                            + stats.degradedResponses)
                / elapsed
                      : 0.0;
    std::printf(
        "  traffic: %s  %.0f req/s offered  %llu arrivals  "
        "%llu served  %llu shed (gold %llu, best-effort %llu)\n"
        "  overload: goodput %.0f req/s  latency p50/p99 "
        "%.3f/%.3f ms  brownout transitions %llu\n"
        "  brownout dwell ms: full %.2f  reduced %.2f  screener "
        "%.2f  shed %.2f\n",
        sim::toString(cli.trafficConfig.process),
        cli.trafficConfig.ratePerSecond,
        (unsigned long long)responses.size(),
        (unsigned long long)served,
        (unsigned long long)stats.shedRequests,
        (unsigned long long)stats.shedGold,
        (unsigned long long)stats.shedBestEffort, goodput,
        server.latencyPercentiles().p50(),
        server.latencyPercentiles().p99(),
        (unsigned long long)stats.brownoutTransitions,
        sim::tickToMs(server.brownoutDwell(BrownoutLevel::Full)),
        sim::tickToMs(
            server.brownoutDwell(BrownoutLevel::ReducedCandidates)),
        sim::tickToMs(
            server.brownoutDwell(BrownoutLevel::ScreenerOnly)),
        sim::tickToMs(server.brownoutDwell(BrownoutLevel::Shed)));
}

/**
 * Functional-tier serving pass: synthesize in-memory weights, push
 * @p requests queries through an InferenceServer, and record the
 * "server.*" metrics.  Skipped (with a warning) when the weights
 * would not fit a reasonable host footprint — use --scale.
 */
void
runServingPass(const xclass::BenchmarkSpec &spec,
               const CliOptions &cli, sim::MetricsRegistry *metrics,
               sim::SpanTracer *spans)
{
    const EcssdOptions &options = cli.device;
    const unsigned requests = cli.serveRequests;
    const unsigned redeploy_at = cli.redeployAt;
    const double redeploy_io_budget = cli.redeployIoBudget;
    constexpr std::uint64_t kMaxWeightBytes = 256ULL << 20;
    if (spec.fp32WeightBytes() > kMaxWeightBytes) {
        sim::warn("--serve-requests skipped: ", spec.name,
                  " weights (", spec.fp32WeightBytes(),
                  " bytes) exceed the in-memory serving limit; "
                  "use --scale");
        return;
    }
    xclass::SyntheticModel model(spec, options.seed);
    // serverConfig defaults are all-off, so a plain closed-loop pass
    // is byte-identical to the pre-overload-control behaviour.
    InferenceServer server(model.weights(), spec, options, nullptr,
                           cli.serverConfig);
    server.attachObservability(metrics, spans);
    sim::Rng rng(options.seed);

    if (!cli.traffic.empty()) {
        // Open-loop mode: an optional hot swap is begun up front (a
        // short closed-loop warm-up fills the validation replay
        // ring), then the traffic stream steps it through staging.
        std::unique_ptr<xclass::SyntheticModel> next_model;
        if (redeploy_at > 0) {
            for (unsigned r = 0; r < std::min(redeploy_at, 16u); ++r)
                server.enqueue(model.sampleQuery(rng));
            server.processAll(5);
            next_model = std::make_unique<xclass::SyntheticModel>(
                spec, options.seed + 1);
            RedeployConfig config;
            config.ioBudgetFraction = redeploy_io_budget;
            config.minValidationRecall = 0.0;
            const Status begun = server.beginRedeploy(
                next_model->weights(), spec, config);
            if (begun != Status::Ok)
                sim::warn("--redeploy-at: beginRedeploy returned ",
                          toString(begun));
        }
        runTrafficPass(server, cli, model);
        if (redeploy_at > 0) {
            const RedeployStatus status = server.redeployStatus();
            std::printf("  redeploy: %s  staged %llu/%llu bytes  "
                        "version %llu\n",
                        toString(status.phase),
                        (unsigned long long)status.stagedBytes,
                        (unsigned long long)status.totalBytes,
                        (unsigned long long)server.weightVersion());
        }
        if (metrics)
            server.publishMetrics(*metrics);
        return;
    }

    // Optional hot swap: serve the first --redeploy-at requests on
    // the initial version, begin the staged swap to a fresh weight
    // version, then serve the rest while the swap stages, validates,
    // and flips underneath them.
    std::unique_ptr<xclass::SyntheticModel> next_model;
    const unsigned before =
        redeploy_at > 0 ? std::min(redeploy_at, requests) : requests;
    for (unsigned r = 0; r < before; ++r)
        server.enqueue(model.sampleQuery(rng));
    server.processAll(5);
    if (redeploy_at > 0) {
        next_model = std::make_unique<xclass::SyntheticModel>(
            spec, options.seed + 1);
        RedeployConfig config;
        config.ioBudgetFraction = redeploy_io_budget;
        // The swap target is a freshly-synthesized model, which
        // shares no screening structure with the serving one — a
        // recall gate would always roll the demo back.  Production
        // swaps (retrained weights) keep the default gate.
        config.minValidationRecall = 0.0;
        const Status begun = server.beginRedeploy(
            next_model->weights(), spec, config);
        if (begun != Status::Ok)
            sim::warn("--redeploy-at: beginRedeploy returned ",
                      toString(begun));
        for (unsigned r = before; r < requests; ++r)
            server.enqueue(model.sampleQuery(rng));
        server.processAll(5);
        const RedeployStatus status = server.redeployStatus();
        std::printf("  redeploy: %s%s%s  staged %llu/%llu bytes  "
                    "recall %.3f  epoch %llu -> %llu  version %llu\n",
                    toString(status.phase),
                    status.reason == RollbackReason::None ? ""
                                                          : "  ",
                    status.reason == RollbackReason::None
                        ? ""
                        : toString(status.reason),
                    (unsigned long long)status.stagedBytes,
                    (unsigned long long)status.totalBytes,
                    status.validationRecall,
                    (unsigned long long)status.oldEpoch,
                    (unsigned long long)server.deployEpoch(),
                    (unsigned long long)server.weightVersion());
    }
    if (metrics)
        server.publishMetrics(*metrics);
}

/**
 * Multi-tenant serving pass: one model and one open-loop stream per
 * --tenant, all lanes time-multiplexed on the shared device.  Each
 * tenant's metrics land under "tenant.<name>.*"; the report is one
 * line per tenant so noisy-neighbor containment is visible at a
 * glance.
 */
void
runMultiTenantPass(const xclass::BenchmarkSpec &spec,
                   const CliOptions &cli,
                   sim::MetricsRegistry *metrics,
                   sim::SpanTracer *spans)
{
    constexpr std::uint64_t kMaxWeightBytes = 256ULL << 20;
    if (spec.fp32WeightBytes() > kMaxWeightBytes) {
        sim::warn("--tenant serving skipped: ", spec.name,
                  " weights (", spec.fp32WeightBytes(),
                  " bytes) exceed the in-memory serving limit; "
                  "use --scale");
        return;
    }

    MultiTenantServer device(cli.device);
    device.attachObservability(metrics, spans);
    std::vector<std::unique_ptr<xclass::SyntheticModel>> models;
    std::vector<MultiTenantServer::TenantTraffic> mix;
    std::vector<std::vector<float>> queries;
    for (std::size_t t = 0; t < cli.tenants.size(); ++t) {
        models.push_back(std::make_unique<xclass::SyntheticModel>(
            spec, cli.device.seed + t));
        Status status = Status::Ok;
        const TenantHandle handle = device.addTenant(
            cli.tenants[t], models.back()->weights(), spec,
            cli.serverConfig, &models.back()->basis(), &status);
        if (status != Status::Ok)
            sim::fatal("--tenant ", cli.tenants[t].name,
                       " refused: ", toString(status));
        sim::TrafficConfig traffic = cli.trafficConfig;
        traffic.seed = cli.trafficConfig.seed + t;
        mix.push_back({handle, traffic, cli.serveRequests});
    }
    sim::Rng rng(cli.device.seed);
    for (int q = 0; q < 16; ++q)
        queries.push_back(models.front()->sampleQuery(rng));

    const auto outcomes = device.run(mix, queries, /*k=*/5);
    std::printf("  multi-tenant serving: %zu tenants  %u arrivals "
                "each  shared device time %.3f ms\n",
                cli.tenants.size(), cli.serveRequests,
                sim::tickToMs(device.deviceTime()));
    for (std::size_t t = 0; t < outcomes.size(); ++t) {
        const InferenceServer &lane = *device.server(mix[t].tenant);
        const ServerStats &stats = lane.serverStats();
        char target[48] = "";
        if (cli.tenants[t].p99TargetMs > 0.0)
            std::snprintf(target, sizeof(target),
                          " (target %.1f ms)",
                          cli.tenants[t].p99TargetMs);
        std::printf("  tenant %-12s p50/p99 %7.3f/%7.3f ms%s  "
                    "shed %llu  brownout transitions %llu\n",
                    outcomes[t].name.c_str(),
                    lane.latencyPercentiles().p50(),
                    lane.latencyPercentiles().p99(), target,
                    (unsigned long long)stats.shedRequests,
                    (unsigned long long)stats.brownoutTransitions);
    }
    if (metrics)
        device.publishMetrics(*metrics);
}

/** Write @p write's output to @p path ("-" = stdout). */
template <typename WriteFn>
void
writeDump(const std::string &path, WriteFn &&write)
{
    if (path == "-") {
        write(std::cout);
        return;
    }
    std::ofstream os(path);
    if (!os)
        sim::fatal("cannot open '", path, "' for writing");
    write(os);
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&](const char *name) -> std::string {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", name);
                usage(argv[0], 2);
            }
            return argv[++i];
        };
        if (arg == "--help" || arg == "-h") {
            usage(argv[0], 0);
        } else if (arg == "--list") {
            listTargets();
            return 0;
        } else if (arg == "--benchmark") {
            cli.benchmark = next("--benchmark");
        } else if (arg == "--scale") {
            cli.scale = std::strtoull(next("--scale").c_str(),
                                      nullptr, 10);
        } else if (arg == "--batches") {
            cli.batches = static_cast<unsigned>(
                std::strtoul(next("--batches").c_str(), nullptr,
                             10));
        } else if (arg == "--layout") {
            cli.device.layoutKind = parseLayout(next("--layout"));
        } else if (arg == "--mac") {
            cli.device.fpKind = parseMac(next("--mac"));
        } else if (arg == "--precision") {
            const std::string value = next("--precision");
            cli.device.weightPrecision = value == "cfp16"
                ? accel::WeightPrecision::Cfp16
                : accel::WeightPrecision::Cfp32;
        } else if (arg == "--int4") {
            const std::string value = next("--int4");
            cli.device.int4Placement = value == "dram"
                ? accel::Int4Placement::Dram
                : accel::Int4Placement::Flash;
        } else if (arg == "--no-screening") {
            cli.device.screening = false;
        } else if (arg == "--no-overlap") {
            cli.device.overlapStages = false;
        } else if (arg == "--arch") {
            cli.arch = next("--arch");
        } else if (arg == "--sweep-layouts") {
            cli.sweepLayouts = true;
        } else if (arg == "--energy") {
            cli.energy = true;
        } else if (arg == "--trace") {
            sim::enableTraceCategories(next("--trace"));
        } else if (arg == "--seed") {
            cli.device.seed = std::strtoull(
                next("--seed").c_str(), nullptr, 10);
        } else if (arg == "--threads") {
            cli.device.threads = static_cast<unsigned>(
                std::strtoul(next("--threads").c_str(), nullptr,
                             10));
        } else if (arg == "--isa") {
            cli.device.isa = next("--isa");
        } else if (arg == "--cache-mb") {
            cli.device.cache.capacityBytes =
                std::strtoull(next("--cache-mb").c_str(), nullptr,
                              10)
                << 20;
        } else if (arg == "--deploy-host-budget-mb") {
            cli.device.deployHostBudgetBytes = std::strtoull(
                next("--deploy-host-budget-mb").c_str(), nullptr,
                10)
                << 20;
        } else if (arg == "--relayout") {
            cli.device.relayout.enabled = true;
        } else if (arg == "--relayout-threshold") {
            cli.device.relayout.enabled = true;
            cli.device.relayout.divergenceThreshold = std::strtod(
                next("--relayout-threshold").c_str(), nullptr);
        } else if (arg == "--relayout-pages") {
            cli.device.relayout.enabled = true;
            cli.device.relayout.pageBudget =
                static_cast<unsigned>(std::strtoul(
                    next("--relayout-pages").c_str(), nullptr, 10));
        } else if (arg == "--relayout-io-budget") {
            cli.device.relayout.enabled = true;
            cli.device.relayout.ioBudgetFraction = std::strtod(
                next("--relayout-io-budget").c_str(), nullptr);
        } else if (arg == "--uncorrectable-read-rate") {
            cli.device.ssd.uncorrectableReadRate = std::strtod(
                next("--uncorrectable-read-rate").c_str(), nullptr);
        } else if (arg == "--read-retry-rate") {
            cli.device.ssd.readRetryRate = std::strtod(
                next("--read-retry-rate").c_str(), nullptr);
        } else if (arg == "--erase-failure-rate") {
            cli.device.ssd.eraseFailureRate = std::strtod(
                next("--erase-failure-rate").c_str(), nullptr);
        } else if (arg == "--wear-coefficient") {
            cli.device.ssd.wearErrorCoefficient = std::strtod(
                next("--wear-coefficient").c_str(), nullptr);
        } else if (arg == "--wear-exponent") {
            cli.device.ssd.wearExponent = std::strtod(
                next("--wear-exponent").c_str(), nullptr);
        } else if (arg == "--retention-coefficient") {
            cli.device.ssd.retentionErrorCoefficient = std::strtod(
                next("--retention-coefficient").c_str(), nullptr);
        } else if (arg == "--scrub-threshold") {
            cli.device.ssd.scrubErrorThreshold = std::strtod(
                next("--scrub-threshold").c_str(), nullptr);
        } else if (arg == "--scrub-budget") {
            cli.device.ssd.scrubBudgetPages = static_cast<unsigned>(
                std::strtoul(next("--scrub-budget").c_str(), nullptr,
                             10));
        } else if (arg == "--wear-level-bound") {
            cli.device.ssd.wearLevelSpreadBound = std::strtoull(
                next("--wear-level-bound").c_str(), nullptr, 10);
        } else if (arg == "--health") {
            cli.health = true;
        } else if (arg == "--metrics-json") {
            cli.metricsJson = next("--metrics-json");
        } else if (arg == "--metrics-prom") {
            cli.metricsProm = next("--metrics-prom");
        } else if (arg == "--span-log") {
            cli.spanLog = next("--span-log");
        } else if (arg == "--serve-requests") {
            cli.serveRequests = static_cast<unsigned>(std::strtoul(
                next("--serve-requests").c_str(), nullptr, 10));
        } else if (arg == "--redeploy-at") {
            cli.redeployAt = static_cast<unsigned>(std::strtoul(
                next("--redeploy-at").c_str(), nullptr, 10));
        } else if (arg == "--redeploy-io-budget") {
            cli.redeployIoBudget = std::strtod(
                next("--redeploy-io-budget").c_str(), nullptr);
        } else if (arg == "--traffic") {
            cli.traffic = next("--traffic");
            cli.trafficConfig.process =
                parseTrafficProcess(cli.traffic);
        } else if (arg == "--traffic-rate") {
            cli.trafficConfig.ratePerSecond = std::strtod(
                next("--traffic-rate").c_str(), nullptr);
        } else if (arg == "--traffic-burst-mult") {
            cli.trafficConfig.burstRateMultiplier = std::strtod(
                next("--traffic-burst-mult").c_str(), nullptr);
        } else if (arg == "--traffic-users") {
            cli.trafficConfig.users = std::strtoull(
                next("--traffic-users").c_str(), nullptr, 10);
        } else if (arg == "--traffic-gold-fraction") {
            cli.trafficConfig.goldFraction = std::strtod(
                next("--traffic-gold-fraction").c_str(), nullptr);
        } else if (arg == "--traffic-seed") {
            cli.trafficConfig.seed = std::strtoull(
                next("--traffic-seed").c_str(), nullptr, 10);
            cli.trafficSeedSet = true;
        } else if (arg == "--admission-target-us") {
            cli.serverConfig.admissionTargetDelay =
                sim::microseconds(std::strtod(
                    next("--admission-target-us").c_str(), nullptr));
        } else if (arg == "--brownout-enter-us") {
            cli.serverConfig.brownout.enterDelay =
                sim::microseconds(std::strtod(
                    next("--brownout-enter-us").c_str(), nullptr));
        } else if (arg == "--brownout-exit-us") {
            cli.serverConfig.brownout.exitDelay =
                sim::microseconds(std::strtod(
                    next("--brownout-exit-us").c_str(), nullptr));
        } else if (arg == "--brownout-guard-us") {
            cli.serverConfig.brownout.recoveryGuard =
                sim::microseconds(std::strtod(
                    next("--brownout-guard-us").c_str(), nullptr));
        } else if (arg == "--brownout-reduced-fraction") {
            cli.serverConfig.brownout.reducedCandidateFraction =
                std::strtod(
                    next("--brownout-reduced-fraction").c_str(),
                    nullptr);
        } else if (arg == "--batch-max-wait-us") {
            cli.serverConfig.batchMaxWait =
                sim::microseconds(std::strtod(
                    next("--batch-max-wait-us").c_str(), nullptr));
        } else if (arg == "--retry-jitter") {
            cli.serverConfig.retryJitterFraction = std::strtod(
                next("--retry-jitter").c_str(), nullptr);
        } else if (arg == "--tenant") {
            cli.tenants.push_back(parseTenantSpec(next("--tenant")));
        } else {
            std::fprintf(stderr, "unknown option '%s'\n",
                         arg.c_str());
            usage(argv[0], 2);
        }
    }
    sim::initTraceFromEnvironment();
    // Fail fast on contradictory device/reliability knobs, before
    // any benchmark state is built (the spec-dependent capacity
    // checks rerun inside EcssdSystem).
    cli.device.validate();
    cli.serverConfig.validate();
    if (cli.redeployAt > 0 && cli.serveRequests == 0)
        sim::fatal("--redeploy-at needs a serving pass; add "
                   "--serve-requests N");
    if (!cli.tenants.empty()) {
        if (cli.serveRequests == 0)
            sim::fatal("--tenant needs a serving pass; add "
                       "--serve-requests N (arrivals per tenant)");
        if (cli.redeployAt > 0)
            sim::fatal("--redeploy-at and --tenant are exclusive; "
                       "tenant redeploys run through the tenant "
                       "API");
    }
    if (!cli.traffic.empty()) {
        if (cli.serveRequests == 0)
            sim::fatal("--traffic needs a serving pass; add "
                       "--serve-requests N (the arrival count)");
        if (!cli.trafficSeedSet)
            cli.trafficConfig.seed = cli.device.seed;
        cli.trafficConfig.validate();
    }

    xclass::BenchmarkSpec spec =
        xclass::benchmarkByName(cli.benchmark);
    if (cli.scale > 0)
        spec = xclass::scaledDown(spec, cli.scale);

    if (!cli.arch.empty()) {
        for (const baselines::Architecture arch :
             baselines::allBaselines()) {
            if (baselines::toString(arch) == cli.arch) {
                const baselines::BaselineResult result =
                    baselines::simulate(arch, spec, cli.batches,
                                        cli.device.seed);
                std::printf("%-20s %-15s %10.3f ms/batch "
                            "(%llu candidate rows)\n",
                            spec.name.c_str(), result.name.c_str(),
                            result.batchMs,
                            (unsigned long long)
                                result.candidateRows);
                return 0;
            }
        }
        if (cli.arch != "ECSSD")
            sim::fatal("unknown architecture '", cli.arch,
                       "'; try --list");
    }

    if (cli.sweepLayouts) {
        if (cli.observability())
            sim::fatal("--metrics-json/--metrics-prom/--span-log "
                       "need a single run, not --sweep-layouts");
        for (const layout::LayoutKind kind :
             {layout::LayoutKind::Sequential,
              layout::LayoutKind::Uniform,
              layout::LayoutKind::LearningAdaptive}) {
            EcssdOptions options = cli.device;
            options.layoutKind = kind;
            report(spec, options, cli.batches, cli.energy,
                   cli.health);
        }
        return 0;
    }

    if (cli.observability() || cli.serveRequests > 0) {
        sim::MetricsRegistry registry;
        sim::SpanTracer tracer;
        const bool quiet = cli.metricsJson == "-";
        report(spec, cli.device, cli.batches, cli.energy,
               cli.health, &registry, &tracer, quiet);
        if (!cli.tenants.empty())
            runMultiTenantPass(spec, cli, &registry, &tracer);
        else if (cli.serveRequests > 0)
            runServingPass(spec, cli, &registry, &tracer);
        if (!cli.metricsJson.empty())
            writeDump(cli.metricsJson, [&](std::ostream &os) {
                registry.writeJson(os);
            });
        if (!cli.metricsProm.empty())
            writeDump(cli.metricsProm, [&](std::ostream &os) {
                registry.writePrometheus(os);
            });
        if (!cli.spanLog.empty())
            writeDump(cli.spanLog, [&](std::ostream &os) {
                tracer.writeJson(os);
            });
        return 0;
    }

    report(spec, cli.device, cli.batches, cli.energy, cli.health);
    return 0;
}
