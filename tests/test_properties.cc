/**
 * @file
 * Cross-module property tests: parameterized sweeps asserting
 * invariants of the full pipeline across benchmarks, layouts, and
 * algorithm parameters.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "ecssd/system.hh"

using namespace ecssd;

namespace
{

xclass::BenchmarkSpec
specOf(const std::string &name, std::uint64_t cap = 32768)
{
    return xclass::scaledDown(xclass::benchmarkByName(name), cap);
}

} // namespace

/** Sweep benchmarks x layout strategies. */
class PipelineInvariants
    : public ::testing::TestWithParam<
          std::tuple<const char *, layout::LayoutKind>>
{
};

TEST_P(PipelineInvariants, HoldAcrossConfigurations)
{
    const auto [name, kind] = GetParam();
    EcssdOptions options = EcssdOptions::full();
    options.layoutKind = kind;
    EcssdSystem system(specOf(name), options);
    const accel::RunResult result = system.runInference(1);
    ASSERT_EQ(result.batches.size(), 1u);
    const accel::BatchTiming &batch = result.batches[0];

    // Conservation: per-channel pages sum to the total.
    std::uint64_t sum = 0;
    for (const std::uint64_t pages : batch.channelPages)
        sum += pages;
    EXPECT_EQ(sum, batch.fp32PagesRead);

    // Page count covers every candidate row at least once per
    // page-share group.
    EXPECT_GT(batch.fp32PagesRead, 0u);
    EXPECT_LE(batch.fp32PagesRead,
              batch.candidateRows
                  * ((specOf(name).rowBytes() + 4095) / 4096));

    // Utilization is a proper fraction; time moves forward.
    EXPECT_GT(result.channelUtilization, 0.0);
    EXPECT_LE(result.channelUtilization, 1.0);
    EXPECT_GT(batch.finishedAt, batch.startedAt);

    // Work accounting is consistent with the spec.
    const xclass::BenchmarkSpec spec = specOf(name);
    EXPECT_EQ(batch.int4Ops,
              static_cast<std::uint64_t>(spec.batchSize)
                  * spec.categories * spec.shrunkDim() * 2);
    EXPECT_EQ(batch.fp32Flops,
              static_cast<std::uint64_t>(spec.batchSize)
                  * batch.candidateRows * spec.hiddenDim * 2);
}

INSTANTIATE_TEST_SUITE_P(
    BenchmarksAndLayouts, PipelineInvariants,
    ::testing::Combine(
        ::testing::Values("GNMT-E32K", "LSTM-W33K",
                          "Transformer-W268K", "XMLCNN-S10M"),
        ::testing::Values(layout::LayoutKind::Sequential,
                          layout::LayoutKind::Uniform,
                          layout::LayoutKind::LearningAdaptive)));

/** Candidate-ratio sweep: latency is monotone in fetched work. */
class RatioSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(RatioSweep, LatencyGrowsWithCandidateRatio)
{
    const double ratio = GetParam() / 100.0;
    xclass::BenchmarkSpec narrow = specOf("XMLCNN-S10M");
    narrow.candidateRatio = ratio;
    xclass::BenchmarkSpec wide = narrow;
    wide.candidateRatio = ratio * 2.0;

    EcssdSystem a(narrow, EcssdOptions::full());
    EcssdSystem b(wide, EcssdOptions::full());
    const double t_narrow = a.runInference(1).meanBatchMs();
    const double t_wide = b.runInference(1).meanBatchMs();
    EXPECT_GT(t_wide, t_narrow);
    // Fetch-bound regime: doubling candidates costs 1.3-2.4x.
    EXPECT_GT(t_wide / t_narrow, 1.3);
    EXPECT_LT(t_wide / t_narrow, 2.4);
}

INSTANTIATE_TEST_SUITE_P(Ratios, RatioSweep,
                         ::testing::Values(5, 10, 20));

/** Batch-count linearity of the steady-state pipeline. */
TEST(PipelineScaling, TimeScalesWithBatchCount)
{
    const xclass::BenchmarkSpec spec = specOf("XMLCNN-S10M", 16384);
    EcssdSystem one(spec, EcssdOptions::full());
    EcssdSystem four(spec, EcssdOptions::full());
    const double t1 =
        sim::tickToMs(one.runInference(1).totalTime);
    const double t4 =
        sim::tickToMs(four.runInference(4).totalTime);
    EXPECT_NEAR(t4 / t1, 4.0, 0.8);
}

/** Channel-count monotonicity. */
class ChannelSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(ChannelSweep, MoreChannelsNeverSlower)
{
    const unsigned channels = GetParam();
    EcssdOptions fewer = EcssdOptions::full();
    fewer.ssd.channels = channels;
    EcssdOptions more = EcssdOptions::full();
    more.ssd.channels = channels * 2;
    const xclass::BenchmarkSpec spec = specOf("XMLCNN-S10M", 16384);
    const double t_few =
        EcssdSystem(spec, fewer).runInference(1).meanBatchMs();
    const double t_more =
        EcssdSystem(spec, more).runInference(1).meanBatchMs();
    EXPECT_LT(t_more, t_few * 1.02);
}

INSTANTIATE_TEST_SUITE_P(Channels, ChannelSweep,
                         ::testing::Values(2u, 4u, 8u));

/** Predictor-noise monotonicity for the learning layout. */
TEST(PredictorQuality, OracleBeatsNoisyBeatsBroken)
{
    const xclass::BenchmarkSpec spec = specOf("XMLCNN-S10M");
    auto run = [&spec](double noise) {
        EcssdOptions options = EcssdOptions::full();
        options.predictorNoise = noise;
        return EcssdSystem(spec, options)
            .runInference(2)
            .channelUtilization;
    };
    const double oracle = run(0.0);
    const double noisy = run(0.5);
    const double broken = run(4.0);
    EXPECT_GE(oracle, noisy - 0.02);
    EXPECT_GT(noisy, broken);
}

/** Deployment time scales with the weight footprint. */
class DeploySweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(DeploySweep, DeployTimeIsLinearInRows)
{
    const std::uint64_t rows = GetParam();
    const sim::Tick small_deploy =
        EcssdSystem(specOf("XMLCNN-S10M", rows),
                    EcssdOptions::full())
            .deployTimeEstimate();
    const sim::Tick big_deploy =
        EcssdSystem(specOf("XMLCNN-S10M", rows * 2),
                    EcssdOptions::full())
            .deployTimeEstimate();
    EXPECT_NEAR(static_cast<double>(big_deploy)
                    / static_cast<double>(small_deploy),
                2.0, 0.25);
}

INSTANTIATE_TEST_SUITE_P(Sizes, DeploySweep,
                         ::testing::Values(16384u, 65536u,
                                           262144u));
