/**
 * @file
 * EcssdSystem integration tests: option presets, end-to-end runs,
 * the Fig 8 stepwise improvement chain, and deployment estimates.
 */

#include <gtest/gtest.h>

#include "ecssd/system.hh"

using namespace ecssd;

namespace
{

xclass::BenchmarkSpec
spec(std::uint64_t categories = 32768)
{
    return xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), categories);
}

} // namespace

TEST(EcssdSystem, FullOptionsDescribe)
{
    const std::string text = describe(EcssdOptions::full());
    EXPECT_NE(text.find("alignment_free"), std::string::npos);
    EXPECT_NE(text.find("learning_adaptive"), std::string::npos);
    EXPECT_NE(text.find("int4=dram"), std::string::npos);
}

TEST(EcssdSystem, BaselineOptionsDescribe)
{
    const std::string text =
        describe(EcssdOptions::startingBaseline());
    EXPECT_NE(text.find("naive"), std::string::npos);
    EXPECT_NE(text.find("sequential"), std::string::npos);
    EXPECT_NE(text.find("int4=flash"), std::string::npos);
}

TEST(EcssdSystem, FullSystemRuns)
{
    EcssdSystem system(spec(), EcssdOptions::full());
    const accel::RunResult result = system.runInference(1);
    EXPECT_GT(result.totalTime, 0u);
    EXPECT_GT(result.channelUtilization, 0.5);
}

TEST(EcssdSystem, Fig8StepwiseChainImproves)
{
    // Each Fig 8 step must not regress, and the full chain must be a
    // large win over the starting baseline.
    const xclass::BenchmarkSpec s = spec();

    EcssdOptions step0 = EcssdOptions::startingBaseline();

    EcssdOptions step1 = step0; // + uniform interleaving
    step1.layoutKind = layout::LayoutKind::Uniform;

    EcssdOptions step2 = step1; // + alignment-free MAC
    step2.fpKind = circuit::FpMacKind::AlignmentFree;

    EcssdOptions step3 = step2; // + heterogeneous layout
    step3.int4Placement = accel::Int4Placement::Dram;

    EcssdOptions step4 = step3; // + learning interleaving
    step4.layoutKind = layout::LayoutKind::LearningAdaptive;

    const double t0 =
        EcssdSystem(s, step0).runInference(1).meanBatchMs();
    const double t1 =
        EcssdSystem(s, step1).runInference(1).meanBatchMs();
    const double t2 =
        EcssdSystem(s, step2).runInference(1).meanBatchMs();
    const double t3 =
        EcssdSystem(s, step3).runInference(1).meanBatchMs();
    const double t4 =
        EcssdSystem(s, step4).runInference(1).meanBatchMs();

    EXPECT_LT(t1, t0); // uniform interleaving is a big win
    EXPECT_LE(t2, t1 * 1.02);
    EXPECT_LT(t3, t2);
    EXPECT_LT(t4, t3);
    EXPECT_GT(t0 / t4, 4.0); // the whole chain is a multi-x win
    EXPECT_GT(t0 / t1, 2.0);
}

TEST(EcssdSystem, UtilizationClimbsAlongTheChain)
{
    const xclass::BenchmarkSpec s = spec();
    EcssdOptions seq = EcssdOptions::full();
    seq.layoutKind = layout::LayoutKind::Sequential;
    EcssdOptions uni = EcssdOptions::full();
    uni.layoutKind = layout::LayoutKind::Uniform;
    const EcssdOptions learn = EcssdOptions::full();

    const double u_seq =
        EcssdSystem(s, seq).runInference(1).channelUtilization;
    const double u_uni =
        EcssdSystem(s, uni).runInference(1).channelUtilization;
    const double u_learn =
        EcssdSystem(s, learn).runInference(1).channelUtilization;

    EXPECT_LT(u_seq, 0.2);   // paper: < 10% for sequential
    EXPECT_GT(u_uni, u_seq);
    EXPECT_GT(u_learn, u_uni);
    EXPECT_GT(u_learn, 0.8); // paper: 94.7%
}

TEST(EcssdSystem, RunsAreReproducible)
{
    const xclass::BenchmarkSpec s = spec(8192);
    EcssdSystem a(s, EcssdOptions::full());
    EcssdSystem b(s, EcssdOptions::full());
    EXPECT_EQ(a.runInference(1).totalTime,
              b.runInference(1).totalTime);
}

TEST(EcssdSystem, RepeatedRunsAreIndependent)
{
    EcssdSystem system(spec(8192), EcssdOptions::full());
    const accel::RunResult first = system.runInference(1);
    system.runInference(1);
    const accel::RunResult third = system.runInference(1);
    // Timelines reset between runs, so latency stays in one band
    // (candidate sets differ batch to batch).
    EXPECT_NEAR(
        static_cast<double>(third.totalTime),
        static_cast<double>(first.totalTime),
        static_cast<double>(first.totalTime) * 0.3);
}

TEST(EcssdSystem, DeployEstimateScalesWithFootprint)
{
    const sim::Tick small_deploy =
        EcssdSystem(spec(8192), EcssdOptions::full())
            .deployTimeEstimate();
    const sim::Tick big_deploy =
        EcssdSystem(spec(65536), EcssdOptions::full())
            .deployTimeEstimate();
    EXPECT_GT(big_deploy, small_deploy);
}

TEST(EcssdSystem, DramCapacityGuard)
{
    // Section 7.1: a 16 GB DRAM cannot hold the INT4 screener of a
    // >100M-category layer; deployment must refuse rather than
    // silently thrash.
    xclass::BenchmarkSpec huge =
        xclass::benchmarkByName("XMLCNN-S100M");
    huge.categories = 200000000; // 25.6 GB of INT4 at K=256
    EcssdOptions options = EcssdOptions::full();
    EcssdSystem system(huge, options);
    EXPECT_THROW(system.deployTimeEstimate(), sim::PanicError);
}

TEST(EcssdSystem, ScreeningOffReadsEverything)
{
    EcssdOptions options = EcssdOptions::full();
    options.screening = false;
    EcssdSystem system(spec(8192), options);
    const accel::RunResult result = system.runInference(1);
    EXPECT_EQ(result.batches[0].candidateRows, 8192u);
}
