/**
 * @file
 * Baseline architecture tests: the Fig 13 ordering invariants on a
 * scaled-down large benchmark.
 */

#include <gtest/gtest.h>

#include <map>

#include "baselines/baselines.hh"

using namespace ecssd;
using namespace ecssd::baselines;

namespace
{

xclass::BenchmarkSpec
spec()
{
    // Scaled-down S10M: keeps ratios, runs fast.
    return xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 65536);
}

std::map<Architecture, double>
runAll()
{
    static std::map<Architecture, double> cache;
    if (!cache.empty())
        return cache;
    const xclass::BenchmarkSpec s = spec();
    for (const Architecture arch : allBaselines())
        cache[arch] = simulate(arch, s, 1).batchMs;
    cache[Architecture::Ecssd] =
        simulate(Architecture::Ecssd, s, 1).batchMs;
    return cache;
}

} // namespace

TEST(Baselines, EnumerationAndNames)
{
    EXPECT_EQ(allBaselines().size(), 8u);
    EXPECT_EQ(toString(Architecture::CpuN), "CPU-N");
    EXPECT_EQ(toString(Architecture::SmartSsdHAp),
              "SmartSSD-H-AP");
    EXPECT_EQ(toString(Architecture::Ecssd), "ECSSD");
}

TEST(Baselines, ScreeningFlagPerArchitecture)
{
    EXPECT_FALSE(usesScreening(Architecture::CpuN));
    EXPECT_TRUE(usesScreening(Architecture::CpuAp));
    EXPECT_FALSE(usesScreening(Architecture::GenStoreN));
    EXPECT_TRUE(usesScreening(Architecture::GenStoreAp));
    EXPECT_TRUE(usesScreening(Architecture::Ecssd));
}

TEST(Baselines, AllProducePositiveLatency)
{
    const auto results = runAll();
    for (const auto &[arch, ms] : results)
        EXPECT_GT(ms, 0.0) << toString(arch);
}

TEST(Baselines, EcssdWinsAgainstEveryBaseline)
{
    const auto results = runAll();
    const double ecssd = results.at(Architecture::Ecssd);
    for (const Architecture arch : allBaselines())
        EXPECT_GT(results.at(arch), ecssd)
            << toString(arch) << " should be slower than ECSSD";
}

TEST(Baselines, ScreeningVariantsBeatDenseOnes)
{
    const auto results = runAll();
    EXPECT_LT(results.at(Architecture::CpuAp),
              results.at(Architecture::CpuN));
    EXPECT_LT(results.at(Architecture::GenStoreAp),
              results.at(Architecture::GenStoreN));
    EXPECT_LT(results.at(Architecture::SmartSsdAp),
              results.at(Architecture::SmartSsdN));
    EXPECT_LT(results.at(Architecture::SmartSsdHAp),
              results.at(Architecture::SmartSsdHN));
}

TEST(Baselines, HigherSwitchBandwidthHelpsSmartSsd)
{
    const auto results = runAll();
    EXPECT_LT(results.at(Architecture::SmartSsdHN),
              results.at(Architecture::SmartSsdN));
    EXPECT_LE(results.at(Architecture::SmartSsdHAp),
              results.at(Architecture::SmartSsdAp));
}

TEST(Baselines, CpuNIsTheSlowestArchitecture)
{
    const auto results = runAll();
    for (const Architecture arch : allBaselines()) {
        if (arch == Architecture::CpuN)
            continue;
        EXPECT_LE(results.at(arch),
                  results.at(Architecture::CpuN) * 1.05)
            << toString(arch);
    }
}

TEST(Baselines, SpeedupBandsAreInThePaperBallpark)
{
    // Fig 13 averages: 49.87x (CPU-N) down to 3.24x
    // (SmartSSD-H-AP).  Shapes, not digits: the dense CPU gap must
    // be tens-of-x, the best screened baseline a few x.
    const auto results = runAll();
    const double ecssd = results.at(Architecture::Ecssd);
    const double cpu_n = results.at(Architecture::CpuN) / ecssd;
    const double best_ap =
        results.at(Architecture::SmartSsdHAp) / ecssd;
    EXPECT_GT(cpu_n, 15.0);
    EXPECT_LT(cpu_n, 120.0);
    EXPECT_GT(best_ap, 1.5);
    EXPECT_LT(best_ap, 12.0);
}

TEST(Baselines, CandidateRowsReported)
{
    const xclass::BenchmarkSpec s = spec();
    const BaselineResult dense =
        simulate(Architecture::GenStoreN, s, 1);
    EXPECT_EQ(dense.candidateRows, s.categories);
    const BaselineResult screened =
        simulate(Architecture::CpuAp, s, 1);
    EXPECT_NEAR(static_cast<double>(screened.candidateRows),
                static_cast<double>(s.categories) * s.candidateRatio,
                static_cast<double>(s.categories) * 0.02);
}
