/**
 * @file
 * Tenant-layer tests: TenantConfig validation, the
 * TenantRegistry partition ledger, the tenant-scoped EcssdApi
 * surface (createTenant / per-tenant deploy / per-tenant sessions),
 * quota-boundary cache isolation, per-tenant deploy-epoch staleness,
 * the UnknownTenant / TenantQuotaExceeded error paths, and the
 * validated EcssdOptions builder.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "ecssd/api.hh"
#include "ecssd/server.hh"
#include "sim/rng.hh"
#include "xclass/metrics.hh"

using namespace ecssd;

namespace
{

constexpr std::uint64_t kMiB = 1ULL << 20;

struct TenantFixture
{
    TenantFixture()
        : spec(makeSpec()), model(spec, 1)
    {
        options.ssd = ssdsim::smallTestConfig();
        options.ssd.channels = 8;
        options.ssd.dramBytes = 64 * kMiB;
    }

    static xclass::BenchmarkSpec
    makeSpec()
    {
        xclass::BenchmarkSpec spec = xclass::scaledDown(
            xclass::benchmarkByName("GNMT-E32K"), 512);
        spec.hiddenDim = 128;
        return spec;
    }

    static TenantConfig
    tenant(const std::string &name,
           std::uint64_t dram_bytes = 8 * kMiB,
           std::uint64_t quota_bytes = 0)
    {
        TenantConfig config;
        config.name = name;
        config.dramBytes = dram_bytes;
        config.cacheQuotaBytes = quota_bytes;
        return config;
    }

    std::vector<float>
    query(std::uint64_t seed)
    {
        sim::Rng rng(seed);
        return model.sampleQuery(rng);
    }

    EcssdOptions options;
    xclass::BenchmarkSpec spec;
    xclass::SyntheticModel model;
};

/** Drive one full query through @p session; returns its status. */
Status
runQuery(InferenceSession &session, const std::vector<float> &feature)
{
    Status status = session.sendInt4(feature);
    if (status != Status::Ok)
        return status;
    status = session.sendCfp32(feature);
    if (status != Status::Ok)
        return status;
    status = session.screen();
    if (status != Status::Ok)
        return status;
    status = session.classify();
    if (status != Status::Ok)
        return status;
    xclass::ApproximateClassifier::Prediction prediction;
    return session.results(5, prediction);
}

} // namespace

// --- TenantConfig ----------------------------------------------------

TEST(TenantConfig, ValidationRejectsInconsistentDeclarations)
{
    TenantConfig config = TenantFixture::tenant("ok");
    EXPECT_NO_THROW(config.validate());

    TenantConfig unnamed = config;
    unnamed.name.clear();
    EXPECT_THROW(unnamed.validate(), sim::FatalError);

    TenantConfig unsafe = config;
    unsafe.name = "Tenant A";
    EXPECT_THROW(unsafe.validate(), sim::FatalError);

    TenantConfig empty = config;
    empty.dramBytes = 0;
    EXPECT_THROW(empty.validate(), sim::FatalError);

    TenantConfig inverted = config;
    inverted.cacheQuotaBytes = inverted.dramBytes + 1;
    EXPECT_THROW(inverted.validate(), sim::FatalError);

    TenantConfig gold = config;
    gold.goldShare = 1.5;
    EXPECT_THROW(gold.validate(), sim::FatalError);
}

TEST(TenantConfig, MetricNamespaceIsTenantScoped)
{
    EXPECT_EQ(TenantFixture::tenant("ranker").metricNamespace(),
              "tenant.ranker.");
}

// --- TenantRegistry --------------------------------------------------

TEST(TenantRegistry, AdmissionTracksThePartitionLedger)
{
    TenantRegistry registry(32 * kMiB);
    EXPECT_EQ(registry.committedBytes(), 0u);

    TenantHandle a;
    ASSERT_EQ(registry.admit(TenantFixture::tenant("a", 16 * kMiB), a),
              Status::Ok);
    TenantHandle b;
    ASSERT_EQ(registry.admit(TenantFixture::tenant("b", 8 * kMiB), b),
              Status::Ok);
    EXPECT_TRUE(registry.known(a));
    EXPECT_TRUE(registry.known(b));
    EXPECT_NE(a.id(), b.id());
    EXPECT_EQ(registry.size(), 2u);
    EXPECT_EQ(registry.committedBytes(), 24 * kMiB);

    const TenantRegistry::Entry *entry = registry.entry(a);
    ASSERT_NE(entry, nullptr);
    EXPECT_EQ(entry->config.name, "a");
    EXPECT_EQ(entry->config.dramBytes, 16 * kMiB);
    EXPECT_EQ(entry->deploys, 0u);
}

TEST(TenantRegistry, OverSubscriptionIsRefusedNotFatal)
{
    TenantRegistry registry(32 * kMiB);
    TenantHandle a;
    ASSERT_EQ(registry.admit(TenantFixture::tenant("a", 24 * kMiB), a),
              Status::Ok);
    TenantHandle b;
    EXPECT_EQ(registry.admit(TenantFixture::tenant("b", 16 * kMiB), b),
              Status::TenantQuotaExceeded);
    EXPECT_FALSE(b.valid());
    // The refused admission left the ledger untouched.
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_EQ(registry.committedBytes(), 24 * kMiB);
}

TEST(TenantRegistry, DuplicateNameIsACallerBug)
{
    TenantRegistry registry(32 * kMiB);
    TenantHandle a;
    ASSERT_EQ(registry.admit(TenantFixture::tenant("a", 8 * kMiB), a),
              Status::Ok);
    TenantHandle dup;
    EXPECT_THROW(
        registry.admit(TenantFixture::tenant("a", 8 * kMiB), dup),
        sim::FatalError);
}

TEST(TenantRegistry, ScreenerChargeChecksThePartition)
{
    TenantRegistry registry(32 * kMiB);
    TenantHandle a;
    ASSERT_EQ(
        registry.admit(
            TenantFixture::tenant("a", 8 * kMiB, 2 * kMiB), a),
        Status::Ok);

    EXPECT_EQ(registry.chargeScreener(a, 4 * kMiB), Status::Ok);
    EXPECT_EQ(registry.entry(a)->screenerBytes, 4 * kMiB);
    EXPECT_EQ(registry.entry(a)->deploys, 1u);

    // Screener plus cache quota must fit the partition.
    EXPECT_EQ(registry.chargeScreener(a, 7 * kMiB),
              Status::TenantQuotaExceeded);
    EXPECT_EQ(registry.entry(a)->screenerBytes, 4 * kMiB);

    // A redeploy's charge replaces the previous deployment's.
    EXPECT_EQ(registry.chargeScreener(a, 1 * kMiB), Status::Ok);
    EXPECT_EQ(registry.entry(a)->screenerBytes, 1 * kMiB);
    EXPECT_EQ(registry.entry(a)->deploys, 2u);

    EXPECT_EQ(registry.chargeScreener(TenantHandle{}, 1),
              Status::UnknownTenant);
}

TEST(TenantRegistry, PublishMetricsIsANoOpWhileEmpty)
{
    TenantRegistry registry(32 * kMiB);
    sim::MetricsRegistry metrics;
    registry.publishMetrics(metrics);
    EXPECT_EQ(metrics.size(), 0u);

    TenantHandle a;
    ASSERT_EQ(
        registry.admit(
            TenantFixture::tenant("a", 8 * kMiB, 2 * kMiB), a),
        Status::Ok);
    registry.publishMetrics(metrics);
    EXPECT_DOUBLE_EQ(metrics.gauge("tenant.count").value(), 1.0);
    EXPECT_DOUBLE_EQ(metrics.gauge("tenant.a.dram_bytes").value(),
                     static_cast<double>(8 * kMiB));
    EXPECT_DOUBLE_EQ(
        metrics.gauge("tenant.a.cache_quota_bytes").value(),
        static_cast<double>(2 * kMiB));
}

// --- Status vocabulary ----------------------------------------------

TEST(Status, UnifiedVocabularyCoversTenantAndServingOutcomes)
{
    EXPECT_STREQ(toString(Status::Ok), "ok");
    EXPECT_STREQ(toString(Status::UnknownTenant), "unknown-tenant");
    EXPECT_STREQ(toString(Status::TenantQuotaExceeded),
                 "tenant-quota-exceeded");
    // The serving vocabulary folded into the same enum.
    EXPECT_STREQ(toString(Status::Shed), "shed");
    EXPECT_STREQ(toString(Status::TimedOut), "timed-out");
    EXPECT_STREQ(toString(Status::Degraded), "degraded");
    // Response::Status is the same type now.
    static_assert(
        std::is_same_v<InferenceServer::Response::Status, Status>);
}

// --- EcssdApi tenant surface ----------------------------------------

TEST(ApiTenants, CreateDeployAndServePerTenant)
{
    TenantFixture f;
    EcssdApi api(f.options);

    Status status = Status::Ok;
    TenantHandle a = api.createTenant(
        TenantFixture::tenant("a", 8 * kMiB), &status);
    ASSERT_EQ(status, Status::Ok);
    ASSERT_TRUE(a.valid());
    TenantHandle b = api.createTenant(
        TenantFixture::tenant("b", 8 * kMiB), &status);
    ASSERT_EQ(status, Status::Ok);
    EXPECT_EQ(api.tenantRegistry().size(), 2u);

    sim::Tick deploy_time = 0;
    ASSERT_EQ(api.weightDeploy(a, f.model.weights(), f.spec,
                               deploy_time, &f.model.basis()),
              Status::Ok);
    EXPECT_GT(deploy_time, 0u);
    ASSERT_EQ(api.weightDeploy(b, f.model.weights(), f.spec,
                               deploy_time, &f.model.basis()),
              Status::Ok);
    EXPECT_EQ(api.tenantRegistry().entry(a)->screenerBytes,
              f.spec.int4WeightBytes());

    auto session = api.beginInference(a, &status);
    ASSERT_EQ(status, Status::Ok);
    ASSERT_TRUE(session.has_value());
    EXPECT_EQ(runQuery(*session, f.query(7)), Status::Ok);
}

TEST(ApiTenants, DeployEpochsAreTenantScoped)
{
    TenantFixture f;
    EcssdApi api(f.options);
    TenantHandle a =
        api.createTenant(TenantFixture::tenant("a", 8 * kMiB));
    TenantHandle b =
        api.createTenant(TenantFixture::tenant("b", 8 * kMiB));
    sim::Tick deploy_time = 0;
    ASSERT_EQ(api.weightDeploy(a, f.model.weights(), f.spec,
                               deploy_time, &f.model.basis()),
              Status::Ok);
    ASSERT_EQ(api.weightDeploy(b, f.model.weights(), f.spec,
                               deploy_time, &f.model.basis()),
              Status::Ok);

    std::uint64_t epoch_a = 0, epoch_b = 0;
    ASSERT_EQ(api.deployEpoch(a, epoch_a), Status::Ok);
    ASSERT_EQ(api.deployEpoch(b, epoch_b), Status::Ok);

    auto session_b = api.beginInference(b);
    ASSERT_TRUE(session_b.has_value());

    // Redeploying tenant A bumps A's epoch only; B's open session
    // stays live.
    ASSERT_EQ(api.weightDeploy(a, f.model.weights(), f.spec,
                               deploy_time, &f.model.basis()),
              Status::Ok);
    std::uint64_t epoch = 0;
    ASSERT_EQ(api.deployEpoch(a, epoch), Status::Ok);
    EXPECT_EQ(epoch, epoch_a + 1);
    ASSERT_EQ(api.deployEpoch(b, epoch), Status::Ok);
    EXPECT_EQ(epoch, epoch_b);
    EXPECT_EQ(runQuery(*session_b, f.query(3)), Status::Ok);

    // B's own stop-the-world deploy turns B's session stale.
    ASSERT_EQ(api.weightDeploy(b, f.model.weights(), f.spec,
                               deploy_time, &f.model.basis()),
              Status::Ok);
    EXPECT_EQ(runQuery(*session_b, f.query(3)),
              Status::StaleSession);
    EXPECT_EQ(api.tenantRegistry().entry(b)->deploys, 2u);
}

TEST(ApiTenants, StagedRedeployRunsPerTenant)
{
    TenantFixture f;
    EcssdApi api(f.options);
    TenantHandle a =
        api.createTenant(TenantFixture::tenant("a", 8 * kMiB));
    sim::Tick deploy_time = 0;
    ASSERT_EQ(api.weightDeploy(a, f.model.weights(), f.spec,
                               deploy_time, &f.model.basis()),
              Status::Ok);
    std::uint64_t before = 0;
    ASSERT_EQ(api.deployEpoch(a, before), Status::Ok);

    ASSERT_EQ(api.redeployBegin(a, f.model.weights(), f.spec,
                                RedeployConfig{}, &f.model.basis()),
              Status::Ok);
    sim::Tick background_time = 0;
    ASSERT_EQ(api.redeployRun(a, background_time), Status::Ok);
    std::uint64_t after = 0;
    ASSERT_EQ(api.deployEpoch(a, after), Status::Ok);
    EXPECT_GT(after, before);
    EXPECT_EQ(api.redeployAdvance(a), Status::NoRedeploy);
}

TEST(ApiTenants, UnknownHandlesReportInsteadOfDying)
{
    TenantFixture f;
    EcssdApi api(f.options);
    const TenantHandle nobody;

    Status status = Status::Ok;
    auto session = api.beginInference(nobody, &status);
    EXPECT_FALSE(session.has_value());
    EXPECT_EQ(status, Status::UnknownTenant);

    sim::Tick deploy_time = 0;
    EXPECT_EQ(api.weightDeploy(nobody, f.model.weights(), f.spec,
                               deploy_time),
              Status::UnknownTenant);
    EXPECT_EQ(api.weightDeployStreaming(nobody, f.model.weights(),
                                        f.spec, deploy_time),
              Status::UnknownTenant);
    EXPECT_EQ(api.redeployBegin(nobody, f.model.weights(), f.spec),
              Status::UnknownTenant);
    EXPECT_EQ(api.redeployAdvance(nobody), Status::UnknownTenant);
    sim::Tick background_time = 0;
    EXPECT_EQ(api.redeployRun(nobody, background_time),
              Status::UnknownTenant);
    std::uint64_t epoch = 0;
    EXPECT_EQ(api.deployEpoch(nobody, epoch), Status::UnknownTenant);
    EXPECT_EQ(api.tenantEngine(nobody), nullptr);
}

TEST(ApiTenants, QuotaRefusalsLeaveTheDeviceUntouched)
{
    TenantFixture f;
    f.options.ssd.dramBytes = 16 * kMiB;
    EcssdApi api(f.options);

    TenantHandle a =
        api.createTenant(TenantFixture::tenant("a", 12 * kMiB));
    ASSERT_TRUE(a.valid());

    // Partition over-subscription refuses admission.
    Status status = Status::Ok;
    TenantHandle b = api.createTenant(
        TenantFixture::tenant("b", 8 * kMiB), &status);
    EXPECT_EQ(status, Status::TenantQuotaExceeded);
    EXPECT_FALSE(b.valid());
    EXPECT_EQ(api.tenantRegistry().size(), 1u);

    // A deploy whose screener plus cache quota outgrows the
    // partition refuses before touching the engine.
    TenantConfig tight = TenantFixture::tenant(
        "tight", 20 * 1024, 16 * 1024);
    ASSERT_GT(f.spec.int4WeightBytes() + tight.cacheQuotaBytes,
              tight.dramBytes);
    TenantHandle t = api.createTenant(tight, &status);
    ASSERT_EQ(status, Status::Ok);
    sim::Tick deploy_time = 0;
    EXPECT_EQ(api.weightDeploy(t, f.model.weights(), f.spec,
                               deploy_time),
              Status::TenantQuotaExceeded);
    EXPECT_EQ(api.tenantRegistry().entry(t)->deploys, 0u);
    // The refused tenant has no deployment to serve.
    auto session = api.beginInference(t, &status);
    ASSERT_TRUE(session.has_value());
    EXPECT_EQ(session->screen(), Status::NotDeployed);
}

TEST(ApiTenants, CacheQuotasIsolateTenantsAtTheByteBoundary)
{
    TenantFixture f;
    const std::uint64_t quota_a = 16 * 1024;
    const std::uint64_t quota_b = 8 * 1024;
    EcssdApi api(f.options);
    TenantHandle a = api.createTenant(
        TenantFixture::tenant("a", 8 * kMiB, quota_a));
    TenantHandle b = api.createTenant(
        TenantFixture::tenant("b", 8 * kMiB, quota_b));
    sim::Tick deploy_time = 0;
    ASSERT_EQ(api.weightDeploy(a, f.model.weights(), f.spec,
                               deploy_time, &f.model.basis()),
              Status::Ok);
    ASSERT_EQ(api.weightDeploy(b, f.model.weights(), f.spec,
                               deploy_time, &f.model.basis()),
              Status::Ok);

    const accel::RowCache *cache_a =
        api.tenantEngine(a)->system().pipeline().rowCache();
    const accel::RowCache *cache_b =
        api.tenantEngine(b)->system().pipeline().rowCache();
    ASSERT_NE(cache_a, nullptr);
    ASSERT_NE(cache_b, nullptr);
    EXPECT_EQ(cache_a->capacityBytes(), quota_a);
    EXPECT_EQ(cache_b->capacityBytes(), quota_b);

    // Warm A, then hammer B far past B's quota.
    auto session_a = api.beginInference(a);
    ASSERT_TRUE(session_a.has_value());
    for (int q = 0; q < 4; ++q)
        ASSERT_EQ(runQuery(*session_a, f.query(q)), Status::Ok);
    const std::uint64_t resident_a = cache_a->residentBytes();
    EXPECT_GT(resident_a, 0u);
    EXPECT_LE(resident_a, quota_a);

    auto session_b = api.beginInference(b);
    ASSERT_TRUE(session_b.has_value());
    for (int q = 0; q < 32; ++q)
        ASSERT_EQ(runQuery(*session_b, f.query(100 + q)), Status::Ok);

    // B filled its own quota at most — and evicted nothing of A's.
    EXPECT_LE(cache_b->residentBytes(), quota_b);
    EXPECT_EQ(cache_a->residentBytes(), resident_a);
}

TEST(ApiTenants, ConstructorAdmitsConfiguredTenants)
{
    TenantFixture f;
    f.options.tenants.push_back(
        TenantFixture::tenant("a", 8 * kMiB, 1 * kMiB));
    f.options.tenants.push_back(
        TenantFixture::tenant("b", 8 * kMiB));
    EcssdApi api(f.options);
    EXPECT_EQ(api.tenantRegistry().size(), 2u);
    EXPECT_EQ(api.tenantRegistry().committedBytes(), 16 * kMiB);
}

TEST(ApiTenants, PublishTenantMetricsIsNamespacedAndGatedOnTenancy)
{
    TenantFixture f;
    {
        // Single-tenant device: publishing is a no-op, keeping
        // tenant-less metric dumps byte-identical.
        EcssdApi api(f.options);
        sim::MetricsRegistry metrics;
        api.publishTenantMetrics(metrics);
        EXPECT_EQ(metrics.size(), 0u);
    }

    EcssdApi api(f.options);
    TenantHandle a =
        api.createTenant(TenantFixture::tenant("a", 8 * kMiB));
    sim::Tick deploy_time = 0;
    ASSERT_EQ(api.weightDeploy(a, f.model.weights(), f.spec,
                               deploy_time, &f.model.basis()),
              Status::Ok);
    sim::MetricsRegistry metrics;
    api.publishTenantMetrics(metrics);
    EXPECT_DOUBLE_EQ(metrics.gauge("tenant.count").value(), 1.0);
    EXPECT_TRUE(metrics.has("tenant.a.deploy_epoch"));
    EXPECT_TRUE(metrics.has("tenant.a.screener_bytes"));
}

// --- EcssdOptions builder -------------------------------------------

TEST(OptionsBuilder, BuildsAValidatedOptionSet)
{
    const EcssdOptions options = EcssdOptions::builder()
                                     .threads(4)
                                     .cacheMb(8)
                                     .seed(42)
                                     .overlapStages(false)
                                     .tenant(TenantFixture::tenant(
                                         "a", 8 * kMiB, 1 * kMiB))
                                     .build();
    EXPECT_EQ(options.threads, 4u);
    EXPECT_EQ(options.cache.capacityBytes, 8 * kMiB);
    EXPECT_EQ(options.seed, 42u);
    EXPECT_FALSE(options.overlapStages);
    ASSERT_EQ(options.tenants.size(), 1u);
    EXPECT_EQ(options.tenants[0].name, "a");
}

TEST(OptionsBuilder, BuildRunsValidationExactlyThere)
{
    // An inconsistent set dies in build(), not in the setters.
    auto builder = EcssdOptions::builder().predictorNoise(-1.0);
    EXPECT_THROW(builder.build(), sim::FatalError);
}

TEST(OptionsBuilder, ValidateRejectsOverSubscribedPartitions)
{
    EcssdOptions options;
    options.ssd.dramBytes = 16 * kMiB;
    options.tenants.push_back(
        TenantFixture::tenant("a", 12 * kMiB));
    options.tenants.push_back(TenantFixture::tenant("b", 8 * kMiB));
    EXPECT_THROW(options.validate(), sim::FatalError);

    options.tenants.pop_back();
    options.tenants.push_back(
        TenantFixture::tenant("a", 2 * kMiB));
    EXPECT_THROW(options.validate(), sim::FatalError); // duplicate
}

TEST(OptionsBuilder, DescribeGainsATenantTableOnlyWhenTenanted)
{
    EcssdOptions plain;
    EXPECT_EQ(describe(plain).find("tenants="), std::string::npos);

    EcssdOptions tenanted;
    tenanted.tenants.push_back(
        TenantFixture::tenant("a", 8 * kMiB, 1 * kMiB));
    EXPECT_NE(describe(tenanted).find("tenants=[a:8/1MiB]"),
              std::string::npos);
}
