/**
 * @file
 * Out-of-core streaming weight deploy tests: bit-for-bit placement
 * equivalence with the host-resident greedy build (with and without
 * spilled runs), enforced host-byte boundedness across row counts —
 * including the 10M-row scale the pipeline exists for — overdraft
 * enforcement, and the API-level entry point.
 */

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ecssd/api.hh"
#include "ecssd/streaming_deploy.hh"
#include "layout/strategy.hh"
#include "sim/rng.hh"
#include "xclass/screening.hh"
#include "xclass/workload.hh"

using namespace ecssd;

namespace
{

xclass::BenchmarkSpec
smallSpec(std::uint64_t categories = 4096, unsigned hidden = 64)
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), categories);
    spec.hiddenDim = hidden;
    return spec;
}

/** The host-resident reference: exactly weightDeploy()'s layout. */
std::unique_ptr<layout::LearningAdaptiveLayout>
hostResidentLayout(const xclass::SyntheticModel &model,
                   const xclass::BenchmarkSpec &spec,
                   unsigned channels, std::uint64_t seed)
{
    const xclass::Screener screener(model.weights(), spec, seed);
    return layout::LearningAdaptiveLayout::build(
        screener.rowAbsMasses(), channels);
}

void
expectIdenticalPlacement(const layout::LayoutStrategy &a,
                         const layout::LayoutStrategy &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.channels(), b.channels());
    for (std::uint64_t row = 0; row < a.rows(); ++row) {
        ASSERT_EQ(a.channelOf(row), b.channelOf(row))
            << "channel diverges at row " << row;
        ASSERT_EQ(a.dieSlotOf(row), b.dieSlotOf(row))
            << "die slot diverges at row " << row;
        ASSERT_EQ(a.hotDegreeOf(row), b.hotDegreeOf(row))
            << "hot grade diverges at row " << row;
    }
}

} // namespace

TEST(StreamingDeploy, UnlimitedBudgetMatchesHostResidentBuild)
{
    const xclass::BenchmarkSpec spec = smallSpec();
    const xclass::SyntheticModel model(spec, 7);
    const unsigned channels = 8;
    ssdsim::SsdConfig ssd = ssdsim::smallTestConfig();
    ssd.channels = channels;

    const auto reference =
        hostResidentLayout(model, spec, channels, 7);

    const MatrixRowSource source(model.weights());
    StreamingDeployConfig config;
    config.seed = 7;
    const StreamingDeployResult outcome = streamingWeightDeploy(
        source, spec.shrunkDim(), channels, ssd, config);

    ASSERT_NE(outcome.layout, nullptr);
    EXPECT_EQ(outcome.runsSpilled, 0u);
    EXPECT_GT(outcome.hostPeakBytes, 0u);
    EXPECT_GT(outcome.deployTime, 0u);
    expectIdenticalPlacement(*reference, *outcome.layout);
}

TEST(StreamingDeploy, SpilledMergeMatchesHostResidentBuild)
{
    const xclass::BenchmarkSpec spec = smallSpec();
    const xclass::SyntheticModel model(spec, 11);
    const unsigned channels = 8;
    ssdsim::SsdConfig ssd = ssdsim::smallTestConfig();
    ssd.channels = channels;

    const auto reference =
        hostResidentLayout(model, spec, channels, 11);

    const MatrixRowSource source(model.weights());
    StreamingDeployConfig config;
    config.seed = 11;

    // Calibrate a budget that forces external sorting: the
    // unlimited run shows the fixed overhead (everything except the
    // run buffer, which is rows * 16 bytes when unlimited), and a
    // budget of fixed + 40 KiB leaves room for only ~1280-record
    // runs — several spills for 4096 rows.
    const StreamingDeployResult unlimited = streamingWeightDeploy(
        source, spec.shrunkDim(), channels, ssd, config);
    const std::uint64_t fixed =
        unlimited.hostPeakBytes - spec.categories * 16ULL;
    config.hostBudgetBytes = fixed + (40ULL << 10);

    const StreamingDeployResult outcome = streamingWeightDeploy(
        source, spec.shrunkDim(), channels, ssd, config);

    ASSERT_NE(outcome.layout, nullptr);
    EXPECT_GE(outcome.runsSpilled, 2u);
    EXPECT_GT(outcome.spillPagesWritten, 0u);
    EXPECT_EQ(outcome.spillPagesRead, outcome.spillPagesWritten);
    EXPECT_LE(outcome.hostPeakBytes, config.hostBudgetBytes);
    expectIdenticalPlacement(*reference, *outcome.layout);
}

TEST(StreamingDeploy, HighWaterStaysUnderBudgetAcrossRowCounts)
{
    const ssdsim::SsdConfig ssd = ssdsim::smallTestConfig();
    const std::uint64_t budget = 600ULL << 10;
    for (const std::uint64_t rows :
         {5000ULL, 20000ULL, 80000ULL}) {
        const SyntheticRowSource source(rows, 16, 3);
        StreamingDeployConfig config;
        config.hostBudgetBytes = budget;
        config.seed = 3;
        const StreamingDeployResult outcome = streamingWeightDeploy(
            source, 8, ssd.channels, ssd, config);
        ASSERT_NE(outcome.layout, nullptr);
        EXPECT_EQ(outcome.rowsPlaced, rows);
        EXPECT_EQ(outcome.layout->rows(), rows);
        // The contract: the accounting allocator never saw more
        // than the budget in flight.
        EXPECT_LE(outcome.hostPeakBytes, budget)
            << "rows=" << rows;
    }
}

TEST(StreamingDeploy, TenMillionRowsBoundedByBudget)
{
    // The scale the pipeline exists for: a 10M-row synthetic layer
    // whose hotness vector alone (8 bytes x 10M for build()'s input,
    // plus the sort) would dwarf the budget.  Narrow rows keep the
    // functional work cheap; the boundedness claim is about bytes,
    // not FLOPs.
    const std::uint64_t rows = 10'000'000;
    const SyntheticRowSource source(rows, 8, 5);
    const ssdsim::SsdConfig ssd = ssdsim::smallTestConfig();
    StreamingDeployConfig config;
    config.hostBudgetBytes = 48ULL << 20;
    config.seed = 5;

    const StreamingDeployResult outcome = streamingWeightDeploy(
        source, 4, ssd.channels, ssd, config);

    ASSERT_NE(outcome.layout, nullptr);
    EXPECT_EQ(outcome.rowsPlaced, rows);
    EXPECT_EQ(outcome.layout->rows(), rows);
    EXPECT_GE(outcome.runsSpilled, 2u);
    EXPECT_LE(outcome.hostPeakBytes, config.hostBudgetBytes);
    EXPECT_GT(outcome.deployTime, 0u);
}

TEST(StreamingDeploy, OverdraftDiesWithNamedError)
{
    // 1 MiB of rows cannot even hold the 3-bytes-per-row placement
    // under a 16 KiB ceiling: the accounting allocator must refuse,
    // not thrash.
    const SyntheticRowSource source(1 << 20, 8, 1);
    const ssdsim::SsdConfig ssd = ssdsim::smallTestConfig();
    StreamingDeployConfig config;
    config.hostBudgetBytes = 16ULL << 10;
    EXPECT_THROW(streamingWeightDeploy(source, 4, ssd.channels,
                                       ssd, config),
                 sim::FatalError);
}

TEST(StreamingDeploy, ApiStreamingDeployServesLikeClassic)
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 512);
    spec.hiddenDim = 128;
    const xclass::SyntheticModel model(spec, 1);

    EcssdOptions options;
    options.ssd = ssdsim::smallTestConfig();
    options.ssd.channels = 8;

    const auto predict = [&](EcssdApi &api) {
        sim::Rng rng(9);
        const std::vector<float> query = model.sampleQuery(rng);
        api.int4InputSend(query);
        api.cfp32InputSend(query);
        api.int4Screen();
        api.cfp32Classify();
        return api.getResults(5);
    };

    EcssdApi classic(options);
    classic.ecssdEnable();
    classic.weightDeploy(model.weights(), spec);
    const auto classic_pred = predict(classic);

    options.deployHostBudgetBytes = 2ULL << 20;
    EcssdApi streaming(options);
    streaming.ecssdEnable();
    const sim::Tick deploy = streaming.weightDeployStreaming(
        model.weights(), spec);
    EXPECT_GT(deploy, 0u);

    const StreamingDeployResult *outcome =
        streaming.streamingDeploy();
    ASSERT_NE(outcome, nullptr);
    EXPECT_LE(outcome->hostPeakBytes,
              options.deployHostBudgetBytes);
    EXPECT_EQ(outcome->rowsPlaced, spec.categories);

    // Same weights, same seed, bit-identical placement: the two
    // deploys must serve identical predictions.
    const auto streaming_pred = predict(streaming);
    EXPECT_EQ(classic_pred.topCategories,
              streaming_pred.topCategories);
    EXPECT_EQ(classic_pred.topScores, streaming_pred.topScores);
}

TEST(StreamingDeploy, NonAdaptiveLayoutFallsBackToClassic)
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 512);
    spec.hiddenDim = 128;
    const xclass::SyntheticModel model(spec, 1);

    EcssdOptions options;
    options.ssd = ssdsim::smallTestConfig();
    options.ssd.channels = 8;
    options.layoutKind = layout::LayoutKind::Uniform;
    options.deployHostBudgetBytes = 1ULL << 20;

    EcssdApi api(options);
    api.ecssdEnable();
    EXPECT_GT(api.weightDeployStreaming(model.weights(), spec), 0u);
    // The fallback is the classic path: no streaming outcome.
    EXPECT_EQ(api.streamingDeploy(), nullptr);
}
