/**
 * @file
 * Background re-layout tests: divergence measurement from the row
 * cache's observed-frequency feed, threshold-gated migration that
 * recovers channel balance after hot-set drift, cache coherence
 * through the FTL relocation listener (no stale hits on migrated
 * groups), the IO-budget time stretch, and the byte-identity of
 * disabled configurations.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>
#include <vector>

#include "accel/candidate_source.hh"
#include "accel/row_cache.hh"
#include "ecssd/system.hh"
#include "sim/metrics.hh"

using namespace ecssd;

namespace
{

xclass::BenchmarkSpec
relayoutSpec()
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 4096);
    spec.hiddenDim = 64;
    return spec;
}

EcssdOptions
relayoutOptions()
{
    EcssdOptions options;
    options.ssd = ssdsim::smallTestConfig();
    options.ssd.channels = 8;
    options.cache.capacityBytes = 1ULL << 20;
    options.relayout.enabled = true;
    options.relayout.divergenceThreshold = 0.2;
    options.relayout.pageBudget = 4096;
    return options;
}

/** Replays the same candidate rows every batch (drifted hot set). */
class FixedSource : public accel::CandidateSource
{
  public:
    FixedSource(std::uint64_t rows, std::vector<std::uint64_t> batch)
        : rows_(rows), batch_(std::move(batch))
    {
    }

    std::uint64_t rows() const override { return rows_; }
    std::vector<std::uint64_t> nextBatch() override
    {
        return batch_;
    }

  private:
    std::uint64_t rows_;
    std::vector<std::uint64_t> batch_;
};

/**
 * Candidate rows covering @p wanted page groups that the system's
 * layout placed on channel @p channel: traffic concentrated there is
 * maximal drift from the balanced prediction.
 */
std::vector<std::uint64_t>
rowsOnChannel(const EcssdSystem &system,
              const xclass::BenchmarkSpec &spec, unsigned channel,
              std::size_t wanted)
{
    const std::uint64_t rows_per_page = std::max<std::uint64_t>(
        1, system.options().ssd.pageBytes / spec.rowBytes());
    std::vector<std::uint64_t> rows;
    const layout::LayoutStrategy &strategy = system.strategy();
    for (std::uint64_t group = 0;
         group < strategy.rows() && rows.size() < wanted; ++group)
        if (strategy.channelOf(group) == channel)
            rows.push_back(group * rows_per_page);
    return rows;
}

std::string
metricsJson(const sim::MetricsRegistry &registry)
{
    std::ostringstream os;
    registry.writeJson(os);
    return os.str();
}

} // namespace

TEST(Relayout, DisabledConfigIsInvisible)
{
    EcssdOptions options = relayoutOptions();
    options.relayout.enabled = false;
    EcssdSystem system(relayoutSpec(), options);
    system.runInference(2);

    const sim::Tick now = 12345;
    EXPECT_EQ(system.relayoutStep(now), now);
    EXPECT_EQ(system.relayoutStats().passes, 0u);

    sim::MetricsRegistry registry;
    const std::string before = metricsJson(registry);
    system.publishRelayoutMetrics(registry);
    EXPECT_EQ(metricsJson(registry), before);
}

TEST(Relayout, NeedsTheCacheFeed)
{
    // Without the row cache there is no observed-frequency feed:
    // the step must be a no-op, not a crash.
    EcssdOptions options = relayoutOptions();
    options.cache.capacityBytes = 0;
    EcssdSystem system(relayoutSpec(), options);
    system.runInference(1);
    EXPECT_EQ(system.relayoutStep(1000), 1000u);
    EXPECT_EQ(system.relayoutStats().passes, 0u);
}

TEST(Relayout, BalancedTrafficOnlyMeasures)
{
    // The trace source follows the same hotness oracle the layout
    // was built from: observed traffic stays near-balanced, so a
    // generous threshold keeps the pass measure-only.
    EcssdOptions options = relayoutOptions();
    options.relayout.divergenceThreshold = 0.9;
    EcssdSystem system(relayoutSpec(), options);
    const accel::RunResult result = system.runInference(2);

    const sim::Tick end = system.relayoutStep(result.totalTime);
    EXPECT_EQ(end, result.totalTime);
    const RelayoutStats &stats = system.relayoutStats();
    EXPECT_EQ(stats.passes, 1u);
    EXPECT_EQ(stats.migrationPasses, 0u);
    EXPECT_EQ(stats.rowsMigrated, 0u);
    EXPECT_LE(stats.lastDivergence, 0.9);
}

TEST(Relayout, DriftTriggersMigrationAndRecoversBalance)
{
    const xclass::BenchmarkSpec spec = relayoutSpec();
    EcssdSystem system(spec, relayoutOptions());

    // Concentrate every candidate on channel 0's groups: observed
    // divergence ~ 1 - 1/channels, far past the threshold.
    FixedSource source(spec.categories,
                       rowsOnChannel(system, spec, 0, 32));
    const accel::RunResult result =
        system.runInferenceWith(source, 4);

    const sim::Tick end = system.relayoutStep(result.totalTime);
    const RelayoutStats &stats = system.relayoutStats();
    EXPECT_EQ(stats.passes, 1u);
    EXPECT_EQ(stats.migrationPasses, 1u);
    EXPECT_GT(stats.rowsMigrated, 0u);
    EXPECT_GT(stats.pagesMoved, 0u);
    EXPECT_GT(end, result.totalTime);

    // The acceptance bar: the pass recovers at least 80% of the
    // gap between the drifted balance and perfect balance.
    const double before = 1.0 - stats.lastDivergence;
    EXPECT_GE(stats.recoveredBalance,
              before + 0.8 * (1.0 - before))
        << "before=" << before
        << " after=" << stats.recoveredBalance;

    // The migrations are visible in the FTL's counters.
    EXPECT_EQ(system.ssd().ftl().stats().relayoutMigrations,
              stats.pagesMoved);
}

TEST(Relayout, MigrationInvalidatesCachedGroups)
{
    const xclass::BenchmarkSpec spec = relayoutSpec();
    EcssdSystem system(spec, relayoutOptions());

    FixedSource source(spec.categories,
                       rowsOnChannel(system, spec, 0, 32));
    const accel::RunResult result =
        system.runInferenceWith(source, 4);

    // Snapshot which groups sit on channel 0 before the pass.
    std::vector<std::uint64_t> on_channel0;
    for (std::uint64_t g = 0; g < system.strategy().rows(); ++g)
        if (system.strategy().channelOf(g) == 0)
            on_channel0.push_back(g);

    accel::RowCache *cache = system.pipeline().rowCache();
    ASSERT_NE(cache, nullptr);
    const std::uint64_t probes_before =
        cache->stats().relocationProbes;

    system.relayoutStep(result.totalTime);
    const RelayoutStats &stats = system.relayoutStats();
    ASSERT_GT(stats.rowsMigrated, 0u);

    // Every migrated page fired the relocation listener...
    EXPECT_EQ(cache->stats().relocationProbes - probes_before,
              stats.pagesMoved);

    // ...and no migrated group may still be served from DRAM: a
    // stale hit would read the old channel's copy.
    for (const std::uint64_t g : on_channel0)
        if (system.strategy().channelOf(g) != 0)
            EXPECT_FALSE(cache->lookup(g, 1))
                << "stale cache hit on migrated group " << g;
}

TEST(Relayout, IoBudgetStretchesCompletion)
{
    const xclass::BenchmarkSpec spec = relayoutSpec();

    const auto elapsed = [&](double fraction) {
        EcssdOptions options = relayoutOptions();
        options.relayout.ioBudgetFraction = fraction;
        EcssdSystem system(spec, options);
        FixedSource source(spec.categories,
                           rowsOnChannel(system, spec, 0, 32));
        const accel::RunResult result =
            system.runInferenceWith(source, 4);
        const sim::Tick end =
            system.relayoutStep(result.totalTime);
        EXPECT_GT(system.relayoutStats().rowsMigrated, 0u);
        return end - result.totalTime;
    };

    const sim::Tick full = elapsed(1.0);
    const sim::Tick quarter = elapsed(0.25);
    // Same seed, same traffic, same migrations: the only difference
    // is the budget share, so a quarter share takes ~4x as long.
    EXPECT_GE(quarter, 3 * full);
}

TEST(Relayout, MetricsAppearOnlyAfterAPass)
{
    const xclass::BenchmarkSpec spec = relayoutSpec();
    EcssdSystem system(spec, relayoutOptions());
    FixedSource source(spec.categories,
                       rowsOnChannel(system, spec, 0, 32));
    const accel::RunResult result =
        system.runInferenceWith(source, 2);

    sim::MetricsRegistry registry;
    const std::string empty = metricsJson(registry);
    system.publishRelayoutMetrics(registry);
    EXPECT_EQ(metricsJson(registry), empty);

    system.relayoutStep(result.totalTime);
    system.publishRelayoutMetrics(registry);
    const std::string after = metricsJson(registry);
    EXPECT_NE(after.find("relayout.passes"), std::string::npos);
    EXPECT_NE(after.find("relayout.recovered_balance"),
              std::string::npos);
    EXPECT_NE(after.find("relayout.divergence"),
              std::string::npos);
}

TEST(Relayout, ValidateRejectsBadConfig)
{
    const xclass::BenchmarkSpec spec = relayoutSpec();

    EcssdOptions bad = relayoutOptions();
    bad.relayout.ioBudgetFraction = 0.0;
    EXPECT_THROW(EcssdSystem(spec, bad), sim::FatalError);

    bad = relayoutOptions();
    bad.relayout.ioBudgetFraction = 1.5;
    EXPECT_THROW(EcssdSystem(spec, bad), sim::FatalError);

    bad = relayoutOptions();
    bad.relayout.divergenceThreshold = -0.1;
    EXPECT_THROW(EcssdSystem(spec, bad), sim::FatalError);

    bad = relayoutOptions();
    bad.relayout.pageBudget = 0;
    EXPECT_THROW(EcssdSystem(spec, bad), sim::FatalError);

    // Disabled configs skip the checks entirely.
    EcssdOptions off = relayoutOptions();
    off.relayout.enabled = false;
    off.relayout.ioBudgetFraction = 0.0;
    EXPECT_NO_THROW(EcssdSystem(spec, off));
}
