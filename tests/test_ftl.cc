/**
 * @file
 * FTL tests: mapping invariants, channel steering, GC behaviour, and
 * wear tracking.
 */

#include <gtest/gtest.h>

#include <set>

#include "ssdsim/ftl.hh"

using namespace ecssd::sim;
using namespace ecssd::ssdsim;

namespace
{

struct FtlFixture
{
    SsdConfig config = smallTestConfig();
    FlashArray flash{config};
    Ftl ftl{config, flash};
};

} // namespace

TEST(Ftl, LogicalSpaceReservesOverProvisioning)
{
    FtlFixture f;
    EXPECT_LT(f.ftl.logicalPages(), f.config.totalPages());
    EXPECT_GT(f.ftl.logicalPages(),
              f.config.totalPages() * 9 / 10);
}

TEST(Ftl, UnmappedPageTranslatesToNothing)
{
    FtlFixture f;
    EXPECT_FALSE(f.ftl.translate(0).has_value());
}

TEST(Ftl, WriteThenTranslate)
{
    FtlFixture f;
    f.ftl.write(5, 0);
    const auto ppa = f.ftl.translate(5);
    ASSERT_TRUE(ppa.has_value());
    EXPECT_EQ(ppa->channel, f.ftl.channelOfLpa(5));
}

TEST(Ftl, ReadOfUnmappedIsFatal)
{
    FtlFixture f;
    EXPECT_THROW(f.ftl.read(7, 0), FatalError);
}

TEST(Ftl, ReadAfterWriteWorks)
{
    FtlFixture f;
    const Tick wrote = f.ftl.write(3, 0);
    const Tick read = f.ftl.read(3, wrote);
    EXPECT_GT(read, wrote);
    EXPECT_EQ(f.ftl.stats().hostReads, 1u);
}

TEST(Ftl, ChannelSteeringPartitionsLpaRanges)
{
    FtlFixture f;
    const std::uint64_t per_channel =
        (f.ftl.logicalPages() + f.config.channels - 1)
        / f.config.channels;
    EXPECT_EQ(f.ftl.channelOfLpa(0), 0u);
    EXPECT_EQ(f.ftl.channelOfLpa(per_channel - 1), 0u);
    EXPECT_EQ(f.ftl.channelOfLpa(per_channel), 1u);
    EXPECT_EQ(f.ftl.channelOfLpa(f.ftl.logicalPages() - 1),
              f.config.channels - 1);
}

TEST(Ftl, OverwriteRemapsToNewPhysicalPage)
{
    FtlFixture f;
    f.ftl.write(9, 0);
    const PhysicalPage first = *f.ftl.translate(9);
    f.ftl.write(9, 1000);
    const PhysicalPage second = *f.ftl.translate(9);
    EXPECT_FALSE(first == second);
}

TEST(Ftl, DistinctLpasGetDistinctPhysicalPages)
{
    FtlFixture f;
    std::set<std::uint64_t> seen;
    const AddressCodec codec(f.config);
    for (LogicalPage lpa = 0; lpa < 64; ++lpa) {
        f.ftl.write(lpa, 0);
        const auto ppa = f.ftl.translate(lpa);
        ASSERT_TRUE(ppa.has_value());
        EXPECT_TRUE(seen.insert(codec.encode(*ppa)).second)
            << "duplicate mapping for lpa " << lpa;
    }
}

TEST(Ftl, TrimUnmapsPage)
{
    FtlFixture f;
    f.ftl.write(4, 0);
    f.ftl.trim(4);
    EXPECT_FALSE(f.ftl.translate(4).has_value());
    // Trimming twice (or an unmapped page) is a no-op.
    f.ftl.trim(4);
}

TEST(Ftl, OutOfRangeLpaPanics)
{
    FtlFixture f;
    EXPECT_THROW(f.ftl.write(f.ftl.logicalPages(), 0), PanicError);
    EXPECT_THROW(f.ftl.channelOfLpa(f.ftl.logicalPages()),
                 PanicError);
}

TEST(Ftl, OverwriteChurnTriggersGc)
{
    FtlFixture f;
    // Hammer a small working set inside one channel's range until
    // the pool runs low and GC must reclaim.
    Tick t = 0;
    for (int round = 0; round < 400; ++round)
        t = f.ftl.write(round % 8, t);
    EXPECT_GT(f.ftl.stats().gcRuns, 0u);
    EXPECT_GT(f.ftl.stats().gcErases, 0u);
    // All eight pages must still be mapped and readable.
    for (LogicalPage lpa = 0; lpa < 8; ++lpa)
        EXPECT_TRUE(f.ftl.translate(lpa).has_value());
}

TEST(Ftl, GcPreservesDataMapping)
{
    FtlFixture f;
    Tick t = 0;
    // Fill a channel range with live data, then churn one page to
    // force relocations of the others.
    for (LogicalPage lpa = 0; lpa < 24; ++lpa)
        t = f.ftl.write(lpa, t);
    for (int round = 0; round < 300; ++round)
        t = f.ftl.write(24 + (round % 4), t);
    for (LogicalPage lpa = 0; lpa < 24; ++lpa)
        EXPECT_TRUE(f.ftl.translate(lpa).has_value())
            << "lost mapping for lpa " << lpa;
}

TEST(Ftl, WriteAmplificationAtLeastOne)
{
    FtlFixture f;
    EXPECT_DOUBLE_EQ(f.ftl.stats().writeAmplification(), 1.0);
    Tick t = 0;
    for (int round = 0; round < 300; ++round)
        t = f.ftl.write(round % 6, t);
    EXPECT_GE(f.ftl.stats().writeAmplification(), 1.0);
}

TEST(Ftl, FreeFractionDecreasesWithWrites)
{
    FtlFixture f;
    const double before = f.ftl.freeFraction(0);
    Tick t = 0;
    for (LogicalPage lpa = 0; lpa < 16; ++lpa)
        t = f.ftl.write(lpa, t);
    EXPECT_LT(f.ftl.freeFraction(0), before);
    EXPECT_DOUBLE_EQ(before, 1.0);
}

TEST(Ftl, EraseSpreadStaysBounded)
{
    FtlFixture f;
    Tick t = 0;
    for (int round = 0; round < 1500; ++round)
        t = f.ftl.write(round % 8, t);
    // Greedy victimization with erase-count tie-break keeps wear
    // within a modest band on a churned pool.
    EXPECT_LE(f.ftl.eraseCountSpread(), 40u);
}

TEST(Ftl, WritesLandInSteeredChannel)
{
    FtlFixture f;
    const std::uint64_t per_channel =
        (f.ftl.logicalPages() + f.config.channels - 1)
        / f.config.channels;
    for (unsigned ch = 0; ch < f.config.channels; ++ch) {
        const LogicalPage lpa = ch * per_channel;
        f.ftl.write(lpa, 0);
        EXPECT_EQ(f.ftl.translate(lpa)->channel, ch);
    }
}
