/**
 * @file
 * Hot-row DRAM cache tests: the set-associative structure (lookup,
 * admission policies, eviction, relocation invalidation, degraded-read
 * accounting), the options validation that sizes it, and the system-
 * level guarantees — fewer flash candidate reads, cache metrics that
 * are byte-identical across thread counts, a disabled cache that is
 * invisible, and FTL relocations that probe the cache.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "accel/row_cache.hh"
#include "ecssd/system.hh"
#include "sim/metrics.hh"
#include "ssdsim/address.hh"

using namespace ecssd;
using accel::CacheConfig;
using accel::RowCache;

namespace
{

constexpr std::uint64_t kGroupBytes = 4096;

/** A one-set cache of @p ways entries (every group collides). */
RowCache
oneSetCache(unsigned ways, CacheConfig::Admission admission,
            std::function<double(std::uint64_t)> hot_degree = {})
{
    CacheConfig config;
    config.capacityBytes = ways * kGroupBytes;
    config.associativity = ways;
    config.admission = admission;
    return RowCache(config, kGroupBytes, 1024, std::move(hot_degree));
}

std::vector<ssdsim::PhysicalPage>
pagesInBlock(unsigned channel, unsigned block)
{
    return {ssdsim::PhysicalPage{channel, 0, 0, block, 0}};
}

xclass::BenchmarkSpec
smallSpec()
{
    return xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 4096);
}

/** Metrics JSON of one instrumented run at @p threads. */
std::string
runMetricsJson(const EcssdOptions &options)
{
    sim::MetricsRegistry registry;
    EcssdSystem system(smallSpec(), options);
    system.attachObservability(&registry, nullptr);
    const accel::RunResult result = system.runInference(2);
    system.publishMetrics(registry, result);
    std::ostringstream os;
    registry.writeJson(os);
    return os.str();
}

std::uint64_t
totalFp32Pages(const accel::RunResult &result)
{
    std::uint64_t pages = 0;
    for (const accel::BatchTiming &batch : result.batches)
        pages += batch.fp32PagesRead;
    return pages;
}

} // namespace

// --- The structure -----------------------------------------------------

TEST(RowCache, MissAdmitHitRoundTrip)
{
    RowCache cache = oneSetCache(4, CacheConfig::Admission::AdmitAll);
    EXPECT_EQ(cache.entryCount(), 4u);
    EXPECT_EQ(cache.occupancy(), 0u);

    EXPECT_FALSE(cache.lookup(5, 2));
    EXPECT_TRUE(cache.admit(5, pagesInBlock(0, 1)));
    EXPECT_EQ(cache.occupancy(), 1u);
    EXPECT_TRUE(cache.lookup(5, 2));

    // Re-admitting a resident group is a no-op.
    EXPECT_FALSE(cache.admit(5, pagesInBlock(0, 1)));
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().insertions, 1u);
    EXPECT_DOUBLE_EQ(cache.stats().hitRate(), 0.5);
}

TEST(RowCache, EvictionPicksLowestPriorityOldestFirst)
{
    RowCache cache = oneSetCache(2, CacheConfig::Admission::AdmitAll);
    // Groups 1 and 2, equal frequency: the tie falls on the older
    // insertion (group 1).
    EXPECT_FALSE(cache.lookup(1, 1));
    EXPECT_TRUE(cache.admit(1, pagesInBlock(0, 1)));
    EXPECT_FALSE(cache.lookup(2, 1));
    EXPECT_TRUE(cache.admit(2, pagesInBlock(0, 2)));

    EXPECT_FALSE(cache.lookup(3, 1));
    EXPECT_TRUE(cache.admit(3, pagesInBlock(0, 3)));
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.occupancy(), 2u);
    EXPECT_FALSE(cache.lookup(1, 1)); // evicted
    EXPECT_TRUE(cache.lookup(2, 1));  // survived
}

TEST(RowCache, HotDegreeAdmissionKeepsTheHotSet)
{
    // Groups below 10 are predicted hot; the rest cold.
    RowCache cache = oneSetCache(
        2, CacheConfig::Admission::HotDegree,
        [](std::uint64_t group) { return group < 10 ? 0.5 : 0.0; });

    // Two hot groups, each seen twice: priority 2.5.
    for (const std::uint64_t group : {1, 2}) {
        cache.lookup(group, 1);
        cache.lookup(group, 1);
        EXPECT_TRUE(cache.admit(group, pagesInBlock(0, group)));
    }

    // A cold group seen once (priority 1.0) cannot displace them.
    EXPECT_FALSE(cache.lookup(20, 1));
    EXPECT_FALSE(cache.admit(20, pagesInBlock(0, 20)));
    EXPECT_EQ(cache.stats().admissionRejects, 1u);
    EXPECT_TRUE(cache.lookup(1, 1));
    EXPECT_TRUE(cache.lookup(2, 1));

    // A hotter group (seen four times: priority 4.5) gets in.
    for (int i = 0; i < 4; ++i)
        cache.lookup(7, 1);
    EXPECT_TRUE(cache.admit(7, pagesInBlock(0, 7)));
    EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(RowCache, RelocationInvalidatesByBlock)
{
    RowCache cache = oneSetCache(4, CacheConfig::Admission::AdmitAll);
    cache.lookup(3, 1);
    EXPECT_TRUE(cache.admit(3, pagesInBlock(1, 6)));
    cache.lookup(4, 1);
    EXPECT_TRUE(cache.admit(4, pagesInBlock(2, 6)));

    // Same block, a different page of it: the group's backing block
    // was rewritten, so the DRAM copy must go.
    cache.invalidatePhysical(ssdsim::PhysicalPage{1, 0, 0, 6, 7});
    EXPECT_EQ(cache.stats().invalidations, 1u);
    EXPECT_EQ(cache.occupancy(), 1u);
    EXPECT_FALSE(cache.lookup(3, 1));
    EXPECT_TRUE(cache.lookup(4, 1));

    // A relocation elsewhere probes but drops nothing.
    cache.invalidatePhysical(ssdsim::PhysicalPage{3, 0, 0, 6, 0});
    EXPECT_EQ(cache.stats().relocationProbes, 2u);
    EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(RowCache, HitOnFlashLostGroupCountsAvoidedDegradation)
{
    RowCache cache = oneSetCache(4, CacheConfig::Admission::AdmitAll);
    cache.lookup(9, 1);
    EXPECT_TRUE(cache.admit(9, pagesInBlock(0, 2)));
    cache.markFlashLost(9);
    EXPECT_TRUE(cache.flashLost(9));

    EXPECT_TRUE(cache.lookup(9, 3));
    EXPECT_EQ(cache.stats().avoidedDegradedRows, 3u);
}

TEST(RowCache, InvalidateAllEmptiesTheCache)
{
    RowCache cache = oneSetCache(4, CacheConfig::Admission::AdmitAll);
    for (const std::uint64_t group : {1, 2, 3}) {
        cache.lookup(group, 1);
        cache.admit(group, pagesInBlock(0, group));
    }
    EXPECT_EQ(cache.occupancy(), 3u);
    cache.invalidateAll();
    EXPECT_EQ(cache.occupancy(), 0u);
    EXPECT_FALSE(cache.lookup(1, 1));
}

// --- Options validation ------------------------------------------------

TEST(OptionsValidate, RejectsBrokenKnobs)
{
    EcssdOptions options;
    options.threads = 0;
    EXPECT_THROW(options.validate(), sim::FatalError);

    options = EcssdOptions{};
    options.predictorNoise = -1.0;
    EXPECT_THROW(options.validate(), sim::FatalError);
    options.predictorNoise =
        std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(options.validate(), sim::FatalError);

    options = EcssdOptions{};
    options.cache.associativity = 0;
    EXPECT_THROW(options.validate(), sim::FatalError);

    EXPECT_NO_THROW(EcssdOptions{}.validate());
}

TEST(OptionsValidate, CacheMustFitDramAfterScreenerResidency)
{
    const xclass::BenchmarkSpec spec = smallSpec();
    EcssdOptions options = EcssdOptions::full();
    // Claiming every DRAM byte cannot leave room for the resident
    // INT4 screener.
    options.cache.capacityBytes = options.ssd.dramBytes;
    EXPECT_THROW(options.validate(&spec), sim::FatalError);
    EXPECT_THROW(EcssdSystem(spec, options), sim::FatalError);

    options.cache.capacityBytes = 4ULL << 20;
    EXPECT_NO_THROW(options.validate(&spec));
}

// --- System integration ------------------------------------------------

TEST(RowCacheSystem, CacheCutsFlashCandidateReads)
{
    const xclass::BenchmarkSpec spec = smallSpec();
    EcssdSystem plain(spec, EcssdOptions::full());
    const accel::RunResult base = plain.runInference(2);

    EcssdOptions options = EcssdOptions::full();
    options.cache.capacityBytes = 4ULL << 20;
    EcssdSystem cached(spec, options);
    const accel::RunResult result = cached.runInference(2);

    EXPECT_GT(result.cacheHitRows, 0u);
    EXPECT_GT(result.cacheHitRate(), 0.0);
    EXPECT_LT(totalFp32Pages(result), totalFp32Pages(base));

    // Caching changes where bytes come from, never what is computed:
    // the candidate stream is identical.
    ASSERT_EQ(result.batches.size(), base.batches.size());
    for (std::size_t b = 0; b < base.batches.size(); ++b)
        EXPECT_EQ(result.batches[b].candidateRows,
                  base.batches[b].candidateRows);
}

TEST(RowCacheSystem, MetricsByteIdenticalAcrossThreads)
{
    EcssdOptions options = EcssdOptions::full();
    options.cache.capacityBytes = 4ULL << 20;
    options.threads = 1;
    const std::string reference = runMetricsJson(options);
    EXPECT_NE(reference.find("cache.hit"), std::string::npos);
    EXPECT_NE(reference.find("cache.miss"), std::string::npos);
    EXPECT_NE(reference.find("run.cache_hit_rate"),
              std::string::npos);

    options.threads = 2;
    EXPECT_EQ(runMetricsJson(options), reference);
    options.threads = 8;
    EXPECT_EQ(runMetricsJson(options), reference);
}

TEST(RowCacheSystem, DisabledCacheIsInvisible)
{
    // Zero capacity must be byte-identical to the pre-cache system:
    // no cache object, no "cache." metric keys, identical JSON.
    const std::string reference =
        runMetricsJson(EcssdOptions::full());
    EXPECT_EQ(reference.find("cache."), std::string::npos);

    EcssdOptions zero = EcssdOptions::full();
    zero.cache.capacityBytes = 0;
    zero.cache.associativity = 16; // knobs without capacity are inert
    EXPECT_EQ(runMetricsJson(zero), reference);
}

TEST(RowCacheSystem, FtlRelocationsProbeTheCache)
{
    // Small geometry (8 pages/block) so host writes seal blocks the
    // patrol scrub will refresh; big-enough budget to reach them.
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 512);
    spec.hiddenDim = 128;
    EcssdOptions options = EcssdOptions::full();
    options.ssd = ssdsim::smallTestConfig();
    options.ssd.channels = 8;
    options.ssd.retentionErrorCoefficient = 1e-3;
    options.ssd.scrubErrorThreshold = 1e-4;
    options.ssd.scrubBudgetPages = 1024;
    options.cache.capacityBytes = 1ULL << 20;

    EcssdSystem system(spec, options);
    system.runInference(2);
    const accel::RowCache *cache = system.pipeline().rowCache();
    ASSERT_NE(cache, nullptr);
    EXPECT_GT(cache->occupancy(), 0u);

    // Host-written pages age past the scrub threshold; the refresh
    // relocates them, and every relocation must probe the cache (a
    // block-key match additionally invalidates the resident group).
    sim::Tick now = 0;
    for (ssdsim::LogicalPage lpa = 0; lpa < 256; ++lpa) {
        system.ssd().hostWrite(
            lpa, [&now](sim::Tick done) { now = done; });
        system.ssd().queue().run();
    }
    system.ssd().ftl().patrolScrub(now + sim::seconds(60.0));
    EXPECT_GT(system.ssd().ftl().stats().scrubRelocations, 0u);
    EXPECT_GT(cache->stats().relocationProbes, 0u);
    EXPECT_GE(cache->stats().relocationProbes,
              cache->stats().invalidations);
}
