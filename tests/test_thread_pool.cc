/**
 * @file
 * Deterministic thread-pool tests: parallelFor must cover the range
 * exactly once with chunk boundaries that depend only on (begin, end,
 * grain) — never on the worker count — so disciplined bodies produce
 * bit-identical results at any pool size.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

#include "sim/thread_pool.hh"

using ecssd::sim::ThreadPool;

namespace
{

/** Chunk boundaries parallelFor hands to the body, sorted. */
std::vector<std::pair<std::size_t, std::size_t>>
chunksSeen(ThreadPool &pool, std::size_t begin, std::size_t end,
           std::size_t grain)
{
    std::mutex mutex;
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    pool.parallelFor(begin, end, grain,
                     [&](std::size_t b, std::size_t e) {
                         std::lock_guard<std::mutex> lock(mutex);
                         chunks.emplace_back(b, e);
                     });
    std::sort(chunks.begin(), chunks.end());
    return chunks;
}

} // namespace

TEST(ThreadPool, ClampsThreadCountToAtLeastOne)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.threads(), 1u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce)
{
    for (const unsigned threads : {1u, 2u, 3u, 8u}) {
        ThreadPool pool(threads);
        std::vector<std::atomic<int>> touched(1000);
        pool.parallelFor(0, touched.size(), 7,
                         [&](std::size_t b, std::size_t e) {
                             for (std::size_t i = b; i < e; ++i)
                                 touched[i].fetch_add(1);
                         });
        for (std::size_t i = 0; i < touched.size(); ++i)
            EXPECT_EQ(touched[i].load(), 1)
                << "index " << i << " with " << threads
                << " threads";
    }
}

TEST(ThreadPool, ChunkBoundariesIndependentOfThreadCount)
{
    ThreadPool serial(1);
    const auto reference = chunksSeen(serial, 3, 1234, 17);
    for (const unsigned threads : {2u, 4u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(chunksSeen(pool, 3, 1234, 17), reference)
            << threads << " threads";
    }
}

TEST(ThreadPool, ChunkGeometryIsExact)
{
    // 100 indices at grain 30 -> chunks of 30/30/30/10 from 0.
    ThreadPool pool(4);
    const auto chunks = chunksSeen(pool, 0, 100, 30);
    const std::vector<std::pair<std::size_t, std::size_t>> expected{
        {0, 30}, {30, 60}, {60, 90}, {90, 100}};
    EXPECT_EQ(chunks, expected);
}

TEST(ThreadPool, EmptyRangeNeverCallsBody)
{
    for (const unsigned threads : {1u, 4u}) {
        ThreadPool pool(threads);
        bool called = false;
        pool.parallelFor(5, 5, 8,
                         [&](std::size_t, std::size_t) {
                             called = true;
                         });
        EXPECT_FALSE(called);
    }
}

TEST(ThreadPool, GrainLargerThanRangeIsOneChunk)
{
    ThreadPool pool(4);
    const auto chunks = chunksSeen(pool, 10, 25, 1000);
    const std::vector<std::pair<std::size_t, std::size_t>> expected{
        {10, 25}};
    EXPECT_EQ(chunks, expected);
}

TEST(ThreadPool, GrainOfOneCoversSingletonChunks)
{
    ThreadPool pool(3);
    const auto chunks = chunksSeen(pool, 0, 5, 1);
    ASSERT_EQ(chunks.size(), 5u);
    for (std::size_t i = 0; i < 5; ++i) {
        EXPECT_EQ(chunks[i].first, i);
        EXPECT_EQ(chunks[i].second, i + 1);
    }
}

TEST(ThreadPool, PerChunkReductionMergesDeterministically)
{
    // The contract's reduction pattern: accumulate per chunk, merge
    // in chunk-index order.  Result must match the serial sum bit
    // for bit at any pool size.
    const std::size_t n = 4096;
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i)
        values[i] = 1.0 / static_cast<double>(i + 1);

    const auto reduce = [&](ThreadPool &pool) {
        const std::size_t grain = 64;
        const std::size_t chunk_count = (n + grain - 1) / grain;
        std::vector<double> partial(chunk_count, 0.0);
        pool.parallelFor(0, n, grain,
                         [&](std::size_t b, std::size_t e) {
                             double acc = 0.0;
                             for (std::size_t i = b; i < e; ++i)
                                 acc += values[i];
                             partial[b / grain] = acc;
                         });
        double total = 0.0;
        for (const double p : partial)
            total += p;
        return total;
    };

    ThreadPool serial(1);
    const double reference = reduce(serial);
    for (const unsigned threads : {2u, 8u}) {
        ThreadPool pool(threads);
        EXPECT_EQ(reduce(pool), reference) << threads << " threads";
    }
}

TEST(ThreadPool, NestedParallelForRunsInline)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> touched(64);
    pool.parallelFor(0, 8, 1, [&](std::size_t ob, std::size_t oe) {
        for (std::size_t o = ob; o < oe; ++o) {
            // A body calling back into the pool must not deadlock;
            // the nested call runs serially on the calling worker.
            pool.parallelFor(o * 8, (o + 1) * 8, 2,
                             [&](std::size_t b, std::size_t e) {
                                 for (std::size_t i = b; i < e; ++i)
                                     touched[i].fetch_add(1);
                             });
        }
    });
    for (std::size_t i = 0; i < touched.size(); ++i)
        EXPECT_EQ(touched[i].load(), 1) << "index " << i;
}

TEST(ThreadPool, ManySequentialJobsReuseThePool)
{
    ThreadPool pool(4);
    std::uint64_t total = 0;
    for (unsigned job = 0; job < 200; ++job) {
        std::vector<std::uint64_t> out(257, 0);
        pool.parallelFor(0, out.size(), 16,
                         [&](std::size_t b, std::size_t e) {
                             for (std::size_t i = b; i < e; ++i)
                                 out[i] = i + job;
                         });
        total += std::accumulate(out.begin(), out.end(),
                                 std::uint64_t{0});
    }
    // sum over jobs of (sum 0..256 + 257*job).
    std::uint64_t expected = 0;
    for (unsigned job = 0; job < 200; ++job)
        expected += 256 * 257 / 2 + 257 * std::uint64_t{job};
    EXPECT_EQ(total, expected);
}
