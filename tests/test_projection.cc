/**
 * @file
 * Random-projection tests: shape, determinism, and inner-product
 * preservation (the property screening relies on).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numeric/mac.hh"
#include "numeric/projection.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace ecssd::numeric;

TEST(Projector, ShapeIsKxD)
{
    const Projector p(64, 16, 1);
    EXPECT_EQ(p.fullDim(), 64u);
    EXPECT_EQ(p.shrunkDim(), 16u);
}

TEST(Projector, RejectsExpansion)
{
    EXPECT_THROW(Projector(16, 32, 1), ecssd::sim::PanicError);
    EXPECT_THROW(Projector(16, 0, 1), ecssd::sim::PanicError);
}

TEST(Projector, DeterministicForSeed)
{
    const Projector a(32, 8, 99);
    const Projector b(32, 8, 99);
    std::vector<float> v(32, 1.0f);
    EXPECT_EQ(a.project(v), b.project(v));
}

TEST(Projector, DifferentSeedsDiffer)
{
    const Projector a(32, 8, 1);
    const Projector b(32, 8, 2);
    std::vector<float> v(32, 1.0f);
    EXPECT_NE(a.project(v), b.project(v));
}

TEST(Projector, ProjectionIsLinear)
{
    const Projector p(32, 8, 5);
    ecssd::sim::Rng rng(6);
    std::vector<float> x(32), y(32), sum(32);
    for (std::size_t i = 0; i < 32; ++i) {
        x[i] = static_cast<float>(rng.gaussian());
        y[i] = static_cast<float>(rng.gaussian());
        sum[i] = x[i] + y[i];
    }
    const std::vector<float> px = p.project(x);
    const std::vector<float> py = p.project(y);
    const std::vector<float> psum = p.project(sum);
    for (std::size_t k = 0; k < 8; ++k)
        EXPECT_NEAR(psum[k], px[k] + py[k], 1e-4f);
}

TEST(Projector, PreservesInnerProductsOnAverage)
{
    // E[<Px, Pw>] = <x, w>: check across many pairs the average
    // relative deviation is small and the correlation strong.
    const std::size_t d = 256, k = 64;
    const Projector p(d, k, 7);
    ecssd::sim::Rng rng(8);

    double num = 0.0, den_x = 0.0, den_y = 0.0;
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<float> x(d), w(d);
        for (std::size_t i = 0; i < d; ++i) {
            x[i] = static_cast<float>(rng.gaussian());
            w[i] = static_cast<float>(rng.gaussian());
        }
        const double true_dot = referenceDot(x, w);
        const double proj_dot =
            referenceDot(p.project(x), p.project(w));
        num += true_dot * proj_dot;
        den_x += true_dot * true_dot;
        den_y += proj_dot * proj_dot;
    }
    // For independent Gaussian pairs the JL estimator's noise floor
    // is |x||w|/sqrt(K), so the correlation is ~1/sqrt(1 + D/K).
    const double correlation = num / std::sqrt(den_x * den_y);
    EXPECT_GT(correlation, 0.4);
}

TEST(Projector, PreservesLargeInnerProducts)
{
    // The screening-relevant regime: when w is close to x, the true
    // dot dominates the JL noise and the projected score must stand
    // far above unrelated rows.
    const std::size_t d = 256, k = 64;
    const Projector p(d, k, 17);
    ecssd::sim::Rng rng(18);
    int wins = 0;
    const int trials = 50;
    for (int trial = 0; trial < trials; ++trial) {
        std::vector<float> x(d), related(d), unrelated(d);
        for (std::size_t i = 0; i < d; ++i) {
            x[i] = static_cast<float>(rng.gaussian());
            related[i] = x[i]
                + static_cast<float>(rng.gaussian(0.0, 0.3));
            unrelated[i] = static_cast<float>(rng.gaussian());
        }
        const std::vector<float> px = p.project(x);
        const double related_score =
            referenceDot(px, p.project(related));
        const double unrelated_score =
            referenceDot(px, p.project(unrelated));
        wins += related_score > unrelated_score;
    }
    EXPECT_GE(wins, trials - 2);
}

TEST(Projector, ProjectRowsMatchesPerRowProject)
{
    const Projector p(16, 4, 9);
    FloatMatrix weights(3, 16);
    ecssd::sim::Rng rng(10);
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 16; ++c)
            weights.at(r, c) = static_cast<float>(rng.gaussian());

    const FloatMatrix projected = p.projectRows(weights);
    EXPECT_EQ(projected.rows(), 3u);
    EXPECT_EQ(projected.cols(), 4u);
    for (std::size_t r = 0; r < 3; ++r) {
        const std::vector<float> row = p.project(weights.row(r));
        for (std::size_t c = 0; c < 4; ++c)
            EXPECT_FLOAT_EQ(projected.at(r, c), row[c]);
    }
}

TEST(Projector, InputLengthMismatchPanics)
{
    const Projector p(16, 4, 11);
    std::vector<float> wrong(8, 1.0f);
    EXPECT_THROW(p.project(wrong), ecssd::sim::PanicError);
}

TEST(FloatMatrix, IndexingAndRows)
{
    FloatMatrix m(2, 3);
    m.at(1, 2) = 5.0f;
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_FLOAT_EQ(m.row(1)[2], 5.0f);
    EXPECT_EQ(m.fp32Bytes(), 24u);
}

TEST(FloatMatrix, OutOfRangePanics)
{
    FloatMatrix m(2, 3);
    EXPECT_THROW(m.at(2, 0), ecssd::sim::PanicError);
    EXPECT_THROW(m.at(0, 3), ecssd::sim::PanicError);
    EXPECT_THROW(m.row(2), ecssd::sim::PanicError);
}
