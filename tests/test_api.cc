/**
 * @file
 * Table 1 API tests: mode discipline, the full inference call
 * sequence, SSD-mode commands, and the explicit InferenceSession
 * (Status-reporting) variant of the query state machine.
 */

#include <gtest/gtest.h>

#include "ecssd/api.hh"
#include "sim/rng.hh"
#include "xclass/metrics.hh"

using namespace ecssd;

namespace
{

struct ApiFixture
{
    ApiFixture()
        : spec(makeSpec()), model(spec, 1)
    {
        options.ssd = ssdsim::smallTestConfig();
        options.ssd.channels = 8;
    }

    static xclass::BenchmarkSpec
    makeSpec()
    {
        xclass::BenchmarkSpec spec = xclass::scaledDown(
            xclass::benchmarkByName("GNMT-E32K"), 512);
        spec.hiddenDim = 128;
        return spec;
    }

    EcssdOptions options;
    xclass::BenchmarkSpec spec;
    xclass::SyntheticModel model;
};

} // namespace

TEST(EcssdApi, StartsInSsdMode)
{
    EcssdApi api;
    EXPECT_EQ(api.mode(), Mode::Ssd);
    api.ecssdEnable();
    EXPECT_EQ(api.mode(), Mode::Accelerator);
    api.ecssdDisable();
    EXPECT_EQ(api.mode(), Mode::Ssd);
}

TEST(EcssdApi, AcceleratorCallsRequireAcceleratorMode)
{
    ApiFixture f;
    EcssdApi api(f.options);
    EXPECT_THROW(api.weightDeploy(f.model.weights(), f.spec),
                 sim::FatalError);
    std::vector<float> feature(f.spec.hiddenDim, 1.0f);
    EXPECT_THROW(api.int4InputSend(feature), sim::FatalError);
    EXPECT_THROW(api.int4Screen(), sim::FatalError);
    EXPECT_THROW(api.cfp32Classify(), sim::FatalError);
    EXPECT_THROW(api.getResults(5), sim::FatalError);
}

TEST(EcssdApi, ComputeCallsRequireDeployedWeights)
{
    ApiFixture f;
    EcssdApi api(f.options);
    api.ecssdEnable();
    std::vector<float> feature(f.spec.hiddenDim, 1.0f);
    EXPECT_THROW(api.int4InputSend(feature), sim::FatalError);
    EXPECT_THROW(api.filterThreshold(0.0), sim::FatalError);
}

TEST(EcssdApi, FullInferenceSequence)
{
    ApiFixture f;
    EcssdApi api(f.options);
    api.ecssdEnable();
    const sim::Tick deploy =
        api.weightDeploy(f.model.weights(), f.spec);
    EXPECT_GT(deploy, 0u);

    sim::Rng rng(2);
    std::vector<std::vector<float>> calibration;
    for (int q = 0; q < 4; ++q)
        calibration.push_back(f.model.sampleQuery(rng));
    api.calibrateThreshold(calibration);

    const std::vector<float> query = f.model.sampleQuery(rng);
    api.int4InputSend(query);
    api.cfp32InputSend(query);
    api.int4Screen();
    EXPECT_GT(api.lastCandidateCount(), 0u);
    EXPECT_LT(api.lastCandidateCount(), f.spec.categories);
    api.cfp32Classify();
    EXPECT_GT(api.lastInferenceLatency(), 0u);

    const auto prediction = api.getResults(5);
    EXPECT_EQ(prediction.topCategories.size(), 5u);
    EXPECT_EQ(prediction.candidateCount,
              api.lastCandidateCount());
    // Scores are sorted descending.
    for (std::size_t i = 1; i < prediction.topScores.size(); ++i)
        EXPECT_GE(prediction.topScores[i - 1],
                  prediction.topScores[i]);
}

TEST(EcssdApi, PredictionMatchesDirectClassifier)
{
    ApiFixture f;
    EcssdApi api(f.options);
    api.ecssdEnable();
    api.weightDeploy(f.model.weights(), f.spec);

    sim::Rng rng(3);
    const std::vector<float> query = f.model.sampleQuery(rng);
    api.int4InputSend(query);
    api.cfp32InputSend(query);
    api.filterThreshold(-1e30); // pass everything: exact top-k
    api.int4Screen();
    api.cfp32Classify();
    const auto api_pred = api.getResults(3);

    const xclass::ApproximateClassifier reference(
        f.model.weights(), f.spec, f.options.seed);
    const auto exact = reference.exact(query, 3);
    EXPECT_GE(xclass::recall(exact.topCategories,
                             api_pred.topCategories),
              0.66);
}

TEST(EcssdApi, OutOfOrderCallsAreFatal)
{
    ApiFixture f;
    EcssdApi api(f.options);
    api.ecssdEnable();
    api.weightDeploy(f.model.weights(), f.spec);
    EXPECT_THROW(api.int4Screen(), sim::FatalError);

    sim::Rng rng(4);
    const std::vector<float> query = f.model.sampleQuery(rng);
    api.int4InputSend(query);
    EXPECT_THROW(api.cfp32Classify(), sim::FatalError);
    api.cfp32InputSend(query);
    EXPECT_THROW(api.getResults(1), sim::FatalError);
}

TEST(EcssdApi, SsdModeReadWrite)
{
    ApiFixture f;
    EcssdApi api(f.options);
    const sim::Tick wrote = api.ssdWrite(7);
    EXPECT_GT(wrote, 0u);
    const sim::Tick read = api.ssdRead(7);
    EXPECT_GT(read, 0u);
}

TEST(EcssdApi, SsdCallsRequireSsdMode)
{
    ApiFixture f;
    EcssdApi api(f.options);
    api.ecssdEnable();
    EXPECT_THROW(api.ssdWrite(0), sim::FatalError);
    EXPECT_THROW(api.ssdRead(0), sim::FatalError);
}

TEST(EcssdApi, PreAlignIsTheHostPrimitive)
{
    const std::vector<float> values{1.0f, 0.5f, -0.25f};
    const numeric::Cfp32Vector aligned = EcssdApi::preAlign(values);
    EXPECT_EQ(aligned.size(), 3u);
    EXPECT_FLOAT_EQ(aligned.toFloat(0), 1.0f);
}

TEST(EcssdApi, DimensionMismatchPanics)
{
    ApiFixture f;
    EcssdApi api(f.options);
    api.ecssdEnable();
    api.weightDeploy(f.model.weights(), f.spec);
    std::vector<float> wrong(f.spec.hiddenDim + 1, 1.0f);
    EXPECT_THROW(api.int4InputSend(wrong), sim::PanicError);
}

TEST(EcssdApi, NewQueryDropsPreviousCandidates)
{
    // Regression: lastCandidateCount() used to keep serving the
    // previous query's count after a new input was sent.
    ApiFixture f;
    EcssdApi api(f.options);
    api.ecssdEnable();
    api.weightDeploy(f.model.weights(), f.spec);

    sim::Rng rng(5);
    const std::vector<float> first = f.model.sampleQuery(rng);
    api.int4InputSend(first);
    api.int4Screen();
    EXPECT_GT(api.lastCandidateCount(), 0u);

    const std::vector<float> second = f.model.sampleQuery(rng);
    api.int4InputSend(second);
    EXPECT_EQ(api.lastCandidateCount(), 0u);
    EXPECT_THROW(api.cfp32Classify(), sim::FatalError);
    api.int4Screen();
    EXPECT_GT(api.lastCandidateCount(), 0u);
}

// --- InferenceSession --------------------------------------------------

TEST(InferenceSession, ReportsModeAndDeploymentStatus)
{
    ApiFixture f;
    EcssdApi api(f.options);
    std::vector<float> feature(f.spec.hiddenDim, 1.0f);

    InferenceSession ssd_mode = api.beginInference();
    EXPECT_EQ(ssd_mode.sendInt4(feature), Status::WrongMode);

    api.ecssdEnable();
    InferenceSession undeployed = api.beginInference();
    EXPECT_EQ(undeployed.sendInt4(feature), Status::NotDeployed);
    EXPECT_EQ(undeployed.screen(), Status::NotDeployed);
}

TEST(InferenceSession, FullSequenceReturnsOk)
{
    ApiFixture f;
    EcssdApi api(f.options);
    api.ecssdEnable();
    api.weightDeploy(f.model.weights(), f.spec);

    sim::Rng rng(6);
    const std::vector<float> query = f.model.sampleQuery(rng);
    InferenceSession session = api.beginInference();
    EXPECT_EQ(session.sendInt4(query), Status::Ok);
    EXPECT_EQ(session.sendCfp32(query), Status::Ok);
    EXPECT_EQ(session.screen(), Status::Ok);
    EXPECT_GT(session.candidateCount(), 0u);
    EXPECT_EQ(session.classify(), Status::Ok);
    EXPECT_GT(session.latency(), 0u);

    xclass::ApproximateClassifier::Prediction prediction;
    EXPECT_EQ(session.results(3, prediction), Status::Ok);
    EXPECT_EQ(prediction.topCategories.size(), 3u);
    EXPECT_EQ(prediction.candidateCount, session.candidateCount());
}

TEST(InferenceSession, SequenceMisuseReturnsStatusNotDeath)
{
    ApiFixture f;
    EcssdApi api(f.options);
    api.ecssdEnable();
    api.weightDeploy(f.model.weights(), f.spec);

    sim::Rng rng(7);
    const std::vector<float> query = f.model.sampleQuery(rng);
    InferenceSession session = api.beginInference();
    xclass::ApproximateClassifier::Prediction prediction;

    EXPECT_EQ(session.screen(), Status::MissingInput);
    EXPECT_EQ(session.classify(), Status::MissingInput);
    EXPECT_EQ(session.results(1, prediction),
              Status::NotClassified);

    std::vector<float> wrong(f.spec.hiddenDim + 1, 1.0f);
    EXPECT_EQ(session.sendInt4(wrong), Status::DimensionMismatch);

    EXPECT_EQ(session.sendInt4(query), Status::Ok);
    EXPECT_EQ(session.sendCfp32(query), Status::Ok);
    // classify() before screen(): input present, candidates absent.
    EXPECT_EQ(session.classify(), Status::NotScreened);
    EXPECT_EQ(session.screen(), Status::Ok);
    EXPECT_EQ(session.classify(), Status::Ok);
    EXPECT_EQ(session.results(1, prediction), Status::Ok);
}

TEST(InferenceSession, RedeployTurnsSessionsStale)
{
    ApiFixture f;
    EcssdApi api(f.options);
    api.ecssdEnable();
    api.weightDeploy(f.model.weights(), f.spec);

    sim::Rng rng(8);
    const std::vector<float> query = f.model.sampleQuery(rng);
    InferenceSession old_session = api.beginInference();
    EXPECT_EQ(old_session.sendInt4(query), Status::Ok);

    api.weightDeploy(f.model.weights(), f.spec);
    EXPECT_EQ(old_session.sendInt4(query), Status::StaleSession);
    EXPECT_EQ(old_session.screen(), Status::StaleSession);

    InferenceSession fresh = api.beginInference();
    EXPECT_EQ(fresh.sendInt4(query), Status::Ok);
    EXPECT_EQ(fresh.screen(), Status::Ok);
}

TEST(InferenceSession, StatusNamesAreStable)
{
    EXPECT_STREQ(toString(Status::Ok), "ok");
    EXPECT_STREQ(toString(Status::NotScreened), "not-screened");
    EXPECT_STREQ(toString(Status::StaleSession), "stale-session");
}
