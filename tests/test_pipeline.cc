/**
 * @file
 * Inference pipeline timing tests: stage overlap, layout effects,
 * heterogeneous vs homogeneous placement, and screening on/off.
 */

#include <gtest/gtest.h>

#include "accel/pipeline.hh"
#include "ecssd/system.hh"
#include "sim/event_queue.hh"
#include "xclass/workload.hh"

using namespace ecssd;
using namespace ecssd::accel;

namespace
{

xclass::BenchmarkSpec
testSpec(std::uint64_t categories = 32768)
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), categories);
    return spec;
}

struct Harness
{
    explicit Harness(const xclass::BenchmarkSpec &s,
                     layout::LayoutKind kind =
                         layout::LayoutKind::Uniform,
                     Int4Placement placement = Int4Placement::Dram)
        : spec(s), ssd(config, queue),
          trace(spec, 1)
    {
        const xclass::CandidateTrace &t = trace.trace();
        strategy = layout::makeLayout(
            kind, spec.categories, config.channels,
            [&t](std::uint64_t row) { return t.hotness(row); });
        pipeline = std::make_unique<InferencePipeline>(
            spec, accel_config, ssd, *strategy, placement);
    }

    xclass::BenchmarkSpec spec;
    ssdsim::SsdConfig config;
    sim::EventQueue queue;
    ssdsim::SsdDevice ssd;
    TraceSource trace;
    AccelConfig accel_config;
    std::unique_ptr<layout::LayoutStrategy> strategy;
    std::unique_ptr<InferencePipeline> pipeline;
};

} // namespace

TEST(Pipeline, TileSizeFollowsInt4Buffer)
{
    Harness h(testSpec());
    // K = 256 -> 128 bytes/row -> 128 KiB buffer holds 1024 rows.
    EXPECT_EQ(h.pipeline->tileRows(), 1024u);
    EXPECT_EQ(h.pipeline->tileCount(), 32u);
}

TEST(Pipeline, BatchProducesPositiveLatency)
{
    Harness h(testSpec());
    const RunResult result = h.pipeline->run(h.trace, 1);
    ASSERT_EQ(result.batches.size(), 1u);
    EXPECT_GT(result.totalTime, 0u);
    EXPECT_GT(result.batches[0].candidateRows, 0u);
    EXPECT_GT(result.batches[0].fp32PagesRead, 0u);
    EXPECT_GT(result.channelUtilization, 0.0);
    EXPECT_LE(result.channelUtilization, 1.0);
}

TEST(Pipeline, CandidatePagesMatchCandidateRows)
{
    // D = 1024 -> one row per page exactly.
    Harness h(testSpec());
    const std::vector<std::uint64_t> candidates =
        h.trace.nextBatch();
    const BatchTiming timing =
        h.pipeline->runBatch(candidates, 0);
    EXPECT_EQ(timing.fp32PagesRead, candidates.size());
    EXPECT_EQ(timing.candidateRows, candidates.size());
    // Per-channel counts add up.
    std::uint64_t sum = 0;
    for (const std::uint64_t pages : timing.channelPages)
        sum += pages;
    EXPECT_EQ(sum, timing.fp32PagesRead);
}

TEST(Pipeline, RowsNarrowerThanPageShare)
{
    xclass::BenchmarkSpec spec = testSpec(16384);
    spec.hiddenDim = 512; // 2 KB rows -> 2 rows per page
    Harness h(spec);
    std::vector<std::uint64_t> adjacent;
    for (std::uint64_t r = 0; r < 64; ++r)
        adjacent.push_back(r); // 64 rows over 32 pages
    const BatchTiming timing = h.pipeline->runBatch(adjacent, 0);
    EXPECT_EQ(timing.fp32PagesRead, 32u);
}

TEST(Pipeline, WideRowsNeedMultiplePages)
{
    xclass::BenchmarkSpec spec = testSpec(16384);
    spec.hiddenDim = 1500; // 6 KB rows -> 2 pages each
    Harness h(spec);
    const std::vector<std::uint64_t> candidates{0, 100, 200};
    const BatchTiming timing =
        h.pipeline->runBatch(candidates, 0);
    EXPECT_EQ(timing.fp32PagesRead, 6u);
}

TEST(Pipeline, OverlapBeatsSerialExecution)
{
    Harness overlapped(testSpec());
    Harness serial(testSpec());
    serial.accel_config.overlapStages = false;
    serial.pipeline = std::make_unique<InferencePipeline>(
        serial.spec, serial.accel_config, serial.ssd,
        *serial.strategy, Int4Placement::Dram);

    const RunResult fast = overlapped.pipeline->run(
        overlapped.trace, 1);
    const RunResult slow = serial.pipeline->run(serial.trace, 1);
    EXPECT_LT(fast.totalTime, slow.totalTime);
}

TEST(Pipeline, HeterogeneousBeatsHomogeneousLayout)
{
    // Section 6.5: INT4 in DRAM avoids transfer interference.
    Harness hetero(testSpec(), layout::LayoutKind::Uniform,
                   Int4Placement::Dram);
    Harness homo(testSpec(), layout::LayoutKind::Uniform,
                 Int4Placement::Flash);
    const RunResult fast = hetero.pipeline->run(hetero.trace, 1);
    const RunResult slow = homo.pipeline->run(homo.trace, 1);
    EXPECT_LT(fast.totalTime, slow.totalTime);
    EXPECT_EQ(fast.batches[0].int4PagesRead, 0u);
    EXPECT_GT(slow.batches[0].int4PagesRead, 0u);
}

TEST(Pipeline, LayoutOrderingSequentialUniformLearning)
{
    // Fig 12's ordering: sequential slowest, learning fastest.
    Harness seq(testSpec(), layout::LayoutKind::Sequential);
    Harness uni(testSpec(), layout::LayoutKind::Uniform);
    Harness learn(testSpec(), layout::LayoutKind::LearningAdaptive);

    const sim::Tick t_seq = seq.pipeline->run(seq.trace, 1).totalTime;
    const sim::Tick t_uni = uni.pipeline->run(uni.trace, 1).totalTime;
    const sim::Tick t_learn =
        learn.pipeline->run(learn.trace, 1).totalTime;
    EXPECT_GT(t_seq, t_uni);
    EXPECT_GT(t_uni, t_learn);
    // Sequential wastes most of the 8 channels.
    EXPECT_GT(static_cast<double>(t_seq) / t_learn, 3.0);
}

TEST(Pipeline, ScreeningSlashesWorkAndTime)
{
    Harness screened(testSpec());
    Harness dense(testSpec());
    dense.pipeline->setScreeningEnabled(false);
    AllRowsSource all(dense.spec.categories);

    const RunResult fast = screened.pipeline->run(screened.trace, 1);
    const RunResult slow = dense.pipeline->run(all, 1);
    EXPECT_LT(fast.totalTime, slow.totalTime);
    EXPECT_EQ(slow.batches[0].candidateRows,
              dense.spec.categories);
    EXPECT_NEAR(static_cast<double>(
                    fast.batches[0].candidateRows)
                    / static_cast<double>(dense.spec.categories),
                0.10, 0.02);
}

TEST(Pipeline, NaiveMacIsSlowerThanAlignmentFree)
{
    // The compute-bound vs memory-bound shift of Fig 1: a naive FP
    // MAC at iso-area cannot hide compute under the transfers.  A
    // 16-query batch puts the intensity right at the alignment-free
    // ridge, so the naive datapath (29.6 GFLOPS) is clearly compute
    // bound while the alignment-free one is not.
    xclass::BenchmarkSpec heavy = testSpec();
    heavy.batchSize = 16;
    Harness fast_mac(heavy);
    Harness slow_mac(heavy);
    slow_mac.accel_config.fpKind = circuit::FpMacKind::Naive;
    slow_mac.pipeline = std::make_unique<InferencePipeline>(
        slow_mac.spec, slow_mac.accel_config, slow_mac.ssd,
        *slow_mac.strategy, Int4Placement::Dram);

    const RunResult af = fast_mac.pipeline->run(fast_mac.trace, 1);
    const RunResult naive =
        slow_mac.pipeline->run(slow_mac.trace, 1);
    EXPECT_LT(af.totalTime, naive.totalTime);
}

TEST(Pipeline, MultiBatchAggregation)
{
    Harness h(testSpec(8192));
    const RunResult result = h.pipeline->run(h.trace, 3);
    EXPECT_EQ(result.batches.size(), 3u);
    EXPECT_GT(result.meanBatchMs(), 0.0);
    // Batches are serial: total >= sum of latencies.
    sim::Tick sum = 0;
    for (const BatchTiming &batch : result.batches)
        sum += batch.latency();
    EXPECT_GE(result.totalTime + 10, sum);
}

TEST(Pipeline, EffectiveGflopsBelowPeak)
{
    Harness h(testSpec());
    const RunResult result = h.pipeline->run(h.trace, 1);
    EXPECT_GT(result.effectiveGflops, 0.0);
    EXPECT_LE(result.effectiveGflops,
              h.accel_config.fp32Gflops() * 1.01);
}

TEST(Pipeline, MismatchedSourcePanics)
{
    Harness h(testSpec());
    AllRowsSource wrong(h.spec.categories + 1);
    EXPECT_THROW(h.pipeline->run(wrong, 1), sim::PanicError);
}
