/**
 * @file
 * Workload generation tests: Table 3 shapes, synthetic model
 * structure, and the trace-tier candidate generator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "sim/logging.hh"
#include "xclass/workload.hh"

using namespace ecssd::xclass;

TEST(BenchmarkSpec, Table3HasSevenEntries)
{
    const std::vector<BenchmarkSpec> specs = table3Benchmarks();
    ASSERT_EQ(specs.size(), 7u);
    EXPECT_EQ(specs[0].name, "GNMT-E32K");
    EXPECT_EQ(specs[0].categories, 32317u);
    EXPECT_EQ(specs[1].hiddenDim, 1500u);
    EXPECT_EQ(specs[6].categories, 100000000u);
}

TEST(BenchmarkSpec, ShrunkDimIsQuarter)
{
    const BenchmarkSpec spec = benchmarkByName("XMLCNN-S100M");
    EXPECT_EQ(spec.shrunkDim(), 256u);
}

TEST(BenchmarkSpec, S100MFootprintsMatchSection61)
{
    // Section 6.1: XMLCNN-S100M has 12.8 GB / 400 GB weight
    // matrices.
    const BenchmarkSpec spec = benchmarkByName("XMLCNN-S100M");
    EXPECT_EQ(spec.int4WeightBytes(), 12800000000ULL);
    EXPECT_EQ(spec.fp32WeightBytes(), 409600000000ULL);
}

TEST(BenchmarkSpec, UnknownNameIsFatal)
{
    EXPECT_THROW(benchmarkByName("bogus"), ecssd::sim::FatalError);
}

TEST(BenchmarkSpec, LargeScaleSetIsTheSynthTrio)
{
    const std::vector<BenchmarkSpec> large =
        largeScaleBenchmarks();
    ASSERT_EQ(large.size(), 3u);
    EXPECT_EQ(large[0].categories, 10000000u);
    EXPECT_EQ(large[2].categories, 100000000u);
}

TEST(BenchmarkSpec, ScaledDownPreservesRatios)
{
    const BenchmarkSpec spec = benchmarkByName("XMLCNN-S10M");
    const BenchmarkSpec scaled = scaledDown(spec, 4096);
    EXPECT_EQ(scaled.categories, 4096u);
    EXPECT_EQ(scaled.hiddenDim, spec.hiddenDim);
    EXPECT_EQ(scaled.projectionScale, spec.projectionScale);
    EXPECT_NE(scaled.name, spec.name);
    // No-op when already small enough.
    const BenchmarkSpec same = scaledDown(scaled, 1 << 20);
    EXPECT_EQ(same.categories, 4096u);
}

TEST(SyntheticModel, ShapesMatchSpec)
{
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("GNMT-E32K"), 512);
    const SyntheticModel model(spec, 1);
    EXPECT_EQ(model.weights().rows(), 512u);
    EXPECT_EQ(model.weights().cols(), 1024u);
    EXPECT_EQ(model.popularityRank().size(), 512u);
}

TEST(SyntheticModel, PopularityRanksAreAPermutation)
{
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("GNMT-E32K"), 256);
    const SyntheticModel model(spec, 2);
    std::set<std::uint32_t> ranks(model.popularityRank().begin(),
                                  model.popularityRank().end());
    EXPECT_EQ(ranks.size(), 256u);
    EXPECT_EQ(*ranks.begin(), 0u);
    EXPECT_EQ(*ranks.rbegin(), 255u);
}

TEST(SyntheticModel, PopularRowsHaveLargerNorms)
{
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("GNMT-E32K"), 1024);
    spec.hiddenDim = 128;
    const SyntheticModel model(spec, 3);
    double head_norm = 0.0, tail_norm = 0.0;
    int head = 0, tail = 0;
    for (std::size_t r = 0; r < 1024; ++r) {
        double norm = 0.0;
        for (const float w : model.weights().row(r))
            norm += static_cast<double>(w) * w;
        if (model.popularityRank()[r] < 64) {
            head_norm += norm;
            ++head;
        } else if (model.popularityRank()[r] >= 960) {
            tail_norm += norm;
            ++tail;
        }
    }
    EXPECT_GT(head_norm / head, tail_norm / tail);
}

TEST(SyntheticModel, QueriesHaveCorrectDimension)
{
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("GNMT-E32K"), 128);
    spec.hiddenDim = 64;
    const SyntheticModel model(spec, 4);
    ecssd::sim::Rng rng(5);
    const std::vector<float> query = model.sampleQuery(rng);
    EXPECT_EQ(query.size(), 64u);
}

TEST(CandidateTrace, PermutationRoundTrips)
{
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("XMLCNN-S10M"), 100003); // prime-ish
    const CandidateTrace trace(spec, 6);
    for (std::uint64_t rank : {0ULL, 1ULL, 57ULL, 100002ULL}) {
        const std::uint64_t category = trace.categoryAtRank(rank);
        EXPECT_LT(category, spec.categories);
        EXPECT_EQ(trace.rankOf(category), rank);
    }
}

TEST(CandidateTrace, DrawsApproximatelyTheCandidateRatio)
{
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("XMLCNN-S10M"), 20000);
    CandidateTrace trace(spec, 7);
    const std::vector<std::uint64_t> candidates =
        trace.drawCandidates();
    const double want = spec.candidateRatio
        * static_cast<double>(spec.categories);
    EXPECT_NEAR(static_cast<double>(candidates.size()), want,
                want * 0.05);
}

TEST(CandidateTrace, CandidatesAreSortedAndUnique)
{
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("XMLCNN-S10M"), 10000);
    CandidateTrace trace(spec, 8);
    const std::vector<std::uint64_t> candidates =
        trace.drawCandidates();
    EXPECT_TRUE(std::is_sorted(candidates.begin(),
                               candidates.end()));
    EXPECT_EQ(std::adjacent_find(candidates.begin(),
                                 candidates.end()),
              candidates.end());
    for (const std::uint64_t c : candidates)
        EXPECT_LT(c, spec.categories);
}

TEST(CandidateTrace, PopularCategoriesAppearMoreOften)
{
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("XMLCNN-S10M"), 10000);
    CandidateTrace trace(spec, 9);
    const std::uint64_t head = trace.categoryAtRank(0);
    const std::uint64_t deep_tail = trace.categoryAtRank(9999);
    int head_hits = 0, tail_hits = 0;
    for (int batch = 0; batch < 20; ++batch) {
        const std::vector<std::uint64_t> candidates =
            trace.drawCandidates();
        head_hits += std::binary_search(candidates.begin(),
                                        candidates.end(), head);
        tail_hits += std::binary_search(candidates.begin(),
                                        candidates.end(),
                                        deep_tail);
    }
    EXPECT_GT(head_hits, tail_hits);
    EXPECT_GE(head_hits, 18); // the head is a near-certain candidate
}

TEST(CandidateTrace, OracleHotnessFollowsRank)
{
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("XMLCNN-S10M"), 10000);
    const CandidateTrace trace(spec, 10, /*predictor_noise=*/0.0);
    // Ranks inside the hot set share the top mass; beyond it the
    // mass decays with rank.
    const double head = trace.hotness(trace.categoryAtRank(0));
    const double mid = trace.hotness(
        trace.categoryAtRank(trace.hotSetSize() + 100));
    const double tail = trace.hotness(trace.categoryAtRank(9999));
    EXPECT_GT(head, mid);
    EXPECT_GT(mid, tail);
}

TEST(CandidateTrace, NoisyHotnessStaysCorrelated)
{
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("XMLCNN-S10M"), 10000);
    const CandidateTrace trace(spec, 11, /*predictor_noise=*/0.25);
    double head_sum = 0.0, tail_sum = 0.0;
    for (std::uint64_t i = 0; i < 100; ++i) {
        head_sum += trace.hotness(trace.categoryAtRank(i));
        tail_sum += trace.hotness(trace.categoryAtRank(9899 + i));
    }
    EXPECT_GT(head_sum, tail_sum * 5);
}

TEST(CandidateTrace, HotnessIsDeterministicPerCategory)
{
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("XMLCNN-S10M"), 1000);
    const CandidateTrace trace(spec, 12);
    for (std::uint64_t c = 0; c < 50; ++c)
        EXPECT_DOUBLE_EQ(trace.hotness(c), trace.hotness(c));
}

/** Feistel bijection property over assorted category counts,
 *  including odd and power-of-two-adjacent sizes (cycle-walking). */
class FeistelSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FeistelSweep, RankCategoryBijection)
{
    BenchmarkSpec spec = benchmarkByName("XMLCNN-S10M");
    spec.categories = GetParam();
    const CandidateTrace trace(spec, 3);
    std::set<std::uint64_t> seen;
    const std::uint64_t probe =
        std::min<std::uint64_t>(spec.categories, 4096);
    for (std::uint64_t rank = 0; rank < probe; ++rank) {
        const std::uint64_t category = trace.categoryAtRank(rank);
        ASSERT_LT(category, spec.categories);
        ASSERT_TRUE(seen.insert(category).second)
            << "collision at rank " << rank;
        ASSERT_EQ(trace.rankOf(category), rank);
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, FeistelSweep,
                         ::testing::Values(2u, 3u, 255u, 256u, 257u,
                                           1023u, 4096u, 65537u,
                                           1000003u));

TEST(CandidateTrace, HotSetScattersAcrossChannelsAndResidues)
{
    // The hot set must not be an arithmetic progression: its
    // residues modulo the channel count should be multinomially
    // spread, not equal.
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("XMLCNN-S10M"), 65536);
    const CandidateTrace trace(spec, 4);
    std::vector<int> residues(8, 0);
    const std::uint64_t hot = trace.hotSetSize();
    for (std::uint64_t rank = 0; rank < hot; ++rank)
        ++residues[trace.categoryAtRank(rank) % 8];
    int distinct_counts = 0;
    for (int c = 1; c < 8; ++c)
        distinct_counts += residues[c] != residues[0];
    // A Feistel image virtually never lands perfectly balanced.
    EXPECT_GT(distinct_counts, 0);
    // ...but it is also not degenerate: every residue is populated.
    for (const int count : residues)
        EXPECT_GT(count, 0);
}

TEST(CandidateTrace, StickyTailPersistsAcrossBatches)
{
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("XMLCNN-S10M"), 20000);
    CandidateTrace trace(spec, 5);
    const std::vector<std::uint64_t> &sticky = trace.stickyTail();
    ASSERT_FALSE(sticky.empty());
    // Across batches, at least (1 - churn) of the sticky tail is
    // always present.
    for (int batch = 0; batch < 5; ++batch) {
        const std::vector<std::uint64_t> candidates =
            trace.drawCandidates();
        std::size_t present = 0;
        for (const std::uint64_t category : sticky)
            present += std::binary_search(candidates.begin(),
                                          candidates.end(),
                                          category);
        EXPECT_GE(static_cast<double>(present)
                      / static_cast<double>(sticky.size()),
                  1.0 - spec.candidateChurn - 0.02);
    }
}
