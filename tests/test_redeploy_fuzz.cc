/**
 * @file
 * Chaos-swap fault campaign: randomized interleavings of redeploy
 * steps, session traffic, aborts, and injected device faults (high
 * uncorrectable-read rates, the read-only end-of-life latch, DRAM
 * pressure, hostile validation targets, tiny drain deadlines under
 * both expiry policies) against the staged hot-swap machinery.
 *
 * Invariants asserted on every interleaving:
 *  - every begun redeploy terminates in exactly one of Committed /
 *    RolledBack (never wedges, never ends anywhere else);
 *  - every API call returns a defined Status — a session call is Ok
 *    or StaleSession, never an abort;
 *  - zero failed requests attributable to the swap: after the
 *    terminal phase a fresh session always serves end to end, and
 *    the server variant answers every enqueued request exactly once
 *    (no lost, no double-served ids);
 *  - the serving identity is consistent with the outcome (epoch
 *    advanced on commit, restored on rollback; a fleet never serves
 *    a mixed deployment).
 *
 * Iteration counts scale with ECSSD_FUZZ_ITERS (the nightly long-fuzz
 * CI job sets it to soak far beyond the per-commit budget).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "ecssd/api.hh"
#include "ecssd/scale_out.hh"
#include "ecssd/server.hh"
#include "sim/rng.hh"

using namespace ecssd;

namespace
{

/** Iteration count scaled by the ECSSD_FUZZ_ITERS multiplier. */
int
fuzzIters(int base)
{
    const char *env = std::getenv("ECSSD_FUZZ_ITERS");
    if (env == nullptr)
        return base;
    const long mult = std::strtol(env, nullptr, 10);
    return mult > 1 ? base * static_cast<int>(mult) : base;
}

xclass::BenchmarkSpec
chaosSpec()
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 512);
    spec.hiddenDim = 128;
    return spec;
}

/** Run one full query through @p session.  Every step must return
 *  the same verdict: all Ok (served) or all StaleSession (retired);
 *  any mix is a lost request. */
void
serveOrStale(InferenceSession &session,
             const std::vector<float> &query)
{
    const Status first = session.sendInt4(query);
    ASSERT_TRUE(first == Status::Ok || first == Status::StaleSession)
        << "sendInt4: " << toString(first);
    if (first == Status::StaleSession) {
        EXPECT_EQ(session.classify(), Status::StaleSession);
        return;
    }
    EXPECT_EQ(session.sendCfp32(query), Status::Ok);
    EXPECT_EQ(session.screen(), Status::Ok);
    EXPECT_EQ(session.classify(), Status::Ok);
    xclass::ApproximateClassifier::Prediction prediction;
    EXPECT_EQ(session.results(5, prediction), Status::Ok);
    EXPECT_FALSE(prediction.topCategories.empty());
}

} // namespace

TEST(ChaosSwap, EveryInterleavingTerminatesAndKeepsServing)
{
    const xclass::BenchmarkSpec spec = chaosSpec();
    const xclass::SyntheticModel model(spec, 1);
    const xclass::SyntheticModel hostile(spec, 2);

    const int iters = fuzzIters(10);
    for (int iter = 0; iter < iters; ++iter) {
        sim::Rng rng(1000 + static_cast<std::uint64_t>(iter));

        EcssdOptions options;
        options.ssd = ssdsim::smallTestConfig();
        options.ssd.channels = 8;
        // High media-fault pressure on some runs: the staging probes'
        // verify-reads then trip StagedMediaFault.
        const bool flaky = rng.uniform() < 0.35;
        if (flaky)
            options.ssd.uncorrectableReadRate =
                0.1 + 0.4 * rng.uniform();

        EcssdApi api(options);
        api.ecssdEnable();
        api.weightDeploy(model.weights(), spec);

        // Seed the recent-query ring so warm-up/validation have
        // material to replay.
        std::vector<std::vector<float>> queries;
        for (int q = 0; q < 4; ++q)
            queries.push_back(model.sampleQuery(rng));
        for (const auto &query : queries) {
            auto session = api.beginInference();
            serveOrStale(session, query);
        }

        // Pick this interleaving's fault scenario.
        const bool hostileWeights = rng.uniform() < 0.3;
        const bool dramPressure = rng.uniform() < 0.15;
        const bool readOnlyMidSwap = rng.uniform() < 0.25;
        const bool abortMidSwap = rng.uniform() < 0.25;
        RedeployConfig config;
        if (rng.uniform() < 0.3) {
            config.drainDeadline =
                sim::microseconds(50.0 + 500.0 * rng.uniform());
            config.drainTimeoutRollsBack = rng.uniform() < 0.5;
        }
        if (dramPressure) {
            ssdsim::DramModel &dram = api.system().ssd().dram();
            dram.reserve(dram.availableBytes() - 16);
        }

        const numeric::FloatMatrix &next =
            hostileWeights ? hostile.weights() : model.weights();
        ASSERT_EQ(api.redeployBegin(next, spec, config), Status::Ok);
        // One redeploy at a time (unless the first already rolled
        // back at begin, e.g. under DRAM pressure).
        if (api.redeployStatus().phase == RedeployPhase::Staging) {
            EXPECT_EQ(api.redeployBegin(next, spec, config),
                      Status::RedeployActive);
        }

        // Random interleaving of redeploy steps, session traffic,
        // faults, and aborts.
        std::vector<InferenceSession> sessions;
        bool forcedReadOnly = false;
        int step = 0;
        for (; step < 20000 && api.redeployStatus().phase != RedeployPhase::Committed
               && api.redeployStatus().phase != RedeployPhase::RolledBack;
             ++step) {
            const double dice = rng.uniform();
            if (dice < 0.45) {
                const Status advanced = api.redeployAdvance();
                ASSERT_TRUE(advanced == Status::Ok
                            || advanced == Status::NoRedeploy)
                    << toString(advanced);
            } else if (dice < 0.60) {
                if (sessions.size() < 4)
                    sessions.push_back(api.beginInference());
            } else if (dice < 0.75) {
                if (!sessions.empty()) {
                    const std::size_t pick = static_cast<std::size_t>(
                        rng.uniformInt(sessions.size()));
                    serveOrStale(sessions[pick],
                                 queries[static_cast<std::size_t>(
                                     rng.uniformInt(queries.size()))]);
                }
            } else if (dice < 0.85) {
                if (!sessions.empty())
                    sessions.erase(sessions.begin()
                                   + static_cast<std::ptrdiff_t>(
                                       rng.uniformInt(
                                           sessions.size())));
            } else if (dice < 0.92 && abortMidSwap) {
                const Status aborted = api.redeployAbort();
                ASSERT_TRUE(aborted == Status::Ok
                            || aborted == Status::RedeployActive
                            || aborted == Status::NoRedeploy)
                    << toString(aborted);
            } else if (readOnlyMidSwap && !forcedReadOnly) {
                api.system().ssd().ftl().forceReadOnly();
                forcedReadOnly = true;
            }
        }
        ASSERT_LT(step, 20000) << "redeploy wedged, iter " << iter;

        // Terminal, exactly one of the two outcomes, and the serving
        // identity matches it.
        const RedeployStatus status = api.redeployStatus();
        ASSERT_TRUE(status.phase == RedeployPhase::Committed
                    || status.phase == RedeployPhase::RolledBack)
            << toString(status.phase);
        if (status.phase == RedeployPhase::Committed) {
            EXPECT_EQ(api.deployEpoch(), status.newEpoch);
            EXPECT_EQ(status.reason, RollbackReason::None);
        } else {
            EXPECT_EQ(api.deployEpoch(), status.oldEpoch);
            EXPECT_NE(status.reason, RollbackReason::None);
        }

        // Zero failed requests attributable to the swap: whatever
        // happened, a fresh session serves end to end...
        auto fresh = api.beginInference();
        EXPECT_EQ(fresh.epoch(), api.deployEpoch());
        EXPECT_EQ(fresh.sendInt4(queries[0]), Status::Ok);
        EXPECT_EQ(fresh.sendCfp32(queries[0]), Status::Ok);
        EXPECT_EQ(fresh.screen(), Status::Ok);
        EXPECT_EQ(fresh.classify(), Status::Ok);
        xclass::ApproximateClassifier::Prediction prediction;
        EXPECT_EQ(fresh.results(5, prediction), Status::Ok);
        // ...and the survivors still answer with a defined verdict.
        for (auto &session : sessions)
            serveOrStale(session, queries[0]);
    }
}

TEST(ChaosSwap, ServerSwapNeverLosesOrDoublesRequests)
{
    xclass::BenchmarkSpec spec = chaosSpec();
    spec.categories = 1024;
    spec.batchSize = 4;
    const xclass::SyntheticModel model(spec, 1);
    const xclass::SyntheticModel hostile(spec, 2);

    const int iters = fuzzIters(6);
    for (int iter = 0; iter < iters; ++iter) {
        sim::Rng rng(2000 + static_cast<std::uint64_t>(iter));

        EcssdOptions options = EcssdOptions::full();
        if (rng.uniform() < 0.5) {
            options.ssd.uncorrectableReadRate = 0.05;
            options.degradedPolicy = rng.uniform() < 0.5
                ? accel::DegradedReadPolicy::FailBatch
                : accel::DegradedReadPolicy::ScreenerFallback;
        }
        InferenceServer server(model.weights(), spec, options,
                               &model.basis());

        // Enqueue some traffic, begin the swap at a random point,
        // then enqueue the rest.
        std::vector<InferenceServer::RequestId> ids;
        const int total = 8 + static_cast<int>(rng.uniformInt(9));
        const int before = static_cast<int>(
            rng.uniformInt(static_cast<std::uint64_t>(total)));
        for (int i = 0; i < before; ++i)
            ids.push_back(server.enqueue(model.sampleQuery(rng)));

        const bool hostileWeights = rng.uniform() < 0.4;
        ASSERT_EQ(server.beginRedeploy(hostileWeights
                                           ? hostile.weights()
                                           : model.weights(),
                                       spec),
                  Status::Ok);
        if (rng.uniform() < 0.3)
            server.redeployAdvance(); // idle daemon ticks
        for (int i = before; i < total; ++i)
            ids.push_back(server.enqueue(model.sampleQuery(rng)));

        const auto responses = server.processAll(5);

        // Exactly-once delivery across the flip: every enqueued id
        // answered, none twice, none shed by the swap.
        ASSERT_EQ(responses.size(), ids.size());
        std::vector<InferenceServer::RequestId> seen;
        for (const auto &response : responses) {
            seen.push_back(response.id);
            EXPECT_NE(response.status,
                      InferenceServer::Response::Status::Shed);
        }
        std::sort(seen.begin(), seen.end());
        EXPECT_EQ(seen, ids) << "lost or double-served ids, iter "
                             << iter;
        EXPECT_EQ(server.serverStats().shedRequests, 0u);

        // processAll finishes any in-flight swap: terminal, and the
        // identity matches the outcome.
        const RedeployStatus status = server.redeployStatus();
        ASSERT_TRUE(status.phase == RedeployPhase::Committed
                    || status.phase == RedeployPhase::RolledBack)
            << toString(status.phase);
        if (status.phase == RedeployPhase::Committed)
            EXPECT_EQ(server.deployEpoch(), 2u);
        else
            EXPECT_EQ(server.deployEpoch(), 1u);

        // The surviving version keeps serving.
        server.enqueue(model.sampleQuery(rng));
        const auto post = server.processAll(5);
        ASSERT_EQ(post.size(), 1u);
        EXPECT_NE(post[0].status,
                  InferenceServer::Response::Status::Shed);
    }
}

TEST(ChaosSwap, FleetRollNeverServesMixedDeployment)
{
    xclass::BenchmarkSpec spec = chaosSpec();
    spec.categories = 1024;

    const int iters = fuzzIters(5);
    for (int iter = 0; iter < iters; ++iter) {
        sim::Rng rng(3000 + static_cast<std::uint64_t>(iter));
        ScaleOutEcssd fleet(spec, 3);

        // Random shard faults before the roll.
        for (unsigned d = 0; d < fleet.devices(); ++d) {
            const double dice = rng.uniform();
            if (dice < 0.2)
                fleet.failShard(d);
            else if (dice < 0.35)
                fleet.shardSystem(d).ssd().ftl().forceReadOnly();
        }

        const std::uint64_t epochBefore = fleet.deployEpoch();
        const FleetRedeployResult result = fleet.rollingRedeploy();

        if (result.rolledBack) {
            // A reverted roll restores the old identity everywhere.
            EXPECT_EQ(result.shardsSwapped, 0u);
            EXPECT_NE(result.reason, RollbackReason::None);
            EXPECT_EQ(fleet.deployEpoch(), epochBefore);
        } else {
            EXPECT_GT(result.shardsSwapped, 0u);
            EXPECT_EQ(result.shardsSwapped + result.shardsSkipped,
                      fleet.devices());
            EXPECT_EQ(fleet.deployEpoch(), epochBefore + 1);
        }

        // Never mixed: every LIVE shard reports the fleet identity.
        for (unsigned d = 0; d < fleet.devices(); ++d) {
            if (!fleet.shardAlive(d))
                continue;
            const ssdsim::HealthReport report =
                fleet.shardHealthReport(d);
            EXPECT_EQ(report.deployEpoch, fleet.deployEpoch())
                << "shard " << d << " iter " << iter;
            EXPECT_EQ(report.weightVersion, fleet.weightVersion())
                << "shard " << d << " iter " << iter;
        }

        // The surviving fleet still serves (when anything is alive).
        if (fleet.aliveDevices() > 0) {
            const ScaleOutResult run = fleet.runInference(1);
            EXPECT_EQ(run.survivingDevices, fleet.aliveDevices());
        }
    }
}
