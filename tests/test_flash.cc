/**
 * @file
 * Flash array timing-model tests.
 */

#include <gtest/gtest.h>

#include "ssdsim/address.hh"
#include "ssdsim/flash.hh"

using namespace ecssd::sim;
using namespace ecssd::ssdsim;

namespace
{

SsdConfig
config()
{
    return smallTestConfig();
}

} // namespace

TEST(FlashArray, SingleReadLatency)
{
    const SsdConfig c = config();
    FlashArray flash(c);
    const PhysicalPage ppa{0, 0, 0, 0, 0};
    const Tick done = flash.readPage(ppa, 0);
    EXPECT_EQ(done, c.readLatency() + c.pageTransferTime());
}

TEST(FlashArray, SameDieReadsSerialize)
{
    const SsdConfig c = config();
    FlashArray flash(c);
    const PhysicalPage ppa{0, 0, 0, 0, 0};
    const Tick first = flash.readPage(ppa, 0);
    const Tick second = flash.readPage(ppa, 0);
    EXPECT_GE(second, first + c.pageTransferTime());
}

TEST(FlashArray, DifferentDiesOverlapSensing)
{
    const SsdConfig c = config();
    FlashArray flash(c);
    const Tick t0 = flash.readPage(PhysicalPage{0, 0, 0, 0, 0}, 0);
    const Tick t1 = flash.readPage(PhysicalPage{0, 1, 0, 0, 0}, 0);
    // The second die senses in parallel; only the bus serializes, so
    // it finishes one transfer after the first, not one tR later.
    EXPECT_EQ(t1, t0 + c.pageTransferTime());
}

TEST(FlashArray, DifferentChannelsFullyParallel)
{
    const SsdConfig c = config();
    FlashArray flash(c);
    const Tick t0 = flash.readPage(PhysicalPage{0, 0, 0, 0, 0}, 0);
    const Tick t1 = flash.readPage(PhysicalPage{1, 0, 0, 0, 0}, 0);
    EXPECT_EQ(t0, t1);
}

TEST(FlashArray, SaturatedChannelIsBusBound)
{
    // With the default die count, back-to-back reads on one channel
    // should stream at the bus rate after the initial tR.
    SsdConfig c; // default (paper) geometry
    FlashArray flash(c);
    const unsigned reads = 64;
    Tick last = 0;
    for (unsigned i = 0; i < reads; ++i) {
        const PhysicalPage ppa{0, i % c.diesPerChannel, 0, 0, 0};
        last = std::max(last, flash.readPage(ppa, 0));
    }
    const Tick lower = c.readLatency()
        + static_cast<Tick>(reads) * c.pageTransferTime();
    EXPECT_GE(last, static_cast<Tick>(reads)
              * c.pageTransferTime());
    EXPECT_LE(last, lower + c.readLatency());
}

TEST(FlashArray, ProgramReleasesBusBeforeArrayProgram)
{
    const SsdConfig c = config();
    FlashArray flash(c);
    const Tick prog =
        flash.programPage(PhysicalPage{0, 0, 0, 0, 0}, 0);
    EXPECT_EQ(prog, c.pageTransferTime() + c.programLatency());
    // A read on another die of the same channel only waits for the
    // bus transfer, not the whole program.
    const Tick read =
        flash.readPage(PhysicalPage{0, 1, 0, 0, 0}, 0);
    EXPECT_LT(read, prog);
}

TEST(FlashArray, EraseOccupiesDieOnly)
{
    const SsdConfig c = config();
    FlashArray flash(c);
    const Tick erase =
        flash.eraseBlock(PhysicalPage{0, 0, 0, 0, 0}, 0);
    EXPECT_EQ(erase, c.eraseLatency());
    // The channel bus stays free for other dies.
    const Tick read =
        flash.readPage(PhysicalPage{0, 1, 0, 0, 0}, 0);
    EXPECT_EQ(read, c.readLatency() + c.pageTransferTime());
}

TEST(FlashArray, StatsCountOperations)
{
    const SsdConfig c = config();
    FlashArray flash(c);
    flash.readPage(PhysicalPage{0, 0, 0, 0, 0}, 0);
    flash.readPage(PhysicalPage{0, 1, 0, 0, 0}, 0);
    flash.programPage(PhysicalPage{0, 0, 0, 1, 0}, 0);
    flash.eraseBlock(PhysicalPage{0, 0, 0, 2, 0}, 0);
    const ChannelStats &stats = flash.channelStats(0);
    EXPECT_EQ(stats.pagesRead, 2u);
    EXPECT_EQ(stats.pagesProgrammed, 1u);
    EXPECT_EQ(stats.blocksErased, 1u);
    EXPECT_EQ(stats.busBusyTime, 3 * c.pageTransferTime());
    EXPECT_EQ(flash.channelStats(1).pagesRead, 0u);
}

TEST(FlashArray, BusUtilizationWindow)
{
    const SsdConfig c = config();
    FlashArray flash(c);
    const Tick done =
        flash.readPage(PhysicalPage{0, 0, 0, 0, 0}, 0);
    // One channel busy for one transfer out of `channels` buses.
    const double util = flash.busUtilization(0, done);
    const double expected = static_cast<double>(c.pageTransferTime())
        / static_cast<double>(done) / c.channels;
    EXPECT_NEAR(util, expected, 1e-12);
    EXPECT_EQ(flash.busUtilization(10, 10), 0.0);
}

TEST(FlashArray, ResetClearsTimelines)
{
    const SsdConfig c = config();
    FlashArray flash(c);
    flash.readPage(PhysicalPage{0, 0, 0, 0, 0}, 0);
    flash.reset();
    EXPECT_EQ(flash.channelStats(0).pagesRead, 0u);
    EXPECT_EQ(flash.lastDoneAt(), 0u);
    const Tick done =
        flash.readPage(PhysicalPage{0, 0, 0, 0, 0}, 0);
    EXPECT_EQ(done, c.readLatency() + c.pageTransferTime());
}

TEST(FlashArray, LastDoneAtTracksLatest)
{
    const SsdConfig c = config();
    FlashArray flash(c);
    const Tick a = flash.readPage(PhysicalPage{0, 0, 0, 0, 0}, 0);
    const Tick b =
        flash.readPage(PhysicalPage{1, 0, 0, 0, 0}, 1000);
    EXPECT_EQ(flash.lastDoneAt(), std::max(a, b));
}

TEST(AddressCodec, RoundTripsAllFields)
{
    const SsdConfig c = config();
    const AddressCodec codec(c);
    for (unsigned ch = 0; ch < c.channels; ++ch) {
        for (unsigned die = 0; die < c.diesPerChannel; ++die) {
            const PhysicalPage ppa{
                ch, die, 0, c.blocksPerPlane - 1,
                c.pagesPerBlock - 1};
            EXPECT_EQ(codec.decode(codec.encode(ppa)), ppa);
        }
    }
}

TEST(AddressCodec, EncodingIsChannelMajor)
{
    const SsdConfig c = config();
    const AddressCodec codec(c);
    const std::uint64_t ch0_last = codec.encode(PhysicalPage{
        0, c.diesPerChannel - 1, c.planesPerDie - 1,
        c.blocksPerPlane - 1, c.pagesPerBlock - 1});
    const std::uint64_t ch1_first =
        codec.encode(PhysicalPage{1, 0, 0, 0, 0});
    EXPECT_EQ(ch1_first, ch0_last + 1);
}

TEST(AddressCodec, InvalidAddressPanics)
{
    const SsdConfig c = config();
    const AddressCodec codec(c);
    PhysicalPage bad{c.channels, 0, 0, 0, 0};
    EXPECT_THROW(codec.encode(bad), PanicError);
    EXPECT_THROW(codec.decode(c.totalPages()), PanicError);
}

TEST(FlashArray, MultiPlaneReadOverlapsSensing)
{
    SsdConfig c = config();
    c.planesPerDie = 2;
    c.multiPlaneRead = true;
    FlashArray flash(c);
    const Tick p0 = flash.readPage(PhysicalPage{0, 0, 0, 0, 0}, 0);
    const Tick p1 = flash.readPage(PhysicalPage{0, 0, 1, 0, 0}, 0);
    // Planes sense in parallel; only the bus serializes.
    EXPECT_EQ(p1, p0 + c.pageTransferTime());

    SsdConfig serial = c;
    serial.multiPlaneRead = false;
    FlashArray strict(serial);
    const Tick s0 =
        strict.readPage(PhysicalPage{0, 0, 0, 0, 0}, 0);
    const Tick s1 =
        strict.readPage(PhysicalPage{0, 0, 1, 0, 0}, 0);
    // Same-die planes serialize their senses.
    EXPECT_GE(s1 - s0, c.readLatency() - c.pageTransferTime());
    (void)s0;
}

TEST(FlashArray, TransferGateDelaysBusNotSense)
{
    const SsdConfig c = config();
    FlashArray flash(c);
    const Tick gate = microseconds(500);
    const Tick done =
        flash.readPage(PhysicalPage{0, 0, 0, 0, 0}, 0, gate);
    EXPECT_EQ(done, gate + c.pageTransferTime());
    // The sense already completed, so a second read on the same die
    // only waits for its own sense, measured from its issue.
    const Tick second =
        flash.readPage(PhysicalPage{0, 0, 0, 0, 1}, 0, 0);
    EXPECT_LE(second, gate + 2 * c.pageTransferTime());
}
