/**
 * @file
 * Unit tests of the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace ecssd::sim;

TEST(EventQueue, StartsAtTickZero)
{
    EventQueue queue;
    EXPECT_EQ(queue.now(), 0u);
    EXPECT_EQ(queue.pendingEvents(), 0u);
    EXPECT_EQ(queue.firedEvents(), 0u);
}

TEST(EventQueue, FiresEventsInTimeOrder)
{
    EventQueue queue;
    std::vector<int> fired;
    queue.schedule(30, [&] { fired.push_back(3); });
    queue.schedule(10, [&] { fired.push_back(1); });
    queue.schedule(20, [&] { fired.push_back(2); });
    queue.run();
    EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.now(), 30u);
}

TEST(EventQueue, SameTickEventsFireInInsertionOrder)
{
    EventQueue queue;
    std::vector<int> fired;
    for (int i = 0; i < 8; ++i)
        queue.schedule(5, [&fired, i] { fired.push_back(i); });
    queue.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(fired[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue queue;
    Tick seen = 0;
    queue.schedule(100, [&] {
        queue.scheduleAfter(50, [&] { seen = queue.now(); });
    });
    queue.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, SchedulingInThePastPanics)
{
    EventQueue queue;
    queue.schedule(100, [] {});
    queue.run();
    EXPECT_THROW(queue.schedule(50, [] {}), PanicError);
}

TEST(EventQueue, NullActionPanics)
{
    EventQueue queue;
    EXPECT_THROW(queue.schedule(10, EventAction{}), PanicError);
}

TEST(EventQueue, CancelPreventsFiring)
{
    EventQueue queue;
    bool fired = false;
    const auto id = queue.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(queue.cancel(id));
    queue.run();
    EXPECT_FALSE(fired);
    EXPECT_EQ(queue.pendingEvents(), 0u);
}

TEST(EventQueue, CancelTwiceFails)
{
    EventQueue queue;
    const auto id = queue.schedule(10, [] {});
    EXPECT_TRUE(queue.cancel(id));
    EXPECT_FALSE(queue.cancel(id));
    queue.run();
}

TEST(EventQueue, CancelAfterFiringFails)
{
    EventQueue queue;
    const auto id = queue.schedule(10, [] {});
    queue.run();
    EXPECT_FALSE(queue.cancel(id));
}

TEST(EventQueue, CancelBogusIdFails)
{
    EventQueue queue;
    EXPECT_FALSE(queue.cancel(0));
    EXPECT_FALSE(queue.cancel(12345));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue queue;
    int count = 0;
    queue.schedule(10, [&] { ++count; });
    queue.schedule(20, [&] { ++count; });
    queue.schedule(30, [&] { ++count; });
    queue.runUntil(20);
    EXPECT_EQ(count, 2);
    EXPECT_EQ(queue.now(), 20u);
    EXPECT_EQ(queue.pendingEvents(), 1u);
    queue.run();
    EXPECT_EQ(count, 3);
}

TEST(EventQueue, RunUntilOnDrainedQueueKeepsLastEventTime)
{
    EventQueue queue;
    queue.schedule(10, [] {});
    queue.runUntil(100);
    EXPECT_EQ(queue.now(), 10u);
}

TEST(EventQueue, StepFiresExactlyOne)
{
    EventQueue queue;
    int count = 0;
    queue.schedule(1, [&] { ++count; });
    queue.schedule(2, [&] { ++count; });
    EXPECT_TRUE(queue.step());
    EXPECT_EQ(count, 1);
    EXPECT_TRUE(queue.step());
    EXPECT_EQ(count, 2);
    EXPECT_FALSE(queue.step());
}

TEST(EventQueue, EventsMayScheduleMoreEvents)
{
    EventQueue queue;
    int depth = 0;
    std::function<void()> chain = [&] {
        if (++depth < 10)
            queue.scheduleAfter(1, chain);
    };
    queue.schedule(0, chain);
    queue.run();
    EXPECT_EQ(depth, 10);
    EXPECT_EQ(queue.now(), 9u);
    EXPECT_EQ(queue.firedEvents(), 10u);
}

TEST(EventQueue, PendingCountTracksScheduleAndFire)
{
    EventQueue queue;
    queue.schedule(1, [] {});
    queue.schedule(2, [] {});
    EXPECT_EQ(queue.pendingEvents(), 2u);
    queue.step();
    EXPECT_EQ(queue.pendingEvents(), 1u);
    queue.run();
    EXPECT_EQ(queue.pendingEvents(), 0u);
}
