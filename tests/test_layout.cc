/**
 * @file
 * Layout strategy tests: placement invariants and the balance
 * ordering sequential < uniform < learning on skewed access sets.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>

#include "layout/strategy.hh"
#include "sim/logging.hh"
#include "xclass/workload.hh"

using namespace ecssd;
using namespace ecssd::layout;

TEST(SequentialLayout, ContiguousRunsPerChannel)
{
    const SequentialLayout strat(80, 8);
    EXPECT_EQ(strat.channelOf(0), 0u);
    EXPECT_EQ(strat.channelOf(9), 0u);
    EXPECT_EQ(strat.channelOf(10), 1u);
    EXPECT_EQ(strat.channelOf(79), 7u);
    EXPECT_EQ(strat.kind(), LayoutKind::Sequential);
}

TEST(SequentialLayout, UnevenDivisionClampsLastChannel)
{
    const SequentialLayout strat(10, 8);
    for (std::uint64_t r = 0; r < 10; ++r)
        EXPECT_LT(strat.channelOf(r), 8u);
    EXPECT_EQ(strat.channelOf(9), 4u); // ceil(10/8)=2 rows/channel
}

TEST(UniformLayout, RoundRobinStripes)
{
    const UniformLayout strat(64, 8);
    for (std::uint64_t r = 0; r < 64; ++r)
        EXPECT_EQ(strat.channelOf(r), r % 8);
}

TEST(LayoutStrategy, OutOfRangePanics)
{
    const UniformLayout strat(10, 4);
    EXPECT_THROW(strat.channelOf(10), sim::PanicError);
    const SequentialLayout seq(10, 4);
    EXPECT_THROW(seq.channelOf(10), sim::PanicError);
}

TEST(LearningLayout, GreedyBalancesHotMass)
{
    // One very hot row per 8 plus uniform tail: greedy must spread
    // the hot rows one per channel.
    std::vector<double> hotness(64, 1.0);
    for (int i = 0; i < 8; ++i)
        hotness[static_cast<std::size_t>(i)] = 100.0;
    const auto strat =
        LearningAdaptiveLayout::build(hotness, 8);
    std::set<unsigned> hot_channels;
    for (std::uint64_t r = 0; r < 8; ++r)
        hot_channels.insert(strat->channelOf(r));
    EXPECT_EQ(hot_channels.size(), 8u);
}

TEST(LearningLayout, GreedyMassBalanceIsTight)
{
    sim::Rng rng(1);
    std::vector<double> hotness(4096);
    for (double &h : hotness)
        h = std::exp(rng.gaussian(0.0, 2.0));
    const auto strat =
        LearningAdaptiveLayout::build(hotness, 8);
    std::vector<double> mass(8, 0.0);
    for (std::size_t r = 0; r < hotness.size(); ++r)
        mass[strat->channelOf(r)] += hotness[r];
    const double total =
        std::accumulate(mass.begin(), mass.end(), 0.0);
    for (const double m : mass)
        EXPECT_NEAR(m, total / 8.0, total / 8.0 * 0.02);
}

TEST(LearningLayout, StreamingBuilderCoversAllChannels)
{
    const auto strat = LearningAdaptiveLayout::buildStreaming(
        10000,
        [](std::uint64_t row) {
            return 1.0 / static_cast<double>(row + 1);
        },
        8);
    std::vector<std::uint64_t> counts(8, 0);
    for (std::uint64_t r = 0; r < 10000; ++r)
        ++counts[strat->channelOf(r)];
    for (const std::uint64_t c : counts)
        EXPECT_NEAR(static_cast<double>(c), 1250.0, 200.0);
}

TEST(LearningLayout, StreamingSpreadsTheHotHead)
{
    // The hottest `grades`-quantile rows must round-robin across
    // channels: consecutive hot rows land on different channels.
    const auto strat = LearningAdaptiveLayout::buildStreaming(
        8000,
        [](std::uint64_t row) {
            return row < 1000 ? 100.0 : 1.0;
        },
        8);
    std::vector<std::uint64_t> head_counts(8, 0);
    for (std::uint64_t r = 0; r < 1000; ++r)
        ++head_counts[strat->channelOf(r)];
    for (const std::uint64_t c : head_counts)
        EXPECT_NEAR(static_cast<double>(c), 125.0, 5.0);
}

TEST(MakeLayout, DispatchesAllKinds)
{
    EXPECT_EQ(makeLayout(LayoutKind::Sequential, 100, 8)->kind(),
              LayoutKind::Sequential);
    EXPECT_EQ(makeLayout(LayoutKind::Uniform, 100, 8)->kind(),
              LayoutKind::Uniform);
    const auto learning = makeLayout(
        LayoutKind::LearningAdaptive, 100, 8,
        [](std::uint64_t) { return 1.0; });
    EXPECT_EQ(learning->kind(), LayoutKind::LearningAdaptive);
}

TEST(MakeLayout, LearningWithoutOracleIsAnError)
{
    EXPECT_THROW(
        makeLayout(LayoutKind::LearningAdaptive, 100, 8),
        sim::PanicError);
}

TEST(AccessPattern, CountsPerChannel)
{
    const UniformLayout strat(32, 4);
    const std::vector<std::uint64_t> candidates{0, 1, 4, 5, 8};
    const std::vector<std::uint64_t> pattern =
        channelAccessPattern(candidates, strat);
    ASSERT_EQ(pattern.size(), 4u);
    EXPECT_EQ(pattern[0], 3u);
    EXPECT_EQ(pattern[1], 2u);
    EXPECT_EQ(pattern[2], 0u);
}

TEST(AccessPattern, BalanceMetricEdgeCases)
{
    EXPECT_DOUBLE_EQ(accessBalance(std::vector<std::uint64_t>{}),
                     1.0);
    EXPECT_DOUBLE_EQ(
        accessBalance(std::vector<std::uint64_t>{0, 0, 0}), 1.0);
    EXPECT_DOUBLE_EQ(
        accessBalance(std::vector<std::uint64_t>{4, 4, 4, 4}), 1.0);
    EXPECT_NEAR(
        accessBalance(std::vector<std::uint64_t>{8, 0, 0, 0}), 0.25,
        1e-12);
}

TEST(AccessPattern, BalanceOrderingOnSkewedCandidates)
{
    // Fig 11/12's qualitative result: learning > uniform >>
    // sequential on popularity-skewed candidate sets.
    using namespace ecssd::xclass;
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("XMLCNN-S10M"), 65536);
    CandidateTrace trace(spec, 42);

    const SequentialLayout seq(spec.categories, 8);
    const UniformLayout uni(spec.categories, 8);
    const auto learn = LearningAdaptiveLayout::buildStreaming(
        spec.categories,
        [&trace](std::uint64_t row) { return trace.hotness(row); },
        8);

    double seq_balance = 0.0, uni_balance = 0.0,
           learn_balance = 0.0;
    const int batches = 5;
    for (int b = 0; b < batches; ++b) {
        const std::vector<std::uint64_t> candidates =
            trace.drawCandidates();
        seq_balance +=
            accessBalance(channelAccessPattern(candidates, seq));
        uni_balance +=
            accessBalance(channelAccessPattern(candidates, uni));
        learn_balance +=
            accessBalance(channelAccessPattern(candidates, *learn));
    }
    EXPECT_GT(uni_balance, seq_balance);
    EXPECT_GE(learn_balance, uni_balance * 0.98);
    EXPECT_GT(learn_balance / batches, 0.9);
}

TEST(PageOfRow, RespectsStrategyChannelAndGeometry)
{
    const ssdsim::SsdConfig config = ssdsim::smallTestConfig();
    const UniformLayout strat(1024, config.channels);
    for (std::uint64_t row = 0; row < 256; ++row) {
        const ssdsim::PhysicalPage ppa =
            pageOfRow(strat, config, row);
        EXPECT_EQ(ppa.channel, strat.channelOf(row));
        EXPECT_LT(ppa.die, config.diesPerChannel);
        EXPECT_LT(ppa.plane, config.planesPerDie);
        EXPECT_LT(ppa.block, config.blocksPerPlane);
        EXPECT_LT(ppa.page, config.pagesPerBlock);
    }
}

TEST(PageOfRow, SpreadsRowsAcrossDies)
{
    const ssdsim::SsdConfig config; // 8 dies/channel
    const UniformLayout strat(8192, config.channels);
    std::set<unsigned> dies;
    for (std::uint64_t row = 0; row < 128; ++row)
        dies.insert(pageOfRow(strat, config, row * 8).die);
    EXPECT_GE(dies.size(), config.diesPerChannel / 2);
}

TEST(LayoutKind, Names)
{
    EXPECT_EQ(toString(LayoutKind::Sequential), "sequential");
    EXPECT_EQ(toString(LayoutKind::Uniform), "uniform");
    EXPECT_EQ(toString(LayoutKind::LearningAdaptive),
              "learning_adaptive");
}
