/**
 * @file
 * Circuit model tests: Table 4 totals, Fig 9 ratios, Section 3.3/4.2
 * constants, and the roofline helper.
 */

#include <gtest/gtest.h>

#include "circuit/accelerator_model.hh"
#include "circuit/mac_circuit.hh"

using namespace ecssd::circuit;

TEST(MacCircuit, NaiveAlignmentShareMatchesPaper)
{
    // Section 4.2: alignment-related components are 37.7% of the
    // naive FP MAC.
    const CircuitBlock naive = naiveFp32Mac();
    const double share = naive.areaFraction(
        {"exponent_comparator_8b", "mantissa_shifter_24b"});
    EXPECT_NEAR(share, 0.377, 0.005);
}

TEST(MacCircuit, AreaRatiosMatchFig9)
{
    const double naive = naiveFp32Mac().areaUm2();
    const double skh = skHynixFp32Mac().areaUm2();
    const double af = alignmentFreeFp32Mac().areaUm2();
    EXPECT_NEAR(naive / af, 1.73, 0.02);
    EXPECT_NEAR(skh / af, 1.38, 0.02);
    EXPECT_LT(af, skh);
    EXPECT_LT(skh, naive);
}

TEST(MacCircuit, PowerRatiosMatchFig9)
{
    const double naive = naiveFp32Mac().powerUw();
    const double skh = skHynixFp32Mac().powerUw();
    const double af = alignmentFreeFp32Mac().powerUw();
    EXPECT_NEAR(naive / af, 1.53, 0.02);
    EXPECT_NEAR(skh / af, 1.19, 0.02);
}

TEST(MacCircuit, ArrayScalesLinearly)
{
    const CircuitBlock mac = alignmentFreeFp32Mac();
    const CircuitBlock array = macArray(mac, 64);
    EXPECT_NEAR(array.areaUm2(), 64.0 * mac.areaUm2(), 1e-6);
    EXPECT_NEAR(array.powerUw(), 64.0 * mac.powerUw(), 1e-6);
}

TEST(MacCircuit, PeakGflopsAt400Mhz)
{
    // 64 MACs x 2 ops x 400 MHz = 51.2 GFLOPS ("50 GFLOPS").
    EXPECT_NEAR(peakGflops(64), 51.2, 1e-9);
    EXPECT_NEAR(peakGflops(256), 204.8, 1e-9);
}

TEST(MacCircuit, MacsForGflopsInverts)
{
    EXPECT_EQ(macsForGflops(51.2), 64u);
    EXPECT_EQ(macsForGflops(34.8), 44u);
    EXPECT_GE(peakGflops(macsForGflops(34.8)), 34.8);
}

TEST(MacCircuit, NaiveAtIsoAreaLandsNear29Gflops)
{
    // Section 4.2: under the same area the naive circuit reaches
    // only ~29.2 GFLOPS where alignment-free reaches ~50.
    const double area =
        macArray(alignmentFreeFp32Mac(), 64).areaMm2();
    const unsigned naive_macs = macsInArea(naiveFp32Mac(), area);
    const double naive_gflops = peakGflops(naive_macs);
    EXPECT_NEAR(naive_gflops, 29.2, 1.5);
    EXPECT_LT(naive_gflops, 34.8); // cannot feed the channels
    EXPECT_GT(peakGflops(64), 34.8); // ours can
}

TEST(AcceleratorModel, Table4Totals)
{
    const AcceleratorEstimate est =
        estimateAccelerator(AcceleratorConfig{});
    EXPECT_NEAR(est.totalAreaMm2, 0.1836, 0.002);
    EXPECT_NEAR(est.totalPowerMw, 52.93, 0.3);
    EXPECT_TRUE(est.fitsBudget());
}

TEST(AcceleratorModel, Table4Breakdown)
{
    const AcceleratorEstimate est =
        estimateAccelerator(AcceleratorConfig{});
    ASSERT_EQ(est.rows.size(), 4u);
    EXPECT_NEAR(est.rows[0].areaMm2, 0.139, 0.002);  // FP32 MAC
    EXPECT_NEAR(est.rows[0].powerMw, 33.87, 0.2);
    EXPECT_NEAR(est.rows[1].areaMm2, 0.044, 0.001);  // INT4 MAC
    EXPECT_NEAR(est.rows[1].powerMw, 19.04, 0.2);
    EXPECT_NEAR(est.rows[2].areaMm2, 0.0004, 0.0001);
    EXPECT_NEAR(est.rows[3].areaMm2, 0.0002, 0.0001);
}

TEST(AcceleratorModel, Fp32ShareOfTotal)
{
    // Section 6.2: the FP32 array takes 75.7% of area, 63.9% of
    // power.
    const AcceleratorEstimate est =
        estimateAccelerator(AcceleratorConfig{});
    EXPECT_NEAR(est.rows[0].areaMm2 / est.totalAreaMm2, 0.757, 0.01);
    EXPECT_NEAR(est.rows[0].powerMw / est.totalPowerMw, 0.639, 0.01);
}

TEST(AcceleratorModel, NaiveVariantExceedsIsoPerformanceBudget)
{
    // Section 6.2: iso-performance naive FP32 needs ~0.24 mm2, which
    // busts the 0.21 mm2 budget.
    AcceleratorConfig config;
    config.fpKind = FpMacKind::Naive;
    config.fp32Macs = macsForGflops(peakGflops(64));
    const AcceleratorEstimate est = estimateAccelerator(config);
    EXPECT_NEAR(est.rows[0].areaMm2, 0.24, 0.01);
    EXPECT_FALSE(est.fitsBudget());
}

TEST(AcceleratorModel, PeakRatesExposed)
{
    const AcceleratorEstimate est =
        estimateAccelerator(AcceleratorConfig{});
    EXPECT_NEAR(est.fp32PeakGflops, 51.2, 1e-9);
    EXPECT_NEAR(est.int4PeakGops, 204.8, 1e-9);
}

TEST(Roofline, MemoryBoundBelowRidge)
{
    // Peak 50 GFLOPS over 8 GB/s: ridge at 6.25 FLOP/byte.
    const RooflinePoint p = roofline(50.0, 8.0, 1.0);
    EXPECT_FALSE(p.computeBound);
    EXPECT_NEAR(p.attainableGflops, 8.0, 1e-9);
}

TEST(Roofline, ComputeBoundAboveRidge)
{
    const RooflinePoint p = roofline(50.0, 8.0, 100.0);
    EXPECT_TRUE(p.computeBound);
    EXPECT_NEAR(p.attainableGflops, 50.0, 1e-9);
}

TEST(Roofline, BaselineIsComputeBoundOursIsNot)
{
    // Fig 1: the naive in-storage baseline (29.2 GFLOPS) is compute
    // bound at the workload's intensity, while the alignment-free
    // design (51.2) clears the memory roof.
    const double intensity = 34.8 / 8.0; // needs 34.8 GFLOPS at 8 GB/s
    const RooflinePoint a = roofline(29.2, 8.0, intensity);
    const RooflinePoint b = roofline(51.2, 8.0, intensity);
    EXPECT_TRUE(a.computeBound);
    EXPECT_FALSE(b.computeBound);
    EXPECT_GT(b.attainableGflops, a.attainableGflops);
}

TEST(CircuitBlock, AreaFractionOfMissingComponentIsZero)
{
    const CircuitBlock naive = naiveFp32Mac();
    EXPECT_EQ(naive.areaFraction({"bogus"}), 0.0);
}

TEST(CircuitBlock, ToStringNames)
{
    EXPECT_EQ(toString(FpMacKind::Naive), "naive");
    EXPECT_EQ(toString(FpMacKind::SkHynix), "skhynix");
    EXPECT_EQ(toString(FpMacKind::AlignmentFree), "alignment_free");
}
