/**
 * @file
 * Energy model tests: composition, scaling, and end-to-end
 * efficiency sanity against the Section 7.3 numbers.
 */

#include <gtest/gtest.h>

#include "circuit/energy.hh"
#include "ecssd/system.hh"

using namespace ecssd;
using namespace ecssd::circuit;

namespace
{

AcceleratorEstimate
accelEstimate()
{
    return estimateAccelerator(AcceleratorConfig{});
}

} // namespace

TEST(Energy, ZeroActivityOnlyBackground)
{
    EnergyActivity activity;
    activity.elapsed = sim::milliseconds(1.0);
    const EnergyBreakdown e = estimateEnergy(activity, accelEstimate());
    EXPECT_EQ(e.flashUj, 0.0);
    EXPECT_EQ(e.dramUj, 0.0);
    EXPECT_EQ(e.hostLinkUj, 0.0);
    EXPECT_EQ(e.acceleratorUj, 0.0);
    EXPECT_GT(e.backgroundUj, 0.0);
    // 900 mW for 1 ms = 900 uJ.
    EXPECT_NEAR(e.backgroundUj, 900.0, 1.0);
}

TEST(Energy, FlashEnergyScalesWithPages)
{
    EnergyActivity one;
    one.flashPagesRead = 1;
    EnergyActivity many;
    many.flashPagesRead = 1000;
    const double e1 = estimateEnergy(one, accelEstimate()).flashUj;
    const double e1000 = estimateEnergy(many, accelEstimate()).flashUj;
    EXPECT_NEAR(e1000, 1000.0 * e1, 1e-9);
    // 60 pJ/bit * 32768 bits ~= 2 uJ per page.
    EXPECT_NEAR(e1, 1.97, 0.1);
}

TEST(Energy, ProgramCostsMoreThanRead)
{
    EnergyActivity read;
    read.flashPagesRead = 10;
    EnergyActivity program;
    program.flashPagesProgrammed = 10;
    EXPECT_GT(estimateEnergy(program, accelEstimate()).flashUj,
              estimateEnergy(read, accelEstimate()).flashUj);
}

TEST(Energy, AcceleratorEnergyTracksOccupancy)
{
    EnergyActivity activity;
    activity.fp32Flops = 51200000000ULL; // one second at peak
    activity.elapsed = sim::seconds(1.0);
    const EnergyBreakdown e = estimateEnergy(activity, accelEstimate());
    // One second of the FP32 array at 33.87 mW ~= 33.87 mJ.
    EXPECT_NEAR(e.acceleratorUj, 33860.0, 200.0);
}

TEST(Energy, AveragePowerIsConsistent)
{
    EnergyActivity activity;
    activity.elapsed = sim::milliseconds(10.0);
    activity.flashPagesRead = 1000;
    const EnergyBreakdown e = estimateEnergy(activity, accelEstimate());
    const double mw = e.averagePowerMw(activity.elapsed);
    EXPECT_NEAR(mw, e.totalUj() / 10.0, 1e-6); // uJ / ms = mW
}

TEST(Energy, GflopsPerWattIsFinite)
{
    EnergyActivity activity;
    activity.fp32Flops = 1000000000ULL;
    activity.elapsed = sim::milliseconds(100.0);
    activity.flashPagesRead = 10000;
    const EnergyBreakdown e = estimateEnergy(activity, accelEstimate());
    const double eff =
        e.gflopsPerWatt(activity.fp32Flops, activity.elapsed);
    EXPECT_GT(eff, 0.0);
    EXPECT_LT(eff, 100.0);
}

TEST(Energy, EndToEndRunEfficiencyIsPlausible)
{
    // Whole-device efficiency of a real screened run lands in the
    // single-digit GFLOPS/W band the paper reports (4.55 at the
    // device level).
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 65536);
    EcssdSystem system(spec, EcssdOptions::full());
    const accel::RunResult run = system.runInference(2);
    const EnergyBreakdown e = system.estimateRunEnergy(run);
    EXPECT_GT(e.totalUj(), 0.0);
    EXPECT_GT(e.flashUj, 0.0);
    EXPECT_GT(e.dramUj, 0.0);
    EXPECT_GT(e.hostLinkUj, 0.0);
    const double eff = e.gflopsPerWatt(
        run.batches[0].fp32Flops + run.batches[1].fp32Flops,
        run.totalTime);
    EXPECT_GT(eff, 0.2);
    EXPECT_LT(eff, 50.0);
}

TEST(Energy, ScreeningSavesEnergy)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 32768);
    EcssdSystem screened(spec, EcssdOptions::full());
    EcssdOptions dense_options = EcssdOptions::full();
    dense_options.screening = false;
    EcssdSystem dense(spec, dense_options);

    const accel::RunResult fast = screened.runInference(1);
    const double fast_uj =
        screened.estimateRunEnergy(fast).totalUj();
    const accel::RunResult slow = dense.runInference(1);
    const double slow_uj = dense.estimateRunEnergy(slow).totalUj();
    EXPECT_LT(fast_uj, slow_uj / 2.0);
}
