/**
 * @file
 * Inference server tests: request lifecycle, batching, latency
 * accounting, and prediction consistency.
 */

#include <gtest/gtest.h>

#include "ecssd/server.hh"
#include "sim/rng.hh"
#include "xclass/metrics.hh"

using namespace ecssd;

namespace
{

struct ServerFixture
{
    ServerFixture()
        : spec(makeSpec()), model(spec, 1),
          server(model.weights(), spec, EcssdOptions::full(),
                 &model.basis())
    {
    }

    static xclass::BenchmarkSpec
    makeSpec()
    {
        xclass::BenchmarkSpec spec = xclass::scaledDown(
            xclass::benchmarkByName("GNMT-E32K"), 1024);
        spec.hiddenDim = 128;
        spec.batchSize = 4;
        return spec;
    }

    xclass::BenchmarkSpec spec;
    xclass::SyntheticModel model;
    InferenceServer server;
};

} // namespace

TEST(InferenceServer, RequestIdsAreUniqueAndOrdered)
{
    ServerFixture f;
    sim::Rng rng(2);
    const auto a = f.server.enqueue(f.model.sampleQuery(rng));
    const auto b = f.server.enqueue(f.model.sampleQuery(rng));
    EXPECT_NE(a, b);
    EXPECT_LT(a, b);
    EXPECT_EQ(f.server.pending(), 2u);
}

TEST(InferenceServer, ProcessAllDrainsQueue)
{
    ServerFixture f;
    sim::Rng rng(3);
    for (int i = 0; i < 10; ++i)
        f.server.enqueue(f.model.sampleQuery(rng));
    const auto responses = f.server.processAll(5);
    EXPECT_EQ(responses.size(), 10u);
    EXPECT_EQ(f.server.pending(), 0u);
    for (const auto &response : responses) {
        EXPECT_EQ(response.prediction.topCategories.size(), 5u);
        EXPECT_GT(response.completedAt, 0u);
    }
}

TEST(InferenceServer, LatencyIsRecordedPerRequest)
{
    ServerFixture f;
    sim::Rng rng(4);
    for (int i = 0; i < 6; ++i)
        f.server.enqueue(f.model.sampleQuery(rng));
    f.server.processAll(3);
    EXPECT_EQ(f.server.latencyMs().count(), 6u);
    EXPECT_GT(f.server.latencyMs().mean(), 0.0);
}

TEST(InferenceServer, LaterBatchesFinishLater)
{
    ServerFixture f;
    sim::Rng rng(5);
    for (int i = 0; i < 8; ++i) // two batches of 4
        f.server.enqueue(f.model.sampleQuery(rng));
    const auto responses = f.server.processAll(1);
    ASSERT_EQ(responses.size(), 8u);
    EXPECT_GT(responses[7].completedAt, responses[0].completedAt);
    EXPECT_EQ(f.server.deviceTime(), responses[7].completedAt);
}

TEST(InferenceServer, PredictionsMatchDirectClassifier)
{
    ServerFixture f;
    const xclass::ApproximateClassifier reference(
        f.model.weights(), f.spec, EcssdOptions::full().seed,
        &f.model.basis());
    sim::Rng rng(6);
    const std::vector<float> query = f.model.sampleQuery(rng);
    f.server.enqueue(query);
    const auto responses = f.server.processAll(5);
    ASSERT_EQ(responses.size(), 1u);
    const auto direct = reference.predict(query, 5);
    EXPECT_EQ(responses[0].prediction.topCategories,
              direct.topCategories);
}

TEST(InferenceServer, WrongDimensionPanics)
{
    ServerFixture f;
    std::vector<float> wrong(f.spec.hiddenDim + 1, 1.0f);
    EXPECT_THROW(f.server.enqueue(wrong), sim::PanicError);
}

TEST(InferenceServer, EmptyProcessAllIsNoop)
{
    ServerFixture f;
    EXPECT_TRUE(f.server.processAll(5).empty());
    EXPECT_EQ(f.server.latencyMs().count(), 0u);
}

TEST(InferenceServer, OpenLoopServesEverything)
{
    ServerFixture f;
    sim::Rng rng(7);
    std::vector<std::vector<float>> pool;
    for (int q = 0; q < 8; ++q)
        pool.push_back(f.model.sampleQuery(rng));
    const auto responses =
        f.server.runOpenLoop(pool, /*rps=*/2000.0,
                             /*requests=*/40, /*k=*/3);
    EXPECT_EQ(responses.size(), 40u);
    EXPECT_EQ(f.server.pending(), 0u);
    EXPECT_EQ(f.server.latencyPercentiles().count(), 40u);
    EXPECT_GE(f.server.latencyPercentiles().p99(),
              f.server.latencyPercentiles().p50());
}

TEST(InferenceServer, HigherLoadRaisesTailLatency)
{
    auto tail = [](double rps) {
        ServerFixture f;
        sim::Rng rng(8);
        std::vector<std::vector<float>> pool;
        for (int q = 0; q < 8; ++q)
            pool.push_back(f.model.sampleQuery(rng));
        f.server.runOpenLoop(pool, rps, 60, 3);
        return f.server.latencyPercentiles().p99();
    };
    const double light = tail(100.0);
    const double heavy = tail(100000.0);
    EXPECT_GT(heavy, light);
}

TEST(InferenceServer, LightLoadServesSingles)
{
    // At very light load each request is served alone: latency is
    // roughly the single-batch device latency, with low variance.
    ServerFixture f;
    sim::Rng rng(9);
    std::vector<std::vector<float>> pool;
    for (int q = 0; q < 4; ++q)
        pool.push_back(f.model.sampleQuery(rng));
    f.server.runOpenLoop(pool, /*rps=*/1.0, /*requests=*/10, 3);
    const double spread = f.server.latencyPercentiles().p99()
        - f.server.latencyPercentiles().quantile(0.05);
    EXPECT_LT(spread,
              f.server.latencyPercentiles().p50() * 0.5 + 0.1);
}

TEST(InferenceServer, OpenLoopRejectsBadArguments)
{
    ServerFixture f;
    std::vector<std::vector<float>> empty;
    EXPECT_THROW(f.server.runOpenLoop(empty, 10.0, 1, 1),
                 sim::PanicError);
    std::vector<std::vector<float>> pool{
        std::vector<float>(f.spec.hiddenDim, 1.0f)};
    EXPECT_THROW(f.server.runOpenLoop(pool, 0.0, 1, 1),
                 sim::PanicError);
}
