/**
 * @file
 * Inference server tests: request lifecycle, batching, latency
 * accounting, and prediction consistency.
 */

#include <gtest/gtest.h>

#include "ecssd/server.hh"
#include "sim/rng.hh"
#include "xclass/metrics.hh"

using namespace ecssd;

namespace
{

struct ServerFixture
{
    ServerFixture()
        : spec(makeSpec()), model(spec, 1),
          server(model.weights(), spec, EcssdOptions::full(),
                 &model.basis())
    {
    }

    static xclass::BenchmarkSpec
    makeSpec()
    {
        xclass::BenchmarkSpec spec = xclass::scaledDown(
            xclass::benchmarkByName("GNMT-E32K"), 1024);
        spec.hiddenDim = 128;
        spec.batchSize = 4;
        return spec;
    }

    xclass::BenchmarkSpec spec;
    xclass::SyntheticModel model;
    InferenceServer server;
};

} // namespace

TEST(InferenceServer, RequestIdsAreUniqueAndOrdered)
{
    ServerFixture f;
    sim::Rng rng(2);
    const auto a = f.server.enqueue(f.model.sampleQuery(rng));
    const auto b = f.server.enqueue(f.model.sampleQuery(rng));
    EXPECT_NE(a, b);
    EXPECT_LT(a, b);
    EXPECT_EQ(f.server.pending(), 2u);
}

TEST(InferenceServer, ProcessAllDrainsQueue)
{
    ServerFixture f;
    sim::Rng rng(3);
    for (int i = 0; i < 10; ++i)
        f.server.enqueue(f.model.sampleQuery(rng));
    const auto responses = f.server.processAll(5);
    EXPECT_EQ(responses.size(), 10u);
    EXPECT_EQ(f.server.pending(), 0u);
    for (const auto &response : responses) {
        EXPECT_EQ(response.prediction.topCategories.size(), 5u);
        EXPECT_GT(response.completedAt, 0u);
    }
}

TEST(InferenceServer, LatencyIsRecordedPerRequest)
{
    ServerFixture f;
    sim::Rng rng(4);
    for (int i = 0; i < 6; ++i)
        f.server.enqueue(f.model.sampleQuery(rng));
    f.server.processAll(3);
    EXPECT_EQ(f.server.latencyMs().count(), 6u);
    EXPECT_GT(f.server.latencyMs().mean(), 0.0);
}

TEST(InferenceServer, LaterBatchesFinishLater)
{
    ServerFixture f;
    sim::Rng rng(5);
    for (int i = 0; i < 8; ++i) // two batches of 4
        f.server.enqueue(f.model.sampleQuery(rng));
    const auto responses = f.server.processAll(1);
    ASSERT_EQ(responses.size(), 8u);
    EXPECT_GT(responses[7].completedAt, responses[0].completedAt);
    EXPECT_EQ(f.server.deviceTime(), responses[7].completedAt);
}

TEST(InferenceServer, PredictionsMatchDirectClassifier)
{
    ServerFixture f;
    const xclass::ApproximateClassifier reference(
        f.model.weights(), f.spec, EcssdOptions::full().seed,
        &f.model.basis());
    sim::Rng rng(6);
    const std::vector<float> query = f.model.sampleQuery(rng);
    f.server.enqueue(query);
    const auto responses = f.server.processAll(5);
    ASSERT_EQ(responses.size(), 1u);
    const auto direct = reference.predict(query, 5);
    EXPECT_EQ(responses[0].prediction.topCategories,
              direct.topCategories);
}

TEST(InferenceServer, WrongDimensionPanics)
{
    ServerFixture f;
    std::vector<float> wrong(f.spec.hiddenDim + 1, 1.0f);
    EXPECT_THROW(f.server.enqueue(wrong), sim::PanicError);
}

TEST(InferenceServer, EmptyProcessAllIsNoop)
{
    ServerFixture f;
    EXPECT_TRUE(f.server.processAll(5).empty());
    EXPECT_EQ(f.server.latencyMs().count(), 0u);
}

TEST(InferenceServer, OpenLoopServesEverything)
{
    ServerFixture f;
    sim::Rng rng(7);
    std::vector<std::vector<float>> pool;
    for (int q = 0; q < 8; ++q)
        pool.push_back(f.model.sampleQuery(rng));
    const auto responses =
        f.server.runOpenLoop(pool, /*rps=*/2000.0,
                             /*requests=*/40, /*k=*/3);
    EXPECT_EQ(responses.size(), 40u);
    EXPECT_EQ(f.server.pending(), 0u);
    EXPECT_EQ(f.server.latencyPercentiles().count(), 40u);
    EXPECT_GE(f.server.latencyPercentiles().p99(),
              f.server.latencyPercentiles().p50());
}

TEST(InferenceServer, HigherLoadRaisesTailLatency)
{
    auto tail = [](double rps) {
        ServerFixture f;
        sim::Rng rng(8);
        std::vector<std::vector<float>> pool;
        for (int q = 0; q < 8; ++q)
            pool.push_back(f.model.sampleQuery(rng));
        f.server.runOpenLoop(pool, rps, 60, 3);
        return f.server.latencyPercentiles().p99();
    };
    const double light = tail(100.0);
    const double heavy = tail(100000.0);
    EXPECT_GT(heavy, light);
}

TEST(InferenceServer, LightLoadServesSingles)
{
    // At very light load each request is served alone: latency is
    // roughly the single-batch device latency, with low variance.
    ServerFixture f;
    sim::Rng rng(9);
    std::vector<std::vector<float>> pool;
    for (int q = 0; q < 4; ++q)
        pool.push_back(f.model.sampleQuery(rng));
    f.server.runOpenLoop(pool, /*rps=*/1.0, /*requests=*/10, 3);
    const double spread = f.server.latencyPercentiles().p99()
        - f.server.latencyPercentiles().quantile(0.05);
    EXPECT_LT(spread,
              f.server.latencyPercentiles().p50() * 0.5 + 0.1);
}

TEST(InferenceServer, ResponsesAreOkWithoutFaultsOrDeadlines)
{
    ServerFixture f;
    sim::Rng rng(21);
    for (int i = 0; i < 6; ++i)
        f.server.enqueue(f.model.sampleQuery(rng));
    for (const auto &response : f.server.processAll(3))
        EXPECT_EQ(response.status,
                  InferenceServer::Response::Status::Ok);
    EXPECT_EQ(f.server.serverStats().okResponses, 6u);
    EXPECT_EQ(f.server.serverStats().acceptedRequests, 6u);
}

TEST(InferenceServer, DeadlineTimesOutLateRequests)
{
    // A deadline far below the device batch latency: the first batch
    // completes late (TimedOut with a prediction), and by the time
    // the second batch forms its requests are already expired, so
    // they are dropped without device work.
    ServerFixture f;
    ServerConfig config;
    config.requestDeadline = sim::microseconds(1.0);
    InferenceServer server(f.model.weights(), f.spec,
                           EcssdOptions::full(), &f.model.basis(),
                           config);
    sim::Rng rng(22);
    for (int i = 0; i < 8; ++i) // two batches of 4
        server.enqueue(f.model.sampleQuery(rng));
    const auto responses = server.processAll(3);
    ASSERT_EQ(responses.size(), 8u);
    for (const auto &response : responses)
        EXPECT_EQ(response.status,
                  InferenceServer::Response::Status::TimedOut);
    EXPECT_EQ(server.serverStats().timedOutRequests, 8u);
    EXPECT_GT(server.serverStats().droppedBeforeService, 0u);
    // Dropped requests burned no device time: only one batch ran.
    EXPECT_EQ(server.latencyMs().count(),
              8u - server.serverStats().droppedBeforeService);
}

TEST(InferenceServer, GenerousDeadlineChangesNothing)
{
    ServerFixture strict;
    ServerConfig config;
    config.requestDeadline = sim::seconds(10.0);
    InferenceServer relaxed(strict.model.weights(), strict.spec,
                            EcssdOptions::full(),
                            &strict.model.basis(), config);
    sim::Rng rng_a(23), rng_b(23);
    for (int i = 0; i < 6; ++i) {
        strict.server.enqueue(strict.model.sampleQuery(rng_a));
        relaxed.enqueue(strict.model.sampleQuery(rng_b));
    }
    const auto base = strict.server.processAll(3);
    const auto timed = relaxed.processAll(3);
    ASSERT_EQ(base.size(), timed.size());
    for (std::size_t i = 0; i < base.size(); ++i) {
        EXPECT_EQ(timed[i].status,
                  InferenceServer::Response::Status::Ok);
        EXPECT_EQ(base[i].completedAt, timed[i].completedAt);
    }
}

TEST(InferenceServer, BoundedQueueShedsOverload)
{
    ServerFixture f;
    ServerConfig config;
    config.queueCapacity = 4;
    InferenceServer server(f.model.weights(), f.spec,
                           EcssdOptions::full(), &f.model.basis(),
                           config);
    sim::Rng rng(24);
    for (int i = 0; i < 10; ++i)
        server.enqueue(f.model.sampleQuery(rng));
    EXPECT_EQ(server.pending(), 4u);
    EXPECT_EQ(server.serverStats().shedRequests, 6u);

    const auto responses = server.processAll(3);
    ASSERT_EQ(responses.size(), 10u);
    unsigned shed = 0;
    for (const auto &response : responses) {
        if (response.status
            == InferenceServer::Response::Status::Shed) {
            ++shed;
            EXPECT_TRUE(response.prediction.topCategories.empty());
        }
    }
    EXPECT_EQ(shed, 6u);
    EXPECT_EQ(server.pending(), 0u);
    // Shed requests never enter the latency statistics.
    EXPECT_EQ(server.latencyMs().count(), 4u);
}

TEST(InferenceServer, FailBatchRetriesWithBackoffAndKeepsServing)
{
    ServerFixture f;
    EcssdOptions flaky = EcssdOptions::full();
    flaky.ssd.uncorrectableReadRate = 0.05;
    flaky.degradedPolicy = accel::DegradedReadPolicy::FailBatch;
    ServerConfig config;
    config.maxBatchRetries = 3;
    InferenceServer server(f.model.weights(), f.spec, flaky,
                           &f.model.basis(), config);
    sim::Rng rng(25);
    for (int i = 0; i < 16; ++i)
        server.enqueue(f.model.sampleQuery(rng));
    const auto responses = server.processAll(3);
    ASSERT_EQ(responses.size(), 16u);
    // Every request got an answer despite aborted device batches.
    for (const auto &response : responses)
        EXPECT_EQ(response.prediction.topCategories.size(), 3u);
    EXPECT_GT(server.serverStats().batchRetries, 0u);
}

TEST(InferenceServer, RetryBackoffIsChargedToTheSimulatedClock)
{
    // Two servers differ only in the backoff constant; the fault
    // draws (and therefore the retry schedule) are identical, so
    // every tick of completion-time difference is backoff actually
    // charged to the clock — a retried batch lands *after* the
    // failure tick, not at it.
    ServerFixture f;
    EcssdOptions flaky = EcssdOptions::full();
    flaky.ssd.uncorrectableReadRate = 0.05;
    flaky.degradedPolicy = accel::DegradedReadPolicy::FailBatch;

    ServerConfig quick;
    quick.maxBatchRetries = 1; // one retry => one backoff per abort
    quick.retryBackoffUs = 100.0;
    ServerConfig slow = quick;
    slow.retryBackoffUs = 100000.0;

    InferenceServer quick_server(f.model.weights(), f.spec, flaky,
                                 &f.model.basis(), quick);
    InferenceServer slow_server(f.model.weights(), f.spec, flaky,
                                &f.model.basis(), slow);
    sim::Rng rng_a(26), rng_b(26);
    for (int i = 0; i < 16; ++i) {
        quick_server.enqueue(f.model.sampleQuery(rng_a));
        slow_server.enqueue(f.model.sampleQuery(rng_b));
    }
    const auto quick_responses = quick_server.processAll(3);
    const auto slow_responses = slow_server.processAll(3);

    const std::uint64_t retries =
        quick_server.serverStats().batchRetries;
    ASSERT_GT(retries, 0u) << "no batch ever aborted";
    ASSERT_EQ(retries, slow_server.serverStats().batchRetries)
        << "retry schedules diverged; the comparison is invalid";

    // The total device time differs by exactly the backoff delta
    // times the number of retries.
    const sim::Tick delta = sim::microseconds(100000.0 - 100.0);
    EXPECT_EQ(slow_server.deviceTime(),
              quick_server.deviceTime() + delta * retries);

    // Per request: nobody finishes earlier under the larger
    // backoff, and the retried batches finish strictly later.
    ASSERT_EQ(quick_responses.size(), slow_responses.size());
    unsigned later = 0;
    for (std::size_t i = 0; i < quick_responses.size(); ++i) {
        EXPECT_EQ(quick_responses[i].id, slow_responses[i].id);
        EXPECT_GE(slow_responses[i].completedAt,
                  quick_responses[i].completedAt);
        later += slow_responses[i].completedAt
                > quick_responses[i].completedAt
            ? 1
            : 0;
    }
    EXPECT_GT(later, 0u);
}

TEST(InferenceServer, OpenLoopRejectsBadArguments)
{
    ServerFixture f;
    std::vector<std::vector<float>> empty;
    EXPECT_THROW(f.server.runOpenLoop(empty, 10.0, 1, 1),
                 sim::PanicError);
    std::vector<std::vector<float>> pool{
        std::vector<float>(f.spec.hiddenDim, 1.0f)};
    EXPECT_THROW(f.server.runOpenLoop(pool, 0.0, 1, 1),
                 sim::PanicError);
}
