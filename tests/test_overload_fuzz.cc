/**
 * @file
 * Chaos-load campaign: randomized spike trains (process, rate,
 * burstiness, class mix) crossed with injected media faults
 * (uncorrectable reads under the FailBatch abort policy) and a
 * mid-spike weight redeploy, against the full overload-control
 * stack (admission target, bounded queue, brownout ladder,
 * deadline-slack batching, retry jitter).
 *
 * Invariants asserted on every configuration:
 *  - conservation: exactly one terminal response per arrival, ids
 *    unique, no request lost or double-terminated;
 *  - the Gold floor: with shedding only from the brownout ladder,
 *    Gold traffic is never shed and every served Gold answer
 *    carries a top-k (recall never below the screener floor);
 *  - steady state: after the stream drains the queue is empty, the
 *    brownout ladder is back at Full, and any in-flight hot swap
 *    reached a terminal phase;
 *  - bounded drain: the ladder's recovery climbs at most one rung
 *    per guard dwell, so the drain tail is a few guard periods, not
 *    unbounded.
 *
 * Iteration counts scale with ECSSD_FUZZ_ITERS (the nightly
 * long-fuzz CI job sets it to soak far beyond the per-commit
 * budget).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <set>
#include <vector>

#include "ecssd/server.hh"
#include "sim/rng.hh"
#include "sim/traffic.hh"
#include "xclass/metrics.hh"

using namespace ecssd;

namespace
{

/** Iteration count scaled by the ECSSD_FUZZ_ITERS multiplier. */
int
fuzzIters(int base)
{
    const char *env = std::getenv("ECSSD_FUZZ_ITERS");
    if (env == nullptr)
        return base;
    const long mult = std::strtol(env, nullptr, 10);
    return mult > 1 ? base * static_cast<int>(mult) : base;
}

xclass::BenchmarkSpec
chaosSpec()
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 512);
    spec.hiddenDim = 128;
    spec.batchSize = 4;
    return spec;
}

} // namespace

TEST(ChaosLoad, SpikesFaultsAndRedeployPreserveEveryInvariant)
{
    const xclass::BenchmarkSpec spec = chaosSpec();
    const xclass::SyntheticModel model(spec, 1);
    const xclass::SyntheticModel next_version(spec, 2);
    std::vector<std::vector<float>> queries;
    {
        sim::Rng qrng(23);
        for (int q = 0; q < 24; ++q)
            queries.push_back(model.sampleQuery(qrng));
    }

    const int iters = fuzzIters(8);
    for (int iter = 0; iter < iters; ++iter) {
        sim::Rng rng(4000 + static_cast<std::uint64_t>(iter));

        // --- Randomized spike train --------------------------------
        sim::TrafficConfig traffic;
        const double shape = rng.uniform();
        traffic.process = shape < 0.6
            ? sim::ArrivalProcess::BurstySpike
            : (shape < 0.8 ? sim::ArrivalProcess::Diurnal
                           : sim::ArrivalProcess::Poisson);
        traffic.ratePerSecond = 5000.0 + 45000.0 * rng.uniform();
        traffic.burstRateMultiplier = 2.0 + 14.0 * rng.uniform();
        traffic.meanBurstSeconds = 0.005 + 0.03 * rng.uniform();
        traffic.meanCalmSeconds = 0.05 + 0.2 * rng.uniform();
        traffic.goldFraction = 0.1 + 0.4 * rng.uniform();
        traffic.users = 64 + rng.uniformInt(512);
        traffic.seed = 100 + static_cast<std::uint64_t>(iter);

        // --- Randomized fault pressure -----------------------------
        EcssdOptions options = EcssdOptions::full();
        const bool flaky = rng.uniform() < 0.4;
        if (flaky) {
            options.ssd.uncorrectableReadRate =
                0.02 + 0.1 * rng.uniform();
            options.degradedPolicy =
                accel::DegradedReadPolicy::FailBatch;
        }

        // --- Randomized overload-control stack ---------------------
        ServerConfig config;
        config.brownout.enterDelay =
            sim::microseconds(100.0 + 400.0 * rng.uniform());
        config.brownout.exitDelay = config.brownout.enterDelay / 2;
        config.brownout.recoveryGuard =
            sim::microseconds(20.0 + 100.0 * rng.uniform());
        config.brownout.reducedCandidateFraction =
            0.25 + 0.5 * rng.uniform();
        // Shedding comes only from the ladder in this campaign, so
        // the Gold floor is a hard invariant (no admission target or
        // queue bound that could legally shed Gold).
        if (rng.uniform() < 0.5)
            config.batchMaxWait =
                sim::microseconds(50.0 + 200.0 * rng.uniform());
        if (flaky && rng.uniform() < 0.5) {
            config.retryJitterFraction = 0.5 * rng.uniform();
            config.retryJitterSeed =
                1 + static_cast<std::uint64_t>(iter);
        }

        InferenceServer server(model.weights(), spec, options,
                               &model.basis(), config);

        // --- Mid-spike redeploy ------------------------------------
        // Warm the recent-query ring first so validation has replay
        // material, then stage the swap; runTraffic's batch
        // boundaries step it through the spike.
        const bool redeploy = rng.uniform() < 0.5;
        if (redeploy) {
            for (int i = 0; i < 8; ++i)
                server.enqueue(queries[i % queries.size()]);
            server.processAll(5);
            ASSERT_EQ(server.beginRedeploy(next_version.weights(),
                                           spec),
                      Status::Ok);
        }
        const std::uint64_t already_issued =
            server.serverStats().acceptedRequests
            + server.serverStats().shedRequests;

        const std::uint64_t count = 800 + rng.uniformInt(1200);
        sim::TrafficEngine engine(traffic);
        const auto responses =
            server.runTraffic(engine, count, queries, 5);

        // --- Conservation: one terminal per arrival, ids unique ----
        ASSERT_EQ(responses.size(), count)
            << "iter " << iter << ": lost or duplicated terminals";
        std::set<InferenceServer::RequestId> ids;
        for (const auto &response : responses)
            ids.insert(response.id);
        ASSERT_EQ(ids.size(), count)
            << "iter " << iter << ": duplicate request ids";
        const ServerStats &stats = server.serverStats();
        EXPECT_EQ(stats.acceptedRequests + stats.shedRequests,
                  already_issued + count);

        // --- Gold floor --------------------------------------------
        for (const auto &response : responses) {
            if (response.cls != sim::RequestClass::Gold)
                continue;
            EXPECT_NE(response.status,
                      InferenceServer::Response::Status::Shed)
                << "iter " << iter << ": Gold shed by the ladder";
            // Every served Gold answer carries a top-k at screener
            // recall or better (no deadline in this campaign, so
            // nothing is dropped empty).
            EXPECT_FALSE(response.prediction.topCategories.empty())
                << "iter " << iter << ": empty Gold answer";
            EXPECT_LE(static_cast<int>(response.servedAt),
                      static_cast<int>(BrownoutLevel::ScreenerOnly));
        }

        // --- Steady state ------------------------------------------
        EXPECT_EQ(server.pending(), 0u);
        EXPECT_EQ(server.brownoutLevel(), BrownoutLevel::Full);
        if (redeploy) {
            EXPECT_FALSE(server.redeployActive())
                << "iter " << iter << ": swap wedged mid-flight";
            const RedeployStatus status = server.redeployStatus();
            EXPECT_TRUE(status.phase == RedeployPhase::Committed
                        || status.phase == RedeployPhase::RolledBack);
        }

        // --- Bounded drain -----------------------------------------
        // Recovery climbs one rung per guard dwell: from the bottom
        // of the ladder the drain tail is at most three guard
        // periods (plus one batch already accounted in deviceTime).
        sim::Tick last_completion = 0;
        for (const auto &response : responses)
            last_completion =
                std::max(last_completion, response.completedAt);
        EXPECT_LE(server.deviceTime(),
                  last_completion
                      + 3
                          * std::max<sim::Tick>(
                              config.brownout.recoveryGuard, 1));
    }
}

TEST(ChaosLoad, SustainedOverloadNeverSticksInShed)
{
    // The metastable failure mode: a ladder whose Shed rung lowers
    // the service rate can stay shedding forever after the spike
    // passes.  Here Shed only rejects new BestEffort arrivals while
    // admitted work is served at the cheapest rung, so a spike
    // followed by calm traffic must always recover to Full.
    const xclass::BenchmarkSpec spec = chaosSpec();
    const xclass::SyntheticModel model(spec, 1);
    std::vector<std::vector<float>> queries;
    {
        sim::Rng qrng(29);
        for (int q = 0; q < 16; ++q)
            queries.push_back(model.sampleQuery(qrng));
    }

    const int iters = fuzzIters(4);
    for (int iter = 0; iter < iters; ++iter) {
        // enterDelay must clear the no-queue batch sojourn (service
        // time alone) by a margin, or the controller reads healthy
        // light load as overload; only real queueing may trip it.
        ServerConfig config;
        config.brownout.enterDelay = sim::microseconds(4000.0);
        config.brownout.exitDelay = sim::microseconds(2000.0);
        config.brownout.recoveryGuard = sim::microseconds(500.0);
        InferenceServer server(model.weights(), spec,
                               EcssdOptions::full(), &model.basis(),
                               config);

        // Phase 1: a hard spike that drives the ladder to Shed.
        sim::TrafficConfig spike;
        spike.ratePerSecond = 80000.0;
        spike.seed = 900 + static_cast<std::uint64_t>(iter);
        sim::TrafficEngine spike_engine(spike);
        server.runTraffic(spike_engine, 1500, queries, 5);
        EXPECT_GT(server.serverStats().brownoutTransitions, 0u);
        EXPECT_EQ(server.brownoutLevel(), BrownoutLevel::Full);

        // Phase 2: calm traffic after the spike serves at Full with
        // no new sheds — no metastable sustained-shed state.
        sim::TrafficConfig calm;
        calm.ratePerSecond = 200.0;
        calm.seed = 1900 + static_cast<std::uint64_t>(iter);
        // Resume simulated time where the spike left the device: a
        // stream of arrivals dated before the server's clock would
        // look like an ancient backlog, not calm traffic.
        calm.startAt = server.deviceTime();
        sim::TrafficEngine calm_engine(calm);
        const std::uint64_t sheds_before =
            server.serverStats().shedRequests;
        const auto calm_responses =
            server.runTraffic(calm_engine, 200, queries, 5);
        EXPECT_EQ(server.serverStats().shedRequests, sheds_before);
        for (const auto &response : calm_responses)
            EXPECT_EQ(response.servedAt, BrownoutLevel::Full);
        EXPECT_EQ(server.brownoutLevel(), BrownoutLevel::Full);
    }
}
