/**
 * @file
 * Metamorphic tests of the screening algorithm: properties that must
 * hold across *related* inputs, independent of any golden values.
 *
 *  - Threshold ladder: lowering the screener threshold admits a
 *    superset of candidates, and top-k recall against the exact
 *    classifier is monotonically non-decreasing.
 *  - Permutation invariance: permuting the category rows permutes the
 *    candidate set and leaves the (mapped) top-k prediction intact.
 *
 * Both use FilterMode::Threshold — TopRatio cuts at a fixed count,
 * where INT4 score ties make the boundary permutation-sensitive.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/rng.hh"
#include "xclass/metrics.hh"
#include "xclass/screening.hh"
#include "xclass/workload.hh"

using namespace ecssd;
using namespace ecssd::xclass;

namespace
{

BenchmarkSpec
smallSpec()
{
    BenchmarkSpec spec =
        scaledDown(benchmarkByName("GNMT-E32K"), 1024);
    spec.hiddenDim = 256;
    spec.candidateRatio = 0.10;
    return spec;
}

/** Thresholds drawn from the score distribution, descending. */
std::vector<double>
thresholdLadder(const Screener &screener,
                const std::vector<float> &query)
{
    std::vector<double> scores =
        screener.scores(screener.prepareFeature(query));
    std::sort(scores.begin(), scores.end());
    const std::size_t n = scores.size();
    return {scores[n - n / 20],  // ~top 5%
            scores[n - n / 5],   // ~top 20%
            scores[n / 2],       // median
            scores.front() - 1.0}; // everything
}

/** Row-reversal permutation of the weight matrix (self-inverse). */
numeric::FloatMatrix
reverseRows(const numeric::FloatMatrix &weights)
{
    numeric::FloatMatrix out(weights.rows(), weights.cols());
    for (std::size_t r = 0; r < weights.rows(); ++r) {
        const auto src = weights.row(weights.rows() - 1 - r);
        std::copy(src.begin(), src.end(), out.row(r).begin());
    }
    return out;
}

/** Map indices through the row-reversal and restore sorted order. */
std::vector<std::uint64_t>
mapReversed(std::vector<std::uint64_t> indices, std::size_t rows)
{
    for (std::uint64_t &index : indices)
        index = rows - 1 - index;
    std::sort(indices.begin(), indices.end());
    return indices;
}

} // namespace

TEST(Metamorphic, LowerThresholdYieldsCandidateSuperset)
{
    const BenchmarkSpec spec = smallSpec();
    const SyntheticModel model(spec, 31);
    Screener screener(model.weights(), spec, 32);
    sim::Rng rng(33);

    for (int q = 0; q < 4; ++q) {
        const std::vector<float> query = model.sampleQuery(rng);
        std::vector<std::uint64_t> previous;
        for (const double threshold :
             thresholdLadder(screener, query)) {
            screener.setThreshold(threshold);
            const std::vector<std::uint64_t> candidates =
                screener.screen(query, FilterMode::Threshold);
            ASSERT_TRUE(std::is_sorted(candidates.begin(),
                                       candidates.end()));
            EXPECT_GE(candidates.size(), previous.size());
            EXPECT_TRUE(std::includes(candidates.begin(),
                                      candidates.end(),
                                      previous.begin(),
                                      previous.end()));
            previous = candidates;
        }
        // The bottom rung admits every category.
        EXPECT_EQ(previous.size(), spec.categories);
    }
}

TEST(Metamorphic, RecallIsMonotoneInThreshold)
{
    const BenchmarkSpec spec = smallSpec();
    const SyntheticModel model(spec, 34);
    ApproximateClassifier classifier(model.weights(), spec, 35);
    sim::Rng rng(36);

    // Truth is the all-candidates prediction on the *same* datapath,
    // so monotonicity is exact (per-row scores are identical across
    // rungs); exact() differs only by accumulator rounding and serves
    // as a soft cross-check.
    for (int q = 0; q < 3; ++q) {
        const std::vector<float> query = model.sampleQuery(rng);
        const std::vector<double> ladder =
            thresholdLadder(classifier.screener(), query);

        classifier.screener().setThreshold(ladder.back());
        const auto truth = classifier.predict(
            query, 5, FilterMode::Threshold,
            CandidateClassifier::Datapath::Fp32);
        ASSERT_EQ(truth.candidateCount, spec.categories);
        EXPECT_GE(recall(classifier.exact(query, 5).topCategories,
                         truth.topCategories),
                  0.8);

        double previous_recall = 0.0;
        for (const double threshold : ladder) {
            classifier.screener().setThreshold(threshold);
            const auto approx = classifier.predict(
                query, 5, FilterMode::Threshold,
                CandidateClassifier::Datapath::Fp32);
            const double r =
                recall(truth.topCategories, approx.topCategories);
            EXPECT_GE(r, previous_recall);
            previous_recall = r;
        }
        // With every category admitted the prediction *is* the truth.
        EXPECT_DOUBLE_EQ(previous_recall, 1.0);
    }
}

TEST(Metamorphic, PermutingRowsPermutesCandidates)
{
    const BenchmarkSpec spec = smallSpec();
    const SyntheticModel model(spec, 37);
    const numeric::FloatMatrix reversed = reverseRows(model.weights());

    // The Gaussian projection depends only on the seed, so both
    // screeners share a projector; row r of the reversed screener is
    // row L-1-r of the original.
    Screener original(model.weights(), spec, 38);
    Screener permuted(reversed, spec, 38);

    sim::Rng calibration_rng(39);
    std::vector<std::vector<float>> queries;
    for (int q = 0; q < 8; ++q)
        queries.push_back(model.sampleQuery(calibration_rng));
    original.calibrate(queries);
    permuted.setThreshold(original.threshold());

    sim::Rng rng(40);
    for (int q = 0; q < 4; ++q) {
        const std::vector<float> query = model.sampleQuery(rng);
        const std::vector<std::uint64_t> base =
            original.screen(query, FilterMode::Threshold);
        const std::vector<std::uint64_t> mapped = mapReversed(
            permuted.screen(query, FilterMode::Threshold),
            spec.categories);
        EXPECT_FALSE(base.empty());
        EXPECT_EQ(base, mapped);
    }
}

TEST(Metamorphic, PermutingRowsLeavesTopKInvariant)
{
    const BenchmarkSpec spec = smallSpec();
    const SyntheticModel model(spec, 41);
    const numeric::FloatMatrix reversed = reverseRows(model.weights());

    ApproximateClassifier original(model.weights(), spec, 42);
    ApproximateClassifier permuted(reversed, spec, 42);
    original.screener().setThreshold(0.0);
    permuted.screener().setThreshold(0.0);

    sim::Rng rng(43);
    for (int q = 0; q < 4; ++q) {
        const std::vector<float> query = model.sampleQuery(rng);
        const auto base = original.predict(
            query, 5, FilterMode::Threshold,
            CandidateClassifier::Datapath::Fp32);
        const auto mapped = permuted.predict(
            query, 5, FilterMode::Threshold,
            CandidateClassifier::Datapath::Fp32);
        // Same categories in the same rank order (scores are exact
        // FP32 dot products of identical row contents).
        ASSERT_EQ(base.topCategories.size(),
                  mapped.topCategories.size());
        for (std::size_t i = 0; i < base.topCategories.size(); ++i)
            EXPECT_EQ(base.topCategories[i],
                      spec.categories - 1 - mapped.topCategories[i]);
    }
}
