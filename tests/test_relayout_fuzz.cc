/**
 * @file
 * Drift-fuzz for the background re-layout task: randomized hot-set
 * drift (focus channel, group count, batch count, budgets) followed
 * by budgeted migration passes, asserting on every iteration that
 *
 *  1. recovered balance never falls below the drifted balance
 *     (a pass may be a no-op, never a regression),
 *  2. the page budget is honored exactly,
 *  3. serving survives the mutated placement: every batch after the
 *     migrations completes, none fail, and candidate-row accounting
 *     matches (no lost or double-served work),
 *  4. no migrated group is still served stale from the DRAM cache.
 *
 * Iteration counts scale with ECSSD_FUZZ_ITERS (the nightly
 * long-fuzz CI job sets it to soak far beyond the per-commit
 * budget).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "accel/candidate_source.hh"
#include "accel/row_cache.hh"
#include "ecssd/system.hh"
#include "sim/rng.hh"

using namespace ecssd;

namespace
{

/** Iteration count scaled by the ECSSD_FUZZ_ITERS multiplier. */
int
fuzzIters(int base)
{
    const char *env = std::getenv("ECSSD_FUZZ_ITERS");
    if (env == nullptr)
        return base;
    const long mult = std::strtol(env, nullptr, 10);
    return mult > 1 ? base * static_cast<int>(mult) : base;
}

xclass::BenchmarkSpec
fuzzSpec()
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 2048);
    spec.hiddenDim = 64;
    return spec;
}

class FixedSource : public accel::CandidateSource
{
  public:
    FixedSource(std::uint64_t rows, std::vector<std::uint64_t> batch)
        : rows_(rows), batch_(std::move(batch))
    {
    }

    std::uint64_t rows() const override { return rows_; }
    std::vector<std::uint64_t> nextBatch() override
    {
        return batch_;
    }

  private:
    std::uint64_t rows_;
    std::vector<std::uint64_t> batch_;
};

} // namespace

TEST(RelayoutFuzz, RandomDriftNeverRegressesBalanceOrLosesWork)
{
    const xclass::BenchmarkSpec spec = fuzzSpec();
    const int iters = fuzzIters(8);
    sim::Rng rng(0xd21f7);

    for (int iter = 0; iter < iters; ++iter) {
        EcssdOptions options;
        options.ssd = ssdsim::smallTestConfig();
        options.ssd.channels = 8;
        options.seed = 1 + iter;
        options.cache.capacityBytes = 1ULL << 20;
        options.relayout.enabled = true;
        options.relayout.divergenceThreshold =
            rng.uniform(0.05, 0.5);
        options.relayout.pageBudget = static_cast<unsigned>(
            rng.uniformInt(8, 4096));
        options.relayout.ioBudgetFraction = rng.uniform(0.1, 1.0);
        EcssdSystem system(spec, options);

        // Drift: concentrate traffic on a random channel's groups.
        const unsigned focus = static_cast<unsigned>(
            rng.uniformInt(0, options.ssd.channels - 1));
        const std::size_t wanted =
            static_cast<std::size_t>(rng.uniformInt(4, 48));
        const std::uint64_t rows_per_page =
            std::max<std::uint64_t>(
                1, options.ssd.pageBytes / spec.rowBytes());
        std::vector<std::uint64_t> batch;
        for (std::uint64_t g = 0;
             g < system.strategy().rows()
             && batch.size() < wanted;
             ++g)
            if (system.strategy().channelOf(g) == focus)
                batch.push_back(g * rows_per_page);
        ASSERT_FALSE(batch.empty());

        FixedSource drift(spec.categories, batch);
        const unsigned drift_batches = static_cast<unsigned>(
            rng.uniformInt(1, 4));
        const accel::RunResult drifted =
            system.runInferenceWith(drift, drift_batches);

        const sim::Tick end =
            system.relayoutStep(drifted.totalTime);
        const RelayoutStats &stats = system.relayoutStats();

        // (1) A pass never leaves the observed balance worse than
        // it found it.
        EXPECT_GE(stats.recoveredBalance,
                  1.0 - stats.lastDivergence - 1e-12)
            << "iter " << iter;
        // (2) The page budget is a hard cap.
        EXPECT_LE(stats.pagesMoved, options.relayout.pageBudget)
            << "iter " << iter;
        EXPECT_GE(end, drifted.totalTime);

        // (4) Migrated groups may not be stale cache hits.
        if (accel::RowCache *cache = system.pipeline().rowCache()) {
            for (const std::uint64_t row : batch) {
                const std::uint64_t group = row / rows_per_page;
                if (system.strategy().channelOf(group) != focus) {
                    EXPECT_FALSE(cache->lookup(group, 1))
                        << "iter " << iter << " group " << group;
                }
            }
        }

        // (3) Serving on the mutated placement: every batch
        // completes against the re-homed pages, none fail, and each
        // batch saw exactly the candidate set it asked for.
        FixedSource verify(spec.categories, batch);
        const accel::RunResult after =
            system.runInferenceWith(verify, 2);
        EXPECT_EQ(after.batches.size(), 2u) << "iter " << iter;
        EXPECT_EQ(after.failedBatches, 0u) << "iter " << iter;
        for (const accel::BatchTiming &timing : after.batches)
            EXPECT_EQ(timing.candidateRows, batch.size())
                << "iter " << iter;
    }
}

TEST(RelayoutFuzz, RepeatedPassesConverge)
{
    // After enough passes over stationary drifted traffic the
    // divergence settles below the threshold and migrations stop:
    // the task must not oscillate rows back and forth forever.
    const xclass::BenchmarkSpec spec = fuzzSpec();
    EcssdOptions options;
    options.ssd = ssdsim::smallTestConfig();
    options.ssd.channels = 8;
    options.cache.capacityBytes = 1ULL << 20;
    options.relayout.enabled = true;
    options.relayout.divergenceThreshold = 0.2;
    options.relayout.pageBudget = 64;
    EcssdSystem system(spec, options);

    const std::uint64_t rows_per_page = std::max<std::uint64_t>(
        1, options.ssd.pageBytes / spec.rowBytes());
    std::vector<std::uint64_t> batch;
    for (std::uint64_t g = 0;
         g < system.strategy().rows() && batch.size() < 32; ++g)
        if (system.strategy().channelOf(g) == 0)
            batch.push_back(g * rows_per_page);

    FixedSource drift(spec.categories, batch);
    sim::Tick now = system.runInferenceWith(drift, 4).totalTime;

    std::uint64_t migrated_last = 0;
    bool settled = false;
    for (int pass = 0; pass < 16 && !settled; ++pass) {
        now = system.relayoutStep(now);
        const RelayoutStats &stats = system.relayoutStats();
        settled = stats.rowsMigrated == migrated_last
            && stats.lastDivergence
                <= options.relayout.divergenceThreshold;
        migrated_last = stats.rowsMigrated;
    }
    EXPECT_TRUE(settled)
        << "re-layout still migrating after 16 passes";
}
