/**
 * @file
 * INT4 quantization tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numeric/int4.hh"
#include "sim/rng.hh"

using namespace ecssd::numeric;

TEST(Int4Vector, QuantizesExtremesToRangeEnds)
{
    const std::vector<float> values{7.0f, -7.0f, 0.0f};
    const Int4Vector q = quantizeVector(values);
    EXPECT_EQ(unpackInt4(q, 0), 7);
    EXPECT_EQ(unpackInt4(q, 1), -7);
    EXPECT_EQ(unpackInt4(q, 2), 0);
    EXPECT_FLOAT_EQ(q.scale, 1.0f);
}

TEST(Int4Vector, AllValuesInRange)
{
    ecssd::sim::Rng rng(1);
    std::vector<float> values(257);
    for (float &v : values)
        v = static_cast<float>(rng.gaussian(0.0, 10.0));
    const Int4Vector q = quantizeVector(values);
    for (std::size_t i = 0; i < values.size(); ++i) {
        EXPECT_GE(unpackInt4(q, i), int4Min);
        EXPECT_LE(unpackInt4(q, i), int4Max);
    }
}

TEST(Int4Vector, OddLengthPacksCorrectly)
{
    const std::vector<float> values{1.0f, -2.0f, 3.0f};
    const Int4Vector q = quantizeVector(values);
    EXPECT_EQ(q.size, 3u);
    EXPECT_EQ(q.packed.size(), 2u);
}

TEST(Int4Vector, AllZeroVectorHasZeroScale)
{
    const std::vector<float> values(8, 0.0f);
    const Int4Vector q = quantizeVector(values);
    EXPECT_EQ(q.scale, 0.0f);
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(unpackInt4(q, i), 0);
}

TEST(Int4Vector, DequantizeBoundsError)
{
    ecssd::sim::Rng rng(2);
    std::vector<float> values(128);
    for (float &v : values)
        v = static_cast<float>(rng.uniform(-5.0, 5.0));
    const Int4Vector q = quantizeVector(values);
    const std::vector<float> back = dequantize(q);
    for (std::size_t i = 0; i < values.size(); ++i)
        EXPECT_NEAR(back[i], values[i], q.scale / 2.0f + 1e-6f);
}

TEST(Int4Matrix, ValuesMatchPerRowQuantization)
{
    FloatMatrix m(3, 4);
    // Row scales differ: row 0 max 7, row 1 max 14, row 2 max 3.5.
    const float data[3][4] = {{7.0f, -7.0f, 3.5f, 0.0f},
                              {14.0f, 7.0f, -14.0f, 2.0f},
                              {3.5f, -3.5f, 1.75f, 0.5f}};
    for (std::size_t r = 0; r < 3; ++r)
        for (std::size_t c = 0; c < 4; ++c)
            m.at(r, c) = data[r][c];

    const Int4Matrix q(m);
    EXPECT_EQ(q.rows(), 3u);
    EXPECT_EQ(q.cols(), 4u);
    EXPECT_EQ(q.valueAt(0, 0), 7);
    EXPECT_EQ(q.valueAt(0, 1), -7);
    EXPECT_EQ(q.valueAt(1, 0), 7);
    EXPECT_EQ(q.valueAt(1, 2), -7);
    EXPECT_EQ(q.valueAt(2, 1), -7);
    EXPECT_FLOAT_EQ(q.rowScale(0), 1.0f);
    EXPECT_FLOAT_EQ(q.rowScale(1), 2.0f);
    EXPECT_FLOAT_EQ(q.rowScale(2), 0.5f);
}

TEST(Int4Matrix, DotRowApproximatesRealDot)
{
    ecssd::sim::Rng rng(3);
    FloatMatrix m(8, 64);
    for (std::size_t r = 0; r < 8; ++r)
        for (std::size_t c = 0; c < 64; ++c)
            m.at(r, c) = static_cast<float>(rng.gaussian(0.0, 1.0));
    std::vector<float> feature(64);
    for (float &v : feature)
        v = static_cast<float>(rng.gaussian(0.0, 1.0));

    const Int4Matrix q(m);
    const Int4Vector qf = quantizeVector(feature);
    for (std::size_t r = 0; r < 8; ++r) {
        double exact = 0.0;
        for (std::size_t c = 0; c < 64; ++c)
            exact += static_cast<double>(m.at(r, c)) * feature[c];
        // INT4 is coarse; correlation matters, not precision.  The
        // per-element quantization error is ~scale/2 on each side,
        // so the 64-element dot error std is a few units.
        EXPECT_NEAR(q.dotRow(r, qf), exact, 8.0)
            << "row " << r;
    }
}

TEST(Int4Matrix, RawDotRowMatchesManualSum)
{
    FloatMatrix m(1, 4);
    m.at(0, 0) = 7.0f;
    m.at(0, 1) = -7.0f;
    m.at(0, 2) = 3.5f;
    m.at(0, 3) = 0.0f;
    const Int4Matrix q(m);
    const std::vector<std::int8_t> feature{1, 2, 3, 4};
    // quantized row: [7, -7, 4 (3.5/0.5 scale... scale=0.5? no:
    // scale = 7/7 = 1 -> 3.5 rounds to 4), 0]
    EXPECT_EQ(q.rawDotRow(0, feature), 7 * 1 + (-7) * 2 + 4 * 3 + 0);
}

TEST(Int4Matrix, RowAbsSumTracksRowMass)
{
    FloatMatrix m(2, 4);
    for (std::size_t c = 0; c < 4; ++c) {
        m.at(0, c) = 1.0f;  // uniform small row
        m.at(1, c) = (c == 0) ? 1.0f : 0.0f; // concentrated row
    }
    const Int4Matrix q(m);
    EXPECT_EQ(q.rowAbsSum(0), 4 * 7);
    EXPECT_EQ(q.rowAbsSum(1), 7);
}

TEST(Int4Matrix, StorageIsPackedNibbles)
{
    FloatMatrix m(10, 64);
    const Int4Matrix q(m);
    // 64 cols -> 32 bytes per row, plus one float scale per row.
    EXPECT_EQ(q.storageBytes(), 10u * 32u + 10u * 4u);
}

/** Round-trip property over random shapes. */
class Int4ShapeSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(Int4ShapeSweep, QuantizationErrorWithinHalfStep)
{
    const int cols = GetParam();
    ecssd::sim::Rng rng(static_cast<std::uint64_t>(cols));
    FloatMatrix m(4, static_cast<std::size_t>(cols));
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            m.at(r, c) =
                static_cast<float>(rng.uniform(-2.0, 2.0));
    const Int4Matrix q(m);
    for (std::size_t r = 0; r < 4; ++r) {
        const float scale = q.rowScale(r);
        for (std::size_t c = 0; c < m.cols(); ++c) {
            const float back =
                static_cast<float>(q.valueAt(r, c)) * scale;
            EXPECT_NEAR(back, m.at(r, c), scale / 2.0f + 1e-6f);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, Int4ShapeSweep,
                         ::testing::Values(1, 2, 3, 16, 63, 128,
                                           255));
