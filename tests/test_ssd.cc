/**
 * @file
 * SSD device front-end tests: host commands, link timing, DRAM and
 * buffer components.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "ssdsim/data_buffer.hh"
#include "ssdsim/dram.hh"
#include "ssdsim/ssd.hh"

using namespace ecssd::sim;
using namespace ecssd::ssdsim;

TEST(DramModel, StreamAccountsLatencyAndBandwidth)
{
    SsdConfig config;
    DramModel dram(config);
    const Tick done = dram.stream(12800, 0); // 12.8 KB at 12.8 GB/s
    EXPECT_EQ(done, nanoseconds(config.dramAccessLatencyNs)
                        + microseconds(1));
    EXPECT_EQ(dram.bytesMoved(), 12800u);
    EXPECT_EQ(dram.accesses(), 1u);
}

TEST(DramModel, BackToBackStreamsSerialize)
{
    SsdConfig config;
    DramModel dram(config);
    const Tick first = dram.stream(1 << 20, 0);
    const Tick second = dram.stream(1 << 20, 0);
    EXPECT_GT(second, first);
    EXPECT_EQ(dram.busyTime(), second);
}

TEST(DramModel, ResetClearsState)
{
    SsdConfig config;
    DramModel dram(config);
    dram.stream(4096, 0);
    dram.reset();
    EXPECT_EQ(dram.bytesMoved(), 0u);
    EXPECT_EQ(dram.busyTime(), 0u);
    EXPECT_EQ(dram.accesses(), 0u);
}

TEST(DataBuffer, PingPongDiscipline)
{
    DataBuffer buffer(1024);
    EXPECT_EQ(buffer.halfCapacity(), 512u);
    EXPECT_TRUE(buffer.reserve(400));
    EXPECT_FALSE(buffer.reserve(200)); // would exceed the half
    EXPECT_TRUE(buffer.reserve(100));
    buffer.flip();
    EXPECT_EQ(buffer.drainOccupancy(), 500u);
    EXPECT_EQ(buffer.fillOccupancy(), 0u);
    buffer.release(500);
    buffer.flip();
    EXPECT_EQ(buffer.flips(), 2u);
}

TEST(DataBuffer, FlipWithUndrainedDataPanics)
{
    DataBuffer buffer(1024);
    buffer.reserve(100);
    buffer.flip();
    buffer.reserve(50);
    EXPECT_THROW(buffer.flip(), PanicError);
}

TEST(DataBuffer, OverReleasePanics)
{
    DataBuffer buffer(1024);
    buffer.reserve(100);
    buffer.flip();
    EXPECT_THROW(buffer.release(200), PanicError);
}

TEST(DataBuffer, PeakOccupancyTracksBothHalves)
{
    DataBuffer buffer(1024);
    buffer.reserve(512);
    buffer.flip();
    buffer.reserve(512);
    EXPECT_EQ(buffer.peakOccupancy(), 1024u);
}

TEST(SsdDevice, ConfigCapacityMatchesTable2)
{
    SsdConfig config; // paper defaults
    EXPECT_EQ(config.channels, 8u);
    EXPECT_EQ(config.pageBytes, 4096u);
    EXPECT_EQ(config.capacityBytes(), 4ULL << 40); // 4 TiB
    EXPECT_EQ(config.dramBytes, 16ULL << 30);
    EXPECT_EQ(config.dataBufferBytes, 4ULL << 20);
    EXPECT_DOUBLE_EQ(config.internalBandwidthGbps(), 8.0);
}

TEST(SsdDevice, HostWriteCompletesThroughEventQueue)
{
    EventQueue queue;
    SsdDevice ssd(smallTestConfig(), queue);
    Tick completed = 0;
    ssd.hostWrite(0, [&](Tick t) { completed = t; });
    EXPECT_EQ(completed, 0u); // not yet fired
    queue.run();
    EXPECT_GT(completed, 0u);
    EXPECT_EQ(ssd.stats().hostWriteCommands, 1u);
    EXPECT_EQ(ssd.stats().hostBytesIn, 4096u);
}

TEST(SsdDevice, HostReadAfterWriteReturnsLater)
{
    EventQueue queue;
    SsdDevice ssd(smallTestConfig(), queue);
    Tick write_done = 0;
    ssd.hostWrite(1, [&](Tick t) { write_done = t; });
    queue.run();
    Tick read_done = 0;
    ssd.hostRead(1, [&](Tick t) { read_done = t; });
    queue.run();
    EXPECT_GT(read_done, write_done);
    EXPECT_EQ(ssd.stats().hostReadCommands, 1u);
}

TEST(SsdDevice, HostTransferSerializesOnLink)
{
    EventQueue queue;
    const SsdConfig config = smallTestConfig();
    SsdDevice ssd(config, queue);
    const Tick first = ssd.hostTransfer(1 << 20, 0);
    const Tick second = ssd.hostTransfer(1 << 20, 0);
    EXPECT_GT(second, first);
    const Tick expected_each =
        microseconds(config.hostLinkLatencyUs)
        + transferTime(1 << 20, config.hostLinkGbps);
    EXPECT_EQ(first, expected_each);
    EXPECT_EQ(second, 2 * expected_each);
}

TEST(SsdDevice, ResetTimelinesKeepsMapping)
{
    EventQueue queue;
    SsdDevice ssd(smallTestConfig(), queue);
    ssd.hostWrite(2, [](Tick) {});
    queue.run();
    ssd.resetTimelines();
    EXPECT_EQ(ssd.stats().hostWriteCommands, 0u);
    // Mapping survives a timeline reset: the read must succeed.
    Tick read_done = 0;
    ssd.hostRead(2, [&](Tick t) { read_done = t; });
    queue.run();
    EXPECT_GT(read_done, 0u);
}

TEST(SsdDevice, WriteReadManyPagesKeepsOrder)
{
    EventQueue queue;
    SsdDevice ssd(smallTestConfig(), queue);
    int completions = 0;
    for (LogicalPage lpa = 0; lpa < 32; ++lpa)
        ssd.hostWrite(lpa, [&](Tick) { ++completions; });
    queue.run();
    EXPECT_EQ(completions, 32);
    for (LogicalPage lpa = 0; lpa < 32; ++lpa)
        ssd.hostRead(lpa, [&](Tick) { ++completions; });
    queue.run();
    EXPECT_EQ(completions, 64);
}
