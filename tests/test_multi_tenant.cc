/**
 * @file
 * MultiTenantServer tests: lane bring-up and quota refusal, the
 * shared device clock, deterministic mixed-traffic serving, SLO
 * containment (the overloaded tenant sheds and browns out its own
 * traffic while a healthy neighbour keeps its latency), and
 * namespaced tenant metrics.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "ecssd/multi_tenant.hh"
#include "sim/rng.hh"
#include "sim/traffic.hh"
#include "xclass/metrics.hh"

using namespace ecssd;

namespace
{

constexpr std::uint64_t kMiB = 1ULL << 20;

struct MtFixture
{
    MtFixture()
        : spec(makeSpec()), model(spec, 1)
    {
        options.ssd = ssdsim::smallTestConfig();
        options.ssd.channels = 8;
        options.ssd.dramBytes = 64 * kMiB;
    }

    static xclass::BenchmarkSpec
    makeSpec()
    {
        xclass::BenchmarkSpec spec = xclass::scaledDown(
            xclass::benchmarkByName("GNMT-E32K"), 1024);
        spec.hiddenDim = 128;
        spec.batchSize = 4;
        return spec;
    }

    static TenantConfig
    tenant(const std::string &name, double p99_target_ms = 0.0,
           std::uint64_t quota_bytes = 0)
    {
        TenantConfig config;
        config.name = name;
        config.dramBytes = 8 * kMiB;
        config.cacheQuotaBytes = quota_bytes;
        config.p99TargetMs = p99_target_ms;
        return config;
    }

    std::vector<std::vector<float>>
    queryPool(int count)
    {
        std::vector<std::vector<float>> queries;
        sim::Rng rng(17);
        for (int q = 0; q < count; ++q)
            queries.push_back(model.sampleQuery(rng));
        return queries;
    }

    EcssdOptions options;
    xclass::BenchmarkSpec spec;
    xclass::SyntheticModel model;
};

sim::TrafficConfig
poisson(double rate, std::uint64_t seed)
{
    sim::TrafficConfig traffic;
    traffic.ratePerSecond = rate;
    traffic.seed = seed;
    return traffic;
}

} // namespace

TEST(MultiTenantServer, AdmissionMirrorsTheRegistryLedger)
{
    MtFixture f;
    f.options.ssd.dramBytes = 16 * kMiB;
    MultiTenantServer mt(f.options);

    Status status = Status::Ok;
    TenantHandle a = mt.addTenant(MtFixture::tenant("a"),
                                  f.model.weights(), f.spec,
                                  ServerConfig{}, &f.model.basis(),
                                  &status);
    ASSERT_EQ(status, Status::Ok);
    ASSERT_TRUE(a.valid());
    ASSERT_NE(mt.server(a), nullptr);
    EXPECT_EQ(mt.registry().size(), 1u);
    EXPECT_EQ(mt.registry().entry(a)->screenerBytes,
              f.spec.int4WeightBytes());

    // Over-subscribing the device DRAM refuses the lane.
    TenantConfig big = MtFixture::tenant("big");
    big.dramBytes = 12 * kMiB;
    TenantHandle b =
        mt.addTenant(big, f.model.weights(), f.spec, ServerConfig{},
                     &f.model.basis(), &status);
    EXPECT_EQ(status, Status::TenantQuotaExceeded);
    EXPECT_FALSE(b.valid());
    EXPECT_EQ(mt.server(b), nullptr);
    EXPECT_EQ(mt.registry().size(), 1u);

    // A partition too small for screener + quota refuses before
    // admission: the ledger stays untouched.
    TenantConfig tight = MtFixture::tenant("tight");
    tight.dramBytes = 40 * 1024;
    tight.cacheQuotaBytes = 32 * 1024;
    ASSERT_GT(f.spec.int4WeightBytes() + tight.cacheQuotaBytes,
              tight.dramBytes);
    TenantHandle t =
        mt.addTenant(tight, f.model.weights(), f.spec, ServerConfig{},
                     &f.model.basis(), &status);
    EXPECT_EQ(status, Status::TenantQuotaExceeded);
    EXPECT_FALSE(t.valid());
    EXPECT_EQ(mt.registry().size(), 1u);
}

TEST(MultiTenantServer, ServesAMixExactlyOncePerArrival)
{
    MtFixture f;
    MultiTenantServer mt(f.options);
    TenantHandle a =
        mt.addTenant(MtFixture::tenant("a"), f.model.weights(),
                     f.spec, ServerConfig{}, &f.model.basis());
    TenantHandle b =
        mt.addTenant(MtFixture::tenant("b"), f.model.weights(),
                     f.spec, ServerConfig{}, &f.model.basis());
    const auto queries = f.queryPool(16);

    std::vector<MultiTenantServer::TenantTraffic> mix = {
        {a, poisson(8000.0, 3), 120},
        {b, poisson(8000.0, 4), 80},
    };
    const auto outcomes = mt.run(mix, queries, 5);
    ASSERT_EQ(outcomes.size(), 2u);
    EXPECT_EQ(outcomes[0].name, "a");
    EXPECT_EQ(outcomes[1].name, "b");
    EXPECT_EQ(outcomes[0].responses.size(), 120u);
    EXPECT_EQ(outcomes[1].responses.size(), 80u);
    for (const auto &outcome : outcomes) {
        std::set<InferenceServer::RequestId> ids;
        for (const auto &response : outcome.responses) {
            ids.insert(response.id);
            EXPECT_EQ(response.status, Status::Ok);
        }
        EXPECT_EQ(ids.size(), outcome.responses.size());
    }

    // Terminal steady state on both lanes, one shared timeline.
    EXPECT_EQ(mt.server(a)->pending(), 0u);
    EXPECT_EQ(mt.server(b)->pending(), 0u);
    EXPECT_GT(mt.deviceTime(), 0u);
    EXPECT_EQ(mt.deviceTime(),
              std::max(mt.server(a)->deviceTime(),
                       mt.server(b)->deviceTime()));
}

TEST(MultiTenantServer, MixIsDeterministicAcrossRuns)
{
    MtFixture f;
    const auto queries = f.queryPool(16);
    auto serve = [&]() {
        MultiTenantServer mt(f.options);
        TenantHandle a =
            mt.addTenant(MtFixture::tenant("a"), f.model.weights(),
                         f.spec, ServerConfig{}, &f.model.basis());
        TenantHandle b =
            mt.addTenant(MtFixture::tenant("b"), f.model.weights(),
                         f.spec, ServerConfig{}, &f.model.basis());
        std::vector<MultiTenantServer::TenantTraffic> mix = {
            {a, poisson(12000.0, 7), 96},
            {b, poisson(9000.0, 8), 64},
        };
        return std::make_pair(mt.run(mix, queries, 5),
                              mt.deviceTime());
    };
    const auto first = serve();
    const auto second = serve();
    EXPECT_EQ(first.second, second.second);
    ASSERT_EQ(first.first.size(), second.first.size());
    for (std::size_t t = 0; t < first.first.size(); ++t) {
        const auto &lhs = first.first[t].responses;
        const auto &rhs = second.first[t].responses;
        ASSERT_EQ(lhs.size(), rhs.size());
        for (std::size_t r = 0; r < lhs.size(); ++r) {
            EXPECT_EQ(lhs[r].id, rhs[r].id);
            EXPECT_EQ(lhs[r].status, rhs[r].status);
            EXPECT_EQ(lhs[r].completedAt, rhs[r].completedAt);
        }
    }
}

TEST(MultiTenantServer, RunRejectsUnknownAndDuplicateMixEntries)
{
    MtFixture f;
    MultiTenantServer mt(f.options);
    TenantHandle a =
        mt.addTenant(MtFixture::tenant("a"), f.model.weights(),
                     f.spec, ServerConfig{}, &f.model.basis());
    const auto queries = f.queryPool(4);

    std::vector<MultiTenantServer::TenantTraffic> unknown = {
        {TenantHandle{}, poisson(1000.0, 1), 8},
    };
    EXPECT_THROW(mt.run(unknown, queries, 5), sim::FatalError);

    std::vector<MultiTenantServer::TenantTraffic> duplicate = {
        {a, poisson(1000.0, 1), 8},
        {a, poisson(1000.0, 2), 8},
    };
    EXPECT_THROW(mt.run(duplicate, queries, 5), sim::FatalError);
}

TEST(MultiTenantServer, OverloadedTenantDegradesItselfFirst)
{
    MtFixture f;
    const auto queries = f.queryPool(16);
    const sim::TrafficConfig calm = poisson(2000.0, 11);
    const std::uint64_t calm_count = 200;

    // Solo baseline: tenant A alone on the device.
    double solo_p99 = 0.0;
    {
        MultiTenantServer mt(f.options);
        TenantHandle a = mt.addTenant(
            MtFixture::tenant("a", /*p99_target_ms=*/5.0),
            f.model.weights(), f.spec, ServerConfig{},
            &f.model.basis());
        mt.run({{a, calm, calm_count}}, queries, 5);
        solo_p99 = mt.server(a)->latencyPercentiles().p99();
        EXPECT_EQ(mt.server(a)->serverStats().shedRequests, 0u);
    }

    // Shared device: tenant B floods far past capacity, under a
    // tight SLO.
    MultiTenantServer mt(f.options);
    TenantHandle a = mt.addTenant(
        MtFixture::tenant("a", /*p99_target_ms=*/5.0),
        f.model.weights(), f.spec, ServerConfig{}, &f.model.basis());
    TenantHandle b = mt.addTenant(
        MtFixture::tenant("b", /*p99_target_ms=*/1.0),
        f.model.weights(), f.spec, ServerConfig{}, &f.model.basis());
    std::vector<MultiTenantServer::TenantTraffic> mix = {
        {a, calm, calm_count},
        {b, poisson(50000.0, 12), 2000},
    };
    mt.run(mix, queries, 5);

    // The overload lands on B: its own admission sheds and its own
    // ladder browns out.
    const ServerStats &stats_b = mt.server(b)->serverStats();
    EXPECT_GT(stats_b.shedRequests, 0u);
    EXPECT_GT(stats_b.brownoutTransitions, 0u);

    // A keeps its latency: p99 within 15% of the solo run, nothing
    // shed, SLO met.
    const double shared_p99 =
        mt.server(a)->latencyPercentiles().p99();
    EXPECT_EQ(mt.server(a)->serverStats().shedRequests, 0u);
    EXPECT_LE(shared_p99, solo_p99 * 1.15);
    EXPECT_LE(shared_p99, 5.0);
}

TEST(MultiTenantServer, SloDerivesTheLaneOverloadPolicy)
{
    MtFixture f;
    MultiTenantServer mt(f.options);
    TenantConfig config = MtFixture::tenant("slo", 2.0);
    config.requestDeadline = sim::milliseconds(8.0);
    TenantHandle t =
        mt.addTenant(config, f.model.weights(), f.spec,
                     ServerConfig{}, &f.model.basis());
    const ServerConfig &derived = mt.server(t)->serverConfig();
    EXPECT_EQ(derived.requestDeadline, sim::milliseconds(8.0));
    EXPECT_EQ(derived.admissionTargetDelay, sim::milliseconds(2.0));
    const sim::Tick target = sim::milliseconds(2.0);
    EXPECT_EQ(derived.brownout.enterDelay, target * 4 / 5);
    EXPECT_EQ(derived.brownout.exitDelay, target * 2 / 5);
    EXPECT_EQ(derived.brownout.recoveryGuard, target / 5);

    // Explicit knobs win over the SLO derivation.
    ServerConfig explicit_config;
    explicit_config.admissionTargetDelay = sim::milliseconds(9.0);
    TenantHandle u = mt.addTenant(MtFixture::tenant("explicit", 2.0),
                                  f.model.weights(), f.spec,
                                  explicit_config, &f.model.basis());
    EXPECT_EQ(mt.server(u)->serverConfig().admissionTargetDelay,
              sim::milliseconds(9.0));
}

TEST(MultiTenantServer, MetricsAreNamespacedPerTenant)
{
    MtFixture f;
    MultiTenantServer mt(f.options);

    // No tenants admitted: publishing stays silent.
    {
        sim::MetricsRegistry metrics;
        mt.publishMetrics(metrics);
        EXPECT_EQ(metrics.size(), 0u);
    }

    sim::MetricsRegistry live;
    mt.attachObservability(&live, nullptr);
    TenantHandle a = mt.addTenant(
        MtFixture::tenant("a", 5.0, /*quota_bytes=*/16 * 1024),
        f.model.weights(), f.spec, ServerConfig{}, &f.model.basis());
    TenantHandle b =
        mt.addTenant(MtFixture::tenant("b"), f.model.weights(),
                     f.spec, ServerConfig{}, &f.model.basis());
    const auto queries = f.queryPool(8);
    mt.run({{a, poisson(6000.0, 5), 64}, {b, poisson(6000.0, 6), 64}},
           queries, 5);

    // Live recording landed under each tenant's namespace.
    EXPECT_TRUE(live.has("tenant.a.server.accepted_requests"));
    EXPECT_TRUE(live.has("tenant.b.server.accepted_requests"));
    EXPECT_GT(
        live.counter("tenant.a.server.accepted_requests").value(),
        0.0);

    // The snapshot adds the ledger and the per-tenant SLO view.
    sim::MetricsRegistry snapshot;
    mt.publishMetrics(snapshot);
    EXPECT_DOUBLE_EQ(snapshot.gauge("tenant.count").value(), 2.0);
    EXPECT_TRUE(snapshot.has("tenant.a.p99_ms"));
    EXPECT_TRUE(snapshot.has("tenant.a.server.queue_depth_hwm"));
    EXPECT_DOUBLE_EQ(snapshot.gauge("tenant.a.p99_target_ms").value(),
                     5.0);
    EXPECT_TRUE(snapshot.has("tenant.device_time_ms"));
}

TEST(MultiTenantServer, SpansArePrefixedPerTenant)
{
    MtFixture f;
    MultiTenantServer mt(f.options);
    sim::SpanTracer tracer;
    mt.attachObservability(nullptr, &tracer);
    TenantHandle a =
        mt.addTenant(MtFixture::tenant("a"), f.model.weights(),
                     f.spec, ServerConfig{}, &f.model.basis());
    const auto queries = f.queryPool(8);
    mt.run({{a, poisson(6000.0, 5), 16}}, queries, 5);

    ASSERT_FALSE(tracer.records().empty());
    bool sawTenantSpan = false;
    for (const auto &span : tracer.records()) {
        if (span.name.rfind("tenant.a.", 0) == 0)
            sawTenantSpan = true;
    }
    EXPECT_TRUE(sawTenantSpan);
    // The prefix is scoped to serving quanta: it never leaks into a
    // fresh tracer use afterwards.
    EXPECT_TRUE(tracer.namePrefix().empty());
}
