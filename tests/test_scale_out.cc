/**
 * @file
 * Scale-out system tests (Section 7.1): partition sizing, parallel
 * execution, and the DRAM-fit guard.
 */

#include <gtest/gtest.h>

#include "ecssd/scale_out.hh"

using namespace ecssd;

namespace
{

xclass::BenchmarkSpec
spec(std::uint64_t categories)
{
    return xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), categories);
}

} // namespace

TEST(ScaleOut, DevicesNeededMatchesPaperArithmetic)
{
    // 500M categories at K=256: 64 GB INT4 over 16 GB devices at
    // the 80% fill target -> 5 ECSSDs (Section 7.1).
    xclass::BenchmarkSpec huge =
        xclass::benchmarkByName("XMLCNN-S100M");
    huge.categories = 500000000;
    EXPECT_EQ(ScaleOutEcssd::devicesNeeded(huge, 16ULL << 30), 5u);
    // 100M fits one device.
    EXPECT_EQ(ScaleOutEcssd::devicesNeeded(
                  xclass::benchmarkByName("XMLCNN-S100M"),
                  16ULL << 30),
              1u);
}

TEST(ScaleOut, ShardSpecSplitsRows)
{
    const ScaleOutEcssd fleet(spec(65536), 4);
    EXPECT_EQ(fleet.devices(), 4u);
    EXPECT_EQ(fleet.shardSpec().categories, 16384u);
}

TEST(ScaleOut, SingleDeviceDegenerates)
{
    const xclass::BenchmarkSpec s = spec(32768);
    ScaleOutEcssd fleet(s, 1);
    EcssdSystem single(s, EcssdOptions::full());
    const ScaleOutResult fleet_run = fleet.runInference(1);
    const accel::RunResult single_run = single.runInference(1);
    // Same work modulo the merge overhead.
    EXPECT_NEAR(
        static_cast<double>(fleet_run.totalTime),
        static_cast<double>(single_run.totalTime),
        static_cast<double>(single_run.totalTime) * 0.05);
}

TEST(ScaleOut, PartitioningCutsLatency)
{
    const xclass::BenchmarkSpec s = spec(65536);
    ScaleOutEcssd one(s, 1);
    ScaleOutEcssd four(s, 4);
    const ScaleOutResult slow = one.runInference(1);
    const ScaleOutResult fast = four.runInference(1);
    // Four devices work on a quarter of the rows each.
    EXPECT_LT(fast.totalTime, slow.totalTime);
    EXPECT_GT(static_cast<double>(slow.totalTime)
                  / static_cast<double>(fast.totalTime),
              2.0);
}

TEST(ScaleOut, EnergySumsOverShards)
{
    const xclass::BenchmarkSpec s = spec(32768);
    ScaleOutEcssd one(s, 1);
    ScaleOutEcssd two(s, 2);
    const double one_uj = one.runInference(1).totalEnergyUj;
    const double two_uj = two.runInference(1).totalEnergyUj;
    EXPECT_GT(one_uj, 0.0);
    // Two devices burn at least as much total energy as one (same
    // total work plus a second controller's background power).
    EXPECT_GT(two_uj, one_uj * 0.8);
}

TEST(ScaleOut, RejectsShardsThatDoNotFitDram)
{
    xclass::BenchmarkSpec huge =
        xclass::benchmarkByName("XMLCNN-S100M");
    huge.categories = 500000000; // 64 GB INT4
    EXPECT_THROW(ScaleOutEcssd(huge, 2), sim::PanicError);
}

TEST(ScaleOut, DevicesNeededRejectsZeroDram)
{
    const xclass::BenchmarkSpec s = spec(32768);
    EXPECT_THROW(ScaleOutEcssd::devicesNeeded(s, 0),
                 sim::FatalError);
    // One byte of DRAM rounds to zero usable capacity at 80% fill.
    EXPECT_THROW(ScaleOutEcssd::devicesNeeded(s, 1),
                 sim::FatalError);
    EXPECT_GE(ScaleOutEcssd::devicesNeeded(s, 16ULL << 30), 1u);
}

TEST(ScaleOut, MidRunFailoverMergesOverSurvivors)
{
    // Kill 1 of 4 shards after its first batch of three: the merge
    // proceeds over the survivors and the result quantifies the
    // recall loss of the dead shard's category range.
    ScaleOutEcssd fleet(spec(65536), 4);
    fleet.failShardAfterBatches(2, 1);
    const ScaleOutResult result = fleet.runInference(3);

    EXPECT_EQ(result.survivingDevices, 3u);
    EXPECT_EQ(result.failedDevices, 1u);
    EXPECT_FALSE(fleet.shardAlive(2));
    EXPECT_EQ(fleet.health(2).batchesServed, 1u);
    ASSERT_EQ(result.shards.size(), 4u);
    EXPECT_EQ(result.shards[2].batches.size(), 1u);
    for (unsigned d : {0u, 1u, 3u}) {
        EXPECT_TRUE(fleet.shardAlive(d));
        EXPECT_EQ(result.shards[d].batches.size(), 3u);
        EXPECT_GT(result.shards[d].totalTime, 0u);
    }
    // 2 of 3 batches each lost one shard's quarter of the rows.
    EXPECT_NEAR(result.recallLossEstimate, 0.25 * 2.0 / 3.0, 1e-9);
    EXPECT_GT(result.totalTime, 0u);
}

TEST(ScaleOut, ImmediateFailureExcludesShardFromMerge)
{
    ScaleOutEcssd fleet(spec(32768), 2);
    fleet.failShard(0);
    EXPECT_FALSE(fleet.shardAlive(0));
    EXPECT_EQ(fleet.aliveDevices(), 1u);
    const ScaleOutResult result = fleet.runInference(2);
    EXPECT_EQ(result.survivingDevices, 1u);
    EXPECT_EQ(result.failedDevices, 1u);
    EXPECT_TRUE(result.shards[0].batches.empty());
    EXPECT_EQ(result.shards[1].batches.size(), 2u);
    EXPECT_NEAR(result.recallLossEstimate, 0.5, 1e-9);
}

TEST(ScaleOut, WholeFleetLossIsFatal)
{
    ScaleOutEcssd fleet(spec(32768), 2);
    fleet.failShard(0);
    fleet.failShard(1);
    EXPECT_EQ(fleet.aliveDevices(), 0u);
    EXPECT_THROW(fleet.runInference(1), sim::FatalError);
}

TEST(ScaleOut, HealthyFleetReportsNoLoss)
{
    ScaleOutEcssd fleet(spec(32768), 2);
    const ScaleOutResult result = fleet.runInference(2);
    EXPECT_EQ(result.survivingDevices, 2u);
    EXPECT_EQ(result.failedDevices, 0u);
    EXPECT_EQ(result.recallLossEstimate, 0.0);
    EXPECT_EQ(fleet.health(0).batchesServed, 2u);
    EXPECT_EQ(fleet.health(1).batchesServed, 2u);
}

namespace
{

/**
 * Shard options whose media ages visibly: the retention coefficient
 * makes the predicted error rate climb with accumulated service
 * time, which is what the drain policy watches.
 */
EcssdOptions
agingOptions()
{
    EcssdOptions options = EcssdOptions::full();
    options.ssd.retentionErrorCoefficient = 1e-3; // per second
    return options;
}

} // namespace

TEST(ScaleOut, ShardHealthReportTracksServiceTime)
{
    ScaleOutEcssd fleet(spec(32768), 2, agingOptions());

    // A fresh shard has served nothing: no retention age, so the
    // predicted rate sits at the (zero) base rate.
    ssdsim::HealthReport fresh = fleet.shardHealthReport(0);
    EXPECT_EQ(fleet.health(0).serviceTime, 0u);
    EXPECT_EQ(fresh.predictedErrorRate, 0.0);
    EXPECT_EQ(fresh.lifeRemaining, 1.0);

    fleet.runInference(2);

    for (unsigned d = 0; d < 2; ++d) {
        EXPECT_GT(fleet.health(d).serviceTime, 0u);
        const ssdsim::HealthReport aged = fleet.shardHealthReport(d);
        EXPECT_GT(aged.predictedErrorRate, 0.0);
        EXPECT_LE(aged.lifeRemaining, 1.0);
        EXPECT_FALSE(aged.readOnly);
    }
}

TEST(ScaleOut, ProactiveDrainAvoidsReactiveFailoverLoss)
{
    // Two fleets, identical workloads, identical wear, and the same
    // scheduled mid-run death of shard 0.  The reactive fleet waits
    // for the failure and eats the recall loss; the proactive fleet
    // reads the SMART trend after the first run and re-replicates
    // the degrading shard onto a spare before the failure can land.
    const xclass::BenchmarkSpec s = spec(32768);
    ScaleOutEcssd reactive(s, 2, agingOptions());
    ScaleOutEcssd proactive(s, 2, agingOptions());

    // First run: both fleets accrue the same service time (wear).
    reactive.runInference(2);
    proactive.runInference(2);

    // The wearing device will die after one more batch.
    reactive.failShardAfterBatches(0, 1);
    proactive.failShardAfterBatches(0, 1);

    // Only the proactive fleet watches health and holds a spare.
    DrainPolicy policy;
    policy.errorRateThreshold = 1e-9;
    proactive.setDrainPolicy(policy);
    proactive.provisionSpares(1);
    ASSERT_EQ(proactive.sparesAvailable(), 1u);

    const ScaleOutResult lost = reactive.runInference(2);
    EXPECT_EQ(lost.drainedShards, 0u);
    EXPECT_EQ(lost.failedDevices, 1u);
    EXPECT_FALSE(reactive.shardAlive(0));
    // Shard 0 served 1 of 2 batches: half the categories missing
    // from half the batches.
    EXPECT_NEAR(lost.recallLossEstimate, 0.25, 1e-9);

    const ScaleOutResult saved = proactive.runInference(2);
    EXPECT_EQ(saved.drainedShards, 1u);
    EXPECT_GT(saved.reReplicationTime, 0u);
    EXPECT_EQ(saved.sparesRemaining, 0u);
    EXPECT_EQ(proactive.sparesAvailable(), 0u);
    // The replacement device cancelled the scheduled failure: every
    // shard served every batch and nothing was lost.
    EXPECT_EQ(saved.failedDevices, 0u);
    EXPECT_TRUE(proactive.shardAlive(0));
    EXPECT_EQ(saved.recallLossEstimate, 0.0);
    EXPECT_EQ(proactive.health(0).replacements, 1u);
    // The fresh device starts its retention clock over.
    EXPECT_LT(proactive.health(0).serviceTime,
              proactive.health(1).serviceTime);
}

TEST(ScaleOut, DrainWithoutSparesFallsBackToReactiveFailover)
{
    // A policy with no spares to drain onto cannot act: the fleet
    // behaves exactly like the reactive one.
    ScaleOutEcssd fleet(spec(32768), 2, agingOptions());
    fleet.runInference(1);

    DrainPolicy policy;
    policy.errorRateThreshold = 1e-9;
    fleet.setDrainPolicy(policy);
    fleet.failShardAfterBatches(0, 1);

    const ScaleOutResult result = fleet.runInference(2);
    EXPECT_EQ(result.drainedShards, 0u);
    EXPECT_EQ(result.failedDevices, 1u);
    EXPECT_EQ(fleet.health(0).replacements, 0u);
    EXPECT_NEAR(result.recallLossEstimate, 0.25, 1e-9);
}

TEST(ScaleOut, ShardResultsAreComplete)
{
    ScaleOutEcssd fleet(spec(32768), 2);
    const ScaleOutResult result = fleet.runInference(2);
    ASSERT_EQ(result.shards.size(), 2u);
    for (const accel::RunResult &shard : result.shards) {
        EXPECT_EQ(shard.batches.size(), 2u);
        EXPECT_GT(shard.totalTime, 0u);
    }
    EXPECT_GT(result.meanBatchMs, 0.0);
}
