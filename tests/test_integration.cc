/**
 * @file
 * Whole-stack integration: one scenario exercising SSD mode through
 * the NVMe front-end, a mode switch, a functional deployment, timed
 * screened inference, energy accounting, and scale-out — the path a
 * downstream user walks.
 */

#include <gtest/gtest.h>

#include "ecssd/api.hh"
#include "ecssd/scale_out.hh"
#include "ecssd/server.hh"
#include "sim/rng.hh"
#include "ssdsim/nvme.hh"
#include "xclass/metrics.hh"

using namespace ecssd;

TEST(Integration, FullUserJourney)
{
    // --- 1. Block storage via NVMe -----------------------------------
    sim::EventQueue queue;
    ssdsim::SsdDevice block_device(ssdsim::smallTestConfig(),
                                   queue);
    ssdsim::NvmeController nvme(block_device, 2, 16);
    for (std::uint64_t lpa = 0; lpa < 32; ++lpa)
        ASSERT_TRUE(nvme.submit(
            lpa % 2, ssdsim::NvmeCommand{ssdsim::NvmeOpcode::Write,
                                         lpa, 1, lpa}));
    nvme.drain();
    ASSERT_TRUE(nvme.submit(
        0, ssdsim::NvmeCommand{ssdsim::NvmeOpcode::Read, 0, 32,
                               999}));
    nvme.drain();
    const auto completions = nvme.pollCompletions(0);
    ASSERT_FALSE(completions.empty());
    EXPECT_TRUE(completions.back().success);

    // --- 2. Deploy a classifier and run screened inference -----------
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 1024);
    spec.hiddenDim = 128;
    const xclass::SyntheticModel model(spec, 71);

    EcssdApi api;
    api.ecssdEnable();
    const sim::Tick deploy =
        api.weightDeploy(model.weights(), spec, &model.basis());
    EXPECT_GT(deploy, 0u);

    sim::Rng rng(72);
    std::vector<std::vector<float>> calibration;
    for (int q = 0; q < 4; ++q)
        calibration.push_back(model.sampleQuery(rng));
    api.calibrateThreshold(calibration);

    const std::vector<float> query = model.sampleQuery(rng);
    api.int4InputSend(query);
    api.cfp32InputSend(query);
    api.int4Screen();
    api.cfp32Classify();
    const auto prediction = api.getResults(5);
    ASSERT_EQ(prediction.topCategories.size(), 5u);
    EXPECT_GT(api.lastInferenceLatency(), 0u);

    // The screened answer matches an exact search's top pick.
    const xclass::ApproximateClassifier reference(
        model.weights(), spec, 1, &model.basis());
    const auto exact = reference.exact(query, 5);
    EXPECT_GE(xclass::recall(exact.topCategories,
                             prediction.topCategories),
              0.6);

    // --- 3. Timed run + energy on a trace-tier workload --------------
    const xclass::BenchmarkSpec big = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 16384);
    EcssdSystem system(big, EcssdOptions::full());
    const accel::RunResult run = system.runInference(2);
    EXPECT_GT(run.channelUtilization, 0.4);
    const circuit::EnergyBreakdown energy =
        system.estimateRunEnergy(run);
    EXPECT_GT(energy.totalUj(), 0.0);

    // --- 4. Scale out when the model grows ---------------------------
    ScaleOutEcssd fleet(big, 2);
    const ScaleOutResult fleet_run = fleet.runInference(1);
    EXPECT_LT(fleet_run.totalTime, run.totalTime);
}
