/**
 * @file
 * Tests of the category-gated trace infrastructure and the
 * Percentiles sampler added for serving studies.
 */

#include <gtest/gtest.h>

#include "sim/stats.hh"
#include "sim/trace.hh"

using namespace ecssd::sim;

namespace
{

struct TraceReset
{
    static void
    disableAll()
    {
        for (const TraceCategory c :
             {TraceCategory::Flash, TraceCategory::Ftl,
              TraceCategory::Dram, TraceCategory::Nvme,
              TraceCategory::Pipeline, TraceCategory::Layout,
              TraceCategory::Api})
            setTraceEnabled(c, false);
    }
    TraceReset() { disableAll(); }
    ~TraceReset() { disableAll(); }
};

} // namespace

TEST(Trace, CategoriesStartDisabled)
{
    TraceReset reset;
    EXPECT_FALSE(traceEnabled(TraceCategory::Ftl));
    EXPECT_FALSE(traceEnabled(TraceCategory::Pipeline));
}

TEST(Trace, EnableDisableSingleCategory)
{
    TraceReset reset;
    setTraceEnabled(TraceCategory::Ftl, true);
    EXPECT_TRUE(traceEnabled(TraceCategory::Ftl));
    EXPECT_FALSE(traceEnabled(TraceCategory::Flash));
    setTraceEnabled(TraceCategory::Ftl, false);
    EXPECT_FALSE(traceEnabled(TraceCategory::Ftl));
}

TEST(Trace, ParseCommaSeparatedList)
{
    TraceReset reset;
    enableTraceCategories("ftl,pipeline");
    EXPECT_TRUE(traceEnabled(TraceCategory::Ftl));
    EXPECT_TRUE(traceEnabled(TraceCategory::Pipeline));
    EXPECT_FALSE(traceEnabled(TraceCategory::Nvme));
}

TEST(Trace, AllEnablesEverything)
{
    TraceReset reset;
    enableTraceCategories("all");
    EXPECT_TRUE(traceEnabled(TraceCategory::Flash));
    EXPECT_TRUE(traceEnabled(TraceCategory::Api));
}

TEST(Trace, UnknownCategoryIsIgnored)
{
    TraceReset reset;
    enableTraceCategories("bogus,ftl");
    EXPECT_TRUE(traceEnabled(TraceCategory::Ftl));
}

TEST(Trace, CategoryNames)
{
    EXPECT_STREQ(traceCategoryName(TraceCategory::Flash), "flash");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Nvme), "nvme");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Layout),
                 "layout");
}

TEST(Trace, MacroIsCheapWhenDisabled)
{
    TraceReset reset;
    int evaluations = 0;
    auto expensive = [&evaluations] {
        ++evaluations;
        return 42;
    };
    ECSSD_TRACE_LOG(TraceCategory::Ftl, 0, "value ", expensive());
    EXPECT_EQ(evaluations, 0);
}

TEST(Percentiles, EmptyIsZero)
{
    Percentiles p;
    EXPECT_EQ(p.count(), 0u);
    EXPECT_EQ(p.p50(), 0.0);
    EXPECT_EQ(p.p99(), 0.0);
}

TEST(Percentiles, SingleSample)
{
    Percentiles p;
    p.sample(7.0);
    EXPECT_EQ(p.quantile(0.0), 7.0);
    EXPECT_EQ(p.p50(), 7.0);
    EXPECT_EQ(p.quantile(1.0), 7.0);
}

TEST(Percentiles, QuantilesOfUniformRamp)
{
    Percentiles p;
    for (int i = 100; i >= 1; --i) // reversed insertion order
        p.sample(i);
    EXPECT_NEAR(p.p50(), 50.0, 1.0);
    EXPECT_NEAR(p.p95(), 95.0, 1.0);
    EXPECT_NEAR(p.p99(), 99.0, 1.0);
    EXPECT_EQ(p.quantile(0.0), 1.0);
    EXPECT_EQ(p.quantile(1.0), 100.0);
}

TEST(Percentiles, InterleavedSampleAndQuery)
{
    Percentiles p;
    p.sample(10.0);
    EXPECT_EQ(p.p50(), 10.0);
    p.sample(20.0);
    p.sample(30.0);
    EXPECT_EQ(p.p50(), 20.0);
}

TEST(Percentiles, ResetClears)
{
    Percentiles p;
    p.sample(1.0);
    p.reset();
    EXPECT_EQ(p.count(), 0u);
}

TEST(Percentiles, OutOfRangeQuantilePanics)
{
    Percentiles p;
    p.sample(1.0);
    EXPECT_THROW(p.quantile(-0.1), PanicError);
    EXPECT_THROW(p.quantile(1.1), PanicError);
}
