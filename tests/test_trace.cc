/**
 * @file
 * Tests of the category-gated trace infrastructure and the
 * Percentiles sampler added for serving studies.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/stats.hh"
#include "sim/trace.hh"

using namespace ecssd::sim;

namespace
{

struct TraceReset
{
    static void
    disableAll()
    {
        for (const TraceCategory c :
             {TraceCategory::Flash, TraceCategory::Ftl,
              TraceCategory::Dram, TraceCategory::Nvme,
              TraceCategory::Pipeline, TraceCategory::Layout,
              TraceCategory::Api})
            setTraceEnabled(c, false);
    }
    TraceReset() { disableAll(); }
    ~TraceReset() { disableAll(); }
};

} // namespace

TEST(Trace, CategoriesStartDisabled)
{
    TraceReset reset;
    EXPECT_FALSE(traceEnabled(TraceCategory::Ftl));
    EXPECT_FALSE(traceEnabled(TraceCategory::Pipeline));
}

TEST(Trace, EnableDisableSingleCategory)
{
    TraceReset reset;
    setTraceEnabled(TraceCategory::Ftl, true);
    EXPECT_TRUE(traceEnabled(TraceCategory::Ftl));
    EXPECT_FALSE(traceEnabled(TraceCategory::Flash));
    setTraceEnabled(TraceCategory::Ftl, false);
    EXPECT_FALSE(traceEnabled(TraceCategory::Ftl));
}

TEST(Trace, ParseCommaSeparatedList)
{
    TraceReset reset;
    enableTraceCategories("ftl,pipeline");
    EXPECT_TRUE(traceEnabled(TraceCategory::Ftl));
    EXPECT_TRUE(traceEnabled(TraceCategory::Pipeline));
    EXPECT_FALSE(traceEnabled(TraceCategory::Nvme));
}

TEST(Trace, AllEnablesEverything)
{
    TraceReset reset;
    enableTraceCategories("all");
    EXPECT_TRUE(traceEnabled(TraceCategory::Flash));
    EXPECT_TRUE(traceEnabled(TraceCategory::Api));
}

TEST(Trace, UnknownCategoryIsIgnored)
{
    TraceReset reset;
    enableTraceCategories("bogus,ftl");
    EXPECT_TRUE(traceEnabled(TraceCategory::Ftl));
}

TEST(Trace, CategoryNames)
{
    EXPECT_STREQ(traceCategoryName(TraceCategory::Flash), "flash");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Nvme), "nvme");
    EXPECT_STREQ(traceCategoryName(TraceCategory::Layout),
                 "layout");
}

TEST(Trace, MacroIsCheapWhenDisabled)
{
    TraceReset reset;
    int evaluations = 0;
    auto expensive = [&evaluations] {
        ++evaluations;
        return 42;
    };
    ECSSD_TRACE_LOG(TraceCategory::Ftl, 0, "value ", expensive());
    EXPECT_EQ(evaluations, 0);
}

TEST(Percentiles, EmptyIsZero)
{
    Percentiles p;
    EXPECT_EQ(p.count(), 0u);
    EXPECT_EQ(p.p50(), 0.0);
    EXPECT_EQ(p.p99(), 0.0);
}

TEST(Percentiles, SingleSample)
{
    Percentiles p;
    p.sample(7.0);
    EXPECT_EQ(p.quantile(0.0), 7.0);
    EXPECT_EQ(p.p50(), 7.0);
    EXPECT_EQ(p.quantile(1.0), 7.0);
}

TEST(Percentiles, QuantilesOfUniformRamp)
{
    Percentiles p;
    for (int i = 100; i >= 1; --i) // reversed insertion order
        p.sample(i);
    EXPECT_NEAR(p.p50(), 50.0, 1.0);
    EXPECT_NEAR(p.p95(), 95.0, 1.0);
    EXPECT_NEAR(p.p99(), 99.0, 1.0);
    EXPECT_EQ(p.quantile(0.0), 1.0);
    EXPECT_EQ(p.quantile(1.0), 100.0);
}

TEST(Percentiles, InterleavedSampleAndQuery)
{
    Percentiles p;
    p.sample(10.0);
    EXPECT_EQ(p.p50(), 10.0);
    p.sample(20.0);
    p.sample(30.0);
    EXPECT_EQ(p.p50(), 20.0);
}

TEST(Percentiles, ResetClears)
{
    Percentiles p;
    p.sample(1.0);
    p.reset();
    EXPECT_EQ(p.count(), 0u);
}

TEST(Percentiles, OutOfRangeQuantilePanics)
{
    Percentiles p;
    p.sample(1.0);
    EXPECT_THROW(p.quantile(-0.1), PanicError);
    EXPECT_THROW(p.quantile(1.1), PanicError);
}

TEST(SpanTracer, RecordsNestingByCallOrder)
{
    SpanTracer tracer;
    const SpanId outer = tracer.begin("batch", 100);
    const SpanId inner = tracer.begin("int4", 150);
    EXPECT_EQ(tracer.openSpans(), 2u);
    tracer.end(inner, 250);
    tracer.end(outer, 400);
    EXPECT_EQ(tracer.openSpans(), 0u);

    // Completion order: inner closes first.
    ASSERT_EQ(tracer.records().size(), 2u);
    const SpanRecord &first = tracer.records()[0];
    const SpanRecord &second = tracer.records()[1];
    EXPECT_EQ(first.name, "int4");
    EXPECT_EQ(first.id, inner);
    EXPECT_EQ(first.parent, outer);
    EXPECT_EQ(first.depth, 1u);
    EXPECT_EQ(first.start, 150u);
    EXPECT_EQ(first.end, 250u);
    EXPECT_EQ(first.duration(), 100u);
    EXPECT_EQ(second.name, "batch");
    EXPECT_EQ(second.parent, 0u);
    EXPECT_EQ(second.depth, 0u);
}

TEST(SpanTracer, SiblingsMayOverlapInSimulatedTime)
{
    // Stage overlap: tile t+1's INT4 span begins (in call order)
    // after tile t's FP32 span ended, but at an *earlier* simulated
    // tick.  The tracer must accept this.
    SpanTracer tracer;
    const SpanId fp32 = tracer.begin("fp32", 500);
    tracer.end(fp32, 900);
    const SpanId int4 = tracer.begin("int4", 600);
    tracer.end(int4, 800);
    EXPECT_EQ(tracer.records().size(), 2u);
}

TEST(SpanTracer, MismatchedEndPanics)
{
    SpanTracer tracer;
    const SpanId outer = tracer.begin("outer", 0);
    tracer.begin("inner", 10);
    // Ending the outer span while the inner is still open violates
    // stack discipline.
    EXPECT_THROW(tracer.end(outer, 100), PanicError);
}

TEST(SpanTracer, EndWithNoOpenSpanPanics)
{
    SpanTracer tracer;
    EXPECT_THROW(tracer.end(1, 10), PanicError);
}

TEST(SpanTracer, BackwardsSpanPanics)
{
    SpanTracer tracer;
    const SpanId id = tracer.begin("s", 100);
    EXPECT_THROW(tracer.end(id, 50), PanicError);
}

TEST(SpanTracer, CapDropsButCounts)
{
    SpanTracer tracer(2);
    for (int i = 0; i < 5; ++i) {
        const SpanId id = tracer.begin("s", i);
        tracer.end(id, i + 1);
    }
    EXPECT_EQ(tracer.records().size(), 2u);
    EXPECT_EQ(tracer.droppedSpans(), 3u);
}

TEST(SpanTracer, ResetClearsEverything)
{
    SpanTracer tracer;
    const SpanId id = tracer.begin("s", 0);
    tracer.end(id, 1);
    tracer.begin("open", 2);
    tracer.reset();
    EXPECT_EQ(tracer.records().size(), 0u);
    EXPECT_EQ(tracer.openSpans(), 0u);
    EXPECT_EQ(tracer.droppedSpans(), 0u);
}

TEST(SpanTracer, WriteJsonIsDeterministic)
{
    auto run = [] {
        SpanTracer tracer;
        const SpanId outer = tracer.begin("batch", 0);
        const SpanId inner = tracer.begin("int4", 10);
        tracer.end(inner, 20);
        tracer.end(outer, 30);
        std::ostringstream os;
        tracer.writeJson(os);
        return os.str();
    };
    const std::string a = run();
    const std::string b = run();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("\"int4\""), std::string::npos);
    EXPECT_NE(a.find("\"batch\""), std::string::npos);
}

TEST(ScopedSpan, NullTracerIsNoOp)
{
    ScopedSpan span(nullptr, "noop", 0);
    span.close(10); // must not crash
}

TEST(ScopedSpan, CloseIsIdempotent)
{
    SpanTracer tracer;
    ScopedSpan span(&tracer, "s", 0);
    span.close(5);
    span.close(9); // second close is a no-op
    ASSERT_EQ(tracer.records().size(), 1u);
    EXPECT_EQ(tracer.records()[0].end, 5u);
}

TEST(ScopedSpan, LeftOpenStaysVisible)
{
    SpanTracer tracer;
    {
        ScopedSpan span(&tracer, "s", 0);
        // Destructor is lenient: no panic, span stays open.
    }
    EXPECT_EQ(tracer.openSpans(), 1u);
    EXPECT_EQ(tracer.records().size(), 0u);
}
