/**
 * @file
 * Autotuner determinism tests: the kernel plan must be a pure
 * function of (matrix shape, ISA level).  Candidate chunks are
 * benchmarked for observability, but wall-clock must never leak into
 * the selection — the same shape yields the same plan on every run,
 * the plan survives weightDeploy() and is visible in the metrics
 * dump, and an unknown --isa / ECSSD_ISA request dies with a named
 * error before any system is built.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <string>

#include "ecssd/api.hh"
#include "ecssd/system.hh"
#include "numeric/autotune.hh"
#include "numeric/int4.hh"
#include "numeric/kernels.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"
#include "sim/rng.hh"
#include "xclass/screening.hh"
#include "xclass/workload.hh"

using namespace ecssd;
using namespace ecssd::numeric;

namespace
{

Int4Matrix
smallMatrix(std::size_t rows, std::size_t cols)
{
    FloatMatrix m(rows, cols);
    sim::Rng rng(5);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m.at(r, c) = static_cast<float>(rng.gaussian(0.0, 1.0));
    return Int4Matrix(m);
}

/** Restores the auto-detected active ISA on scope exit. */
struct IsaGuard
{
    ~IsaGuard() { applyIsaRequest("auto"); }
};

} // namespace

TEST(Autotune, RowChunkCandidatesAreDeterministicPow2)
{
    for (const std::size_t bytes : {0ull, 1ull, 32ull, 100ull,
                                    512ull, 4096ull}) {
        const auto first = rowChunkCandidates(bytes);
        EXPECT_EQ(rowChunkCandidates(bytes), first) << bytes;
        ASSERT_FALSE(first.empty()) << bytes;
        for (std::size_t i = 0; i < first.size(); ++i) {
            EXPECT_GE(first[i], 512u) << bytes;
            EXPECT_LE(first[i], 4096u) << bytes;
            // Powers of two, strictly increasing.
            EXPECT_EQ(first[i] & (first[i] - 1), 0u) << bytes;
            if (i > 0) {
                EXPECT_EQ(first[i], 2 * first[i - 1]) << bytes;
            }
        }
    }
}

TEST(Autotune, BatchQueryTileIsShapeHeuristicInContract)
{
    // Pure function of (shape, ISA): power of two, inside the batch
    // kernel's [1, 16] contract, monotonically non-increasing in the
    // row width (wider rows -> bigger widened features -> narrower
    // tile), and never wider than the level's register budget.
    for (const IsaLevel isa :
         {IsaLevel::Scalar, IsaLevel::VecExt, IsaLevel::Avx2,
          IsaLevel::Avx512}) {
        std::size_t previous = 16;
        for (const std::size_t bytes :
             {0ull, 1ull, 16ull, 64ull, 256ull, 512ull, 1024ull,
              4096ull, 65536ull}) {
            const std::size_t tile =
                batchQueryTile(1000, bytes, isa);
            SCOPED_TRACE(std::string(toString(isa)) + " bytes "
                         + std::to_string(bytes));
            EXPECT_EQ(tile, batchQueryTile(1000, bytes, isa));
            EXPECT_GE(tile, 1u);
            EXPECT_LE(tile, 16u);
            EXPECT_EQ(tile & (tile - 1), 0u);
            EXPECT_LE(tile, previous);
            EXPECT_LE(tile,
                      isa == IsaLevel::Avx512 ? 16u : 8u);
            previous = tile;
        }
    }
    // AVX-512's deeper register file widens the tile on short rows.
    EXPECT_GT(batchQueryTile(1000, 32, IsaLevel::Avx512),
              batchQueryTile(1000, 32, IsaLevel::Avx2));
    // Huge rows squeeze the tile down to (but never below) one.
    EXPECT_EQ(batchQueryTile(1000, 1u << 20, IsaLevel::Avx2), 1u);
}

TEST(Autotune, PlanIsPureFunctionOfShapeAndIsa)
{
    const Int4Matrix matrix = smallMatrix(3000, 40);
    for (const IsaLevel isa : supportedIsaLevels()) {
        SCOPED_TRACE(toString(isa));
        // Measured and unmeasured plans pick identically — timings
        // are observability only.
        const KernelPlan cold =
            autotuneScreenerKernels(matrix, isa, false);
        EXPECT_FALSE(cold.measured);
        EXPECT_EQ(cold.nsPerRow, 0.0);
        for (int run = 0; run < 3; ++run) {
            const KernelPlan plan =
                autotuneScreenerKernels(matrix, isa, true);
            EXPECT_TRUE(plan.measured);
            EXPECT_EQ(plan.isa, isa);
            EXPECT_EQ(plan.rows, matrix.rows());
            EXPECT_EQ(plan.cols, matrix.cols());
            EXPECT_EQ(plan.bytesPerRow, matrix.bytesPerRow());
            EXPECT_EQ(plan.rowChunk, cold.rowChunk) << run;
            EXPECT_EQ(plan.queryTile, cold.queryTile) << run;
            // The selected candidate is flagged and is the chunk the
            // plan carries.
            ASSERT_FALSE(plan.candidates.empty());
            for (const KernelCandidate &candidate : plan.candidates)
                EXPECT_EQ(candidate.selected,
                          candidate.rowChunk == plan.rowChunk);
        }
    }
}

TEST(Autotune, ScreenerPlanDeterministicAcrossConstructions)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 4096);
    const xclass::SyntheticModel model(spec, 1);
    const xclass::Screener first(model.weights(), spec, 2);
    const xclass::Screener second(model.weights(), spec, 2);
    const KernelPlan &a = first.kernelPlan();
    const KernelPlan &b = second.kernelPlan();
    EXPECT_EQ(b.isa, a.isa);
    EXPECT_EQ(b.rowChunk, a.rowChunk);
    EXPECT_EQ(b.queryTile, a.queryTile);
    EXPECT_EQ(b.rows, a.rows);
    EXPECT_EQ(b.cols, a.cols);
    EXPECT_EQ(a.isa, activeIsa());
    EXPECT_GT(a.rowChunk, 0u);
    EXPECT_GT(a.queryTile, 0u);
}

TEST(Autotune, PlanSurvivesWeightDeployAndReachesMetrics)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 4096);
    const xclass::SyntheticModel model(spec, 1);

    EcssdApi api;
    sim::MetricsRegistry before;
    api.publishKernelMetrics(before);
    EXPECT_EQ(before.size(), 0u) << "no-op before first deploy";

    api.ecssdEnable();
    api.weightDeploy(model.weights(), spec);
    sim::MetricsRegistry registry;
    api.publishKernelMetrics(registry);
    ASSERT_TRUE(registry.has("kernel.isa"));
    ASSERT_TRUE(registry.has("kernel.row_chunk"));
    ASSERT_TRUE(registry.has("kernel.query_tile"));
    const double isa = registry.gauge("kernel.isa").value();
    const double chunk = registry.gauge("kernel.row_chunk").value();
    const double tile = registry.gauge("kernel.query_tile").value();
    EXPECT_EQ(isa, static_cast<double>(
                       static_cast<int>(activeIsa())));
    EXPECT_GT(chunk, 0.0);
    EXPECT_GT(tile, 0.0);
    EXPECT_EQ(registry.gauge("kernel.rows").value(),
              static_cast<double>(spec.categories));

    // Redeploying the same shape re-tunes to the identical choice.
    api.weightDeploy(model.weights(), spec);
    sim::MetricsRegistry after;
    api.publishKernelMetrics(after);
    EXPECT_EQ(after.gauge("kernel.isa").value(), isa);
    EXPECT_EQ(after.gauge("kernel.row_chunk").value(), chunk);
    EXPECT_EQ(after.gauge("kernel.query_tile").value(), tile);
}

TEST(Autotune, ValidateRejectsUnknownIsaOption)
{
    EcssdOptions options = EcssdOptions::full();
    options.isa = "neon";
    EXPECT_THROW(options.validate(), sim::FatalError);
    options.isa = "avx1024";
    EXPECT_THROW(options.validate(), sim::FatalError);
    for (const char *good :
         {"auto", "scalar", "vector", "avx2", "avx512"}) {
        options.isa = good;
        EXPECT_NO_THROW(options.validate()) << good;
    }
}

TEST(Autotune, ValidateRejectsUnknownIsaEnvironment)
{
    IsaGuard guard;
    EcssdOptions options = EcssdOptions::full();
    ASSERT_EQ(setenv("ECSSD_ISA", "bogus", 1), 0);
    EXPECT_THROW(options.validate(), sim::FatalError);
    ASSERT_EQ(setenv("ECSSD_ISA", "scalar", 1), 0);
    EXPECT_NO_THROW(options.validate());
    // A pinned env level overrides any option request.
    EXPECT_EQ(applyIsaRequest("auto"), IsaLevel::Scalar);
    ASSERT_EQ(unsetenv("ECSSD_ISA"), 0);
    EXPECT_NO_THROW(options.validate());
}

TEST(Autotune, SetActiveIsaPinsScreenerPlan)
{
    IsaGuard guard;
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 4096);
    const xclass::SyntheticModel model(spec, 1);
    for (const IsaLevel isa : supportedIsaLevels()) {
        setActiveIsa(isa);
        const xclass::Screener screener(model.weights(), spec, 2);
        EXPECT_EQ(screener.kernelPlan().isa, isa) << toString(isa);
    }
}
