/**
 * @file
 * Parallel golden-run tests: the host-compute thread pool must be
 * invisible in every result.  A system run, a serving run, and a
 * scale-out fleet run must produce byte-identical metrics JSON and
 * bit-identical predictions for --threads 1 vs 2 vs 8, and the
 * pooled screener/classifier paths must match their serial twins
 * exactly.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "ecssd/scale_out.hh"
#include "ecssd/server.hh"
#include "ecssd/system.hh"
#include "numeric/kernels.hh"
#include "sim/metrics.hh"
#include "sim/rng.hh"
#include "sim/thread_pool.hh"
#include "xclass/screening.hh"
#include "xclass/workload.hh"

using namespace ecssd;

namespace
{

xclass::BenchmarkSpec
smallSpec()
{
    return xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 4096);
}

std::vector<std::vector<float>>
sampleQueries(const xclass::SyntheticModel &model, unsigned count)
{
    sim::Rng rng(99);
    std::vector<std::vector<float>> queries;
    for (unsigned q = 0; q < count; ++q)
        queries.push_back(model.sampleQuery(rng));
    return queries;
}

/** Metrics JSON of one instrumented system run at @p threads,
 *  optionally pinned to one host-kernel ISA level. */
std::string
systemRunMetrics(unsigned threads, const std::string &isa = "auto")
{
    EcssdOptions options = EcssdOptions::full();
    options.threads = threads;
    options.isa = isa;
    sim::MetricsRegistry registry;
    EcssdSystem system(smallSpec(), options);
    system.attachObservability(&registry, nullptr);
    const accel::RunResult result = system.runInference(2);
    system.publishMetrics(registry, result);
    std::ostringstream os;
    registry.writeJson(os);
    return os.str();
}

/** Names of every ISA level this host supports ("scalar" first). */
std::vector<std::string>
supportedIsaNames()
{
    std::vector<std::string> names;
    for (const numeric::IsaLevel level :
         numeric::supportedIsaLevels())
        names.emplace_back(numeric::toString(level));
    return names;
}

} // namespace

TEST(ParallelGolden, SystemMetricsJsonByteIdenticalAcrossThreads)
{
    const std::string reference = systemRunMetrics(1);
    EXPECT_FALSE(reference.empty());
    EXPECT_EQ(systemRunMetrics(2), reference);
    EXPECT_EQ(systemRunMetrics(8), reference);
}

TEST(ParallelGolden, ScreenerScoresMatchSerialExactly)
{
    const xclass::BenchmarkSpec spec = smallSpec();
    const xclass::SyntheticModel model(spec, 1);
    const xclass::Screener serial(model.weights(), spec, 2);
    sim::ThreadPool pool(8);
    const xclass::Screener pooled(model.weights(), spec, 2, nullptr,
                                  &pool);

    const auto queries = sampleQueries(model, 6);
    std::vector<numeric::Int4Vector> prepared;
    for (const auto &query : queries) {
        const numeric::Int4Vector feature =
            serial.prepareFeature(query);
        const numeric::Int4Vector pooled_feature =
            pooled.prepareFeature(query);
        EXPECT_EQ(pooled_feature.packed, feature.packed);
        EXPECT_EQ(pooled_feature.scale, feature.scale);
        EXPECT_EQ(pooled.scores(pooled_feature),
                  serial.scores(feature));
        EXPECT_EQ(pooled.screen(query, xclass::FilterMode::TopRatio),
                  serial.screen(query, xclass::FilterMode::TopRatio));
        prepared.push_back(feature);
    }

    // The blocked multi-query sweep equals per-query scoring.
    const std::vector<std::vector<double>> batch =
        pooled.scoresBatch(prepared);
    ASSERT_EQ(batch.size(), prepared.size());
    for (std::size_t q = 0; q < prepared.size(); ++q)
        EXPECT_EQ(batch[q], serial.scores(prepared[q]))
            << "query " << q;
}

TEST(ParallelGolden, ClassifierPredictionsMatchSerialExactly)
{
    const xclass::BenchmarkSpec spec = smallSpec();
    const xclass::SyntheticModel model(spec, 1);
    const xclass::ApproximateClassifier serial(model.weights(), spec,
                                               2);
    sim::ThreadPool pool(8);
    const xclass::ApproximateClassifier pooled(
        model.weights(), spec, 2, nullptr, &pool);

    const auto datapaths = {
        xclass::CandidateClassifier::Datapath::Fp32,
        xclass::CandidateClassifier::Datapath::Cfp32AlignmentFree,
        xclass::CandidateClassifier::Datapath::Cfp16AlignmentFree};
    for (const auto &query : sampleQueries(model, 4)) {
        for (const auto datapath : datapaths) {
            const auto a = serial.predict(
                query, 5, xclass::FilterMode::TopRatio, datapath);
            const auto b = pooled.predict(
                query, 5, xclass::FilterMode::TopRatio, datapath);
            EXPECT_EQ(b.topCategories, a.topCategories);
            EXPECT_EQ(b.topScores, a.topScores);
            EXPECT_EQ(b.candidateCount, a.candidateCount);
        }
        const auto a = serial.exact(query, 5);
        const auto b = pooled.exact(query, 5);
        EXPECT_EQ(b.topCategories, a.topCategories);
        EXPECT_EQ(b.topScores, a.topScores);
    }
}

TEST(ParallelGolden, ServerResponsesMatchAcrossThreads)
{
    const xclass::BenchmarkSpec spec = smallSpec();
    const auto serve = [&](unsigned threads) {
        EcssdOptions options = EcssdOptions::full();
        options.threads = threads;
        xclass::SyntheticModel model(spec, options.seed);
        InferenceServer server(model.weights(), spec, options);
        sim::Rng rng(options.seed);
        for (unsigned r = 0; r < 12; ++r)
            server.enqueue(model.sampleQuery(rng));
        return server.processAll(5);
    };

    const auto reference = serve(1);
    ASSERT_FALSE(reference.empty());
    for (const unsigned threads : {2u, 8u}) {
        const auto responses = serve(threads);
        ASSERT_EQ(responses.size(), reference.size())
            << threads << " threads";
        for (std::size_t i = 0; i < reference.size(); ++i) {
            EXPECT_EQ(responses[i].id, reference[i].id);
            EXPECT_EQ(responses[i].status, reference[i].status);
            EXPECT_EQ(responses[i].completedAt,
                      reference[i].completedAt);
            EXPECT_EQ(responses[i].prediction.topCategories,
                      reference[i].prediction.topCategories);
            EXPECT_EQ(responses[i].prediction.topScores,
                      reference[i].prediction.topScores);
        }
    }
}

TEST(ParallelGolden, ScaleOutFleetMatchesSerialFanOut)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 32768);
    const auto run = [&](unsigned threads) {
        EcssdOptions options = EcssdOptions::full();
        options.threads = threads;
        ScaleOutEcssd fleet(spec, 4, options);
        const ScaleOutResult result = fleet.runInference(2);
        sim::MetricsRegistry registry;
        fleet.publishMetrics(registry, result);
        std::ostringstream os;
        registry.writeJson(os);
        return std::make_pair(result.totalEnergyUj, os.str());
    };

    const auto reference = run(1);
    for (const unsigned threads : {2u, 4u}) {
        const auto parallel = run(threads);
        EXPECT_EQ(parallel.first, reference.first)
            << threads << " threads";
        EXPECT_EQ(parallel.second, reference.second)
            << threads << " threads";
    }
}

// --- ISA-level golden replays ---------------------------------------
//
// The SIMD dispatch must be as invisible as the thread pool: a full
// system run, a serving run, and a fleet run replayed with the host
// kernels pinned to "scalar" (byte-for-byte the pre-dispatch code
// paths) must match every better ISA level this machine supports,
// byte for byte in the metrics JSON and bit for bit in every
// prediction.  When CI pins ECSSD_ISA the environment wins over the
// per-run option and both sides run the pinned level — the equality
// still must hold.

namespace
{

/** Restores auto ISA detection when a pinned-ISA test exits. */
struct IsaAutoGuard
{
    ~IsaAutoGuard() { numeric::applyIsaRequest("auto"); }
};

} // namespace

TEST(ParallelGolden, SystemMetricsJsonByteIdenticalAcrossIsaLevels)
{
    IsaAutoGuard guard;
    const std::string reference = systemRunMetrics(2, "scalar");
    EXPECT_FALSE(reference.empty());
    for (const std::string &isa : supportedIsaNames())
        EXPECT_EQ(systemRunMetrics(2, isa), reference) << isa;
}

TEST(ParallelGolden, ServerResponsesMatchAcrossIsaLevels)
{
    IsaAutoGuard guard;
    const xclass::BenchmarkSpec spec = smallSpec();
    const auto serve = [&](const std::string &isa) {
        EcssdOptions options = EcssdOptions::full();
        options.threads = 2;
        options.isa = isa;
        xclass::SyntheticModel model(spec, options.seed);
        InferenceServer server(model.weights(), spec, options);
        sim::Rng rng(options.seed);
        for (unsigned r = 0; r < 12; ++r)
            server.enqueue(model.sampleQuery(rng));
        return server.processAll(5);
    };

    const auto reference = serve("scalar");
    ASSERT_FALSE(reference.empty());
    for (const std::string &isa : supportedIsaNames()) {
        const auto responses = serve(isa);
        ASSERT_EQ(responses.size(), reference.size()) << isa;
        for (std::size_t i = 0; i < reference.size(); ++i) {
            EXPECT_EQ(responses[i].id, reference[i].id);
            EXPECT_EQ(responses[i].status, reference[i].status);
            EXPECT_EQ(responses[i].completedAt,
                      reference[i].completedAt);
            EXPECT_EQ(responses[i].prediction.topCategories,
                      reference[i].prediction.topCategories)
                << isa << " response " << i;
            EXPECT_EQ(responses[i].prediction.topScores,
                      reference[i].prediction.topScores)
                << isa << " response " << i;
        }
    }
}

TEST(ParallelGolden, ScaleOutFleetMatchesAcrossIsaLevels)
{
    IsaAutoGuard guard;
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 32768);
    const auto run = [&](const std::string &isa) {
        EcssdOptions options = EcssdOptions::full();
        options.threads = 2;
        options.isa = isa;
        ScaleOutEcssd fleet(spec, 4, options);
        const ScaleOutResult result = fleet.runInference(2);
        sim::MetricsRegistry registry;
        fleet.publishMetrics(registry, result);
        std::ostringstream os;
        registry.writeJson(os);
        return std::make_pair(result.totalEnergyUj, os.str());
    };

    const auto reference = run("scalar");
    for (const std::string &isa : supportedIsaNames()) {
        const auto replay = run(isa);
        EXPECT_EQ(replay.first, reference.first) << isa;
        EXPECT_EQ(replay.second, reference.second) << isa;
    }
}
