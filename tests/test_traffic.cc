/**
 * @file
 * TrafficEngine tests: deterministic regeneration (a million-arrival
 * trace is a pure function of the config), arrival-process shape
 * (Poisson vs diurnal modulation vs MMPP burstiness), Zipf session
 * structure, per-user class stability, and byte-identical open-loop
 * serving across host thread counts.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "ecssd/server.hh"
#include "sim/traffic.hh"
#include "sim/types.hh"
#include "xclass/metrics.hh"

using namespace ecssd;

namespace
{

sim::TrafficConfig
baseConfig()
{
    sim::TrafficConfig config;
    config.ratePerSecond = 5000.0;
    config.users = 512;
    config.seed = 7;
    return config;
}

/** Per-window arrival counts over @p window seconds. */
std::vector<std::uint64_t>
windowCounts(const std::vector<sim::Arrival> &trace, double window)
{
    std::vector<std::uint64_t> counts;
    for (const sim::Arrival &arrival : trace) {
        const std::size_t w = static_cast<std::size_t>(
            sim::tickToSeconds(arrival.at) / window);
        if (w >= counts.size())
            counts.resize(w + 1, 0);
        ++counts[w];
    }
    return counts;
}

/** Variance-to-mean ratio (index of dispersion) of window counts. */
double
dispersion(const std::vector<std::uint64_t> &counts)
{
    double mean = 0.0;
    for (const std::uint64_t c : counts)
        mean += static_cast<double>(c);
    mean /= static_cast<double>(counts.size());
    double var = 0.0;
    for (const std::uint64_t c : counts) {
        const double d = static_cast<double>(c) - mean;
        var += d * d;
    }
    var /= static_cast<double>(counts.size());
    return var / mean;
}

} // namespace

TEST(TrafficEngine, MillionArrivalTraceRegeneratesByteIdentical)
{
    for (const sim::ArrivalProcess process :
         {sim::ArrivalProcess::Poisson, sim::ArrivalProcess::Diurnal,
          sim::ArrivalProcess::BurstySpike}) {
        sim::TrafficConfig config = baseConfig();
        config.process = process;
        sim::TrafficEngine first(config);
        sim::TrafficEngine second(config);
        const auto a = first.generate(1000000);
        const auto b = second.generate(1000000);
        ASSERT_EQ(a.size(), b.size());
        // operator== covers at/user/querySeed/cls per element.
        EXPECT_TRUE(a == b)
            << "trace diverged for " << sim::toString(process);
        EXPECT_EQ(first.generated(), 1000000u);
    }
}

TEST(TrafficEngine, DifferentSeedsProduceDifferentTraces)
{
    sim::TrafficConfig config = baseConfig();
    sim::TrafficEngine first(config);
    config.seed = 8;
    sim::TrafficEngine second(config);
    EXPECT_FALSE(first.generate(1000) == second.generate(1000));
}

TEST(TrafficEngine, ArrivalTimesAreNonDecreasing)
{
    for (const sim::ArrivalProcess process :
         {sim::ArrivalProcess::Poisson, sim::ArrivalProcess::Diurnal,
          sim::ArrivalProcess::BurstySpike}) {
        sim::TrafficConfig config = baseConfig();
        config.process = process;
        sim::TrafficEngine engine(config);
        sim::Tick last = 0;
        for (int i = 0; i < 20000; ++i) {
            const sim::Arrival arrival = engine.next();
            EXPECT_GE(arrival.at, last);
            last = arrival.at;
        }
    }
}

TEST(TrafficEngine, PoissonMatchesTheConfiguredRate)
{
    sim::TrafficConfig config = baseConfig();
    sim::TrafficEngine engine(config);
    const auto trace = engine.generate(100000);
    const double elapsed = sim::tickToSeconds(trace.back().at);
    const double rate = 100000.0 / elapsed;
    EXPECT_NEAR(rate, config.ratePerSecond,
                0.05 * config.ratePerSecond);
    // Memoryless arrivals: window counts are near-Poisson, so the
    // index of dispersion sits close to 1.
    const double d = dispersion(windowCounts(trace, 0.01));
    EXPECT_LT(d, 2.0);
}

TEST(TrafficEngine, BurstySpikeIsOverdispersed)
{
    sim::TrafficConfig config = baseConfig();
    config.process = sim::ArrivalProcess::BurstySpike;
    config.burstRateMultiplier = 10.0;
    sim::TrafficEngine engine(config);
    const auto trace = engine.generate(100000);
    // Correlated spike trains: the window counts mix the calm and
    // burst rates, so the dispersion is far above Poisson's.
    const double d = dispersion(windowCounts(trace, 0.01));
    EXPECT_GT(d, 3.0);
}

TEST(TrafficEngine, DiurnalModulatesTheRateWithinAPeriod)
{
    sim::TrafficConfig config = baseConfig();
    config.process = sim::ArrivalProcess::Diurnal;
    config.diurnalAmplitude = 0.8;
    config.diurnalPeriodSeconds = 2.0;
    sim::TrafficEngine engine(config);
    const auto trace = engine.generate(200000);
    // rate(t) = base * (1 + A sin(2*pi*t/P)): the first half-period
    // runs above base, the second below.
    std::uint64_t rising = 0;
    std::uint64_t falling = 0;
    for (const sim::Arrival &arrival : trace) {
        const double t = std::fmod(sim::tickToSeconds(arrival.at),
                                   config.diurnalPeriodSeconds);
        if (t < config.diurnalPeriodSeconds / 2.0)
            ++rising;
        else
            ++falling;
    }
    EXPECT_GT(static_cast<double>(rising),
              1.5 * static_cast<double>(falling));
}

TEST(TrafficEngine, SessionsAreZipfSkewedAndClassStable)
{
    sim::TrafficConfig config = baseConfig();
    config.userZipfExponent = 1.1;
    sim::TrafficEngine engine(config);
    const auto trace = engine.generate(100000);

    std::map<std::uint64_t, std::uint64_t> per_user;
    for (const sim::Arrival &arrival : trace) {
        ASSERT_LT(arrival.user, config.users);
        ++per_user[arrival.user];
        // The class is a pure function of (seed, user): every
        // arrival agrees with the static predicate.
        EXPECT_EQ(arrival.cls == sim::RequestClass::Gold,
                  sim::TrafficEngine::isGold(config, arrival.user));
    }
    // Heavy-user skew: the top user dominates a uniform share.
    std::uint64_t top = 0;
    for (const auto &[user, count] : per_user)
        top = std::max(top, count);
    EXPECT_GT(top, 20 * (100000 / config.users));
}

TEST(TrafficEngine, QuerySeedsReplayPerUserSession)
{
    // A user's query stream is indexed by their own session
    // position, so it replays identically even when another process
    // interleaves the users completely differently.
    sim::TrafficConfig config = baseConfig();
    sim::TrafficConfig bursty = config;
    bursty.process = sim::ArrivalProcess::BurstySpike;

    sim::TrafficEngine a(config);
    sim::TrafficEngine b(bursty);
    std::map<std::uint64_t, std::vector<std::uint64_t>> streams_a;
    std::map<std::uint64_t, std::vector<std::uint64_t>> streams_b;
    for (int i = 0; i < 50000; ++i) {
        const sim::Arrival aa = a.next();
        streams_a[aa.user].push_back(aa.querySeed);
        const sim::Arrival bb = b.next();
        streams_b[bb.user].push_back(bb.querySeed);
    }
    for (const auto &[user, stream] : streams_a) {
        const auto it = streams_b.find(user);
        if (it == streams_b.end())
            continue;
        const std::size_t common =
            std::min(stream.size(), it->second.size());
        for (std::size_t i = 0; i < common; ++i)
            EXPECT_EQ(stream[i], it->second[i])
                << "user " << user << " position " << i;
    }
}

TEST(TrafficEngine, ServingIsByteIdenticalAcrossThreadCounts)
{
    // The whole open-loop stack — engine, admission, brownout,
    // batching — must be a pure function of the config: host
    // threads are a wall-clock knob, never a results knob.
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 512);
    spec.hiddenDim = 128;
    spec.batchSize = 4;
    const xclass::SyntheticModel model(spec, 1);
    std::vector<std::vector<float>> queries;
    sim::Rng qrng(11);
    for (int q = 0; q < 32; ++q)
        queries.push_back(model.sampleQuery(qrng));

    ServerConfig server_config;
    server_config.admissionTargetDelay = sim::microseconds(400.0);
    server_config.brownout.enterDelay = sim::microseconds(300.0);
    server_config.brownout.exitDelay = sim::microseconds(150.0);
    server_config.brownout.recoveryGuard = sim::microseconds(100.0);

    sim::TrafficConfig traffic = baseConfig();
    traffic.process = sim::ArrivalProcess::BurstySpike;
    traffic.ratePerSecond = 20000.0;

    std::vector<std::vector<InferenceServer::Response>> runs;
    for (const unsigned threads : {1u, 2u, 8u}) {
        EcssdOptions options = EcssdOptions::full();
        options.threads = threads;
        InferenceServer server(model.weights(), spec, options,
                               &model.basis(), server_config);
        sim::TrafficEngine engine(traffic);
        runs.push_back(server.runTraffic(engine, 2000, queries, 5));
    }
    ASSERT_EQ(runs[0].size(), 2000u);
    for (std::size_t r = 1; r < runs.size(); ++r) {
        ASSERT_EQ(runs[r].size(), runs[0].size());
        for (std::size_t i = 0; i < runs[0].size(); ++i) {
            const InferenceServer::Response &base = runs[0][i];
            const InferenceServer::Response &other = runs[r][i];
            ASSERT_EQ(base.id, other.id);
            ASSERT_EQ(base.status, other.status);
            ASSERT_EQ(base.completedAt, other.completedAt);
            ASSERT_EQ(base.cls, other.cls);
            ASSERT_EQ(base.servedAt, other.servedAt);
            ASSERT_EQ(base.prediction.topCategories,
                      other.prediction.topCategories);
        }
    }
}
