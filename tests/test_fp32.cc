/**
 * @file
 * Bit-level IEEE-754 utility tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "numeric/fp32.hh"
#include "sim/rng.hh"

using namespace ecssd::numeric;

TEST(Fp32, DecomposeOne)
{
    const Fp32Fields f = decompose(1.0f);
    EXPECT_EQ(f.sign, 0u);
    EXPECT_EQ(f.exponent, 127u);
    EXPECT_EQ(f.fraction, 0u);
}

TEST(Fp32, DecomposeMinusTwo)
{
    const Fp32Fields f = decompose(-2.0f);
    EXPECT_EQ(f.sign, 1u);
    EXPECT_EQ(f.exponent, 128u);
    EXPECT_EQ(f.fraction, 0u);
}

TEST(Fp32, DecomposeFraction)
{
    const Fp32Fields f = decompose(0.75f); // 1.5 * 2^-1
    EXPECT_EQ(f.exponent, 126u);
    EXPECT_EQ(f.fraction, 1u << 22);
}

TEST(Fp32, ComposeRoundTripsRandomValues)
{
    ecssd::sim::Rng rng(1);
    for (int i = 0; i < 10000; ++i) {
        const float v = static_cast<float>(
            rng.gaussian(0.0, 100.0));
        EXPECT_EQ(compose(decompose(v)), v);
    }
}

TEST(Fp32, ComposeRoundTripsNegativeZero)
{
    const float nz = -0.0f;
    EXPECT_EQ(floatToBits(compose(decompose(nz))),
              floatToBits(nz));
}

TEST(Fp32, Significand24HasHiddenOne)
{
    EXPECT_EQ(significand24(decompose(1.0f)), 1u << 23);
    EXPECT_EQ(significand24(decompose(1.5f)),
              (1u << 23) | (1u << 22));
}

TEST(Fp32, Significand24FlushesZeroAndSubnormal)
{
    EXPECT_EQ(significand24(decompose(0.0f)), 0u);
    const float subnormal = std::numeric_limits<float>::denorm_min();
    EXPECT_EQ(significand24(decompose(subnormal)), 0u);
}

TEST(Fp32, ZeroAndSubnormalDetection)
{
    EXPECT_TRUE(isZeroOrSubnormal(0.0f));
    EXPECT_TRUE(isZeroOrSubnormal(-0.0f));
    EXPECT_TRUE(
        isZeroOrSubnormal(std::numeric_limits<float>::denorm_min()));
    EXPECT_FALSE(isZeroOrSubnormal(1.0e-30f));
    EXPECT_FALSE(isZeroOrSubnormal(1.0f));
}

TEST(Fp32, NanInfDetection)
{
    EXPECT_TRUE(isNanOrInf(std::numeric_limits<float>::infinity()));
    EXPECT_TRUE(isNanOrInf(-std::numeric_limits<float>::infinity()));
    EXPECT_TRUE(isNanOrInf(std::numeric_limits<float>::quiet_NaN()));
    EXPECT_FALSE(isNanOrInf(std::numeric_limits<float>::max()));
    EXPECT_FALSE(isNanOrInf(0.0f));
}

TEST(Fp32, SignificandReconstructsValue)
{
    // value = m24 * 2^(E - bias - 23) must hold for normal floats.
    ecssd::sim::Rng rng(2);
    for (int i = 0; i < 1000; ++i) {
        const float v =
            static_cast<float>(rng.uniform(0.001, 1000.0));
        const Fp32Fields f = decompose(v);
        const double reconstructed = std::ldexp(
            static_cast<double>(significand24(f)),
            static_cast<int>(f.exponent) - fp32ExponentBias
                - fp32MantissaBits);
        EXPECT_FLOAT_EQ(static_cast<float>(reconstructed), v);
    }
}
