/**
 * @file
 * Differential fuzz harness over every runtime-dispatched kernel
 * variant (see numeric/kernels.hh): for each ISA level this CPU
 * supports, each kernel must match the scalar reference — integer
 * kernels byte for byte, FP32 kernels bit for bit (the repo's current
 * contract is exact replication; the checked-in goldens at the bottom
 * pin the tolerance contract any future reassociating kernel would
 * have to meet).  Shapes cover cols = 1, odd, even, zero rows,
 * saturated nibbles, and the int64-fallback boundary near
 * 0x7fffffff / 49 columns where the int32 SIMD accumulators sit one
 * product away from overflow.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "numeric/cfp16.hh"
#include "numeric/cfp32.hh"
#include "numeric/int4.hh"
#include "numeric/kernels.hh"
#include "numeric/mac.hh"
#include "numeric/matrix.hh"
#include "sim/rng.hh"

using namespace ecssd;
using namespace ecssd::numeric;

namespace
{

/**
 * Column count up to which the kernels keep int32 accumulators (the
 * largest per-element product is 7 * 7 = 49).  Mirrors the private
 * constant in numeric/int4.cc; the boundary test below would start
 * failing loudly if the two ever diverged.
 */
constexpr std::size_t kInt32SafeCols = 0x7fffffff / 49;

FloatMatrix
randomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    FloatMatrix m(rows, cols);
    sim::Rng rng(seed);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m.at(r, c) = static_cast<float>(rng.gaussian(0.0, 1.0));
    return m;
}

std::vector<float>
randomVector(std::size_t n, std::uint64_t seed)
{
    std::vector<float> v(n);
    sim::Rng rng(seed);
    for (float &x : v)
        x = static_cast<float>(rng.gaussian(0.0, 1.0));
    return v;
}

/** Every level this host can run, scalar first. */
const std::vector<IsaLevel> &
levels()
{
    static const std::vector<IsaLevel> all = supportedIsaLevels();
    return all;
}

/**
 * Assert every integer kernel entry point produces the scalar bits
 * at every supported ISA level on @p matrix x @p feature.
 */
void
expectIntegerKernelsAgree(const Int4Matrix &matrix,
                          const Int4Vector &feature,
                          const char *label)
{
    std::vector<std::int16_t> widened;
    matrix.widenFeature(feature, widened);
    const std::size_t rows = matrix.rows();

    // Scalar reference results, computed once.
    std::vector<std::int64_t> raw_ref(rows);
    for (std::size_t r = 0; r < rows; ++r)
        raw_ref[r] =
            matrix.rawDotRowLut(r, widened, IsaLevel::Scalar);
    std::vector<double> lut_ref(rows);
    matrix.dotRowsLut(0, rows, widened, feature.scale,
                      lut_ref.data(), IsaLevel::Scalar);

    for (const IsaLevel isa : levels()) {
        SCOPED_TRACE(std::string(label) + " isa=" + toString(isa));

        // Per-row raw integer dot.
        for (std::size_t r = 0; r < rows; ++r)
            EXPECT_EQ(matrix.rawDotRowLut(r, widened, isa),
                      raw_ref[r])
                << "row " << r;

        // Rescaled row-range kernel, full range and a split range
        // (tiling must be invisible).
        std::vector<double> lut(rows);
        matrix.dotRowsLut(0, rows, widened, feature.scale,
                          lut.data(), isa);
        EXPECT_EQ(lut, lut_ref);
        if (rows >= 3) {
            const std::size_t mid = rows / 3;
            std::vector<double> split(rows);
            matrix.dotRowsLut(0, mid, widened, feature.scale,
                              split.data(), isa);
            matrix.dotRowsLut(mid, rows, widened, feature.scale,
                              split.data() + mid, isa);
            EXPECT_EQ(split, lut_ref);
        }

        // The raw range kernel (the hot screener path) against the
        // per-row calls, only on shapes inside its int32 contract.
        if (matrix.cols() <= kInt32SafeCols && rows > 0
            && isa != IsaLevel::Scalar) {
            std::vector<std::int64_t> range(rows);
            rowDotWidenedRange(matrix.packedRow(0).data(),
                               matrix.bytesPerRow(), rows,
                               widened.data(), matrix.bytesPerRow(),
                               range.data(), isa);
            EXPECT_EQ(range, raw_ref);
        }
    }
}

/**
 * Assert the multi-query batch kernel matches scalar per-query
 * results at every level for query tiles below/at/above the blocking
 * width.
 */
void
expectBatchKernelAgrees(const Int4Matrix &matrix,
                        std::span<const Int4Vector> features,
                        const char *label)
{
    const std::size_t rows = matrix.rows();
    const std::size_t queries = features.size();
    const std::size_t stride = 2 * matrix.bytesPerRow();
    std::vector<std::int16_t> widened(queries * stride, 0);
    std::vector<float> scales(queries);
    std::vector<std::int16_t> one;
    for (std::size_t q = 0; q < queries; ++q) {
        matrix.widenFeature(features[q], one);
        std::copy(one.begin(), one.end(),
                  widened.begin()
                      + static_cast<std::ptrdiff_t>(q * stride));
        scales[q] = features[q].scale;
    }

    std::vector<double> ref(queries * rows);
    matrix.dotRowsBatchLut(0, rows, widened.data(), queries, stride,
                           scales.data(), ref.data(), rows,
                           IsaLevel::Scalar);

    for (const IsaLevel isa : levels()) {
        for (const std::size_t tile : {1ull, 3ull, 8ull, 16ull}) {
            SCOPED_TRACE(std::string(label) + " isa="
                         + toString(isa) + " tile="
                         + std::to_string(tile));
            std::vector<double> out(queries * rows, -1.0);
            matrix.dotRowsBatchLut(0, rows, widened.data(), queries,
                                   stride, scales.data(), out.data(),
                                   rows, isa, tile);
            EXPECT_EQ(out, ref);
        }
    }
}

} // namespace

TEST(KernelsDifferential, RandomShapesAllPairsByteIdentical)
{
    // cols: single, odd, even, just under/over one SIMD register of
    // packed bytes (32 bytes = 64 cols), and wide; rows include a
    // zero-row range via the empty matrix.
    const struct
    {
        std::size_t rows, cols;
    } shapes[] = {{0, 16},  {1, 1},   {17, 1},  {5, 2},
                  {33, 7},  {64, 63}, {64, 64}, {129, 65},
                  {257, 127}, {40, 301}};
    for (const auto &shape : shapes) {
        for (const std::uint64_t seed : {2ull, 23ull, 404ull}) {
            const Int4Matrix matrix(
                randomMatrix(shape.rows, shape.cols, seed));
            const Int4Vector feature = quantizeVector(
                randomVector(shape.cols, seed + 5000));
            const std::string label =
                std::to_string(shape.rows) + "x"
                + std::to_string(shape.cols) + " seed "
                + std::to_string(seed);
            expectIntegerKernelsAgree(matrix, feature,
                                      label.c_str());
        }
    }
}

TEST(KernelsDifferential, SaturatedNibblesAllLevels)
{
    // Alternating extremes quantize to the full +/-7 range — the
    // worst-case per-column accumulator magnitude — at several
    // tail-handling widths.
    for (const std::size_t cols : {15ull, 64ull, 65ull, 130ull}) {
        FloatMatrix source(9, cols);
        for (std::size_t r = 0; r < source.rows(); ++r)
            for (std::size_t c = 0; c < cols; ++c)
                source.at(r, c) =
                    ((r + c) % 2 == 0) ? 100.0f : -100.0f;
        const Int4Matrix matrix(source);
        std::vector<float> spikes(cols);
        for (std::size_t c = 0; c < cols; ++c)
            spikes[c] = (c % 2 == 0) ? -50.0f : 50.0f;
        expectIntegerKernelsAgree(matrix, quantizeVector(spikes),
                                  "saturated");
    }
}

TEST(KernelsDifferential, ZeroRowsAndZeroFeature)
{
    FloatMatrix source(7, 24);
    sim::Rng rng(8);
    // Rows 0, 3, 6 stay all-zero (row scale 0).
    for (const std::size_t r : {1ull, 2ull, 4ull, 5ull})
        for (std::size_t c = 0; c < 24; ++c)
            source.at(r, c) =
                static_cast<float>(rng.gaussian(0.0, 2.0));
    const Int4Matrix matrix(source);
    expectIntegerKernelsAgree(matrix,
                              quantizeVector(randomVector(24, 31)),
                              "zero rows");
    expectIntegerKernelsAgree(
        matrix, quantizeVector(std::vector<float>(24, 0.0f)),
        "zero feature");
}

TEST(KernelsDifferential, BatchKernelAllPairsByteIdentical)
{
    const struct
    {
        std::size_t rows, cols;
    } shapes[] = {{19, 1}, {73, 33}, {64, 64}, {21, 129}};
    for (const auto &shape : shapes) {
        const Int4Matrix matrix(
            randomMatrix(shape.rows, shape.cols, 61));
        for (const std::size_t queries : {1ull, 7ull, 9ull, 19ull}) {
            std::vector<Int4Vector> features;
            for (std::size_t q = 0; q < queries; ++q)
                features.push_back(quantizeVector(
                    randomVector(shape.cols, 700 + 10 * q)));
            const std::string label =
                std::to_string(shape.rows) + "x"
                + std::to_string(shape.cols) + " q"
                + std::to_string(queries);
            expectBatchKernelAgrees(matrix, features,
                                    label.c_str());
        }
    }
}

TEST(KernelsDifferential, Int64FallbackBoundary)
{
    // At exactly kInt32SafeCols columns of all-saturated products the
    // accumulator reaches 49 * cols = 2,147,483,604 — 43 below
    // INT32_MAX, the worst case the int32 SIMD reduction proof in
    // kernels.cc must survive.  One column more and Int4Matrix must
    // route every level to the identical scalar int64 loop.
    for (const std::size_t cols :
         {kInt32SafeCols, kInt32SafeCols + 1}) {
        SCOPED_TRACE("cols " + std::to_string(cols));
        // Built without a FloatMatrix staging copy (cols floats is
        // ~175 MB); all-positive extremes quantize every nibble to +7
        // so every product is +49.
        const Int4Matrix matrix = [cols] {
            FloatMatrix source(1, cols);
            for (std::size_t c = 0; c < cols; ++c)
                source.at(0, c) = 100.0f;
            return Int4Matrix(source);
        }();
        const Int4Vector feature = [cols] {
            std::vector<float> values(cols, 100.0f);
            return quantizeVector(values);
        }();

        std::vector<std::int16_t> widened;
        matrix.widenFeature(feature, widened);
        const std::int64_t expected =
            49 * static_cast<std::int64_t>(cols);
        if (cols > kInt32SafeCols)
            ASSERT_GT(expected, std::int64_t{0x7fffffff});
        else
            ASSERT_LE(expected, std::int64_t{0x7fffffff});

        for (const IsaLevel isa : levels()) {
            SCOPED_TRACE(std::string("isa ") + toString(isa));
            EXPECT_EQ(matrix.rawDotRowLut(0, widened, isa),
                      expected);
            double out = 0.0;
            matrix.dotRowsLut(0, 1, widened, feature.scale, &out,
                              isa);
            EXPECT_EQ(out, static_cast<double>(expected)
                               * matrix.rowScale(0)
                               * feature.scale);
        }
    }
}

TEST(KernelsDifferential, QuantizePackSpanByteIdentical)
{
    // Random values, exact-halfway multiples of the scale (round half
    // away from zero must agree), saturating magnitudes, and the odd
    // final nibble.
    for (const std::size_t n :
         {0ull, 1ull, 7ull, 8ull, 15ull, 64ull, 257ull}) {
        for (const std::uint64_t seed : {3ull, 19ull}) {
            std::vector<float> values = randomVector(n, seed);
            if (n >= 4) {
                values[0] = 0.0f;
                values[1] = -0.0f;
                values[2] = 1000.0f;  // clamps to +7
                values[3] = -1000.0f; // clamps to -7
            }
            const float max_abs =
                maxAbsSpan(values, IsaLevel::Scalar);
            const float scale =
                max_abs / static_cast<float>(int4Max);
            // Force exact halfway points: v = (k + 0.5) * scale.
            if (n >= 6 && scale > 0.0f) {
                values[4] = 2.5f * scale;
                values[5] = -3.5f * scale;
            }
            std::vector<std::uint8_t> ref((n + 1) / 2, 0xee);
            quantizePackSpan(values, scale, ref.data(),
                             IsaLevel::Scalar);
            for (const IsaLevel isa : levels()) {
                SCOPED_TRACE(std::string("n ") + std::to_string(n)
                             + " isa " + toString(isa));
                EXPECT_EQ(maxAbsSpan(values, isa), max_abs);
                std::vector<std::uint8_t> out((n + 1) / 2, 0x11);
                quantizePackSpan(values, scale, out.data(), isa);
                EXPECT_EQ(out, ref);
                // Zero scale (all-zero input) packs all zeros.
                std::vector<std::uint8_t> zero((n + 1) / 2, 0x55);
                quantizePackSpan(values, 0.0f, zero.data(), isa);
                EXPECT_EQ(zero,
                          std::vector<std::uint8_t>((n + 1) / 2, 0));
            }
        }
    }
}

namespace
{

/** Assert both CFP pre-alignments match the scalar reference bits at
 *  every supported level on @p values. */
void
expectPreAlignAgrees(const std::vector<float> &values,
                     const char *label)
{
    const Cfp32Vector ref32 =
        Cfp32Vector::preAlign(values, IsaLevel::Scalar);
    const Cfp16Vector ref16 =
        Cfp16Vector::preAlign(values, IsaLevel::Scalar);
    for (const IsaLevel isa : levels()) {
        SCOPED_TRACE(std::string(label) + " isa=" + toString(isa));
        const Cfp32Vector got32 =
            Cfp32Vector::preAlign(values, isa);
        EXPECT_EQ(got32.sharedExponent(), ref32.sharedExponent());
        EXPECT_EQ(got32.lossyElements(), ref32.lossyElements());
        ASSERT_EQ(got32.size(), ref32.size());
        for (std::size_t i = 0; i < ref32.size(); ++i) {
            EXPECT_EQ(got32[i].sign, ref32[i].sign) << "elem " << i;
            EXPECT_EQ(got32[i].significand, ref32[i].significand)
                << "elem " << i;
        }
        const Cfp16Vector got16 =
            Cfp16Vector::preAlign(values, isa);
        EXPECT_EQ(got16.sharedExponent(), ref16.sharedExponent());
        EXPECT_EQ(got16.lossyElements(), ref16.lossyElements());
        ASSERT_EQ(got16.size(), ref16.size());
        for (std::size_t i = 0; i < ref16.size(); ++i) {
            EXPECT_EQ(got16[i].sign, ref16[i].sign) << "elem " << i;
            EXPECT_EQ(got16[i].significand, ref16[i].significand)
                << "elem " << i;
        }
    }
}

} // namespace

TEST(KernelsDifferential, PreAlignAllPairsByteIdentical)
{
    // Sizes straddle the 8-lane blocking (tail handling) and seeds
    // vary the exponent spread; the mixed-magnitude case pushes
    // alignment gaps past the 31/63-bit shift cliffs.
    for (const std::size_t n :
         {0ull, 1ull, 5ull, 8ull, 9ull, 64ull, 127ull, 513ull}) {
        for (const std::uint64_t seed : {11ull, 87ull}) {
            std::vector<float> values = randomVector(n, seed);
            expectPreAlignAgrees(values,
                                 ("gauss n=" + std::to_string(n))
                                     .c_str());
            if (n >= 8) {
                // Denormals flush, zeros of both signs, huge spread.
                values[0] = 0.0f;
                values[1] = -0.0f;
                values[2] = 1e-40f;
                values[3] = -1e-40f;
                values[4] = 3.4e38f;
                values[5] = 1.4e-45f;
                values[6] = -65504.0f;
                values[7] = 1.0f + 0x1p-23f; // lossy tail bit
                expectPreAlignAgrees(values,
                                     ("edge n=" + std::to_string(n))
                                         .c_str());
            }
        }
    }
    // All-zero vector: shared exponent 0, nothing lossy.
    expectPreAlignAgrees(std::vector<float>(33, 0.0f), "all-zero");
    // Exact powers of two with gaps <= the compensation width stay
    // lossless; a 40-binade spread forces total shift-out.
    std::vector<float> spread;
    for (int e = -20; e <= 20; ++e)
        spread.push_back(std::ldexp(1.0f, e));
    expectPreAlignAgrees(spread, "binade spread");
}

TEST(KernelsDifferential, ProjectGemvBitIdentical)
{
    // The projection GEMV accumulates per output in ascending-d
    // order; every level must produce the double-accumulated scalar
    // bits exactly.
    const struct
    {
        std::size_t full, shrunk;
    } shapes[] = {{1, 1}, {9, 3}, {64, 16}, {100, 33}, {128, 64}};
    for (const auto &shape : shapes) {
        const std::vector<float> basisT =
            randomVector(shape.full * shape.shrunk, 17);
        const std::vector<float> vec =
            randomVector(shape.full, 23);
        std::vector<float> ref(shape.shrunk, -1.0f);
        projectGemv(basisT, shape.full, shape.shrunk, vec,
                    ref.data(), IsaLevel::Scalar);
        for (const IsaLevel isa : levels()) {
            SCOPED_TRACE(std::string("shape ")
                         + std::to_string(shape.full) + "x"
                         + std::to_string(shape.shrunk) + " isa "
                         + toString(isa));
            std::vector<float> out(shape.shrunk, 2.0f);
            projectGemv(basisT, shape.full, shape.shrunk, vec,
                        out.data(), isa);
            ASSERT_EQ(out.size(), ref.size());
            for (std::size_t k = 0; k < ref.size(); ++k) {
                // Bit comparison — EXPECT_EQ would treat -0.0 == 0.0
                // and NaN != NaN.
                std::uint32_t a = 0, b = 0;
                std::memcpy(&a, &out[k], sizeof(a));
                std::memcpy(&b, &ref[k], sizeof(b));
                EXPECT_EQ(a, b) << "output " << k;
            }
        }
    }
}

TEST(KernelsDifferential, PairwiseDotMatchesNaiveFpMacEveryLevel)
{
    for (const std::size_t n : {0ull, 1ull, 2ull, 3ull, 7ull, 8ull,
                                9ull, 64ull, 100ull, 1000ull}) {
        const std::vector<float> a = randomVector(n, 41 + n);
        const std::vector<float> b = randomVector(n, 43 + n);
        const double ref = NaiveFpMac::dot(a, b).value;
        for (const IsaLevel isa : levels()) {
            SCOPED_TRACE(std::string("n ") + std::to_string(n)
                         + " isa " + toString(isa));
            const double got = pairwiseDotF32(a, b, isa);
            std::uint64_t ga = 0, gb = 0;
            std::memcpy(&ga, &got, sizeof(ga));
            std::memcpy(&gb, &ref, sizeof(gb));
            EXPECT_EQ(ga, gb);
        }
    }
}

TEST(KernelsDifferential, Fp32CheckedInGolden)
{
    // Platform-independent inputs (pure integer arithmetic, no libm)
    // against checked-in goldens.  Tolerance contract: the current
    // kernels replicate the scalar pairwise tree exactly, so the
    // comparison is bit-exact; a future reassociating FP32 kernel
    // must stay within |rel err| <= 1e-6 of these values AND declare
    // itself by loosening this test (docs/MODELING.md §14).
    std::vector<float> a(96), b(96);
    for (std::size_t i = 0; i < a.size(); ++i) {
        const std::uint32_t ha =
            static_cast<std::uint32_t>(i * 2654435761u);
        const std::uint32_t hb =
            static_cast<std::uint32_t>((i + 57) * 2246822519u);
        a[i] = static_cast<float>(static_cast<int>(ha % 2001) - 1000)
            / 256.0f;
        b[i] = static_cast<float>(static_cast<int>(hb % 2001) - 1000)
            / 256.0f;
    }
    const double golden = 75.238372802734375;
    for (const IsaLevel isa : levels()) {
        SCOPED_TRACE(std::string("isa ") + toString(isa));
        EXPECT_NEAR(pairwiseDotF32(a, b, isa), golden,
                    std::abs(golden) * 1e-6);
        // And today's exact contract.
        EXPECT_EQ(pairwiseDotF32(a, b, isa),
                  pairwiseDotF32(a, b, IsaLevel::Scalar));
    }

    // Integer golden on the same inputs, quantized: exact at every
    // level by construction.
    const Int4Vector qa = quantizeVector(a);
    FloatMatrix m(1, b.size());
    for (std::size_t c = 0; c < b.size(); ++c)
        m.at(0, c) = b[c];
    const Int4Matrix matrix(m);
    std::vector<std::int16_t> widened;
    matrix.widenFeature(qa, widened);
    const std::int64_t int_golden = 230;
    for (const IsaLevel isa : levels())
        EXPECT_EQ(matrix.rawDotRowLut(0, widened, isa), int_golden)
            << toString(isa);
}
