/**
 * @file
 * Unit and statistical tests of the deterministic RNG.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include "sim/rng.hh"

using namespace ecssd::sim;

TEST(Rng, SameSeedSameSequence)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int differing = 0;
    for (int i = 0; i < 32; ++i)
        differing += a.next() != b.next();
    EXPECT_GT(differing, 28);
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanIsHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(13);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntCoversAllResidues)
{
    Rng rng(17);
    std::map<std::uint64_t, int> counts;
    for (int i = 0; i < 7000; ++i)
        ++counts[rng.uniformInt(std::uint64_t(7))];
    EXPECT_EQ(counts.size(), 7u);
    for (const auto &[value, count] : counts) {
        EXPECT_LT(value, 7u);
        EXPECT_GT(count, 700);
    }
}

TEST(Rng, UniformIntInclusiveRange)
{
    Rng rng(19);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const std::int64_t v = rng.uniformInt(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        saw_lo |= v == -2;
        saw_hi |= v == 2;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, GaussianMomentsMatch)
{
    Rng rng(23);
    double sum = 0.0, sum_sq = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        const double g = rng.gaussian();
        sum += g;
        sum_sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, GaussianScaleAndShift)
{
    Rng rng(29);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.gaussian(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ZipfStaysInSupport)
{
    Rng rng(31);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.zipf(100, 1.0), 100u);
}

TEST(Rng, ZipfSingletonSupport)
{
    Rng rng(37);
    EXPECT_EQ(rng.zipf(1, 1.2), 0u);
}

TEST(Rng, ZipfHeadIsHeavierThanTail)
{
    Rng rng(41);
    int head = 0, tail = 0;
    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t k = rng.zipf(1000, 1.0);
        if (k < 10)
            ++head;
        if (k >= 500)
            ++tail;
    }
    EXPECT_GT(head, tail * 2);
}

TEST(Rng, ZipfZeroSkewIsUniform)
{
    Rng rng(43);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += static_cast<double>(rng.zipf(100, 0.0));
    EXPECT_NEAR(sum / n, 49.5, 1.5);
}

TEST(Rng, ZipfAlternatingParamsStayInSupport)
{
    // Exercises the cached-harmonic invalidation path.
    Rng rng(47);
    for (int i = 0; i < 2000; ++i) {
        EXPECT_LT(rng.zipf(50, 0.8), 50u);
        EXPECT_LT(rng.zipf(500, 1.2), 500u);
    }
}

TEST(Rng, PermutationIsBijective)
{
    Rng rng(53);
    std::vector<std::uint32_t> perm = rng.permutation(1000);
    std::sort(perm.begin(), perm.end());
    for (std::uint32_t i = 0; i < 1000; ++i)
        EXPECT_EQ(perm[i], i);
}

TEST(Rng, PermutationActuallyShuffles)
{
    Rng rng(59);
    const std::vector<std::uint32_t> perm = rng.permutation(1000);
    int fixed_points = 0;
    for (std::uint32_t i = 0; i < 1000; ++i)
        fixed_points += perm[i] == i;
    EXPECT_LT(fixed_points, 20);
}

TEST(Rng, ShuffleKeepsElements)
{
    Rng rng(61);
    std::vector<int> values{1, 2, 3, 4, 5, 6};
    rng.shuffle(values);
    std::sort(values.begin(), values.end());
    EXPECT_EQ(values, (std::vector<int>{1, 2, 3, 4, 5, 6}));
}
