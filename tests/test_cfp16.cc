/**
 * @file
 * CFP16 extension tests: round-trip precision, dot accuracy,
 * classifier ranking fidelity, the halved fetch traffic in the
 * pipeline, and the smaller MAC.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuit/mac_circuit.hh"
#include "ecssd/system.hh"
#include "numeric/cfp16.hh"
#include "numeric/mac.hh"
#include "sim/rng.hh"
#include "xclass/metrics.hh"
#include "xclass/screening.hh"

using namespace ecssd;
using namespace ecssd::numeric;

TEST(Cfp16, SingleValueWithinHalfPrecision)
{
    const std::vector<float> values{3.14159f};
    const Cfp16Vector v = Cfp16Vector::preAlign(values);
    EXPECT_NEAR(v.toFloat(0), 3.14159f, 3.14159f * 1e-3f);
}

TEST(Cfp16, RoundTripErrorBoundedByMantissaWidth)
{
    // FP16-class: relative error <= 2^-11 for values within the
    // compensation window.
    sim::Rng rng(1);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<float> values(32);
        for (float &v : values)
            v = static_cast<float>(rng.gaussian(0.0, 0.05));
        const Cfp16Vector v = Cfp16Vector::preAlign(values);
        for (std::size_t i = 0; i < values.size(); ++i) {
            if (values[i] == 0.0f)
                continue;
            const std::uint32_t gap = v.sharedExponent()
                - decompose(values[i]).exponent;
            if (gap > 4)
                continue; // beyond the compensation window
            EXPECT_NEAR(v.toFloat(i), values[i],
                        std::fabs(values[i]) * 0x1.0p-11f
                            + 1e-12f);
        }
    }
}

TEST(Cfp16, ZerosAndSigns)
{
    const std::vector<float> values{0.0f, -2.0f, 2.0f, -0.0f};
    const Cfp16Vector v = Cfp16Vector::preAlign(values);
    EXPECT_EQ(v.toFloat(0), 0.0f);
    EXPECT_LT(v.toFloat(1), 0.0f);
    EXPECT_GT(v.toFloat(2), 0.0f);
}

TEST(Cfp16, RoundingCarryRenormalizes)
{
    // A significand that rounds up to 2.0 must not overflow the
    // field (the bug class the two-pass pre-alignment prevents).
    const float nearly_two = bitsToFloat(
        floatToBits(2.0f) - 1); // largest value below 2.0
    const std::vector<float> values{nearly_two, 1.0f};
    const Cfp16Vector v = Cfp16Vector::preAlign(values);
    EXPECT_NEAR(v.toFloat(0), 2.0f, 2.0f * 0x1.0p-11f);
    EXPECT_NEAR(v.toFloat(1), 1.0f, 1.0f * 0x1.0p-10f);
}

TEST(Cfp16, DotTracksReference)
{
    sim::Rng rng(2);
    std::vector<float> a(1024), b(1024);
    for (std::size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<float>(rng.gaussian(0.0, 0.05));
        b[i] = static_cast<float>(rng.gaussian(0.0, 0.05));
    }
    const double reference = referenceDot(a, b);
    const Cfp16DotResult r = alignmentFreeDot16(
        Cfp16Vector::preAlign(a), Cfp16Vector::preAlign(b));
    EXPECT_EQ(r.multiplies, 1024u);
    // FP16-class dot: a few tenths of a percent on unit-scale sums.
    EXPECT_NEAR(r.value, reference,
                5e-3 * std::max(1.0, std::fabs(reference)) + 5e-3);
}

TEST(Cfp16, StorageIsHalfOfCfp32)
{
    std::vector<float> values(256, 1.0f);
    const Cfp16Vector half = Cfp16Vector::preAlign(values);
    const Cfp32Vector full = Cfp32Vector::preAlign(values);
    EXPECT_EQ(half.storageBytes(), 256u * 2u + 1u);
    EXPECT_LT(half.storageBytes(), full.storageBytes());
}

TEST(Cfp16, ClassifierRankingSurvivesHalfPrecision)
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 1024);
    spec.hiddenDim = 256;
    const xclass::SyntheticModel model(spec, 3);
    const xclass::ApproximateClassifier classifier(
        model.weights(), spec, 4, &model.basis());
    sim::Rng rng(5);
    double agreement = 0.0;
    const int queries = 8;
    for (int q = 0; q < queries; ++q) {
        const std::vector<float> query = model.sampleQuery(rng);
        const auto full = classifier.predict(
            query, 5, xclass::FilterMode::TopRatio,
            xclass::CandidateClassifier::Datapath::
                Cfp32AlignmentFree);
        const auto half = classifier.predict(
            query, 5, xclass::FilterMode::TopRatio,
            xclass::CandidateClassifier::Datapath::
                Cfp16AlignmentFree);
        agreement += xclass::recall(full.topCategories,
                                    half.topCategories);
    }
    EXPECT_GE(agreement / queries, 0.85);
}

TEST(Cfp16, PipelineFetchesHalfThePages)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 16384);
    EcssdOptions full32 = EcssdOptions::full();
    EcssdOptions half16 = EcssdOptions::full();
    half16.weightPrecision = accel::WeightPrecision::Cfp16;

    EcssdSystem a(spec, full32);
    EcssdSystem b(spec, half16);
    const accel::RunResult r32 = a.runInference(1);
    const accel::RunResult r16 = b.runInference(1);
    // D = 1024: CFP32 rows fill a page; CFP16 rows share pages two
    // to one, and candidates are sparse, so page count roughly
    // halves only for adjacent candidates -- but bytes per fetched
    // row halve exactly when rows pack.
    EXPECT_LT(r16.batches[0].fp32PagesRead,
              r32.batches[0].fp32PagesRead);
    EXPECT_LT(r16.totalTime, r32.totalTime);
}

TEST(Cfp16, MacIsMuchSmallerThanCfp32Mac)
{
    const double half = circuit::cfp16Mac().areaUm2();
    const double full =
        circuit::alignmentFreeFp32Mac().areaUm2();
    EXPECT_LT(half * 2.5, full);
}
