/**
 * @file
 * Overload-control tests: queue-delay admission, class-aware
 * shedding with Gold eviction (the priority-inversion regression),
 * the hysteresis-guarded brownout ladder and its guaranteed
 * recovery, deadline-slack dynamic batching, the queue-depth
 * high-watermark gauge, retry-backoff jitter, and the routed
 * scale-out front-end (replica balancing + hedged requests).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "ecssd/scale_out.hh"
#include "ecssd/server.hh"
#include "sim/rng.hh"
#include "sim/traffic.hh"
#include "xclass/metrics.hh"

using namespace ecssd;

namespace
{

struct OverloadFixture
{
    OverloadFixture(const ServerConfig &config = ServerConfig{},
                    const EcssdOptions &options = EcssdOptions::full())
        : spec(makeSpec()), model(spec, 1),
          server(model.weights(), spec, options, &model.basis(),
                 config)
    {
    }

    static xclass::BenchmarkSpec
    makeSpec()
    {
        xclass::BenchmarkSpec spec = xclass::scaledDown(
            xclass::benchmarkByName("GNMT-E32K"), 1024);
        spec.hiddenDim = 128;
        spec.batchSize = 4;
        return spec;
    }

    std::vector<float>
    query(std::uint64_t seed)
    {
        sim::Rng rng(seed);
        return model.sampleQuery(rng);
    }

    xclass::BenchmarkSpec spec;
    xclass::SyntheticModel model;
    InferenceServer server;
};

std::vector<std::vector<float>>
queryPool(const xclass::SyntheticModel &model, int count)
{
    std::vector<std::vector<float>> queries;
    sim::Rng rng(17);
    for (int q = 0; q < count; ++q)
        queries.push_back(model.sampleQuery(rng));
    return queries;
}

} // namespace

TEST(Admission, QueueDelayTargetShedsOnceServiceTimeIsKnown)
{
    ServerConfig config;
    config.admissionTargetDelay = sim::microseconds(1.0);
    OverloadFixture f(config);

    // Before any batch is served the service-time EWMA is unknown,
    // so delay-based admission stays open.
    for (int i = 0; i < 4; ++i)
        f.server.enqueue(f.query(100 + i));
    EXPECT_EQ(f.server.serverStats().admissionSheds, 0u);
    f.server.processAll(3);

    // Now the EWMA is measured and far above the 1us target: a deep
    // backlog of BestEffort arrivals sheds at the door.
    const sim::Tick now = f.server.deviceTime();
    for (int i = 0; i < 32; ++i)
        f.server.enqueueAt(f.query(200 + i), now,
                           sim::RequestClass::BestEffort);
    const ServerStats &stats = f.server.serverStats();
    EXPECT_GT(stats.admissionSheds, 0u);
    EXPECT_EQ(stats.shedBestEffort, stats.shedRequests);
    // Gold rides the deeper bound: with BestEffort queued it is
    // admitted by eviction rather than shed.
    const std::uint64_t gold_sheds_before = stats.shedGold;
    f.server.enqueueAt(f.query(999), now, sim::RequestClass::Gold);
    EXPECT_EQ(f.server.serverStats().shedGold, gold_sheds_before);
    f.server.processAll(3);
}

TEST(Admission, GoldEvictsYoungestBestEffortAtAFullQueue)
{
    ServerConfig config;
    config.queueCapacity = 6;
    OverloadFixture f(config);

    std::vector<InferenceServer::RequestId> best_effort;
    for (int i = 0; i < 6; ++i)
        best_effort.push_back(f.server.enqueueAt(
            f.query(300 + i), 0, sim::RequestClass::BestEffort));
    ASSERT_EQ(f.server.pending(), 6u);

    // Two Gold arrivals at the full queue: each reclaims the
    // youngest queued BestEffort slot.
    const auto gold_a =
        f.server.enqueueAt(f.query(400), 0, sim::RequestClass::Gold);
    const auto gold_b =
        f.server.enqueueAt(f.query(401), 0, sim::RequestClass::Gold);
    EXPECT_EQ(f.server.pending(), 6u);
    EXPECT_EQ(f.server.serverStats().evictedBestEffort, 2u);
    EXPECT_EQ(f.server.serverStats().shedGold, 0u);

    const auto responses = f.server.processAll(3);
    std::set<InferenceServer::RequestId> shed;
    std::set<InferenceServer::RequestId> served;
    for (const auto &response : responses) {
        if (response.status == InferenceServer::Response::Status::Shed)
            shed.insert(response.id);
        else
            served.insert(response.id);
    }
    // The two youngest BestEffort ids paid for the Gold admissions;
    // both Gold requests were served.  Gold shed while BestEffort
    // from the same window is served would be a priority inversion.
    EXPECT_EQ(shed,
              (std::set<InferenceServer::RequestId>{
                  best_effort[4], best_effort[5]}));
    EXPECT_TRUE(served.count(gold_a));
    EXPECT_TRUE(served.count(gold_b));
}

TEST(Admission, PriorityInversionRegression)
{
    // Mixed-class flood into a bounded queue: no Gold request may be
    // shed while a BestEffort request admitted in the same window is
    // served.
    ServerConfig config;
    config.queueCapacity = 8;
    OverloadFixture f(config);

    std::set<InferenceServer::RequestId> gold_ids;
    std::set<InferenceServer::RequestId> best_ids;
    for (int i = 0; i < 24; ++i) {
        const bool gold = i % 3 == 0;
        const auto id = f.server.enqueueAt(
            f.query(500 + i), 0,
            gold ? sim::RequestClass::Gold
                 : sim::RequestClass::BestEffort);
        (gold ? gold_ids : best_ids).insert(id);
    }
    const auto responses = f.server.processAll(3);
    std::set<InferenceServer::RequestId> shed_gold;
    std::set<InferenceServer::RequestId> served_best;
    for (const auto &response : responses) {
        const bool is_shed =
            response.status == InferenceServer::Response::Status::Shed;
        if (is_shed && gold_ids.count(response.id))
            shed_gold.insert(response.id);
        if (!is_shed && best_ids.count(response.id))
            served_best.insert(response.id);
    }
    EXPECT_TRUE(shed_gold.empty() || served_best.empty())
        << shed_gold.size() << " Gold shed while "
        << served_best.size() << " BestEffort served";
    EXPECT_TRUE(shed_gold.empty());
}

TEST(Brownout, LadderDegradesUnderSustainedOverloadAndRecovers)
{
    ServerConfig config;
    config.brownout.enterDelay = sim::microseconds(200.0);
    config.brownout.exitDelay = sim::microseconds(100.0);
    config.brownout.recoveryGuard = sim::microseconds(50.0);
    OverloadFixture f(config);
    const auto queries = queryPool(f.model, 32);

    sim::TrafficConfig traffic;
    traffic.process = sim::ArrivalProcess::BurstySpike;
    traffic.ratePerSecond = 50000.0;
    traffic.burstRateMultiplier = 10.0;
    traffic.goldFraction = 0.2;
    traffic.seed = 3;
    sim::TrafficEngine engine(traffic);

    const auto responses = f.server.runTraffic(engine, 3000, queries, 5);
    const ServerStats &stats = f.server.serverStats();

    // The flood drove the ladder down (transitions happened, cheap
    // rungs served requests, the Shed rung rejected BestEffort)...
    EXPECT_GT(stats.brownoutTransitions, 0u);
    EXPECT_GT(stats.servedScreenerOnly, 0u);
    EXPECT_GT(stats.brownoutSheds, 0u);
    EXPECT_GT(f.server.brownoutDwell(BrownoutLevel::ScreenerOnly),
              0u);
    // ... and every shed was BestEffort: the default goldFloor means
    // the ladder never sheds Gold.
    EXPECT_EQ(stats.shedGold, 0u);
    for (const auto &response : responses) {
        if (response.cls == sim::RequestClass::Gold)
            EXPECT_NE(response.status,
                      InferenceServer::Response::Status::Shed);
    }
    // Terminal steady state: queue empty, ladder recovered to Full.
    EXPECT_EQ(f.server.pending(), 0u);
    EXPECT_EQ(f.server.brownoutLevel(), BrownoutLevel::Full);
    // Exactly one terminal response per arrival.
    EXPECT_EQ(responses.size(), 3000u);
    std::set<InferenceServer::RequestId> ids;
    for (const auto &response : responses)
        ids.insert(response.id);
    EXPECT_EQ(ids.size(), responses.size());
}

TEST(Brownout, DisabledLadderNeverLeavesFull)
{
    OverloadFixture f;
    const auto queries = queryPool(f.model, 16);
    sim::TrafficConfig traffic;
    traffic.ratePerSecond = 50000.0;
    traffic.seed = 5;
    sim::TrafficEngine engine(traffic);
    f.server.runTraffic(engine, 500, queries, 5);
    EXPECT_EQ(f.server.brownoutLevel(), BrownoutLevel::Full);
    EXPECT_EQ(f.server.serverStats().brownoutTransitions, 0u);
    EXPECT_EQ(f.server.serverStats().servedScreenerOnly, 0u);
}

TEST(Brownout, ReducedCandidatesCapsTheCandidateBudget)
{
    ServerConfig config;
    // enterDelay of one tick: the very first served batch (sojourn >
    // 1 tick) walks the ladder down a rung, so the second batch is
    // served at ReducedCandidates.
    config.brownout.enterDelay = 1;
    config.brownout.recoveryGuard = sim::seconds(1000.0);
    config.brownout.reducedCandidateFraction = 0.25;
    OverloadFixture f(config);

    for (int i = 0; i < 8; ++i)
        f.server.enqueueAt(f.query(600 + i), 0,
                           sim::RequestClass::BestEffort);
    const auto responses = f.server.processAll(5);
    std::size_t full_candidates = 0;
    std::size_t reduced_candidates = 0;
    for (const auto &response : responses) {
        if (response.servedAt == BrownoutLevel::Full)
            full_candidates = std::max(
                full_candidates, response.prediction.candidateCount);
        if (response.servedAt == BrownoutLevel::ReducedCandidates)
            reduced_candidates = std::max(
                reduced_candidates,
                response.prediction.candidateCount);
    }
    ASSERT_GT(full_candidates, 0u);
    ASSERT_GT(reduced_candidates, 0u);
    // The capped budget is the configured fraction of the full one.
    EXPECT_LE(reduced_candidates,
              static_cast<std::size_t>(
                  static_cast<double>(full_candidates) * 0.25 + 1));
}

TEST(Batching, DeadlineSlackClosesPartialBatchesInTime)
{
    // Sparse arrivals with a generous batch-wait window but a tight
    // deadline: the slack rule must close batches early enough that
    // waiting never times a request out.
    ServerConfig config;
    config.batchMaxWait = sim::seconds(10.0);
    config.requestDeadline = sim::microseconds(2000.0);
    OverloadFixture f(config);
    const auto queries = queryPool(f.model, 16);

    sim::TrafficConfig traffic;
    traffic.ratePerSecond = 300.0; // far below one batch per window
    traffic.seed = 9;
    sim::TrafficEngine engine(traffic);
    const auto responses = f.server.runTraffic(engine, 400, queries, 5);
    EXPECT_EQ(responses.size(), 400u);
    std::uint64_t timed_out = 0;
    for (const auto &response : responses)
        timed_out += response.status
                == InferenceServer::Response::Status::TimedOut
            ? 1
            : 0;
    // Without the slack rule every partial batch would wait 10s and
    // every request would miss the 2ms deadline.
    EXPECT_LT(timed_out, 40u);
}

TEST(Gauges, QueueDepthHighWatermarkTracksThePeak)
{
    OverloadFixture f;
    for (int i = 0; i < 9; ++i)
        f.server.enqueue(f.query(700 + i));
    EXPECT_EQ(f.server.serverStats().queueDepthHwm, 9u);
    f.server.processAll(3);
    // Draining does not lower the high watermark...
    EXPECT_EQ(f.server.serverStats().queueDepthHwm, 9u);
    // ... and a smaller second wave does not move it.
    for (int i = 0; i < 3; ++i)
        f.server.enqueue(f.query(800 + i));
    EXPECT_EQ(f.server.serverStats().queueDepthHwm, 9u);
    f.server.processAll(3);

    sim::MetricsRegistry registry;
    f.server.publishMetrics(registry);
    EXPECT_EQ(registry.gauge("server.queue_depth_hwm").value(), 9.0);
}

TEST(RetryJitter, ZeroFractionIsBitIdenticalAndSeedInsensitive)
{
    EcssdOptions flaky = EcssdOptions::full();
    flaky.ssd.uncorrectableReadRate = 0.05;
    flaky.degradedPolicy = accel::DegradedReadPolicy::FailBatch;

    ServerConfig a;
    a.maxBatchRetries = 2;
    ServerConfig b = a;
    b.retryJitterSeed = 999; // must be irrelevant at fraction 0

    OverloadFixture fa(a, flaky);
    OverloadFixture fb(b, flaky);
    for (int i = 0; i < 16; ++i) {
        fa.server.enqueue(fa.query(900 + i));
        fb.server.enqueue(fb.query(900 + i));
    }
    const auto ra = fa.server.processAll(3);
    const auto rb = fb.server.processAll(3);
    ASSERT_GT(fa.server.serverStats().batchRetries, 0u);
    ASSERT_EQ(ra.size(), rb.size());
    for (std::size_t i = 0; i < ra.size(); ++i)
        EXPECT_EQ(ra[i].completedAt, rb[i].completedAt);
}

TEST(RetryJitter, JitterPerturbsTheBackoffSchedule)
{
    EcssdOptions flaky = EcssdOptions::full();
    flaky.ssd.uncorrectableReadRate = 0.05;
    flaky.degradedPolicy = accel::DegradedReadPolicy::FailBatch;

    ServerConfig plain;
    plain.maxBatchRetries = 2;
    ServerConfig jittered = plain;
    jittered.retryJitterFraction = 0.5;

    OverloadFixture fp(plain, flaky);
    OverloadFixture fj(jittered, flaky);
    for (int i = 0; i < 16; ++i) {
        fp.server.enqueue(fp.query(900 + i));
        fj.server.enqueue(fj.query(900 + i));
    }
    const auto rp = fp.server.processAll(3);
    const auto rj = fj.server.processAll(3);
    ASSERT_GT(fp.server.serverStats().batchRetries, 0u);
    ASSERT_EQ(rp.size(), rj.size());
    bool diverged = false;
    for (std::size_t i = 0; i < rp.size(); ++i)
        diverged |= rp[i].completedAt != rj[i].completedAt;
    EXPECT_TRUE(diverged);
    // Jitter re-times retries; it never changes outcomes.
    for (std::size_t i = 0; i < rp.size(); ++i)
        EXPECT_EQ(rp[i].prediction.topCategories,
                  rj[i].prediction.topCategories);
}

TEST(RoutedFleet, ReplicasAbsorbBacklogAndCutTheTail)
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 2048);
    spec.hiddenDim = 128;

    // One arrival burst far above a single replica's service rate.
    const auto arrivals = [] {
        std::vector<sim::Tick> at;
        for (int i = 0; i < 64; ++i)
            at.push_back(sim::microseconds(10.0)
                         * static_cast<sim::Tick>(i));
        return at;
    }();

    ScaleOutEcssd single(spec, 2);
    RoutingConfig one;
    one.replicasPerShard = 1;
    const RoutedServeResult r1 = single.serveRouted(arrivals, one);

    ScaleOutEcssd replicated(spec, 2);
    RoutingConfig three;
    three.replicasPerShard = 3;
    const RoutedServeResult r3 =
        replicated.serveRouted(arrivals, three);

    EXPECT_EQ(r1.requests, 64u);
    EXPECT_EQ(r3.requests, 64u);
    // Same offered load over 3x the read capacity: the backlog peak
    // and the tail latency both drop.
    EXPECT_LT(r3.maxReplicaBacklog, r1.maxReplicaBacklog);
    EXPECT_LT(r3.latencyMs.p99(), r1.latencyMs.p99());
    EXPECT_LT(r3.makespan, r1.makespan);
}

TEST(RoutedFleet, HedgesFireOnLateSubRequestsAndWin)
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 2048);
    spec.hiddenDim = 128;

    std::vector<sim::Tick> arrivals;
    for (int i = 0; i < 48; ++i)
        arrivals.push_back(sim::microseconds(5.0)
                           * static_cast<sim::Tick>(i));

    ScaleOutEcssd fleet(spec, 2);
    RoutingConfig routing;
    routing.replicasPerShard = 2;
    routing.hedgeDelay = sim::microseconds(50.0);
    const RoutedServeResult hedged =
        fleet.serveRouted(arrivals, routing);
    EXPECT_GT(hedged.hedgesIssued, 0u);
    // First response wins: a hedge win means the duplicate beat the
    // primary, and wins never exceed issues.
    EXPECT_LE(hedged.hedgeWins, hedged.hedgesIssued);
    EXPECT_EQ(hedged.subRequests,
              2 * hedged.requests + hedged.hedgesIssued);

    sim::MetricsRegistry registry;
    fleet.publishRoutedMetrics(registry, hedged);
    EXPECT_EQ(registry.gauge("fleet.routed.requests").value(), 48.0);
    EXPECT_EQ(registry.gauge("fleet.routed.hedges_issued").value(),
              static_cast<double>(hedged.hedgesIssued));
}

TEST(RoutedFleet, ScheduleIsDeterministic)
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 2048);
    spec.hiddenDim = 128;
    std::vector<sim::Tick> arrivals;
    for (int i = 0; i < 32; ++i)
        arrivals.push_back(sim::microseconds(7.0)
                           * static_cast<sim::Tick>(i));
    RoutingConfig routing;
    routing.replicasPerShard = 2;
    routing.hedgeDelay = sim::microseconds(40.0);

    ScaleOutEcssd a(spec, 2);
    ScaleOutEcssd b(spec, 2);
    const RoutedServeResult ra = a.serveRouted(arrivals, routing);
    const RoutedServeResult rb = b.serveRouted(arrivals, routing);
    EXPECT_EQ(ra.makespan, rb.makespan);
    EXPECT_EQ(ra.subRequests, rb.subRequests);
    EXPECT_EQ(ra.hedgesIssued, rb.hedgesIssued);
    EXPECT_EQ(ra.hedgeWins, rb.hedgeWins);
    EXPECT_EQ(ra.maxReplicaBacklog, rb.maxReplicaBacklog);
}
