/**
 * @file
 * NVMe multi-queue front-end tests: queue discipline, depth limits,
 * arbitration fairness, multi-page commands, and trim.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "ssdsim/nvme.hh"

using namespace ecssd;
using namespace ecssd::ssdsim;

namespace
{

struct NvmeFixture
{
    NvmeFixture(unsigned pairs = 2, unsigned depth = 8,
                unsigned sq_size = 1024)
        : device(smallTestConfig(), queue),
          controller(device, pairs, depth, sq_size)
    {
    }

    sim::EventQueue queue;
    SsdDevice device;
    NvmeController controller;
};

} // namespace

TEST(Nvme, WriteThenReadCompletes)
{
    NvmeFixture f;
    EXPECT_TRUE(f.controller.submit(
        0, NvmeCommand{NvmeOpcode::Write, 0, 1, 100}));
    f.controller.drain();
    EXPECT_TRUE(f.controller.submit(
        0, NvmeCommand{NvmeOpcode::Read, 0, 1, 101}));
    f.controller.drain();

    const auto completions = f.controller.pollCompletions(0);
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_EQ(completions[0].commandId, 100u);
    EXPECT_TRUE(completions[0].success);
    EXPECT_EQ(completions[1].commandId, 101u);
    EXPECT_TRUE(completions[1].success);
    EXPECT_GT(completions[1].completedAt,
              completions[0].completedAt);
}

TEST(Nvme, ReadOfUnwrittenPageFails)
{
    NvmeFixture f;
    EXPECT_TRUE(f.controller.submit(
        0, NvmeCommand{NvmeOpcode::Read, 42, 1, 7}));
    f.controller.drain();
    const auto completions = f.controller.pollCompletions(0);
    ASSERT_EQ(completions.size(), 1u);
    EXPECT_FALSE(completions[0].success);
}

TEST(Nvme, SubmissionRingLimitsAcceptance)
{
    NvmeFixture f(1, 4, /*sq_size=*/4);
    int accepted = 0;
    for (std::uint64_t i = 0; i < 20; ++i)
        accepted += f.controller.submit(
            0, NvmeCommand{NvmeOpcode::Write, i, 1, i});
    // 4 pulled in flight + 4 waiting in the ring at most.
    EXPECT_LE(accepted, 8);
    EXPECT_GT(f.controller.queueStats(0).rejectedFull, 0u);
    f.controller.drain();
    EXPECT_EQ(f.controller.queueStats(0).completed,
              static_cast<std::uint64_t>(accepted));
}

TEST(Nvme, MultiPageCommandTouchesAllPages)
{
    NvmeFixture f;
    EXPECT_TRUE(f.controller.submit(
        0, NvmeCommand{NvmeOpcode::Write, 10, 8, 1}));
    f.controller.drain();
    for (LogicalPage lpa = 10; lpa < 18; ++lpa)
        EXPECT_TRUE(f.device.ftl().translate(lpa).has_value())
            << "lpa " << lpa;
    // A multi-page read over the same range succeeds.
    EXPECT_TRUE(f.controller.submit(
        0, NvmeCommand{NvmeOpcode::Read, 10, 8, 2}));
    f.controller.drain();
    const auto completions = f.controller.pollCompletions(0);
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_TRUE(completions[1].success);
}

TEST(Nvme, TrimUnmapsRange)
{
    NvmeFixture f;
    f.controller.submit(0, NvmeCommand{NvmeOpcode::Write, 0, 4, 1});
    f.controller.drain();
    f.controller.submit(0, NvmeCommand{NvmeOpcode::Trim, 0, 4, 2});
    f.controller.drain();
    for (LogicalPage lpa = 0; lpa < 4; ++lpa)
        EXPECT_FALSE(f.device.ftl().translate(lpa).has_value());
}

TEST(Nvme, RoundRobinServesBothQueues)
{
    NvmeFixture f(2, 64);
    for (std::uint64_t i = 0; i < 16; ++i) {
        f.controller.submit(
            0, NvmeCommand{NvmeOpcode::Write, i, 1, i});
        f.controller.submit(
            1, NvmeCommand{NvmeOpcode::Write, 100 + i, 1, 100 + i});
    }
    f.controller.drain();
    EXPECT_EQ(f.controller.queueStats(0).completed, 16u);
    EXPECT_EQ(f.controller.queueStats(1).completed, 16u);
    // Fairness: per-queue mean latencies are within 2x.
    const double l0 = f.controller.queueStats(0).meanLatencyUs();
    const double l1 = f.controller.queueStats(1).meanLatencyUs();
    EXPECT_LT(std::max(l0, l1) / std::min(l0, l1), 2.0);
}

TEST(Nvme, DeeperQueueImprovesThroughput)
{
    // Commands to different channels can overlap; queue depth 1
    // serializes them end to end.
    auto run = [](unsigned depth) {
        NvmeFixture f(1, depth);
        const std::uint64_t per_channel =
            f.device.ftl().logicalPages()
            / f.device.config().channels;
        for (std::uint64_t i = 0;
             i < f.device.config().channels; ++i)
            f.controller.submit(
                0, NvmeCommand{NvmeOpcode::Write,
                               i * per_channel, 1, i});
        return f.controller.drain();
    };
    const sim::Tick shallow = run(1);
    const sim::Tick deep = run(8);
    EXPECT_LT(deep, shallow);
}

TEST(Nvme, InFlightTracksLifetime)
{
    NvmeFixture f;
    EXPECT_EQ(f.controller.inFlight(), 0u);
    f.controller.submit(0, NvmeCommand{NvmeOpcode::Write, 0, 1, 1});
    EXPECT_EQ(f.controller.inFlight(), 1u);
    f.controller.drain();
    EXPECT_EQ(f.controller.inFlight(), 0u);
}

TEST(Nvme, InvalidArgumentsPanic)
{
    NvmeFixture f;
    EXPECT_THROW(f.controller.submit(
                     5, NvmeCommand{NvmeOpcode::Read, 0, 1, 1}),
                 sim::PanicError);
    EXPECT_THROW(f.controller.submit(
                     0, NvmeCommand{NvmeOpcode::Read, 0, 0, 1}),
                 sim::PanicError);
    EXPECT_THROW(f.controller.queueStats(5), sim::PanicError);
    EXPECT_THROW(NvmeController(f.device, 0, 1), sim::PanicError);
}
