/**
 * @file
 * Kernel-equivalence property tests: the byte-wise LUT kernels and
 * the blocked multi-query kernel must match the scalar nibble-by-
 * nibble reference bit for bit — the whole basis of the repo's
 * any-thread-count golden-run contract — across odd/even column
 * counts, all-zero rows, saturated nibbles, and random seeds.  Also
 * covers the in-place packing constructor, quantizeVectorInto reuse,
 * and the nth_element top-k against a full-sort reference.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <vector>

#include "numeric/int4.hh"
#include "numeric/matrix.hh"
#include "sim/rng.hh"
#include "sim/thread_pool.hh"
#include "xclass/metrics.hh"

using namespace ecssd;
using namespace ecssd::numeric;

namespace
{

FloatMatrix
randomMatrix(std::size_t rows, std::size_t cols, std::uint64_t seed)
{
    FloatMatrix m(rows, cols);
    sim::Rng rng(seed);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            m.at(r, c) = static_cast<float>(rng.gaussian(0.0, 1.0));
    return m;
}

std::vector<float>
randomVector(std::size_t n, std::uint64_t seed)
{
    std::vector<float> v(n);
    sim::Rng rng(seed);
    for (float &x : v)
        x = static_cast<float>(rng.gaussian(0.0, 1.0));
    return v;
}

/** Unpack a quantized feature to the int8 layout rawDotRow eats. */
std::vector<std::int8_t>
unpackFeature(const Int4Vector &feature)
{
    std::vector<std::int8_t> out(feature.size);
    for (std::size_t i = 0; i < feature.size; ++i)
        out[i] = static_cast<std::int8_t>(unpackInt4(feature, i));
    return out;
}

/** Assert every LUT entry point matches the scalar reference on
 *  @p matrix x @p feature, bit for bit. */
void
expectKernelsMatchScalar(const Int4Matrix &matrix,
                         const Int4Vector &feature)
{
    const std::vector<std::int8_t> unpacked = unpackFeature(feature);
    std::vector<std::int16_t> widened;
    matrix.widenFeature(feature, widened);

    // Raw integer dot products: LUT vs per-nibble scalar.
    for (std::size_t r = 0; r < matrix.rows(); ++r) {
        EXPECT_EQ(matrix.rawDotRowLut(r, widened),
                  matrix.rawDotRow(r, unpacked))
            << "row " << r;
    }

    // Rescaled single-query kernel vs scalar dotRow — EXPECT_EQ on
    // double demands exact bits, which holds because the integer
    // accumulation is exact and the rescale expression is identical.
    std::vector<double> lut(matrix.rows());
    matrix.dotRowsLut(0, matrix.rows(), widened, feature.scale,
                      lut.data());
    for (std::size_t r = 0; r < matrix.rows(); ++r)
        EXPECT_EQ(lut[r], matrix.dotRow(r, feature)) << "row " << r;

    // Split-range calls must tile to the same answer.
    if (matrix.rows() >= 3) {
        const std::size_t mid = matrix.rows() / 3;
        std::vector<double> split(matrix.rows());
        matrix.dotRowsLut(0, mid, widened, feature.scale,
                          split.data());
        matrix.dotRowsLut(mid, matrix.rows(), widened, feature.scale,
                          split.data() + mid);
        EXPECT_EQ(split, lut);
    }
}

} // namespace

TEST(Int4Kernels, MatchScalarAcrossShapesAndSeeds)
{
    // Odd and even column counts, including cols < one byte's pair
    // and a non-multiple-of-tile row count.
    const struct
    {
        std::size_t rows, cols;
    } shapes[] = {{17, 1}, {5, 2}, {33, 7}, {64, 64}, {129, 63},
                  {40, 65}};
    for (const auto &shape : shapes) {
        for (const std::uint64_t seed : {1ull, 7ull, 42ull}) {
            const FloatMatrix source =
                randomMatrix(shape.rows, shape.cols, seed);
            const Int4Matrix matrix(source);
            const Int4Vector feature = quantizeVector(
                randomVector(shape.cols, seed + 1000));
            expectKernelsMatchScalar(matrix, feature);
        }
    }
}

TEST(Int4Kernels, MatchScalarOnAllZeroRowsAndFeature)
{
    FloatMatrix source(8, 12);
    // Rows 0/3/7 stay all-zero (scale 0); others get values.
    sim::Rng rng(3);
    for (const std::size_t r : {1ull, 2ull, 4ull, 5ull, 6ull})
        for (std::size_t c = 0; c < 12; ++c)
            source.at(r, c) =
                static_cast<float>(rng.gaussian(0.0, 2.0));
    const Int4Matrix matrix(source);
    expectKernelsMatchScalar(matrix,
                             quantizeVector(randomVector(12, 9)));
    expectKernelsMatchScalar(
        matrix, quantizeVector(std::vector<float>(12, 0.0f)));
}

TEST(Int4Kernels, MatchScalarOnSaturatedNibbles)
{
    // Alternating +/- extremes quantize to the full +/-7 range: the
    // worst-case accumulator magnitude per column.
    const std::size_t cols = 65;
    FloatMatrix source(6, cols);
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            source.at(r, c) = ((r + c) % 2 == 0) ? 100.0f : -100.0f;
    const Int4Matrix matrix(source);
    std::vector<float> spikes(cols);
    for (std::size_t c = 0; c < cols; ++c)
        spikes[c] = (c % 2 == 0) ? -50.0f : 50.0f;
    expectKernelsMatchScalar(matrix, quantizeVector(spikes));
}

TEST(Int4Kernels, BatchKernelMatchesPerQueryKernel)
{
    const std::size_t rows = 73;
    const std::size_t cols = 33;
    const Int4Matrix matrix(randomMatrix(rows, cols, 11));

    // Query counts around the internal tile width (8): below, equal,
    // above, and a non-multiple.
    for (const std::size_t queries : {1ull, 7ull, 8ull, 9ull, 19ull}) {
        std::vector<Int4Vector> features;
        for (std::size_t q = 0; q < queries; ++q)
            features.push_back(
                quantizeVector(randomVector(cols, 100 + q)));

        const std::size_t stride = 2 * matrix.bytesPerRow();
        std::vector<std::int16_t> widened(queries * stride, 0);
        std::vector<float> scales(queries);
        std::vector<std::int16_t> one;
        for (std::size_t q = 0; q < queries; ++q) {
            matrix.widenFeature(features[q], one);
            std::copy(one.begin(), one.end(),
                      widened.begin()
                          + static_cast<std::ptrdiff_t>(q * stride));
            scales[q] = features[q].scale;
        }

        std::vector<double> batch(queries * rows);
        matrix.dotRowsBatchLut(0, rows, widened.data(), queries,
                               stride, scales.data(), batch.data(),
                               rows);

        std::vector<double> single(rows);
        for (std::size_t q = 0; q < queries; ++q) {
            matrix.widenFeature(features[q], one);
            matrix.dotRowsLut(0, rows, one, features[q].scale,
                              single.data());
            for (std::size_t r = 0; r < rows; ++r)
                EXPECT_EQ(batch[q * rows + r], single[r])
                    << "query " << q << " row " << r;
        }
    }
}

TEST(Int4Kernels, InPlacePackingMatchesSerialAndParallel)
{
    const FloatMatrix source = randomMatrix(301, 29, 77);
    const Int4Matrix serial(source);
    sim::ThreadPool pool(4);
    const Int4Matrix pooled(source, &pool);

    ASSERT_EQ(pooled.rows(), serial.rows());
    ASSERT_EQ(pooled.cols(), serial.cols());
    for (std::size_t r = 0; r < serial.rows(); ++r) {
        EXPECT_EQ(pooled.rowScale(r), serial.rowScale(r));
        const auto a = serial.packedRow(r);
        const auto b = pooled.packedRow(r);
        ASSERT_EQ(a.size(), b.size());
        EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
            << "row " << r;
    }
}

TEST(Int4Kernels, QuantizeVectorIntoMatchesFreshQuantize)
{
    Int4Vector reused;
    for (const std::size_t n : {1ull, 8ull, 33ull, 257ull}) {
        const std::vector<float> values = randomVector(n, 500 + n);
        const Int4Vector fresh = quantizeVector(values);
        // The reused buffer carries stale contents from the previous
        // (differently-sized) iteration — the hot-path scenario.
        quantizeVectorInto(values, reused);
        EXPECT_EQ(reused.size, fresh.size);
        EXPECT_EQ(reused.scale, fresh.scale);
        EXPECT_EQ(reused.packed, fresh.packed);
    }
}

TEST(TopK, NthElementMatchesFullSortReference)
{
    sim::Rng rng(13);
    for (unsigned trial = 0; trial < 20; ++trial) {
        std::vector<double> scores(500);
        for (double &s : scores) {
            // Coarse buckets force plenty of exact ties.
            s = std::floor(rng.uniform() * 16.0);
        }
        for (const std::size_t k : {0ull, 1ull, 10ull, 499ull,
                                    500ull, 600ull}) {
            // Full-sort reference with the same total order.
            std::vector<std::uint64_t> ref(scores.size());
            std::iota(ref.begin(), ref.end(), 0);
            std::sort(ref.begin(), ref.end(),
                      [&](std::uint64_t a, std::uint64_t b) {
                          if (scores[a] != scores[b])
                              return scores[a] > scores[b];
                          return a < b;
                      });
            ref.resize(std::min(k, scores.size()));
            EXPECT_EQ(xclass::topKIndices(
                          std::span<const double>(scores), k),
                      ref)
                << "trial " << trial << " k " << k;
        }
    }
}
