/**
 * @file
 * FTL fuzz test: a long random stream of writes, overwrites, trims,
 * and reads is checked against a trivial reference model (a hash
 * map) after every operation batch, plus global invariants (time
 * monotonicity, bounded wear spread, mapping uniqueness).
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <unordered_map>

#include "sim/rng.hh"
#include "ssdsim/ftl.hh"

using namespace ecssd;
using namespace ecssd::ssdsim;

namespace
{

/**
 * Iteration count scaled by the ECSSD_FUZZ_ITERS environment
 * variable (a multiplier; the scheduled CI long-fuzz job sets it to
 * soak the FTL far beyond the per-commit budget).
 */
int
fuzzIters(int base)
{
    const char *env = std::getenv("ECSSD_FUZZ_ITERS");
    if (env == nullptr)
        return base;
    const long mult = std::strtol(env, nullptr, 10);
    return mult > 1 ? base * static_cast<int>(mult) : base;
}

class FtlFuzz : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    SsdConfig config = smallTestConfig();
    FlashArray flash{config};
    Ftl ftl{config, flash};
};

} // namespace

TEST_P(FtlFuzz, MatchesReferenceModel)
{
    sim::Rng rng(GetParam());
    // Reference: lpa -> generation number of the last write.
    std::unordered_map<LogicalPage, std::uint64_t> reference;
    std::uint64_t generation = 0;
    sim::Tick now = 0;

    // Work inside a window that spans several channels but is small
    // enough to churn the pools and trigger GC.
    const LogicalPage window =
        std::min<std::uint64_t>(ftl.logicalPages(), 96);

    const int ops = fuzzIters(3000);
    for (int op = 0; op < ops; ++op) {
        const LogicalPage lpa = rng.uniformInt(window);
        const double dice = rng.uniform();
        if (dice < 0.55) {
            const sim::Tick done = ftl.write(lpa, now);
            ASSERT_GE(done, now) << "time went backwards";
            now = done;
            reference[lpa] = ++generation;
        } else if (dice < 0.70) {
            ftl.trim(lpa);
            reference.erase(lpa);
        } else {
            const bool mapped = ftl.translate(lpa).has_value();
            ASSERT_EQ(mapped, reference.count(lpa) == 1)
                << "mapping mismatch for lpa " << lpa << " at op "
                << op;
            if (mapped) {
                const sim::Tick done = ftl.read(lpa, now);
                ASSERT_GE(done, now);
                now = done;
            }
        }

        // Periodically: every mapped lpa translates, all physical
        // pages are distinct.
        if (op % 500 == 499) {
            const AddressCodec codec(config);
            std::set<std::uint64_t> seen;
            for (const auto &[ref_lpa, gen] : reference) {
                const auto ppa = ftl.translate(ref_lpa);
                ASSERT_TRUE(ppa.has_value())
                    << "lost mapping for lpa " << ref_lpa;
                ASSERT_TRUE(
                    seen.insert(codec.encode(*ppa)).second)
                    << "two lpas share a physical page";
            }
        }
    }

    // Final consistency + wear sanity.
    for (const auto &[lpa, gen] : reference)
        EXPECT_TRUE(ftl.translate(lpa).has_value());
    EXPECT_GE(ftl.stats().writeAmplification(), 1.0);
    // Idle channels pin the erase floor at 0, so the global spread
    // grows with the trafficked channels' churn: scale the sanity
    // bound with the op count (the tight per-pool bound is asserted
    // by the dedicated wear-leveling tests).
    EXPECT_LE(ftl.eraseCountSpread(),
              static_cast<std::uint64_t>(fuzzIters(80)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlFuzz,
                         ::testing::Values(1, 7, 42, 1234, 99999));

TEST(FtlFuzzExtra, SteadyStateChurnNeverRunsOutOfSpace)
{
    SsdConfig config = smallTestConfig();
    FlashArray flash(config);
    Ftl ftl(config, flash);
    sim::Rng rng(5);
    sim::Tick now = 0;
    // Hammer 70% of one channel's logical span -- GC must keep up
    // indefinitely.
    const std::uint64_t span =
        ftl.logicalPages() / config.channels * 7 / 10;
    const int ops = fuzzIters(5000);
    for (int op = 0; op < ops; ++op)
        now = ftl.write(rng.uniformInt(span), now);
    EXPECT_GT(ftl.stats().gcRuns, 0u);
    EXPECT_GT(ftl.freeFraction(0), 0.0);
}

TEST(FtlFuzzExtra, PoolWedgingCannotStarveSteadyStateChurn)
{
    // Regression: at 10000 ops this exact workload used to die
    // "worn out" with the channel full of stale data.  A pool would
    // wedge — GC needs one free page of headroom per valid page in
    // a victim, so once its free pages dropped below every victim's
    // valid count it could never reclaim its own stale space, and
    // pickPool stopped routing writes (and their GC) its way.  The
    // write-path starvation sweep now unwedges such pools (same-pool
    // GC, then cross-pool evacuation), so churn runs indefinitely.
    SsdConfig config = smallTestConfig();
    FlashArray flash(config);
    Ftl ftl(config, flash);
    sim::Rng rng(5);
    sim::Tick now = 0;
    const std::uint64_t span =
        ftl.logicalPages() / config.channels * 7 / 10;
    for (int op = 0; op < 10000; ++op)
        now = ftl.write(rng.uniformInt(span), now);
    EXPECT_FALSE(ftl.readOnly());
    EXPECT_GT(ftl.stats().gcRuns, 0u);
    EXPECT_GT(ftl.freeFraction(0), 0.0);
}

TEST(FtlFuzzExtra, TrimEverythingRestoresFreeSpaceViaGc)
{
    SsdConfig config = smallTestConfig();
    FlashArray flash(config);
    Ftl ftl(config, flash);
    sim::Tick now = 0;
    const std::uint64_t span = 64;
    for (LogicalPage lpa = 0; lpa < span; ++lpa)
        now = ftl.write(lpa, now);
    for (LogicalPage lpa = 0; lpa < span; ++lpa)
        ftl.trim(lpa);
    // Everything is stale; continued writes must reclaim freely.
    const int rounds = fuzzIters(2000);
    for (int round = 0; round < rounds; ++round)
        now = ftl.write(round % span, now);
    for (LogicalPage lpa = 0; lpa < span; ++lpa)
        EXPECT_TRUE(ftl.translate(lpa).has_value());
}

namespace
{

/** Wear/scrub-enabled geometry for the maintenance fuzz. */
SsdConfig
wearFuzzConfig()
{
    SsdConfig config = smallTestConfig();
    config.wearErrorCoefficient = 1e-4;
    config.retentionErrorCoefficient = 1e-3; // per second
    config.scrubErrorThreshold = 1e-6;
    config.scrubBudgetPages = 16;
    config.wearLevelSpreadBound = 12;
    return config;
}

} // namespace

class FtlMaintenanceFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

/**
 * The PR-1 fuzz plus the wear-lifecycle machinery running live:
 * patrol scrub and static wear leveling interleave with host writes,
 * trims, reads, and the GC they trigger.  Background relocation must
 * never lose or alias a mapping, run time backwards, or let the wear
 * spread escape the leveling bound by more than one block's worth of
 * churn.
 */
TEST_P(FtlMaintenanceFuzz, ScrubAndLevelingPreserveMappings)
{
    const SsdConfig config = wearFuzzConfig();
    FlashArray flash(config);
    Ftl ftl(config, flash);
    sim::Rng rng(GetParam());
    std::unordered_map<LogicalPage, std::uint64_t> reference;
    std::uint64_t generation = 0;
    sim::Tick now = 0;

    const LogicalPage window =
        std::min<std::uint64_t>(ftl.logicalPages(), 96);
    const int ops = fuzzIters(3000);
    for (int op = 0; op < ops; ++op) {
        const LogicalPage lpa = rng.uniformInt(window);
        const double dice = rng.uniform();
        if (dice < 0.50) {
            const sim::Tick done = ftl.write(lpa, now);
            ASSERT_GE(done, now) << "time went backwards";
            now = done;
            reference[lpa] = ++generation;
        } else if (dice < 0.62) {
            ftl.trim(lpa);
            reference.erase(lpa);
        } else if (dice < 0.80) {
            const bool mapped = ftl.translate(lpa).has_value();
            ASSERT_EQ(mapped, reference.count(lpa) == 1)
                << "mapping mismatch for lpa " << lpa << " at op "
                << op;
            if (mapped) {
                const sim::Tick done = ftl.read(lpa, now);
                ASSERT_GE(done, now);
                now = done;
            }
        } else if (dice < 0.92) {
            const sim::Tick done = ftl.patrolScrub(now);
            ASSERT_GE(done, now) << "scrub ran time backwards";
            now = done;
        } else {
            bool moved = false;
            const sim::Tick done = ftl.levelWear(now, moved);
            ASSERT_GE(done, now);
            now = done;
        }

        if (op % 500 == 499) {
            const AddressCodec codec(config);
            std::set<std::uint64_t> seen;
            for (const auto &[ref_lpa, gen] : reference) {
                const auto ppa = ftl.translate(ref_lpa);
                ASSERT_TRUE(ppa.has_value())
                    << "lost mapping for lpa " << ref_lpa
                    << " at op " << op;
                ASSERT_TRUE(
                    seen.insert(codec.encode(*ppa)).second)
                    << "two lpas share a physical page at op " << op;
            }
        }
    }

    for (const auto &[lpa, gen] : reference)
        EXPECT_TRUE(ftl.translate(lpa).has_value());
    // Retention-aged pages must actually have been refreshed, and
    // the background churn must not have blown up the wear spread
    // beyond what the plain-GC fuzz tolerates (same op-scaled bound:
    // idle channels pin the floor at 0, see above).
    EXPECT_GT(ftl.stats().scrubbedPages, 0u);
    EXPECT_GT(ftl.stats().scrubRelocations, 0u);
    EXPECT_LE(ftl.eraseCountSpread(),
              static_cast<std::uint64_t>(fuzzIters(80)));
    EXPECT_FALSE(ftl.readOnly());
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlMaintenanceFuzz,
                         ::testing::Values(3, 17, 4096));
