/**
 * @file
 * FTL fuzz test: a long random stream of writes, overwrites, trims,
 * and reads is checked against a trivial reference model (a hash
 * map) after every operation batch, plus global invariants (time
 * monotonicity, bounded wear spread, mapping uniqueness).
 */

#include <gtest/gtest.h>

#include <set>
#include <unordered_map>

#include "sim/rng.hh"
#include "ssdsim/ftl.hh"

using namespace ecssd;
using namespace ecssd::ssdsim;

namespace
{

class FtlFuzz : public ::testing::TestWithParam<std::uint64_t>
{
  protected:
    SsdConfig config = smallTestConfig();
    FlashArray flash{config};
    Ftl ftl{config, flash};
};

} // namespace

TEST_P(FtlFuzz, MatchesReferenceModel)
{
    sim::Rng rng(GetParam());
    // Reference: lpa -> generation number of the last write.
    std::unordered_map<LogicalPage, std::uint64_t> reference;
    std::uint64_t generation = 0;
    sim::Tick now = 0;

    // Work inside a window that spans several channels but is small
    // enough to churn the pools and trigger GC.
    const LogicalPage window =
        std::min<std::uint64_t>(ftl.logicalPages(), 96);

    for (int op = 0; op < 3000; ++op) {
        const LogicalPage lpa = rng.uniformInt(window);
        const double dice = rng.uniform();
        if (dice < 0.55) {
            const sim::Tick done = ftl.write(lpa, now);
            ASSERT_GE(done, now) << "time went backwards";
            now = done;
            reference[lpa] = ++generation;
        } else if (dice < 0.70) {
            ftl.trim(lpa);
            reference.erase(lpa);
        } else {
            const bool mapped = ftl.translate(lpa).has_value();
            ASSERT_EQ(mapped, reference.count(lpa) == 1)
                << "mapping mismatch for lpa " << lpa << " at op "
                << op;
            if (mapped) {
                const sim::Tick done = ftl.read(lpa, now);
                ASSERT_GE(done, now);
                now = done;
            }
        }

        // Periodically: every mapped lpa translates, all physical
        // pages are distinct.
        if (op % 500 == 499) {
            const AddressCodec codec(config);
            std::set<std::uint64_t> seen;
            for (const auto &[ref_lpa, gen] : reference) {
                const auto ppa = ftl.translate(ref_lpa);
                ASSERT_TRUE(ppa.has_value())
                    << "lost mapping for lpa " << ref_lpa;
                ASSERT_TRUE(
                    seen.insert(codec.encode(*ppa)).second)
                    << "two lpas share a physical page";
            }
        }
    }

    // Final consistency + wear sanity.
    for (const auto &[lpa, gen] : reference)
        EXPECT_TRUE(ftl.translate(lpa).has_value());
    EXPECT_GE(ftl.stats().writeAmplification(), 1.0);
    EXPECT_LE(ftl.eraseCountSpread(), 80u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FtlFuzz,
                         ::testing::Values(1, 7, 42, 1234, 99999));

TEST(FtlFuzzExtra, SteadyStateChurnNeverRunsOutOfSpace)
{
    SsdConfig config = smallTestConfig();
    FlashArray flash(config);
    Ftl ftl(config, flash);
    sim::Rng rng(5);
    sim::Tick now = 0;
    // Hammer 70% of one channel's logical span -- GC must keep up
    // indefinitely.
    const std::uint64_t span =
        ftl.logicalPages() / config.channels * 7 / 10;
    for (int op = 0; op < 5000; ++op)
        now = ftl.write(rng.uniformInt(span), now);
    EXPECT_GT(ftl.stats().gcRuns, 0u);
    EXPECT_GT(ftl.freeFraction(0), 0.0);
}

TEST(FtlFuzzExtra, TrimEverythingRestoresFreeSpaceViaGc)
{
    SsdConfig config = smallTestConfig();
    FlashArray flash(config);
    Ftl ftl(config, flash);
    sim::Tick now = 0;
    const std::uint64_t span = 64;
    for (LogicalPage lpa = 0; lpa < span; ++lpa)
        now = ftl.write(lpa, now);
    for (LogicalPage lpa = 0; lpa < span; ++lpa)
        ftl.trim(lpa);
    // Everything is stale; continued writes must reclaim freely.
    for (int round = 0; round < 2000; ++round)
        now = ftl.write(round % span, now);
    for (LogicalPage lpa = 0; lpa < span; ++lpa)
        EXPECT_TRUE(ftl.translate(lpa).has_value());
}
