/**
 * @file
 * AccelConfig sizing tests and candidate-source behaviour.
 */

#include <gtest/gtest.h>

#include <numeric>

#include "accel/accel_config.hh"
#include "accel/candidate_source.hh"

using namespace ecssd;
using namespace ecssd::accel;

TEST(AccelConfig, DefaultIsTheTable2AlignmentFreeDesign)
{
    const AccelConfig config;
    EXPECT_EQ(config.fp32Macs(), 64u);
    EXPECT_NEAR(config.fp32Gflops(), 51.2, 1e-9);
    EXPECT_NEAR(config.int4Gops(), 204.8, 1e-9);
    EXPECT_EQ(config.int4WeightBufferBytes, 128u * 1024u);
    EXPECT_EQ(config.fp32WeightBufferBytes, 400u * 1024u);
}

TEST(AccelConfig, NaiveKindFitsFewerMacsInTheSameArea)
{
    AccelConfig config;
    config.fpKind = circuit::FpMacKind::Naive;
    EXPECT_LT(config.fp32Macs(), 64u);
    EXPECT_LT(config.fp32Gflops(), 32.0); // below the stream rate
}

TEST(AccelConfig, SkHynixKindSitsBetween)
{
    AccelConfig naive;
    naive.fpKind = circuit::FpMacKind::Naive;
    AccelConfig skh;
    skh.fpKind = circuit::FpMacKind::SkHynix;
    const AccelConfig af;
    EXPECT_GT(skh.fp32Macs(), naive.fp32Macs());
    EXPECT_LT(skh.fp32Macs(), af.fp32Macs());
}

TEST(AccelConfig, OverridesWinOverDerivedRates)
{
    AccelConfig config;
    config.fp32GflopsOverride = 12.5;
    config.int4GopsOverride = 99.0;
    EXPECT_DOUBLE_EQ(config.fp32Gflops(), 12.5);
    EXPECT_DOUBLE_EQ(config.int4Gops(), 99.0);
}

TEST(AccelConfig, FrequencyScalesThroughput)
{
    AccelConfig slow;
    slow.frequencyHz = 200e6;
    EXPECT_NEAR(slow.fp32Gflops(), 25.6, 1e-9);
}

TEST(AllRowsSource, EnumeratesEverything)
{
    AllRowsSource source(100);
    EXPECT_EQ(source.rows(), 100u);
    const std::vector<std::uint64_t> batch = source.nextBatch();
    ASSERT_EQ(batch.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i)
        EXPECT_EQ(batch[i], i);
    // Every batch is the same full sweep.
    EXPECT_EQ(source.nextBatch(), batch);
}

TEST(ListSource, CyclesThroughBatches)
{
    ListSource source(10, {{1, 2}, {3, 4, 5}});
    EXPECT_EQ(source.rows(), 10u);
    EXPECT_EQ(source.nextBatch(),
              (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(source.nextBatch(),
              (std::vector<std::uint64_t>{3, 4, 5}));
    EXPECT_EQ(source.nextBatch(),
              (std::vector<std::uint64_t>{1, 2}));
}

TEST(ListSource, EmptyListYieldsEmptyBatches)
{
    ListSource source(10, {});
    EXPECT_TRUE(source.nextBatch().empty());
}

TEST(TraceSource, DrawsFromTheConfiguredSpec)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 10000);
    TraceSource source(spec, 3);
    EXPECT_EQ(source.rows(), spec.categories);
    const std::vector<std::uint64_t> batch = source.nextBatch();
    EXPECT_NEAR(static_cast<double>(batch.size()),
                spec.candidateRatio * spec.categories,
                0.05 * spec.categories);
    for (const std::uint64_t row : batch)
        EXPECT_LT(row, spec.categories);
}

TEST(TraceSource, DifferentSeedsDifferentTails)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 10000);
    TraceSource a(spec, 1), b(spec, 2);
    EXPECT_NE(a.nextBatch(), b.nextBatch());
}
