/**
 * @file
 * Tests of the metrics registry, the JSON writer/parser underneath it,
 * and the bench-baseline comparator that gates CI on perf drift.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/baseline.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/metrics.hh"

using namespace ecssd::sim;

// ---------------------------------------------------------------------
// MetricsRegistry
// ---------------------------------------------------------------------

TEST(MetricsRegistry, CounterLookupCreatesOnce)
{
    MetricsRegistry registry;
    registry.counterAdd("flash.pages_read", 3);
    registry.counterAdd("flash.pages_read");
    EXPECT_EQ(registry.counter("flash.pages_read").value(), 4u);
    EXPECT_EQ(registry.size(), 1u);
    EXPECT_TRUE(registry.has("flash.pages_read"));
    EXPECT_FALSE(registry.has("flash.pages_written"));
}

TEST(MetricsRegistry, GaugeKeepsLastValue)
{
    MetricsRegistry registry;
    registry.gaugeSet("server.queue_depth", 4.0);
    registry.gaugeSet("server.queue_depth", 2.0);
    EXPECT_DOUBLE_EQ(registry.gauge("server.queue_depth").value(),
                     2.0);
}

TEST(MetricsRegistry, HistogramShapeFixedOnFirstUse)
{
    MetricsRegistry registry;
    registry.histogramSample("lat_ms", 0.0, 10.0, 10, 5.0);
    // Same shape: fine.
    Histogram &h = registry.histogram("lat_ms", 0.0, 10.0, 10);
    EXPECT_EQ(h.totalSamples(), 1u);
    // Different shape: simulator bug.
    EXPECT_THROW(registry.histogram("lat_ms", 0.0, 20.0, 10),
                 PanicError);
}

TEST(MetricsRegistry, DisabledRecordingIsNoOp)
{
    MetricsRegistry registry;
    registry.counterAdd("c", 1);
    registry.setEnabled(false);
    registry.counterAdd("c", 10);
    registry.gaugeSet("g", 5.0);
    registry.histogramSample("h", 0.0, 1.0, 4, 0.5);
    EXPECT_EQ(registry.counter("c").value(), 1u);
    // Disabled recording does not even register new instruments.
    EXPECT_FALSE(registry.has("g"));
    EXPECT_FALSE(registry.has("h"));
    registry.setEnabled(true);
    registry.counterAdd("c", 10);
    EXPECT_EQ(registry.counter("c").value(), 11u);
}

TEST(MetricsRegistry, ResetZeroesButKeepsRegistrations)
{
    MetricsRegistry registry;
    registry.counterAdd("c", 7);
    registry.gaugeSet("g", 3.0);
    registry.histogramSample("h", 0.0, 1.0, 4, 0.5);
    registry.reset();
    EXPECT_EQ(registry.size(), 3u);
    EXPECT_EQ(registry.counter("c").value(), 0u);
    EXPECT_DOUBLE_EQ(registry.gauge("g").value(), 0.0);
    EXPECT_EQ(registry.histogram("h", 0.0, 1.0, 4).totalSamples(),
              0u);
}

TEST(MetricsRegistry, WriteJsonIsSortedAndOrderIndependent)
{
    auto fill = [](MetricsRegistry &r, bool reversed) {
        if (reversed) {
            r.gaugeSet("z.util", 0.5);
            r.counterAdd("a.count", 2);
        } else {
            r.counterAdd("a.count", 2);
            r.gaugeSet("z.util", 0.5);
        }
        r.histogramSample("m.lat", 0.0, 10.0, 10, 2.5);
    };
    MetricsRegistry forward, backward;
    fill(forward, false);
    fill(backward, true);
    std::ostringstream a, b;
    forward.writeJson(a);
    backward.writeJson(b);
    EXPECT_EQ(a.str(), b.str());

    // The dump is parseable and the values round-trip.
    const auto flat = parseFlatJson(a.str());
    EXPECT_DOUBLE_EQ(flat.at("counters.a.count"), 2.0);
    EXPECT_DOUBLE_EQ(flat.at("gauges.z.util"), 0.5);
    EXPECT_DOUBLE_EQ(flat.at("histograms.m.lat.count"), 1.0);
    EXPECT_DOUBLE_EQ(flat.at("histograms.m.lat.sum"), 2.5);
}

TEST(MetricsRegistry, WritePrometheusFormat)
{
    MetricsRegistry registry;
    registry.counterAdd("flash.pages_read", 9);
    registry.gaugeSet("server.queue_depth", 3.0);
    registry.histogramSample("server.latency_ms", 0.0, 10.0, 2, 7.0);
    std::ostringstream os;
    registry.writePrometheus(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("# TYPE flash_pages_read counter"),
              std::string::npos);
    EXPECT_NE(text.find("flash_pages_read 9"), std::string::npos);
    EXPECT_NE(text.find("# TYPE server_queue_depth gauge"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE server_latency_ms histogram"),
              std::string::npos);
    EXPECT_NE(text.find("server_latency_ms_bucket{le=\"+Inf\"} 1"),
              std::string::npos);
    EXPECT_NE(text.find("server_latency_ms_count 1"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// JSON writer/parser
// ---------------------------------------------------------------------

TEST(Json, EscapeSpecials)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
}

TEST(Json, NumberFormattingRoundTrips)
{
    // %.17g preserves doubles exactly.
    const double v = 1.151447281;
    const auto flat =
        parseFlatJson("{\"x\": " + jsonNumber(v) + "}");
    EXPECT_DOUBLE_EQ(flat.at("x"), v);
}

TEST(Json, WriterNesting)
{
    std::ostringstream os;
    JsonWriter json(os);
    json.beginObject();
    json.key("outer");
    json.beginObject();
    json.key("a");
    json.value(std::uint64_t(1));
    json.key("b");
    json.value(2.5);
    json.endObject();
    json.key("list");
    json.beginArray();
    json.value(std::uint64_t(3));
    json.value(std::uint64_t(4));
    json.endArray();
    json.endObject();

    const auto flat = parseFlatJson(os.str());
    EXPECT_DOUBLE_EQ(flat.at("outer.a"), 1.0);
    EXPECT_DOUBLE_EQ(flat.at("outer.b"), 2.5);
    EXPECT_DOUBLE_EQ(flat.at("list.0"), 3.0);
    EXPECT_DOUBLE_EQ(flat.at("list.1"), 4.0);
}

TEST(Json, ParseSkipsNonNumericLeaves)
{
    const auto flat = parseFlatJson(
        "{\"name\": \"gnmt\", \"ok\": true, \"none\": null, "
        "\"count\": 5}");
    EXPECT_EQ(flat.size(), 1u);
    EXPECT_DOUBLE_EQ(flat.at("count"), 5.0);
}

TEST(Json, ParseMalformedIsFatal)
{
    EXPECT_THROW(parseFlatJson("{\"a\": }"), FatalError);
    EXPECT_THROW(parseFlatJson("{\"a\": 1"), FatalError);
    EXPECT_THROW(parseFlatJson("nonsense"), FatalError);
}

// ---------------------------------------------------------------------
// Baseline comparator
// ---------------------------------------------------------------------

TEST(Baseline, LatencyKeyClassification)
{
    EXPECT_TRUE(isLatencyKey("latency.serving.p50_ms"));
    EXPECT_FALSE(isLatencyKey("counters.candidate_rows"));
}

TEST(Baseline, IdenticalDocumentsPass)
{
    const std::map<std::string, double> doc = {
        {"latency.mean_ms", 1.5}, {"counters.rows", 100.0}};
    EXPECT_TRUE(compareBaselines(doc, doc).empty());
}

TEST(Baseline, LatencyDriftWithinToleranceIsAllowed)
{
    const std::map<std::string, double> baseline = {
        {"latency.mean_ms", 1.0}};
    const std::map<std::string, double> current = {
        {"latency.mean_ms", 1.05}}; // 5% < 10%
    EXPECT_TRUE(compareBaselines(baseline, current).empty());
}

TEST(Baseline, LatencyDriftBeyondToleranceFails)
{
    const std::map<std::string, double> baseline = {
        {"latency.mean_ms", 1.0}};
    const std::map<std::string, double> current = {
        {"latency.mean_ms", 1.2}}; // 20% > 10%
    const auto failures = compareBaselines(baseline, current);
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_NE(failures[0].find("latency.mean_ms"),
              std::string::npos);
}

TEST(Baseline, CounterToleranceIsTighter)
{
    const std::map<std::string, double> baseline = {
        {"counters.rows", 100.0}};
    // 5% drift: fine for latency, not for a counter.
    const std::map<std::string, double> current = {
        {"counters.rows", 105.0}};
    EXPECT_EQ(compareBaselines(baseline, current).size(), 1u);
    const std::map<std::string, double> close = {
        {"counters.rows", 100.5}}; // 0.5% < 1%
    EXPECT_TRUE(compareBaselines(baseline, close).empty());
}

TEST(Baseline, MissingCurrentKeyFails)
{
    const std::map<std::string, double> baseline = {
        {"counters.rows", 100.0}};
    const std::map<std::string, double> current = {};
    const auto failures = compareBaselines(baseline, current);
    ASSERT_EQ(failures.size(), 1u);
    // The diagnostic must name the metric and say which side lost it
    // (a dropped instrument reads very differently from a drift).
    EXPECT_NE(failures[0].find("missing metric 'counters.rows'"),
              std::string::npos);
    EXPECT_NE(failures[0].find("absent from current run"),
              std::string::npos);
    // The baseline value rides along, so triage never starts with a
    // dig through the baseline file.
    EXPECT_NE(failures[0].find("(100)"), std::string::npos);
}

TEST(Baseline, MissingKeyMessageCarriesBaselineValue)
{
    const std::map<std::string, double> baseline = {
        {"latency.p99_ms", 3.25}};
    const auto failures = compareBaselines(baseline, {});
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_NE(failures[0].find("missing metric 'latency.p99_ms'"),
              std::string::npos);
    EXPECT_NE(failures[0].find("(3.25)"), std::string::npos);
}

TEST(Baseline, MissingTrendKeyIsNotGated)
{
    // Trend-only series are recorded for plotting: their absence must
    // never fail the gate, while a missing gated key still does.
    const std::map<std::string, double> baseline = {
        {"trend.cache.hit_rate", 0.9}, {"counters.rows", 100.0}};
    const std::map<std::string, double> current = {
        {"counters.rows", 100.0}};
    EXPECT_TRUE(compareBaselines(baseline, current).empty());
    const auto failures = compareBaselines(baseline, {});
    ASSERT_EQ(failures.size(), 1u);
    EXPECT_NE(failures[0].find("counters.rows"), std::string::npos);
}

TEST(Baseline, ExtraCurrentKeysAreIgnored)
{
    const std::map<std::string, double> baseline = {
        {"counters.rows", 100.0}};
    const std::map<std::string, double> current = {
        {"counters.rows", 100.0}, {"counters.new_metric", 7.0}};
    EXPECT_TRUE(compareBaselines(baseline, current).empty());
}

TEST(Baseline, CustomToleranceApplies)
{
    const std::map<std::string, double> baseline = {
        {"latency.mean_ms", 1.0}};
    const std::map<std::string, double> current = {
        {"latency.mean_ms", 1.2}};
    BaselineTolerance loose;
    loose.latency = 0.5;
    EXPECT_TRUE(compareBaselines(baseline, current, loose).empty());
}

TEST(Baseline, ZeroBaselineRequiresExactMatch)
{
    const std::map<std::string, double> baseline = {
        {"counters.failures", 0.0}};
    EXPECT_TRUE(
        compareBaselines(baseline, {{"counters.failures", 0.0}})
            .empty());
    EXPECT_EQ(
        compareBaselines(baseline, {{"counters.failures", 1.0}})
            .size(),
        1u);
}
