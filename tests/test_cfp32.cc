/**
 * @file
 * CFP32 pre-alignment tests: round trips, loss accounting, and the
 * paper's ">95% lossless" claim on model-like data.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "numeric/cfp32.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace ecssd::numeric;

TEST(Cfp32, EmptyVector)
{
    const Cfp32Vector v = Cfp32Vector::preAlign({});
    EXPECT_EQ(v.size(), 0u);
    EXPECT_TRUE(v.empty());
    EXPECT_EQ(v.lossyElements(), 0u);
}

TEST(Cfp32, SingleValueIsExact)
{
    const std::vector<float> values{3.14159f};
    const Cfp32Vector v = Cfp32Vector::preAlign(values);
    EXPECT_EQ(v.lossyElements(), 0u);
    EXPECT_FLOAT_EQ(v.toFloat(0), 3.14159f);
}

TEST(Cfp32, SharedExponentIsMaximum)
{
    const std::vector<float> values{1.0f, 8.0f, 0.25f};
    const Cfp32Vector v = Cfp32Vector::preAlign(values);
    EXPECT_EQ(v.sharedExponent(), decompose(8.0f).exponent);
}

TEST(Cfp32, SmallExponentGapsAreLossless)
{
    // Gaps up to 7 fit entirely in the compensation bits.
    std::vector<float> values;
    for (int e = 0; e <= 7; ++e)
        values.push_back(std::ldexp(1.9999999f, -e));
    const Cfp32Vector v = Cfp32Vector::preAlign(values);
    EXPECT_EQ(v.lossyElements(), 0u);
    for (std::size_t i = 0; i < values.size(); ++i)
        EXPECT_FLOAT_EQ(v.toFloat(i), values[i]) << "element " << i;
}

TEST(Cfp32, LargeGapDropsLowBits)
{
    // 1.0 + 2^-20ish against a 2^10 max: gap 10 > 7 compensation.
    const std::vector<float> values{1024.0f, 1.0000001f};
    const Cfp32Vector v = Cfp32Vector::preAlign(values);
    EXPECT_EQ(v.lossyElements(), 1u);
    // The big value stays exact.
    EXPECT_FLOAT_EQ(v.toFloat(0), 1024.0f);
    // The small one is close but truncated toward zero.
    EXPECT_NEAR(v.toFloat(1), 1.0f, 1e-3);
    EXPECT_LE(v.toFloat(1), 1.0000001f);
}

TEST(Cfp32, PowerOfTwoSurvivesLargeGaps)
{
    // A power of two has no low mantissa bits to lose until the gap
    // pushes its single set bit out of the 31-bit field (gap > 30).
    const std::vector<float> values{std::ldexp(1.0f, 20),
                                    std::ldexp(1.0f, 0)};
    const Cfp32Vector v = Cfp32Vector::preAlign(values);
    EXPECT_EQ(v.lossyElements(), 0u);
    EXPECT_FLOAT_EQ(v.toFloat(1), 1.0f);
}

TEST(Cfp32, HugeGapUnderflowsToZero)
{
    const std::vector<float> values{1.0e30f, 1.0e-30f};
    const Cfp32Vector v = Cfp32Vector::preAlign(values);
    EXPECT_EQ(v.lossyElements(), 1u);
    EXPECT_EQ(v.toFloat(1), 0.0f);
}

TEST(Cfp32, SignsArePreserved)
{
    const std::vector<float> values{-2.0f, 3.0f, -0.5f};
    const Cfp32Vector v = Cfp32Vector::preAlign(values);
    EXPECT_LT(v.toFloat(0), 0.0f);
    EXPECT_GT(v.toFloat(1), 0.0f);
    EXPECT_LT(v.toFloat(2), 0.0f);
}

TEST(Cfp32, ZerosStayZero)
{
    const std::vector<float> values{0.0f, 5.0f, -0.0f};
    const Cfp32Vector v = Cfp32Vector::preAlign(values);
    EXPECT_EQ(v.toFloat(0), 0.0f);
    EXPECT_EQ(v.toFloat(2), 0.0f);
    EXPECT_EQ(v.lossyElements(), 0u);
}

TEST(Cfp32, AllZeroVector)
{
    const std::vector<float> values(16, 0.0f);
    const Cfp32Vector v = Cfp32Vector::preAlign(values);
    EXPECT_EQ(v.sharedExponent(), 0u);
    for (std::size_t i = 0; i < 16; ++i)
        EXPECT_EQ(v.toFloat(i), 0.0f);
}

TEST(Cfp32, RejectsNanAndInf)
{
    const std::vector<float> with_nan{
        1.0f, std::numeric_limits<float>::quiet_NaN()};
    EXPECT_THROW(Cfp32Vector::preAlign(with_nan),
                 ecssd::sim::FatalError);
    const std::vector<float> with_inf{
        std::numeric_limits<float>::infinity()};
    EXPECT_THROW(Cfp32Vector::preAlign(with_inf),
                 ecssd::sim::FatalError);
}

TEST(Cfp32, RoundTripErrorIsBoundedByGap)
{
    // Truncation drops at most gap-7 mantissa bits: the relative
    // error of element i is < 2^(gap - 7 - 23).
    ecssd::sim::Rng rng(3);
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<float> values;
        for (int i = 0; i < 64; ++i)
            values.push_back(static_cast<float>(
                rng.gaussian(0.0, std::pow(10.0, rng.uniform(-3, 3)))));
        const Cfp32Vector v = Cfp32Vector::preAlign(values);
        for (std::size_t i = 0; i < values.size(); ++i) {
            const float original = values[i];
            if (original == 0.0f)
                continue;
            const std::uint32_t gap = v.sharedExponent()
                - decompose(original).exponent;
            const double bound = gap <= 7
                ? 0.0
                : std::ldexp(1.0,
                             static_cast<int>(gap) - 7 - 23);
            const double rel_err =
                std::fabs((v.toFloat(i) - original) / original);
            EXPECT_LE(rel_err, bound + 1e-12)
                << "gap " << gap << " value " << original;
        }
    }
}

TEST(Cfp32, ModelLikeDataIsMostlyLossless)
{
    // Section 4.2: with 7 compensation bits, >95% of model values
    // survive pre-alignment exactly.  Gaussian weight tensors have
    // exactly this value locality.
    ecssd::sim::Rng rng(4);
    std::vector<Cfp32Vector> vectors;
    for (int v = 0; v < 100; ++v) {
        std::vector<float> values;
        for (int i = 0; i < 256; ++i)
            values.push_back(
                static_cast<float>(rng.gaussian(0.0, 0.05)));
        vectors.push_back(Cfp32Vector::preAlign(values));
    }
    EXPECT_GT(losslessFraction(vectors), 0.95);
}

TEST(Cfp32, StorageFootprintMatchesFp32PlusSharedExponent)
{
    const std::vector<float> values(128, 1.0f);
    const Cfp32Vector v = Cfp32Vector::preAlign(values);
    EXPECT_EQ(v.storageBytes(), 128u * 4u + 1u);
}

TEST(Cfp32, ToFloatsMatchesElementwiseDecode)
{
    const std::vector<float> values{1.0f, 2.5f, -3.75f, 0.125f};
    const Cfp32Vector v = Cfp32Vector::preAlign(values);
    const std::vector<float> decoded = v.toFloats();
    ASSERT_EQ(decoded.size(), values.size());
    for (std::size_t i = 0; i < values.size(); ++i)
        EXPECT_EQ(decoded[i], v.toFloat(i));
}
