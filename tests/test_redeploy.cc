/**
 * @file
 * Zero-downtime weight hot-swap tests: the redeploy state machine,
 * the budgeted staging ledger, the full EcssdApi session lifecycle
 * across an epoch flip (drain windows, staleness, abort, rollback
 * triggers), the metamorphic identical-weights swap, the server's
 * batch-boundary flip, and the fleet's rolling redeploy.
 */

#include <algorithm>
#include <sstream>

#include <gtest/gtest.h>

#include "ecssd/api.hh"
#include "ecssd/scale_out.hh"
#include "ecssd/server.hh"
#include "sim/metrics.hh"
#include "sim/rng.hh"

using namespace ecssd;

namespace
{

struct ApiFixture
{
    /** A deployed accelerator-mode API on a small device. */
    ApiFixture()
        : spec(makeSpec()), model(spec, 1), api(makeOptions())
    {
        api.ecssdEnable();
        api.weightDeploy(model.weights(), spec);
    }

    static xclass::BenchmarkSpec
    makeSpec()
    {
        xclass::BenchmarkSpec spec = xclass::scaledDown(
            xclass::benchmarkByName("GNMT-E32K"), 512);
        spec.hiddenDim = 128;
        return spec;
    }

    static EcssdOptions
    makeOptions()
    {
        EcssdOptions options;
        options.ssd = ssdsim::smallTestConfig();
        options.ssd.channels = 8;
        return options;
    }

    /** Run one full query through @p session; every step must be Ok.
     *  @return The prediction. */
    xclass::ApproximateClassifier::Prediction
    serve(InferenceSession &session, const std::vector<float> &query,
          std::size_t k = 5)
    {
        EXPECT_EQ(session.sendInt4(query), Status::Ok);
        EXPECT_EQ(session.sendCfp32(query), Status::Ok);
        EXPECT_EQ(session.screen(), Status::Ok);
        EXPECT_EQ(session.classify(), Status::Ok);
        xclass::ApproximateClassifier::Prediction prediction;
        EXPECT_EQ(session.results(k, prediction), Status::Ok);
        return prediction;
    }

    /** Record @p count queries into the API's recent-query ring (the
     *  warm-up / validation replay material). */
    std::vector<std::vector<float>>
    recordQueries(int count, std::uint64_t seed = 7)
    {
        sim::Rng rng(seed);
        std::vector<std::vector<float>> queries;
        for (int q = 0; q < count; ++q) {
            queries.push_back(model.sampleQuery(rng));
            auto session = api.beginInference();
            serve(session, queries.back());
        }
        return queries;
    }

    /** Advance the active redeploy until it reaches @p phase (dies if
     *  it terminates first). */
    void
    advanceUntil(RedeployPhase phase)
    {
        for (int step = 0; step < 100000; ++step) {
            const RedeployStatus status = api.redeployStatus();
            if (status.phase == phase)
                return;
            ASSERT_FALSE(status.phase == RedeployPhase::Committed
                         || status.phase == RedeployPhase::RolledBack)
                << "redeploy terminated in " << toString(status.phase)
                << " before reaching " << toString(phase);
            api.redeployAdvance();
        }
        FAIL() << "redeploy never reached " << toString(phase);
    }

    xclass::BenchmarkSpec spec;
    xclass::SyntheticModel model;
    EcssdApi api;
};

bool
samePrediction(const xclass::ApproximateClassifier::Prediction &a,
               const xclass::ApproximateClassifier::Prediction &b)
{
    return a.topCategories == b.topCategories
        && a.topScores == b.topScores;
}

} // namespace

// ---------------------------------------------------------------------
// RedeployMachine / StagingLedger
// ---------------------------------------------------------------------

TEST(RedeployMachine, LegalPathCommits)
{
    RedeployMachine machine;
    EXPECT_EQ(machine.phase(), RedeployPhase::Idle);
    EXPECT_FALSE(machine.active());

    machine.begin(0);
    EXPECT_TRUE(machine.active());
    EXPECT_TRUE(machine.preFlip());
    machine.advanceTo(RedeployPhase::Warming, 10);
    machine.advanceTo(RedeployPhase::Validating, 20);
    machine.advanceTo(RedeployPhase::Flipping, 30);
    EXPECT_FALSE(machine.preFlip());
    machine.advanceTo(RedeployPhase::Draining, 30);
    machine.advanceTo(RedeployPhase::Committed, 40);
    EXPECT_TRUE(machine.terminal());
    EXPECT_FALSE(machine.active());
    EXPECT_EQ(machine.commits(), 1u);
    EXPECT_EQ(machine.rollbacks(), 0u);
    EXPECT_EQ(machine.reason(), RollbackReason::None);

    // Terminal machines can begin a fresh redeploy.
    machine.begin(50);
    EXPECT_EQ(machine.phase(), RedeployPhase::Staging);
}

TEST(RedeployMachine, IllegalTransitionsDie)
{
    RedeployMachine machine;
    // No redeploy active: neither advance nor rollback is legal.
    EXPECT_THROW(machine.advanceTo(RedeployPhase::Warming, 0),
                 sim::PanicError);
    EXPECT_THROW(machine.rollback(RollbackReason::Aborted, 0),
                 sim::PanicError);

    machine.begin(0);
    // Skipping a phase is a wedged owner, not a state.
    EXPECT_THROW(machine.advanceTo(RedeployPhase::Validating, 1),
                 sim::PanicError);
    EXPECT_THROW(machine.begin(1), sim::PanicError);
}

TEST(RedeployMachine, RollbackFromAnyActivePhase)
{
    RedeployMachine machine;
    machine.begin(0);
    machine.advanceTo(RedeployPhase::Warming, 1);
    machine.rollback(RollbackReason::ValidationRecall, 2);
    EXPECT_EQ(machine.phase(), RedeployPhase::RolledBack);
    EXPECT_EQ(machine.reason(), RollbackReason::ValidationRecall);
    EXPECT_EQ(machine.rollbacks(), 1u);
    EXPECT_EQ(machine.commits(), 0u);
}

TEST(StagingLedger, BudgetStretchesBackgroundTime)
{
    StagingLedger ledger;
    // 100 bytes whose stop-the-world deploy takes 1000 ticks, staged
    // at a 25% bandwidth share in 30-byte steps.
    ledger.reset(100, 1000, 0.25, 30);
    EXPECT_FALSE(ledger.done());
    sim::Tick elapsed = 0;
    unsigned steps = 0;
    while (!ledger.done()) {
        elapsed += ledger.step();
        ++steps;
        ASSERT_LT(steps, 100u);
    }
    EXPECT_EQ(steps, 4u); // 30 + 30 + 30 + 10
    EXPECT_EQ(ledger.stagedBytes(), 100u);
    // The budget stretches the 1000-tick copy by 1/0.25.
    EXPECT_EQ(elapsed, ledger.elapsed());
    EXPECT_NEAR(static_cast<double>(elapsed), 4000.0, 2.0);
    // A done ledger stages nothing further.
    EXPECT_EQ(ledger.step(), 0u);
}

// ---------------------------------------------------------------------
// EcssdApi: guards and the commit path
// ---------------------------------------------------------------------

TEST(ApiRedeploy, GuardsReportThroughStatus)
{
    ApiFixture f;
    EcssdApi api(ApiFixture::makeOptions());
    // Accelerator mode is a precondition.
    EXPECT_EQ(api.redeployBegin(f.model.weights(), f.spec),
              Status::WrongMode);
    api.ecssdEnable();
    // So is a first stop-the-world deployment.
    EXPECT_EQ(api.redeployBegin(f.model.weights(), f.spec),
              Status::NotDeployed);
    api.weightDeploy(f.model.weights(), f.spec);

    // Mismatched weights/spec.
    xclass::BenchmarkSpec wrong = f.spec;
    wrong.categories *= 2;
    EXPECT_EQ(api.redeployBegin(f.model.weights(), wrong),
              Status::DimensionMismatch);

    // Redeploy calls with nothing in flight.
    EXPECT_EQ(api.redeployAdvance(), Status::NoRedeploy);
    EXPECT_EQ(api.redeployAbort(), Status::NoRedeploy);
    EXPECT_EQ(api.redeployStatus().phase, RedeployPhase::Idle);

    // One redeploy at a time: a second begin is rejected, the first
    // stays active.
    EXPECT_EQ(api.redeployBegin(f.model.weights(), f.spec),
              Status::Ok);
    EXPECT_EQ(api.redeployBegin(f.model.weights(), f.spec),
              Status::RedeployActive);
    EXPECT_EQ(api.redeployStatus().phase, RedeployPhase::Staging);
}

TEST(ApiRedeploy, IdenticalWeightsSwapCommits)
{
    ApiFixture f;
    EcssdApi &api = f.api;
    f.recordQueries(4);
    EXPECT_EQ(api.deployEpoch(), 1u);
    EXPECT_EQ(api.weightVersion(), 1u);

    ASSERT_EQ(api.redeployBegin(f.model.weights(), f.spec),
              Status::Ok);
    const sim::Tick staging = api.redeployRun();
    EXPECT_GT(staging, 0u);

    const RedeployStatus status = api.redeployStatus();
    EXPECT_EQ(status.phase, RedeployPhase::Committed);
    EXPECT_EQ(status.reason, RollbackReason::None);
    EXPECT_EQ(status.stagedBytes, status.totalBytes);
    EXPECT_GT(status.totalBytes, 0u);
    // Identical weights screen identically: exact full recall.
    EXPECT_DOUBLE_EQ(status.validationRecall, 1.0);
    EXPECT_EQ(status.oldEpoch, 1u);
    EXPECT_EQ(status.newEpoch, 2u);
    EXPECT_EQ(api.deployEpoch(), 2u);
    EXPECT_EQ(api.weightVersion(), 2u);

    // The new epoch serves.
    sim::Rng rng(9);
    auto session = api.beginInference();
    EXPECT_EQ(session.epoch(), 2u);
    f.serve(session, f.model.sampleQuery(rng));
}

TEST(ApiRedeploy, OldSessionServesThroughDrainThenCloses)
{
    ApiFixture f;
    EcssdApi &api = f.api;
    const auto queries = f.recordQueries(2);

    // Hold a session open across the flip; a generous deadline keeps
    // the drain window open while we serve on it.
    RedeployConfig config;
    config.drainDeadline = sim::milliseconds(10000.0);
    auto old_session = api.beginInference();
    EXPECT_EQ(old_session.epoch(), 1u);

    ASSERT_EQ(api.redeployBegin(f.model.weights(), f.spec, config),
              Status::Ok);
    f.advanceUntil(RedeployPhase::Draining);
    EXPECT_EQ(api.deployEpoch(), 2u);
    EXPECT_EQ(api.redeployStatus().inFlightOldSessions, 1u);

    // The old-epoch session keeps serving on the draining version.
    f.serve(old_session, queries[0]);
    EXPECT_EQ(api.redeployStatus().phase, RedeployPhase::Draining);

    // Closing the last old-epoch session commits the drain at once.
    { InferenceSession closer = std::move(old_session); }
    EXPECT_EQ(api.redeployStatus().phase, RedeployPhase::Committed);
    EXPECT_EQ(api.redeployStatus().inFlightOldSessions, 0u);
}

TEST(ApiRedeploy, StaleSessionOnlyAfterDrainDeadline)
{
    ApiFixture f;
    EcssdApi &api = f.api;
    const auto queries = f.recordQueries(2);

    RedeployConfig config;
    config.drainDeadline = sim::milliseconds(500.0);
    config.drainPollInterval = sim::milliseconds(100.0);
    auto old_session = api.beginInference();

    ASSERT_EQ(api.redeployBegin(f.model.weights(), f.spec, config),
              Status::Ok);
    f.advanceUntil(RedeployPhase::Draining);

    // Inside the drain window the old session is NOT stale.
    EXPECT_EQ(old_session.sendInt4(queries[0]), Status::Ok);

    // Burn through the deadline with drain polls; the default policy
    // commits and force-retires the straggler.
    while (api.redeployStatus().phase == RedeployPhase::Draining)
        api.redeployAdvance();
    EXPECT_EQ(api.redeployStatus().phase, RedeployPhase::Committed);
    EXPECT_GE(api.redeployStatus().drainElapsed,
              config.drainDeadline);

    EXPECT_EQ(old_session.sendInt4(queries[0]),
              Status::StaleSession);
    EXPECT_EQ(old_session.classify(), Status::StaleSession);

    // New-epoch sessions are untouched.
    auto fresh = api.beginInference();
    f.serve(fresh, queries[1]);
}

TEST(ApiRedeploy, DrainTimeoutRollsBackUnderStrictPolicy)
{
    ApiFixture f;
    EcssdApi &api = f.api;
    const auto queries = f.recordQueries(2);

    RedeployConfig config;
    config.drainDeadline = sim::milliseconds(1.0);
    config.drainPollInterval = sim::milliseconds(1.0);
    config.drainTimeoutRollsBack = true;
    auto old_session = api.beginInference();

    ASSERT_EQ(api.redeployBegin(f.model.weights(), f.spec, config),
              Status::Ok);
    f.advanceUntil(RedeployPhase::Draining);
    // A session admitted during the drain binds to the new epoch.
    auto new_session = api.beginInference();
    EXPECT_EQ(new_session.epoch(), 2u);

    while (api.redeployStatus().phase == RedeployPhase::Draining)
        api.redeployAdvance();

    const RedeployStatus status = api.redeployStatus();
    EXPECT_EQ(status.phase, RedeployPhase::RolledBack);
    EXPECT_EQ(status.reason, RollbackReason::DrainTimeout);

    // The old epoch serves again; the rolled-back epoch is burned.
    EXPECT_EQ(api.deployEpoch(), 1u);
    EXPECT_EQ(api.weightVersion(), 1u);
    f.serve(old_session, queries[0]);
    EXPECT_EQ(new_session.sendInt4(queries[1]),
              Status::StaleSession);
    // And the next admitted session never reuses the burned epoch.
    auto after = api.beginInference();
    EXPECT_EQ(after.epoch(), 1u);
}

TEST(ApiRedeploy, AbortMidWarmingRollsBackAndReleasesCapacity)
{
    ApiFixture f;
    EcssdApi &api = f.api;
    f.recordQueries(4);

    ASSERT_EQ(api.redeployBegin(f.model.weights(), f.spec),
              Status::Ok);
    f.advanceUntil(RedeployPhase::Warming);
    EXPECT_EQ(api.redeployAbort(), Status::Ok);

    const RedeployStatus status = api.redeployStatus();
    EXPECT_EQ(status.phase, RedeployPhase::RolledBack);
    EXPECT_EQ(status.reason, RollbackReason::Aborted);
    EXPECT_EQ(api.deployEpoch(), 1u);

    // The live version was never disturbed...
    sim::Rng rng(11);
    auto session = api.beginInference();
    f.serve(session, f.model.sampleQuery(rng));
    // ...and the staged reservation was released: a fresh redeploy
    // can claim the same capacity again.
    EXPECT_EQ(api.redeployBegin(f.model.weights(), f.spec),
              Status::Ok);
    EXPECT_EQ(api.redeployStatus().phase, RedeployPhase::Staging);
}

TEST(ApiRedeploy, AbortAfterFlipIsRejected)
{
    ApiFixture f;
    EcssdApi &api = f.api;
    f.recordQueries(2);

    RedeployConfig config;
    config.drainDeadline = sim::milliseconds(10000.0);
    auto old_session = api.beginInference();
    ASSERT_EQ(api.redeployBegin(f.model.weights(), f.spec, config),
              Status::Ok);
    f.advanceUntil(RedeployPhase::Draining);

    // Post-flip the swap is already serving: abort is too late.
    EXPECT_EQ(api.redeployAbort(), Status::RedeployActive);
    EXPECT_EQ(api.redeployStatus().phase, RedeployPhase::Draining);
}

// ---------------------------------------------------------------------
// EcssdApi: rollback triggers
// ---------------------------------------------------------------------

TEST(ApiRedeploy, ValidationRecallBelowFloorRollsBack)
{
    ApiFixture f;
    EcssdApi &api = f.api;
    f.recordQueries(4);

    // Freshly-drawn synthetic weights share no screening structure
    // with the deployed version: shadow recall collapses and the
    // default 0.9 floor must roll the swap back.
    xclass::SyntheticModel next(f.spec, 2);
    ASSERT_EQ(api.redeployBegin(next.weights(), f.spec), Status::Ok);
    api.redeployRun();

    const RedeployStatus status = api.redeployStatus();
    EXPECT_EQ(status.phase, RedeployPhase::RolledBack);
    EXPECT_EQ(status.reason, RollbackReason::ValidationRecall);
    EXPECT_LT(status.validationRecall, 0.9);
    EXPECT_EQ(api.deployEpoch(), 1u);
    EXPECT_EQ(api.weightVersion(), 1u);

    // Zero failed requests: the old version serves on.
    sim::Rng rng(13);
    auto session = api.beginInference();
    f.serve(session, f.model.sampleQuery(rng));
}

TEST(ApiRedeploy, ReadOnlyDeviceRollsBackStaging)
{
    ApiFixture f;
    EcssdApi &api = f.api;
    f.recordQueries(2);

    // The end-of-life latch: a read-only device can never accept the
    // staged programs.
    api.system().ssd().ftl().forceReadOnly();
    ASSERT_EQ(api.redeployBegin(f.model.weights(), f.spec),
              Status::Ok);
    api.redeployRun();

    const RedeployStatus status = api.redeployStatus();
    EXPECT_EQ(status.phase, RedeployPhase::RolledBack);
    EXPECT_EQ(status.reason, RollbackReason::DeviceReadOnly);
    EXPECT_EQ(api.deployEpoch(), 1u);

    // Reads still serve on the read-only device.
    sim::Rng rng(17);
    auto session = api.beginInference();
    f.serve(session, f.model.sampleQuery(rng));
}

TEST(ApiRedeploy, DramPressureRollsBackBeforeStaging)
{
    ApiFixture f;
    EcssdApi &api = f.api;

    // Eat the device's leftover DRAM down to a sliver the staged
    // INT4 screener cannot fit.
    ssdsim::DramModel &dram = api.system().ssd().dram();
    dram.reserve(dram.availableBytes() - 16);

    ASSERT_EQ(api.redeployBegin(f.model.weights(), f.spec),
              Status::Ok);
    const RedeployStatus status = api.redeployStatus();
    EXPECT_EQ(status.phase, RedeployPhase::RolledBack);
    EXPECT_EQ(status.reason, RollbackReason::DramPressure);
    EXPECT_EQ(api.deployEpoch(), 1u);

    sim::Rng rng(19);
    auto session = api.beginInference();
    f.serve(session, f.model.sampleQuery(rng));
}

// ---------------------------------------------------------------------
// Metamorphic: a swap to identical weights is invisible
// ---------------------------------------------------------------------

TEST(ApiRedeploy, IdenticalWeightsSwapIsBitIdentical)
{
    ApiFixture f;
    EcssdApi &api = f.api;
    const auto queries = f.recordQueries(3);

    // Reference predictions before the swap.
    std::vector<xclass::ApproximateClassifier::Prediction> before;
    for (const auto &query : queries) {
        auto session = api.beginInference();
        before.push_back(f.serve(session, query));
    }

    RedeployConfig config;
    config.drainDeadline = sim::milliseconds(10000.0);
    auto old_session = api.beginInference();
    ASSERT_EQ(api.redeployBegin(f.model.weights(), f.spec, config),
              Status::Ok);
    f.advanceUntil(RedeployPhase::Draining);

    // During the drain, the old-epoch session answers bit-identically
    // (it still runs the old version's datapaths).
    for (std::size_t q = 0; q < queries.size(); ++q) {
        const auto during = f.serve(old_session, queries[q]);
        EXPECT_TRUE(samePrediction(before[q], during))
            << "old-epoch prediction diverged during drain, query "
            << q;
    }

    { InferenceSession closer = std::move(old_session); }
    ASSERT_EQ(api.redeployStatus().phase, RedeployPhase::Committed);
    EXPECT_DOUBLE_EQ(api.redeployStatus().validationRecall, 1.0);

    // After the commit, the new version's datapaths are rebuilt from
    // the same weights and seed: still bit-identical.
    for (std::size_t q = 0; q < queries.size(); ++q) {
        auto session = api.beginInference();
        const auto after = f.serve(session, queries[q]);
        EXPECT_TRUE(samePrediction(before[q], after))
            << "prediction diverged across the swap, query " << q;
    }
}

// ---------------------------------------------------------------------
// Observability and health
// ---------------------------------------------------------------------

TEST(ApiRedeploy, NoRedeployRunPublishesNoRedeployKeys)
{
    ApiFixture f;
    EcssdApi &api = f.api;
    sim::MetricsRegistry registry;
    api.attachObservability(&registry, nullptr);
    f.recordQueries(2);

    // A run that never began a redeploy must stay clean of the
    // redeploy namespace (byte-identity with pre-hot-swap builds).
    api.publishRedeployMetrics(registry);
    std::ostringstream json;
    registry.writeJson(json);
    EXPECT_EQ(json.str().find("redeploy."), std::string::npos);

    // After a committed swap the namespace appears.
    ASSERT_EQ(api.redeployBegin(f.model.weights(), f.spec),
              Status::Ok);
    api.redeployRun();
    ASSERT_EQ(api.redeployStatus().phase, RedeployPhase::Committed);
    api.publishRedeployMetrics(registry);
    std::ostringstream after;
    registry.writeJson(after);
    EXPECT_NE(after.str().find("redeploy.phase"), std::string::npos);
    EXPECT_NE(after.str().find("redeploy.commits"),
              std::string::npos);
}

TEST(ApiRedeploy, HealthReportCarriesServingIdentity)
{
    ApiFixture f;
    EcssdApi &api = f.api;
    f.recordQueries(2);

    ssdsim::HealthReport before = api.system().health(0);
    EXPECT_EQ(before.deployEpoch, 1u);
    EXPECT_EQ(before.weightVersion, 1u);

    ASSERT_EQ(api.redeployBegin(f.model.weights(), f.spec),
              Status::Ok);
    api.redeployRun();
    ASSERT_EQ(api.redeployStatus().phase, RedeployPhase::Committed);

    ssdsim::HealthReport after = api.system().health(0);
    EXPECT_EQ(after.deployEpoch, 2u);
    EXPECT_EQ(after.weightVersion, 2u);
}

// ---------------------------------------------------------------------
// InferenceServer: the batch-boundary flip
// ---------------------------------------------------------------------

namespace
{

struct ServerFixture
{
    ServerFixture() : spec(makeSpec()), model(spec, 1) {}

    static xclass::BenchmarkSpec
    makeSpec()
    {
        xclass::BenchmarkSpec spec = xclass::scaledDown(
            xclass::benchmarkByName("GNMT-E32K"), 1024);
        spec.hiddenDim = 128;
        spec.batchSize = 4;
        return spec;
    }

    xclass::BenchmarkSpec spec;
    xclass::SyntheticModel model;
};

} // namespace

TEST(ServerRedeploy, SwapCommitsUnderLoadWithNoLostRequests)
{
    ServerFixture f;
    InferenceServer server(f.model.weights(), f.spec,
                           EcssdOptions::full(), &f.model.basis());
    EXPECT_EQ(server.deployEpoch(), 1u);
    EXPECT_EQ(server.weightVersion(), 1u);

    sim::Rng rng(23);
    std::vector<InferenceServer::RequestId> ids;
    for (int i = 0; i < 12; ++i)
        ids.push_back(server.enqueue(f.model.sampleQuery(rng)));

    ASSERT_EQ(server.beginRedeploy(f.model.weights(), f.spec,
                                  RedeployConfig{}, &f.model.basis()),
              Status::Ok);
    EXPECT_TRUE(server.redeployActive());
    // One swap at a time; a changed input width is unservable.
    EXPECT_EQ(server.beginRedeploy(f.model.weights(), f.spec,
                                  RedeployConfig{}, &f.model.basis()),
              Status::RedeployActive);

    const auto responses = server.processAll(5);
    ASSERT_EQ(responses.size(), ids.size());
    // Every enqueued request came back exactly once, served.
    std::vector<InferenceServer::RequestId> seen;
    for (const auto &response : responses) {
        seen.push_back(response.id);
        EXPECT_EQ(response.status,
                  InferenceServer::Response::Status::Ok);
        EXPECT_EQ(response.prediction.topCategories.size(), 5u);
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, ids);
    EXPECT_EQ(server.serverStats().shedRequests, 0u);

    // The swap flipped at a batch boundary and committed.
    EXPECT_FALSE(server.redeployActive());
    EXPECT_EQ(server.redeployStatus().phase,
              RedeployPhase::Committed);
    EXPECT_DOUBLE_EQ(server.redeployStatus().validationRecall, 1.0);
    EXPECT_EQ(server.deployEpoch(), 2u);
    EXPECT_EQ(server.weightVersion(), 2u);

    // The flipped server keeps serving.
    server.enqueue(f.model.sampleQuery(rng));
    const auto post = server.processAll(5);
    ASSERT_EQ(post.size(), 1u);
    EXPECT_EQ(post[0].status, InferenceServer::Response::Status::Ok);
}

TEST(ServerRedeploy, DimensionChangeIsRejected)
{
    ServerFixture f;
    InferenceServer server(f.model.weights(), f.spec,
                           EcssdOptions::full(), &f.model.basis());
    xclass::BenchmarkSpec widened = f.spec;
    widened.hiddenDim *= 2;
    // Queued requests could no longer be served on a wider input.
    EXPECT_EQ(server.beginRedeploy(f.model.weights(), widened),
              Status::DimensionMismatch);
    EXPECT_FALSE(server.redeployActive());
}

TEST(ServerRedeploy, ValidationFailureKeepsOldVersionServing)
{
    ServerFixture f;
    InferenceServer server(f.model.weights(), f.spec,
                           EcssdOptions::full(), &f.model.basis());
    sim::Rng rng(29);
    for (int i = 0; i < 8; ++i)
        server.enqueue(f.model.sampleQuery(rng));

    xclass::SyntheticModel next(f.spec, 2);
    ASSERT_EQ(server.beginRedeploy(next.weights(), f.spec),
              Status::Ok);
    const auto responses = server.processAll(5);
    EXPECT_EQ(responses.size(), 8u);
    for (const auto &response : responses)
        EXPECT_EQ(response.status,
                  InferenceServer::Response::Status::Ok);

    EXPECT_EQ(server.redeployStatus().phase,
              RedeployPhase::RolledBack);
    EXPECT_EQ(server.redeployStatus().reason,
              RollbackReason::ValidationRecall);
    EXPECT_EQ(server.deployEpoch(), 1u);
    EXPECT_EQ(server.weightVersion(), 1u);
}

TEST(ServerRedeploy, RetryBackoffServesThroughTheFlip)
{
    // A flaky device under the FailBatch policy retries batches with
    // backoff; the swap must neither lose those requests nor flip
    // mid-retry (the flip is a batch-boundary event).
    ServerFixture f;
    EcssdOptions flaky = EcssdOptions::full();
    flaky.ssd.uncorrectableReadRate = 0.05;
    flaky.degradedPolicy = accel::DegradedReadPolicy::FailBatch;
    ServerConfig config;
    config.maxBatchRetries = 3;
    InferenceServer server(f.model.weights(), f.spec, flaky,
                           &f.model.basis(), config);

    sim::Rng rng(31);
    std::vector<InferenceServer::RequestId> ids;
    for (int i = 0; i < 16; ++i)
        ids.push_back(server.enqueue(f.model.sampleQuery(rng)));
    // Relax the recall floor: the flaky screener comparison is still
    // exact (identical weights), but keep the test about retries.
    RedeployConfig swap;
    ASSERT_EQ(server.beginRedeploy(f.model.weights(), f.spec, swap,
                                  &f.model.basis()),
              Status::Ok);

    const auto responses = server.processAll(5);
    ASSERT_EQ(responses.size(), ids.size());
    std::vector<InferenceServer::RequestId> seen;
    for (const auto &response : responses) {
        seen.push_back(response.id);
        // Served (possibly degraded after exhausted retries), never
        // lost to the swap.
        EXPECT_NE(response.status,
                  InferenceServer::Response::Status::Shed);
    }
    std::sort(seen.begin(), seen.end());
    EXPECT_EQ(seen, ids);

    const RedeployStatus status = server.redeployStatus();
    EXPECT_TRUE(status.phase == RedeployPhase::Committed
                || status.phase == RedeployPhase::RolledBack)
        << "swap left non-terminal: " << toString(status.phase);
}

TEST(ServerRedeploy, PublishesServingIdentityAndSwapCounters)
{
    ServerFixture f;
    InferenceServer server(f.model.weights(), f.spec,
                           EcssdOptions::full(), &f.model.basis());
    sim::Rng rng(37);
    for (int i = 0; i < 4; ++i)
        server.enqueue(f.model.sampleQuery(rng));
    server.processAll(5);

    // The serving identity is always exported...
    sim::MetricsRegistry before;
    server.publishMetrics(before);
    EXPECT_TRUE(before.has("server.deploy_epoch"));
    EXPECT_TRUE(before.has("server.weight_version"));
    // ...but the swap namespace only once a swap ran.
    std::ostringstream clean;
    before.writeJson(clean);
    EXPECT_EQ(clean.str().find("server.redeploy_"),
              std::string::npos);

    ASSERT_EQ(server.beginRedeploy(f.model.weights(), f.spec,
                                  RedeployConfig{}, &f.model.basis()),
              Status::Ok);
    while (server.redeployActive())
        server.redeployAdvance();
    ASSERT_EQ(server.redeployStatus().phase,
              RedeployPhase::Committed);

    sim::MetricsRegistry after;
    server.publishMetrics(after);
    EXPECT_EQ(after.gauge("server.deploy_epoch").value(), 2.0);
    EXPECT_EQ(after.gauge("server.redeploy_commits").value(), 1.0);
    EXPECT_EQ(after.gauge("server.redeploy_rollbacks").value(), 0.0);
}

// ---------------------------------------------------------------------
// Scale-out fleet: rolling redeploy
// ---------------------------------------------------------------------

namespace
{

xclass::BenchmarkSpec
fleetSpec()
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 2048);
    spec.hiddenDim = 128;
    return spec;
}

} // namespace

TEST(FleetRedeploy, RollingSwapFlipsEveryShard)
{
    ScaleOutEcssd fleet(fleetSpec(), 4);
    EXPECT_EQ(fleet.deployEpoch(), 1u);
    EXPECT_EQ(fleet.weightVersion(), 1u);

    const FleetRedeployResult result = fleet.rollingRedeploy();
    EXPECT_FALSE(result.rolledBack);
    EXPECT_EQ(result.shardsSwapped, 4u);
    EXPECT_EQ(result.shardsSkipped, 0u);
    EXPECT_GT(result.stagingTime, 0u);
    EXPECT_EQ(result.weightVersion, 2u);
    EXPECT_EQ(fleet.deployEpoch(), 2u);
    EXPECT_EQ(fleet.weightVersion(), 2u);
    // Every shard reports the new serving identity through SMART.
    for (unsigned d = 0; d < fleet.devices(); ++d) {
        const ssdsim::HealthReport report = fleet.shardHealthReport(d);
        EXPECT_EQ(report.deployEpoch, 2u);
        EXPECT_EQ(report.weightVersion, 2u);
    }
    // The rolled fleet still serves.
    const ScaleOutResult run = fleet.runInference(1);
    EXPECT_EQ(run.survivingDevices, 4u);
}

TEST(FleetRedeploy, DeadShardIsSkippedNotFatal)
{
    ScaleOutEcssd fleet(fleetSpec(), 4);
    fleet.failShard(2);

    const FleetRedeployResult result = fleet.rollingRedeploy();
    EXPECT_FALSE(result.rolledBack);
    EXPECT_EQ(result.shardsSwapped, 3u);
    EXPECT_EQ(result.shardsSkipped, 1u);
    EXPECT_EQ(fleet.deployEpoch(), 2u);
}

TEST(FleetRedeploy, ReadOnlyShardRevertsTheWholeRoll)
{
    ScaleOutEcssd fleet(fleetSpec(), 4);
    // Shard 2 latches read-only: the roll swaps shards 0 and 1, then
    // must revert them — the fleet never serves a mixed deployment.
    fleet.shardSystem(2).ssd().ftl().forceReadOnly();

    const FleetRedeployResult result = fleet.rollingRedeploy();
    EXPECT_TRUE(result.rolledBack);
    EXPECT_EQ(result.reason, RollbackReason::ShardLoss);
    EXPECT_EQ(result.shardsSwapped, 0u);
    EXPECT_EQ(fleet.deployEpoch(), 1u);
    EXPECT_EQ(fleet.weightVersion(), 1u);
    for (unsigned d = 0; d < fleet.devices(); ++d) {
        const ssdsim::HealthReport report = fleet.shardHealthReport(d);
        EXPECT_EQ(report.deployEpoch, 1u) << "shard " << d;
        EXPECT_EQ(report.weightVersion, 1u) << "shard " << d;
    }
    // A fleet with no live shard at all also reports a rollback.
    ScaleOutEcssd dead(fleetSpec(), 2);
    dead.failShard(0);
    dead.failShard(1);
    const FleetRedeployResult none = dead.rollingRedeploy();
    EXPECT_TRUE(none.rolledBack);
    EXPECT_EQ(none.reason, RollbackReason::ShardLoss);
    EXPECT_EQ(dead.deployEpoch(), 1u);
}
