/**
 * @file
 * Wear-lifecycle tests: the erase-count/retention error model, the
 * determinism guarantee for zero-coefficient configurations, the
 * patrol scrub, static wear leveling, end-of-life read-only mode,
 * configuration validation, and the HealthReport exported through
 * the SSD/NVMe front ends.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "ssdsim/flash.hh"
#include "ssdsim/ftl.hh"
#include "ssdsim/nvme.hh"
#include "ssdsim/ssd.hh"

using namespace ecssd;
using namespace ecssd::ssdsim;

namespace
{

/** Single-pool geometry: wear-leveling behaviour is easiest to pin
 *  down when one pool owns every block. */
SsdConfig
singlePoolConfig()
{
    SsdConfig config = smallTestConfig();
    config.channels = 1;
    config.diesPerChannel = 1;
    config.planesPerDie = 1;
    return config;
}

} // namespace

// --- Config validation -------------------------------------------------

TEST(WearConfig, ValidateRejectsBadGeometry)
{
    SsdConfig config = smallTestConfig();
    config.channels = 0;
    EXPECT_THROW(config.validate(), sim::FatalError);

    config = smallTestConfig();
    config.pagesPerBlock = 0;
    EXPECT_THROW(config.validate(), sim::FatalError);
}

TEST(WearConfig, ValidateRejectsOutOfRangeRates)
{
    SsdConfig config = smallTestConfig();
    config.uncorrectableReadRate = 1.5;
    EXPECT_THROW(config.validate(), sim::FatalError);

    config = smallTestConfig();
    config.readRetryRate = -0.1;
    EXPECT_THROW(config.validate(), sim::FatalError);

    config = smallTestConfig();
    config.wearErrorCoefficient = -1.0;
    EXPECT_THROW(config.validate(), sim::FatalError);
}

TEST(WearConfig, ValidateRejectsContradictoryScrubThreshold)
{
    // A threshold at or below the base rate would relocate every
    // page on every pass.
    SsdConfig config = smallTestConfig();
    config.uncorrectableReadRate = 1e-3;
    config.wearErrorCoefficient = 1e-4;
    config.scrubErrorThreshold = 1e-3;
    EXPECT_THROW(config.validate(), sim::FatalError);

    // Scrub with no error model: pages could never cross the
    // threshold.
    config = smallTestConfig();
    config.scrubErrorThreshold = 1e-4;
    EXPECT_THROW(config.validate(), sim::FatalError);

    // Scrub with a zero page budget examines nothing.
    config = smallTestConfig();
    config.retentionErrorCoefficient = 1e-3;
    config.scrubErrorThreshold = 1e-4;
    config.scrubBudgetPages = 0;
    EXPECT_THROW(config.validate(), sim::FatalError);
}

TEST(WearConfig, ValidateRejectsBornReadOnlyEol)
{
    SsdConfig config = smallTestConfig();
    config.eolSpareBlocks = config.blocksPerPlane;
    EXPECT_THROW(config.validate(), sim::FatalError);
}

TEST(WearConfig, ValidateAcceptsDefaultsAndWearSetups)
{
    EXPECT_NO_THROW(SsdConfig{}.validate());
    EXPECT_NO_THROW(smallTestConfig().validate());

    SsdConfig wear = smallTestConfig();
    wear.wearErrorCoefficient = 1e-4;
    wear.retentionErrorCoefficient = 1e-3;
    wear.scrubErrorThreshold = 1e-5;
    wear.wearLevelSpreadBound = 8;
    wear.eolSpareBlocks = 2;
    EXPECT_NO_THROW(wear.validate());
}

// --- The error model ---------------------------------------------------

TEST(WearModel, PredictedRateGrowsWithEraseCountAndAge)
{
    SsdConfig config = smallTestConfig();
    config.uncorrectableReadRate = 1e-4;
    config.wearErrorCoefficient = 1e-2;
    config.wearRatedCycles = 100.0;
    config.retentionErrorCoefficient = 1e-3;

    const double fresh = config.predictedUncorrectableRate(0, 0);
    EXPECT_DOUBLE_EQ(fresh, 1e-4);

    const double worn = config.predictedUncorrectableRate(100, 0);
    EXPECT_NEAR(worn, 1e-4 + 1e-2, 1e-9);

    const double aged = config.predictedUncorrectableRate(
        0, sim::seconds(10.0));
    EXPECT_NEAR(aged, 1e-4 + 1e-2, 1e-9);

    // Superlinear in erase count (default exponent 2).
    const double half = config.predictedUncorrectableRate(50, 0);
    EXPECT_LT(half - fresh, (worn - fresh) / 2.0);

    // Clamped at certainty.
    EXPECT_DOUBLE_EQ(
        config.predictedUncorrectableRate(1000000, 0), 1.0);
}

TEST(WearModel, ZeroCoefficientsMatchFlatModelExactly)
{
    EXPECT_FALSE(smallTestConfig().wearModelEnabled());
    SsdConfig config = smallTestConfig();
    config.uncorrectableReadRate = 0.3;
    EXPECT_EQ(config.predictedUncorrectableRate(5000, sim::seconds(
                  1000.0)),
              config.uncorrectableReadRate);
}

TEST(WearModel, FlashTracksEraseCountsAndRetention)
{
    SsdConfig config = smallTestConfig();
    config.retentionErrorCoefficient = 1e-3; // enables tracking
    FlashArray flash(config);
    const PhysicalPage ppa{0, 0, 0, 3, 0};

    EXPECT_EQ(flash.blockEraseCount(ppa), 0u);
    flash.eraseBlock(ppa, 0);
    flash.eraseBlock(ppa, 0);
    EXPECT_EQ(flash.blockEraseCount(ppa), 2u);

    // A never-programmed block ages from deployment (tick 0).
    EXPECT_EQ(flash.retentionAge(ppa, sim::seconds(5.0)),
              sim::seconds(5.0));
    // Programming stamps the block; erasing resets the stamp.
    const sim::Tick programmed_at =
        flash.programPage(ppa, sim::seconds(5.0));
    EXPECT_LT(
        flash.retentionAge(ppa, programmed_at + sim::seconds(1.0)),
        sim::seconds(2.0));
    flash.eraseBlock(ppa, programmed_at + sim::seconds(1.0));
    EXPECT_EQ(flash.blockEraseCount(ppa), 3u);
}

TEST(WearModel, WornBlocksFlagMoreUncorrectableReads)
{
    SsdConfig config = smallTestConfig();
    config.wearErrorCoefficient = 1.0;
    config.wearRatedCycles = 50.0;
    FlashArray flash(config);

    const PhysicalPage worn{0, 0, 0, 0, 0};
    const PhysicalPage fresh{0, 0, 0, 1, 0};
    for (int e = 0; e < 60; ++e)
        flash.eraseBlock(worn, 0);

    unsigned worn_failures = 0, fresh_failures = 0;
    for (unsigned p = 0; p < 32; ++p) {
        bool uncorrectable = false;
        flash.readPage({0, 0, 0, 0, p % config.pagesPerBlock}, 0, 0,
                       0, &uncorrectable);
        worn_failures += uncorrectable ? 1 : 0;
        uncorrectable = false;
        flash.readPage({0, 0, 0, 1, p % config.pagesPerBlock}, 0, 0,
                       0, &uncorrectable);
        fresh_failures += uncorrectable ? 1 : 0;
    }
    // (60/50)^2 > 1 clamps the worn block to certain failure; the
    // fresh block has zero probability.
    EXPECT_EQ(worn_failures, 32u);
    EXPECT_EQ(fresh_failures, 0u);
    EXPECT_GE(flash.predictedUncorrectableRate(worn, 0), 1.0);
    EXPECT_EQ(flash.predictedUncorrectableRate(fresh, 0), 0.0);
}

TEST(WearModel, ZeroCoefficientTimelineIsBitIdentical)
{
    // The flat fault model and the wear model with zero coefficients
    // must produce the exact same draw sequence and ticks, whatever
    // the inactive shape knobs are set to.
    SsdConfig flat = smallTestConfig();
    flat.uncorrectableReadRate = 0.25;
    flat.readRetryRate = 0.1;
    SsdConfig shaped = flat;
    shaped.wearExponent = 7.0;
    shaped.wearRatedCycles = 11.0;
    shaped.eolMediaErrorRate = 0.5;
    shaped.scrubBudgetPages = 1;

    FlashArray a(flat), b(shaped);
    sim::Tick ta = 0, tb = 0;
    for (unsigned p = 0; p < 128; ++p) {
        const PhysicalPage ppa{p % 4, 0, 0, p % 16,
                               p % flat.pagesPerBlock};
        bool fa = false, fb = false;
        ta = a.readPage(ppa, ta, 0, 0, &fa);
        tb = b.readPage(ppa, tb, 0, 0, &fb);
        ASSERT_EQ(ta, tb) << "timelines diverged at read " << p;
        ASSERT_EQ(fa, fb) << "fault draws diverged at read " << p;
    }
    EXPECT_EQ(a.channelStats(0).uncorrectableReads,
              b.channelStats(0).uncorrectableReads);
}

// --- Patrol scrub ------------------------------------------------------

TEST(PatrolScrub, RefreshesRetentionAgedPages)
{
    SsdConfig config = smallTestConfig();
    config.retentionErrorCoefficient = 1e-3; // 1e-3 per second
    config.scrubErrorThreshold = 1e-4;       // crossed after 0.1 s
    config.scrubBudgetPages = 256;
    FlashArray flash(config);
    Ftl ftl(config, flash);

    sim::Tick now = 0;
    for (LogicalPage lpa = 0; lpa < 32; ++lpa)
        now = ftl.write(lpa, now);

    // Immediately after writing, nothing is old enough to refresh.
    sim::Tick young_pass = ftl.patrolScrub(now);
    EXPECT_GT(ftl.stats().scrubbedPages, 0u);
    EXPECT_EQ(ftl.stats().scrubRelocations, 0u);

    // After a long idle period every page predicts above threshold.
    now = young_pass + sim::seconds(60.0);
    now = ftl.patrolScrub(now);
    EXPECT_GT(ftl.stats().scrubRelocations, 0u);

    // The refresh re-stamped the relocated pages: scrubbing again
    // right away finds nothing old (cursor wraps to the same span).
    const std::uint64_t relocated = ftl.stats().scrubRelocations;
    for (int pass = 0; pass < 8; ++pass)
        now = ftl.patrolScrub(now);
    EXPECT_EQ(ftl.stats().scrubRelocations, relocated);

    // Mappings survived the refreshes.
    for (LogicalPage lpa = 0; lpa < 32; ++lpa)
        EXPECT_TRUE(ftl.translate(lpa).has_value());
}

TEST(PatrolScrub, DisabledScrubIsANoOp)
{
    const SsdConfig config = smallTestConfig();
    FlashArray flash(config);
    Ftl ftl(config, flash);
    sim::Tick now = 0;
    for (LogicalPage lpa = 0; lpa < 8; ++lpa)
        now = ftl.write(lpa, now);
    EXPECT_EQ(ftl.patrolScrub(now + sim::seconds(100.0)),
              now + sim::seconds(100.0));
    EXPECT_EQ(ftl.stats().scrubbedPages, 0u);
}

TEST(PatrolScrub, BudgetBoundsTheWorkPerPass)
{
    SsdConfig config = smallTestConfig();
    config.retentionErrorCoefficient = 1e-3;
    config.scrubErrorThreshold = 1e-5;
    config.scrubBudgetPages = 4;
    FlashArray flash(config);
    Ftl ftl(config, flash);

    sim::Tick now = 0;
    for (LogicalPage lpa = 0; lpa < 64; ++lpa)
        now = ftl.write(lpa, now);
    ftl.patrolScrub(now);
    EXPECT_EQ(ftl.stats().scrubbedPages, 4u);
    // An explicit budget overrides the configured one.
    ftl.patrolScrub(now, 10);
    EXPECT_EQ(ftl.stats().scrubbedPages, 14u);
}

// --- Static wear leveling ----------------------------------------------

TEST(WearLeveling, MigratesColdBlocksToBoundTheSpread)
{
    SsdConfig config = singlePoolConfig();
    config.wearLevelSpreadBound = 4;
    FlashArray flash(config);
    Ftl ftl(config, flash);

    // Cold data fills a few blocks, then a small hot set churns.
    sim::Tick now = 0;
    const LogicalPage cold_span = 24;
    for (LogicalPage lpa = 0; lpa < cold_span; ++lpa)
        now = ftl.write(lpa, now);
    for (int round = 0; round < 3000; ++round)
        now = ftl.write(cold_span + (round % 8), now);

    EXPECT_GT(ftl.stats().wearLevelRuns, 0u);
    EXPECT_GT(ftl.stats().wearLevelMoves, 0u);
    // The spread stays near the bound instead of growing with the
    // churn (the no-leveling fuzz tolerates up to 80).
    EXPECT_LE(ftl.eraseCountSpread(),
              config.wearLevelSpreadBound + 4);
    // Cold data survived its migrations.
    for (LogicalPage lpa = 0; lpa < cold_span; ++lpa)
        EXPECT_TRUE(ftl.translate(lpa).has_value());
}

TEST(WearLeveling, DisabledLevelingLetsTheSpreadGrow)
{
    SsdConfig config = singlePoolConfig();
    FlashArray flash(config);
    Ftl ftl(config, flash);

    sim::Tick now = 0;
    const LogicalPage cold_span = 24;
    for (LogicalPage lpa = 0; lpa < cold_span; ++lpa)
        now = ftl.write(lpa, now);
    for (int round = 0; round < 3000; ++round)
        now = ftl.write(cold_span + (round % 8), now);

    EXPECT_EQ(ftl.stats().wearLevelRuns, 0u);
    // Cold blocks pin the floor at zero while hot blocks churn.
    EXPECT_GT(ftl.eraseCountSpread(), 8u);
}

// --- End of life -------------------------------------------------------

TEST(EndOfLife, DeviceTurnsReadOnlyInsteadOfDying)
{
    SsdConfig config = singlePoolConfig();
    config.eraseFailureRate = 0.4; // blocks retire fast
    FlashArray flash(config);
    Ftl ftl(config, flash);

    sim::Tick now = 0;
    bool rejected = false;
    int writes = 0;
    while (!rejected && writes < 200000) {
        now = ftl.write(writes % 8, now, &rejected);
        ++writes;
    }
    ASSERT_TRUE(rejected) << "device never reached end of life";
    EXPECT_TRUE(ftl.readOnly());
    EXPECT_GT(ftl.stats().badBlocks, 0u);
    EXPECT_GT(ftl.stats().rejectedWrites, 0u);

    // Read-only means reads still work...
    for (LogicalPage lpa = 0; lpa < 8; ++lpa) {
        if (ftl.translate(lpa).has_value())
            now = ftl.read(lpa, now);
    }
    // ...further writes are rejected without side effects...
    const std::uint64_t host_writes = ftl.stats().hostWrites;
    bool again = false;
    EXPECT_EQ(ftl.write(0, now, &again), now);
    EXPECT_TRUE(again);
    EXPECT_EQ(ftl.stats().hostWrites, host_writes);
    // ...and the legacy nullptr path turns the rejection fatal.
    EXPECT_THROW(ftl.write(0, now), sim::FatalError);
}

TEST(EndOfLife, SpareThresholdTripsBeforeExhaustion)
{
    // With eolSpareBlocks set, the device goes read-only while it
    // still has spares (GC stuck + low spares), not only at hard
    // exhaustion.
    SsdConfig config = singlePoolConfig();
    config.eolSpareBlocks = 2;
    FlashArray flash(config);
    Ftl ftl(config, flash);

    // Fill the entire logical space with valid data: GC has nothing
    // stale to reclaim, so the pool runs down to its spares.
    sim::Tick now = 0;
    bool rejected = false;
    for (LogicalPage lpa = 0; lpa < ftl.logicalPages() && !rejected;
         ++lpa)
        now = ftl.write(lpa, now, &rejected);
    // Keep appending fresh pages until the guard trips.
    for (int extra = 0; extra < 1000 && !rejected; ++extra)
        now = ftl.write(extra % 4, now, &rejected);

    EXPECT_TRUE(ftl.readOnly());
    const HealthReport report = ftl.healthReport(now);
    EXPECT_TRUE(report.readOnly);
    EXPECT_EQ(report.lifeRemaining, 0.0);
}

// --- Health report -----------------------------------------------------

TEST(HealthReport, HistogramCoversEveryBlock)
{
    const SsdConfig config = smallTestConfig();
    FlashArray flash(config);
    Ftl ftl(config, flash);
    const std::uint64_t total =
        static_cast<std::uint64_t>(config.channels)
        * config.diesPerChannel * config.planesPerDie
        * config.blocksPerPlane;

    sim::Tick now = 0;
    for (int round = 0; round < 2000; ++round)
        now = ftl.write(round % 24, now);
    for (LogicalPage lpa = 0; lpa < 24; ++lpa)
        now = ftl.read(lpa, now);

    const HealthReport report = ftl.healthReport(now);
    std::uint64_t histogram_blocks = 0;
    for (const auto &[count, blocks] : report.eraseHistogram)
        histogram_blocks += blocks;
    EXPECT_EQ(histogram_blocks, total);
    EXPECT_LE(report.minEraseCount, report.maxEraseCount);
    EXPECT_GE(report.meanEraseCount,
              static_cast<double>(report.minEraseCount));
    EXPECT_LE(report.meanEraseCount,
              static_cast<double>(report.maxEraseCount));
    EXPECT_EQ(report.maxEraseCount - report.minEraseCount,
              ftl.eraseCountSpread());
    EXPECT_GT(report.mediaReads, 0u); // GC relocation reads
}

TEST(HealthReport, LifeEstimateIsMonotoneNonIncreasing)
{
    SsdConfig config = smallTestConfig();
    config.wearErrorCoefficient = 1e-2;
    config.wearRatedCycles = 200.0;
    config.retentionErrorCoefficient = 1e-6;
    config.eraseFailureRate = 0.01;
    FlashArray flash(config);
    Ftl ftl(config, flash);

    sim::Tick now = 0;
    double last_life = 1.0;
    for (int epoch = 0; epoch < 20; ++epoch) {
        for (int round = 0; round < 400; ++round)
            now = ftl.write(round % 16, now);
        const HealthReport report = ftl.healthReport(now);
        EXPECT_LE(report.lifeRemaining, last_life)
            << "life estimate recovered at epoch " << epoch;
        EXPECT_GE(report.lifeRemaining, 0.0);
        last_life = report.lifeRemaining;
    }
    // Sustained churn genuinely consumed life.
    EXPECT_LT(last_life, 1.0);
}

TEST(HealthReport, MediaErrorTrendTracksObservedFailures)
{
    SsdConfig config = smallTestConfig();
    config.uncorrectableReadRate = 0.2;
    FlashArray flash(config);
    Ftl ftl(config, flash);

    sim::Tick now = 0;
    for (LogicalPage lpa = 0; lpa < 16; ++lpa)
        now = ftl.write(lpa, now);
    for (int round = 0; round < 8; ++round)
        for (LogicalPage lpa = 0; lpa < 16; ++lpa)
            now = ftl.read(lpa, now);

    const HealthReport report = ftl.healthReport(now);
    EXPECT_GT(report.mediaUncorrectable, 0u);
    EXPECT_GT(report.observedErrorRate, 0.0);
    EXPECT_LT(report.observedErrorRate, 1.0);
    EXPECT_NEAR(report.observedErrorRate, 0.2, 0.15);
}

TEST(HealthReport, ExportedThroughSsdAndNvmeFrontEnds)
{
    SsdConfig config = smallTestConfig();
    config.retentionErrorCoefficient = 1e-3;
    config.scrubErrorThreshold = 1e-5;
    sim::EventQueue queue;
    SsdDevice ssd(config, queue);
    NvmeController nvme(ssd, 2, 8);

    for (LogicalPage lpa = 0; lpa < 16; ++lpa) {
        NvmeCommand cmd;
        cmd.opcode = NvmeOpcode::Write;
        cmd.startPage = lpa;
        cmd.commandId = lpa;
        ASSERT_TRUE(nvme.submit(0, cmd));
    }
    const sim::Tick done = nvme.drain();

    // Idle-time maintenance after a long retention gap refreshes
    // pages; the SMART log page reflects it at every level.
    const sim::Tick later = done + sim::seconds(60.0);
    ssd.idleMaintenance(later);

    const HealthReport via_ssd = ssd.health(later);
    const HealthReport via_nvme = nvme.healthLogPage(later);
    EXPECT_GT(via_ssd.scrubbedPages, 0u);
    EXPECT_GT(via_ssd.scrubRelocations, 0u);
    EXPECT_EQ(via_ssd.scrubbedPages, via_nvme.scrubbedPages);
    EXPECT_EQ(via_ssd.lifeRemaining, via_nvme.lifeRemaining);
    EXPECT_EQ(via_nvme.capturedAt, later);
    EXPECT_FALSE(via_nvme.readOnly);
}
