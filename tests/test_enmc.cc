/**
 * @file
 * ENMC baseline tests: capacity behaviour, rank parallelism, and the
 * Section 7.3 relationship to ECSSD (faster peak, worse efficiency,
 * capacity cliff).
 */

#include <gtest/gtest.h>

#include "baselines/baselines.hh"
#include "baselines/enmc.hh"

using namespace ecssd;
using namespace ecssd::baselines;

namespace
{

xclass::BenchmarkSpec
spec(std::uint64_t categories = 10000000)
{
    return xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), categories);
}

} // namespace

TEST(Enmc, ProducesPositiveLatency)
{
    const EnmcResult r = simulateEnmc(spec(), 2);
    EXPECT_GT(r.batchMs, 0.0);
    EXPECT_GT(r.effectiveGflops, 0.0);
    EXPECT_TRUE(r.fitsInDram); // S10M = 40 GB FP32 << 512 GB
}

TEST(Enmc, BeatsSingleEcssdOnLatencyWhenModelFits)
{
    // Section 7.3: ENMC's 800 GFLOPS / 1.2 TB/s aggregate DRAM
    // bandwidth outruns one 8-channel SSD...
    const xclass::BenchmarkSpec s = spec(2000000);
    const EnmcResult enmc = simulateEnmc(s, 1);
    const BaselineResult ecssd =
        simulate(Architecture::Ecssd, s, 1);
    EXPECT_LT(enmc.batchMs, ecssd.batchMs);
}

TEST(Enmc, WorseEnergyEfficiencyThanEcssdClaim)
{
    // ...but at ~3.8 GFLOPS/W it is less efficient than ECSSD's
    // 4.55 (the paper's headline for Section 7.3).
    const EnmcResult r = simulateEnmc(spec(), 2);
    EXPECT_LT(r.gflopsPerWatt, 4.55);
}

TEST(Enmc, CapacityCliffWhenModelOutgrowsDram)
{
    // A 200M-category layer (800 GB FP32) exceeds the 512 GB pool:
    // the overflow streams from storage and latency collapses.
    xclass::BenchmarkSpec huge =
        xclass::benchmarkByName("XMLCNN-S100M");
    huge.categories = 200000000;

    const EnmcResult fits = simulateEnmc(spec(100000000), 1);
    const EnmcResult spills = simulateEnmc(huge, 1);
    EXPECT_TRUE(fits.fitsInDram);
    EXPECT_FALSE(spills.fitsInDram);
    // Latency per category is far worse once streaming kicks in.
    const double fits_per_cat = fits.batchMs / 100000000.0;
    const double spills_per_cat = spills.batchMs / 200000000.0;
    EXPECT_GT(spills_per_cat, fits_per_cat * 3.0);
}

TEST(Enmc, MoreRanksReduceLatency)
{
    EnmcConfig few;
    few.ranks = 16;
    few.peakGflops = 200.0;
    few.peakInt4Gops = 800.0;
    EnmcConfig many; // default 64 ranks
    const xclass::BenchmarkSpec s = spec(2000000);
    const double t_few = simulateEnmc(s, 1, 1, few).batchMs;
    const double t_many = simulateEnmc(s, 1, 1, many).batchMs;
    EXPECT_LT(t_many, t_few);
}
