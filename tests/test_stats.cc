/**
 * @file
 * Unit tests of the statistics package.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/logging.hh"
#include "sim/stats.hh"

using namespace ecssd::sim;

TEST(Scalar, AccumulatesAndResets)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    EXPECT_DOUBLE_EQ(s.value(), 3.5);
    s.set(10.0);
    EXPECT_DOUBLE_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Distribution, EmptyIsZero)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
    EXPECT_EQ(d.variance(), 0.0);
}

TEST(Distribution, TracksMoments)
{
    Distribution d;
    for (const double v : {2.0, 4.0, 6.0, 8.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_DOUBLE_EQ(d.sum(), 20.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 8.0);
    EXPECT_DOUBLE_EQ(d.variance(), 5.0);
}

TEST(Distribution, SingleSample)
{
    Distribution d;
    d.sample(-3.0);
    EXPECT_DOUBLE_EQ(d.min(), -3.0);
    EXPECT_DOUBLE_EQ(d.max(), -3.0);
    EXPECT_DOUBLE_EQ(d.mean(), -3.0);
    EXPECT_DOUBLE_EQ(d.variance(), 0.0);
}

TEST(Distribution, ResetClears)
{
    Distribution d;
    d.sample(1.0);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.sum(), 0.0);
}

TEST(Histogram, BucketsSamplesCorrectly)
{
    Histogram h(0.0, 10.0, 10);
    for (int i = 0; i < 10; ++i)
        h.sample(i + 0.5);
    for (std::size_t b = 0; b < 10; ++b)
        EXPECT_EQ(h.bucketCount(b), 1u);
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
    EXPECT_EQ(h.totalSamples(), 10u);
}

TEST(Histogram, OutOfRangeGoesToUnderOverflow)
{
    Histogram h(0.0, 1.0, 4);
    h.sample(-0.1);
    h.sample(1.0); // hi is exclusive
    h.sample(5.0);
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, BucketLowIsLinear)
{
    Histogram h(10.0, 20.0, 5);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 10.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(4), 18.0);
}

TEST(Histogram, BadShapePanics)
{
    EXPECT_THROW(Histogram(1.0, 1.0, 4), PanicError);
    EXPECT_THROW(Histogram(0.0, 1.0, 0), PanicError);
}

TEST(Counter, AccumulatesAndResets)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c += 5;
    ++c;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, SaturatesInsteadOfWrapping)
{
    const std::uint64_t max = ~std::uint64_t(0);
    Counter c;
    c += max - 1;
    c += 5; // would wrap to 3
    EXPECT_EQ(c.value(), max);
    ++c; // stays pinned
    EXPECT_EQ(c.value(), max);
}

TEST(Histogram, EmptyQuantilesAreZero)
{
    Histogram h(0.0, 10.0, 10);
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.p999(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
}

TEST(Histogram, SingleSampleQuantiles)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(3.2);
    // Every quantile of a single sample lands inside its bucket.
    EXPECT_GE(h.p50(), 3.0);
    EXPECT_LE(h.p50(), 4.0);
    EXPECT_GE(h.p999(), 3.0);
    EXPECT_LE(h.p999(), 4.0);
    EXPECT_DOUBLE_EQ(h.mean(), 3.2);
    EXPECT_DOUBLE_EQ(h.min(), 3.2);
    EXPECT_DOUBLE_EQ(h.max(), 3.2);
}

TEST(Histogram, QuantilesOfUniformRamp)
{
    Histogram h(0.0, 100.0, 100);
    for (int i = 0; i < 100; ++i)
        h.sample(i + 0.5);
    EXPECT_NEAR(h.p50(), 50.0, 1.0);
    EXPECT_NEAR(h.p95(), 95.0, 1.0);
    EXPECT_NEAR(h.p99(), 99.0, 1.0);
    // Quantiles are monotone in q.
    EXPECT_LE(h.p50(), h.p95());
    EXPECT_LE(h.p95(), h.p99());
    EXPECT_LE(h.p99(), h.p999());
}

TEST(Histogram, QuantileAttributesOutOfRangeToEdges)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(-5.0); // underflow
    h.sample(5.0);
    h.sample(50.0); // overflow
    EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);  // underflow -> lo
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0); // overflow -> hi
    EXPECT_DOUBLE_EQ(h.min(), -5.0);
    EXPECT_DOUBLE_EQ(h.max(), 50.0);
}

TEST(Histogram, BucketBoundarySamples)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(0.0); // first bucket, inclusive lo
    h.sample(9.999999);
    h.sample(10.0); // hi is exclusive -> overflow
    EXPECT_EQ(h.bucketCount(0), 1u);
    EXPECT_EQ(h.bucketCount(9), 1u);
    EXPECT_EQ(h.overflow(), 1u);
    EXPECT_EQ(h.underflow(), 0u);
}

TEST(Histogram, ResetClearsMoments)
{
    Histogram h(0.0, 10.0, 10);
    h.sample(5.0);
    h.reset();
    EXPECT_EQ(h.totalSamples(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(StatGroup, LooksUpRegisteredScalars)
{
    Scalar s;
    s.set(7.0);
    StatGroup group("ssd");
    group.addScalar("pages_read", &s);
    EXPECT_DOUBLE_EQ(group.scalar("pages_read"), 7.0);
}

TEST(StatGroup, UnknownStatIsFatal)
{
    StatGroup group("ssd");
    EXPECT_THROW(group.scalar("nope"), FatalError);
    EXPECT_THROW(group.distribution("nope"), FatalError);
}

TEST(StatGroup, DumpEmitsAllStats)
{
    Scalar s;
    s.set(3.0);
    Distribution d;
    d.sample(4.0);
    StatGroup group("g");
    group.addScalar("s", &s);
    group.addDistribution("d", &d);
    std::ostringstream os;
    group.dump(os);
    const std::string text = os.str();
    EXPECT_NE(text.find("g.s 3"), std::string::npos);
    EXPECT_NE(text.find("g.d.count 1"), std::string::npos);
    EXPECT_NE(text.find("g.d.mean 4"), std::string::npos);
}

TEST(StatGroup, NullRegistrationPanics)
{
    StatGroup group("g");
    EXPECT_THROW(group.addScalar("s", nullptr), PanicError);
    EXPECT_THROW(group.addDistribution("d", nullptr), PanicError);
}
