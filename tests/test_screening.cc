/**
 * @file
 * Approximate screening algorithm tests: candidate quality, recall,
 * threshold calibration, and the CFP32 datapath's accuracy claim.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/rng.hh"
#include "xclass/metrics.hh"
#include "xclass/screening.hh"
#include "xclass/workload.hh"

using namespace ecssd;
using namespace ecssd::xclass;

namespace
{

BenchmarkSpec
smallSpec()
{
    BenchmarkSpec spec = scaledDown(
        benchmarkByName("GNMT-E32K"), 1024);
    // K = 64 keeps the random-projection noise floor well below the
    // top-k signal (the trained projection of the paper is better
    // still).
    spec.hiddenDim = 256;
    spec.candidateRatio = 0.10;
    return spec;
}

} // namespace

TEST(Metrics, TopKIndicesOrdersByScore)
{
    const std::vector<double> scores{0.1, 0.9, 0.5, 0.7};
    const auto top =
        topKIndices(std::span<const double>(scores), 2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0], 1u);
    EXPECT_EQ(top[1], 3u);
}

TEST(Metrics, TopKClampsToSize)
{
    const std::vector<double> scores{1.0, 2.0};
    EXPECT_EQ(topKIndices(std::span<const double>(scores), 10).size(),
              2u);
}

TEST(Metrics, TopKBreaksTiesByIndex)
{
    const std::vector<double> scores{5.0, 5.0, 5.0};
    const auto top =
        topKIndices(std::span<const double>(scores), 2);
    EXPECT_EQ(top[0], 0u);
    EXPECT_EQ(top[1], 1u);
}

TEST(Metrics, RecallCountsIntersection)
{
    const std::vector<std::uint64_t> truth{1, 2, 3, 4};
    const std::vector<std::uint64_t> approx{2, 4, 9, 11};
    EXPECT_DOUBLE_EQ(recall(truth, approx), 0.5);
    EXPECT_DOUBLE_EQ(recall({}, approx), 1.0);
}

TEST(Screener, ShapesFollowSpec)
{
    const BenchmarkSpec spec = smallSpec();
    const SyntheticModel model(spec, 1);
    const Screener screener(model.weights(), spec, 2);
    EXPECT_EQ(screener.categories(), spec.categories);
    EXPECT_EQ(screener.shrunkDim(), spec.shrunkDim());
}

TEST(Screener, TopRatioSelectsExactCount)
{
    const BenchmarkSpec spec = smallSpec();
    const SyntheticModel model(spec, 3);
    const Screener screener(model.weights(), spec, 4);
    sim::Rng rng(5);
    const std::vector<float> query = model.sampleQuery(rng);
    const std::vector<std::uint64_t> candidates =
        screener.screen(query, FilterMode::TopRatio);
    EXPECT_EQ(candidates.size(),
              static_cast<std::size_t>(spec.categories
                                       * spec.candidateRatio));
    EXPECT_TRUE(std::is_sorted(candidates.begin(),
                               candidates.end()));
}

TEST(Screener, CalibratedThresholdHitsTargetRatio)
{
    const BenchmarkSpec spec = smallSpec();
    const SyntheticModel model(spec, 6);
    Screener screener(model.weights(), spec, 7);

    sim::Rng rng(8);
    std::vector<std::vector<float>> calibration;
    for (int q = 0; q < 8; ++q)
        calibration.push_back(model.sampleQuery(rng));
    screener.calibrate(calibration);

    // On fresh queries the threshold should pass roughly the target
    // fraction of rows.
    double total_ratio = 0.0;
    const int queries = 16;
    for (int q = 0; q < queries; ++q) {
        const std::vector<float> query = model.sampleQuery(rng);
        const std::vector<std::uint64_t> candidates =
            screener.screen(query, FilterMode::Threshold);
        total_ratio += static_cast<double>(candidates.size())
            / static_cast<double>(spec.categories);
    }
    EXPECT_NEAR(total_ratio / queries, spec.candidateRatio, 0.06);
}

TEST(Screener, RowMassesMatchMatrixDimensions)
{
    const BenchmarkSpec spec = smallSpec();
    const SyntheticModel model(spec, 9);
    const Screener screener(model.weights(), spec, 10);
    const std::vector<double> masses = screener.rowAbsMasses();
    EXPECT_EQ(masses.size(), spec.categories);
    for (const double m : masses)
        EXPECT_GE(m, 0.0);
}

TEST(ApproximateClassifier, ScreeningRecallIsHigh)
{
    // The paper's core algorithmic claim: screening at ~10%
    // candidates loses (almost) no top-k accuracy.  The learned
    // projection is played by the weight manifold's basis.
    const BenchmarkSpec spec = smallSpec();
    const SyntheticModel model(spec, 11);
    const ApproximateClassifier classifier(model.weights(), spec,
                                           12, &model.basis());
    sim::Rng rng(13);
    double recall_sum = 0.0;
    const int queries = 10;
    for (int q = 0; q < queries; ++q) {
        const std::vector<float> query = model.sampleQuery(rng);
        const auto exact = classifier.exact(query, 5);
        const auto approx = classifier.predict(query, 5);
        recall_sum += recall(exact.topCategories,
                             approx.topCategories);
    }
    EXPECT_GE(recall_sum / queries, 0.9);
}

TEST(ApproximateClassifier, Top1IsStable)
{
    const BenchmarkSpec spec = smallSpec();
    const SyntheticModel model(spec, 14);
    const ApproximateClassifier classifier(model.weights(), spec,
                                           15, &model.basis());
    sim::Rng rng(16);
    int matches = 0;
    const int queries = 10;
    for (int q = 0; q < queries; ++q) {
        const std::vector<float> query = model.sampleQuery(rng);
        const auto exact = classifier.exact(query, 1);
        const auto approx = classifier.predict(query, 1);
        matches += exact.topCategories == approx.topCategories;
    }
    EXPECT_GE(matches, 8);
}

TEST(ApproximateClassifier, CandidateCountMatchesRatio)
{
    const BenchmarkSpec spec = smallSpec();
    const SyntheticModel model(spec, 17);
    const ApproximateClassifier classifier(model.weights(), spec,
                                           18);
    sim::Rng rng(19);
    const std::vector<float> query = model.sampleQuery(rng);
    const auto approx = classifier.predict(query, 5);
    EXPECT_EQ(approx.candidateCount,
              static_cast<std::size_t>(spec.categories
                                       * spec.candidateRatio));
    const auto exact = classifier.exact(query, 5);
    EXPECT_EQ(exact.candidateCount, spec.categories);
}

TEST(CandidateClassifier, Cfp32MatchesFp32Datapath)
{
    // Section 4.2's "no classification accuracy drop": the CFP32
    // alignment-free path must produce the same ranking as FP32.
    const BenchmarkSpec spec = smallSpec();
    const SyntheticModel model(spec, 20);
    const CandidateClassifier classifier(model.weights());
    sim::Rng rng(21);
    const std::vector<float> query = model.sampleQuery(rng);

    std::vector<std::uint64_t> candidates;
    for (std::uint64_t r = 0; r < 64; ++r)
        candidates.push_back(r * 16);

    const std::vector<double> fp32 = classifier.scores(
        query, candidates, CandidateClassifier::Datapath::Fp32);
    const std::vector<double> cfp32 = classifier.scores(
        query, candidates,
        CandidateClassifier::Datapath::Cfp32AlignmentFree);
    ASSERT_EQ(fp32.size(), cfp32.size());
    for (std::size_t i = 0; i < fp32.size(); ++i)
        EXPECT_NEAR(cfp32[i], fp32[i],
                    1e-3 * std::max(1.0, std::fabs(fp32[i])));

    // Rankings agree.
    const auto top_fp32 =
        topKIndices(std::span<const double>(fp32), 5);
    const auto top_cfp32 =
        topKIndices(std::span<const double>(cfp32), 5);
    EXPECT_GE(recall(top_fp32, top_cfp32), 0.8);
}

TEST(ApproximateClassifier, ThresholdModeRespectsSetThreshold)
{
    const BenchmarkSpec spec = smallSpec();
    const SyntheticModel model(spec, 22);
    ApproximateClassifier classifier(model.weights(), spec, 23);
    sim::Rng rng(24);
    const std::vector<float> query = model.sampleQuery(rng);

    classifier.screener().setThreshold(-1e30);
    const auto all = classifier.screener().screen(
        query, FilterMode::Threshold);
    EXPECT_EQ(all.size(), spec.categories); // everything passes

    classifier.screener().setThreshold(1e30);
    const auto none = classifier.screener().screen(
        query, FilterMode::Threshold);
    EXPECT_TRUE(none.empty());
}

TEST(ApproximateClassifier, RandomProjectionIsWeakerThanTrained)
{
    // The substitution note of DESIGN.md, verified: a random (JL)
    // projection at K = D/4 screens worse than the learned one.
    const BenchmarkSpec spec = smallSpec();
    const SyntheticModel model(spec, 25);
    const ApproximateClassifier trained(model.weights(), spec, 26,
                                        &model.basis());
    const ApproximateClassifier random(model.weights(), spec, 26);
    sim::Rng rng(27);
    double trained_recall = 0.0, random_recall = 0.0;
    const int queries = 8;
    for (int q = 0; q < queries; ++q) {
        const std::vector<float> query = model.sampleQuery(rng);
        const auto exact = trained.exact(query, 5);
        trained_recall += recall(
            exact.topCategories,
            trained.predict(query, 5).topCategories);
        random_recall += recall(
            exact.topCategories,
            random.predict(query, 5).topCategories);
    }
    EXPECT_GE(trained_recall, random_recall);
    EXPECT_GE(trained_recall / queries, 0.9);
}

TEST(ApproximateClassifier, RecallImprovesWithCandidateRatio)
{
    BenchmarkSpec narrow = smallSpec();
    narrow.candidateRatio = 0.05;
    BenchmarkSpec wide = smallSpec();
    wide.candidateRatio = 0.30;
    const SyntheticModel model(narrow, 28);
    const ApproximateClassifier tight(model.weights(), narrow, 29);
    const ApproximateClassifier loose(model.weights(), wide, 29);
    sim::Rng rng(30);
    double tight_recall = 0.0, loose_recall = 0.0;
    const int queries = 8;
    for (int q = 0; q < queries; ++q) {
        const std::vector<float> query = model.sampleQuery(rng);
        const auto exact = tight.exact(query, 5);
        tight_recall += recall(
            exact.topCategories,
            tight.predict(query, 5).topCategories);
        loose_recall += recall(
            exact.topCategories,
            loose.predict(query, 5).topCategories);
    }
    EXPECT_GE(loose_recall + 1e-9, tight_recall);
}
