/**
 * @file
 * Tests of the three MAC datapath models: numeric accuracy against a
 * double-precision reference and micro-operation accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "numeric/mac.hh"
#include "sim/rng.hh"

using namespace ecssd::numeric;

namespace
{

std::pair<std::vector<float>, std::vector<float>>
randomVectors(std::size_t n, std::uint64_t seed, double scale = 1.0)
{
    ecssd::sim::Rng rng(seed);
    std::vector<float> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = static_cast<float>(rng.gaussian(0.0, scale));
        b[i] = static_cast<float>(rng.gaussian(0.0, scale));
    }
    return {a, b};
}

} // namespace

TEST(NaiveFpMac, EmptyDotIsZero)
{
    const MacResult r = NaiveFpMac::dot({}, {});
    EXPECT_EQ(r.value, 0.0);
    EXPECT_EQ(r.ops.mantissaMultiplies, 0u);
}

TEST(NaiveFpMac, SingleElement)
{
    const std::vector<float> a{3.0f}, b{4.0f};
    const MacResult r = NaiveFpMac::dot(a, b);
    EXPECT_DOUBLE_EQ(r.value, 12.0);
    EXPECT_EQ(r.ops.mantissaMultiplies, 1u);
    EXPECT_EQ(r.ops.mantissaAdds, 0u);
}

TEST(NaiveFpMac, MatchesReferenceClosely)
{
    const auto [a, b] = randomVectors(1024, 10);
    const double reference = referenceDot(a, b);
    const MacResult r = NaiveFpMac::dot(a, b);
    EXPECT_NEAR(r.value, reference,
                1e-3 * std::max(1.0, std::fabs(reference)));
}

TEST(NaiveFpMac, OpCountsScaleWithLength)
{
    const auto [a, b] = randomVectors(256, 11);
    const MacResult r = NaiveFpMac::dot(a, b);
    EXPECT_EQ(r.ops.mantissaMultiplies, 256u);
    EXPECT_EQ(r.ops.exponentAdds, 256u);
    // A pairwise tree over n values does n-1 adds, each with one
    // compare, one shift, and one normalize.
    EXPECT_EQ(r.ops.mantissaAdds, 255u);
    EXPECT_EQ(r.ops.exponentCompares, 255u);
    EXPECT_EQ(r.ops.mantissaShifts, 255u);
}

TEST(SkHynixMac, MatchesReferenceClosely)
{
    const auto [a, b] = randomVectors(1024, 12);
    const double reference = referenceDot(a, b);
    const MacResult r = SkHynixMac::dot(a, b);
    EXPECT_NEAR(r.value, reference,
                1e-3 * std::max(1.0, std::fabs(reference)));
}

TEST(SkHynixMac, SingleNormalizationPerDot)
{
    const auto [a, b] = randomVectors(64, 13);
    const MacResult r = SkHynixMac::dot(a, b);
    EXPECT_EQ(r.ops.normalizations, 1u);
    EXPECT_EQ(r.ops.mantissaShifts, 64u);
}

TEST(SkHynixMac, HandlesZeros)
{
    const std::vector<float> a{0.0f, 2.0f, 0.0f};
    const std::vector<float> b{5.0f, 3.0f, 7.0f};
    const MacResult r = SkHynixMac::dot(a, b);
    EXPECT_DOUBLE_EQ(r.value, 6.0);
}

TEST(AlignmentFreeMac, ExactOnAlignedInputs)
{
    // Values sharing one exponent pre-align losslessly, so the
    // integer datapath is exact.
    const std::vector<float> a{1.5f, 1.25f, 1.75f, 1.0f};
    const std::vector<float> b{1.0f, 1.5f, 1.25f, 1.875f};
    const Cfp32Vector ca = Cfp32Vector::preAlign(a);
    const Cfp32Vector cb = Cfp32Vector::preAlign(b);
    const MacResult r = AlignmentFreeMac::dot(ca, cb);
    EXPECT_DOUBLE_EQ(r.value, referenceDot(a, b));
}

TEST(AlignmentFreeMac, MatchesReferenceOnModelData)
{
    // Gaussian data: the no-accuracy-drop claim of Section 4.2.
    const auto [a, b] = randomVectors(1024, 14, 0.05);
    const Cfp32Vector ca = Cfp32Vector::preAlign(a);
    const Cfp32Vector cb = Cfp32Vector::preAlign(b);
    const double reference = referenceDot(a, b);
    const MacResult r = AlignmentFreeMac::dot(ca, cb);
    EXPECT_NEAR(r.value, reference,
                1e-4 * std::max(1.0, std::fabs(reference)));
}

TEST(AlignmentFreeMac, NoAlignmentOps)
{
    const auto [a, b] = randomVectors(128, 15);
    const MacResult r = AlignmentFreeMac::dot(
        Cfp32Vector::preAlign(a), Cfp32Vector::preAlign(b));
    EXPECT_EQ(r.ops.exponentCompares, 0u);
    EXPECT_EQ(r.ops.mantissaShifts, 0u);
    EXPECT_EQ(r.ops.alignmentOps(), 0u);
    EXPECT_EQ(r.ops.mantissaMultiplies, 128u);
    EXPECT_EQ(r.ops.normalizations, 1u);
}

TEST(AlignmentFreeMac, NegativeAccumulation)
{
    const std::vector<float> a{1.0f, -1.0f, 2.0f};
    const std::vector<float> b{3.0f, 3.0f, -1.5f};
    const MacResult r = AlignmentFreeMac::dot(
        Cfp32Vector::preAlign(a), Cfp32Vector::preAlign(b));
    EXPECT_DOUBLE_EQ(r.value, -3.0);
}

TEST(AlignmentFreeMac, EmptyIsZero)
{
    const MacResult r = AlignmentFreeMac::dot(Cfp32Vector{},
                                              Cfp32Vector{});
    EXPECT_EQ(r.value, 0.0);
}

TEST(MacOpCounts, Accumulate)
{
    MacOpCounts a;
    a.mantissaMultiplies = 3;
    a.mantissaShifts = 2;
    MacOpCounts b;
    b.mantissaMultiplies = 4;
    b.exponentCompares = 5;
    a += b;
    EXPECT_EQ(a.mantissaMultiplies, 7u);
    EXPECT_EQ(a.mantissaShifts, 2u);
    EXPECT_EQ(a.alignmentOps(), 7u);
}

/** Accuracy sweep across vector lengths and magnitudes. */
class MacAccuracySweep
    : public ::testing::TestWithParam<std::tuple<int, double>>
{
};

TEST_P(MacAccuracySweep, AllDatapathsTrackReference)
{
    const auto [length, scale] = GetParam();
    const auto [a, b] =
        randomVectors(static_cast<std::size_t>(length),
                      static_cast<std::uint64_t>(length) * 7 + 1,
                      scale);
    const double reference = referenceDot(a, b);
    const double tolerance =
        2e-3 * std::max(1.0, std::fabs(reference))
        + 1e-6 * scale * scale * length;

    EXPECT_NEAR(NaiveFpMac::dot(a, b).value, reference, tolerance);
    EXPECT_NEAR(SkHynixMac::dot(a, b).value, reference, tolerance);
    EXPECT_NEAR(AlignmentFreeMac::dot(Cfp32Vector::preAlign(a),
                                      Cfp32Vector::preAlign(b))
                    .value,
                reference, tolerance);
}

INSTANTIATE_TEST_SUITE_P(
    LengthsAndScales, MacAccuracySweep,
    ::testing::Combine(::testing::Values(1, 2, 7, 64, 255, 1024,
                                         1500),
                       ::testing::Values(0.01, 1.0, 100.0)));
