/**
 * @file
 * Fault-injection tests: read retries slow reads down without
 * breaking correctness; erase failures grow the bad-block list
 * while the FTL keeps serving; uncorrectable reads propagate from
 * the flash array through the FTL and pipeline up to the server,
 * which degrades gracefully instead of aborting.
 */

#include <gtest/gtest.h>

#include "ecssd/server.hh"
#include "ecssd/system.hh"
#include "sim/rng.hh"
#include "ssdsim/flash.hh"
#include "ssdsim/ftl.hh"

using namespace ecssd;
using namespace ecssd::ssdsim;

TEST(Faults, ReadRetriesAreCountedAndCostTime)
{
    SsdConfig clean = smallTestConfig();
    SsdConfig faulty = clean;
    faulty.readRetryRate = 0.5;

    FlashArray good(clean);
    FlashArray bad(faulty);
    sim::Tick good_done = 0, bad_done = 0;
    for (unsigned p = 0; p < 64; ++p) {
        const PhysicalPage ppa{0, 0, 0, 0, p % clean.pagesPerBlock};
        good_done = std::max(good_done, good.readPage(ppa, 0));
        bad_done = std::max(bad_done, bad.readPage(ppa, 0));
    }
    EXPECT_EQ(good.channelStats(0).readRetries, 0u);
    EXPECT_GT(bad.channelStats(0).readRetries, 10u);
    EXPECT_LT(bad.channelStats(0).readRetries, 64u);
    EXPECT_GT(bad_done, good_done);
}

TEST(Faults, RetryRateZeroIsDeterministicBaseline)
{
    const SsdConfig c = smallTestConfig();
    FlashArray a(c), b(c);
    const PhysicalPage ppa{1, 0, 0, 2, 3};
    EXPECT_EQ(a.readPage(ppa, 0), b.readPage(ppa, 0));
}

TEST(Faults, EraseFailuresRetireBlocks)
{
    SsdConfig config = smallTestConfig();
    config.eraseFailureRate = 0.02; // realistic wear-out rate
    FlashArray flash(config);
    Ftl ftl(config, flash);

    // Churn hard enough to force many GC erases.
    sim::Tick now = 0;
    for (int round = 0; round < 4000; ++round)
        now = ftl.write(round % 8, now);
    EXPECT_GT(ftl.stats().badBlocks, 0u);
    // Despite retirements, the mapping stays intact.
    for (LogicalPage lpa = 0; lpa < 8; ++lpa)
        EXPECT_TRUE(ftl.translate(lpa).has_value());
}

TEST(Faults, TotalWearOutIsAFatalUserCondition)
{
    SsdConfig config = smallTestConfig();
    config.eraseFailureRate = 0.6; // pathological: blocks die fast
    FlashArray flash(config);
    Ftl ftl(config, flash);
    sim::Tick now = 0;
    EXPECT_THROW(
        {
            for (int round = 0; round < 100000; ++round)
                now = ftl.write(round % 8, now);
        },
        sim::FatalError);
    EXPECT_GT(ftl.stats().badBlocks, 5u);
}

TEST(Faults, NoFailuresMeansNoBadBlocks)
{
    SsdConfig config = smallTestConfig();
    FlashArray flash(config);
    Ftl ftl(config, flash);
    sim::Tick now = 0;
    for (int round = 0; round < 1000; ++round)
        now = ftl.write(round % 8, now);
    EXPECT_EQ(ftl.stats().badBlocks, 0u);
}

TEST(Faults, UncorrectableReadsAreCountedAndFlagged)
{
    SsdConfig config = smallTestConfig();
    config.uncorrectableReadRate = 0.5;
    FlashArray clean(smallTestConfig());
    FlashArray worn(config);

    unsigned flagged = 0;
    sim::Tick clean_done = 0, worn_done = 0;
    for (unsigned p = 0; p < 64; ++p) {
        const PhysicalPage ppa{0, 0, 0, 0,
                               p % config.pagesPerBlock};
        clean_done =
            std::max(clean_done, clean.readPage(ppa, 0));
        bool uncorrectable = false;
        worn_done = std::max(
            worn_done,
            worn.readPage(ppa, 0, 0, 0, &uncorrectable));
        flagged += uncorrectable ? 1 : 0;
    }
    EXPECT_EQ(clean.channelStats(0).uncorrectableReads, 0u);
    EXPECT_EQ(worn.channelStats(0).uncorrectableReads, flagged);
    EXPECT_GT(flagged, 10u);
    EXPECT_LT(flagged, 64u);
    // The exhausted retry ladder costs die time.
    EXPECT_GT(worn_done, clean_done);
}

TEST(Faults, FtlSurfacesUncorrectableReads)
{
    SsdConfig config = smallTestConfig();
    config.uncorrectableReadRate = 0.3;
    FlashArray flash(config);
    Ftl ftl(config, flash);

    sim::Tick now = 0;
    for (LogicalPage lpa = 0; lpa < 32; ++lpa)
        now = ftl.write(lpa, now);

    unsigned flagged = 0;
    for (int round = 0; round < 4; ++round) {
        for (LogicalPage lpa = 0; lpa < 32; ++lpa) {
            bool uncorrectable = false;
            now = ftl.read(lpa, now, &uncorrectable);
            flagged += uncorrectable ? 1 : 0;
        }
    }
    EXPECT_GT(flagged, 0u);
    EXPECT_EQ(ftl.stats().uncorrectableReads, flagged);
    // The legacy nullptr path still counts the failure.
    const std::uint64_t before = ftl.stats().uncorrectableReads;
    for (int round = 0; round < 8; ++round)
        for (LogicalPage lpa = 0; lpa < 32; ++lpa)
            now = ftl.read(lpa, now);
    EXPECT_GT(ftl.stats().uncorrectableReads, before);
}

TEST(Faults, ZeroFaultRatesAreBitIdenticalAcrossPolicies)
{
    // The fault machinery must be zero-cost when disabled: with all
    // rates at 0, every policy produces the exact same timeline.
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 16384);
    EcssdOptions base = EcssdOptions::full();
    EcssdOptions fail_batch = base;
    fail_batch.degradedPolicy =
        accel::DegradedReadPolicy::FailBatch;
    EcssdOptions refetch = base;
    refetch.degradedPolicy =
        accel::DegradedReadPolicy::HostRefetch;

    const accel::RunResult a =
        EcssdSystem(spec, base).runInference(2);
    const accel::RunResult b =
        EcssdSystem(spec, fail_batch).runInference(2);
    const accel::RunResult c =
        EcssdSystem(spec, refetch).runInference(2);
    EXPECT_EQ(a.totalTime, b.totalTime);
    EXPECT_EQ(a.totalTime, c.totalTime);
    for (const accel::RunResult *run : {&a, &b, &c}) {
        EXPECT_EQ(run->uncorrectablePages, 0u);
        EXPECT_EQ(run->degradedRows, 0u);
        EXPECT_EQ(run->hostRefetches, 0u);
        EXPECT_EQ(run->failedBatches, 0u);
    }
}

TEST(Faults, ScreenerFallbackDegradesRowsWithoutAborting)
{
    // The acceptance scenario: a realistic 1e-3 uncorrectable rate
    // under ScreenerFallback keeps serving — degraded rows, zero
    // aborted batches.
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 16384);
    EcssdOptions worn = EcssdOptions::full();
    worn.ssd.uncorrectableReadRate = 1e-3;
    worn.degradedPolicy =
        accel::DegradedReadPolicy::ScreenerFallback;

    const accel::RunResult run =
        EcssdSystem(spec, worn).runInference(8);
    EXPECT_GT(run.uncorrectablePages, 0u);
    EXPECT_GT(run.degradedRows, 0u);
    EXPECT_EQ(run.failedBatches, 0u);
    EXPECT_EQ(run.hostRefetches, 0u);
    ASSERT_EQ(run.batches.size(), 8u);
    for (const accel::BatchTiming &batch : run.batches)
        EXPECT_FALSE(batch.failed);
    // Degradation is bounded: only a tiny fraction of the fetched
    // rows lost their FP32 page.
    std::uint64_t fetched = 0;
    for (const accel::BatchTiming &batch : run.batches)
        fetched += batch.candidateRows;
    EXPECT_LT(run.degradedRows * 20, fetched);
}

TEST(Faults, HostRefetchPreservesPrecisionAtLatencyCost)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 16384);
    EcssdOptions fallback = EcssdOptions::full();
    // High enough that some refetched page lands on a tile's fetch
    // critical path (the draw sequence is deterministic, so this is
    // stable); at low rates stage overlap can hide the penalty
    // entirely, which is the pipeline working as intended.
    fallback.ssd.uncorrectableReadRate = 0.05;
    fallback.degradedPolicy =
        accel::DegradedReadPolicy::ScreenerFallback;
    EcssdOptions refetch = fallback;
    refetch.degradedPolicy =
        accel::DegradedReadPolicy::HostRefetch;

    const accel::RunResult cheap =
        EcssdSystem(spec, fallback).runInference(4);
    const accel::RunResult precise =
        EcssdSystem(spec, refetch).runInference(4);
    ASSERT_GT(cheap.uncorrectablePages, 0u);
    EXPECT_EQ(precise.uncorrectablePages, cheap.uncorrectablePages);
    // Refetch restores full precision for every lost page...
    EXPECT_EQ(precise.degradedRows, 0u);
    EXPECT_EQ(precise.hostRefetches, precise.uncorrectablePages);
    // ...but pays host-link latency on the fetch critical path the
    // fallback does not.
    sim::Tick cheap_fetch = 0, precise_fetch = 0;
    for (const accel::BatchTiming &batch : cheap.batches)
        cheap_fetch += batch.fp32FetchTime;
    for (const accel::BatchTiming &batch : precise.batches)
        precise_fetch += batch.fp32FetchTime;
    EXPECT_GT(precise_fetch, cheap_fetch);
    EXPECT_GT(precise.totalTime, cheap.totalTime);
}

TEST(Faults, FailBatchPolicyMarksBatchesFailed)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 16384);
    EcssdOptions options = EcssdOptions::full();
    options.ssd.uncorrectableReadRate = 0.01;
    options.degradedPolicy =
        accel::DegradedReadPolicy::FailBatch;

    const accel::RunResult run =
        EcssdSystem(spec, options).runInference(4);
    EXPECT_GT(run.failedBatches, 0u);
    // FailBatch never silently degrades.
    EXPECT_EQ(run.degradedRows, 0u);
}

TEST(Faults, ServerReportsDegradedResponses)
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 1024);
    spec.hiddenDim = 128;
    spec.batchSize = 4;
    const xclass::SyntheticModel model(spec, 1);

    EcssdOptions worn = EcssdOptions::full();
    worn.ssd.uncorrectableReadRate = 0.05;
    worn.degradedPolicy =
        accel::DegradedReadPolicy::ScreenerFallback;
    InferenceServer server(model.weights(), spec, worn,
                           &model.basis());

    sim::Rng rng(11);
    for (int request = 0; request < 16; ++request)
        server.enqueue(model.sampleQuery(rng));
    const auto responses = server.processAll(5);
    ASSERT_EQ(responses.size(), 16u);

    unsigned degraded = 0;
    for (const auto &response : responses) {
        EXPECT_EQ(response.prediction.topCategories.size(), 5u);
        degraded += response.status
                == InferenceServer::Response::Status::Degraded
            ? 1
            : 0;
    }
    EXPECT_GT(degraded, 0u);
    EXPECT_EQ(server.serverStats().degradedResponses, degraded);
    EXPECT_GT(server.serverStats().degradedRows, 0u);
    EXPECT_EQ(server.serverStats().shedRequests, 0u);
    EXPECT_EQ(server.serverStats().timedOutRequests, 0u);
}

TEST(Faults, RetriesDegradeInferenceGracefully)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 16384);
    EcssdOptions clean = EcssdOptions::full();
    EcssdOptions worn = EcssdOptions::full();
    worn.ssd.readRetryRate = 0.2;

    const double clean_ms =
        EcssdSystem(spec, clean).runInference(1).meanBatchMs();
    const double worn_ms =
        EcssdSystem(spec, worn).runInference(1).meanBatchMs();
    EXPECT_GT(worn_ms, clean_ms);
    // 20% retries at tR/transfer ~ 12 cost well under 2x.
    EXPECT_LT(worn_ms, clean_ms * 2.0);
}
