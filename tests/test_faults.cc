/**
 * @file
 * Fault-injection tests: read retries slow reads down without
 * breaking correctness; erase failures grow the bad-block list
 * while the FTL keeps serving.
 */

#include <gtest/gtest.h>

#include "ecssd/system.hh"
#include "ssdsim/flash.hh"
#include "ssdsim/ftl.hh"

using namespace ecssd;
using namespace ecssd::ssdsim;

TEST(Faults, ReadRetriesAreCountedAndCostTime)
{
    SsdConfig clean = smallTestConfig();
    SsdConfig faulty = clean;
    faulty.readRetryRate = 0.5;

    FlashArray good(clean);
    FlashArray bad(faulty);
    sim::Tick good_done = 0, bad_done = 0;
    for (unsigned p = 0; p < 64; ++p) {
        const PhysicalPage ppa{0, 0, 0, 0, p % clean.pagesPerBlock};
        good_done = std::max(good_done, good.readPage(ppa, 0));
        bad_done = std::max(bad_done, bad.readPage(ppa, 0));
    }
    EXPECT_EQ(good.channelStats(0).readRetries, 0u);
    EXPECT_GT(bad.channelStats(0).readRetries, 10u);
    EXPECT_LT(bad.channelStats(0).readRetries, 64u);
    EXPECT_GT(bad_done, good_done);
}

TEST(Faults, RetryRateZeroIsDeterministicBaseline)
{
    const SsdConfig c = smallTestConfig();
    FlashArray a(c), b(c);
    const PhysicalPage ppa{1, 0, 0, 2, 3};
    EXPECT_EQ(a.readPage(ppa, 0), b.readPage(ppa, 0));
}

TEST(Faults, EraseFailuresRetireBlocks)
{
    SsdConfig config = smallTestConfig();
    config.eraseFailureRate = 0.02; // realistic wear-out rate
    FlashArray flash(config);
    Ftl ftl(config, flash);

    // Churn hard enough to force many GC erases.
    sim::Tick now = 0;
    for (int round = 0; round < 4000; ++round)
        now = ftl.write(round % 8, now);
    EXPECT_GT(ftl.stats().badBlocks, 0u);
    // Despite retirements, the mapping stays intact.
    for (LogicalPage lpa = 0; lpa < 8; ++lpa)
        EXPECT_TRUE(ftl.translate(lpa).has_value());
}

TEST(Faults, TotalWearOutIsAFatalUserCondition)
{
    SsdConfig config = smallTestConfig();
    config.eraseFailureRate = 0.6; // pathological: blocks die fast
    FlashArray flash(config);
    Ftl ftl(config, flash);
    sim::Tick now = 0;
    EXPECT_THROW(
        {
            for (int round = 0; round < 100000; ++round)
                now = ftl.write(round % 8, now);
        },
        sim::FatalError);
    EXPECT_GT(ftl.stats().badBlocks, 5u);
}

TEST(Faults, NoFailuresMeansNoBadBlocks)
{
    SsdConfig config = smallTestConfig();
    FlashArray flash(config);
    Ftl ftl(config, flash);
    sim::Tick now = 0;
    for (int round = 0; round < 1000; ++round)
        now = ftl.write(round % 8, now);
    EXPECT_EQ(ftl.stats().badBlocks, 0u);
}

TEST(Faults, RetriesDegradeInferenceGracefully)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 16384);
    EcssdOptions clean = EcssdOptions::full();
    EcssdOptions worn = EcssdOptions::full();
    worn.ssd.readRetryRate = 0.2;

    const double clean_ms =
        EcssdSystem(spec, clean).runInference(1).meanBatchMs();
    const double worn_ms =
        EcssdSystem(spec, worn).runInference(1).meanBatchMs();
    EXPECT_GT(worn_ms, clean_ms);
    // 20% retries at tR/transfer ~ 12 cost well under 2x.
    EXPECT_LT(worn_ms, clean_ms * 2.0);
}
