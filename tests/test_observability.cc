/**
 * @file
 * Golden-run tests of the cross-layer observability subsystem: two
 * identical instrumented runs must produce byte-identical metrics and
 * span dumps, and attaching instrumentation must not perturb the
 * simulation at all (bit-identical timing with and without it).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "ecssd/server.hh"
#include "ecssd/system.hh"
#include "sim/metrics.hh"
#include "sim/rng.hh"
#include "sim/trace.hh"

using namespace ecssd;

namespace
{

xclass::BenchmarkSpec
smallSpec()
{
    xclass::BenchmarkSpec spec =
        xclass::scaledDown(xclass::benchmarkByName("GNMT-E32K"), 4096);
    return spec;
}

struct InstrumentedRun
{
    std::string metricsJson;
    std::string spanJson;
    accel::RunResult result;
};

InstrumentedRun
runInstrumented(unsigned batches)
{
    sim::MetricsRegistry registry;
    sim::SpanTracer tracer;
    EcssdSystem system(smallSpec(), EcssdOptions::full());
    system.attachObservability(&registry, &tracer);
    InstrumentedRun run;
    run.result = system.runInference(batches);
    system.publishMetrics(registry, run.result);
    std::ostringstream metrics, spans;
    registry.writeJson(metrics);
    tracer.writeJson(spans);
    run.metricsJson = metrics.str();
    run.spanJson = spans.str();
    return run;
}

/** Field-by-field bit-identity of two run results. */
void
expectIdenticalResults(const accel::RunResult &a,
                       const accel::RunResult &b)
{
    EXPECT_EQ(a.totalTime, b.totalTime);
    EXPECT_EQ(a.channelUtilization, b.channelUtilization);
    EXPECT_EQ(a.effectiveGflops, b.effectiveGflops);
    EXPECT_EQ(a.uncorrectablePages, b.uncorrectablePages);
    EXPECT_EQ(a.degradedRows, b.degradedRows);
    EXPECT_EQ(a.hostRefetches, b.hostRefetches);
    EXPECT_EQ(a.failedBatches, b.failedBatches);
    ASSERT_EQ(a.batches.size(), b.batches.size());
    for (std::size_t i = 0; i < a.batches.size(); ++i) {
        const accel::BatchTiming &x = a.batches[i];
        const accel::BatchTiming &y = b.batches[i];
        EXPECT_EQ(x.startedAt, y.startedAt);
        EXPECT_EQ(x.finishedAt, y.finishedAt);
        EXPECT_EQ(x.candidateRows, y.candidateRows);
        EXPECT_EQ(x.fp32PagesRead, y.fp32PagesRead);
        EXPECT_EQ(x.fp32BytesRead, y.fp32BytesRead);
        EXPECT_EQ(x.int4PagesRead, y.int4PagesRead);
        EXPECT_EQ(x.fp32Flops, y.fp32Flops);
        EXPECT_EQ(x.int4Ops, y.int4Ops);
        EXPECT_EQ(x.fp32FetchTime, y.fp32FetchTime);
        EXPECT_EQ(x.fp32ComputeTime, y.fp32ComputeTime);
        EXPECT_EQ(x.int4StageTime, y.int4StageTime);
        EXPECT_EQ(x.channelPages, y.channelPages);
        EXPECT_EQ(x.failed, y.failed);
    }
}

bool
hasSpanNamed(const sim::SpanTracer &tracer, const std::string &prefix)
{
    const auto &records = tracer.records();
    return std::any_of(records.begin(), records.end(),
                       [&prefix](const sim::SpanRecord &r) {
                           return r.name.rfind(prefix, 0) == 0;
                       });
}

} // namespace

TEST(Observability, GoldenRunIsByteIdentical)
{
    const InstrumentedRun a = runInstrumented(2);
    const InstrumentedRun b = runInstrumented(2);
    EXPECT_EQ(a.metricsJson, b.metricsJson);
    EXPECT_EQ(a.spanJson, b.spanJson);
    expectIdenticalResults(a.result, b.result);
}

TEST(Observability, InstrumentationIsZeroCost)
{
    // A bare run and an instrumented run of the same configuration
    // must be bit-identical: recording is read-only with respect to
    // the timing models.
    EcssdSystem bare(smallSpec(), EcssdOptions::full());
    const accel::RunResult plain = bare.runInference(2);
    const InstrumentedRun instrumented = runInstrumented(2);
    expectIdenticalResults(plain, instrumented.result);
}

TEST(Observability, SpansCoverEveryLayer)
{
    sim::MetricsRegistry registry;
    sim::SpanTracer tracer;
    EcssdSystem system(smallSpec(), EcssdOptions::full());
    system.attachObservability(&registry, &tracer);
    const accel::RunResult result = system.runInference(1);
    system.publishMetrics(registry, result);

    // Pipeline phases...
    EXPECT_TRUE(hasSpanNamed(tracer, "pipeline.batch"));
    EXPECT_TRUE(hasSpanNamed(tracer, "pipeline.host_upload"));
    EXPECT_TRUE(hasSpanNamed(tracer, "pipeline.fp32"));
    EXPECT_TRUE(hasSpanNamed(tracer, "pipeline.host_download"));
    // ... with flash busy intervals nested underneath.
    EXPECT_TRUE(hasSpanNamed(tracer, "flash.read.ch"));
    EXPECT_EQ(tracer.openSpans(), 0u);

    // The batch span is the root; flash reads hang off a phase.
    for (const sim::SpanRecord &record : tracer.records()) {
        if (record.name == "pipeline.batch") {
            EXPECT_EQ(record.depth, 0u);
        }
        if (record.name.rfind("flash.read.ch", 0) == 0) {
            EXPECT_GE(record.depth, 1u);
            EXPECT_NE(record.parent, 0u);
        }
    }

    // Registry: live pipeline counters plus published snapshots of
    // every layer below.
    EXPECT_EQ(registry.counter("pipeline.batches").value(), 1u);
    EXPECT_TRUE(registry.has("pipeline.batch_latency_ms"));
    EXPECT_TRUE(registry.has("flash.util"));
    EXPECT_TRUE(registry.has("flash.channel00.pages_read"));
    EXPECT_TRUE(registry.has("ftl.host_reads"));
    EXPECT_TRUE(registry.has("ssd.host_read_commands"));
    EXPECT_TRUE(registry.has("run.total_time_ms"));

    // Published counters agree with the run result.
    std::uint64_t fp32_pages = 0;
    for (const accel::BatchTiming &batch : result.batches)
        fp32_pages += batch.fp32PagesRead;
    EXPECT_EQ(registry.counter("pipeline.fp32_pages_read").value(),
              fp32_pages);
}

TEST(Observability, DetachStopsRecording)
{
    sim::MetricsRegistry registry;
    sim::SpanTracer tracer;
    EcssdSystem system(smallSpec(), EcssdOptions::full());
    system.attachObservability(&registry, &tracer);
    system.runInference(1);
    const std::size_t spans_after_first = tracer.records().size();
    EXPECT_GT(spans_after_first, 0u);

    system.attachObservability(nullptr, nullptr);
    system.runInference(1);
    EXPECT_EQ(tracer.records().size(), spans_after_first);
    EXPECT_EQ(registry.counter("pipeline.batches").value(), 1u);
}

TEST(Observability, ServerMetricsAreDeterministic)
{
    auto serve = [] {
        const xclass::BenchmarkSpec spec = xclass::scaledDown(
            xclass::benchmarkByName("GNMT-E32K"), 1024);
        const EcssdOptions options = EcssdOptions::full();
        sim::MetricsRegistry registry;
        sim::SpanTracer tracer;
        xclass::SyntheticModel model(spec, options.seed);
        InferenceServer server(model.weights(), spec, options);
        server.attachObservability(&registry, &tracer);
        sim::Rng rng(options.seed);
        for (unsigned r = 0; r < 12; ++r)
            server.enqueue(model.sampleQuery(rng));
        server.processAll(4);
        server.publishMetrics(registry);
        std::ostringstream os;
        registry.writeJson(os);
        return os.str();
    };
    const std::string a = serve();
    const std::string b = serve();
    EXPECT_EQ(a, b);

    // The dump carries the serving-level instruments.
    EXPECT_NE(a.find("server.latency_ms"), std::string::npos);
    EXPECT_NE(a.find("server.responses_ok"), std::string::npos);
    EXPECT_NE(a.find("server.accepted_requests"),
              std::string::npos);
}
