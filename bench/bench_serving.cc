/**
 * @file
 * Open-loop serving study (beyond the paper's closed-loop batches):
 * Poisson request arrivals against one ECSSD, reporting the
 * latency-vs-load curve an operator would provision against.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "ecssd/server.hh"
#include "sim/rng.hh"

using namespace ecssd;

namespace
{

struct Workbench
{
    Workbench()
        : spec(makeSpec()), model(spec, 61),
          server(std::make_unique<InferenceServer>(
              model.weights(), spec, EcssdOptions::full(),
              &model.basis()))
    {
        sim::Rng rng(62);
        for (int q = 0; q < 16; ++q)
            pool.push_back(model.sampleQuery(rng));
    }

    static xclass::BenchmarkSpec
    makeSpec()
    {
        xclass::BenchmarkSpec spec = xclass::scaledDown(
            xclass::benchmarkByName("XMLCNN-S10M"), 4096);
        spec.hiddenDim = 256;
        return spec;
    }

    void
    fresh()
    {
        server = std::make_unique<InferenceServer>(
            model.weights(), spec, EcssdOptions::full(),
            &model.basis());
    }

    xclass::BenchmarkSpec spec;
    xclass::SyntheticModel model;
    std::unique_ptr<InferenceServer> server;
    std::vector<std::vector<float>> pool;
};

void
printServingCurve()
{
    bench::banner("Open-loop serving: latency vs offered load "
                  "(4096-category replica)");
    Workbench bench_state;
    for (const double rps : {500.0, 2000.0, 8000.0, 16000.0}) {
        bench_state.fresh();
        bench_state.server->runOpenLoop(bench_state.pool, rps,
                                        /*requests=*/256, /*k=*/5);
        const sim::Percentiles &lat =
            bench_state.server->latencyPercentiles();
        bench::row("load " + std::to_string(int(rps)) + " rps: p50",
                   lat.p50(), "ms");
        bench::row("load " + std::to_string(int(rps)) + " rps: p99",
                   lat.p99(), "ms");
    }
}

void
BM_OpenLoopServing(benchmark::State &state)
{
    Workbench bench_state;
    for (auto _ : state) {
        bench_state.fresh();
        bench_state.server->runOpenLoop(
            bench_state.pool,
            static_cast<double>(state.range(0)), 64, 5);
        benchmark::DoNotOptimize(
            bench_state.server->latencyPercentiles().p99());
    }
    state.counters["sim_p99_ms"] =
        bench_state.server->latencyPercentiles().p99();
}
BENCHMARK(BM_OpenLoopServing)
    ->Arg(1000)
    ->Arg(8000)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printServingCurve();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
