/**
 * @file
 * Reproduces Fig 10: heterogeneous vs homogeneous data layout on
 * Transformer-W268K at candidate ratios 5/10/15/20%.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "ecssd/system.hh"

using namespace ecssd;

namespace
{

double
batchMs(const xclass::BenchmarkSpec &spec,
        accel::Int4Placement placement)
{
    EcssdOptions options = EcssdOptions::full();
    // Isolate the layout effect, as the paper does: both sides use
    // uniform interleaving and the alignment-free MAC.
    options.layoutKind = layout::LayoutKind::Uniform;
    options.int4Placement = placement;
    EcssdSystem system(spec, options);
    return system.runInference(2).meanBatchMs();
}

void
printFig10()
{
    bench::banner("Fig 10: heterogeneous vs homogeneous data layout "
                  "(Transformer-W268K)");
    const double ratios[] = {0.05, 0.10, 0.15, 0.20};
    const char *paper[] = {"1.73", "-", "-", "-"};
    double mean = 0.0;
    for (std::size_t i = 0; i < 4; ++i) {
        xclass::BenchmarkSpec spec =
            xclass::benchmarkByName("Transformer-W268K");
        spec.candidateRatio = ratios[i];
        const double homo =
            batchMs(spec, accel::Int4Placement::Flash);
        const double hetero =
            batchMs(spec, accel::Int4Placement::Dram);
        const double speedup = homo / hetero;
        mean += speedup;
        bench::row("candidate ratio "
                       + std::to_string(int(ratios[i] * 100))
                       + "% speedup",
                   speedup, "x", paper[i]);
    }
    bench::row("average speedup", mean / 4.0, "x", "1.43");
}

void
BM_HeteroBatch(benchmark::State &state)
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("Transformer-W268K"), 65536);
    EcssdOptions options = EcssdOptions::full();
    options.layoutKind = layout::LayoutKind::Uniform;
    EcssdSystem system(spec, options);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            system.runInference(1).totalTime);
}
BENCHMARK(BM_HeteroBatch)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFig10();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
