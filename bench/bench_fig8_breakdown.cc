/**
 * @file
 * Reproduces Fig 8: the stepwise end-to-end improvement of each
 * proposed technique, averaged over the Table 3 benchmarks.
 *
 *   step 0  naive MAC + sequential storing + homogeneous layout
 *   step 1  + uniform interleaving        (paper: 4.06x, util 44.31%)
 *   step 2  + alignment-free FP MAC
 *   step 3  + heterogeneous data layout   (paper: util 67.6%)
 *   step 4  + learning-based interleaving (paper: util 94.7%, 10.5x)
 *
 * The 10M-100M synthetic benchmarks are scaled to 2M categories to
 * keep the harness runtime modest; ratios are preserved.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hh"
#include "ecssd/system.hh"

using namespace ecssd;

namespace
{

std::vector<EcssdOptions>
fig8Steps()
{
    EcssdOptions step0 = EcssdOptions::startingBaseline();
    EcssdOptions step1 = step0;
    step1.layoutKind = layout::LayoutKind::Uniform;
    EcssdOptions step2 = step1;
    step2.fpKind = circuit::FpMacKind::AlignmentFree;
    EcssdOptions step3 = step2;
    step3.int4Placement = accel::Int4Placement::Dram;
    EcssdOptions step4 = step3;
    step4.layoutKind = layout::LayoutKind::LearningAdaptive;
    return {step0, step1, step2, step3, step4};
}

const char *stepNames[] = {
    "0: naive + sequential + homogeneous",
    "1: + uniform interleaving",
    "2: + alignment-free FP MAC",
    "3: + heterogeneous data layout",
    "4: + learning-based interleaving",
};

void
printFig8()
{
    bench::banner("Fig 8: stepwise technique breakdown "
                  "(average over Table 3 benchmarks)");

    const std::vector<EcssdOptions> steps = fig8Steps();
    std::vector<double> mean_ms(steps.size(), 0.0);
    std::vector<double> mean_util(steps.size(), 0.0);
    unsigned bench_count = 0;

    for (const xclass::BenchmarkSpec &full :
         xclass::table3Benchmarks()) {
        const xclass::BenchmarkSpec spec =
            xclass::scaledDown(full, 2000000);
        ++bench_count;
        for (std::size_t s = 0; s < steps.size(); ++s) {
            EcssdSystem system(spec, steps[s]);
            const accel::RunResult result = system.runInference(1);
            mean_ms[s] += result.meanBatchMs();
            mean_util[s] += result.channelUtilization;
        }
    }

    const char *paper_speedup[] = {"1.0", "4.06", "-", "-", "10.5"};
    const char *paper_util[] = {"<10%", "44.31%", "-", "67.6%",
                                "94.7%"};
    for (std::size_t s = 0; s < steps.size(); ++s) {
        mean_ms[s] /= bench_count;
        mean_util[s] /= bench_count;
        bench::row(std::string(stepNames[s]) + " latency",
                   mean_ms[s], "ms/batch");
        bench::row(std::string(stepNames[s]) + " speedup vs step 0",
                   mean_ms[0] / mean_ms[s], "x", paper_speedup[s]);
        bench::row(std::string(stepNames[s]) + " channel util",
                   mean_util[s] * 100.0, "%", paper_util[s]);
    }
}

void
BM_FullEcssdBatch(benchmark::State &state)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 65536);
    EcssdSystem system(spec, EcssdOptions::full());
    double ms = 0.0;
    for (auto _ : state) {
        const accel::RunResult result = system.runInference(1);
        ms = result.meanBatchMs();
        benchmark::DoNotOptimize(ms);
    }
    state.counters["simulated_batch_ms"] = ms;
}
BENCHMARK(BM_FullEcssdBatch)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFig8();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
