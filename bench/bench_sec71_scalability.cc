/**
 * @file
 * Reproduces the Section 7.1 scalability discussion: DRAM capacity
 * (8/16/32 GB) vs the maximum deployable classification scale, and
 * scale-out partitioning across multiple ECSSDs for a 500M-category
 * layer.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "ecssd/system.hh"

using namespace ecssd;

namespace
{

/**
 * Max categories whose INT4 screener fits a DRAM of @p bytes.  The
 * FTL's management data (L2P map, wear metadata) keeps ~20% of the
 * DRAM, which is how the paper's 16 GB device tops out at the
 * 12.8 GB screener of the 100M-category layer.
 */
constexpr double dramFillTarget = 0.8;

std::uint64_t
maxCategories(std::uint64_t dram_bytes, std::uint32_t shrunk_dim)
{
    return static_cast<std::uint64_t>(
        static_cast<double>(dram_bytes) * dramFillTarget)
        / (shrunk_dim / 2);
}

void
printSec71()
{
    bench::banner("Section 7.1: scalability");
    const std::uint32_t k = 256; // D = 1024 at scale 0.25

    const std::uint64_t gib = 1ULL << 30;
    bench::row("max categories with 8 GB DRAM",
               static_cast<double>(maxCategories(8 * gib, k)) / 1e6,
               "M", "~50M");
    bench::row("max categories with 16 GB DRAM",
               static_cast<double>(maxCategories(16 * gib, k)) / 1e6,
               "M", "~100M (sweet spot)");
    bench::row("max categories with 32 GB DRAM",
               static_cast<double>(maxCategories(32 * gib, k)) / 1e6,
               "M", "~200M");

    // 100M categories must deploy on the default 16 GB device...
    xclass::BenchmarkSpec s100m =
        xclass::benchmarkByName("XMLCNN-S100M");
    EcssdSystem single(s100m, EcssdOptions::full());
    bench::row("S100M INT4 footprint",
               static_cast<double>(s100m.int4WeightBytes()) / 1e9,
               "GB", "12.8");
    bench::row("S100M deploy estimate",
               sim::tickToSeconds(single.deployTimeEstimate()),
               "s");

    // ...while a 500M-category layer needs the scale-out path:
    // partition over ceil(64 GB / 16 GB) = 5 devices (the paper's
    // example with its own capacity accounting).
    xclass::BenchmarkSpec s500m = s100m;
    s500m.name = "XMLCNN-S500M";
    s500m.categories = 500000000;
    const double int4_gb =
        static_cast<double>(s500m.int4WeightBytes()) / 1e9;
    const double fp32_tb =
        static_cast<double>(s500m.fp32WeightBytes()) / 1e12;
    bench::row("S500M INT4 footprint", int4_gb, "GB", "64");
    bench::row("S500M FP32 footprint", fp32_tb, "TB", "2");
    const std::uint64_t usable = static_cast<std::uint64_t>(
        16.0 * static_cast<double>(gib) * dramFillTarget);
    const unsigned devices = static_cast<unsigned>(
        (s500m.int4WeightBytes() + usable - 1) / usable);
    bench::row("ECSSDs needed (scale-out)", devices, "devices",
               "5");

    // Per-device partition runs like a 100M benchmark; devices work
    // in parallel, so scale-out latency ~= the partition latency.
    xclass::BenchmarkSpec partition = s500m;
    partition.categories = s500m.categories / devices;
    EcssdSystem shard(
        xclass::scaledDown(partition, 2000000),
        EcssdOptions::full());
    const accel::RunResult result = shard.runInference(1);
    bench::row("per-shard batch latency (scaled 2M sim)",
               result.meanBatchMs(), "ms");
}

void
BM_DeployEstimate(benchmark::State &state)
{
    const xclass::BenchmarkSpec spec =
        xclass::benchmarkByName("XMLCNN-S100M");
    EcssdSystem system(spec, EcssdOptions::full());
    for (auto _ : state)
        benchmark::DoNotOptimize(system.deployTimeEstimate());
}
BENCHMARK(BM_DeployEstimate);

} // namespace

int
main(int argc, char **argv)
{
    printSec71();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
