/**
 * @file
 * Ablations of the design choices DESIGN.md calls out, beyond the
 * paper's own figures:
 *
 *  - data-buffer size (fetch run-ahead depth) vs utilization,
 *  - batch size vs the roofline crossover (memory- to compute-bound),
 *  - channel count scaling,
 *  - dies-per-channel vs the sense/bus balance,
 *  - hot-degree predictor noise vs layout quality,
 *  - candidate temporal stability (hot-set fraction) sensitivity.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "ecssd/system.hh"

using namespace ecssd;

namespace
{

xclass::BenchmarkSpec
baseSpec()
{
    return xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 65536);
}

accel::RunResult
run(const xclass::BenchmarkSpec &spec, const EcssdOptions &options,
    unsigned batches = 2)
{
    EcssdSystem system(spec, options);
    return system.runInference(batches);
}

void
bufferSweep()
{
    bench::banner("Ablation: data-buffer size (fetch run-ahead)");
    for (const std::uint64_t kib : {256, 1024, 4096, 16384}) {
        EcssdOptions options = EcssdOptions::full();
        options.ssd.dataBufferBytes = kib * 1024;
        const accel::RunResult r = run(baseSpec(), options);
        bench::row("buffer " + std::to_string(kib)
                       + " KiB: utilization",
                   r.channelUtilization * 100.0, "%");
    }
}

void
batchSweep()
{
    bench::banner("Ablation: batch size (roofline crossover at "
                  "~12.8 queries)");
    for (const std::uint32_t batch : {1, 4, 8, 16, 32}) {
        xclass::BenchmarkSpec spec = baseSpec();
        spec.batchSize = batch;
        const accel::RunResult r =
            run(spec, EcssdOptions::full());
        bench::row("batch " + std::to_string(batch)
                       + ": effective GFLOPS",
                   r.effectiveGflops, "GFLOPS");
        bench::row("batch " + std::to_string(batch)
                       + ": channel utilization",
                   r.channelUtilization * 100.0, "%");
    }
}

void
channelSweep()
{
    bench::banner("Ablation: flash channel count");
    double previous_ms = 0.0;
    for (const unsigned channels : {4u, 8u, 16u}) {
        EcssdOptions options = EcssdOptions::full();
        options.ssd.channels = channels;
        const accel::RunResult r = run(baseSpec(), options);
        bench::row(std::to_string(channels)
                       + " channels: batch latency",
                   r.meanBatchMs(), "ms");
        if (previous_ms > 0.0)
            bench::row(std::to_string(channels)
                           + " channels: scaling vs previous",
                       previous_ms / r.meanBatchMs(), "x");
        previous_ms = r.meanBatchMs();
    }
}

void
dieSweep()
{
    bench::banner("Ablation: dies per channel (tR = 50 us, page "
                  "transfer = 4.1 us)");
    for (const unsigned dies : {4u, 8u, 16u, 32u}) {
        EcssdOptions options = EcssdOptions::full();
        options.ssd.diesPerChannel = dies;
        const accel::RunResult r = run(baseSpec(), options);
        bench::row(std::to_string(dies)
                       + " dies/channel: utilization",
                   r.channelUtilization * 100.0, "%");
    }
}

void
multiPlaneSweep()
{
    bench::banner("Ablation: multi-plane concurrent sensing");
    for (const bool enabled : {false, true}) {
        EcssdOptions options = EcssdOptions::full();
        options.ssd.multiPlaneRead = enabled;
        const accel::RunResult r = run(baseSpec(), options);
        bench::row(std::string("multi-plane ")
                       + (enabled ? "on" : "off")
                       + ": utilization",
                   r.channelUtilization * 100.0, "%");
    }
}

void
predictorNoiseSweep()
{
    bench::banner("Ablation: hot-degree predictor noise "
                  "(learning layout quality)");
    for (const double noise : {0.0, 0.25, 1.0, 3.0}) {
        EcssdOptions options = EcssdOptions::full();
        options.predictorNoise = noise;
        const accel::RunResult r = run(baseSpec(), options);
        bench::row("noise " + std::to_string(noise)
                       + ": utilization",
                   r.channelUtilization * 100.0, "%");
    }
}

void
precisionSweep()
{
    bench::banner("Ablation: on-flash weight precision "
                  "(CFP32 vs the CFP16 extension)");
    for (const accel::WeightPrecision precision :
         {accel::WeightPrecision::Cfp32,
          accel::WeightPrecision::Cfp16}) {
        EcssdOptions options = EcssdOptions::full();
        options.weightPrecision = precision;
        const accel::RunResult r = run(baseSpec(), options);
        const char *name =
            precision == accel::WeightPrecision::Cfp16 ? "CFP16"
                                                       : "CFP32";
        bench::row(std::string(name) + ": batch latency",
                   r.meanBatchMs(), "ms");
    }
}

void
hotSetSweep()
{
    bench::banner("Ablation: candidate temporal stability");
    for (const double fraction : {0.0, 0.4, 0.8}) {
        xclass::BenchmarkSpec spec = baseSpec();
        spec.hotSetFraction = fraction;
        const accel::RunResult learn =
            run(spec, EcssdOptions::full());
        EcssdOptions uniform = EcssdOptions::full();
        uniform.layoutKind = layout::LayoutKind::Uniform;
        const accel::RunResult uni = run(spec, uniform);
        bench::row("hot-set " + std::to_string(fraction)
                       + ": learning speedup vs uniform",
                   uni.meanBatchMs() / learn.meanBatchMs(), "x");
    }
}

void
BM_BatchSizeSweep(benchmark::State &state)
{
    xclass::BenchmarkSpec spec = baseSpec();
    spec.batchSize = static_cast<std::uint32_t>(state.range(0));
    EcssdSystem system(spec, EcssdOptions::full());
    double gflops = 0.0;
    for (auto _ : state) {
        const accel::RunResult r = system.runInference(1);
        gflops = r.effectiveGflops;
        benchmark::DoNotOptimize(gflops);
    }
    state.counters["sim_gflops"] = gflops;
}
BENCHMARK(BM_BatchSizeSweep)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    bufferSweep();
    batchSweep();
    channelSweep();
    dieSweep();
    multiPlaneSweep();
    precisionSweep();
    predictorNoiseSweep();
    hotSetSweep();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
