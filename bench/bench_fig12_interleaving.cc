/**
 * @file
 * Reproduces Fig 12: end-to-end performance of sequential storing,
 * uniform interleaving, and learning-based adaptive interleaving on
 * four benchmarks.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "ecssd/system.hh"

using namespace ecssd;

namespace
{

double
batchMs(const xclass::BenchmarkSpec &spec, layout::LayoutKind kind)
{
    EcssdOptions options = EcssdOptions::full();
    options.layoutKind = kind;
    EcssdSystem system(spec, options);
    return system.runInference(2).meanBatchMs();
}

void
printFig12()
{
    bench::banner("Fig 12: storing strategy comparison");
    const char *names[] = {"GNMT-E32K", "LSTM-W33K",
                           "Transformer-W268K", "XMLCNN-A670K"};
    double seq_speedup = 0.0;
    double uni_speedup = 0.0;
    for (const char *name : names) {
        const xclass::BenchmarkSpec spec =
            xclass::benchmarkByName(name);
        const double seq =
            batchMs(spec, layout::LayoutKind::Sequential);
        const double uni =
            batchMs(spec, layout::LayoutKind::Uniform);
        const double learn =
            batchMs(spec, layout::LayoutKind::LearningAdaptive);
        bench::row(std::string(name) + " sequential", seq,
                   "ms/batch");
        bench::row(std::string(name) + " uniform", uni, "ms/batch");
        bench::row(std::string(name) + " learning", learn,
                   "ms/batch");
        seq_speedup += seq / learn;
        uni_speedup += uni / learn;
    }
    bench::row("avg learning speedup vs sequential",
               seq_speedup / 4.0, "x", "7.57");
    bench::row("avg learning speedup vs uniform",
               uni_speedup / 4.0, "x", "1.43");
}

void
BM_LearningLayoutBatch(benchmark::State &state)
{
    const xclass::BenchmarkSpec spec =
        xclass::benchmarkByName("GNMT-E32K");
    EcssdSystem system(spec, EcssdOptions::full());
    for (auto _ : state)
        benchmark::DoNotOptimize(system.runInference(1).totalTime);
}
BENCHMARK(BM_LearningLayoutBatch)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFig12();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
