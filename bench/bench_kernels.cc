/**
 * @file
 * Host-compute kernel benchmarks: scalar nibble-at-a-time screener
 * scoring vs the byte-wise LUT kernel at every runtime-dispatched
 * ISA level (scalar LUT / vector-extension / AVX2 / AVX-512), plus
 * the thread-pooled and query-batched paths, at the paper's
 * screening scale (268K categories x K=64).
 *
 *   bench_kernels [google-benchmark flags] [--out DIR]
 *
 * Besides the usual google-benchmark report, the harness measures the
 * same kernels with a best-of-N wall-clock loop and writes
 * BENCH_kernels.json into DIR: absolute per-pass times, rows/s, and
 * the speedups over both the nibble-wise scalar reference and the
 * scalar LUT, one entry per (kernel, ISA level) with the tuned row
 * chunk, query tile, and pool threads recorded alongside.  Unlike
 * BENCH_e2e/BENCH_breakdown these numbers are *wall clock* — they are
 * uploaded for trend inspection, never diffed as a CI gate.  Every
 * measured pass is first checked byte-identical against the scalar
 * reference; a divergence aborts the run instead of recording a
 * speedup for wrong results.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "numeric/autotune.hh"
#include "numeric/int4.hh"
#include "numeric/kernels.hh"
#include "numeric/matrix.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/thread_pool.hh"

using namespace ecssd;
using namespace ecssd::numeric;

namespace
{

/** The screening regime: L x K after projection (Section 2.1). */
constexpr std::size_t kRows = 268000;
constexpr std::size_t kCols = 64;
constexpr unsigned kPoolThreads = 8;
constexpr std::size_t kBatchQueries = 8;

/** Shared benchmark inputs, built once. */
struct Inputs
{
    Int4Matrix matrix;
    Int4Vector feature;
    std::vector<std::int16_t> widened;

    Inputs()
    {
        FloatMatrix source(kRows, kCols);
        sim::Rng rng(1);
        for (std::size_t r = 0; r < kRows; ++r)
            for (std::size_t c = 0; c < kCols; ++c)
                source.at(r, c) =
                    static_cast<float>(rng.gaussian(0.0, 1.0));
        matrix = Int4Matrix(source);
        std::vector<float> query(kCols);
        for (float &v : query)
            v = static_cast<float>(rng.gaussian(0.0, 1.0));
        feature = quantizeVector(query);
        matrix.widenFeature(feature, widened);
    }
};

Inputs &
inputs()
{
    static Inputs shared;
    return shared;
}

/** The tuned row chunk for this shape (pure function of shape/ISA,
 *  so computing it once for the scalar level is fine). */
std::size_t
tunedRowChunk()
{
    static const std::size_t chunk =
        rowChunkCandidates(inputs().matrix.bytesPerRow()).back();
    return chunk;
}

/** One full scalar scoring pass (the pre-LUT reference path). */
void
scalarPass(const Inputs &in, std::vector<double> &out)
{
    for (std::size_t r = 0; r < kRows; ++r)
        out[r] = in.matrix.dotRow(r, in.feature);
}

/** One full single-thread LUT pass at @p isa. */
void
lutPass(const Inputs &in, IsaLevel isa, std::vector<double> &out)
{
    in.matrix.dotRowsLut(0, kRows, in.widened, in.feature.scale,
                         out.data(), isa);
}

/** One full thread-pooled LUT pass at @p isa. */
void
pooledPass(const Inputs &in, IsaLevel isa, sim::ThreadPool &pool,
           std::vector<double> &out)
{
    pool.parallelFor(0, kRows, tunedRowChunk(),
                     [&](std::size_t b, std::size_t e) {
                         in.matrix.dotRowsLut(b, e, in.widened,
                                              in.feature.scale,
                                              out.data() + b, isa);
                     });
}

/** Replicated-query batch inputs for the blocked kernel. */
struct BatchInputs
{
    std::size_t stride = 0;
    std::vector<std::int16_t> features;
    std::vector<float> scales;

    explicit BatchInputs(const Inputs &in)
        : stride(2 * in.matrix.bytesPerRow()),
          features(kBatchQueries * stride),
          scales(kBatchQueries, in.feature.scale)
    {
        for (std::size_t q = 0; q < kBatchQueries; ++q)
            std::copy(in.widened.begin(), in.widened.end(),
                      features.begin()
                          + static_cast<std::ptrdiff_t>(q * stride));
    }
};

/** One full single-thread batched LUT pass at @p isa. */
void
batchPass(const Inputs &in, const BatchInputs &batch, IsaLevel isa,
          std::vector<double> &out)
{
    in.matrix.dotRowsBatchLut(0, kRows, batch.features.data(),
                              kBatchQueries, batch.stride,
                              batch.scales.data(), out.data(), kRows,
                              isa);
}

void
BM_ScreenerScalar(benchmark::State &state)
{
    const Inputs &in = inputs();
    std::vector<double> out(kRows);
    for (auto _ : state) {
        scalarPass(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_ScreenerScalar);

void
BM_ScreenerLut(benchmark::State &state, IsaLevel isa)
{
    const Inputs &in = inputs();
    std::vector<double> out(kRows);
    for (auto _ : state) {
        lutPass(in, isa, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kRows));
}

void
BM_ScreenerLutPooled(benchmark::State &state, IsaLevel isa)
{
    const Inputs &in = inputs();
    sim::ThreadPool pool(kPoolThreads);
    std::vector<double> out(kRows);
    for (auto _ : state) {
        pooledPass(in, isa, pool, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kRows));
}

void
BM_ScreenerBatchLut(benchmark::State &state, IsaLevel isa)
{
    const Inputs &in = inputs();
    const BatchInputs batch(in);
    std::vector<double> out(kBatchQueries * kRows);
    for (auto _ : state) {
        batchPass(in, batch, isa, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kRows * kBatchQueries));
}

/** Register the per-ISA variants of every LUT benchmark. */
void
registerIsaBenchmarks()
{
    for (const IsaLevel isa : supportedIsaLevels()) {
        const std::string suffix = toString(isa);
        benchmark::RegisterBenchmark(
            ("BM_ScreenerLut/" + suffix).c_str(),
            [isa](benchmark::State &state) {
                BM_ScreenerLut(state, isa);
            });
        benchmark::RegisterBenchmark(
            ("BM_ScreenerLutPooled/" + suffix).c_str(),
            [isa](benchmark::State &state) {
                BM_ScreenerLutPooled(state, isa);
            });
        benchmark::RegisterBenchmark(
            ("BM_ScreenerBatchLut/" + suffix).c_str(),
            [isa](benchmark::State &state) {
                BM_ScreenerBatchLut(state, isa);
            });
    }
}

/** Best-of-N wall-clock milliseconds of @p pass. */
template <typename Pass>
double
bestMs(unsigned repeats, const Pass &pass)
{
    double best = 0.0;
    for (unsigned i = 0; i < repeats; ++i) {
        const auto start = std::chrono::steady_clock::now();
        pass();
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        best = (i == 0) ? ms : std::min(best, ms);
    }
    return best;
}

/** One measured baseline row of the JSON dump. */
struct Entry
{
    std::string name;
    std::string isa;
    std::size_t rowChunk = 0;
    std::size_t queryTile = 0;
    unsigned poolThreads = 1;
    double wallMs = 0.0;
    /** Rows scored per pass (kRows, or kRows * queries batched). */
    double rowsPerPass = 0.0;
};

void
writeBaseline(const std::string &out_dir)
{
    const Inputs &in = inputs();
    const BatchInputs batch(in);
    sim::ThreadPool pool(kPoolThreads);
    std::vector<double> reference(kRows);
    std::vector<double> out(kRows);
    std::vector<double> batch_out(kBatchQueries * kRows);

    constexpr unsigned kRepeats = 5;
    std::vector<Entry> entries;

    // The nibble-wise scalar reference everything must match.
    scalarPass(in, reference);
    Entry scalar_entry;
    scalar_entry.name = "scalar_ref_1t";
    scalar_entry.isa = "scalar";
    scalar_entry.wallMs =
        bestMs(kRepeats, [&] { scalarPass(in, out); });
    scalar_entry.rowsPerPass = static_cast<double>(kRows);
    entries.push_back(scalar_entry);
    const double scalar_ms = scalar_entry.wallMs;

    // The speedup claims are only meaningful if the fast paths
    // compute the same bits as the reference.
    const auto check = [&](const std::vector<double> &got,
                           const char *what, IsaLevel isa) {
        for (std::size_t r = 0; r < kRows; ++r) {
            if (got[r] != reference[r])
                sim::fatal(what, " at isa=", toString(isa),
                           " diverges from the scalar reference at "
                           "row ",
                           r, "; refusing to record a speedup");
        }
    };

    double lut_scalar_ms = 0.0;
    for (const IsaLevel isa : supportedIsaLevels()) {
        const char *level = toString(isa);

        lutPass(in, isa, out);
        check(out, "dotRowsLut", isa);
        Entry lut;
        lut.name = "lut_1t";
        lut.isa = level;
        lut.rowChunk = tunedRowChunk();
        lut.wallMs = bestMs(kRepeats, [&] { lutPass(in, isa, out); });
        lut.rowsPerPass = static_cast<double>(kRows);
        entries.push_back(lut);
        if (isa == IsaLevel::Scalar)
            lut_scalar_ms = lut.wallMs;

        pooledPass(in, isa, pool, out);
        check(out, "pooled dotRowsLut", isa);
        Entry pooled;
        pooled.name = "lut_pooled";
        pooled.isa = level;
        pooled.rowChunk = tunedRowChunk();
        pooled.poolThreads = kPoolThreads;
        pooled.wallMs = bestMs(
            kRepeats, [&] { pooledPass(in, isa, pool, out); });
        pooled.rowsPerPass = static_cast<double>(kRows);
        entries.push_back(pooled);

        batchPass(in, batch, isa, batch_out);
        for (std::size_t q = 0; q < kBatchQueries; ++q)
            for (std::size_t r = 0; r < kRows; ++r)
                if (batch_out[q * kRows + r] != reference[r])
                    sim::fatal("dotRowsBatchLut at isa=", level,
                               " diverges from the scalar reference; "
                               "refusing to record a speedup");
        Entry batched;
        batched.name = "batch_1t";
        batched.isa = level;
        batched.rowChunk = tunedRowChunk();
        batched.queryTile = Int4Matrix::kDefaultQueryTile;
        batched.wallMs = bestMs(
            kRepeats, [&] { batchPass(in, batch, isa, batch_out); });
        batched.rowsPerPass =
            static_cast<double>(kRows * kBatchQueries);
        entries.push_back(batched);
    }

    const std::string path = out_dir + "/BENCH_kernels.json";
    std::ofstream os(path);
    if (!os)
        sim::fatal("cannot open '", path, "' for writing");
    sim::JsonWriter json(os);
    json.beginObject();
    json.key("config");
    json.beginObject();
    json.key("rows");
    json.value(static_cast<std::uint64_t>(kRows));
    json.key("cols");
    json.value(static_cast<std::uint64_t>(kCols));
    json.key("pool_threads");
    json.value(static_cast<std::uint64_t>(kPoolThreads));
    json.key("batch_queries");
    json.value(static_cast<std::uint64_t>(kBatchQueries));
    json.key("best_isa");
    json.value(toString(detectBestIsa()));
    json.endObject();
    json.key("entries");
    json.beginArray();
    for (const Entry &entry : entries) {
        json.beginObject();
        json.key("name");
        json.value(entry.name);
        json.key("isa");
        json.value(entry.isa);
        json.key("row_chunk");
        json.value(static_cast<std::uint64_t>(entry.rowChunk));
        json.key("query_tile");
        json.value(static_cast<std::uint64_t>(entry.queryTile));
        json.key("pool_threads");
        json.value(static_cast<std::uint64_t>(entry.poolThreads));
        json.key("wall_ms");
        json.value(entry.wallMs);
        json.key("rows_per_sec");
        json.value(entry.rowsPerPass / (entry.wallMs / 1e3));
        json.key("speedup_vs_scalar");
        json.value(scalar_ms * (entry.rowsPerPass
                                / static_cast<double>(kRows))
                   / entry.wallMs);
        json.key("speedup_vs_lut_scalar");
        json.value(lut_scalar_ms * (entry.rowsPerPass
                                    / static_cast<double>(kRows))
                   / entry.wallMs);
        json.endObject();
    }
    json.endArray();
    json.endObject();
    os << "\n";

    double best_lut_ms = lut_scalar_ms;
    for (const Entry &entry : entries)
        if (entry.name == "lut_1t")
            best_lut_ms = std::min(best_lut_ms, entry.wallMs);
    std::printf("wrote %s (scalar %.2f ms, scalar-lut %.2f ms, best "
                "simd lut %.2f ms, simd-vs-lut %.2fx)\n",
                path.c_str(), scalar_ms, lut_scalar_ms, best_lut_ms,
                lut_scalar_ms / best_lut_ms);
}

} // namespace

int
main(int argc, char **argv)
{
    registerIsaBenchmarks();
    benchmark::Initialize(&argc, argv);
    std::string out_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_dir = argv[++i];
        } else {
            std::fprintf(
                stderr,
                "usage: %s [benchmark flags] [--out DIR]\n",
                argv[0]);
            return 2;
        }
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!out_dir.empty())
        writeBaseline(out_dir);
    return 0;
}
