/**
 * @file
 * Host-compute kernel benchmarks: scalar nibble-at-a-time screener
 * scoring vs the byte-wise LUT kernel vs the thread-pooled LUT path
 * at the paper's screening scale (268K categories x K=64).
 *
 *   bench_kernels [google-benchmark flags] [--out DIR]
 *
 * Besides the usual google-benchmark report, the harness measures the
 * same kernels with a best-of-N wall-clock loop and writes
 * BENCH_kernels.json into DIR: absolute per-pass times, rows/s, and
 * the LUT-vs-scalar speedups the PR's acceptance gate reads.  Unlike
 * BENCH_e2e/BENCH_breakdown these numbers are *wall clock* — they are
 * uploaded for trend inspection, never diffed as a CI gate.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "numeric/int4.hh"
#include "numeric/matrix.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"
#include "sim/thread_pool.hh"

using namespace ecssd;
using namespace ecssd::numeric;

namespace
{

/** The screening regime: L x K after projection (Section 2.1). */
constexpr std::size_t kRows = 268000;
constexpr std::size_t kCols = 64;
constexpr unsigned kPoolThreads = 8;
constexpr std::size_t kGrain = 2048;
constexpr std::size_t kBatchQueries = 8;

/** Shared benchmark inputs, built once. */
struct Inputs
{
    Int4Matrix matrix;
    Int4Vector feature;
    std::vector<std::int16_t> widened;

    Inputs()
    {
        FloatMatrix source(kRows, kCols);
        sim::Rng rng(1);
        for (std::size_t r = 0; r < kRows; ++r)
            for (std::size_t c = 0; c < kCols; ++c)
                source.at(r, c) =
                    static_cast<float>(rng.gaussian(0.0, 1.0));
        matrix = Int4Matrix(source);
        std::vector<float> query(kCols);
        for (float &v : query)
            v = static_cast<float>(rng.gaussian(0.0, 1.0));
        feature = quantizeVector(query);
        matrix.widenFeature(feature, widened);
    }
};

Inputs &
inputs()
{
    static Inputs shared;
    return shared;
}

/** One full scalar scoring pass (the pre-PR reference path). */
void
scalarPass(const Inputs &in, std::vector<double> &out)
{
    for (std::size_t r = 0; r < kRows; ++r)
        out[r] = in.matrix.dotRow(r, in.feature);
}

/** One full single-thread LUT pass. */
void
lutPass(const Inputs &in, std::vector<double> &out)
{
    in.matrix.dotRowsLut(0, kRows, in.widened, in.feature.scale,
                         out.data());
}

/** One full thread-pooled LUT pass. */
void
pooledPass(const Inputs &in, sim::ThreadPool &pool,
           std::vector<double> &out)
{
    pool.parallelFor(0, kRows, kGrain,
                     [&](std::size_t b, std::size_t e) {
                         in.matrix.dotRowsLut(b, e, in.widened,
                                              in.feature.scale,
                                              out.data() + b);
                     });
}

void
BM_ScreenerScalar(benchmark::State &state)
{
    const Inputs &in = inputs();
    std::vector<double> out(kRows);
    for (auto _ : state) {
        scalarPass(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_ScreenerScalar);

void
BM_ScreenerLut(benchmark::State &state)
{
    const Inputs &in = inputs();
    std::vector<double> out(kRows);
    for (auto _ : state) {
        lutPass(in, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_ScreenerLut);

void
BM_ScreenerLutPooled(benchmark::State &state)
{
    const Inputs &in = inputs();
    sim::ThreadPool pool(kPoolThreads);
    std::vector<double> out(kRows);
    for (auto _ : state) {
        pooledPass(in, pool, out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations() * kRows));
}
BENCHMARK(BM_ScreenerLutPooled);

void
BM_ScreenerBatchLut(benchmark::State &state)
{
    const Inputs &in = inputs();
    const std::size_t stride = 2 * in.matrix.bytesPerRow();
    std::vector<std::int16_t> features(kBatchQueries * stride);
    std::vector<float> scales(kBatchQueries, in.feature.scale);
    for (std::size_t q = 0; q < kBatchQueries; ++q)
        std::copy(in.widened.begin(), in.widened.end(),
                  features.begin()
                      + static_cast<std::ptrdiff_t>(q * stride));
    std::vector<double> out(kBatchQueries * kRows);
    for (auto _ : state) {
        in.matrix.dotRowsBatchLut(0, kRows, features.data(),
                                  kBatchQueries, stride,
                                  scales.data(), out.data(), kRows);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations() * kRows * kBatchQueries));
}
BENCHMARK(BM_ScreenerBatchLut);

/** Best-of-N wall-clock milliseconds of @p pass. */
template <typename Pass>
double
bestMs(unsigned repeats, const Pass &pass)
{
    double best = 0.0;
    for (unsigned i = 0; i < repeats; ++i) {
        const auto start = std::chrono::steady_clock::now();
        pass();
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        best = (i == 0) ? ms : std::min(best, ms);
    }
    return best;
}

void
writeBaseline(const std::string &out_dir)
{
    const Inputs &in = inputs();
    sim::ThreadPool pool(kPoolThreads);
    std::vector<double> scalar_out(kRows);
    std::vector<double> lut_out(kRows);
    std::vector<double> pooled_out(kRows);

    constexpr unsigned kRepeats = 5;
    const double scalar_ms =
        bestMs(kRepeats, [&] { scalarPass(in, scalar_out); });
    const double lut_ms =
        bestMs(kRepeats, [&] { lutPass(in, lut_out); });
    const double pooled_ms =
        bestMs(kRepeats, [&] { pooledPass(in, pool, pooled_out); });

    // The speedup claim is only meaningful if the fast path computes
    // the same bits as the reference.
    if (lut_out != scalar_out || pooled_out != scalar_out)
        sim::fatal("kernel outputs diverge from the scalar "
                   "reference; refusing to record a speedup");

    const double rows = static_cast<double>(kRows);
    const std::string path = out_dir + "/BENCH_kernels.json";
    std::ofstream os(path);
    if (!os)
        sim::fatal("cannot open '", path, "' for writing");
    sim::JsonWriter json(os);
    json.beginObject();
    json.key("config");
    json.beginObject();
    json.key("rows");
    json.value(static_cast<std::uint64_t>(kRows));
    json.key("cols");
    json.value(static_cast<std::uint64_t>(kCols));
    json.key("pool_threads");
    json.value(static_cast<std::uint64_t>(kPoolThreads));
    json.endObject();
    json.key("wall_ms");
    json.beginObject();
    json.key("scalar_1t");
    json.value(scalar_ms);
    json.key("lut_1t");
    json.value(lut_ms);
    json.key("lut_pooled");
    json.value(pooled_ms);
    json.endObject();
    json.key("rows_per_sec");
    json.beginObject();
    json.key("scalar_1t");
    json.value(rows / (scalar_ms / 1e3));
    json.key("lut_1t");
    json.value(rows / (lut_ms / 1e3));
    json.key("lut_pooled");
    json.value(rows / (pooled_ms / 1e3));
    json.endObject();
    json.key("speedup_vs_scalar");
    json.beginObject();
    json.key("lut_1t");
    json.value(scalar_ms / lut_ms);
    json.key("lut_pooled");
    json.value(scalar_ms / pooled_ms);
    json.endObject();
    json.endObject();
    os << "\n";
    std::printf("wrote %s (scalar %.2f ms, lut %.2f ms, pooled "
                "%.2f ms, speedup %.2fx)\n",
                path.c_str(), scalar_ms, lut_ms, pooled_ms,
                scalar_ms / pooled_ms);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    std::string out_dir;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_dir = argv[++i];
        } else {
            std::fprintf(
                stderr,
                "usage: %s [benchmark flags] [--out DIR]\n",
                argv[0]);
            return 2;
        }
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    if (!out_dir.empty())
        writeBaseline(out_dir);
    return 0;
}
