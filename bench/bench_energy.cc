/**
 * @file
 * End-to-end energy accounting of the Fig 8 design points: where
 * the joules go (flash / DRAM / link / accelerator / background) and
 * how the co-design changes energy per inference, complementing the
 * Section 7.2/7.3 power-efficiency discussion.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "ecssd/system.hh"

using namespace ecssd;

namespace
{

void
printEnergy()
{
    bench::banner("Energy per inference batch (S10M scaled to "
                  "65536 categories)");
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 65536);

    struct Point
    {
        const char *name;
        EcssdOptions options;
    };
    const Point points[] = {
        {"naive + sequential + homogeneous",
         EcssdOptions::startingBaseline()},
        {"full ECSSD", EcssdOptions::full()},
        {"full ECSSD, screening off",
         [] {
             EcssdOptions o = EcssdOptions::full();
             o.screening = false;
             return o;
         }()},
    };

    for (const Point &point : points) {
        EcssdSystem system(spec, point.options);
        const accel::RunResult run = system.runInference(2);
        const circuit::EnergyBreakdown e =
            system.estimateRunEnergy(run);
        const double batches = 2.0;
        bench::row(std::string(point.name) + ": total",
                   e.totalUj() / batches / 1000.0, "mJ/batch");
        bench::row(std::string(point.name) + ": flash share",
                   e.flashUj / e.totalUj() * 100.0, "%");
        bench::row(std::string(point.name) + ": background share",
                   e.backgroundUj / e.totalUj() * 100.0, "%");
        std::uint64_t flops = 0;
        for (const accel::BatchTiming &batch : run.batches)
            flops += batch.fp32Flops;
        bench::row(std::string(point.name) + ": device GFLOPS/W",
                   e.gflopsPerWatt(flops, run.totalTime),
                   "GFLOPS/W");
    }
}

void
BM_EnergyEstimate(benchmark::State &state)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 32768);
    EcssdSystem system(spec, EcssdOptions::full());
    const accel::RunResult run = system.runInference(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            system.estimateRunEnergy(run).totalUj());
}
BENCHMARK(BM_EnergyEstimate);

} // namespace

int
main(int argc, char **argv)
{
    printEnergy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
