/**
 * @file
 * Reproduces Fig 11: per-channel access pattern of one GNMT-E32K
 * weight-data sweep (10% candidate ratio) under uniform vs
 * learning-based interleaving.
 */

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hh"
#include "layout/strategy.hh"
#include "xclass/workload.hh"

using namespace ecssd;

namespace
{

void
printFig11()
{
    bench::banner(
        "Fig 11: flash channel access pattern (GNMT-E32K, 10%)");
    xclass::BenchmarkSpec spec =
        xclass::benchmarkByName("GNMT-E32K");
    spec.candidateRatio = 0.10;
    xclass::CandidateTrace trace(spec, 7);

    const auto uniform = layout::makeLayout(
        layout::LayoutKind::Uniform, spec.categories, 8);
    const auto learning = layout::makeLayout(
        layout::LayoutKind::LearningAdaptive, spec.categories, 8,
        [&trace](std::uint64_t r) { return trace.hotness(r); });

    // Aggregate accesses over a window of batches, as the figure
    // shows accumulated per-channel workload.
    std::vector<std::uint64_t> uniform_pattern(8, 0);
    std::vector<std::uint64_t> learning_pattern(8, 0);
    for (int batch = 0; batch < 16; ++batch) {
        const std::vector<std::uint64_t> candidates =
            trace.drawCandidates();
        const auto pu =
            layout::channelAccessPattern(candidates, *uniform);
        const auto pl =
            layout::channelAccessPattern(candidates, *learning);
        for (unsigned c = 0; c < 8; ++c) {
            uniform_pattern[c] += pu[c];
            learning_pattern[c] += pl[c];
        }
    }

    std::printf("  %-10s", "channel");
    for (unsigned c = 0; c < 8; ++c)
        std::printf(" %8u", c);
    std::printf("\n  %-10s", "uniform");
    for (unsigned c = 0; c < 8; ++c)
        std::printf(" %8llu",
                    (unsigned long long)uniform_pattern[c]);
    std::printf("\n  %-10s", "learning");
    for (unsigned c = 0; c < 8; ++c)
        std::printf(" %8llu",
                    (unsigned long long)learning_pattern[c]);
    std::printf("\n");

    bench::row("uniform balance (mean/max)",
               layout::accessBalance(uniform_pattern), "", "skewed");
    bench::row("learning balance (mean/max)",
               layout::accessBalance(learning_pattern), "",
               "nearly 1.0");
}

void
BM_BuildLearningLayout(benchmark::State &state)
{
    xclass::BenchmarkSpec spec =
        xclass::benchmarkByName("GNMT-E32K");
    xclass::CandidateTrace trace(spec, 7);
    for (auto _ : state) {
        const auto strat = layout::makeLayout(
            layout::LayoutKind::LearningAdaptive, spec.categories, 8,
            [&trace](std::uint64_t r) { return trace.hotness(r); });
        benchmark::DoNotOptimize(strat->channelOf(0));
    }
}
BENCHMARK(BM_BuildLearningLayout)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFig11();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
