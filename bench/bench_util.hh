/**
 * @file
 * Shared helpers for the experiment benches: paper-style table
 * printing.  Each bench binary prints the reproduced table/figure
 * rows first, then runs its google-benchmark micro-timings.
 */

#ifndef ECSSD_BENCH_BENCH_UTIL_HH
#define ECSSD_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

namespace ecssd
{
namespace bench
{

/** Print a section banner for one reproduced table/figure. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n", title.c_str());
}

/** Print a key/value line in the experiment report. */
inline void
row(const std::string &key, double value, const std::string &unit,
    const std::string &paper = {})
{
    if (paper.empty())
        std::printf("  %-44s %12.4f %s\n", key.c_str(), value,
                    unit.c_str());
    else
        std::printf("  %-44s %12.4f %s   (paper: %s)\n", key.c_str(),
                    value, unit.c_str(), paper.c_str());
}

} // namespace bench
} // namespace ecssd

#endif // ECSSD_BENCH_BENCH_UTIL_HH
