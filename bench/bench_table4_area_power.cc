/**
 * @file
 * Reproduces Table 4: area and power of the inserted accelerator,
 * plus the iso-performance naive-FP32 comparison of Section 6.2.
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "circuit/accelerator_model.hh"

using namespace ecssd;
using namespace ecssd::circuit;

namespace
{

void
printTable4()
{
    bench::banner("Table 4: accelerator area/power breakdown");
    const AcceleratorEstimate est =
        estimateAccelerator(AcceleratorConfig{});
    for (const AreaPowerRow &r : est.rows) {
        bench::row(r.block + " area", r.areaMm2, "mm^2");
        bench::row(r.block + " power", r.powerMw, "mW");
    }
    bench::row("Total area", est.totalAreaMm2, "mm^2", "0.1836");
    bench::row("Total power", est.totalPowerMw, "mW", "52.93");
    bench::row("Fits 0.21 mm^2 budget", est.fitsBudget() ? 1 : 0,
               "bool", "yes");

    // Section 6.2: iso-performance naive FP32 needs 0.24 mm^2 and
    // 51.8 mW.
    AcceleratorConfig naive;
    naive.fpKind = FpMacKind::Naive;
    naive.fp32Macs = macsForGflops(peakGflops(64));
    const AcceleratorEstimate naive_est = estimateAccelerator(naive);
    bench::row("Naive FP32 iso-perf area",
               naive_est.rows[0].areaMm2, "mm^2", "0.24");
    bench::row("Naive FP32 iso-perf power",
               naive_est.rows[0].powerMw, "mW", "51.8");
    bench::row("Naive iso-perf fits budget",
               naive_est.fitsBudget() ? 1 : 0, "bool", "no");
}

void
BM_EstimateAccelerator(benchmark::State &state)
{
    for (auto _ : state) {
        const AcceleratorEstimate est =
            estimateAccelerator(AcceleratorConfig{});
        benchmark::DoNotOptimize(est.totalAreaMm2);
    }
}
BENCHMARK(BM_EstimateAccelerator);

} // namespace

int
main(int argc, char **argv)
{
    printTable4();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
