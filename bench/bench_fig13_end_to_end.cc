/**
 * @file
 * Reproduces Fig 13: end-to-end comparison of ECSSD against the
 * eight baseline architectures on the three large-scale synthetic
 * benchmarks (S10M / S50M / S100M).
 *
 * The S50M/S100M runs are scaled to 10M categories for the
 * full-pipeline architectures (ECSSD / GenStore) to keep the harness
 * runtime modest -- the per-batch latencies scale linearly with L in
 * this regime, so speedup ratios are unchanged; the analytic
 * baselines (CPU / SmartSSD) always use the full footprints.
 */

#include <benchmark/benchmark.h>

#include <map>

#include "baselines/baselines.hh"
#include "bench_util.hh"
#include "ecssd/system.hh"

using namespace ecssd;
using namespace ecssd::baselines;

namespace
{

void
printFig13()
{
    bench::banner("Fig 13: end-to-end architecture comparison");
    const std::map<Architecture, const char *> paper_speedups = {
        {Architecture::CpuN, "49.87"},
        {Architecture::SmartSsdN, "37.83"},
        {Architecture::GenStoreN, "24.51"},
        {Architecture::SmartSsdHN, "19.11"},
        {Architecture::CpuAp, "8.22"},
        {Architecture::SmartSsdAp, "6.28"},
        {Architecture::GenStoreAp, "4.05"},
        {Architecture::SmartSsdHAp, "3.24"},
    };

    std::map<Architecture, double> speedup_sum;
    unsigned bench_count = 0;
    for (const xclass::BenchmarkSpec &full :
         xclass::largeScaleBenchmarks()) {
        const xclass::BenchmarkSpec sim_spec =
            xclass::scaledDown(full, 10000000);
        ++bench_count;
        const double ecssd_ms =
            simulate(Architecture::Ecssd, sim_spec, 1).batchMs;
        std::printf("  -- %s (ECSSD batch %.3f ms) --\n",
                    full.name.c_str(), ecssd_ms);
        for (const Architecture arch : allBaselines()) {
            // Dense/analytic baselines pay the full footprint; the
            // simulated in-SSD baselines use the scaled spec.
            const bool analytic = arch == Architecture::CpuN
                || arch == Architecture::CpuAp
                || arch == Architecture::SmartSsdN
                || arch == Architecture::SmartSsdAp
                || arch == Architecture::SmartSsdHN
                || arch == Architecture::SmartSsdHAp;
            const xclass::BenchmarkSpec &spec =
                analytic ? full : sim_spec;
            const double scale = analytic
                ? static_cast<double>(sim_spec.categories)
                    / static_cast<double>(full.categories)
                : 1.0;
            const double ms =
                simulate(arch, spec, 1).batchMs * scale;
            const double speedup = ms / ecssd_ms;
            speedup_sum[arch] += speedup;
            bench::row(toString(arch) + " latency", ms, "ms/batch");
            bench::row(toString(arch) + " ECSSD speedup", speedup,
                       "x");
        }
    }

    std::printf("  -- average across the three benchmarks --\n");
    for (const Architecture arch : allBaselines())
        bench::row("ECSSD speedup over " + toString(arch),
                   speedup_sum[arch] / bench_count, "x",
                   paper_speedups.at(arch));
}

void
BM_EcssdLargeBatch(benchmark::State &state)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), 1000000);
    EcssdSystem system(spec, EcssdOptions::full());
    for (auto _ : state)
        benchmark::DoNotOptimize(system.runInference(1).totalTime);
}
BENCHMARK(BM_EcssdLargeBatch)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printFig13();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
