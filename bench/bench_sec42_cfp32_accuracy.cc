/**
 * @file
 * Reproduces the Section 4.2 CFP32 accuracy study: the fraction of
 * model values that survive pre-alignment losslessly (paper: >95%
 * with the 7-bit compensation) and the end-to-end classification
 * agreement between the CFP32 alignment-free datapath and plain FP32
 * (paper: no accuracy drop).
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hh"
#include "numeric/cfp32.hh"
#include "sim/rng.hh"
#include "xclass/metrics.hh"
#include "xclass/screening.hh"
#include "xclass/workload.hh"

using namespace ecssd;

namespace
{

void
printCfp32Accuracy()
{
    bench::banner("Section 4.2: CFP32 accuracy");

    // Lossless fraction over synthetic model weight vectors.
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 2048);
    spec.hiddenDim = 256;
    const xclass::SyntheticModel model(spec, 1);
    std::vector<numeric::Cfp32Vector> vectors;
    for (std::size_t r = 0; r < spec.categories; ++r)
        vectors.push_back(
            numeric::Cfp32Vector::preAlign(model.weights().row(r)));
    bench::row("lossless weight values",
               numeric::losslessFraction(vectors) * 100.0, "%",
               ">95%");

    // Classification agreement: CFP32 vs FP32 top-5 on real queries.
    const xclass::ApproximateClassifier classifier(
        model.weights(), spec, 2, &model.basis());
    sim::Rng rng(3);
    double agreement = 0.0;
    double approx_recall = 0.0;
    const int queries = 12;
    for (int q = 0; q < queries; ++q) {
        const std::vector<float> query = model.sampleQuery(rng);
        const auto fp32 = classifier.predict(
            query, 5, xclass::FilterMode::TopRatio,
            xclass::CandidateClassifier::Datapath::Fp32);
        const auto cfp32 = classifier.predict(
            query, 5, xclass::FilterMode::TopRatio,
            xclass::CandidateClassifier::Datapath::
                Cfp32AlignmentFree);
        agreement += xclass::recall(fp32.topCategories,
                                    cfp32.topCategories);
        const auto exact = classifier.exact(query, 5);
        approx_recall += xclass::recall(exact.topCategories,
                                        cfp32.topCategories);
    }
    bench::row("CFP32 vs FP32 top-5 agreement",
               agreement / queries * 100.0, "%", "100% (no drop)");
    bench::row("screened CFP32 recall@5 vs exact",
               approx_recall / queries * 100.0, "%",
               "no accuracy drop");

    // Host pre-alignment cost (paper: 0.005 ms on an RTX 3090 for a
    // 1x1024 vector; here: host CPU time of our implementation).
    std::vector<float> feature(1024);
    sim::Rng frng(4);
    for (float &v : feature)
        v = static_cast<float>(frng.gaussian());
    benchmark::DoNotOptimize(
        numeric::Cfp32Vector::preAlign(feature));
}

void
BM_PreAlign1024(benchmark::State &state)
{
    std::vector<float> feature(1024);
    sim::Rng rng(5);
    for (float &v : feature)
        v = static_cast<float>(rng.gaussian());
    for (auto _ : state)
        benchmark::DoNotOptimize(
            numeric::Cfp32Vector::preAlign(feature));
}
BENCHMARK(BM_PreAlign1024);

void
BM_ScreenedQuery(benchmark::State &state)
{
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 1024);
    spec.hiddenDim = 256;
    const xclass::SyntheticModel model(spec, 6);
    const xclass::ApproximateClassifier classifier(
        model.weights(), spec, 7, &model.basis());
    sim::Rng rng(8);
    const std::vector<float> query = model.sampleQuery(rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(classifier.predict(query, 5));
}
BENCHMARK(BM_ScreenedQuery)->Unit(benchmark::kMillisecond);

} // namespace

int
main(int argc, char **argv)
{
    printCfp32Accuracy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
