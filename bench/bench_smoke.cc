/**
 * @file
 * Smoke-benchmark harness: fast, deterministic runs whose results are
 * the checked-in perf-regression baselines.
 *
 *   bench_smoke [--out DIR]
 *
 * Writes two flat JSON documents into DIR (default "."):
 *
 *  - BENCH_e2e.json: per-benchmark end-to-end latency/utilization at
 *    a reduced scale (Fig 13's sweep shrunk to smoke size), an
 *    InferenceServer serving pass, a hot-row cache pass (hit/miss
 *    latency split plus a trend-only hit-rate), a hot-swap pass
 *    (serving p99 through a staged redeploy, swap outcome counters),
 *    and an open-loop overload pass (100k bursty arrivals against
 *    the admission/brownout stack: tail percentiles, goodput, shed
 *    split, ladder dwell);
 *  - BENCH_breakdown.json: the Fig 8 stepwise technique breakdown on
 *    one benchmark.
 *
 * Every value is *simulated* time or a deterministic event count, so
 * the output is bit-stable across hosts and CI runs; tools/
 * bench_compare.cpp diffs a fresh run against the checked-in copy
 * (10% latency / 1% counter tolerance, see src/sim/baseline.hh).
 * "trend" entries are uploaded for plotting but never gated.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "accel/candidate_source.hh"
#include "ecssd/multi_tenant.hh"
#include "ecssd/server.hh"
#include "ecssd/streaming_deploy.hh"
#include "ecssd/system.hh"
#include "sim/json.hh"
#include "sim/logging.hh"
#include "sim/rng.hh"

using namespace ecssd;

namespace
{

/** Category cap of the end-to-end smoke runs. */
constexpr std::uint64_t kE2eScale = 16384;
/** Category cap of the serving smoke run (in-memory weights). */
constexpr std::uint64_t kServingScale = 2048;

/** One flat baseline document: "latency" / "counters" sections plus
 *  an optional trend-only "trend" section (see sim/baseline.hh). */
struct BaselineDoc
{
    std::map<std::string, double> latency;
    std::map<std::string, double> counters;
    std::map<std::string, double> trend;

    void
    write(const std::string &path) const
    {
        std::ofstream os(path);
        if (!os)
            sim::fatal("cannot open '", path, "' for writing");
        sim::JsonWriter json(os);
        json.beginObject();
        json.key("latency");
        json.beginObject();
        for (const auto &[key, value] : latency) {
            json.key(key);
            json.value(value);
        }
        json.endObject();
        json.key("counters");
        json.beginObject();
        for (const auto &[key, value] : counters) {
            json.key(key);
            json.value(value);
        }
        json.endObject();
        if (!trend.empty()) {
            json.key("trend");
            json.beginObject();
            for (const auto &[key, value] : trend) {
                json.key(key);
                json.value(value);
            }
            json.endObject();
        }
        json.endObject();
        os << "\n";
        std::printf("wrote %s\n", path.c_str());
    }
};

void
benchEndToEnd(BaselineDoc &doc)
{
    for (const xclass::BenchmarkSpec &full :
         xclass::table3Benchmarks()) {
        const xclass::BenchmarkSpec spec =
            xclass::scaledDown(full, kE2eScale);
        EcssdSystem system(spec, EcssdOptions::full());
        const accel::RunResult result = system.runInference(2);

        const std::string name = full.name;
        doc.latency[name + ".mean_batch_ms"] = result.meanBatchMs();
        doc.latency[name + ".channel_utilization"] =
            result.channelUtilization;
        std::uint64_t candidate_rows = 0;
        std::uint64_t fp32_pages = 0;
        for (const accel::BatchTiming &batch : result.batches) {
            candidate_rows += batch.candidateRows;
            fp32_pages += batch.fp32PagesRead;
        }
        doc.counters[name + ".candidate_rows"] =
            static_cast<double>(candidate_rows);
        doc.counters[name + ".fp32_pages_read"] =
            static_cast<double>(fp32_pages);
    }
}

void
benchCache(BaselineDoc &doc)
{
    // The full design point plus an SSD-DRAM hot-row cache: the hit
    // and miss candidate-fetch times are deterministic simulated time
    // (gated), the hit-rate is a workload property (trend-only).
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), kE2eScale);
    EcssdOptions options = EcssdOptions::full();
    options.cache.capacityBytes = 8ULL << 20;
    EcssdSystem system(spec, options);
    const accel::RunResult result = system.runInference(2);

    sim::Tick hit_time = 0;
    sim::Tick miss_time = 0;
    std::uint64_t fp32_pages = 0;
    for (const accel::BatchTiming &batch : result.batches) {
        hit_time += batch.cacheHitTime;
        miss_time += batch.cacheMissTime;
        fp32_pages += batch.fp32PagesRead;
    }
    doc.latency["cache.hit_fetch_ms"] = sim::tickToMs(hit_time);
    doc.latency["cache.miss_fetch_ms"] = sim::tickToMs(miss_time);
    doc.counters["cache.hit_rows"] =
        static_cast<double>(result.cacheHitRows);
    doc.counters["cache.miss_rows"] =
        static_cast<double>(result.cacheMissRows);
    doc.counters["cache.fp32_pages_read"] =
        static_cast<double>(fp32_pages);
    doc.trend["cache.hit_rate"] = result.cacheHitRate();
}

void
benchServing(BaselineDoc &doc)
{
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), kServingScale);
    const EcssdOptions options = EcssdOptions::full();
    xclass::SyntheticModel model(spec, options.seed);
    InferenceServer server(model.weights(), spec, options);
    sim::Rng rng(options.seed);
    for (unsigned r = 0; r < 24; ++r)
        server.enqueue(model.sampleQuery(rng));
    server.processAll(5);

    doc.latency["serving.mean_ms"] = server.latencyMs().mean();
    doc.latency["serving.p50_ms"] =
        server.latencyPercentiles().p50();
    doc.latency["serving.p99_ms"] =
        server.latencyPercentiles().p99();
    doc.latency["serving.device_time_ms"] =
        sim::tickToMs(server.deviceTime());
    doc.counters["serving.ok_responses"] = static_cast<double>(
        server.serverStats().okResponses);
    doc.counters["serving.accepted_requests"] = static_cast<double>(
        server.serverStats().acceptedRequests);
}

void
benchRedeploy(BaselineDoc &doc)
{
    // Serving through a hot swap: half the load enqueues, a staged
    // redeploy to the same weights begins, and the rest serves
    // through the flip.  The swap must commit, shed nothing, and the
    // tail latency under the staging IO budget is gated — a budget
    // regression that stops yielding to foreground batches shows up
    // here as a p99 drift.
    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), kServingScale);
    const EcssdOptions options = EcssdOptions::full();
    xclass::SyntheticModel model(spec, options.seed);
    InferenceServer server(model.weights(), spec, options);
    sim::Rng rng(options.seed + 1);
    for (unsigned r = 0; r < 12; ++r)
        server.enqueue(model.sampleQuery(rng));
    if (server.beginRedeploy(model.weights(), spec) != Status::Ok)
        sim::fatal("smoke hot swap did not begin");
    for (unsigned r = 0; r < 12; ++r)
        server.enqueue(model.sampleQuery(rng));
    server.processAll(5);

    const RedeployStatus status = server.redeployStatus();
    doc.latency["redeploy.serving_p99_ms"] =
        server.latencyPercentiles().p99();
    doc.latency["redeploy.staging_ms"] =
        sim::tickToMs(status.stagingTime);
    doc.counters["redeploy.committed"] =
        status.phase == RedeployPhase::Committed ? 1.0 : 0.0;
    doc.counters["redeploy.rolled_back"] =
        status.phase == RedeployPhase::RolledBack ? 1.0 : 0.0;
    doc.counters["redeploy.staged_bytes"] =
        static_cast<double>(status.stagedBytes);
    doc.counters["redeploy.deploy_epoch"] =
        static_cast<double>(server.deployEpoch());
    doc.counters["redeploy.shed_requests"] = static_cast<double>(
        server.serverStats().shedRequests);
    doc.counters["redeploy.ok_responses"] = static_cast<double>(
        server.serverStats().okResponses);
}

void
benchOverload(BaselineDoc &doc)
{
    // Open-loop overload pass: a 100k-arrival bursty (MMPP-2) trace
    // at ~3x the device's service rate, served under the full
    // overload-control stack (queue-delay admission, class-aware
    // shedding, deadline-slack batching, brownout ladder).  Every
    // number is simulated time or a deterministic event count, so the
    // tail percentiles, goodput, shed split, and ladder dwell are all
    // gated: an admission or ladder regression shows up as a p999
    // blowup or a shed-mix shift.  The spec is tiny (256 categories)
    // so the 100k-request functional pass stays inside the smoke
    // budget.
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 256);
    spec.hiddenDim = 64;
    spec.batchSize = 8;
    const EcssdOptions options = EcssdOptions::full();
    xclass::SyntheticModel model(spec, options.seed);

    ServerConfig config;
    config.admissionTargetDelay = sim::microseconds(500.0);
    config.brownout.enterDelay = sim::microseconds(400.0);
    config.brownout.exitDelay = sim::microseconds(200.0);
    config.brownout.recoveryGuard = sim::microseconds(100.0);
    config.batchMaxWait = sim::microseconds(50.0);
    InferenceServer server(model.weights(), spec, options,
                           &model.basis(), config);

    std::vector<std::vector<float>> queries;
    sim::Rng qrng(options.seed);
    for (int q = 0; q < 32; ++q)
        queries.push_back(model.sampleQuery(qrng));

    sim::TrafficConfig traffic;
    traffic.process = sim::ArrivalProcess::BurstySpike;
    traffic.ratePerSecond = 60000.0;
    traffic.burstRateMultiplier = 6.0;
    traffic.goldFraction = 0.25;
    traffic.seed = 17;
    sim::TrafficEngine engine(traffic);
    const auto responses =
        server.runTraffic(engine, 100000, queries, 5);
    if (responses.size() != 100000)
        sim::fatal("overload smoke lost terminals");

    const ServerStats &stats = server.serverStats();
    doc.latency["overload.p99_ms"] =
        server.latencyPercentiles().p99();
    doc.latency["overload.p999_ms"] =
        server.latencyPercentiles().quantile(0.999);
    doc.latency["overload.device_time_ms"] =
        sim::tickToMs(server.deviceTime());
    doc.latency["overload.brownout_full_dwell_ms"] =
        sim::tickToMs(server.brownoutDwell(BrownoutLevel::Full));
    doc.latency["overload.brownout_degraded_dwell_ms"] =
        sim::tickToMs(
            server.brownoutDwell(BrownoutLevel::ReducedCandidates))
        + sim::tickToMs(
            server.brownoutDwell(BrownoutLevel::ScreenerOnly))
        + sim::tickToMs(server.brownoutDwell(BrownoutLevel::Shed));
    // Goodput: served (non-shed, non-dropped) answers per second of
    // simulated device time.
    doc.counters["overload.goodput_rps"] =
        static_cast<double>(stats.okResponses
                            + stats.degradedResponses)
        / sim::tickToSeconds(server.deviceTime());
    doc.counters["overload.shed_gold"] =
        static_cast<double>(stats.shedGold);
    doc.counters["overload.shed_best_effort"] =
        static_cast<double>(stats.shedBestEffort);
    doc.counters["overload.admission_sheds"] =
        static_cast<double>(stats.admissionSheds);
    doc.counters["overload.brownout_sheds"] =
        static_cast<double>(stats.brownoutSheds);
    doc.counters["overload.brownout_transitions"] =
        static_cast<double>(stats.brownoutTransitions);
    doc.counters["overload.served_full"] =
        static_cast<double>(stats.servedFull);
    doc.counters["overload.served_reduced_candidates"] =
        static_cast<double>(stats.servedReducedCandidates);
    doc.counters["overload.served_screener_only"] =
        static_cast<double>(stats.servedScreenerOnly);
    doc.counters["overload.queue_depth_hwm"] =
        static_cast<double>(stats.queueDepthHwm);
}

void
benchMultiTenant(BaselineDoc &doc)
{
    // Multi-tenant noisy-neighbor pass: tenant A serves a calm
    // stream under a p99 SLO while tenant B floods the shared
    // device far past capacity.  The gate is containment: B must
    // shed and brown out *its own* traffic, and A's p99 on the
    // shared device must stay within 15% of A's solo p99 — a
    // scheduler or quota regression that lets B's overload leak
    // into A's latency fails the smoke run outright.
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 1024);
    spec.hiddenDim = 128;
    spec.batchSize = 4;
    const EcssdOptions options = EcssdOptions::full();
    xclass::SyntheticModel model_a(spec, options.seed);
    xclass::SyntheticModel model_b(spec, options.seed + 1);

    TenantConfig tenant_a;
    tenant_a.name = "a";
    tenant_a.dramBytes = 64ULL << 20;
    tenant_a.cacheQuotaBytes = 4ULL << 20;
    tenant_a.p99TargetMs = 5.0;
    TenantConfig tenant_b = tenant_a;
    tenant_b.name = "b";
    tenant_b.p99TargetMs = 1.0;

    std::vector<std::vector<float>> queries;
    sim::Rng qrng(options.seed);
    for (int q = 0; q < 16; ++q)
        queries.push_back(model_a.sampleQuery(qrng));

    sim::TrafficConfig calm;
    calm.ratePerSecond = 2000.0;
    calm.seed = 21;
    const std::uint64_t calm_count = 400;
    sim::TrafficConfig flood;
    flood.ratePerSecond = 500000.0;
    flood.seed = 22;

    // Solo baseline: A alone on the device.
    double solo_p99 = 0.0;
    {
        MultiTenantServer device(options);
        const TenantHandle a =
            device.addTenant(tenant_a, model_a.weights(), spec,
                             ServerConfig{}, &model_a.basis());
        device.run({{a, calm, calm_count}}, queries, 5);
        solo_p99 = device.server(a)->latencyPercentiles().p99();
    }

    // Shared device: the same A stream next to B's flood.
    MultiTenantServer device(options);
    const TenantHandle a =
        device.addTenant(tenant_a, model_a.weights(), spec,
                         ServerConfig{}, &model_a.basis());
    const TenantHandle b =
        device.addTenant(tenant_b, model_b.weights(), spec,
                         ServerConfig{}, &model_b.basis());
    device.run({{a, calm, calm_count}, {b, flood, 4000}}, queries,
               5);

    const ServerStats &stats_a = device.server(a)->serverStats();
    const ServerStats &stats_b = device.server(b)->serverStats();
    const double shared_p99 =
        device.server(a)->latencyPercentiles().p99();
    if (stats_b.shedRequests == 0
        || stats_b.brownoutTransitions == 0)
        sim::fatal("multi-tenant smoke: the flooded tenant never "
                   "degraded itself");
    if (stats_a.shedRequests != 0)
        sim::fatal("multi-tenant smoke: the calm tenant shed under "
                   "its neighbour's flood");
    if (shared_p99 > solo_p99 * 1.15)
        sim::fatal("multi-tenant smoke: noisy neighbour leaked into "
                   "the calm tenant's p99 (solo ", solo_p99,
                   " ms, shared ", shared_p99, " ms)");

    doc.latency["tenant.a_solo_p99_ms"] = solo_p99;
    doc.latency["tenant.a_shared_p99_ms"] = shared_p99;
    doc.latency["tenant.b_shared_p99_ms"] =
        device.server(b)->latencyPercentiles().p99();
    doc.latency["tenant.device_time_ms"] =
        sim::tickToMs(device.deviceTime());
    doc.counters["tenant.count"] =
        static_cast<double>(device.registry().size());
    doc.counters["tenant.a_sheds"] =
        static_cast<double>(stats_a.shedRequests);
    doc.counters["tenant.b_sheds"] =
        static_cast<double>(stats_b.shedRequests);
    doc.counters["tenant.b_brownout_transitions"] =
        static_cast<double>(stats_b.brownoutTransitions);
    doc.counters["tenant.b_admission_sheds"] =
        static_cast<double>(stats_b.admissionSheds);
}

void
benchStreamingDeploy(BaselineDoc &doc)
{
    // Out-of-core streaming deploy at a scale whose hotness vector
    // would not fit the budget: 200k synthetic rows under a 2 MiB
    // transient-host ceiling, forcing external sorting through the
    // simulated flash.  Deploy time is simulated (gated as latency);
    // the peak and spill volume are deterministic accounting.
    const SyntheticRowSource source(200000, 32, 1);
    const ssdsim::SsdConfig ssd;
    StreamingDeployConfig config;
    config.hostBudgetBytes = 2ULL << 20;
    config.rowBytes = 32 * sizeof(float);
    const StreamingDeployResult result = streamingWeightDeploy(
        source, 16, ssd.channels, ssd, config);
    if (result.hostPeakBytes > config.hostBudgetBytes)
        sim::fatal("streaming deploy smoke exceeded its budget");
    if (result.runsSpilled < 2)
        sim::fatal("streaming deploy smoke did not spill");
    doc.latency["deploy.streaming_ms"] =
        sim::tickToMs(result.deployTime);
    doc.counters["deploy.host_peak_bytes"] =
        static_cast<double>(result.hostPeakBytes);
    doc.counters["deploy.runs_spilled"] =
        static_cast<double>(result.runsSpilled);
    doc.counters["deploy.spill_pages_written"] =
        static_cast<double>(result.spillPagesWritten);
    doc.counters["deploy.rows_placed"] =
        static_cast<double>(result.rowsPlaced);
}

/** Replays the same candidate rows every batch (drifted hot set). */
class FixedSource : public accel::CandidateSource
{
  public:
    FixedSource(std::uint64_t rows, std::vector<std::uint64_t> batch)
        : rows_(rows), batch_(std::move(batch))
    {
    }

    std::uint64_t rows() const override { return rows_; }
    std::vector<std::uint64_t> nextBatch() override
    {
        return batch_;
    }

  private:
    std::uint64_t rows_;
    std::vector<std::uint64_t> batch_;
};

void
benchRelayout(BaselineDoc &doc)
{
    // Induced hot-set drift followed by one background re-layout
    // pass.  Traffic concentrated on one channel's page groups
    // opens a channel-utilization gap; the migration pass must
    // recover at least 80% of it (the acceptance bar, enforced here
    // — a regression fails the bench run itself, not just the
    // baseline diff).
    xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("GNMT-E32K"), 4096);
    spec.hiddenDim = 64;
    EcssdOptions options = EcssdOptions::full();
    options.cache.capacityBytes = 8ULL << 20;
    options.relayout.enabled = true;
    options.relayout.divergenceThreshold = 0.2;
    options.relayout.pageBudget = 4096;
    EcssdSystem system(spec, options);

    const std::uint64_t rows_per_page = std::max<std::uint64_t>(
        1, options.ssd.pageBytes / spec.rowBytes());
    std::vector<std::uint64_t> batch;
    for (std::uint64_t g = 0;
         g < system.strategy().rows() && batch.size() < 32; ++g)
        if (system.strategy().channelOf(g) == 0)
            batch.push_back(g * rows_per_page);

    FixedSource drift(spec.categories, batch);
    const accel::RunResult drifted =
        system.runInferenceWith(drift, 4);
    const sim::Tick end = system.relayoutStep(drifted.totalTime);
    const RelayoutStats &stats = system.relayoutStats();

    const double before = 1.0 - stats.lastDivergence;
    const double recovered_gap =
        1.0 - before > 0.0
        ? (stats.recoveredBalance - before) / (1.0 - before)
        : 1.0;
    if (recovered_gap < 0.8)
        sim::fatal("re-layout smoke recovered only ",
                   recovered_gap * 100.0,
                   "% of the drifted balance gap");

    doc.latency["relayout.pass_ms"] =
        sim::tickToMs(end - drifted.totalTime);
    doc.counters["relayout.recovered_balance"] =
        stats.recoveredBalance;
    doc.counters["relayout.rows_migrated"] =
        static_cast<double>(stats.rowsMigrated);
    doc.counters["relayout.pages_moved"] =
        static_cast<double>(stats.pagesMoved);
    doc.trend["relayout.drift_divergence"] = stats.lastDivergence;
}

void
benchBreakdown(BaselineDoc &doc)
{
    // The Fig 8 ladder on one benchmark at smoke scale.
    EcssdOptions step0 = EcssdOptions::startingBaseline();
    EcssdOptions step1 = step0;
    step1.layoutKind = layout::LayoutKind::Uniform;
    EcssdOptions step2 = step1;
    step2.fpKind = circuit::FpMacKind::AlignmentFree;
    EcssdOptions step3 = step2;
    step3.int4Placement = accel::Int4Placement::Dram;
    EcssdOptions step4 = step3;
    step4.layoutKind = layout::LayoutKind::LearningAdaptive;
    const EcssdOptions steps[] = {step0, step1, step2, step3, step4};

    const xclass::BenchmarkSpec spec = xclass::scaledDown(
        xclass::benchmarkByName("XMLCNN-S10M"), kE2eScale);
    for (std::size_t s = 0; s < 5; ++s) {
        EcssdSystem system(spec, steps[s]);
        const accel::RunResult result = system.runInference(2);
        char prefix[16];
        std::snprintf(prefix, sizeof(prefix), "step%zu", s);
        doc.latency[std::string(prefix) + ".mean_batch_ms"] =
            result.meanBatchMs();
        doc.latency[std::string(prefix) + ".channel_utilization"] =
            result.channelUtilization;
        std::uint64_t fp32_pages = 0;
        std::uint64_t int4_pages = 0;
        for (const accel::BatchTiming &batch : result.batches) {
            fp32_pages += batch.fp32PagesRead;
            int4_pages += batch.int4PagesRead;
        }
        doc.counters[std::string(prefix) + ".fp32_pages_read"] =
            static_cast<double>(fp32_pages);
        doc.counters[std::string(prefix) + ".int4_pages_read"] =
            static_cast<double>(int4_pages);
    }
}

} // namespace

int
main(int argc, char **argv)
{
    std::string out_dir = ".";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
            out_dir = argv[++i];
        } else {
            std::fprintf(stderr, "usage: %s [--out DIR]\n", argv[0]);
            return 2;
        }
    }

    BaselineDoc e2e;
    benchEndToEnd(e2e);
    benchCache(e2e);
    benchServing(e2e);
    benchRedeploy(e2e);
    benchOverload(e2e);
    benchMultiTenant(e2e);
    benchStreamingDeploy(e2e);
    benchRelayout(e2e);
    e2e.write(out_dir + "/BENCH_e2e.json");

    BaselineDoc breakdown;
    benchBreakdown(breakdown);
    breakdown.write(out_dir + "/BENCH_breakdown.json");
    return 0;
}
