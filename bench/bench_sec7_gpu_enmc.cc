/**
 * @file
 * Reproduces the Section 7.2/7.3 efficiency comparisons: ECSSD vs a
 * multi-GPU deployment and vs the near-DRAM ENMC system, in
 * GFLOPS/W and GFLOPS/dollar.
 */

#include <benchmark/benchmark.h>

#include <cmath>

#include "baselines/enmc.hh"
#include "bench_util.hh"
#include "circuit/accelerator_model.hh"
#include "xclass/workload.hh"

using namespace ecssd;
using namespace ecssd::circuit;

namespace
{

/** Cost/power constants from the paper's citations. */
struct EfficiencyConstants
{
    // ECSSD: accelerator power plus the host-side share; the paper
    // reports 4.55 GFLOPS/W and 0.018 GFLOPS/dollar for the whole
    // 50-GFLOPS device.
    double ecssdGflops = 51.2;
    double ecssdTotalPowerW = 51.2 / 4.55;
    double ecssdCostDollar = 51.2 / 0.018;

    // RTX 3090: 350 W TDP, 24 GB memory.
    double gpuPowerW = 350.0;
    double gpuMemoryGb = 24.0;

    // ENMC: 512 GB near-DRAM system, 800 GFLOPS peak.
    double enmcGflops = 800.0;
    double enmcGflopsPerW = 3.805;
    double enmcGflopsPerDollar = 0.002;
};

void
printSec7()
{
    bench::banner("Section 7.2: comparison with GPU");
    const EfficiencyConstants k;
    const AcceleratorEstimate accel =
        estimateAccelerator(AcceleratorConfig{});

    bench::row("accelerator power", accel.totalPowerMw, "mW",
               "52.93");
    bench::row("one RTX 3090 vs ECSSD accelerator power",
               k.gpuPowerW / (accel.totalPowerMw * 1e-3
                              + k.ecssdTotalPowerW),
               "x", "32");

    // 100M categories at D=1024: 400 GB of FP32 weights need
    // ceil(400/24) = 17..18 GPUs to stay memory-resident.
    const xclass::BenchmarkSpec spec =
        xclass::benchmarkByName("XMLCNN-S100M");
    const double weights_gb =
        static_cast<double>(spec.fp32WeightBytes()) / 1e9;
    const unsigned gpus = static_cast<unsigned>(
        std::ceil(weights_gb / k.gpuMemoryGb));
    bench::row("GPUs to hold the S100M layer", gpus, "GPUs", "18");
    bench::row("multi-GPU vs ECSSD power",
               gpus * k.gpuPowerW
                   / (accel.totalPowerMw * 1e-3
                      + k.ecssdTotalPowerW),
               "x", ">=573");

    bench::banner("Section 7.3: comparison with ENMC");
    const double ecssd_gflops_per_w =
        k.ecssdGflops / k.ecssdTotalPowerW;
    const double ecssd_gflops_per_dollar =
        k.ecssdGflops / k.ecssdCostDollar;
    bench::row("ECSSD energy efficiency", ecssd_gflops_per_w,
               "GFLOPS/W", "4.55");
    bench::row("ENMC energy efficiency", k.enmcGflopsPerW,
               "GFLOPS/W", "3.805");
    bench::row("ECSSD energy-efficiency gain",
               ecssd_gflops_per_w / k.enmcGflopsPerW, "x", "1.19");
    bench::row("ECSSD cost efficiency", ecssd_gflops_per_dollar,
               "GFLOPS/$", "0.018");
    bench::row("ENMC cost efficiency", k.enmcGflopsPerDollar,
               "GFLOPS/$", "0.002");
    bench::row("ECSSD cost-efficiency gain",
               ecssd_gflops_per_dollar / k.enmcGflopsPerDollar, "x",
               "8.87");
    bench::row("ENMC peak over one ECSSD",
               k.enmcGflops / k.ecssdGflops, "x", "~16");

    // Simulated ENMC (not just the analytic constants): latency and
    // the capacity cliff past 512 GB.
    const baselines::EnmcResult fits = baselines::simulateEnmc(
        xclass::benchmarkByName("XMLCNN-S100M"), 1);
    bench::row("ENMC simulated S100M batch", fits.batchMs, "ms");
    bench::row("ENMC simulated GFLOPS/W", fits.gflopsPerWatt,
               "GFLOPS/W", "3.805");
    xclass::BenchmarkSpec s200m =
        xclass::benchmarkByName("XMLCNN-S100M");
    s200m.categories = 200000000;
    const baselines::EnmcResult spills =
        baselines::simulateEnmc(s200m, 1);
    bench::row("ENMC S200M fits DRAM", spills.fitsInDram ? 1 : 0,
               "bool", "no (degrades)");
    bench::row("ENMC S200M batch (storage spill)", spills.batchMs,
               "ms");
}

void
BM_EfficiencyModel(benchmark::State &state)
{
    for (auto _ : state) {
        const AcceleratorEstimate est =
            estimateAccelerator(AcceleratorConfig{});
        benchmark::DoNotOptimize(est.totalPowerMw);
    }
}
BENCHMARK(BM_EfficiencyModel);

} // namespace

int
main(int argc, char **argv)
{
    printSec7();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
