/**
 * @file
 * Reproduces the Section 4.2 throughput numbers for LSTM-W33K: the
 * floating-point rate needed to consume the flash-channel stream
 * without delay (34.8 GFLOPS in the paper), what the naive circuit
 * achieves in the same area (29.2), and what the alignment-free
 * circuit achieves (50).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "circuit/mac_circuit.hh"
#include "ssdsim/config.hh"
#include "xclass/workload.hh"

using namespace ecssd;
using namespace ecssd::circuit;

namespace
{

void
printSec42()
{
    bench::banner("Section 4.2: compute vs channel bandwidth "
                  "(LSTM-W33K)");
    const xclass::BenchmarkSpec spec =
        xclass::benchmarkByName("LSTM-W33K");
    const ssdsim::SsdConfig ssd;

    // GFLOPS needed: the FP32 stage performs 2*batch FLOPs per 4
    // weight bytes, and the 8 channels deliver 8 GB/s.
    const double intensity = 2.0 * spec.batchSize / 4.0;
    const double needed =
        ssd.internalBandwidthGbps() * intensity;
    bench::row("needed to match channel stream", needed, "GFLOPS",
               "34.8");

    const double area =
        macArray(alignmentFreeFp32Mac(), 64).areaMm2();
    const double naive =
        peakGflops(macsInArea(naiveFp32Mac(), area));
    const double skh =
        peakGflops(macsInArea(skHynixFp32Mac(), area));
    const double af = peakGflops(64);
    bench::row("naive FP32 at iso-area", naive, "GFLOPS", "29.2");
    bench::row("SK Hynix FP32 at iso-area", skh, "GFLOPS");
    bench::row("alignment-free FP32", af, "GFLOPS", "50");
    bench::row("naive covers the stream", naive >= needed ? 1 : 0,
               "bool", "no");
    bench::row("alignment-free covers the stream",
               af >= needed ? 1 : 0, "bool", "yes");
}

void
BM_MacsInArea(benchmark::State &state)
{
    const double area =
        macArray(alignmentFreeFp32Mac(), 64).areaMm2();
    for (auto _ : state)
        benchmark::DoNotOptimize(
            macsInArea(naiveFp32Mac(), area));
}
BENCHMARK(BM_MacsInArea);

} // namespace

int
main(int argc, char **argv)
{
    printSec42();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
