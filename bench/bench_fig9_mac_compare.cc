/**
 * @file
 * Reproduces Fig 9: normalized area and power of the naive, SK
 * Hynix, and alignment-free FP MAC circuits at iso-throughput, plus
 * live micro-benchmarks of the three functional datapaths.
 */

#include <benchmark/benchmark.h>

#include <vector>

#include "bench_util.hh"
#include "circuit/mac_circuit.hh"
#include "numeric/mac.hh"
#include "sim/rng.hh"

using namespace ecssd;
using namespace ecssd::circuit;

namespace
{

void
printFig9()
{
    bench::banner("Fig 9: FP MAC circuit comparison "
                  "(normalized to alignment-free)");
    const CircuitBlock naive = naiveFp32Mac();
    const CircuitBlock skh = skHynixFp32Mac();
    const CircuitBlock af = alignmentFreeFp32Mac();

    bench::row("naive area ratio", naive.areaUm2() / af.areaUm2(),
               "x", "1.73");
    bench::row("skhynix area ratio", skh.areaUm2() / af.areaUm2(),
               "x", "1.38");
    bench::row("alignment-free area ratio", 1.0, "x", "1.0");
    bench::row("naive power ratio", naive.powerUw() / af.powerUw(),
               "x", "1.53");
    bench::row("skhynix power ratio", skh.powerUw() / af.powerUw(),
               "x", "1.19");
    bench::row("alignment-free power ratio", 1.0, "x", "1.0");
    bench::row("alignment share of naive MAC",
               naive.areaFraction({"exponent_comparator_8b",
                                   "mantissa_shifter_24b"})
                   * 100.0,
               "%", "37.7%");
}

std::pair<std::vector<float>, std::vector<float>>
vectors(std::size_t n)
{
    sim::Rng rng(42);
    std::vector<float> a(n), b(n);
    for (std::size_t i = 0; i < n; ++i) {
        a[i] = static_cast<float>(rng.gaussian(0.0, 0.05));
        b[i] = static_cast<float>(rng.gaussian(0.0, 0.05));
    }
    return {a, b};
}

void
BM_NaiveFpDot(benchmark::State &state)
{
    const auto [a, b] =
        vectors(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(numeric::NaiveFpMac::dot(a, b));
}
BENCHMARK(BM_NaiveFpDot)->Arg(256)->Arg(1024);

void
BM_SkHynixDot(benchmark::State &state)
{
    const auto [a, b] =
        vectors(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(numeric::SkHynixMac::dot(a, b));
}
BENCHMARK(BM_SkHynixDot)->Arg(256)->Arg(1024);

void
BM_AlignmentFreeDot(benchmark::State &state)
{
    const auto [a, b] =
        vectors(static_cast<std::size_t>(state.range(0)));
    const numeric::Cfp32Vector ca = numeric::Cfp32Vector::preAlign(a);
    const numeric::Cfp32Vector cb = numeric::Cfp32Vector::preAlign(b);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            numeric::AlignmentFreeMac::dot(ca, cb));
}
BENCHMARK(BM_AlignmentFreeDot)->Arg(256)->Arg(1024);

void
BM_PreAlign(benchmark::State &state)
{
    const auto [a, b] =
        vectors(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state)
        benchmark::DoNotOptimize(numeric::Cfp32Vector::preAlign(a));
}
BENCHMARK(BM_PreAlign)->Arg(1024);

} // namespace

int
main(int argc, char **argv)
{
    printFig9();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
