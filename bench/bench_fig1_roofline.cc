/**
 * @file
 * Reproduces Fig 1: roofline positions of the in-storage-computing
 * baseline (point A, compute-bound), the alignment-free design
 * (point B, memory-bound at partial utilization), and the full
 * ECSSD with data-layout optimizations (point C).
 */

#include <benchmark/benchmark.h>

#include "bench_util.hh"
#include "circuit/accelerator_model.hh"
#include "circuit/mac_circuit.hh"
#include "ecssd/system.hh"

using namespace ecssd;
using namespace ecssd::circuit;

namespace
{

void
printFig1()
{
    bench::banner("Fig 1: roofline analysis");

    const ssdsim::SsdConfig ssd;
    const double bandwidth = ssd.internalBandwidthGbps();
    const xclass::BenchmarkSpec spec =
        xclass::benchmarkByName("LSTM-W33K");
    // FP32 stage intensity: each candidate weight byte is used
    // 2*batch/4 times.
    const double intensity = 2.0 * spec.batchSize / 4.0;

    const double naive_gflops = peakGflops(
        macsInArea(naiveFp32Mac(),
                   macArray(alignmentFreeFp32Mac(), 64).areaMm2()));
    const double af_gflops = peakGflops(64);

    const RooflinePoint a =
        roofline(naive_gflops, bandwidth, intensity);
    bench::row("A: naive ISC baseline, attainable",
               a.attainableGflops, "GFLOPS");
    bench::row("A: compute-bound", a.computeBound ? 1 : 0, "bool",
               "yes");

    const RooflinePoint b = roofline(af_gflops, bandwidth, intensity);
    bench::row("B: alignment-free MAC, attainable",
               b.attainableGflops, "GFLOPS");
    bench::row("B: compute-bound", b.computeBound ? 1 : 0, "bool",
               "no");

    // Point C: measured bandwidth utilization of the full system
    // lifts the attainable performance toward the memory roof.
    EcssdSystem baseline(
        xclass::scaledDown(xclass::benchmarkByName("XMLCNN-S10M"),
                           65536),
        [] {
            EcssdOptions o = EcssdOptions::full();
            o.layoutKind = layout::LayoutKind::Uniform;
            o.int4Placement = accel::Int4Placement::Flash;
            return o;
        }());
    EcssdSystem full(
        xclass::scaledDown(xclass::benchmarkByName("XMLCNN-S10M"),
                           65536),
        EcssdOptions::full());
    const double util_b =
        baseline.runInference(2).channelUtilization;
    const double util_c = full.runInference(2).channelUtilization;
    bench::row("B: achieved with homogeneous/uniform layout",
               util_b * b.attainableGflops, "GFLOPS");
    bench::row("C: achieved with co-designed data layout",
               util_c * b.attainableGflops, "GFLOPS");
    bench::row("C over B bandwidth gain", util_c / util_b, "x");
}

void
BM_RooflineQuery(benchmark::State &state)
{
    for (auto _ : state) {
        const RooflinePoint p = roofline(51.2, 8.0, 4.0);
        benchmark::DoNotOptimize(p.attainableGflops);
    }
}
BENCHMARK(BM_RooflineQuery);

} // namespace

int
main(int argc, char **argv)
{
    printFig1();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
