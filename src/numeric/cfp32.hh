/**
 * @file
 * The Compensation-FP32 (CFP32) vector format.
 *
 * ECSSD pre-aligns every floating-point vector on the host: all
 * elements are right-shifted so they share the vector-wise maximum
 * exponent, and the 8 bits that used to hold the per-element exponent
 * are repurposed as compensation bits that keep the hidden one plus up
 * to seven of the least-significant mantissa bits that the shift would
 * otherwise drop.  The in-SSD MAC can then operate on plain integers.
 *
 * Layout of one CFP32 element (32 bits):
 *
 *   [31]    sign
 *   [30:0]  31-bit aligned significand.  For a shift distance d the
 *           original 24-bit significand (hidden one included) sits at
 *           bits [30-d : 7-d]; shifts up to 7 are lossless.
 *
 * The shared exponent is stored once per vector.
 */

#ifndef ECSSD_NUMERIC_CFP32_HH
#define ECSSD_NUMERIC_CFP32_HH

#include <cstdint>
#include <span>
#include <vector>

#include "numeric/fp32.hh"
#include "numeric/kernels.hh"

namespace ecssd
{
namespace numeric
{

/** Number of compensation bits gained by repurposing the exponent. */
constexpr int cfp32CompensationBits = 7;

/** Width of the aligned significand. */
constexpr int cfp32SignificandBits = 31;

/** One pre-aligned element: sign and 31-bit aligned significand. */
struct Cfp32Element
{
    std::uint32_t sign;
    std::uint32_t significand;
};

/**
 * A pre-aligned vector: a shared biased exponent plus per-element
 * sign/significand pairs.
 */
class Cfp32Vector
{
  public:
    Cfp32Vector() = default;

    /** Shared biased exponent (the vector-wise maximum). */
    std::uint32_t sharedExponent() const { return sharedExponent_; }

    std::size_t size() const { return elements_.size(); }
    bool empty() const { return elements_.empty(); }

    const Cfp32Element &operator[](std::size_t i) const
    {
        return elements_[i];
    }

    const std::vector<Cfp32Element> &elements() const
    {
        return elements_;
    }

    /**
     * Number of elements whose alignment shift dropped nonzero bits
     * (i.e., elements that are not exactly representable in CFP32).
     */
    std::uint64_t lossyElements() const { return lossyElements_; }

    /** Decode element @p i back to the nearest float. */
    float toFloat(std::size_t i) const;

    /** Decode the whole vector. */
    std::vector<float> toFloats() const;

    /** Storage footprint in bytes (elements + one shared exponent). */
    std::uint64_t
    storageBytes() const
    {
        return elements_.size() * sizeof(std::uint32_t) + 1;
    }

    /**
     * Pre-align @p values into CFP32 (the host-side Pre_align() step),
     * through the runtime-dispatched kernels at activeIsa().
     *
     * NaN/Inf inputs are rejected with sim::fatal, matching the API
     * contract that only finite activations/weights reach the device.
     */
    static Cfp32Vector preAlign(std::span<const float> values);

    /** ISA-pinned overload (differential tests). */
    static Cfp32Vector preAlign(std::span<const float> values,
                                IsaLevel level);

  private:
    std::uint32_t sharedExponent_ = 0;
    std::vector<Cfp32Element> elements_;
    std::uint64_t lossyElements_ = 0;
};

/**
 * Fraction of elements across @p vectors that survive pre-alignment
 * with no bit loss (the paper reports > 95% on real models).
 */
double losslessFraction(std::span<const Cfp32Vector> vectors);

} // namespace numeric
} // namespace ecssd

#endif // ECSSD_NUMERIC_CFP32_HH
