/**
 * @file
 * Minimal row-major dense matrix used throughout the workload and
 * algorithm code.  Deliberately simple: the library's heavy lifting
 * is in the datapath/simulator models, not in BLAS.
 */

#ifndef ECSSD_NUMERIC_MATRIX_HH
#define ECSSD_NUMERIC_MATRIX_HH

#include <cstdint>
#include <span>
#include <vector>

#include "sim/logging.hh"

namespace ecssd
{
namespace numeric
{

/** Dense row-major float matrix. */
class FloatMatrix
{
  public:
    FloatMatrix() = default;

    /** Allocate a rows x cols matrix zero-initialized. */
    FloatMatrix(std::size_t rows, std::size_t cols)
        : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
    {}

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    float &
    at(std::size_t r, std::size_t c)
    {
        ECSSD_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    float
    at(std::size_t r, std::size_t c) const
    {
        ECSSD_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
        return data_[r * cols_ + c];
    }

    /** Mutable view of row @p r. */
    std::span<float>
    row(std::size_t r)
    {
        ECSSD_ASSERT(r < rows_, "matrix row out of range");
        return std::span<float>(data_.data() + r * cols_, cols_);
    }

    /** Read-only view of row @p r. */
    std::span<const float>
    row(std::size_t r) const
    {
        ECSSD_ASSERT(r < rows_, "matrix row out of range");
        return std::span<const float>(data_.data() + r * cols_, cols_);
    }

    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /** Total size in bytes when stored as FP32. */
    std::uint64_t
    fp32Bytes() const
    {
        return static_cast<std::uint64_t>(rows_) * cols_
            * sizeof(float);
    }

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

} // namespace numeric
} // namespace ecssd

#endif // ECSSD_NUMERIC_MATRIX_HH
