/**
 * @file
 * Approximate projection from the full hidden dimension D to the
 * shrunk screener dimension K (Section 2.1).
 *
 * The paper learns the projection offline with PyTorch; here we use a
 * seeded random Gaussian (Johnson-Lindenstrauss) projection, which
 * preserves inner products in expectation and therefore exercises the
 * same screening behaviour: rows with large true scores also get
 * large projected scores with high probability.
 */

#ifndef ECSSD_NUMERIC_PROJECTION_HH
#define ECSSD_NUMERIC_PROJECTION_HH

#include <cstdint>
#include <span>
#include <vector>

#include "numeric/matrix.hh"
#include "sim/rng.hh"

namespace ecssd
{
namespace sim
{
class ThreadPool;
} // namespace sim
} // namespace ecssd

namespace ecssd
{
namespace numeric
{

/**
 * A D -> K linear projection shared by weights and features so that
 * projected inner products approximate original inner products.
 */
class Projector
{
  public:
    /**
     * Build a projection matrix of shape K x D with entries
     * N(0, 1/K) so that E[<Px, Pw>] = <x, w>.
     */
    Projector(std::size_t full_dim, std::size_t shrunk_dim,
              std::uint64_t seed);

    /**
     * Wrap a pre-trained projection matrix (K x D).  This is how a
     * learned projection (the paper's setting) plugs in: when the
     * rows are an orthonormal basis of the weight manifold, the
     * projected inner products match the full-precision ones almost
     * exactly.
     */
    explicit Projector(FloatMatrix projection);

    std::size_t fullDim() const { return fullDim_; }
    std::size_t shrunkDim() const { return shrunkDim_; }

    /** Project one D-length vector down to K values. */
    std::vector<float> project(std::span<const float> vec) const;

    /** Project into an existing buffer (resized to K), reusing its
     *  storage across queries. */
    void projectInto(std::span<const float> vec,
                     std::vector<float> &out) const;

    /**
     * Project every row of @p weights (L x D) to an L x K matrix.
     * With a pool, rows project in parallel (each output row is an
     * independent slot: bit-identical for any thread count).
     */
    FloatMatrix projectRows(const FloatMatrix &weights,
                            sim::ThreadPool *pool = nullptr) const;

  private:
    void buildTransposed();

    std::size_t fullDim_;
    std::size_t shrunkDim_;
    FloatMatrix projection_; // K x D
    /**
     * The same basis transposed (D x K, row-major): the SIMD GEMV
     * runs lanes across output rows k, so it wants the k values of
     * one input dimension contiguous.  Built eagerly — projectInto()
     * is called from pool workers, and a lazy build would race.
     */
    std::vector<float> basisT_;
};

} // namespace numeric
} // namespace ecssd

#endif // ECSSD_NUMERIC_PROJECTION_HH
