/**
 * @file
 * Deterministic kernel autotuner for the INT4 screener.
 *
 * At deploy time the screener asks for a KernelPlan: which ISA level
 * to run, how many rows one parallel chunk should cover (the L2
 * tiling of the packed matrix), and how many queries the batch
 * kernel blocks together (the register tiling).
 *
 * Selection is a pure function of (matrix shape, ISA level): the
 * candidate chunk sizes ARE benchmarked, but only to report ns/row
 * in the plan and the metrics dump — wall-clock never feeds back
 * into the choice, so the same shape always yields the same plan and
 * golden runs stay reproducible on any machine (see
 * docs/MODELING.md §14).
 */

#ifndef ECSSD_NUMERIC_AUTOTUNE_HH
#define ECSSD_NUMERIC_AUTOTUNE_HH

#include <cstdint>
#include <vector>

#include "numeric/kernels.hh"

namespace ecssd
{
namespace numeric
{

class Int4Matrix;

/** One benchmarked row-chunk candidate (observability only). */
struct KernelCandidate
{
    std::size_t rowChunk = 0;
    /** Measured single-thread ns per row, 0 when not measured. */
    double nsPerRow = 0.0;
    bool selected = false;
};

/** The screener's tuned kernel configuration. */
struct KernelPlan
{
    IsaLevel isa = IsaLevel::Scalar;
    /** Matrix shape the plan was tuned for. */
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t bytesPerRow = 0;
    /** Rows per parallel chunk (also the single-query row tile). */
    std::size_t rowChunk = 0;
    /** Queries the batch kernel blocks per decoded row. */
    std::size_t queryTile = 0;
    /** Measured ns/row of the selected chunk (0 if unmeasured). */
    double nsPerRow = 0.0;
    /** True when the candidate timings below were taken. */
    bool measured = false;
    std::vector<KernelCandidate> candidates;
};

/** Candidate row-chunk sizes for @p bytes_per_row (deterministic). */
std::vector<std::size_t>
rowChunkCandidates(std::size_t bytes_per_row);

/**
 * Closed-form batch query tile for a (rows, bytes_per_row) screener
 * shape at @p isa — a pure function of (shape, ISA) like the rest of
 * the plan (docs/MODELING.md §14).  Power of two in [1, 16]: the
 * narrower of the level's accumulator-register budget and the number
 * of widened query features that fit the per-tile L1 share.
 */
std::size_t batchQueryTile(std::size_t rows,
                           std::size_t bytes_per_row, IsaLevel isa);

/**
 * Tune the screener kernels for @p matrix at @p isa.  With
 * @p measure, each candidate chunk is timed over a bounded row
 * sample (recorded in the plan; never used for selection).
 */
KernelPlan autotuneScreenerKernels(const Int4Matrix &matrix,
                                   IsaLevel isa, bool measure);

} // namespace numeric
} // namespace ecssd

#endif // ECSSD_NUMERIC_AUTOTUNE_HH
