/**
 * @file
 * Functional models of the three floating-point MAC datapaths the
 * paper compares (Section 4.2, Fig 5, Fig 9):
 *
 *  - NaiveFpMac: a conventional FP32 multiply + adder-tree pipeline in
 *    which every addition performs exponent comparison, mantissa
 *    shifting, and normalization.
 *  - SkHynixMac: the post-multiplication pre-alignment design of the
 *    GDDR6-AiM ISSCC'22 paper; products are aligned once to the
 *    maximum product exponent before an integer accumulation tree.
 *  - AlignmentFreeMac: ECSSD's datapath, which consumes host
 *    pre-aligned CFP32 vectors and runs a pure integer multiply +
 *    accumulate with one final normalization.
 *
 * Each datapath is bit-faithful about where rounding/truncation occurs
 * and records micro-operation counts that the circuit model converts
 * into area/energy.
 */

#ifndef ECSSD_NUMERIC_MAC_HH
#define ECSSD_NUMERIC_MAC_HH

#include <cstdint>
#include <span>

#include "numeric/cfp32.hh"

namespace ecssd
{
namespace numeric
{

/** Micro-operation counts of one dot-product evaluation. */
struct MacOpCounts
{
    std::uint64_t mantissaMultiplies = 0;
    std::uint64_t exponentAdds = 0;
    std::uint64_t exponentCompares = 0;
    std::uint64_t mantissaShifts = 0;
    std::uint64_t mantissaAdds = 0;
    std::uint64_t normalizations = 0;

    MacOpCounts &operator+=(const MacOpCounts &other);

    /** Count of alignment-related micro-ops (compares + shifts). */
    std::uint64_t
    alignmentOps() const
    {
        return exponentCompares + mantissaShifts;
    }
};

/** Result of a dot-product with its operation profile. */
struct MacResult
{
    double value = 0.0;
    MacOpCounts ops;
};

/**
 * Conventional FP32 MAC: per-element multiply in binary32 followed by
 * a binary32 pairwise adder tree.  Every tree add aligns and
 * normalizes, which is where the area goes.
 */
class NaiveFpMac
{
  public:
    /** Dot product of @p a and @p b (must be the same length). */
    static MacResult dot(std::span<const float> a,
                         std::span<const float> b);
};

/**
 * SK Hynix AiM-style MAC: FP32 multiplies, then a single alignment of
 * all products to the running maximum exponent, then an integer
 * accumulation tree and one final normalization.
 */
class SkHynixMac
{
  public:
    static MacResult dot(std::span<const float> a,
                         std::span<const float> b);
};

/**
 * ECSSD's alignment-free MAC over pre-aligned CFP32 vectors.  The
 * datapath is a 31x31-bit integer multiplier feeding a wide two's
 * complement accumulator; the only floating-point work is one final
 * scale by the two shared exponents.
 */
class AlignmentFreeMac
{
  public:
    /**
     * Dot product of two CFP32 vectors.
     *
     * @pre a.size() == b.size().
     */
    static MacResult dot(const Cfp32Vector &a, const Cfp32Vector &b);
};

/** Exact (double-precision) reference for accuracy comparisons. */
double referenceDot(std::span<const float> a, std::span<const float> b);

} // namespace numeric
} // namespace ecssd

#endif // ECSSD_NUMERIC_MAC_HH
