#include "int4.hh"

#include <algorithm>
#include <cmath>

namespace ecssd
{
namespace numeric
{

namespace
{

/** Quantize one value given a precomputed scale. */
int
quantizeValue(float v, float scale)
{
    if (scale == 0.0f)
        return 0;
    const int q = static_cast<int>(std::lround(v / scale));
    return std::clamp(q, int4Min, int4Max);
}

/** Largest |v| in the span. */
float
maxAbs(std::span<const float> values)
{
    float m = 0.0f;
    for (const float v : values)
        m = std::max(m, std::fabs(v));
    return m;
}

/** Pack a signed nibble into the packed array. */
void
packNibble(std::vector<std::uint8_t> &packed, std::size_t i, int q)
{
    const auto nibble = static_cast<std::uint8_t>(q & 0xf);
    if (i % 2 == 0)
        packed[i / 2] = (packed[i / 2] & 0xf0) | nibble;
    else
        packed[i / 2] =
            (packed[i / 2] & 0x0f)
            | static_cast<std::uint8_t>(nibble << 4);
}

/** Unpack a signed nibble (sign-extend 4 -> 32 bits). */
int
unpackNibble(const std::vector<std::uint8_t> &packed, std::size_t i)
{
    const std::uint8_t byte = packed[i / 2];
    const std::uint8_t nibble =
        (i % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
    return (nibble & 0x8) ? static_cast<int>(nibble) - 16
                          : static_cast<int>(nibble);
}

} // namespace

Int4Vector
quantizeVector(std::span<const float> values)
{
    Int4Vector out;
    out.size = values.size();
    out.scale = maxAbs(values) / static_cast<float>(int4Max);
    out.packed.assign((values.size() + 1) / 2, 0);
    for (std::size_t i = 0; i < values.size(); ++i)
        packNibble(out.packed, i, quantizeValue(values[i], out.scale));
    return out;
}

int
unpackInt4(const Int4Vector &vec, std::size_t i)
{
    return unpackNibble(vec.packed, i);
}

std::vector<float>
dequantize(const Int4Vector &vec)
{
    std::vector<float> out(vec.size);
    for (std::size_t i = 0; i < vec.size; ++i)
        out[i] = static_cast<float>(unpackInt4(vec, i)) * vec.scale;
    return out;
}

Int4Matrix::Int4Matrix(const FloatMatrix &source)
    : rows_(source.rows()), cols_(source.cols()),
      bytesPerRow_((source.cols() + 1) / 2),
      packed_(rows_ * bytesPerRow_, 0), scales_(rows_, 0.0f)
{
    std::vector<std::uint8_t> rowPacked(bytesPerRow_, 0);
    for (std::size_t r = 0; r < rows_; ++r) {
        const std::span<const float> row = source.row(r);
        const float scale =
            maxAbs(row) / static_cast<float>(int4Max);
        scales_[r] = scale;
        std::fill(rowPacked.begin(), rowPacked.end(), 0);
        for (std::size_t c = 0; c < cols_; ++c)
            packNibble(rowPacked, c, quantizeValue(row[c], scale));
        std::copy(rowPacked.begin(), rowPacked.end(),
                  packed_.begin() + r * bytesPerRow_);
    }
}

int
Int4Matrix::valueAt(std::size_t r, std::size_t c) const
{
    ECSSD_ASSERT(r < rows_ && c < cols_, "int4 index out of range");
    const std::size_t bit = c;
    const std::uint8_t byte = packed_[r * bytesPerRow_ + bit / 2];
    const std::uint8_t nibble =
        (bit % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
    return (nibble & 0x8) ? static_cast<int>(nibble) - 16
                          : static_cast<int>(nibble);
}

double
Int4Matrix::dotRow(std::size_t r, const Int4Vector &feature) const
{
    ECSSD_ASSERT(feature.size == cols_,
                 "int4 feature length mismatch");
    std::int64_t acc = 0;
    for (std::size_t c = 0; c < cols_; ++c)
        acc += static_cast<std::int64_t>(valueAt(r, c))
            * unpackInt4(feature, c);
    return static_cast<double>(acc) * scales_[r] * feature.scale;
}

std::int64_t
Int4Matrix::rawDotRow(std::size_t r,
                      std::span<const std::int8_t> feature) const
{
    ECSSD_ASSERT(feature.size() == cols_,
                 "int4 feature length mismatch");
    std::int64_t acc = 0;
    for (std::size_t c = 0; c < cols_; ++c)
        acc += static_cast<std::int64_t>(valueAt(r, c)) * feature[c];
    return acc;
}

std::int64_t
Int4Matrix::rowAbsSum(std::size_t r) const
{
    std::int64_t acc = 0;
    for (std::size_t c = 0; c < cols_; ++c)
        acc += std::abs(valueAt(r, c));
    return acc;
}

std::uint64_t
Int4Matrix::storageBytes() const
{
    return packed_.size() + scales_.size() * sizeof(float);
}

} // namespace numeric
} // namespace ecssd
