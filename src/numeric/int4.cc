#include "int4.hh"

#include <algorithm>
#include <array>
#include <cmath>

#include "sim/thread_pool.hh"

namespace ecssd
{
namespace numeric
{

namespace
{

/** One packed byte decoded to its two signed nibble values. */
struct NibblePair
{
    std::int16_t lo;
    std::int16_t hi;
};

/** Sign-extend a 4-bit value branchlessly. */
constexpr std::int16_t
signExtendNibble(unsigned nibble)
{
    return static_cast<std::int16_t>(
        static_cast<int>((nibble & 0xf) ^ 0x8) - 0x8);
}

/** 256-entry byte -> (low, high) signed-pair decode table. */
constexpr std::array<NibblePair, 256>
makeBytePairs()
{
    std::array<NibblePair, 256> pairs{};
    for (unsigned byte = 0; byte < 256; ++byte) {
        pairs[byte].lo = signExtendNibble(byte & 0xf);
        pairs[byte].hi = signExtendNibble(byte >> 4);
    }
    return pairs;
}

constexpr std::array<NibblePair, 256> kBytePairs = makeBytePairs();

/**
 * Column count up to which an int32 accumulator cannot overflow: the
 * largest per-element product is 7 * 7 = 49.
 */
constexpr std::size_t kInt32SafeCols = 0x7fffffff / 49;

/** Rescale a raw integer dot product exactly as dotRow() does. */
inline double
rescale(std::int64_t acc, float row_scale, float feature_scale)
{
    return static_cast<double>(acc) * row_scale * feature_scale;
}

/** Unpack a signed nibble (sign-extend 4 -> 32 bits). */
int
unpackNibble(const std::vector<std::uint8_t> &packed, std::size_t i)
{
    const std::uint8_t byte = packed[i / 2];
    const std::uint8_t nibble =
        (i % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
    return (nibble & 0x8) ? static_cast<int>(nibble) - 16
                          : static_cast<int>(nibble);
}

} // namespace

Int4Vector
quantizeVector(std::span<const float> values)
{
    Int4Vector out;
    quantizeVectorInto(values, out);
    return out;
}

void
quantizeVectorInto(std::span<const float> values, Int4Vector &out)
{
    const IsaLevel isa = activeIsa();
    out.size = values.size();
    out.scale =
        maxAbsSpan(values, isa) / static_cast<float>(int4Max);
    out.packed.resize((values.size() + 1) / 2);
    quantizePackSpan(values, out.scale, out.packed.data(), isa);
}

int
unpackInt4(const Int4Vector &vec, std::size_t i)
{
    return unpackNibble(vec.packed, i);
}

std::vector<float>
dequantize(const Int4Vector &vec)
{
    std::vector<float> out(vec.size);
    for (std::size_t i = 0; i < vec.size; ++i)
        out[i] = static_cast<float>(unpackInt4(vec, i)) * vec.scale;
    return out;
}

Int4Matrix::Int4Matrix(const FloatMatrix &source,
                       sim::ThreadPool *pool)
    : rows_(source.rows()), cols_(source.cols()),
      bytesPerRow_((source.cols() + 1) / 2),
      packed_(rows_ * bytesPerRow_, 0), scales_(rows_, 0.0f)
{
    // The ISA level is captured once so every pool worker quantizes
    // with the same kernel (and the result is reproducible even if
    // the active level changes mid-build).
    const IsaLevel isa = activeIsa();
    const auto quantize_rows = [&, isa](std::size_t row_begin,
                                        std::size_t row_end) {
        for (std::size_t r = row_begin; r < row_end; ++r) {
            const std::span<const float> row = source.row(r);
            const float scale =
                maxAbsSpan(row, isa) / static_cast<float>(int4Max);
            scales_[r] = scale;
            quantizePackSpan(row, scale,
                             packed_.data() + r * bytesPerRow_, isa);
        }
    };
    if (pool)
        pool->parallelFor(0, rows_, 256, quantize_rows);
    else
        quantize_rows(0, rows_);
}

int
Int4Matrix::valueAt(std::size_t r, std::size_t c) const
{
    ECSSD_ASSERT(r < rows_ && c < cols_, "int4 index out of range");
    const std::size_t bit = c;
    const std::uint8_t byte = packed_[r * bytesPerRow_ + bit / 2];
    const std::uint8_t nibble =
        (bit % 2 == 0) ? (byte & 0x0f) : (byte >> 4);
    return (nibble & 0x8) ? static_cast<int>(nibble) - 16
                          : static_cast<int>(nibble);
}

double
Int4Matrix::dotRow(std::size_t r, const Int4Vector &feature) const
{
    ECSSD_ASSERT(feature.size == cols_,
                 "int4 feature length mismatch");
    std::int64_t acc = 0;
    for (std::size_t c = 0; c < cols_; ++c)
        acc += static_cast<std::int64_t>(valueAt(r, c))
            * unpackInt4(feature, c);
    return static_cast<double>(acc) * scales_[r] * feature.scale;
}

std::int64_t
Int4Matrix::rawDotRow(std::size_t r,
                      std::span<const std::int8_t> feature) const
{
    ECSSD_ASSERT(feature.size() == cols_,
                 "int4 feature length mismatch");
    std::int64_t acc = 0;
    for (std::size_t c = 0; c < cols_; ++c)
        acc += static_cast<std::int64_t>(valueAt(r, c)) * feature[c];
    return acc;
}

void
Int4Matrix::widenFeature(const Int4Vector &feature,
                         std::vector<std::int16_t> &out) const
{
    ECSSD_ASSERT(feature.size == cols_,
                 "int4 feature length mismatch");
    out.assign(2 * bytesPerRow_, 0);
    for (std::size_t b = 0; b < feature.packed.size(); ++b) {
        const NibblePair pair = kBytePairs[feature.packed[b]];
        out[2 * b] = pair.lo;
        out[2 * b + 1] = pair.hi;
    }
    // An odd-length feature leaves its final high nibble packed as 0,
    // and the matching pad slot here is 0 too, so the padded products
    // vanish.
}

namespace
{

/**
 * The shared inner loop: accumulate one packed row against a widened
 * feature.  Acc is int32 on every realistic shape (kInt32SafeCols)
 * and int64 beyond it; both produce the same exact integer.
 */
template <typename Acc>
inline Acc
accumulateRow(const std::uint8_t *row, const std::int16_t *feature,
              std::size_t bytes)
{
    Acc acc = 0;
    for (std::size_t b = 0; b < bytes; ++b) {
        const NibblePair pair = kBytePairs[row[b]];
        acc += static_cast<Acc>(pair.lo) * feature[2 * b]
            + static_cast<Acc>(pair.hi) * feature[2 * b + 1];
    }
    return acc;
}

} // namespace

std::int64_t
Int4Matrix::rawDotRowLut(std::size_t r,
                         std::span<const std::int16_t> feature,
                         IsaLevel isa) const
{
    ECSSD_ASSERT(r < rows_ && feature.size() == 2 * bytesPerRow_,
                 "int4 widened feature mismatch");
    const std::uint8_t *row = packed_.data() + r * bytesPerRow_;
    // Past the int32-safe column bound every level shares the exact
    // scalar int64 loop (the SIMD bodies keep int32 accumulators).
    if (cols_ > kInt32SafeCols)
        return accumulateRow<std::int64_t>(row, feature.data(),
                                           bytesPerRow_);
    if (isa == IsaLevel::Scalar)
        return accumulateRow<std::int32_t>(row, feature.data(),
                                           bytesPerRow_);
    return rowDotWidened(row, feature.data(), bytesPerRow_, isa);
}

void
Int4Matrix::dotRowsLut(std::size_t row_begin, std::size_t row_end,
                       std::span<const std::int16_t> feature,
                       float feature_scale, double *out,
                       IsaLevel isa) const
{
    ECSSD_ASSERT(row_begin <= row_end && row_end <= rows_
                     && feature.size() == 2 * bytesPerRow_,
                 "int4 row-range kernel misuse");
    const std::int16_t *widened = feature.data();
    if (isa == IsaLevel::Scalar || cols_ > kInt32SafeCols) {
        // The original LUT loop, kept inline so the pinned-scalar
        // path stays byte-for-byte the pre-dispatch code.
        for (std::size_t r = row_begin; r < row_end; ++r) {
            const std::uint8_t *row =
                packed_.data() + r * bytesPerRow_;
            const std::int64_t acc = cols_ <= kInt32SafeCols
                ? accumulateRow<std::int32_t>(row, widened,
                                              bytesPerRow_)
                : accumulateRow<std::int64_t>(row, widened,
                                              bytesPerRow_);
            out[r - row_begin] =
                rescale(acc, scales_[r], feature_scale);
        }
        return;
    }
    // Range kernel + stack staging: one dispatch per block of rows,
    // and the raw int64 accumulators rescale in a separate tight
    // loop (same rescale expression, so same bits).
    std::array<std::int64_t, 256> acc;
    for (std::size_t r0 = row_begin; r0 < row_end; r0 += acc.size()) {
        const std::size_t n =
            std::min(acc.size(), row_end - r0);
        rowDotWidenedRange(packed_.data() + r0 * bytesPerRow_,
                           bytesPerRow_, n, widened, bytesPerRow_,
                           acc.data(), isa);
        for (std::size_t i = 0; i < n; ++i)
            out[r0 - row_begin + i] =
                rescale(acc[i], scales_[r0 + i], feature_scale);
    }
}

void
Int4Matrix::dotRowsBatchLut(std::size_t row_begin,
                            std::size_t row_end,
                            const std::int16_t *features,
                            std::size_t query_count,
                            std::size_t feature_stride,
                            const float *feature_scales, double *out,
                            std::size_t out_stride, IsaLevel isa,
                            std::size_t query_tile) const
{
    ECSSD_ASSERT(row_begin <= row_end && row_end <= rows_
                     && feature_stride >= 2 * bytesPerRow_,
                 "int4 batch kernel misuse");
    // Tile over queries so each decoded weight row is reused across
    // the whole query block while it is still hot; int32 accumulator
    // tiles, one rescale per (row, query) at the end.  The tile
    // width only changes grouping — every (row, query) cell is an
    // independent exact integer, so any tile yields the same bits.
    constexpr std::size_t kMaxQueryTile = 16;
    const std::size_t tile_width =
        std::clamp<std::size_t>(query_tile, 1, kMaxQueryTile);
    const bool simd = isa != IsaLevel::Scalar
        && cols_ <= kInt32SafeCols;
    std::array<std::int64_t, kMaxQueryTile> acc;
    for (std::size_t q0 = 0; q0 < query_count; q0 += tile_width) {
        const std::size_t tile =
            std::min(tile_width, query_count - q0);
        for (std::size_t r = row_begin; r < row_end; ++r) {
            const std::uint8_t *row =
                packed_.data() + r * bytesPerRow_;
            if (simd) {
                rowDotWidenedBatch(row,
                                   features + q0 * feature_stride,
                                   tile, feature_stride, bytesPerRow_,
                                   acc.data(), isa);
            } else {
                for (std::size_t q = 0; q < tile; ++q) {
                    const std::int16_t *widened =
                        features + (q0 + q) * feature_stride;
                    acc[q] = cols_ <= kInt32SafeCols
                        ? accumulateRow<std::int32_t>(row, widened,
                                                      bytesPerRow_)
                        : accumulateRow<std::int64_t>(row, widened,
                                                      bytesPerRow_);
                }
            }
            for (std::size_t q = 0; q < tile; ++q) {
                out[(q0 + q) * out_stride + (r - row_begin)] =
                    rescale(acc[q], scales_[r],
                            feature_scales[q0 + q]);
            }
        }
    }
}

std::int64_t
Int4Matrix::rowAbsSum(std::size_t r) const
{
    std::int64_t acc = 0;
    for (std::size_t c = 0; c < cols_; ++c)
        acc += std::abs(valueAt(r, c));
    return acc;
}

std::uint64_t
Int4Matrix::storageBytes() const
{
    return packed_.size() + scales_.size() * sizeof(float);
}

} // namespace numeric
} // namespace ecssd
