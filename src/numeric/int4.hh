/**
 * @file
 * INT4 symmetric quantization for the approximate screener.
 *
 * The screener weight matrix is stored as packed signed 4-bit values
 * (two per byte) with one FP32 scale per row; features quantize to
 * signed 4-bit with one scale per vector.  The screening score is an
 * integer dot product rescaled by the two scales.
 */

#ifndef ECSSD_NUMERIC_INT4_HH
#define ECSSD_NUMERIC_INT4_HH

#include <cstdint>
#include <span>
#include <vector>

#include "numeric/kernels.hh"
#include "numeric/matrix.hh"

namespace ecssd
{
namespace sim
{
class ThreadPool;
} // namespace sim
} // namespace ecssd

namespace ecssd
{
namespace numeric
{

/** Signed 4-bit quantization range: symmetric [-7, 7]. */
constexpr int int4Max = 7;
constexpr int int4Min = -7;

/** One quantized vector: packed nibbles plus its scale. */
struct Int4Vector
{
    /** Two signed nibbles per byte, low nibble first. */
    std::vector<std::uint8_t> packed;
    /** Logical element count (may be odd). */
    std::size_t size = 0;
    /** Dequantization scale: real ~= q * scale. */
    float scale = 0.0f;
};

/** Quantize one float vector to signed INT4 with a symmetric scale. */
Int4Vector quantizeVector(std::span<const float> values);

/**
 * Quantize into an existing vector, reusing its packed storage (the
 * hot-path variant: no per-query allocation once the buffer warmed
 * up).
 */
void quantizeVectorInto(std::span<const float> values,
                        Int4Vector &out);

/** Unpack element @p i of @p vec as a signed integer in [-7, 7]. */
int unpackInt4(const Int4Vector &vec, std::size_t i);

/** Dequantize the whole vector back to floats. */
std::vector<float> dequantize(const Int4Vector &vec);

/**
 * A row-quantized INT4 matrix: the storage format of the approximate
 * screener weights held in ECSSD's DRAM.
 */
class Int4Matrix
{
  public:
    Int4Matrix() = default;

    /**
     * Quantize @p source row-by-row, packing each row in place (no
     * staging copy).  With a pool, rows quantize in parallel; each
     * row writes only its own packed/scale slots, so the result is
     * bit-identical for any thread count.
     */
    explicit Int4Matrix(const FloatMatrix &source,
                        sim::ThreadPool *pool = nullptr);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Signed value of element (r, c). */
    int valueAt(std::size_t r, std::size_t c) const;

    /** Scale of row @p r. */
    float rowScale(std::size_t r) const { return scales_[r]; }

    /**
     * Integer dot product of row @p r with a quantized feature,
     * rescaled into real units by both scales.
     */
    double dotRow(std::size_t r, const Int4Vector &feature) const;

    /** Raw integer dot product of row @p r (no rescale). */
    std::int64_t rawDotRow(std::size_t r,
                           std::span<const std::int8_t> feature) const;

    // --- Fast byte-wise kernels -----------------------------------
    //
    // The scalar dotRow() above unpacks one nibble per step with a
    // bounds assert and a sign-extension branch.  The kernels below
    // consume two nibbles per byte through a 256-entry signed-pair
    // LUT against a feature pre-widened to int16, accumulate in
    // int32, and rescale once per row with the exact expression
    // dotRow() uses — so their results are bit-identical to the
    // scalar reference (integer accumulation has no rounding, and
    // the final rescale is the same double product).
    //
    // Each row-range kernel takes an IsaLevel (default: the
    // process-wide activeIsa()) selecting the SIMD body from
    // numeric/kernels.hh.  Integer accumulation is associative, so
    // every level returns the same bits; IsaLevel::Scalar runs the
    // original LUT loops unchanged.

    /** Widen @p feature to the int16 layout the kernels consume: one
     *  value per nibble slot, zero-padded to 2 * bytes-per-row. */
    void widenFeature(const Int4Vector &feature,
                      std::vector<std::int16_t> &out) const;

    /**
     * LUT dot product of row @p r with a widened feature (no
     * rescale).  @p feature must come from widenFeature().
     */
    std::int64_t rawDotRowLut(std::size_t r,
                              std::span<const std::int16_t> feature,
                              IsaLevel isa = activeIsa()) const;

    /**
     * Score rows [row_begin, row_end) against one widened feature
     * into out[r - row_begin], rescaled by row scales and
     * @p feature_scale.  The hot single-query kernel; safe to call
     * concurrently on disjoint row ranges.
     */
    void dotRowsLut(std::size_t row_begin, std::size_t row_end,
                    std::span<const std::int16_t> feature,
                    float feature_scale, double *out,
                    IsaLevel isa = activeIsa()) const;

    /** Default query-block width of dotRowsBatchLut. */
    static constexpr std::size_t kDefaultQueryTile = 8;

    /**
     * Multi-query blocked kernel: score rows [row_begin, row_end)
     * against @p query_count widened features (query q at
     * features + q * feature_stride, scale feature_scales[q]) into
     * out[q * out_stride + (r - row_begin)].  Each weight row is
     * decoded once and reused across every query in the block
     * (GEMM-style reuse); int32 accumulators, one rescale at the
     * end.  Bit-identical to per-query dotRowsLut for any
     * @p query_tile in [1, 16] (each (row, query) cell is an
     * independent exact integer).
     */
    void dotRowsBatchLut(std::size_t row_begin, std::size_t row_end,
                         const std::int16_t *features,
                         std::size_t query_count,
                         std::size_t feature_stride,
                         const float *feature_scales, double *out,
                         std::size_t out_stride,
                         IsaLevel isa = activeIsa(),
                         std::size_t query_tile =
                             kDefaultQueryTile) const;

    /** Packed bytes of one row (two nibbles per byte). */
    std::span<const std::uint8_t>
    packedRow(std::size_t r) const
    {
        return std::span<const std::uint8_t>(
            packed_.data() + r * bytesPerRow_, bytesPerRow_);
    }

    /** Bytes holding one packed row. */
    std::size_t bytesPerRow() const { return bytesPerRow_; }

    /** Sum of |q| over row @p r: the hot-degree predictor input. */
    std::int64_t rowAbsSum(std::size_t r) const;

    /** Packed storage footprint in bytes (nibbles + row scales). */
    std::uint64_t storageBytes() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t bytesPerRow_ = 0;
    std::vector<std::uint8_t> packed_;
    std::vector<float> scales_;
};

} // namespace numeric
} // namespace ecssd

#endif // ECSSD_NUMERIC_INT4_HH
