/**
 * @file
 * INT4 symmetric quantization for the approximate screener.
 *
 * The screener weight matrix is stored as packed signed 4-bit values
 * (two per byte) with one FP32 scale per row; features quantize to
 * signed 4-bit with one scale per vector.  The screening score is an
 * integer dot product rescaled by the two scales.
 */

#ifndef ECSSD_NUMERIC_INT4_HH
#define ECSSD_NUMERIC_INT4_HH

#include <cstdint>
#include <span>
#include <vector>

#include "numeric/matrix.hh"

namespace ecssd
{
namespace numeric
{

/** Signed 4-bit quantization range: symmetric [-7, 7]. */
constexpr int int4Max = 7;
constexpr int int4Min = -7;

/** One quantized vector: packed nibbles plus its scale. */
struct Int4Vector
{
    /** Two signed nibbles per byte, low nibble first. */
    std::vector<std::uint8_t> packed;
    /** Logical element count (may be odd). */
    std::size_t size = 0;
    /** Dequantization scale: real ~= q * scale. */
    float scale = 0.0f;
};

/** Quantize one float vector to signed INT4 with a symmetric scale. */
Int4Vector quantizeVector(std::span<const float> values);

/** Unpack element @p i of @p vec as a signed integer in [-7, 7]. */
int unpackInt4(const Int4Vector &vec, std::size_t i);

/** Dequantize the whole vector back to floats. */
std::vector<float> dequantize(const Int4Vector &vec);

/**
 * A row-quantized INT4 matrix: the storage format of the approximate
 * screener weights held in ECSSD's DRAM.
 */
class Int4Matrix
{
  public:
    Int4Matrix() = default;

    /** Quantize @p source row-by-row. */
    explicit Int4Matrix(const FloatMatrix &source);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /** Signed value of element (r, c). */
    int valueAt(std::size_t r, std::size_t c) const;

    /** Scale of row @p r. */
    float rowScale(std::size_t r) const { return scales_[r]; }

    /**
     * Integer dot product of row @p r with a quantized feature,
     * rescaled into real units by both scales.
     */
    double dotRow(std::size_t r, const Int4Vector &feature) const;

    /** Raw integer dot product of row @p r (no rescale). */
    std::int64_t rawDotRow(std::size_t r,
                           std::span<const std::int8_t> feature) const;

    /** Sum of |q| over row @p r: the hot-degree predictor input. */
    std::int64_t rowAbsSum(std::size_t r) const;

    /** Packed storage footprint in bytes (nibbles + row scales). */
    std::uint64_t storageBytes() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::size_t bytesPerRow_ = 0;
    std::vector<std::uint8_t> packed_;
    std::vector<float> scales_;
};

} // namespace numeric
} // namespace ecssd

#endif // ECSSD_NUMERIC_INT4_HH
