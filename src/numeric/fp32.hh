/**
 * @file
 * Bit-level IEEE-754 single-precision utilities.
 *
 * The CFP32 pre-alignment pipeline and the MAC datapath models need
 * direct access to the sign/exponent/mantissa fields of float values;
 * this header centralizes those manipulations.
 */

#ifndef ECSSD_NUMERIC_FP32_HH
#define ECSSD_NUMERIC_FP32_HH

#include <bit>
#include <cstdint>

namespace ecssd
{
namespace numeric
{

/** Field widths and masks of IEEE-754 binary32. */
constexpr int fp32MantissaBits = 23;
constexpr int fp32ExponentBits = 8;
constexpr int fp32ExponentBias = 127;
constexpr std::uint32_t fp32MantissaMask = (1u << fp32MantissaBits) - 1;
constexpr std::uint32_t fp32ExponentMask = (1u << fp32ExponentBits) - 1;

/** Decomposed view of one binary32 value. */
struct Fp32Fields
{
    /** Sign bit: 0 positive, 1 negative. */
    std::uint32_t sign;
    /** Biased 8-bit exponent field. */
    std::uint32_t exponent;
    /** 23-bit fraction field (no hidden one). */
    std::uint32_t fraction;
};

/** Reinterpret a float's bits as a uint32. */
inline std::uint32_t
floatToBits(float v)
{
    return std::bit_cast<std::uint32_t>(v);
}

/** Reinterpret a uint32 as a float. */
inline float
bitsToFloat(std::uint32_t bits)
{
    return std::bit_cast<float>(bits);
}

/** Split a float into its IEEE fields. */
inline Fp32Fields
decompose(float v)
{
    const std::uint32_t bits = floatToBits(v);
    return Fp32Fields{
        bits >> 31,
        (bits >> fp32MantissaBits) & fp32ExponentMask,
        bits & fp32MantissaMask,
    };
}

/** Reassemble a float from IEEE fields. */
inline float
compose(const Fp32Fields &f)
{
    const std::uint32_t bits = (f.sign << 31)
        | ((f.exponent & fp32ExponentMask) << fp32MantissaBits)
        | (f.fraction & fp32MantissaMask);
    return bitsToFloat(bits);
}

/**
 * 24-bit significand including the hidden leading one (zero for
 * zero/subnormal inputs, which the workloads treat as zero).
 */
inline std::uint32_t
significand24(const Fp32Fields &f)
{
    if (f.exponent == 0)
        return 0; // Subnormals flushed to zero, as hardware MACs do.
    return (1u << fp32MantissaBits) | f.fraction;
}

/** True when the value is +/-0 or subnormal (flushed to zero here). */
inline bool
isZeroOrSubnormal(float v)
{
    return decompose(v).exponent == 0;
}

/** True for NaN or infinity, which the datapaths reject. */
inline bool
isNanOrInf(float v)
{
    const Fp32Fields f = decompose(v);
    return f.exponent == fp32ExponentMask;
}

} // namespace numeric
} // namespace ecssd

#endif // ECSSD_NUMERIC_FP32_HH
