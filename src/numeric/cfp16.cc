#include "cfp16.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/logging.hh"

namespace ecssd
{
namespace numeric
{

Cfp16Vector
Cfp16Vector::preAlign(std::span<const float> values)
{
    Cfp16Vector out;
    out.elements_.reserve(values.size());

    // Pass 1: round every significand to 11 bits (hidden one + 10
    // mantissa bits); a rounding carry renormalizes into the
    // exponent.  The shared exponent is the post-rounding maximum so
    // every element fits the 15-bit field.
    struct Rounded
    {
        std::uint16_t sign = 0;
        std::uint32_t m11 = 0;
        std::uint32_t exponent = 0;
        bool lossy = false;
    };
    std::vector<Rounded> rounded;
    rounded.reserve(values.size());
    std::uint32_t emax = 0;
    constexpr std::uint32_t drop_bits =
        fp32MantissaBits - cfp16MantissaBits; // 13
    for (const float v : values) {
        if (isNanOrInf(v))
            sim::fatal("CFP16 pre-alignment rejects NaN/Inf input");
        const Fp32Fields f = decompose(v);
        Rounded r;
        r.sign = static_cast<std::uint16_t>(f.sign);
        const std::uint32_t m24 = significand24(f);
        if (m24 != 0) {
            r.m11 = (m24 + (1u << (drop_bits - 1))) >> drop_bits;
            r.lossy = (m24 & ((1u << drop_bits) - 1)) != 0;
            r.exponent = f.exponent;
            if (r.m11 >> (cfp16MantissaBits + 1)) {
                r.m11 >>= 1;
                ++r.exponent;
            }
            emax = std::max(emax, r.exponent);
        }
        rounded.push_back(r);
    }
    out.sharedExponent_ = emax;

    // Pass 2: align to the shared exponent.
    for (const Rounded &r : rounded) {
        Cfp16Element elem{r.sign, 0};
        bool lossy = r.lossy;
        if (r.m11 != 0) {
            const std::uint32_t gap = emax - r.exponent;
            const std::uint64_t promoted =
                static_cast<std::uint64_t>(r.m11)
                << cfp16CompensationBits;
            if (gap >= 31) {
                elem.significand = 0;
                lossy = true;
            } else {
                elem.significand = static_cast<std::uint16_t>(
                    promoted >> gap);
                lossy = lossy
                    || (promoted
                        & ((std::uint64_t(1) << gap) - 1))
                        != 0;
            }
        }
        if (lossy)
            ++out.lossyElements_;
        out.elements_.push_back(elem);
    }
    return out;
}

float
Cfp16Vector::toFloat(std::size_t i) const
{
    const Cfp16Element &elem = elements_[i];
    if (elem.significand == 0)
        return elem.sign ? -0.0f : 0.0f;
    // value = m15 * 2^(emax - bias - 10 - 4)
    const int exp2 = static_cast<int>(sharedExponent_)
        - fp32ExponentBias - cfp16MantissaBits
        - cfp16CompensationBits;
    const double magnitude =
        std::ldexp(static_cast<double>(elem.significand), exp2);
    return static_cast<float>(elem.sign ? -magnitude : magnitude);
}

Cfp16DotResult
alignmentFreeDot16(const Cfp16Vector &a, const Cfp16Vector &b)
{
    ECSSD_ASSERT(a.size() == b.size(), "dot operand size mismatch");
    Cfp16DotResult result;
    if (a.empty())
        return result;

    // 30-bit products over <= 2^16 elements fit comfortably in a
    // 64-bit two's complement accumulator.
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const std::int64_t product =
            static_cast<std::int64_t>(a[i].significand)
            * static_cast<std::int64_t>(b[i].significand);
        acc += (a[i].sign ^ b[i].sign) ? -product : product;
        ++result.multiplies;
    }
    const int exp2 = static_cast<int>(a.sharedExponent())
        + static_cast<int>(b.sharedExponent())
        - 2 * fp32ExponentBias
        - 2 * (cfp16MantissaBits + cfp16CompensationBits);
    result.value = std::ldexp(static_cast<double>(acc), exp2);
    return result;
}

} // namespace numeric
} // namespace ecssd
