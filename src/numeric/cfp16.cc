#include "cfp16.hh"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <vector>

#include "sim/logging.hh"

namespace ecssd
{
namespace numeric
{

// The align kernel writes interleaved (sign, significand) uint16
// pairs straight into the element array.
static_assert(sizeof(Cfp16Element) == 2 * sizeof(std::uint16_t)
                  && offsetof(Cfp16Element, sign) == 0
                  && offsetof(Cfp16Element, significand)
                      == sizeof(std::uint16_t),
              "Cfp16Element must match the kernel pair layout");

Cfp16Vector
Cfp16Vector::preAlign(std::span<const float> values, IsaLevel level)
{
    Cfp16Vector out;
    out.elements_.resize(values.size());

    // Pass 1: round every significand to 11 bits (hidden one + 10
    // mantissa bits); a rounding carry renormalizes into the
    // exponent.  The shared exponent is the post-rounding maximum so
    // every element fits the 15-bit field.  Fatal on NaN/Inf.
    out.sharedExponent_ = cfp16MaxExponent(values, level);

    // Pass 2: recompute the rounding and align to the shared
    // exponent; the kernel counts each lossy element once whether
    // the loss came from rounding, the alignment shift, or both.
    out.lossyElements_ = cfp16AlignSpan(
        values, out.sharedExponent_,
        reinterpret_cast<std::uint16_t *>(out.elements_.data()),
        level);
    return out;
}

Cfp16Vector
Cfp16Vector::preAlign(std::span<const float> values)
{
    return preAlign(values, activeIsa());
}

float
Cfp16Vector::toFloat(std::size_t i) const
{
    const Cfp16Element &elem = elements_[i];
    if (elem.significand == 0)
        return elem.sign ? -0.0f : 0.0f;
    // value = m15 * 2^(emax - bias - 10 - 4)
    const int exp2 = static_cast<int>(sharedExponent_)
        - fp32ExponentBias - cfp16MantissaBits
        - cfp16CompensationBits;
    const double magnitude =
        std::ldexp(static_cast<double>(elem.significand), exp2);
    return static_cast<float>(elem.sign ? -magnitude : magnitude);
}

Cfp16DotResult
alignmentFreeDot16(const Cfp16Vector &a, const Cfp16Vector &b)
{
    ECSSD_ASSERT(a.size() == b.size(), "dot operand size mismatch");
    Cfp16DotResult result;
    if (a.empty())
        return result;

    // 30-bit products over <= 2^16 elements fit comfortably in a
    // 64-bit two's complement accumulator.
    std::int64_t acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const std::int64_t product =
            static_cast<std::int64_t>(a[i].significand)
            * static_cast<std::int64_t>(b[i].significand);
        acc += (a[i].sign ^ b[i].sign) ? -product : product;
        ++result.multiplies;
    }
    const int exp2 = static_cast<int>(a.sharedExponent())
        + static_cast<int>(b.sharedExponent())
        - 2 * fp32ExponentBias
        - 2 * (cfp16MantissaBits + cfp16CompensationBits);
    result.value = std::ldexp(static_cast<double>(acc), exp2);
    return result;
}

} // namespace numeric
} // namespace ecssd
