#include "autotune.hh"

#include <algorithm>
#include <chrono>

#include "numeric/int4.hh"
#include "sim/logging.hh"

namespace ecssd
{
namespace numeric
{

namespace
{

/**
 * Packed bytes one parallel chunk should keep resident: half a
 * typical 512KB-1MB L2 so the widened feature, outputs, and the
 * other hyperthread still fit.
 */
constexpr std::size_t kChunkByteBudget = 256 * 1024;

constexpr std::size_t kMinRowChunk = 512;
constexpr std::size_t kMaxRowChunk = 4096;

/** Rows to time per candidate: enough to steady the pipeline,
 *  bounded so deploy-time tuning stays sub-millisecond. */
constexpr std::size_t kMeasureRows = 2048;

double
measureNsPerRow(const Int4Matrix &matrix, IsaLevel isa,
                std::size_t chunk)
{
    const std::size_t rows = std::min(matrix.rows(), kMeasureRows);
    if (rows == 0)
        return 0.0;
    // A mid-scale widened feature: alternating +-3 nibbles.
    std::vector<float> feature(matrix.cols());
    for (std::size_t c = 0; c < feature.size(); ++c)
        feature[c] = (c % 2 == 0) ? 3.0f : -3.0f;
    const Int4Vector quantized = quantizeVector(feature);
    std::vector<std::int16_t> widened;
    matrix.widenFeature(quantized, widened);
    std::vector<double> out(rows);

    const auto begin = std::chrono::steady_clock::now();
    for (std::size_t r0 = 0; r0 < rows; r0 += chunk) {
        const std::size_t r1 = std::min(rows, r0 + chunk);
        matrix.dotRowsLut(r0, r1,
                          std::span<const std::int16_t>(widened),
                          quantized.scale, out.data() + r0, isa);
    }
    const auto end = std::chrono::steady_clock::now();
    const double ns = static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end
                                                             - begin)
            .count());
    return ns / static_cast<double>(rows);
}

} // namespace

std::vector<std::size_t>
rowChunkCandidates(std::size_t bytes_per_row)
{
    // Powers of two whose packed bytes stay within the chunk budget,
    // clamped to [kMinRowChunk, kMaxRowChunk]; always at least the
    // minimum so degenerate shapes still get a plan.
    std::vector<std::size_t> candidates;
    for (std::size_t chunk = kMinRowChunk; chunk <= kMaxRowChunk;
         chunk *= 2) {
        if (chunk > kMinRowChunk
            && chunk * std::max<std::size_t>(1, bytes_per_row)
                > kChunkByteBudget)
            break;
        candidates.push_back(chunk);
    }
    return candidates;
}

std::size_t
batchQueryTile(std::size_t rows, std::size_t bytes_per_row,
               IsaLevel isa)
{
    // rows keeps the signature the full (shape, ISA) tuple the plan
    // is a pure function of; the current heuristic needs only the
    // row width and the register file.
    (void)rows;

    // Register budget: the batch kernel keeps one accumulator per
    // query plus the decoded row live, so AVX-512's 32 zmm afford a
    // 16-wide tile while AVX2's 16 ymm top out at 8.  The portable
    // levels run a per-query loop (no register tiling); they keep
    // the 8-wide blocking for feature locality.
    const std::size_t register_cap =
        isa == IsaLevel::Avx512 ? 16 : 8;

    // L1 share: each query contributes a widened feature of
    // 2 * bytes_per_row int16 values (4 * bytes_per_row bytes), and
    // the whole tile streams it again for every row — the tile must
    // stay within half a typical 32KB L1 next to the packed rows.
    constexpr std::size_t kTileFeatureBudget = 16 * 1024;
    const std::size_t feature_bytes =
        std::max<std::size_t>(1, 4 * bytes_per_row);
    const std::size_t l1_cap =
        std::max<std::size_t>(1, kTileFeatureBudget / feature_bytes);

    std::size_t tile = 1;
    while (tile * 2 <= std::min(register_cap, l1_cap))
        tile *= 2;
    return tile;
}

KernelPlan
autotuneScreenerKernels(const Int4Matrix &matrix, IsaLevel isa,
                        bool measure)
{
    KernelPlan plan;
    plan.isa = isa;
    plan.rows = matrix.rows();
    plan.cols = matrix.cols();
    plan.bytesPerRow = matrix.bytesPerRow();

    // Closed-form selection — a pure function of (shape, ISA), so
    // the same deploy always runs the same plan on every machine:
    //  * rowChunk: the largest candidate (deepest L2 tile) — fewer
    //    dispatches while the packed chunk still fits the budget.
    //  * queryTile: the shape heuristic above (register file vs the
    //    widened-feature L1 share).
    const std::vector<std::size_t> candidates =
        rowChunkCandidates(plan.bytesPerRow);
    ECSSD_ASSERT(!candidates.empty(), "no row-chunk candidates");
    plan.rowChunk = candidates.back();
    plan.queryTile =
        batchQueryTile(plan.rows, plan.bytesPerRow, isa);

    for (const std::size_t chunk : candidates) {
        KernelCandidate candidate;
        candidate.rowChunk = chunk;
        candidate.selected = chunk == plan.rowChunk;
        if (measure && plan.rows > 0)
            candidate.nsPerRow = measureNsPerRow(matrix, isa, chunk);
        if (candidate.selected)
            plan.nsPerRow = candidate.nsPerRow;
        plan.candidates.push_back(candidate);
    }
    plan.measured = measure && plan.rows > 0;
    return plan;
}

} // namespace numeric
} // namespace ecssd
