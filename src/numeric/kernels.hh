/**
 * @file
 * Runtime-dispatched SIMD host kernels.
 *
 * Every hot host-compute kernel (INT4 LUT screening, quantization,
 * the projection GEMV, the FP32 pairwise-tree dot) exists at up to
 * four ISA levels:
 *
 *   scalar  — the original reference loops (byte-for-byte the PR 7
 *             code paths).
 *   vector  — portable GCC vector-extension lanes, compiled against
 *             the baseline ISA (SSE2 on x86-64).  The correctness
 *             fallback on hosts without AVX.
 *   avx2    — 256-bit integer (pmaddwd) and FP paths.
 *   avx512  — 512-bit paths (requires AVX-512 F/BW/VL).
 *
 * Dispatch contract: *every* level computes bit-identical results.
 * Integer kernels accumulate exactly (associativity is free); the
 * FP32 kernels are vectorized across independent outputs or along
 * the data-independent pairwise-tree structure, so no floating-point
 * operation is reassociated relative to the scalar reference.  This
 * file is compiled with -ffp-contract=off so no level silently gains
 * an FMA the others lack.  The golden-tolerance contract for any
 * future reassociating FP32 kernel lives in
 * tests/test_kernels_differential.cc (see docs/MODELING.md §14).
 *
 * The active level is process-global: the ECSSD_ISA environment
 * variable pins it (tests/CI), the --isa CLI flag or
 * EcssdOptions::isa requests it, and auto-detection picks the best
 * supported level otherwise.
 */

#ifndef ECSSD_NUMERIC_KERNELS_HH
#define ECSSD_NUMERIC_KERNELS_HH

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ecssd
{
namespace numeric
{

/** One host-kernel implementation level, worst to best. */
enum class IsaLevel : int
{
    Scalar = 0,
    /** GCC vector extensions against the baseline ISA. */
    VecExt = 1,
    Avx2 = 2,
    Avx512 = 3,
};

/** Canonical lowercase name ("scalar", "vector", "avx2", "avx512"). */
const char *toString(IsaLevel level);

/** Parse a level name; nullopt on anything unknown ("auto" included). */
std::optional<IsaLevel> parseIsaLevel(std::string_view name);

/** True when @p request names a level or the "auto" sentinel — the
 *  validity check EcssdOptions::validate() applies to --isa and to
 *  the ECSSD_ISA environment variable. */
bool isValidIsaRequest(std::string_view request);

/** True when this CPU can execute @p level. */
bool isaSupported(IsaLevel level);

/** Best level this CPU supports (never worse than VecExt). */
IsaLevel detectBestIsa();

/** Every level this CPU supports, worst to best (Scalar included). */
std::vector<IsaLevel> supportedIsaLevels();

/**
 * The process-global active level all implicit-dispatch kernel entry
 * points use.  Lazily initialized from ECSSD_ISA (fatal on an
 * unknown or unsupported value) or detectBestIsa().
 */
IsaLevel activeIsa();

/**
 * Re-resolve the active level from @p request ("auto" or a level
 * name).  ECSSD_ISA, when set, always wins — that is what lets tests
 * and CI pin the path under any configuration.  Fatal (named error)
 * on an unknown request, on an unknown ECSSD_ISA value, or on a
 * pinned level this CPU cannot execute.  Returns the resolved level.
 */
IsaLevel applyIsaRequest(const std::string &request);

/** Pin the active level directly (tests).  Fatal if unsupported. */
void setActiveIsa(IsaLevel level);

// --- FP32 kernels (bit-stable across levels) ----------------------

/**
 * Dot product of @p a and @p b evaluated as binary32 products fed
 * into the binary32 pairwise adder tree — the exact value
 * NaiveFpMac::dot() produces, at every ISA level (the tree's
 * pairings are data-independent, so lanes can compute them without
 * reassociating anything).
 */
double pairwiseDotF32(std::span<const float> a,
                      std::span<const float> b, IsaLevel level);

/** Implicit-dispatch overload (activeIsa()). */
double pairwiseDotF32(std::span<const float> a,
                      std::span<const float> b);

/**
 * Row-blocked projection GEMV: out[k] = sum_d basisT[d * k_count + k]
 * * vec[d], accumulated in double in ascending-d order per output —
 * the same operation sequence per output as the scalar reference, so
 * every level produces identical bits.  @p basisT is the transposed
 * (D x K) projection basis.
 */
void projectGemv(std::span<const float> basisT, std::size_t full_dim,
                 std::size_t shrunk_dim, std::span<const float> vec,
                 float *out, IsaLevel level);

// --- Quantization kernels (bit-stable across levels) --------------

/**
 * Quantize @p values with @p scale to signed INT4 and pack two
 * nibbles per byte (low nibble first) into @p out, which must hold
 * (values.size() + 1) / 2 bytes.  Replicates
 * clamp(lround(v / scale), -7, 7) exactly (round half away from
 * zero), zero when @p scale is zero.
 */
void quantizePackSpan(std::span<const float> values, float scale,
                      std::uint8_t *out, IsaLevel level);

/** max |v| over the span (order-free, hence exact at any level). */
float maxAbsSpan(std::span<const float> values, IsaLevel level);

// --- CFP pre-alignment kernels (exact bit manipulation) -----------
//
// Both passes of the Cfp32Vector/Cfp16Vector::preAlign host step
// operate purely on the integer bit patterns of the inputs, so every
// ISA level is exact by construction.  The interleaved outputs match
// the element layouts of cfp32.hh / cfp16.hh (static_asserted at the
// call sites).

/**
 * Pass 1 of CFP32 pre-alignment: the vector-wise maximum biased
 * exponent over @p values.  Fatal on NaN/Inf input (the preAlign
 * contract).
 */
std::uint32_t cfp32MaxExponent(std::span<const float> values,
                               IsaLevel level);

/**
 * Pass 2 of CFP32 pre-alignment: align every 24-bit significand to
 * the shared biased exponent @p emax, writing interleaved
 * (sign, significand) pairs — 2 * values.size() uint32 words, the
 * Cfp32Element layout.  Returns the number of lossy elements.
 */
std::uint64_t cfp32AlignSpan(std::span<const float> values,
                             std::uint32_t emax, std::uint32_t *out,
                             IsaLevel level);

/**
 * Pass 1 of CFP16 pre-alignment: the maximum biased exponent after
 * rounding every significand to 11 bits (a rounding carry
 * renormalizes into the exponent).  Fatal on NaN/Inf input.
 */
std::uint32_t cfp16MaxExponent(std::span<const float> values,
                               IsaLevel level);

/**
 * Pass 2 of CFP16 pre-alignment: round to the 11-bit significand and
 * align to @p emax, writing interleaved (sign, significand) uint16
 * pairs — the Cfp16Element layout.  Returns the number of lossy
 * elements (round-lossy or shift-lossy, counted once).
 */
std::uint64_t cfp16AlignSpan(std::span<const float> values,
                             std::uint32_t emax, std::uint16_t *out,
                             IsaLevel level);

// --- INT4 LUT kernels (exact integer accumulation) ----------------

/**
 * Raw integer dot product of one packed row against a widened int16
 * feature (see Int4Matrix::widenFeature), int32 accumulation.  The
 * caller guarantees cols <= kInt32SafeCols (Int4Matrix dispatches to
 * its scalar int64 loop beyond that).
 */
std::int64_t rowDotWidened(const std::uint8_t *row,
                           const std::int16_t *feature,
                           std::size_t bytes, IsaLevel level);

/**
 * Row-range variant: raw dots of @p row_count packed rows (row i at
 * rows + i * row_stride) against one widened feature into out[i].
 * Same contract as rowDotWidened; the ISA dispatch runs once for
 * the whole range instead of once per row — the hot single-query
 * screener path.
 */
void rowDotWidenedRange(const std::uint8_t *rows,
                        std::size_t row_stride,
                        std::size_t row_count,
                        const std::int16_t *feature,
                        std::size_t bytes, std::int64_t *out,
                        IsaLevel level);

/**
 * Multi-query row block: for each query q in [0, query_count), raw
 * int32 dot of @p row against features + q * feature_stride into
 * acc[q].  One row decode shared by the whole query block.
 */
void rowDotWidenedBatch(const std::uint8_t *row,
                        const std::int16_t *features,
                        std::size_t query_count,
                        std::size_t feature_stride, std::size_t bytes,
                        std::int64_t *acc, IsaLevel level);

} // namespace numeric
} // namespace ecssd

#endif // ECSSD_NUMERIC_KERNELS_HH
