#include "mac.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "numeric/kernels.hh"
#include "sim/logging.hh"

namespace ecssd
{
namespace numeric
{

MacOpCounts &
MacOpCounts::operator+=(const MacOpCounts &other)
{
    mantissaMultiplies += other.mantissaMultiplies;
    exponentAdds += other.exponentAdds;
    exponentCompares += other.exponentCompares;
    mantissaShifts += other.mantissaShifts;
    mantissaAdds += other.mantissaAdds;
    normalizations += other.normalizations;
    return *this;
}

MacResult
NaiveFpMac::dot(std::span<const float> a, std::span<const float> b)
{
    ECSSD_ASSERT(a.size() == b.size(), "dot operand size mismatch");
    MacResult result;

    // The value comes from the runtime-dispatched pairwise kernel,
    // which evaluates exactly this datapath — binary32 products fed
    // into the binary32 pairwise adder tree — at any ISA level with
    // identical bits (the tree's pairings are data-independent, so
    // SIMD lanes reassociate nothing; see numeric/kernels.hh).
    result.value = pairwiseDotF32(a, b);

    // Micro-op counts in closed form.  Multiply stage: one mantissa
    // multiply, exponent add, and normalize per element.  Adder
    // tree: each two-input FP add (a tree with n leaves performs
    // n - 1 of them, carries included) does an exponent compare, one
    // mantissa shift, a mantissa add, and a normalize.
    const std::uint64_t n = a.size();
    const std::uint64_t adds = n > 0 ? n - 1 : 0;
    result.ops.mantissaMultiplies = n;
    result.ops.exponentAdds = n;
    result.ops.normalizations = n + adds;
    result.ops.exponentCompares = adds;
    result.ops.mantissaShifts = adds;
    result.ops.mantissaAdds = adds;
    return result;
}

MacResult
SkHynixMac::dot(std::span<const float> a, std::span<const float> b)
{
    ECSSD_ASSERT(a.size() == b.size(), "dot operand size mismatch");
    MacResult result;
    if (a.empty())
        return result;

    // Multiply stage in binary32 (same rounding point as hardware).
    struct Product
    {
        std::uint32_t sign;
        std::uint32_t exponent;
        std::uint64_t significand48;
    };
    std::vector<Product> products;
    products.reserve(a.size());
    std::uint32_t emax = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Fp32Fields fa = decompose(a[i]);
        const Fp32Fields fb = decompose(b[i]);
        result.ops.mantissaMultiplies += 1;
        result.ops.exponentAdds += 1;
        Product p{fa.sign ^ fb.sign, 0, 0};
        const std::uint64_t ma = significand24(fa);
        const std::uint64_t mb = significand24(fb);
        if (ma != 0 && mb != 0) {
            p.significand48 = ma * mb; // up to 48 bits
            p.exponent = fa.exponent + fb.exponent;
        }
        // Running max-exponent scan: one compare per product.
        result.ops.exponentCompares += 1;
        emax = std::max(emax, p.exponent);
        products.push_back(p);
    }

    // Alignment stage: shift every 48-bit product once so all share
    // emax, keeping 16 guard bits so moderate gaps stay lossless.
    constexpr int guardBits = 16;
    __int128 acc = 0;
    for (const Product &p : products) {
        result.ops.mantissaShifts += 1;
        result.ops.mantissaAdds += 1;
        if (p.significand48 == 0)
            continue;
        const std::uint32_t gap = emax - p.exponent;
        __int128 aligned;
        if (gap >= 64 + guardBits) {
            aligned = 0;
        } else if (gap >= guardBits) {
            aligned = static_cast<__int128>(
                p.significand48 >> (gap - guardBits));
        } else {
            aligned = static_cast<__int128>(p.significand48)
                << (guardBits - gap);
        }
        acc += p.sign ? -aligned : aligned;
    }

    result.ops.normalizations += 1;
    // value = acc * 2^(emax - 2*bias - 2*23 - guard)
    const int exp2 = static_cast<int>(emax) - 2 * fp32ExponentBias
        - 2 * fp32MantissaBits - guardBits;
    result.value = std::ldexp(static_cast<double>(acc), exp2);
    return result;
}

MacResult
AlignmentFreeMac::dot(const Cfp32Vector &a, const Cfp32Vector &b)
{
    ECSSD_ASSERT(a.size() == b.size(), "dot operand size mismatch");
    MacResult result;
    if (a.empty())
        return result;

    // Pure integer datapath: 31x31 multiply, 2's-complement
    // accumulate.  62-bit products over <= 2^16 elements fit a 128-bit
    // accumulator with room to spare.
    __int128 acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const Cfp32Element &ea = a[i];
        const Cfp32Element &eb = b[i];
        result.ops.mantissaMultiplies += 1;
        result.ops.mantissaAdds += 1;
        const __int128 product =
            static_cast<__int128>(
                static_cast<std::uint64_t>(ea.significand)
                * static_cast<std::uint64_t>(eb.significand));
        acc += (ea.sign ^ eb.sign) ? -product : product;
    }

    result.ops.normalizations += 1;
    // Each significand is m * 2^(E - bias - 23 - 7); the product scale
    // therefore uses both shared exponents.
    const int exp2 = static_cast<int>(a.sharedExponent())
        + static_cast<int>(b.sharedExponent()) - 2 * fp32ExponentBias
        - 2 * (fp32MantissaBits + cfp32CompensationBits);
    result.value = std::ldexp(static_cast<double>(acc), exp2);
    return result;
}

double
referenceDot(std::span<const float> a, std::span<const float> b)
{
    ECSSD_ASSERT(a.size() == b.size(), "dot operand size mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    return acc;
}

} // namespace numeric
} // namespace ecssd
