#include "cfp32.hh"

#include <cmath>

#include "sim/logging.hh"

namespace ecssd
{
namespace numeric
{

Cfp32Vector
Cfp32Vector::preAlign(std::span<const float> values)
{
    Cfp32Vector out;
    out.elements_.reserve(values.size());

    // Pass 1: the vector-wise maximum exponent.
    std::uint32_t emax = 0;
    for (const float v : values) {
        if (isNanOrInf(v))
            sim::fatal("CFP32 pre-alignment rejects NaN/Inf input");
        emax = std::max(emax, decompose(v).exponent);
    }
    out.sharedExponent_ = emax;

    // Pass 2: shift every significand so it shares emax.  The 24-bit
    // significand is first promoted into the 31-bit field (left by the
    // 7 compensation bits), then shifted right by the exponent gap.
    for (const float v : values) {
        const Fp32Fields f = decompose(v);
        const std::uint32_t m24 = significand24(f);
        Cfp32Element elem{f.sign, 0};
        if (m24 != 0) {
            const std::uint32_t gap = emax - f.exponent;
            const std::uint64_t promoted =
                static_cast<std::uint64_t>(m24)
                << cfp32CompensationBits;
            if (gap >= 63) {
                elem.significand = 0;
                ++out.lossyElements_;
            } else {
                elem.significand =
                    static_cast<std::uint32_t>(promoted >> gap);
                const std::uint64_t dropped =
                    promoted & ((std::uint64_t(1) << gap) - 1);
                if (dropped != 0)
                    ++out.lossyElements_;
            }
        }
        out.elements_.push_back(elem);
    }
    return out;
}

float
Cfp32Vector::toFloat(std::size_t i) const
{
    const Cfp32Element &elem = elements_[i];
    if (elem.significand == 0)
        return elem.sign ? -0.0f : 0.0f;
    // value = m31 * 2^(emax - bias - 23 - compensation)
    const int exp2 = static_cast<int>(sharedExponent_)
        - fp32ExponentBias - fp32MantissaBits - cfp32CompensationBits;
    const double magnitude =
        std::ldexp(static_cast<double>(elem.significand), exp2);
    return static_cast<float>(elem.sign ? -magnitude : magnitude);
}

std::vector<float>
Cfp32Vector::toFloats() const
{
    std::vector<float> out;
    out.reserve(elements_.size());
    for (std::size_t i = 0; i < elements_.size(); ++i)
        out.push_back(toFloat(i));
    return out;
}

double
losslessFraction(std::span<const Cfp32Vector> vectors)
{
    std::uint64_t total = 0;
    std::uint64_t lossy = 0;
    for (const Cfp32Vector &vec : vectors) {
        total += vec.size();
        lossy += vec.lossyElements();
    }
    if (total == 0)
        return 1.0;
    return 1.0 - static_cast<double>(lossy) / static_cast<double>(total);
}

} // namespace numeric
} // namespace ecssd
