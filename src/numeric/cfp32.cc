#include "cfp32.hh"

#include <cmath>
#include <cstddef>

#include "sim/logging.hh"

namespace ecssd
{
namespace numeric
{

// The align kernel writes interleaved (sign, significand) uint32
// pairs straight into the element array.
static_assert(sizeof(Cfp32Element) == 2 * sizeof(std::uint32_t)
                  && offsetof(Cfp32Element, sign) == 0
                  && offsetof(Cfp32Element, significand)
                      == sizeof(std::uint32_t),
              "Cfp32Element must match the kernel pair layout");

Cfp32Vector
Cfp32Vector::preAlign(std::span<const float> values, IsaLevel level)
{
    Cfp32Vector out;
    out.elements_.resize(values.size());

    // Pass 1: the vector-wise maximum exponent (fatal on NaN/Inf).
    out.sharedExponent_ = cfp32MaxExponent(values, level);

    // Pass 2: shift every significand so it shares emax.  The 24-bit
    // significand is first promoted into the 31-bit field (left by the
    // 7 compensation bits), then shifted right by the exponent gap.
    out.lossyElements_ = cfp32AlignSpan(
        values, out.sharedExponent_,
        reinterpret_cast<std::uint32_t *>(out.elements_.data()),
        level);
    return out;
}

Cfp32Vector
Cfp32Vector::preAlign(std::span<const float> values)
{
    return preAlign(values, activeIsa());
}

float
Cfp32Vector::toFloat(std::size_t i) const
{
    const Cfp32Element &elem = elements_[i];
    if (elem.significand == 0)
        return elem.sign ? -0.0f : 0.0f;
    // value = m31 * 2^(emax - bias - 23 - compensation)
    const int exp2 = static_cast<int>(sharedExponent_)
        - fp32ExponentBias - fp32MantissaBits - cfp32CompensationBits;
    const double magnitude =
        std::ldexp(static_cast<double>(elem.significand), exp2);
    return static_cast<float>(elem.sign ? -magnitude : magnitude);
}

std::vector<float>
Cfp32Vector::toFloats() const
{
    std::vector<float> out;
    out.reserve(elements_.size());
    for (std::size_t i = 0; i < elements_.size(); ++i)
        out.push_back(toFloat(i));
    return out;
}

double
losslessFraction(std::span<const Cfp32Vector> vectors)
{
    std::uint64_t total = 0;
    std::uint64_t lossy = 0;
    for (const Cfp32Vector &vec : vectors) {
        total += vec.size();
        lossy += vec.lossyElements();
    }
    if (total == 0)
        return 1.0;
    return 1.0 - static_cast<double>(lossy) / static_cast<double>(total);
}

} // namespace numeric
} // namespace ecssd
