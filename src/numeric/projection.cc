#include "projection.hh"

#include <cmath>

#include "numeric/kernels.hh"
#include "sim/logging.hh"
#include "sim/thread_pool.hh"

namespace ecssd
{
namespace numeric
{

Projector::Projector(std::size_t full_dim, std::size_t shrunk_dim,
                     std::uint64_t seed)
    : fullDim_(full_dim), shrunkDim_(shrunk_dim),
      projection_(shrunk_dim, full_dim)
{
    ECSSD_ASSERT(shrunk_dim > 0 && shrunk_dim <= full_dim,
                 "projection must shrink the hidden dimension");
    sim::Rng rng(seed);
    const double stddev =
        1.0 / std::sqrt(static_cast<double>(shrunk_dim));
    for (std::size_t k = 0; k < shrunk_dim; ++k)
        for (std::size_t d = 0; d < full_dim; ++d)
            projection_.at(k, d) =
                static_cast<float>(rng.gaussian(0.0, stddev));
    buildTransposed();
}

Projector::Projector(FloatMatrix projection)
    : fullDim_(projection.cols()), shrunkDim_(projection.rows()),
      projection_(std::move(projection))
{
    ECSSD_ASSERT(shrunkDim_ > 0 && shrunkDim_ <= fullDim_,
                 "projection must shrink the hidden dimension");
    buildTransposed();
}

void
Projector::buildTransposed()
{
    basisT_.resize(fullDim_ * shrunkDim_);
    for (std::size_t k = 0; k < shrunkDim_; ++k) {
        const std::span<const float> prow = projection_.row(k);
        for (std::size_t d = 0; d < fullDim_; ++d)
            basisT_[d * shrunkDim_ + k] = prow[d];
    }
}

std::vector<float>
Projector::project(std::span<const float> vec) const
{
    std::vector<float> out;
    projectInto(vec, out);
    return out;
}

void
Projector::projectInto(std::span<const float> vec,
                       std::vector<float> &out) const
{
    ECSSD_ASSERT(vec.size() == fullDim_,
                 "projection input length mismatch");
    out.resize(shrunkDim_);
    const IsaLevel isa = activeIsa();
    if (isa == IsaLevel::Scalar) {
        // The original row-major loop; the SIMD GEMV below runs the
        // identical per-output operation sequence over the
        // transposed basis, so both paths produce the same bits.
        for (std::size_t k = 0; k < shrunkDim_; ++k) {
            const std::span<const float> prow = projection_.row(k);
            double acc = 0.0;
            for (std::size_t d = 0; d < fullDim_; ++d)
                acc += static_cast<double>(prow[d]) * vec[d];
            out[k] = static_cast<float>(acc);
        }
        return;
    }
    projectGemv(std::span<const float>(basisT_), fullDim_,
                shrunkDim_, vec, out.data(), isa);
}

FloatMatrix
Projector::projectRows(const FloatMatrix &weights,
                       sim::ThreadPool *pool) const
{
    ECSSD_ASSERT(weights.cols() == fullDim_,
                 "projection weight width mismatch");
    FloatMatrix out(weights.rows(), shrunkDim_);
    const auto project_rows = [&](std::size_t row_begin,
                                  std::size_t row_end) {
        std::vector<float> projected;
        for (std::size_t r = row_begin; r < row_end; ++r) {
            projectInto(weights.row(r), projected);
            std::span<float> orow = out.row(r);
            for (std::size_t k = 0; k < shrunkDim_; ++k)
                orow[k] = projected[k];
        }
    };
    if (pool)
        pool->parallelFor(0, weights.rows(), 64, project_rows);
    else
        project_rows(0, weights.rows());
    return out;
}

} // namespace numeric
} // namespace ecssd
