#include "projection.hh"

#include <cmath>

#include "sim/logging.hh"

namespace ecssd
{
namespace numeric
{

Projector::Projector(std::size_t full_dim, std::size_t shrunk_dim,
                     std::uint64_t seed)
    : fullDim_(full_dim), shrunkDim_(shrunk_dim),
      projection_(shrunk_dim, full_dim)
{
    ECSSD_ASSERT(shrunk_dim > 0 && shrunk_dim <= full_dim,
                 "projection must shrink the hidden dimension");
    sim::Rng rng(seed);
    const double stddev =
        1.0 / std::sqrt(static_cast<double>(shrunk_dim));
    for (std::size_t k = 0; k < shrunk_dim; ++k)
        for (std::size_t d = 0; d < full_dim; ++d)
            projection_.at(k, d) =
                static_cast<float>(rng.gaussian(0.0, stddev));
}

Projector::Projector(FloatMatrix projection)
    : fullDim_(projection.cols()), shrunkDim_(projection.rows()),
      projection_(std::move(projection))
{
    ECSSD_ASSERT(shrunkDim_ > 0 && shrunkDim_ <= fullDim_,
                 "projection must shrink the hidden dimension");
}

std::vector<float>
Projector::project(std::span<const float> vec) const
{
    ECSSD_ASSERT(vec.size() == fullDim_,
                 "projection input length mismatch");
    std::vector<float> out(shrunkDim_, 0.0f);
    for (std::size_t k = 0; k < shrunkDim_; ++k) {
        const std::span<const float> prow = projection_.row(k);
        double acc = 0.0;
        for (std::size_t d = 0; d < fullDim_; ++d)
            acc += static_cast<double>(prow[d]) * vec[d];
        out[k] = static_cast<float>(acc);
    }
    return out;
}

FloatMatrix
Projector::projectRows(const FloatMatrix &weights) const
{
    ECSSD_ASSERT(weights.cols() == fullDim_,
                 "projection weight width mismatch");
    FloatMatrix out(weights.rows(), shrunkDim_);
    for (std::size_t r = 0; r < weights.rows(); ++r) {
        const std::vector<float> projected = project(weights.row(r));
        std::span<float> orow = out.row(r);
        for (std::size_t k = 0; k < shrunkDim_; ++k)
            orow[k] = projected[k];
    }
    return out;
}

} // namespace numeric
} // namespace ecssd
