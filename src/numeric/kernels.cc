/**
 * This translation unit is compiled with -ffp-contract=off (see
 * CMakeLists.txt): the rest of the build targets baseline x86-64
 * where mul+add never fuse, and a contracted FMA in any variant here
 * would break the cross-ISA bit-identity contract.
 *
 * The AVX2/AVX-512 bodies use per-function target attributes instead
 * of per-file -march flags so one binary carries every level and
 * picks at runtime.
 */

#include "kernels.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#if defined(__x86_64__) || defined(__i386__)
#define ECSSD_KERNELS_X86 1
#include <immintrin.h>
#else
#define ECSSD_KERNELS_X86 0
#endif

#include "sim/logging.hh"

namespace ecssd
{
namespace numeric
{

namespace
{

// --- Shared decode tables (mirrors int4.cc) -----------------------

struct NibblePair
{
    std::int16_t lo;
    std::int16_t hi;
};

constexpr std::int16_t
signExtendNibble(unsigned nibble)
{
    return static_cast<std::int16_t>(
        static_cast<int>((nibble & 0xf) ^ 0x8) - 0x8);
}

constexpr std::array<NibblePair, 256>
makeBytePairs()
{
    std::array<NibblePair, 256> pairs{};
    for (unsigned byte = 0; byte < 256; ++byte) {
        pairs[byte].lo = signExtendNibble(byte & 0xf);
        pairs[byte].hi = signExtendNibble(byte >> 4);
    }
    return pairs;
}

constexpr std::array<NibblePair, 256> kBytePairs = makeBytePairs();

/** Largest query tile any batch kernel accepts (register budget of
 *  the widest variant; callers tile above this). */
constexpr std::size_t kMaxQueryTile = 16;

// --- Level resolution ---------------------------------------------

/** Active level, or -1 before first resolution. */
std::atomic<int> g_activeIsa{-1};

IsaLevel
resolveRequest(const std::string &request)
{
    // ECSSD_ISA always wins: it is how tests and CI pin the kernel
    // path underneath any option set, and it is re-read on every
    // apply so a setenv between system constructions takes effect.
    const char *env = std::getenv("ECSSD_ISA");
    const std::string effective = env ? std::string(env) : request;
    const char *origin = env ? "ECSSD_ISA" : "isa request";
    if (effective.empty() || effective == "auto")
        return detectBestIsa();
    const std::optional<IsaLevel> parsed = parseIsaLevel(effective);
    if (!parsed) {
        sim::fatal("E_BAD_ISA: unknown ", origin, " value '",
                   effective,
                   "' (want scalar|vector|avx2|avx512|auto)");
    }
    if (!isaSupported(*parsed)) {
        sim::fatal("E_ISA_UNSUPPORTED: ", origin, " pins '",
                   effective, "' but this CPU cannot execute it");
    }
    return *parsed;
}

} // namespace

const char *
toString(IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar:
        return "scalar";
    case IsaLevel::VecExt:
        return "vector";
    case IsaLevel::Avx2:
        return "avx2";
    case IsaLevel::Avx512:
        return "avx512";
    }
    return "?";
}

std::optional<IsaLevel>
parseIsaLevel(std::string_view name)
{
    if (name == "scalar")
        return IsaLevel::Scalar;
    if (name == "vector")
        return IsaLevel::VecExt;
    if (name == "avx2")
        return IsaLevel::Avx2;
    if (name == "avx512")
        return IsaLevel::Avx512;
    return std::nullopt;
}

bool
isValidIsaRequest(std::string_view request)
{
    return request == "auto" || request.empty()
        || parseIsaLevel(request).has_value();
}

bool
isaSupported(IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar:
    case IsaLevel::VecExt:
        return true;
    case IsaLevel::Avx2:
#if ECSSD_KERNELS_X86
        return __builtin_cpu_supports("avx2") != 0;
#else
        return false;
#endif
    case IsaLevel::Avx512:
#if ECSSD_KERNELS_X86
        // BW for 512-bit pmaddwd, VL for the 128/256-bit mixing the
        // decode stage does.
        return __builtin_cpu_supports("avx512f") != 0
            && __builtin_cpu_supports("avx512bw") != 0
            && __builtin_cpu_supports("avx512vl") != 0;
#else
        return false;
#endif
    }
    return false;
}

IsaLevel
detectBestIsa()
{
    if (isaSupported(IsaLevel::Avx512))
        return IsaLevel::Avx512;
    if (isaSupported(IsaLevel::Avx2))
        return IsaLevel::Avx2;
    return IsaLevel::VecExt;
}

std::vector<IsaLevel>
supportedIsaLevels()
{
    std::vector<IsaLevel> levels;
    for (const IsaLevel level :
         {IsaLevel::Scalar, IsaLevel::VecExt, IsaLevel::Avx2,
          IsaLevel::Avx512}) {
        if (isaSupported(level))
            levels.push_back(level);
    }
    return levels;
}

IsaLevel
activeIsa()
{
    const int current = g_activeIsa.load(std::memory_order_acquire);
    if (current >= 0)
        return static_cast<IsaLevel>(current);
    const IsaLevel resolved = resolveRequest("auto");
    g_activeIsa.store(static_cast<int>(resolved),
                      std::memory_order_release);
    return resolved;
}

IsaLevel
applyIsaRequest(const std::string &request)
{
    const IsaLevel resolved = resolveRequest(request);
    g_activeIsa.store(static_cast<int>(resolved),
                      std::memory_order_release);
    return resolved;
}

void
setActiveIsa(IsaLevel level)
{
    if (!isaSupported(level)) {
        sim::fatal("E_ISA_UNSUPPORTED: cannot pin '", toString(level),
                   "' on this CPU");
    }
    g_activeIsa.store(static_cast<int>(level),
                      std::memory_order_release);
}

// ==================================================================
// FP32 pairwise-tree dot
// ==================================================================
//
// NaiveFpMac's adder tree pairs adjacent values level by level and
// carries an odd leftover unchanged.  The pairings are independent of
// the data, and a block of 8 consecutive products is a complete
// 3-level subtree whose root is exactly one level-3 node of the
// global tree.  So every level computes: per-8-block reductions (in
// tree order), one reduced value for the <8 tail, then the ordinary
// scalar pairwise loop over those level-3 nodes.  No operation is
// reassociated, hence bit-identical results at every level.

namespace
{

/** Reduce one 8-product block exactly in tree order. */
inline float
blockSum8Scalar(const float *a, const float *b)
{
    float p[8];
    for (int i = 0; i < 8; ++i)
        p[i] = a[i] * b[i];
    const float q0 = p[0] + p[1];
    const float q1 = p[2] + p[3];
    const float q2 = p[4] + p[5];
    const float q3 = p[6] + p[7];
    const float r0 = q0 + q1;
    const float r1 = q2 + q3;
    return r0 + r1;
}

/** Pairwise tree over a <8-product tail (its 3-level reduction). */
inline float
tailTree(const float *a, const float *b, std::size_t t)
{
    float p[8];
    for (std::size_t i = 0; i < t; ++i)
        p[i] = a[i] * b[i];
    std::size_t count = t;
    while (count > 1) {
        std::size_t next = 0;
        for (std::size_t i = 0; i + 1 < count; i += 2)
            p[next++] = p[i] + p[i + 1];
        if (count % 2 == 1)
            p[next++] = p[count - 1];
        count = next;
    }
    return p[0];
}

/**
 * The generic 8-wide block-sum body, shared by the vector-extension
 * and AVX variants: the same source compiled under different target
 * attributes lowers to SSE2 pairs, 256-bit AVX2, or AVX-512VL.
 * Two blocks per iteration; the shuffles keep every addition on
 * exactly the operand pair the scalar tree adds.
 */
#define ECSSD_BLOCK_SUMS_BODY                                          \
    do {                                                               \
        typedef float v8f32 __attribute__((vector_size(32)));          \
        std::size_t i = 0;                                             \
        for (; i + 2 <= m; i += 2) {                                   \
            v8f32 va, vb, wa, wb;                                      \
            std::memcpy(&va, a + 8 * i, 32);                           \
            std::memcpy(&vb, b + 8 * i, 32);                           \
            std::memcpy(&wa, a + 8 * i + 8, 32);                       \
            std::memcpy(&wb, b + 8 * i + 8, 32);                       \
            const v8f32 p0 = va * vb;                                  \
            const v8f32 p1 = wa * wb;                                  \
            const v8f32 even = __builtin_shufflevector(                \
                p0, p1, 0, 2, 4, 6, 8, 10, 12, 14);                    \
            const v8f32 odd = __builtin_shufflevector(                 \
                p0, p1, 1, 3, 5, 7, 9, 11, 13, 15);                    \
            const v8f32 l1 = even + odd;                               \
            const v8f32 e2 = __builtin_shufflevector(                  \
                l1, l1, 0, 2, 4, 6, 0, 2, 4, 6);                       \
            const v8f32 o2 = __builtin_shufflevector(                  \
                l1, l1, 1, 3, 5, 7, 1, 3, 5, 7);                       \
            const v8f32 l2 = e2 + o2;                                  \
            out[i] = l2[0] + l2[1];                                    \
            out[i + 1] = l2[2] + l2[3];                                \
        }                                                              \
        for (; i < m; ++i)                                             \
            out[i] = blockSum8Scalar(a + 8 * i, b + 8 * i);            \
    } while (0)

void
blockSumsVecExt(const float *a, const float *b, std::size_t m,
                float *out)
{
    ECSSD_BLOCK_SUMS_BODY;
}

#if ECSSD_KERNELS_X86

__attribute__((target("avx2"))) void
blockSumsAvx2(const float *a, const float *b, std::size_t m,
              float *out)
{
    ECSSD_BLOCK_SUMS_BODY;
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) void
blockSumsAvx512(const float *a, const float *b, std::size_t m,
                float *out)
{
    ECSSD_BLOCK_SUMS_BODY;
}

#endif // ECSSD_KERNELS_X86

#undef ECSSD_BLOCK_SUMS_BODY

void
blockSums(const float *a, const float *b, std::size_t m, float *out,
          IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar:
        for (std::size_t i = 0; i < m; ++i)
            out[i] = blockSum8Scalar(a + 8 * i, b + 8 * i);
        return;
    case IsaLevel::VecExt:
        blockSumsVecExt(a, b, m, out);
        return;
#if ECSSD_KERNELS_X86
    case IsaLevel::Avx2:
        blockSumsAvx2(a, b, m, out);
        return;
    case IsaLevel::Avx512:
        blockSumsAvx512(a, b, m, out);
        return;
#else
    default:
        blockSumsVecExt(a, b, m, out);
        return;
#endif
    }
}

} // namespace

double
pairwiseDotF32(std::span<const float> a, std::span<const float> b,
               IsaLevel level)
{
    ECSSD_ASSERT(a.size() == b.size(), "dot operand size mismatch");
    const std::size_t n = a.size();
    if (n == 0)
        return 0.0;
    const std::size_t blocks = n / 8;
    const std::size_t tail = n % 8;

    // thread_local: the candidate re-rank calls this concurrently
    // from pool workers.
    thread_local std::vector<float> level3;
    level3.resize(blocks + (tail != 0 ? 1 : 0));
    blockSums(a.data(), b.data(), blocks, level3.data(), level);
    if (tail != 0)
        level3[blocks] =
            tailTree(a.data() + 8 * blocks, b.data() + 8 * blocks,
                     tail);

    // Continue the global tree from level 3 upward: the standard
    // pairwise loop over the level-3 nodes, in place.
    std::size_t count = level3.size();
    while (count > 1) {
        std::size_t next = 0;
        for (std::size_t i = 0; i + 1 < count; i += 2)
            level3[next++] = level3[i] + level3[i + 1];
        if (count % 2 == 1)
            level3[next++] = level3[count - 1];
        count = next;
    }
    return static_cast<double>(level3[0]);
}

double
pairwiseDotF32(std::span<const float> a, std::span<const float> b)
{
    return pairwiseDotF32(a, b, activeIsa());
}

// ==================================================================
// Projection GEMV
// ==================================================================
//
// Lane-parallel over output rows k: each lane runs the scalar
// reference's exact per-output sequence (ascending d, double
// multiply then double add, no FMA), so lanes cannot differ from the
// scalar path by even one ulp.

namespace
{

void
projectGemvScalarT(const float *basis_t, std::size_t full_dim,
                   std::size_t k_count, const float *vec, float *out,
                   std::size_t k_begin)
{
    for (std::size_t k = k_begin; k < k_count; ++k) {
        double acc = 0.0;
        for (std::size_t d = 0; d < full_dim; ++d)
            acc += static_cast<double>(basis_t[d * k_count + k])
                * vec[d];
        out[k] = static_cast<float>(acc);
    }
}

void
projectGemvVecExt(const float *basis_t, std::size_t full_dim,
                  std::size_t k_count, const float *vec, float *out)
{
    typedef float v4f32 __attribute__((vector_size(16)));
    typedef double v4f64 __attribute__((vector_size(32)));
    std::size_t k = 0;
    for (; k + 4 <= k_count; k += 4) {
        v4f64 acc = {0.0, 0.0, 0.0, 0.0};
        for (std::size_t d = 0; d < full_dim; ++d) {
            const double x = static_cast<double>(vec[d]);
            const v4f64 xs = {x, x, x, x};
            v4f32 wf;
            std::memcpy(&wf, basis_t + d * k_count + k, 16);
            const v4f64 w = __builtin_convertvector(wf, v4f64);
            acc = acc + w * xs;
        }
        for (int j = 0; j < 4; ++j)
            out[k + static_cast<std::size_t>(j)] =
                static_cast<float>(acc[j]);
    }
    projectGemvScalarT(basis_t, full_dim, k_count, vec, out, k);
}

#if ECSSD_KERNELS_X86

__attribute__((target("avx2"))) void
projectGemvAvx2(const float *basis_t, std::size_t full_dim,
                std::size_t k_count, const float *vec, float *out)
{
    std::size_t k = 0;
    for (; k + 8 <= k_count; k += 8) {
        __m256d acc0 = _mm256_setzero_pd();
        __m256d acc1 = _mm256_setzero_pd();
        for (std::size_t d = 0; d < full_dim; ++d) {
            const __m256d x =
                _mm256_set1_pd(static_cast<double>(vec[d]));
            const float *w = basis_t + d * k_count + k;
            const __m256d w0 = _mm256_cvtps_pd(_mm_loadu_ps(w));
            const __m256d w1 = _mm256_cvtps_pd(_mm_loadu_ps(w + 4));
            // Explicit mul then add: contraction into FMA would
            // change the rounding the scalar reference performs.
            acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(w0, x));
            acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(w1, x));
        }
        _mm_storeu_ps(out + k, _mm256_cvtpd_ps(acc0));
        _mm_storeu_ps(out + k + 4, _mm256_cvtpd_ps(acc1));
    }
    projectGemvScalarT(basis_t, full_dim, k_count, vec, out, k);
}

__attribute__((target("avx512f"))) void
projectGemvAvx512(const float *basis_t, std::size_t full_dim,
                  std::size_t k_count, const float *vec, float *out)
{
    std::size_t k = 0;
    for (; k + 16 <= k_count; k += 16) {
        __m512d acc0 = _mm512_setzero_pd();
        __m512d acc1 = _mm512_setzero_pd();
        for (std::size_t d = 0; d < full_dim; ++d) {
            const __m512d x =
                _mm512_set1_pd(static_cast<double>(vec[d]));
            const float *w = basis_t + d * k_count + k;
            const __m512d w0 = _mm512_cvtps_pd(_mm256_loadu_ps(w));
            const __m512d w1 =
                _mm512_cvtps_pd(_mm256_loadu_ps(w + 8));
            acc0 = _mm512_add_pd(acc0, _mm512_mul_pd(w0, x));
            acc1 = _mm512_add_pd(acc1, _mm512_mul_pd(w1, x));
        }
        _mm256_storeu_ps(out + k, _mm512_cvtpd_ps(acc0));
        _mm256_storeu_ps(out + k + 8, _mm512_cvtpd_ps(acc1));
    }
    projectGemvScalarT(basis_t, full_dim, k_count, vec, out, k);
}

#endif // ECSSD_KERNELS_X86

} // namespace

void
projectGemv(std::span<const float> basisT, std::size_t full_dim,
            std::size_t shrunk_dim, std::span<const float> vec,
            float *out, IsaLevel level)
{
    ECSSD_ASSERT(basisT.size() == full_dim * shrunk_dim
                     && vec.size() == full_dim,
                 "projectGemv operand shape mismatch");
    switch (level) {
    case IsaLevel::Scalar:
        projectGemvScalarT(basisT.data(), full_dim, shrunk_dim,
                           vec.data(), out, 0);
        return;
    case IsaLevel::VecExt:
        projectGemvVecExt(basisT.data(), full_dim, shrunk_dim,
                          vec.data(), out);
        return;
#if ECSSD_KERNELS_X86
    case IsaLevel::Avx2:
        projectGemvAvx2(basisT.data(), full_dim, shrunk_dim,
                        vec.data(), out);
        return;
    case IsaLevel::Avx512:
        projectGemvAvx512(basisT.data(), full_dim, shrunk_dim,
                          vec.data(), out);
        return;
#else
    default:
        projectGemvVecExt(basisT.data(), full_dim, shrunk_dim,
                          vec.data(), out);
        return;
#endif
    }
}

// ==================================================================
// Quantization
// ==================================================================

namespace
{

/** Exact scalar reference (mirrors int4.cc's quantizeValue). */
inline int
quantizeValueScalar(float v, float scale)
{
    if (scale == 0.0f)
        return 0;
    const int q = static_cast<int>(std::lround(v / scale));
    return std::clamp(q, -7, 7);
}

void
quantizePackScalar(const float *values, std::size_t n, float scale,
                   std::uint8_t *out, std::size_t begin)
{
    for (std::size_t i = begin; i < n; i += 2) {
        const unsigned lo = static_cast<unsigned>(
                                quantizeValueScalar(values[i], scale))
            & 0xf;
        unsigned hi = 0;
        if (i + 1 < n)
            hi = static_cast<unsigned>(
                     quantizeValueScalar(values[i + 1], scale))
                & 0xf;
        out[i / 2] = static_cast<std::uint8_t>(lo | (hi << 4));
    }
}

#if ECSSD_KERNELS_X86

/**
 * lround() rounds half away from zero; SSE/AVX only round to
 * nearest-even.  Emulated exactly: clamp to [-7, 7] first (identical
 * final result, because every |x| >= 7 lands on ±7 either way),
 * truncate, then add ±1 where |frac| >= 0.5.  The float divide is
 * the same IEEE operation the scalar path performs.
 */
__attribute__((target("avx2"))) __m256i
quantizeLanesAvx2(__m256 v, __m256 scale)
{
    const __m256 seven = _mm256_set1_ps(7.0f);
    const __m256 x = _mm256_min_ps(
        _mm256_max_ps(_mm256_div_ps(v, scale),
                      _mm256_sub_ps(_mm256_setzero_ps(), seven)),
        seven);
    const __m256 trunc = _mm256_round_ps(
        x, _MM_FROUND_TO_ZERO | _MM_FROUND_NO_EXC);
    const __m256 frac = _mm256_sub_ps(x, trunc);
    const __m256 abs_mask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    const __m256 half_up = _mm256_cmp_ps(
        _mm256_and_ps(frac, abs_mask), _mm256_set1_ps(0.5f),
        _CMP_GE_OQ);
    const __m256 sign_mask =
        _mm256_castsi256_ps(_mm256_set1_epi32(
            static_cast<int>(0x80000000u)));
    const __m256 signed_one = _mm256_or_ps(
        _mm256_and_ps(x, sign_mask), _mm256_set1_ps(1.0f));
    const __m256 rounded = _mm256_add_ps(
        trunc, _mm256_and_ps(half_up, signed_one));
    return _mm256_cvttps_epi32(rounded);
}

__attribute__((target("avx2"))) void
quantizePackAvx2(const float *values, std::size_t n, float scale,
                 std::uint8_t *out)
{
    if (scale == 0.0f) {
        std::memset(out, 0, (n + 1) / 2);
        return;
    }
    const __m256 vscale = _mm256_set1_ps(scale);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m256i q0 = quantizeLanesAvx2(
            _mm256_loadu_ps(values + i), vscale);
        const __m256i q1 = quantizeLanesAvx2(
            _mm256_loadu_ps(values + i + 8), vscale);
        // 16 int32 -> 16 ordered int8.
        const __m256i p16 = _mm256_permute4x64_epi64(
            _mm256_packs_epi32(q0, q1), 0xD8);
        const __m128i p8 = _mm_packs_epi16(
            _mm256_castsi256_si128(p16),
            _mm256_extracti128_si256(p16, 1));
        // Pair nibbles: even byte low, odd byte high.
        const __m128i nib = _mm_set1_epi8(0x0f);
        const __m128i evens =
            _mm_and_si128(_mm_and_si128(p8, nib),
                          _mm_set1_epi16(0x00ff));
        const __m128i odds = _mm_and_si128(
            _mm_srli_epi16(_mm_and_si128(p8, nib), 8), nib);
        const __m128i packed16 =
            _mm_or_si128(evens, _mm_slli_epi16(odds, 4));
        const __m128i p8out = _mm_packus_epi16(packed16, packed16);
        _mm_storel_epi64(reinterpret_cast<__m128i *>(out + i / 2),
                         p8out);
    }
    quantizePackScalar(values, n, scale, out, i);
}

__attribute__((target("avx2"))) float
maxAbsAvx2(const float *values, std::size_t n)
{
    const __m256 abs_mask =
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
    __m256 m = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        m = _mm256_max_ps(
            m, _mm256_and_ps(_mm256_loadu_ps(values + i), abs_mask));
    }
    alignas(32) float lanes[8];
    _mm256_store_ps(lanes, m);
    float best = 0.0f;
    for (int j = 0; j < 8; ++j)
        best = std::max(best, lanes[j]);
    for (; i < n; ++i)
        best = std::max(best, std::fabs(values[i]));
    return best;
}

#endif // ECSSD_KERNELS_X86

} // namespace

void
quantizePackSpan(std::span<const float> values, float scale,
                 std::uint8_t *out, IsaLevel level)
{
#if ECSSD_KERNELS_X86
    // The vector-extension level has no distinct quantize body (the
    // branchy half-away rounding does not pay off below AVX2); it
    // shares the scalar reference, which is trivially bit-identical.
    if (level == IsaLevel::Avx2 || level == IsaLevel::Avx512) {
        quantizePackAvx2(values.data(), values.size(), scale, out);
        return;
    }
#else
    (void)level;
#endif
    quantizePackScalar(values.data(), values.size(), scale, out, 0);
}

float
maxAbsSpan(std::span<const float> values, IsaLevel level)
{
#if ECSSD_KERNELS_X86
    if (level == IsaLevel::Avx2 || level == IsaLevel::Avx512)
        return maxAbsAvx2(values.data(), values.size());
#else
    (void)level;
#endif
    float m = 0.0f;
    for (const float v : values)
        m = std::max(m, std::fabs(v));
    return m;
}

// ==================================================================
// CFP pre-alignment
// ==================================================================
//
// Both preAlign passes are pure integer manipulation of the float
// bit patterns (field extraction, shifts, compares), so every level
// produces identical bits with no rounding caveats.  The scalar
// bodies are the original cfp32.cc / cfp16.cc loops verbatim; the
// vector bodies compute the same per-lane values with well-defined
// shifts (counts masked to [0, 31] and the >= 32 case selected to
// zero explicitly, matching the scalar semantics).  One generic
// vector-extension body per kernel is instantiated at the VecExt,
// AVX2 and AVX-512 levels via target attributes, like the pairwise
// block-sum body above.

namespace
{

inline std::uint32_t
f32Bits(float v)
{
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    return bits;
}

constexpr std::uint32_t kF32ExpLanes = 0xffu;
constexpr std::uint32_t kF32FracMask = 0x7fffffu;
constexpr std::uint32_t kF32HiddenOne = 1u << 23;
/** Mirrors of the cfp32.hh / cfp16.hh format constants (kernels.cc
 *  stays header-independent of the formats it serves). */
constexpr std::uint32_t kCfp32CompBits = 7;
constexpr std::uint32_t kCfp16CompBits = 4;
constexpr std::uint32_t kCfp16MantBits = 10;
/** FP32 mantissa bits dropped by the CFP16 11-bit rounding. */
constexpr std::uint32_t kCfp16DropBits = 13;

std::uint32_t
cfp32MaxExponentScalar(const float *values, std::size_t n,
                       std::size_t begin, std::uint32_t emax)
{
    for (std::size_t i = begin; i < n; ++i) {
        const std::uint32_t exp = (f32Bits(values[i]) >> 23)
            & kF32ExpLanes;
        if (exp == kF32ExpLanes)
            sim::fatal("CFP32 pre-alignment rejects NaN/Inf input");
        emax = std::max(emax, exp);
    }
    return emax;
}

std::uint64_t
cfp32AlignScalar(const float *values, std::size_t n,
                 std::uint32_t emax, std::uint32_t *out,
                 std::size_t begin)
{
    std::uint64_t lossy = 0;
    for (std::size_t i = begin; i < n; ++i) {
        const std::uint32_t bits = f32Bits(values[i]);
        const std::uint32_t exp = (bits >> 23) & kF32ExpLanes;
        const std::uint32_t m24 =
            exp == 0 ? 0 : (kF32HiddenOne | (bits & kF32FracMask));
        std::uint32_t significand = 0;
        if (m24 != 0) {
            const std::uint32_t gap = emax - exp;
            const std::uint64_t promoted =
                static_cast<std::uint64_t>(m24)
                << kCfp32CompBits;
            if (gap >= 63) {
                ++lossy;
            } else {
                significand =
                    static_cast<std::uint32_t>(promoted >> gap);
                if ((promoted & ((std::uint64_t(1) << gap) - 1)) != 0)
                    ++lossy;
            }
        }
        out[2 * i] = bits >> 31;
        out[2 * i + 1] = significand;
    }
    return lossy;
}

std::uint32_t
cfp16MaxExponentScalar(const float *values, std::size_t n,
                       std::size_t begin, std::uint32_t emax)
{
    for (std::size_t i = begin; i < n; ++i) {
        const std::uint32_t bits = f32Bits(values[i]);
        const std::uint32_t exp = (bits >> 23) & kF32ExpLanes;
        if (exp == kF32ExpLanes)
            sim::fatal("CFP16 pre-alignment rejects NaN/Inf input");
        if (exp == 0)
            continue;
        const std::uint32_t m24 = kF32HiddenOne | (bits & kF32FracMask);
        std::uint32_t m11 =
            (m24 + (1u << (kCfp16DropBits - 1))) >> kCfp16DropBits;
        std::uint32_t rexp = exp;
        if (m11 >> (kCfp16MantBits + 1)) {
            m11 >>= 1;
            ++rexp;
        }
        emax = std::max(emax, rexp);
    }
    return emax;
}

std::uint64_t
cfp16AlignScalar(const float *values, std::size_t n,
                 std::uint32_t emax, std::uint16_t *out,
                 std::size_t begin)
{
    std::uint64_t lossy_count = 0;
    for (std::size_t i = begin; i < n; ++i) {
        const std::uint32_t bits = f32Bits(values[i]);
        const std::uint32_t exp = (bits >> 23) & kF32ExpLanes;
        std::uint16_t significand = 0;
        bool lossy = false;
        if (exp != 0) {
            const std::uint32_t m24 =
                kF32HiddenOne | (bits & kF32FracMask);
            std::uint32_t m11 =
                (m24 + (1u << (kCfp16DropBits - 1))) >> kCfp16DropBits;
            std::uint32_t rexp = exp;
            if (m11 >> (kCfp16MantBits + 1)) {
                m11 >>= 1;
                ++rexp;
            }
            lossy = (m24 & ((1u << kCfp16DropBits) - 1)) != 0;
            const std::uint32_t gap = emax - rexp;
            const std::uint64_t promoted =
                static_cast<std::uint64_t>(m11)
                << kCfp16CompBits;
            if (gap >= 31) {
                lossy = true;
            } else {
                significand = static_cast<std::uint16_t>(
                    promoted >> gap);
                lossy = lossy
                    || (promoted & ((std::uint64_t(1) << gap) - 1))
                        != 0;
            }
        }
        if (lossy)
            ++lossy_count;
        out[2 * i] = static_cast<std::uint16_t>(bits >> 31);
        out[2 * i + 1] = significand;
    }
    return lossy_count;
}

/**
 * 8-lane pass-1 body shared by the CFP32 and CFP16 variants: extract
 * the biased exponents, trap NaN/Inf, and lane-max either the raw
 * exponents (kCfp16 == 0) or the post-rounding exponents
 * (kCfp16 == 1, where a significand rounding carry bumps the lane).
 * Lanes with a zero exponent contribute 0, exactly like the scalar
 * loop skipping them.
 */
#define ECSSD_CFP_EMAX_BODY(kCfp16, kWhat)                             \
    do {                                                               \
        typedef std::uint32_t v8u32 __attribute__((vector_size(32)));  \
        typedef std::int32_t v8i32 __attribute__((vector_size(32)));   \
        v8u32 vmax = {};                                               \
        v8i32 bad = {};                                                \
        std::size_t i = 0;                                             \
        for (; i + 8 <= n; i += 8) {                                   \
            v8u32 bits;                                                \
            std::memcpy(&bits, values + i, 32);                        \
            const v8u32 exp = (bits >> 23) & kF32ExpLanes;             \
            bad |= (exp == kF32ExpLanes);                              \
            v8u32 cand = exp;                                          \
            if (kCfp16) {                                              \
                const v8u32 m24 =                                      \
                    kF32HiddenOne | (bits & kF32FracMask);             \
                const v8u32 m11 =                                      \
                    (m24 + (1u << (kCfp16DropBits - 1)))               \
                    >> kCfp16DropBits;                                 \
                const v8u32 carry =                                    \
                    m11 >> (kCfp16MantBits + 1);                    \
                cand = (exp + carry)                                   \
                    & reinterpret_cast<v8u32>(exp != 0);               \
            }                                                          \
            const v8u32 gt = reinterpret_cast<v8u32>(cand > vmax);     \
            vmax = vmax ^ ((vmax ^ cand) & gt);                        \
        }                                                              \
        std::int32_t any_bad = 0;                                      \
        for (int j = 0; j < 8; ++j) {                                  \
            any_bad |= bad[j];                                         \
            emax = std::max(emax, vmax[j]);                            \
        }                                                              \
        if (any_bad != 0)                                              \
            sim::fatal(kWhat                                           \
                       " pre-alignment rejects NaN/Inf input");        \
        return kCfp16                                                  \
            ? cfp16MaxExponentScalar(values, n, i, emax)               \
            : cfp32MaxExponentScalar(values, n, i, emax);              \
    } while (0)

std::uint32_t
cfp32MaxExponentVecExt(const float *values, std::size_t n,
                       std::uint32_t emax)
{
    ECSSD_CFP_EMAX_BODY(0, "CFP32");
}

std::uint32_t
cfp16MaxExponentVecExt(const float *values, std::size_t n,
                       std::uint32_t emax)
{
    ECSSD_CFP_EMAX_BODY(1, "CFP16");
}

#if ECSSD_KERNELS_X86

__attribute__((target("avx2"))) std::uint32_t
cfp32MaxExponentAvx2(const float *values, std::size_t n,
                     std::uint32_t emax)
{
    ECSSD_CFP_EMAX_BODY(0, "CFP32");
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) std::uint32_t
cfp32MaxExponentAvx512(const float *values, std::size_t n,
                       std::uint32_t emax)
{
    ECSSD_CFP_EMAX_BODY(0, "CFP32");
}

__attribute__((target("avx2"))) std::uint32_t
cfp16MaxExponentAvx2(const float *values, std::size_t n,
                     std::uint32_t emax)
{
    ECSSD_CFP_EMAX_BODY(1, "CFP16");
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) std::uint32_t
cfp16MaxExponentAvx512(const float *values, std::size_t n,
                       std::uint32_t emax)
{
    ECSSD_CFP_EMAX_BODY(1, "CFP16");
}

#endif // ECSSD_KERNELS_X86

#undef ECSSD_CFP_EMAX_BODY

/**
 * 8-lane CFP32 pass-2 body.  The scalar branch structure collapses
 * to one straight-line select chain: since the promoted significand
 * occupies 31 bits, every gap >= 31 shifts it to zero and drops all
 * of it, so the gap >= 63 special case and the in-range path agree
 * on (zero, lossy) for the whole [31, inf) range.  Shift counts are
 * masked to [0, 31] and the >= 32 case is selected to zero to keep
 * the C shifts well-defined.
 */
#define ECSSD_CFP32_ALIGN_BODY                                         \
    do {                                                               \
        typedef std::uint32_t v8u32 __attribute__((vector_size(32)));  \
        v8u32 lossy_acc = {};                                          \
        std::size_t i = 0;                                             \
        const v8u32 vemax = emax - (v8u32){};                          \
        for (; i + 8 <= n; i += 8) {                                   \
            v8u32 bits;                                                \
            std::memcpy(&bits, values + i, 32);                        \
            const v8u32 sign = bits >> 31;                             \
            const v8u32 exp = (bits >> 23) & kF32ExpLanes;             \
            const v8u32 nonzero =                                      \
                reinterpret_cast<v8u32>(exp != 0);                     \
            const v8u32 m24 =                                          \
                (kF32HiddenOne | (bits & kF32FracMask)) & nonzero;     \
            const v8u32 gap = (vemax - exp) & nonzero;                 \
            const v8u32 promoted = m24 << kCfp32CompBits;       \
            const v8u32 in_range =                                     \
                reinterpret_cast<v8u32>(gap < 32);                     \
            const v8u32 gsh = gap & 31;                                \
            const v8u32 sig = (promoted >> gsh) & in_range;            \
            const v8u32 back = (sig << gsh) & in_range;                \
            const v8u32 lossy =                                        \
                reinterpret_cast<v8u32>(back != promoted);             \
            lossy_acc += lossy & 1;                                    \
            const v8u32 lo = __builtin_shufflevector(                  \
                sign, sig, 0, 8, 1, 9, 2, 10, 3, 11);                  \
            const v8u32 hi = __builtin_shufflevector(                  \
                sign, sig, 4, 12, 5, 13, 6, 14, 7, 15);                \
            std::memcpy(out + 2 * i, &lo, 32);                         \
            std::memcpy(out + 2 * i + 8, &hi, 32);                     \
        }                                                              \
        std::uint64_t total = 0;                                       \
        for (int j = 0; j < 8; ++j)                                    \
            total += lossy_acc[j];                                     \
        return total + cfp32AlignScalar(values, n, emax, out, i);      \
    } while (0)

std::uint64_t
cfp32AlignVecExt(const float *values, std::size_t n,
                 std::uint32_t emax, std::uint32_t *out)
{
    ECSSD_CFP32_ALIGN_BODY;
}

#if ECSSD_KERNELS_X86

__attribute__((target("avx2"))) std::uint64_t
cfp32AlignAvx2(const float *values, std::size_t n, std::uint32_t emax,
               std::uint32_t *out)
{
    ECSSD_CFP32_ALIGN_BODY;
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) std::uint64_t
cfp32AlignAvx512(const float *values, std::size_t n,
                 std::uint32_t emax, std::uint32_t *out)
{
    ECSSD_CFP32_ALIGN_BODY;
}

#endif // ECSSD_KERNELS_X86

#undef ECSSD_CFP32_ALIGN_BODY

/**
 * 8-lane CFP16 pass-2 body: recomputes the pass-1 rounding (cheap
 * integer ops) instead of carrying per-element state, then aligns
 * like the CFP32 body.  The promoted significand is 15 bits, so
 * every gap >= 15 zeroes it and the scalar gap >= 31 special case
 * again agrees with the straight-line select chain.
 */
#define ECSSD_CFP16_ALIGN_BODY                                         \
    do {                                                               \
        typedef std::uint32_t v8u32 __attribute__((vector_size(32)));  \
        typedef std::uint16_t v8u16 __attribute__((vector_size(16)));  \
        typedef std::uint16_t v16u16 __attribute__((vector_size(32))); \
        v8u32 lossy_acc = {};                                          \
        std::size_t i = 0;                                             \
        const v8u32 vemax = emax - (v8u32){};                          \
        for (; i + 8 <= n; i += 8) {                                   \
            v8u32 bits;                                                \
            std::memcpy(&bits, values + i, 32);                        \
            const v8u32 sign = bits >> 31;                             \
            const v8u32 exp = (bits >> 23) & kF32ExpLanes;             \
            const v8u32 nonzero =                                      \
                reinterpret_cast<v8u32>(exp != 0);                     \
            const v8u32 m24 =                                          \
                (kF32HiddenOne | (bits & kF32FracMask)) & nonzero;     \
            const v8u32 m11r =                                         \
                (m24 + (1u << (kCfp16DropBits - 1)))                   \
                >> kCfp16DropBits;                                     \
            const v8u32 carry = m11r >> (kCfp16MantBits + 1);       \
            const v8u32 m11 = (m11r >> carry) & nonzero;               \
            const v8u32 rexp = (exp + carry) & nonzero;                \
            const v8u32 round_lossy = reinterpret_cast<v8u32>(         \
                (m24 & ((1u << kCfp16DropBits) - 1)) != 0);            \
            const v8u32 gap = (vemax - rexp) & nonzero;                \
            const v8u32 promoted = m11 << kCfp16CompBits;       \
            const v8u32 in_range =                                     \
                reinterpret_cast<v8u32>(gap < 32);                     \
            const v8u32 gsh = gap & 31;                                \
            const v8u32 sig = (promoted >> gsh) & in_range;            \
            const v8u32 back = (sig << gsh) & in_range;                \
            const v8u32 shift_lossy =                                  \
                reinterpret_cast<v8u32>(back != promoted);             \
            lossy_acc += (round_lossy | shift_lossy) & 1;              \
            const v8u16 sign16 =                                       \
                __builtin_convertvector(sign, v8u16);                  \
            const v8u16 sig16 = __builtin_convertvector(sig, v8u16);   \
            const v16u16 pairs = __builtin_shufflevector(              \
                sign16, sig16, 0, 8, 1, 9, 2, 10, 3, 11, 4, 12, 5,     \
                13, 6, 14, 7, 15);                                     \
            std::memcpy(out + 2 * i, &pairs, 32);                      \
        }                                                              \
        std::uint64_t total = 0;                                       \
        for (int j = 0; j < 8; ++j)                                    \
            total += lossy_acc[j];                                     \
        return total + cfp16AlignScalar(values, n, emax, out, i);      \
    } while (0)

std::uint64_t
cfp16AlignVecExt(const float *values, std::size_t n,
                 std::uint32_t emax, std::uint16_t *out)
{
    ECSSD_CFP16_ALIGN_BODY;
}

#if ECSSD_KERNELS_X86

__attribute__((target("avx2"))) std::uint64_t
cfp16AlignAvx2(const float *values, std::size_t n, std::uint32_t emax,
               std::uint16_t *out)
{
    ECSSD_CFP16_ALIGN_BODY;
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) std::uint64_t
cfp16AlignAvx512(const float *values, std::size_t n,
                 std::uint32_t emax, std::uint16_t *out)
{
    ECSSD_CFP16_ALIGN_BODY;
}

#endif // ECSSD_KERNELS_X86

#undef ECSSD_CFP16_ALIGN_BODY

} // namespace

std::uint32_t
cfp32MaxExponent(std::span<const float> values, IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar:
        return cfp32MaxExponentScalar(values.data(), values.size(), 0,
                                      0);
    case IsaLevel::VecExt:
        return cfp32MaxExponentVecExt(values.data(), values.size(),
                                      0);
#if ECSSD_KERNELS_X86
    case IsaLevel::Avx2:
        return cfp32MaxExponentAvx2(values.data(), values.size(), 0);
    case IsaLevel::Avx512:
        return cfp32MaxExponentAvx512(values.data(), values.size(),
                                      0);
#else
    default:
        return cfp32MaxExponentVecExt(values.data(), values.size(),
                                      0);
#endif
    }
    return cfp32MaxExponentScalar(values.data(), values.size(), 0, 0);
}

std::uint64_t
cfp32AlignSpan(std::span<const float> values, std::uint32_t emax,
               std::uint32_t *out, IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar:
        return cfp32AlignScalar(values.data(), values.size(), emax,
                                out, 0);
    case IsaLevel::VecExt:
        return cfp32AlignVecExt(values.data(), values.size(), emax,
                                out);
#if ECSSD_KERNELS_X86
    case IsaLevel::Avx2:
        return cfp32AlignAvx2(values.data(), values.size(), emax,
                              out);
    case IsaLevel::Avx512:
        return cfp32AlignAvx512(values.data(), values.size(), emax,
                                out);
#else
    default:
        return cfp32AlignVecExt(values.data(), values.size(), emax,
                                out);
#endif
    }
    return cfp32AlignScalar(values.data(), values.size(), emax, out,
                            0);
}

std::uint32_t
cfp16MaxExponent(std::span<const float> values, IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar:
        return cfp16MaxExponentScalar(values.data(), values.size(), 0,
                                      0);
    case IsaLevel::VecExt:
        return cfp16MaxExponentVecExt(values.data(), values.size(),
                                      0);
#if ECSSD_KERNELS_X86
    case IsaLevel::Avx2:
        return cfp16MaxExponentAvx2(values.data(), values.size(), 0);
    case IsaLevel::Avx512:
        return cfp16MaxExponentAvx512(values.data(), values.size(),
                                      0);
#else
    default:
        return cfp16MaxExponentVecExt(values.data(), values.size(),
                                      0);
#endif
    }
    return cfp16MaxExponentScalar(values.data(), values.size(), 0, 0);
}

std::uint64_t
cfp16AlignSpan(std::span<const float> values, std::uint32_t emax,
               std::uint16_t *out, IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar:
        return cfp16AlignScalar(values.data(), values.size(), emax,
                                out, 0);
    case IsaLevel::VecExt:
        return cfp16AlignVecExt(values.data(), values.size(), emax,
                                out);
#if ECSSD_KERNELS_X86
    case IsaLevel::Avx2:
        return cfp16AlignAvx2(values.data(), values.size(), emax,
                              out);
    case IsaLevel::Avx512:
        return cfp16AlignAvx512(values.data(), values.size(), emax,
                                out);
#else
    default:
        return cfp16AlignVecExt(values.data(), values.size(), emax,
                                out);
#endif
    }
    return cfp16AlignScalar(values.data(), values.size(), emax, out,
                            0);
}

// ==================================================================
// INT4 LUT kernels
// ==================================================================

namespace
{

std::int64_t
rowDotScalar(const std::uint8_t *row, const std::int16_t *feature,
             std::size_t bytes)
{
    std::int32_t acc = 0;
    for (std::size_t b = 0; b < bytes; ++b) {
        const NibblePair pair = kBytePairs[row[b]];
        acc += static_cast<std::int32_t>(pair.lo) * feature[2 * b]
            + static_cast<std::int32_t>(pair.hi) * feature[2 * b + 1];
    }
    return acc;
}

std::int64_t
rowDotVecExt(const std::uint8_t *row, const std::int16_t *feature,
             std::size_t bytes)
{
    typedef std::uint8_t v16u8 __attribute__((vector_size(16)));
    typedef std::int8_t v16i8 __attribute__((vector_size(16)));
    typedef std::int16_t v8i16 __attribute__((vector_size(16)));
    typedef std::int32_t v8i32 __attribute__((vector_size(32)));
    v8i32 acc = {};
    std::size_t b = 0;
    for (; b + 16 <= bytes; b += 16) {
        // Branchless in-register decode, mirroring the AVX2 body:
        // split nibbles, interleave into widened-feature order, and
        // sign-extend via (x ^ 8) - 8.
        v16u8 packed;
        std::memcpy(&packed, row + b, 16);
        const v16u8 lo = packed & 0x0f;
        const v16u8 hi = packed >> 4;
        v16i8 w01 = reinterpret_cast<v16i8>(__builtin_shufflevector(
            lo, hi, 0, 16, 1, 17, 2, 18, 3, 19, 4, 20, 5, 21, 6, 22,
            7, 23));
        v16i8 w23 = reinterpret_cast<v16i8>(__builtin_shufflevector(
            lo, hi, 8, 24, 9, 25, 10, 26, 11, 27, 12, 28, 13, 29, 14,
            30, 15, 31));
        w01 = (w01 ^ 8) - 8;
        w23 = (w23 ^ 8) - 8;
        const v8i16 w0 = __builtin_convertvector(
            __builtin_shufflevector(w01, w01, 0, 1, 2, 3, 4, 5, 6, 7),
            v8i16);
        const v8i16 w1 = __builtin_convertvector(
            __builtin_shufflevector(w01, w01, 8, 9, 10, 11, 12, 13,
                                    14, 15),
            v8i16);
        const v8i16 w2 = __builtin_convertvector(
            __builtin_shufflevector(w23, w23, 0, 1, 2, 3, 4, 5, 6, 7),
            v8i16);
        const v8i16 w3 = __builtin_convertvector(
            __builtin_shufflevector(w23, w23, 8, 9, 10, 11, 12, 13,
                                    14, 15),
            v8i16);
        const v8i16 ws[4] = {w0, w1, w2, w3};
        for (std::size_t j = 0; j < 4; ++j) {
            v8i16 f;
            std::memcpy(&f, feature + 2 * b + 8 * j, 16);
            acc = acc
                + __builtin_convertvector(ws[j], v8i32)
                    * __builtin_convertvector(f, v8i32);
        }
    }
    std::int64_t total = 0;
    for (int j = 0; j < 8; ++j)
        total += acc[j];
    for (; b < bytes; ++b) {
        const NibblePair pair = kBytePairs[row[b]];
        total += static_cast<std::int64_t>(pair.lo) * feature[2 * b]
            + static_cast<std::int64_t>(pair.hi)
                * feature[2 * b + 1];
    }
    return total;
}

#if ECSSD_KERNELS_X86

/**
 * Decode 16 packed bytes to 32 sign-extended int8 nibble values in
 * widened-feature order: unpack interleaves (lo0,hi0,lo1,hi1,...),
 * and (x ^ 8) - 8 sign-extends all 16 lanes branchlessly.
 */
__attribute__((target("avx2"))) inline void
decode16Avx2(const std::uint8_t *p, __m256i &w0, __m256i &w1)
{
    const __m128i nib = _mm_set1_epi8(0x0f);
    const __m128i k8 = _mm_set1_epi8(8);
    const __m128i bytes16 =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(p));
    const __m128i lo = _mm_and_si128(bytes16, nib);
    const __m128i hi =
        _mm_and_si128(_mm_srli_epi16(bytes16, 4), nib);
    __m128i w01 = _mm_unpacklo_epi8(lo, hi); // slots 0..15
    __m128i w23 = _mm_unpackhi_epi8(lo, hi); // slots 16..31
    w01 = _mm_sub_epi8(_mm_xor_si128(w01, k8), k8);
    w23 = _mm_sub_epi8(_mm_xor_si128(w23, k8), k8);
    w0 = _mm256_cvtepi8_epi16(w01);
    w1 = _mm256_cvtepi8_epi16(w23);
}

/**
 * Horizontal sum of 8 int32 lanes, reduced *in int32*.  Safe under
 * the kInt32SafeCols gate every SIMD caller sits behind: the sum of
 * |products| over ALL lanes is <= 49 * cols < 2^31, and |a + b| <=
 * |a| + |b| bounds every intermediate pairwise add by that same
 * total — no reduction step can overflow.
 */
__attribute__((target("avx2"))) inline std::int64_t
laneSum256(__m256i acc)
{
    const __m128i quad = _mm_add_epi32(
        _mm256_castsi256_si128(acc),
        _mm256_extracti128_si256(acc, 1));
    const __m128i pair =
        _mm_add_epi32(quad, _mm_shuffle_epi32(quad, 0x4e));
    const __m128i single =
        _mm_add_epi32(pair, _mm_shuffle_epi32(pair, 0xb1));
    return _mm_cvtsi128_si32(single);
}

__attribute__((target("avx2"))) std::int64_t
rowDotAvx2(const std::uint8_t *row, const std::int16_t *feature,
           std::size_t bytes)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t b = 0;
    for (; b + 16 <= bytes; b += 16) {
        __m256i w0, w1;
        decode16Avx2(row + b, w0, w1);
        const __m256i f0 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(feature + 2 * b));
        const __m256i f1 = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(feature + 2 * b + 16));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(w0, f0));
        acc = _mm256_add_epi32(acc, _mm256_madd_epi16(w1, f1));
    }
    std::int64_t total = laneSum256(acc);
    for (; b < bytes; ++b) {
        const NibblePair pair = kBytePairs[row[b]];
        total += static_cast<std::int64_t>(pair.lo) * feature[2 * b]
            + static_cast<std::int64_t>(pair.hi)
                * feature[2 * b + 1];
    }
    return total;
}

__attribute__((target("avx2"))) void
rowDotBatchAvx2(const std::uint8_t *row, const std::int16_t *features,
                std::size_t query_count, std::size_t stride,
                std::size_t bytes, std::int64_t *out)
{
    __m256i acc[kMaxQueryTile];
    for (std::size_t q = 0; q < query_count; ++q)
        acc[q] = _mm256_setzero_si256();
    std::size_t b = 0;
    for (; b + 16 <= bytes; b += 16) {
        __m256i w0, w1;
        decode16Avx2(row + b, w0, w1);
        for (std::size_t q = 0; q < query_count; ++q) {
            const std::int16_t *f = features + q * stride + 2 * b;
            const __m256i f0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(f));
            const __m256i f1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(f + 16));
            acc[q] = _mm256_add_epi32(acc[q],
                                      _mm256_madd_epi16(w0, f0));
            acc[q] = _mm256_add_epi32(acc[q],
                                      _mm256_madd_epi16(w1, f1));
        }
    }
    for (std::size_t q = 0; q < query_count; ++q)
        out[q] = laneSum256(acc[q]);
    for (; b < bytes; ++b) {
        const NibblePair pair = kBytePairs[row[b]];
        for (std::size_t q = 0; q < query_count; ++q) {
            const std::int16_t *f = features + q * stride;
            out[q] += static_cast<std::int64_t>(pair.lo) * f[2 * b]
                + static_cast<std::int64_t>(pair.hi) * f[2 * b + 1];
        }
    }
}

/**
 * Decode 32 packed bytes into two 512-bit int16 vectors.  The
 * 256-bit unpack interleaves within 128-bit lanes, so the widened
 * halves come out slot-permuted: w0 holds slots [0..15 | 32..47],
 * w1 holds [16..31 | 48..63].  The matching feature loads below
 * apply the same permutation with two 256-bit loads each.
 */
__attribute__((target("avx512f,avx512bw,avx512vl"))) inline void
decode32Avx512(const std::uint8_t *p, __m512i &w0, __m512i &w1)
{
    const __m256i nib = _mm256_set1_epi8(0x0f);
    const __m256i k8 = _mm256_set1_epi8(8);
    const __m256i bytes32 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
    const __m256i lo = _mm256_and_si256(bytes32, nib);
    const __m256i hi =
        _mm256_and_si256(_mm256_srli_epi16(bytes32, 4), nib);
    __m256i a = _mm256_unpacklo_epi8(lo, hi);
    __m256i b = _mm256_unpackhi_epi8(lo, hi);
    a = _mm256_sub_epi8(_mm256_xor_si256(a, k8), k8);
    b = _mm256_sub_epi8(_mm256_xor_si256(b, k8), k8);
    w0 = _mm512_cvtepi8_epi16(a);
    w1 = _mm512_cvtepi8_epi16(b);
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) inline __m512i
loadFeaturePermuted(const std::int16_t *f, std::size_t lo_slot,
                    std::size_t hi_slot)
{
    const __m256i lo = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(f + lo_slot));
    const __m256i hi = _mm256_loadu_si256(
        reinterpret_cast<const __m256i *>(f + hi_slot));
    return _mm512_inserti64x4(_mm512_castsi256_si512(lo), hi, 1);
}

/** Horizontal sum of 16 int32 lanes; same overflow-safety bound as
 *  laneSum256. */
__attribute__((target("avx512f,avx512bw,avx512vl"))) inline
    std::int64_t
    laneSum512(__m512i acc)
{
    const __m256i folded = _mm256_add_epi32(
        _mm512_castsi512_si256(acc),
        _mm512_extracti64x4_epi64(acc, 1));
    return laneSum256(folded);
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) std::int64_t
rowDotAvx512(const std::uint8_t *row, const std::int16_t *feature,
             std::size_t bytes)
{
    __m512i acc = _mm512_setzero_si512();
    std::size_t b = 0;
    for (; b + 32 <= bytes; b += 32) {
        __m512i w0, w1;
        decode32Avx512(row + b, w0, w1);
        const __m512i f0 =
            loadFeaturePermuted(feature + 2 * b, 0, 32);
        const __m512i f1 =
            loadFeaturePermuted(feature + 2 * b, 16, 48);
        acc = _mm512_add_epi32(acc, _mm512_madd_epi16(w0, f0));
        acc = _mm512_add_epi32(acc, _mm512_madd_epi16(w1, f1));
    }
    std::int64_t total = laneSum512(acc);
    if (b + 16 <= bytes) {
        __m256i w0, w1;
        decode16Avx2(row + b, w0, w1);
        __m256i acc2 = _mm256_madd_epi16(
            w0, _mm256_loadu_si256(reinterpret_cast<const __m256i *>(
                    feature + 2 * b)));
        acc2 = _mm256_add_epi32(
            acc2, _mm256_madd_epi16(
                      w1, _mm256_loadu_si256(
                              reinterpret_cast<const __m256i *>(
                                  feature + 2 * b + 16))));
        total += laneSum256(acc2);
        b += 16;
    }
    for (; b < bytes; ++b) {
        const NibblePair pair = kBytePairs[row[b]];
        total += static_cast<std::int64_t>(pair.lo) * feature[2 * b]
            + static_cast<std::int64_t>(pair.hi)
                * feature[2 * b + 1];
    }
    return total;
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) void
rowDotBatchAvx512(const std::uint8_t *row,
                  const std::int16_t *features,
                  std::size_t query_count, std::size_t stride,
                  std::size_t bytes, std::int64_t *out)
{
    __m512i acc[kMaxQueryTile];
    for (std::size_t q = 0; q < query_count; ++q)
        acc[q] = _mm512_setzero_si512();
    std::size_t b = 0;
    for (; b + 32 <= bytes; b += 32) {
        __m512i w0, w1;
        decode32Avx512(row + b, w0, w1);
        for (std::size_t q = 0; q < query_count; ++q) {
            const std::int16_t *f = features + q * stride + 2 * b;
            acc[q] = _mm512_add_epi32(
                acc[q],
                _mm512_madd_epi16(w0, loadFeaturePermuted(f, 0, 32)));
            acc[q] = _mm512_add_epi32(
                acc[q], _mm512_madd_epi16(
                            w1, loadFeaturePermuted(f, 16, 48)));
        }
    }
    for (std::size_t q = 0; q < query_count; ++q)
        out[q] = laneSum512(acc[q]);
    if (b + 16 <= bytes) {
        __m256i w0, w1;
        decode16Avx2(row + b, w0, w1);
        for (std::size_t q = 0; q < query_count; ++q) {
            const std::int16_t *f = features + q * stride + 2 * b;
            __m256i acc2 = _mm256_madd_epi16(
                w0, _mm256_loadu_si256(
                        reinterpret_cast<const __m256i *>(f)));
            acc2 = _mm256_add_epi32(
                acc2,
                _mm256_madd_epi16(
                    w1, _mm256_loadu_si256(
                            reinterpret_cast<const __m256i *>(f
                                                              + 16))));
            out[q] += laneSum256(acc2);
        }
        b += 16;
    }
    for (; b < bytes; ++b) {
        const NibblePair pair = kBytePairs[row[b]];
        for (std::size_t q = 0; q < query_count; ++q) {
            const std::int16_t *f = features + q * stride;
            out[q] += static_cast<std::int64_t>(pair.lo) * f[2 * b]
                + static_cast<std::int64_t>(pair.hi) * f[2 * b + 1];
        }
    }
}

#endif // ECSSD_KERNELS_X86

#if ECSSD_KERNELS_X86

/**
 * Row-range wrappers: keep the per-row loop inside one
 * target-attributed body so the row kernel inlines and the dispatch
 * switch runs once per chunk, not once per row.  The main loops are
 * unrolled two rows deep — each row's horizontal reduction is a
 * serial shuffle/add chain, and interleaving two independent chains
 * keeps the vector ports busy through it.
 */
__attribute__((target("avx2"))) void
rowDotRangeAvx2(const std::uint8_t *rows, std::size_t row_stride,
                std::size_t row_count, const std::int16_t *feature,
                std::size_t bytes, std::int64_t *out)
{
    std::size_t i = 0;
    for (; i + 2 <= row_count; i += 2) {
        const std::uint8_t *r0 = rows + i * row_stride;
        const std::uint8_t *r1 = r0 + row_stride;
        __m256i acc0 = _mm256_setzero_si256();
        __m256i acc1 = _mm256_setzero_si256();
        std::size_t b = 0;
        for (; b + 16 <= bytes; b += 16) {
            const __m256i f0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(feature + 2 * b));
            const __m256i f1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(feature + 2 * b
                                                  + 16));
            __m256i w0, w1;
            decode16Avx2(r0 + b, w0, w1);
            acc0 = _mm256_add_epi32(
                acc0, _mm256_add_epi32(_mm256_madd_epi16(w0, f0),
                                       _mm256_madd_epi16(w1, f1)));
            decode16Avx2(r1 + b, w0, w1);
            acc1 = _mm256_add_epi32(
                acc1, _mm256_add_epi32(_mm256_madd_epi16(w0, f0),
                                       _mm256_madd_epi16(w1, f1)));
        }
        std::int64_t t0 = laneSum256(acc0);
        std::int64_t t1 = laneSum256(acc1);
        for (; b < bytes; ++b) {
            const std::int16_t flo = feature[2 * b];
            const std::int16_t fhi = feature[2 * b + 1];
            const NibblePair p0 = kBytePairs[r0[b]];
            const NibblePair p1 = kBytePairs[r1[b]];
            t0 += static_cast<std::int64_t>(p0.lo) * flo
                + static_cast<std::int64_t>(p0.hi) * fhi;
            t1 += static_cast<std::int64_t>(p1.lo) * flo
                + static_cast<std::int64_t>(p1.hi) * fhi;
        }
        out[i] = t0;
        out[i + 1] = t1;
    }
    if (i < row_count)
        out[i] = rowDotAvx2(rows + i * row_stride, feature, bytes);
}

__attribute__((target("avx512f,avx512bw,avx512vl"))) void
rowDotRangeAvx512(const std::uint8_t *rows, std::size_t row_stride,
                  std::size_t row_count, const std::int16_t *feature,
                  std::size_t bytes, std::int64_t *out)
{
    std::size_t i = 0;
    for (; i + 2 <= row_count; i += 2) {
        const std::uint8_t *r0 = rows + i * row_stride;
        const std::uint8_t *r1 = r0 + row_stride;
        __m512i acc0 = _mm512_setzero_si512();
        __m512i acc1 = _mm512_setzero_si512();
        std::size_t b = 0;
        for (; b + 32 <= bytes; b += 32) {
            const __m512i f0 =
                loadFeaturePermuted(feature + 2 * b, 0, 32);
            const __m512i f1 =
                loadFeaturePermuted(feature + 2 * b, 16, 48);
            __m512i w0, w1;
            decode32Avx512(r0 + b, w0, w1);
            acc0 = _mm512_add_epi32(
                acc0, _mm512_add_epi32(_mm512_madd_epi16(w0, f0),
                                       _mm512_madd_epi16(w1, f1)));
            decode32Avx512(r1 + b, w0, w1);
            acc1 = _mm512_add_epi32(
                acc1, _mm512_add_epi32(_mm512_madd_epi16(w0, f0),
                                       _mm512_madd_epi16(w1, f1)));
        }
        std::int64_t t0 = laneSum512(acc0);
        std::int64_t t1 = laneSum512(acc1);
        if (b + 16 <= bytes) {
            const __m256i f0 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(feature + 2 * b));
            const __m256i f1 = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(feature + 2 * b
                                                  + 16));
            __m256i w0, w1;
            decode16Avx2(r0 + b, w0, w1);
            t0 += laneSum256(
                _mm256_add_epi32(_mm256_madd_epi16(w0, f0),
                                 _mm256_madd_epi16(w1, f1)));
            decode16Avx2(r1 + b, w0, w1);
            t1 += laneSum256(
                _mm256_add_epi32(_mm256_madd_epi16(w0, f0),
                                 _mm256_madd_epi16(w1, f1)));
            b += 16;
        }
        for (; b < bytes; ++b) {
            const std::int16_t flo = feature[2 * b];
            const std::int16_t fhi = feature[2 * b + 1];
            const NibblePair p0 = kBytePairs[r0[b]];
            const NibblePair p1 = kBytePairs[r1[b]];
            t0 += static_cast<std::int64_t>(p0.lo) * flo
                + static_cast<std::int64_t>(p0.hi) * fhi;
            t1 += static_cast<std::int64_t>(p1.lo) * flo
                + static_cast<std::int64_t>(p1.hi) * fhi;
        }
        out[i] = t0;
        out[i + 1] = t1;
    }
    if (i < row_count)
        out[i] = rowDotAvx512(rows + i * row_stride, feature, bytes);
}

#endif // ECSSD_KERNELS_X86

void
rowDotRangeVecExt(const std::uint8_t *rows, std::size_t row_stride,
                  std::size_t row_count, const std::int16_t *feature,
                  std::size_t bytes, std::int64_t *out)
{
    for (std::size_t i = 0; i < row_count; ++i)
        out[i] = rowDotVecExt(rows + i * row_stride, feature, bytes);
}

void
rowDotBatchPortable(const std::uint8_t *row,
                    const std::int16_t *features,
                    std::size_t query_count, std::size_t stride,
                    std::size_t bytes, std::int64_t *out,
                    IsaLevel level)
{
    for (std::size_t q = 0; q < query_count; ++q) {
        out[q] = level == IsaLevel::VecExt
            ? rowDotVecExt(row, features + q * stride, bytes)
            : rowDotScalar(row, features + q * stride, bytes);
    }
}

} // namespace

std::int64_t
rowDotWidened(const std::uint8_t *row, const std::int16_t *feature,
              std::size_t bytes, IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar:
        return rowDotScalar(row, feature, bytes);
    case IsaLevel::VecExt:
        return rowDotVecExt(row, feature, bytes);
#if ECSSD_KERNELS_X86
    case IsaLevel::Avx2:
        return rowDotAvx2(row, feature, bytes);
    case IsaLevel::Avx512:
        return rowDotAvx512(row, feature, bytes);
#else
    default:
        return rowDotVecExt(row, feature, bytes);
#endif
    }
    return rowDotScalar(row, feature, bytes);
}

void
rowDotWidenedRange(const std::uint8_t *rows, std::size_t row_stride,
                   std::size_t row_count,
                   const std::int16_t *feature, std::size_t bytes,
                   std::int64_t *out, IsaLevel level)
{
    switch (level) {
    case IsaLevel::Scalar:
        for (std::size_t i = 0; i < row_count; ++i)
            out[i] =
                rowDotScalar(rows + i * row_stride, feature, bytes);
        return;
    case IsaLevel::VecExt:
        rowDotRangeVecExt(rows, row_stride, row_count, feature,
                          bytes, out);
        return;
#if ECSSD_KERNELS_X86
    case IsaLevel::Avx2:
        rowDotRangeAvx2(rows, row_stride, row_count, feature, bytes,
                        out);
        return;
    case IsaLevel::Avx512:
        rowDotRangeAvx512(rows, row_stride, row_count, feature,
                          bytes, out);
        return;
#else
    default:
        rowDotRangeVecExt(rows, row_stride, row_count, feature,
                          bytes, out);
        return;
#endif
    }
}

void
rowDotWidenedBatch(const std::uint8_t *row,
                   const std::int16_t *features,
                   std::size_t query_count, std::size_t feature_stride,
                   std::size_t bytes, std::int64_t *acc,
                   IsaLevel level)
{
    ECSSD_ASSERT(query_count <= kMaxQueryTile,
                 "batch kernel tile exceeds register budget");
    switch (level) {
#if ECSSD_KERNELS_X86
    case IsaLevel::Avx2:
        rowDotBatchAvx2(row, features, query_count, feature_stride,
                        bytes, acc);
        return;
    case IsaLevel::Avx512:
        rowDotBatchAvx512(row, features, query_count, feature_stride,
                          bytes, acc);
        return;
#endif
    default:
        rowDotBatchPortable(row, features, query_count,
                            feature_stride, bytes, acc, level);
        return;
    }
}

} // namespace numeric
} // namespace ecssd
