/**
 * @file
 * CFP16: the half-width sibling of CFP32 (an extension beyond the
 * paper, in its own spirit).
 *
 * Pre-alignment lets the exponent field be repurposed; applying the
 * same trick at 16 bits stores one sign bit plus a 15-bit aligned
 * significand per value (10-bit FP16-class mantissa + hidden one +
 * 4 compensation bits), with one shared exponent per vector.  Flash
 * traffic halves — the memory-bound candidate fetch runs ~2x faster
 * — at FP16-class precision.
 *
 * Layout of one CFP16 element (16 bits):
 *
 *   [15]    sign
 *   [14:0]  15-bit aligned significand; for shift distance d the
 *           11-bit significand sits at [14-d : 4-d]; shifts up to 4
 *           are lossless at FP16 precision.
 */

#ifndef ECSSD_NUMERIC_CFP16_HH
#define ECSSD_NUMERIC_CFP16_HH

#include <cstdint>
#include <span>
#include <vector>

#include "numeric/fp32.hh"
#include "numeric/kernels.hh"

namespace ecssd
{
namespace numeric
{

/** Compensation bits gained by repurposing the exponent at 16 bit. */
constexpr int cfp16CompensationBits = 4;

/** Width of the aligned significand. */
constexpr int cfp16SignificandBits = 15;

/** Mantissa bits kept from the FP32 source (FP16-class). */
constexpr int cfp16MantissaBits = 10;

/** One pre-aligned half-width element. */
struct Cfp16Element
{
    std::uint16_t sign;
    std::uint16_t significand;
};

/** A pre-aligned half-width vector with one shared exponent. */
class Cfp16Vector
{
  public:
    Cfp16Vector() = default;

    std::uint32_t sharedExponent() const { return sharedExponent_; }
    std::size_t size() const { return elements_.size(); }
    bool empty() const { return elements_.empty(); }

    const Cfp16Element &operator[](std::size_t i) const
    {
        return elements_[i];
    }

    /** Elements whose conversion dropped nonzero bits. */
    std::uint64_t lossyElements() const { return lossyElements_; }

    /** Decode element @p i back to the nearest float. */
    float toFloat(std::size_t i) const;

    /** Storage footprint: two bytes per element + the exponent. */
    std::uint64_t
    storageBytes() const
    {
        return elements_.size() * sizeof(std::uint16_t) + 1;
    }

    /** Pre-align (and round to FP16-class mantissa) a float vector,
     *  through the runtime-dispatched kernels at activeIsa(). */
    static Cfp16Vector preAlign(std::span<const float> values);

    /** ISA-pinned overload (differential tests). */
    static Cfp16Vector preAlign(std::span<const float> values,
                                IsaLevel level);

  private:
    std::uint32_t sharedExponent_ = 0;
    std::vector<Cfp16Element> elements_;
    std::uint64_t lossyElements_ = 0;
};

/** Result of a half-width dot product (value + op counts live in
 *  MacResult from mac.hh; this is the numeric core). */
struct Cfp16DotResult
{
    double value = 0.0;
    std::uint64_t multiplies = 0;
};

/**
 * Alignment-free dot product over two CFP16 vectors: a 15x15-bit
 * integer multiplier feeding a wide accumulator, one final scale.
 */
Cfp16DotResult alignmentFreeDot16(const Cfp16Vector &a,
                                  const Cfp16Vector &b);

} // namespace numeric
} // namespace ecssd

#endif // ECSSD_NUMERIC_CFP16_HH
