#include "accelerator_model.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ecssd
{
namespace circuit
{

CircuitBlock
fp32MacOf(FpMacKind kind)
{
    switch (kind) {
      case FpMacKind::Naive:
        return naiveFp32Mac();
      case FpMacKind::SkHynix:
        return skHynixFp32Mac();
      case FpMacKind::AlignmentFree:
        return alignmentFreeFp32Mac();
    }
    sim::panic("unknown FpMacKind");
}

std::string
toString(FpMacKind kind)
{
    switch (kind) {
      case FpMacKind::Naive:
        return "naive";
      case FpMacKind::SkHynix:
        return "skhynix";
      case FpMacKind::AlignmentFree:
        return "alignment_free";
    }
    return "unknown";
}

AcceleratorEstimate
estimateAccelerator(const AcceleratorConfig &config)
{
    AcceleratorEstimate est;

    const CircuitBlock fpArray =
        macArray(fp32MacOf(config.fpKind), config.fp32Macs);
    const CircuitBlock intArray =
        macArray(int4Mac(), config.int4Macs);
    const ComponentCost comparator = thresholdComparator();
    const ComponentCost scheduler = schedulerBlock();

    est.rows.push_back(
        {"FP32 MAC (" + toString(config.fpKind) + ")",
         fpArray.areaMm2(), fpArray.powerMw()});
    est.rows.push_back(
        {"INT4 MAC", intArray.areaMm2(), intArray.powerMw()});
    est.rows.push_back({"Comparator", comparator.areaUm2 * 1e-6,
                        comparator.powerUw * 1e-3});
    est.rows.push_back({"Scheduler", scheduler.areaUm2 * 1e-6,
                        scheduler.powerUw * 1e-3});

    for (const AreaPowerRow &row : est.rows) {
        est.totalAreaMm2 += row.areaMm2;
        est.totalPowerMw += row.powerMw;
    }

    est.fp32PeakGflops =
        peakGflops(config.fp32Macs, config.frequencyHz);
    est.int4PeakGops = peakGflops(config.int4Macs, config.frequencyHz);
    return est;
}

RooflinePoint
roofline(double peak_gflops, double bandwidth_gbps, double intensity)
{
    RooflinePoint point;
    point.operationalIntensity = intensity;
    const double memory_roof = bandwidth_gbps * intensity;
    point.attainableGflops = std::min(peak_gflops, memory_roof);
    point.computeBound = peak_gflops <= memory_roof;
    return point;
}

} // namespace circuit
} // namespace ecssd
