#include "mac_circuit.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace ecssd
{
namespace circuit
{

CircuitBlock &
CircuitBlock::add(const ComponentCost &component, double count)
{
    ECSSD_ASSERT(count > 0.0, "component count must be positive");
    entries_.push_back(BlockEntry{component, count});
    return *this;
}

double
CircuitBlock::areaUm2() const
{
    double total = 0.0;
    for (const BlockEntry &entry : entries_)
        total += entry.areaUm2();
    return total;
}

double
CircuitBlock::powerUw() const
{
    double total = 0.0;
    for (const BlockEntry &entry : entries_)
        total += entry.powerUw();
    return total;
}

double
CircuitBlock::areaFraction(
    const std::vector<std::string> &component_names) const
{
    const double total = areaUm2();
    if (total == 0.0)
        return 0.0;
    double matched = 0.0;
    for (const BlockEntry &entry : entries_) {
        const bool match =
            std::find(component_names.begin(), component_names.end(),
                      entry.component.name)
            != component_names.end();
        if (match)
            matched += entry.areaUm2();
    }
    return matched / total;
}

CircuitBlock
naiveFp32Mac()
{
    // Multiplier slice plus one adder slice of the reduction tree.
    // The adder aligns (compare + shift), adds, and normalizes on
    // every accumulation.
    CircuitBlock mac("naive_fp32_mac");
    mac.add(mantissaMultiplier24())
        .add(exponentAdder())
        .add(exponentComparator())
        .add(mantissaShifter())
        .add(mantissaAdderFp())
        .add(normalizer());
    return mac;
}

CircuitBlock
skHynixFp32Mac()
{
    // Products are aligned once after multiplication, so the
    // alignment network (comparator + shifter) is halved and the tree
    // adders become plain integer adders; normalization still happens
    // per result.
    CircuitBlock mac("skhynix_fp32_mac");
    mac.add(mantissaMultiplier24())
        .add(exponentAdder())
        .add(exponentComparator(), 0.5)
        .add(mantissaShifter(), 0.5)
        .add(integerAdder48())
        .add(normalizer());
    return mac;
}

CircuitBlock
alignmentFreeFp32Mac()
{
    // Host pre-alignment removes every alignment component; the
    // datapath is a wider multiplier plus a wide integer accumulator.
    // The single final normalizer is shared across the array and
    // accounted for at array level (negligible per MAC).
    CircuitBlock mac("alignment_free_fp32_mac");
    mac.add(mantissaMultiplier31()).add(wideAccumulator());
    return mac;
}

CircuitBlock
int4Mac()
{
    CircuitBlock mac("int4_mac");
    mac.add(int4Multiplier()).add(int4Accumulator());
    return mac;
}

CircuitBlock
cfp16Mac()
{
    CircuitBlock mac("cfp16_mac");
    mac.add(mantissaMultiplier15()).add(narrowAccumulator());
    return mac;
}

CircuitBlock
macArray(const CircuitBlock &mac, unsigned count)
{
    CircuitBlock array(mac.name() + "_array");
    for (const BlockEntry &entry : mac.entries())
        array.add(entry.component, entry.count * count);
    return array;
}

double
peakGflops(unsigned mac_count, double frequency_hz)
{
    // One multiply + one add per MAC per cycle.
    return 2.0 * static_cast<double>(mac_count) * frequency_hz / 1e9;
}

unsigned
macsForGflops(double gflops, double frequency_hz)
{
    const double macs = gflops * 1e9 / (2.0 * frequency_hz);
    return static_cast<unsigned>(std::ceil(macs));
}

unsigned
macsInArea(const CircuitBlock &mac, double budget_mm2)
{
    const double per_mac = mac.areaMm2();
    ECSSD_ASSERT(per_mac > 0.0, "MAC block has zero area");
    return static_cast<unsigned>(budget_mm2 / per_mac);
}

} // namespace circuit
} // namespace ecssd
