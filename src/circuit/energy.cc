#include "energy.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ecssd
{
namespace circuit
{

double
EnergyBreakdown::averagePowerMw(sim::Tick elapsed) const
{
    const double seconds = sim::tickToSeconds(elapsed);
    if (seconds <= 0.0)
        return 0.0;
    // uJ / s = uW; convert to mW.
    return totalUj() / seconds * 1e-3;
}

double
EnergyBreakdown::gflopsPerWatt(std::uint64_t fp32_flops,
                               sim::Tick elapsed) const
{
    const double seconds = sim::tickToSeconds(elapsed);
    if (seconds <= 0.0 || totalUj() <= 0.0)
        return 0.0;
    const double gflops =
        static_cast<double>(fp32_flops) / seconds / 1e9;
    const double watts = totalUj() * 1e-6 / seconds;
    return gflops / watts;
}

EnergyBreakdown
estimateEnergy(const EnergyActivity &activity,
               const AcceleratorEstimate &accel,
               const EnergyParams &params)
{
    EnergyBreakdown out;
    const double page_bits =
        static_cast<double>(params.pageBytes) * 8.0;

    out.flashUj = (static_cast<double>(activity.flashPagesRead)
                       * params.flashReadPjPerBit
                   + static_cast<double>(
                         activity.flashPagesProgrammed)
                       * params.flashProgramPjPerBit)
        * page_bits * 1e-6;

    out.dramUj = static_cast<double>(activity.dramBytes) * 8.0
        * params.dramPjPerBit * 1e-6;

    out.hostLinkUj = static_cast<double>(activity.hostBytes) * 8.0
        * params.hostLinkPjPerBit * 1e-6;

    // Accelerator dynamic energy: the MAC arrays burn their Table 4
    // power while occupied; occupancy = ops / peak rate.
    const double fp32_busy_s = accel.fp32PeakGflops > 0.0
        ? static_cast<double>(activity.fp32Flops)
            / (accel.fp32PeakGflops * 1e9)
        : 0.0;
    const double int4_busy_s = accel.int4PeakGops > 0.0
        ? static_cast<double>(activity.int4Ops)
            / (accel.int4PeakGops * 1e9)
        : 0.0;
    // Table 4 rows: [0] FP32 array, [1] INT4 array.
    ECSSD_ASSERT(accel.rows.size() >= 2,
                 "accelerator estimate missing MAC rows");
    out.acceleratorUj = accel.rows[0].powerMw * fp32_busy_s * 1e3
        + accel.rows[1].powerMw * int4_busy_s * 1e3;

    out.backgroundUj = params.backgroundPowerMw
        * sim::tickToSeconds(activity.elapsed) * 1e3;
    return out;
}

} // namespace circuit
} // namespace ecssd
