/**
 * @file
 * Composable circuit blocks for the three FP MAC variants and the
 * INT4 MAC, plus array-level sizing helpers (iso-throughput and
 * iso-area comparisons for Fig 9 and Section 4.2).
 */

#ifndef ECSSD_CIRCUIT_MAC_CIRCUIT_HH
#define ECSSD_CIRCUIT_MAC_CIRCUIT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "circuit/components.hh"

namespace ecssd
{
namespace circuit
{

/** One sub-block instance inside a circuit block. */
struct BlockEntry
{
    ComponentCost component;
    /** Instance count; fractional counts model amortized sharing. */
    double count = 1.0;

    double areaUm2() const { return component.areaUm2 * count; }
    double powerUw() const { return component.powerUw * count; }
};

/** A named circuit block composed of sub-blocks. */
class CircuitBlock
{
  public:
    explicit CircuitBlock(std::string name) : name_(std::move(name)) {}

    /** Add @p count instances of @p component. */
    CircuitBlock &add(const ComponentCost &component,
                      double count = 1.0);

    const std::string &name() const { return name_; }
    const std::vector<BlockEntry> &entries() const { return entries_; }

    double areaUm2() const;
    double powerUw() const;
    double areaMm2() const { return areaUm2() * 1e-6; }
    double powerMw() const { return powerUw() * 1e-3; }

    /** Area share of entries whose component name matches any of
     *  @p component_names. */
    double areaFraction(
        const std::vector<std::string> &component_names) const;

  private:
    std::string name_;
    std::vector<BlockEntry> entries_;
};

/** One conventional FP32 MAC (multiplier + aligned FP adder slice). */
CircuitBlock naiveFp32Mac();

/**
 * One SK Hynix AiM-style MAC: post-multiplication alignment halves
 * the alignment network and turns the tree adds into integer adds.
 */
CircuitBlock skHynixFp32Mac();

/** One ECSSD alignment-free MAC (31-bit multiplier + accumulator). */
CircuitBlock alignmentFreeFp32Mac();

/** One INT4 screener MAC. */
CircuitBlock int4Mac();

/** One half-width (CFP16) alignment-free MAC: this repo's
 *  extension; ~2.9x smaller than the CFP32 datapath. */
CircuitBlock cfp16Mac();

/**
 * An array of @p count MAC blocks.
 *
 * @param mac The per-MAC block.
 * @param count Number of MAC instances.
 */
CircuitBlock macArray(const CircuitBlock &mac, unsigned count);

/** Peak GFLOPS of @p mac_count MACs at @p frequency_hz (2 ops/MAC). */
double peakGflops(unsigned mac_count,
                  double frequency_hz = acceleratorFrequencyHz);

/** MAC count needed to reach @p gflops at @p frequency_hz. */
unsigned macsForGflops(double gflops,
                       double frequency_hz = acceleratorFrequencyHz);

/**
 * Largest MAC count of the given variant that fits in @p budget_mm2.
 */
unsigned macsInArea(const CircuitBlock &mac, double budget_mm2);

} // namespace circuit
} // namespace ecssd

#endif // ECSSD_CIRCUIT_MAC_CIRCUIT_HH
