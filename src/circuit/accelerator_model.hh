/**
 * @file
 * Area/power model of the complete inserted accelerator (Table 4) and
 * the roofline helper used for Fig 1.
 */

#ifndef ECSSD_CIRCUIT_ACCELERATOR_MODEL_HH
#define ECSSD_CIRCUIT_ACCELERATOR_MODEL_HH

#include <string>
#include <vector>

#include "circuit/mac_circuit.hh"

namespace ecssd
{
namespace circuit
{

/** Which FP32 datapath the accelerator instantiates. */
enum class FpMacKind
{
    Naive,
    SkHynix,
    AlignmentFree,
};

/** Return the per-MAC block of the given kind. */
CircuitBlock fp32MacOf(FpMacKind kind);

/** Human-readable name of a MAC kind. */
std::string toString(FpMacKind kind);

/** Sizing of the inserted accelerator. */
struct AcceleratorConfig
{
    FpMacKind fpKind = FpMacKind::AlignmentFree;
    unsigned fp32Macs = 64;   //!< Table 2: 64 FP32 MACs.
    unsigned int4Macs = 256;  //!< Table 2: 256 INT4 MACs.
    double frequencyHz = acceleratorFrequencyHz;
};

/** One row of the Table 4 style breakdown. */
struct AreaPowerRow
{
    std::string block;
    double areaMm2 = 0.0;
    double powerMw = 0.0;
};

/** Composed accelerator estimate. */
struct AcceleratorEstimate
{
    std::vector<AreaPowerRow> rows;
    double totalAreaMm2 = 0.0;
    double totalPowerMw = 0.0;
    double fp32PeakGflops = 0.0;
    double int4PeakGops = 0.0;

    /** True when the total fits the 0.21 mm^2 insertion budget. */
    bool
    fitsBudget() const
    {
        return totalAreaMm2 <= areaBudgetMm2;
    }
};

/** Compose the full accelerator estimate for @p config. */
AcceleratorEstimate estimateAccelerator(const AcceleratorConfig &config);

/**
 * Roofline model (Fig 1): attainable GFLOPS given a compute peak and
 * a memory-bandwidth ceiling at a given operational intensity.
 */
struct RooflinePoint
{
    double operationalIntensity = 0.0; //!< FLOP / byte.
    double attainableGflops = 0.0;
    bool computeBound = false;
};

/**
 * Evaluate the roofline at @p intensity.
 *
 * @param peak_gflops Compute roof.
 * @param bandwidth_gbps Memory roof slope (GB/s).
 * @param intensity Operational intensity in FLOP/byte.
 */
RooflinePoint roofline(double peak_gflops, double bandwidth_gbps,
                       double intensity);

} // namespace circuit
} // namespace ecssd

#endif // ECSSD_CIRCUIT_ACCELERATOR_MODEL_HH
