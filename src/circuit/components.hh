/**
 * @file
 * Per-component area/power constants of the 28 nm standard-cell
 * library model.
 *
 * The paper synthesizes RTL with Design Compiler; we replace that flow
 * with an analytical model: each MAC variant is composed from the
 * sub-blocks below, and the constants are calibrated once so that the
 * composed totals land on the paper's published numbers (Table 4,
 * Fig 9, Section 3.3/4.2):
 *
 *  - 64 alignment-free FP32 MACs = 0.139 mm2 / 33.87 mW,
 *  - naive : alignment-free iso-throughput area ratio  = 1.73,
 *  - SK Hynix : alignment-free area ratio              = 1.38,
 *  - power ratios 1.53 and 1.19,
 *  - alignment logic share of the naive MAC            = 37.7%,
 *  - 256 INT4 MACs = 0.044 mm2 / 19.04 mW,
 *  - comparator 0.0004 mm2 / 0.016 mW, scheduler 0.0002 mm2 / 4 uW.
 *
 * Because the totals are *composed* from sub-blocks, structural
 * what-ifs (e.g., "remove the shifters", "halve the alignment
 * network", "widen the multiplier from 24 to 31 bits") change the
 * result the way a synthesis run would, rather than via hard-coded
 * end-to-end ratios.
 */

#ifndef ECSSD_CIRCUIT_COMPONENTS_HH
#define ECSSD_CIRCUIT_COMPONENTS_HH

#include <string>

namespace ecssd
{
namespace circuit
{

/** Area (um^2) and power (uW at 400 MHz / 0.9 V) of one sub-block. */
struct ComponentCost
{
    std::string name;
    double areaUm2 = 0.0;
    double powerUw = 0.0;
};

/** 24x24-bit mantissa multiplier of a conventional FP32 multiplier. */
inline ComponentCost
mantissaMultiplier24()
{
    return {"mantissa_mult_24b", 1050.0, 270.0};
}

/**
 * 31x31-bit mantissa multiplier of the alignment-free datapath.
 * Multiplier area grows quadratically with operand width:
 * 1050 * (31/24)^2 = 1752.
 */
inline ComponentCost
mantissaMultiplier31()
{
    return {"mantissa_mult_31b", 1752.0, 450.0};
}

/** 8-bit exponent adder of an FP multiplier. */
inline ComponentCost
exponentAdder()
{
    return {"exponent_adder_8b", 130.0, 14.0};
}

/** 8-bit exponent comparator of an FP adder's alignment stage. */
inline ComponentCost
exponentComparator()
{
    return {"exponent_comparator_8b", 287.0, 36.0};
}

/** 24-bit barrel shifter of an FP adder's alignment stage. */
inline ComponentCost
mantissaShifter()
{
    return {"mantissa_shifter_24b", 1130.0, 240.0};
}

/**
 * FP mantissa adder including leading-zero anticipation; larger than
 * a plain integer adder of the same width.
 */
inline ComponentCost
mantissaAdderFp()
{
    return {"mantissa_adder_fp", 510.0, 120.0};
}

/** Plain 48-bit two's-complement integer adder. */
inline ComponentCost
integerAdder48()
{
    return {"integer_adder_48b", 460.0, 78.0};
}

/** Post-addition normalizer/rounder of an FP adder. */
inline ComponentCost
normalizer()
{
    return {"normalizer_rounder", 650.0, 130.0};
}

/** Wide (72-bit) carry-save accumulator of the alignment-free MAC. */
inline ComponentCost
wideAccumulator()
{
    return {"wide_accumulator_72b", 420.0, 79.0};
}

/** 15x15-bit multiplier of the half-width CFP16 MAC extension
 *  (area ~ (15/24)^2 of the 24-bit multiplier). */
inline ComponentCost
mantissaMultiplier15()
{
    return {"mantissa_mult_15b", 410.0, 105.0};
}

/** 48-bit accumulator of the CFP16 MAC. */
inline ComponentCost
narrowAccumulator()
{
    return {"narrow_accumulator_48b", 280.0, 53.0};
}

/** 4x4-bit multiplier of the INT4 screener MAC. */
inline ComponentCost
int4Multiplier()
{
    return {"int4_multiplier", 120.0, 60.0};
}

/** 12-bit accumulator of the INT4 screener MAC. */
inline ComponentCost
int4Accumulator()
{
    return {"int4_accumulator_12b", 51.9, 14.4};
}

/** The threshold comparator block (whole-block cost from Table 4). */
inline ComponentCost
thresholdComparator()
{
    return {"threshold_comparator", 400.0, 16.0};
}

/** The accelerator scheduler block (whole-block cost from Table 4). */
inline ComponentCost
schedulerBlock()
{
    return {"scheduler", 200.0, 4.0};
}

/**
 * The lightweight-insertion area budget: one ARM Cortex-R5 at 28 nm
 * (Section 3.3's area-budget guideline), in mm^2.
 */
constexpr double areaBudgetMm2 = 0.21;

/** The accelerator clock frequency (Table 2). */
constexpr double acceleratorFrequencyHz = 400e6;

} // namespace circuit
} // namespace ecssd

#endif // ECSSD_CIRCUIT_COMPONENTS_HH
