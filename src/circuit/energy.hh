/**
 * @file
 * End-to-end energy model of one inference run.
 *
 * Composes energy from the same sources the timing model tracks:
 * flash page reads/programs, DRAM traffic, host-link traffic, the
 * accelerator's dynamic compute energy (from the Table 4 power
 * numbers at the measured occupancy), and background/static power
 * over the elapsed time.  Constants are standard per-bit figures for
 * the technology classes the paper assumes and are documented where
 * defined.
 */

#ifndef ECSSD_CIRCUIT_ENERGY_HH
#define ECSSD_CIRCUIT_ENERGY_HH

#include <cstdint>

#include "circuit/accelerator_model.hh"
#include "sim/types.hh"

namespace ecssd
{
namespace circuit
{

/** Per-operation energy constants. */
struct EnergyParams
{
    /** NAND read energy per page bit (sense + transfer), pJ. */
    double flashReadPjPerBit = 60.0;
    /** NAND program energy per page bit, pJ. */
    double flashProgramPjPerBit = 180.0;
    /** SSD-internal DRAM access energy, pJ/bit. */
    double dramPjPerBit = 8.0;
    /** PCIe link energy, pJ/bit. */
    double hostLinkPjPerBit = 5.0;
    /**
     * Controller + peripheral static power (embedded cores, DRAM
     * refresh, clocking), mW; drawn for the whole elapsed time.
     */
    double backgroundPowerMw = 900.0;
    /** Page size used to convert page counts to bits. */
    unsigned pageBytes = 4096;
};

/** Work counts of a run (the pipeline's BatchTiming aggregates). */
struct EnergyActivity
{
    std::uint64_t flashPagesRead = 0;
    std::uint64_t flashPagesProgrammed = 0;
    std::uint64_t dramBytes = 0;
    std::uint64_t hostBytes = 0;
    std::uint64_t int4Ops = 0;
    std::uint64_t fp32Flops = 0;
    sim::Tick elapsed = 0;
};

/** Energy breakdown of a run, in microjoules. */
struct EnergyBreakdown
{
    double flashUj = 0.0;
    double dramUj = 0.0;
    double hostLinkUj = 0.0;
    double acceleratorUj = 0.0;
    double backgroundUj = 0.0;

    double
    totalUj() const
    {
        return flashUj + dramUj + hostLinkUj + acceleratorUj
            + backgroundUj;
    }

    /** Average power over the run, mW. */
    double averagePowerMw(sim::Tick elapsed) const;

    /** Achieved FP32 energy efficiency, GFLOPS/W. */
    double gflopsPerWatt(std::uint64_t fp32_flops,
                         sim::Tick elapsed) const;
};

/**
 * Compose the energy of a run.
 *
 * @param activity Work counts.
 * @param accel The accelerator's area/power estimate (its dynamic
 *        power prorated by compute occupancy).
 * @param params Energy constants.
 */
EnergyBreakdown estimateEnergy(const EnergyActivity &activity,
                               const AcceleratorEstimate &accel,
                               const EnergyParams &params =
                                   EnergyParams{});

} // namespace circuit
} // namespace ecssd

#endif // ECSSD_CIRCUIT_ENERGY_HH
