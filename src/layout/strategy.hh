/**
 * @file
 * FP32 weight-vector placement strategies across flash channels
 * (Section 5): sequential storing, uniform interleaving, and the
 * learning-based adaptive interleaving framework.
 *
 * A strategy maps a weight-row index to the flash channel holding it.
 * The FTL realizes the mapping by handing each channel a logical-
 * address range (Section 5.3); here the strategies answer placement
 * queries directly, and a helper materializes plausible physical page
 * addresses for the timing model.
 */

#ifndef ECSSD_LAYOUT_STRATEGY_HH
#define ECSSD_LAYOUT_STRATEGY_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "ssdsim/address.hh"
#include "ssdsim/config.hh"

namespace ecssd
{
namespace layout
{

/** The three placement strategies of Section 5. */
enum class LayoutKind
{
    Sequential,
    Uniform,
    LearningAdaptive,
};

/** Human-readable strategy name. */
std::string toString(LayoutKind kind);

/** Placement strategy interface. */
class LayoutStrategy
{
  public:
    virtual ~LayoutStrategy() = default;

    virtual LayoutKind kind() const = 0;

    /** Flash channel holding weight row @p row. */
    virtual unsigned channelOf(std::uint64_t row) const = 0;

    /**
     * Die-striping slot of @p row within its channel.  A row's die is
     * fixed by the FTL's *write order* (writes stripe round-robin
     * over a channel's dies), so the slot is the row's within-channel
     * write sequence number; callers reduce it modulo the die count.
     * This is what makes die conflicts layout-dependent: a random
     * candidate subset of uniformly-striped rows collides on dies,
     * while the learning framework's hotness-ordered placement keeps
     * the hot candidates die-balanced.
     */
    virtual std::uint64_t dieSlotOf(std::uint64_t row) const = 0;

    /** Total number of weight rows placed. */
    virtual std::uint64_t rows() const = 0;

    /** Number of channels placed across. */
    virtual unsigned channels() const = 0;

    /**
     * Predicted hot degree of @p row in [0, 1]: the learning
     * framework's popularity signal, exported so other layers (the
     * DRAM hot-row cache's admission policy) can reuse it.  The
     * non-learning strategies have no predictor and return 0.
     */
    virtual double hotDegreeOf(std::uint64_t) const { return 0.0; }
};

/**
 * Sequential storing: rows are divided into contiguous runs, one per
 * channel, so adjacent rows live on the same channel (Section 5.1).
 */
class SequentialLayout : public LayoutStrategy
{
  public:
    SequentialLayout(std::uint64_t rows, unsigned channels);

    LayoutKind kind() const override
    {
        return LayoutKind::Sequential;
    }
    unsigned channelOf(std::uint64_t row) const override;
    std::uint64_t dieSlotOf(std::uint64_t row) const override;
    std::uint64_t rows() const override { return rows_; }
    unsigned channels() const override { return channels_; }

  private:
    std::uint64_t rows_;
    unsigned channels_;
    std::uint64_t rowsPerChannel_;
};

/**
 * Uniform interleaving: round-robin striping of rows over channels
 * (Section 5.2).
 */
class UniformLayout : public LayoutStrategy
{
  public:
    UniformLayout(std::uint64_t rows, unsigned channels);

    LayoutKind kind() const override { return LayoutKind::Uniform; }
    unsigned channelOf(std::uint64_t row) const override;
    std::uint64_t dieSlotOf(std::uint64_t row) const override;
    std::uint64_t rows() const override { return rows_; }
    unsigned channels() const override { return channels_; }

  private:
    std::uint64_t rows_;
    unsigned channels_;
};

/**
 * Learning-based adaptive interleaving (Section 5.3): rows are graded
 * by predicted hot degree and placed so each channel receives an
 * equal share of expected access mass.
 */
class LearningAdaptiveLayout : public LayoutStrategy
{
  public:
    LayoutKind kind() const override
    {
        return LayoutKind::LearningAdaptive;
    }
    unsigned channelOf(std::uint64_t row) const override;
    std::uint64_t dieSlotOf(std::uint64_t row) const override;
    std::uint64_t rows() const override { return placement_.size(); }
    unsigned channels() const override { return channels_; }
    double hotDegreeOf(std::uint64_t row) const override;

    /**
     * Re-home @p row on @p channel: the background re-layout task's
     * mutation hook.  Only the channel changes — the die slot keeps
     * its deterministic stripe so repeated migrations cannot collapse
     * a channel's rows onto one die.
     */
    void relocateRow(std::uint64_t row, unsigned channel);

    /**
     * Precise builder for in-memory hotness vectors: greedy balanced
     * partition (descending hotness to the least-loaded channel).
     *
     * @param hotness Per-row expected access mass (e.g., the INT4
     *        row L1 masses fine-tuned by candidate frequency).
     * @param channels Channel count.
     */
    static std::unique_ptr<LearningAdaptiveLayout> build(
        std::span<const double> hotness, unsigned channels);

    /**
     * Streaming builder for huge row counts: rows are graded into
     * @p grades hotness buckets via sampled quantiles, then placed
     * round-robin within each grade (the paper's very-hot /
     * medium-hot / not-hot scheme).
     *
     * @param rows Row count.
     * @param hotness Hotness oracle called once per row.
     * @param channels Channel count.
     * @param grades Grade count (paper: 3).
     * @param sample_size Rows sampled for the quantile estimate.
     */
    static std::unique_ptr<LearningAdaptiveLayout> buildStreaming(
        std::uint64_t rows,
        const std::function<double(std::uint64_t)> &hotness,
        unsigned channels, unsigned grades = 8,
        std::uint64_t sample_size = 65536);

  private:
    friend class SortedStreamLayoutBuilder;

    LearningAdaptiveLayout(std::vector<std::uint8_t> placement,
                           std::vector<std::uint8_t> die_slots,
                           std::vector<std::uint8_t> hot_grades,
                           unsigned channels);

    std::vector<std::uint8_t> placement_;
    /** Within-channel write-order slot, modulo 256 (die counts are
     *  powers of two in practice, so the wrap is exact). */
    std::vector<std::uint8_t> dieSlots_;
    /** Quantized hot degree (0..255, 255 = hottest): one extra byte
     *  per row buys the cross-layer predictor export. */
    std::vector<std::uint8_t> hotGrades_;
    unsigned channels_;
};

/**
 * Incremental twin of LearningAdaptiveLayout::build() for rows that
 * arrive as a *sorted stream* instead of an in-memory hotness vector:
 * the streaming weight deploy's external merge sort feeds rows in
 * globally sorted order (hotness descending, row ascending — exactly
 * build()'s sort key) and this builder replays the same greedy
 * least-loaded-channel loop one record at a time.  Because the greedy
 * loop's decisions depend only on the visit order and the hotness
 * values — both identical by construction — the finished layout is
 * bit-for-bit the one build() would have produced, at O(channels)
 * transient state plus the three byte-per-row output arrays.
 *
 * append() asserts the sort order, so a broken merge fails loudly
 * instead of silently skewing the placement.
 */
class SortedStreamLayoutBuilder
{
  public:
    SortedStreamLayoutBuilder(std::uint64_t rows, unsigned channels);

    /** Feed the next row of the sorted stream. */
    void append(std::uint64_t row, double hotness);

    /** Rows appended so far. */
    std::uint64_t appended() const { return appended_; }

    /** Finish (all rows must have been appended) and hand over the
     *  layout; the builder is spent afterwards. */
    std::unique_ptr<LearningAdaptiveLayout> finish();

  private:
    std::uint64_t rows_;
    unsigned channels_;
    std::uint64_t appended_ = 0;
    /** Hotness of the hottest (first) record: the hot-grade scale. */
    double peak_ = 0.0;
    /** Sort-order guard: the previous record's key. */
    double lastHotness_ = 0.0;
    std::uint64_t lastRow_ = 0;
    /** (mass, channel) min-heap, seeded exactly like build(). */
    std::priority_queue<std::pair<double, unsigned>,
                        std::vector<std::pair<double, unsigned>>,
                        std::greater<>>
        loads_;
    std::vector<std::uint64_t> writeCursor_;
    std::vector<std::uint8_t> placement_;
    std::vector<std::uint8_t> dieSlots_;
    std::vector<std::uint8_t> hotGrades_;
};

/** Construct the strategy of the given kind with default builders. */
std::unique_ptr<LayoutStrategy> makeLayout(
    LayoutKind kind, std::uint64_t rows, unsigned channels,
    const std::function<double(std::uint64_t)> &hotness = {});

/**
 * Per-channel access counts of a candidate set under a strategy: the
 * Fig 11 access pattern.
 */
std::vector<std::uint64_t> channelAccessPattern(
    std::span<const std::uint64_t> candidates,
    const LayoutStrategy &strategy);

/**
 * Balance metric of an access pattern: mean / max channel count
 * (1.0 = perfectly balanced, ->0 = one hot channel).
 */
double accessBalance(std::span<const std::uint64_t> pattern);

/**
 * Materialize a plausible physical page address for page @p page_idx
 * of weight row @p row under @p strategy: channel from the strategy,
 * die/plane/block spread deterministically within the channel.
 */
ssdsim::PhysicalPage pageOfRow(const LayoutStrategy &strategy,
                               const ssdsim::SsdConfig &config,
                               std::uint64_t row,
                               unsigned page_idx = 0);

} // namespace layout
} // namespace ecssd

#endif // ECSSD_LAYOUT_STRATEGY_HH
