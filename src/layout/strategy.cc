#include "strategy.hh"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>

#include "sim/logging.hh"
#include "sim/rng.hh"

namespace ecssd
{
namespace layout
{

std::string
toString(LayoutKind kind)
{
    switch (kind) {
      case LayoutKind::Sequential:
        return "sequential";
      case LayoutKind::Uniform:
        return "uniform";
      case LayoutKind::LearningAdaptive:
        return "learning_adaptive";
    }
    return "unknown";
}

SequentialLayout::SequentialLayout(std::uint64_t rows,
                                   unsigned channels)
    : rows_(rows), channels_(channels),
      rowsPerChannel_((rows + channels - 1) / channels)
{
    ECSSD_ASSERT(rows > 0 && channels > 0, "empty layout");
}

unsigned
SequentialLayout::channelOf(std::uint64_t row) const
{
    ECSSD_ASSERT(row < rows_, "row out of range");
    return std::min(static_cast<unsigned>(row / rowsPerChannel_),
                    channels_ - 1);
}

std::uint64_t
SequentialLayout::dieSlotOf(std::uint64_t row) const
{
    ECSSD_ASSERT(row < rows_, "row out of range");
    // Write order within a channel is plain row order.
    return row % rowsPerChannel_;
}

UniformLayout::UniformLayout(std::uint64_t rows, unsigned channels)
    : rows_(rows), channels_(channels)
{
    ECSSD_ASSERT(rows > 0 && channels > 0, "empty layout");
}

unsigned
UniformLayout::channelOf(std::uint64_t row) const
{
    ECSSD_ASSERT(row < rows_, "row out of range");
    return static_cast<unsigned>(row % channels_);
}

std::uint64_t
UniformLayout::dieSlotOf(std::uint64_t row) const
{
    ECSSD_ASSERT(row < rows_, "row out of range");
    // Round-robin striping writes every channels-th row to the same
    // channel in row order.
    return row / channels_;
}

LearningAdaptiveLayout::LearningAdaptiveLayout(
    std::vector<std::uint8_t> placement,
    std::vector<std::uint8_t> die_slots,
    std::vector<std::uint8_t> hot_grades, unsigned channels)
    : placement_(std::move(placement)),
      dieSlots_(std::move(die_slots)),
      hotGrades_(std::move(hot_grades)), channels_(channels)
{
    ECSSD_ASSERT(placement_.size() == dieSlots_.size(),
                 "placement/die-slot size mismatch");
    ECSSD_ASSERT(placement_.size() == hotGrades_.size(),
                 "placement/hot-grade size mismatch");
}

double
LearningAdaptiveLayout::hotDegreeOf(std::uint64_t row) const
{
    ECSSD_ASSERT(row < hotGrades_.size(), "row out of range");
    return static_cast<double>(hotGrades_[row]) / 255.0;
}

unsigned
LearningAdaptiveLayout::channelOf(std::uint64_t row) const
{
    ECSSD_ASSERT(row < placement_.size(), "row out of range");
    return placement_[row];
}

std::uint64_t
LearningAdaptiveLayout::dieSlotOf(std::uint64_t row) const
{
    ECSSD_ASSERT(row < dieSlots_.size(), "row out of range");
    return dieSlots_[row];
}

void
LearningAdaptiveLayout::relocateRow(std::uint64_t row,
                                    unsigned channel)
{
    ECSSD_ASSERT(row < placement_.size(), "row out of range");
    ECSSD_ASSERT(channel < channels_, "channel out of range");
    placement_[row] = static_cast<std::uint8_t>(channel);
}

std::unique_ptr<LearningAdaptiveLayout>
LearningAdaptiveLayout::build(std::span<const double> hotness,
                              unsigned channels)
{
    ECSSD_ASSERT(!hotness.empty() && channels > 0, "empty layout");
    ECSSD_ASSERT(channels <= 256, "placement stores 8-bit channels");

    // Greedy balanced partition: visit rows in descending hotness,
    // always placing on the channel with the least accumulated mass.
    std::vector<std::uint64_t> order(hotness.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](std::uint64_t a, std::uint64_t b) {
                  if (hotness[a] != hotness[b])
                      return hotness[a] > hotness[b];
                  return a < b;
              });

    using Load = std::pair<double, unsigned>; // (mass, channel)
    std::priority_queue<Load, std::vector<Load>, std::greater<>>
        loads;
    for (unsigned c = 0; c < channels; ++c)
        loads.push({0.0, c});

    // The framework writes rows hottest-first, so a channel's dies
    // stripe in hotness order: the rows most likely to be fetched
    // together land on different dies.
    std::vector<std::uint8_t> placement(hotness.size(), 0);
    std::vector<std::uint8_t> die_slots(hotness.size(), 0);
    std::vector<std::uint64_t> write_cursor(channels, 0);
    for (const std::uint64_t row : order) {
        const auto [mass, channel] = loads.top();
        loads.pop();
        placement[row] = static_cast<std::uint8_t>(channel);
        die_slots[row] = static_cast<std::uint8_t>(
            write_cursor[channel]++ & 0xff);
        loads.push({mass + hotness[row], channel});
    }

    // The exported hot degree is the row's hotness relative to the
    // hottest row, quantized to a byte.
    const double peak = hotness[order.front()];
    std::vector<std::uint8_t> hot_grades(hotness.size(), 0);
    if (peak > 0.0) {
        for (std::size_t row = 0; row < hotness.size(); ++row) {
            const double h =
                std::clamp(hotness[row] / peak, 0.0, 1.0);
            hot_grades[row] =
                static_cast<std::uint8_t>(h * 255.0 + 0.5);
        }
    }
    return std::unique_ptr<LearningAdaptiveLayout>(
        new LearningAdaptiveLayout(
            std::move(placement), std::move(die_slots),
            std::move(hot_grades), channels));
}

SortedStreamLayoutBuilder::SortedStreamLayoutBuilder(
    std::uint64_t rows, unsigned channels)
    : rows_(rows), channels_(channels),
      writeCursor_(channels, 0),
      placement_(rows, 0), dieSlots_(rows, 0), hotGrades_(rows, 0)
{
    ECSSD_ASSERT(rows > 0 && channels > 0, "empty layout");
    ECSSD_ASSERT(channels <= 256, "placement stores 8-bit channels");
    // Seed the load heap exactly like build(): with identical seeds
    // and an identical pop/push sequence, the heap's internal array
    // — and therefore every tie-break among equally-loaded channels
    // — evolves identically.
    for (unsigned c = 0; c < channels; ++c)
        loads_.push({0.0, c});
}

void
SortedStreamLayoutBuilder::append(std::uint64_t row, double hotness)
{
    ECSSD_ASSERT(appended_ < rows_, "more rows than declared");
    ECSSD_ASSERT(row < rows_, "row out of range");
    if (appended_ == 0) {
        peak_ = hotness;
    } else {
        // Exactly build()'s sort key, as a streaming precondition.
        ECSSD_ASSERT(hotness < lastHotness_
                         || (hotness == lastHotness_
                             && row > lastRow_),
                     "sorted-stream builder fed out of order");
    }
    lastHotness_ = hotness;
    lastRow_ = row;
    ++appended_;

    const auto [mass, channel] = loads_.top();
    loads_.pop();
    placement_[row] = static_cast<std::uint8_t>(channel);
    dieSlots_[row] = static_cast<std::uint8_t>(
        writeCursor_[channel]++ & 0xff);
    loads_.push({mass + hotness, channel});

    // build() grades every row against the global peak after the
    // loop; here the peak is simply the first (hottest) record, so
    // the same quantization runs inline.
    if (peak_ > 0.0) {
        const double h = std::clamp(hotness / peak_, 0.0, 1.0);
        hotGrades_[row] =
            static_cast<std::uint8_t>(h * 255.0 + 0.5);
    }
}

std::unique_ptr<LearningAdaptiveLayout>
SortedStreamLayoutBuilder::finish()
{
    ECSSD_ASSERT(appended_ == rows_,
                 "sorted-stream builder finished short of its rows");
    return std::unique_ptr<LearningAdaptiveLayout>(
        new LearningAdaptiveLayout(
            std::move(placement_), std::move(dieSlots_),
            std::move(hotGrades_), channels_));
}

std::unique_ptr<LearningAdaptiveLayout>
LearningAdaptiveLayout::buildStreaming(
    std::uint64_t rows,
    const std::function<double(std::uint64_t)> &hotness,
    unsigned channels, unsigned grades, std::uint64_t sample_size)
{
    ECSSD_ASSERT(rows > 0 && channels > 0 && grades > 0,
                 "empty layout");
    ECSSD_ASSERT(channels <= 256, "placement stores 8-bit channels");
    ECSSD_ASSERT(hotness, "streaming builder needs a hotness oracle");

    // Pass 1: estimate the mean hotness from a deterministic sample
    // and build logarithmic grade bands around it.  Hot degrees span
    // orders of magnitude (near-certain candidates vs the long
    // tail), so bands geometric in hotness separate the populations
    // cleanly; every band is then striped independently, which is
    // what balances per-tile candidate traffic.
    sim::Rng rng(0xec55d);
    const std::uint64_t samples = std::min(sample_size, rows);
    double sampled_mass = 0.0;
    for (std::uint64_t i = 0; i < samples; ++i)
        sampled_mass += hotness(rng.uniformInt(rows));
    const double mean =
        sampled_mass / static_cast<double>(samples);

    std::vector<double> thresholds; // ascending grade boundaries
    for (unsigned g = 1; g < grades; ++g) {
        const double octave =
            static_cast<double>(g) - static_cast<double>(grades) / 2;
        thresholds.push_back(mean * std::exp2(octave));
    }

    // Pass 2: grade every row, round-robin within its grade so each
    // channel gets the same share of every hotness class.  Cursor
    // phases are staggered per grade so the rounding remainders of
    // different grades do not all land on the low channels.
    // Writes happen grade-major (hottest grade first), so within a
    // channel the rows of one grade occupy consecutive write slots
    // and stripe over the dies.  The per-(grade, channel) write
    // cursor realizes that ordering without a second pass.
    std::vector<std::uint8_t> placement(rows, 0);
    std::vector<std::uint8_t> die_slots(rows, 0);
    std::vector<std::uint8_t> hot_grades(rows, 0);
    std::vector<std::uint64_t> grade_cursor(grades);
    std::vector<std::uint64_t> write_cursor(
        static_cast<std::size_t>(grades) * channels, 0);
    for (unsigned g = 0; g < grades; ++g)
        grade_cursor[g] = g;
    for (std::uint64_t row = 0; row < rows; ++row) {
        const double h = hotness(row);
        unsigned grade = 0;
        while (grade < grades - 1 && h > thresholds[grade])
            ++grade;
        const unsigned channel = static_cast<unsigned>(
            grade_cursor[grade]++ % channels);
        placement[row] = static_cast<std::uint8_t>(channel);
        die_slots[row] = static_cast<std::uint8_t>(
            write_cursor[static_cast<std::size_t>(grade) * channels
                         + channel]++
            & 0xff);
        // The exported hot degree is the grade band, mapped onto
        // (0, 1] with the hottest band at 1.
        hot_grades[row] = static_cast<std::uint8_t>(
            255.0 * static_cast<double>(grade + 1)
                / static_cast<double>(grades)
            + 0.5);
    }
    return std::unique_ptr<LearningAdaptiveLayout>(
        new LearningAdaptiveLayout(
            std::move(placement), std::move(die_slots),
            std::move(hot_grades), channels));
}

std::unique_ptr<LayoutStrategy>
makeLayout(LayoutKind kind, std::uint64_t rows, unsigned channels,
           const std::function<double(std::uint64_t)> &hotness)
{
    switch (kind) {
      case LayoutKind::Sequential:
        return std::make_unique<SequentialLayout>(rows, channels);
      case LayoutKind::Uniform:
        return std::make_unique<UniformLayout>(rows, channels);
      case LayoutKind::LearningAdaptive:
        ECSSD_ASSERT(hotness,
                     "learning layout needs a hotness oracle");
        return LearningAdaptiveLayout::buildStreaming(rows, hotness,
                                                      channels);
    }
    sim::panic("unknown LayoutKind");
}

std::vector<std::uint64_t>
channelAccessPattern(std::span<const std::uint64_t> candidates,
                     const LayoutStrategy &strategy)
{
    std::vector<std::uint64_t> pattern(strategy.channels(), 0);
    for (const std::uint64_t row : candidates)
        ++pattern[strategy.channelOf(row)];
    return pattern;
}

double
accessBalance(std::span<const std::uint64_t> pattern)
{
    if (pattern.empty())
        return 1.0;
    std::uint64_t total = 0;
    std::uint64_t peak = 0;
    for (const std::uint64_t count : pattern) {
        total += count;
        peak = std::max(peak, count);
    }
    if (peak == 0)
        return 1.0;
    const double mean = static_cast<double>(total)
        / static_cast<double>(pattern.size());
    return mean / static_cast<double>(peak);
}

ssdsim::PhysicalPage
pageOfRow(const LayoutStrategy &strategy,
          const ssdsim::SsdConfig &config, std::uint64_t row,
          unsigned page_idx)
{
    ssdsim::PhysicalPage ppa;
    ppa.channel = strategy.channelOf(row);
    // The die is fixed by the FTL's within-channel write striping,
    // which the strategy exposes as the row's die slot; multi-page
    // rows continue the stripe.
    ppa.die = static_cast<unsigned>(
        (strategy.dieSlotOf(row) + page_idx)
        % config.diesPerChannel);
    const std::uint64_t h =
        (row * 0x9e3779b97f4a7c15ULL) ^ page_idx;
    ppa.plane = static_cast<unsigned>((h >> 24)
                                      % config.planesPerDie);
    ppa.block = static_cast<unsigned>((h >> 32)
                                      % config.blocksPerPlane);
    ppa.page = static_cast<unsigned>((h >> 48)
                                     % config.pagesPerBlock);
    return ppa;
}

} // namespace layout
} // namespace ecssd
