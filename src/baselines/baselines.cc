#include "baselines.hh"

#include <algorithm>
#include <memory>

#include "accel/pipeline.hh"
#include "circuit/mac_circuit.hh"
#include "ecssd/system.hh"
#include "sim/logging.hh"

namespace ecssd
{
namespace baselines
{

namespace
{

/** Page-granular flash byte count of a candidate row set. */
std::uint64_t
candidatePageBytes(const xclass::BenchmarkSpec &spec,
                   std::span<const std::uint64_t> candidates,
                   unsigned page_bytes)
{
    const std::uint64_t rows_per_page = std::max<std::uint64_t>(
        1, page_bytes / spec.rowBytes());
    const unsigned pages_per_row = static_cast<unsigned>(
        (spec.rowBytes() + page_bytes - 1) / page_bytes);
    std::uint64_t pages = 0;
    std::uint64_t last_group = ~std::uint64_t(0);
    for (const std::uint64_t row : candidates) {
        const std::uint64_t group = row / rows_per_page;
        if (group == last_group)
            continue;
        last_group = group;
        pages += pages_per_row;
    }
    return pages * page_bytes;
}

/** GenStore-like in-SSD baseline via the shared pipeline model. */
double
genStoreBatchMs(const xclass::BenchmarkSpec &spec, bool screening,
                unsigned batches, std::uint64_t seed)
{
    EcssdOptions options;
    options.fpKind = circuit::FpMacKind::Naive;
    options.layoutKind = layout::LayoutKind::Uniform;
    // GenStore stores everything in flash uniformly (homogeneous).
    options.int4Placement = accel::Int4Placement::Flash;
    options.screening = screening;
    options.seed = seed;

    EcssdSystem system(spec, options);

    // Iso-area compute: GenStore-N spends the whole 0.1836 mm^2 on
    // naive FP32 MACs; GenStore-AP keeps ECSSD's INT4 array and
    // fills the FP32 allocation with naive MACs.  Per-channel
    // accelerators quantize the MACs to a multiple of the channel
    // count.
    const double total_area =
        circuit::macArray(circuit::alignmentFreeFp32Mac(), 64)
            .areaMm2()
        + circuit::macArray(circuit::int4Mac(), 256).areaMm2()
        + 0.0006;
    const double fp32_area = screening
        ? circuit::macArray(circuit::alignmentFreeFp32Mac(), 64)
              .areaMm2()
        : total_area;
    unsigned macs =
        circuit::macsInArea(circuit::naiveFp32Mac(), fp32_area);
    const unsigned channels = options.ssd.channels;
    macs = std::max(channels, macs - macs % channels);

    accel::AccelConfig genstore_config;
    genstore_config.fpKind = circuit::FpMacKind::Naive;
    genstore_config.fp32GflopsOverride =
        circuit::peakGflops(macs);
    if (!screening)
        genstore_config.int4GopsOverride = 0.0;
    accel::InferencePipeline pipeline(
        spec, genstore_config, system.ssd(), system.strategy(),
        accel::Int4Placement::Flash);
    pipeline.setScreeningEnabled(screening);

    std::unique_ptr<accel::CandidateSource> source;
    if (screening)
        source = std::make_unique<accel::TraceSource>(spec, seed);
    else
        source =
            std::make_unique<accel::AllRowsSource>(spec.categories);
    const accel::RunResult result =
        pipeline.run(*source, batches);
    return result.meanBatchMs();
}

} // namespace

std::vector<Architecture>
allBaselines()
{
    return {Architecture::CpuN,       Architecture::SmartSsdN,
            Architecture::GenStoreN,  Architecture::SmartSsdHN,
            Architecture::CpuAp,      Architecture::SmartSsdAp,
            Architecture::GenStoreAp, Architecture::SmartSsdHAp};
}

std::string
toString(Architecture arch)
{
    switch (arch) {
      case Architecture::CpuN:
        return "CPU-N";
      case Architecture::CpuAp:
        return "CPU-AP";
      case Architecture::GenStoreN:
        return "GenStore-N";
      case Architecture::GenStoreAp:
        return "GenStore-AP";
      case Architecture::SmartSsdN:
        return "SmartSSD-N";
      case Architecture::SmartSsdAp:
        return "SmartSSD-AP";
      case Architecture::SmartSsdHN:
        return "SmartSSD-H-N";
      case Architecture::SmartSsdHAp:
        return "SmartSSD-H-AP";
      case Architecture::Ecssd:
        return "ECSSD";
    }
    return "unknown";
}

bool
usesScreening(Architecture arch)
{
    switch (arch) {
      case Architecture::CpuAp:
      case Architecture::GenStoreAp:
      case Architecture::SmartSsdAp:
      case Architecture::SmartSsdHAp:
      case Architecture::Ecssd:
        return true;
      default:
        return false;
    }
}

BaselineResult
simulate(Architecture arch, const xclass::BenchmarkSpec &spec,
         unsigned batches, std::uint64_t seed, const HostParams &host)
{
    BaselineResult result;
    result.arch = arch;
    result.name = toString(arch);
    ECSSD_ASSERT(batches > 0, "need at least one batch");

    const ssdsim::SsdConfig ssd_config;
    const double batch = spec.batchSize;
    const double dense_bytes =
        static_cast<double>(spec.fp32WeightBytes());
    const double dense_flops =
        batch * static_cast<double>(spec.categories)
        * spec.hiddenDim * 2.0;
    const double screen_ops =
        batch * static_cast<double>(spec.categories)
        * spec.shrunkDim() * 2.0;
    const double int4_bytes =
        static_cast<double>(spec.int4WeightBytes());
    const double internal_gbps =
        ssd_config.internalBandwidthGbps();

    // Candidate statistics for the -AP variants.
    xclass::CandidateTrace trace(spec, seed);
    double cand_bytes = 0.0;
    double cand_rows = 0.0;
    if (usesScreening(arch)) {
        for (unsigned b = 0; b < batches; ++b) {
            const std::vector<std::uint64_t> candidates =
                trace.drawCandidates();
            cand_rows += static_cast<double>(candidates.size());
            cand_bytes += static_cast<double>(candidatePageBytes(
                spec, candidates, ssd_config.pageBytes));
        }
        cand_rows /= batches;
        cand_bytes /= batches;
    }
    const double cand_flops =
        batch * cand_rows * spec.hiddenDim * 2.0;
    result.candidateRows = usesScreening(arch)
        ? static_cast<std::uint64_t>(cand_rows)
        : spec.categories;

    double seconds = 0.0;
    switch (arch) {
      case Architecture::CpuN:
        // Weights stream over the SSD I/O link, then the CPU's
        // memory-bound GEMV grinds through them; the two phases do
        // not overlap in the naive implementation.
        seconds = dense_bytes / (host.ssdIoGbps * 1e9)
            + dense_flops / (host.cpuGemvGflops * 1e9);
        break;

      case Architecture::CpuAp:
        // INT4 screener lives in host DRAM; candidates come from the
        // SSD as discontinuous page reads.
        seconds = screen_ops / (host.cpuInt8Gops * 1e9)
            + cand_bytes
                / (host.ssdIoGbps * host.randomReadEfficiency * 1e9)
            + cand_flops / (host.cpuGemvGflops * 1e9);
        break;

      case Architecture::GenStoreN:
        return BaselineResult{
            arch, toString(arch),
            genStoreBatchMs(spec, false, batches, seed),
            spec.categories};

      case Architecture::GenStoreAp:
        return BaselineResult{
            arch, toString(arch),
            genStoreBatchMs(spec, true, batches, seed),
            static_cast<std::uint64_t>(cand_rows)};

      case Architecture::SmartSsdN:
      case Architecture::SmartSsdHN: {
        const double switch_gbps = arch == Architecture::SmartSsdN
            ? host.switchGbps
            : host.switchHighGbps;
        // Streaming is bounded by the slower of internal flash and
        // the switch; FPGA compute overlaps the stream.
        seconds = std::max(
            {dense_bytes / (internal_gbps * 1e9),
             dense_bytes / (switch_gbps * 1e9),
             dense_flops / (host.fpgaGflops * 1e9)});
        break;
      }

      case Architecture::SmartSsdAp:
      case Architecture::SmartSsdHAp: {
        const double switch_gbps = arch == Architecture::SmartSsdAp
            ? host.switchGbps
            : host.switchHighGbps;
        // Stage 1: INT4 screener streams out (sequential), screening
        // runs on the FPGA as data arrives.
        const double stage1 = std::max(
            {int4_bytes / (internal_gbps * 1e9),
             int4_bytes / (switch_gbps * 1e9),
             screen_ops / (host.fpgaInt4Gops * 1e9)});
        // Stage 2: discontinuous candidate pages cross the switch at
        // its random-read efficiency; classification overlaps.
        const double stage2 = std::max(
            {cand_bytes / (internal_gbps * 1e9),
             cand_bytes
                 / (switch_gbps * host.randomReadEfficiency * 1e9),
             cand_flops / (host.fpgaGflops * 1e9)});
        seconds = stage1 + stage2;
        break;
      }

      case Architecture::Ecssd: {
        EcssdSystem system(spec, EcssdOptions::full());
        const accel::RunResult run = system.runInference(batches);
        return BaselineResult{
            arch, toString(arch), run.meanBatchMs(),
            static_cast<std::uint64_t>(cand_rows)};
      }
    }

    result.batchMs = seconds * 1e3;
    return result;
}

} // namespace baselines
} // namespace ecssd
