#include "enmc.hh"

#include <algorithm>
#include <vector>

#include "sim/logging.hh"

namespace ecssd
{
namespace baselines
{

EnmcResult
simulateEnmc(const xclass::BenchmarkSpec &spec, unsigned batches,
             std::uint64_t seed, const EnmcConfig &config)
{
    ECSSD_ASSERT(batches > 0, "need at least one batch");
    EnmcResult result;

    const double batch = spec.batchSize;
    const std::uint64_t rows_per_rank =
        (spec.categories + config.ranks - 1) / config.ranks;
    const double int4_bytes_per_rank =
        static_cast<double>(rows_per_rank) * spec.shrunkDim() / 2.0;
    const double rank_gflops =
        config.peakGflops / config.ranks;
    const double rank_int4_gops =
        config.peakInt4Gops / config.ranks;
    const double rank_bw = config.rankBandwidthGbps * 1e9;

    // DRAM capacity check: INT4 + FP32 shards must fit each rank.
    const double bytes_per_rank =
        int4_bytes_per_rank
        + static_cast<double>(rows_per_rank) * spec.rowBytes();
    result.fitsInDram =
        bytes_per_rank <= static_cast<double>(config.rankBytes);
    const double overflow_fraction = result.fitsInDram
        ? 0.0
        : 1.0
            - static_cast<double>(config.rankBytes)
                / bytes_per_rank;

    // Candidate counts per rank per batch, from the shared trace
    // machinery so the skew matches ECSSD's workload.  Each rank
    // holds a contiguous row shard; candidates spread by popularity.
    xclass::CandidateTrace trace(spec, seed);
    double total_seconds = 0.0;
    double total_flops = 0.0;
    for (unsigned b = 0; b < batches; ++b) {
        const std::vector<std::uint64_t> candidates =
            trace.drawCandidates();
        std::vector<std::uint64_t> per_rank(config.ranks, 0);
        for (const std::uint64_t row : candidates)
            ++per_rank[std::min<std::uint64_t>(
                row / rows_per_rank, config.ranks - 1)];

        // Per-rank timing; the batch ends at the slowest rank.
        double slowest = 0.0;
        for (unsigned r = 0; r < config.ranks; ++r) {
            const double screen_ops =
                batch * static_cast<double>(rows_per_rank)
                * spec.shrunkDim() * 2.0;
            const double screen_s =
                std::max(int4_bytes_per_rank / rank_bw,
                         screen_ops / (rank_int4_gops * 1e9));
            const double cand_bytes =
                static_cast<double>(per_rank[r])
                * spec.rowBytes();
            const double cand_flops = batch
                * static_cast<double>(per_rank[r]) * spec.hiddenDim
                * 2.0;
            // Overflowed shard fraction streams from storage.
            const double stream_s = cand_bytes
                * (1.0 - overflow_fraction) / rank_bw
                + cand_bytes * overflow_fraction
                    / (config.storageGbps * 1e9 / config.ranks);
            const double classify_s = std::max(
                stream_s, cand_flops / (rank_gflops * 1e9));
            slowest = std::max(slowest, screen_s + classify_s);
            total_flops += cand_flops;
        }
        total_seconds += slowest;
    }

    result.batchMs = total_seconds * 1e3 / batches;
    result.effectiveGflops =
        total_seconds > 0.0 ? total_flops / total_seconds / 1e9
                            : 0.0;
    result.gflopsPerWatt =
        result.effectiveGflops / config.systemPowerW;
    return result;
}

} // namespace baselines
} // namespace ecssd
