/**
 * @file
 * Simulated ENMC (Liu et al., MICRO'21): the near-DRAM-computing
 * predecessor of ECSSD that Section 7.3 compares against.
 *
 * ENMC places an accelerator at every DRAM rank of a 512 GB, 64-rank
 * memory system and runs the same approximate screening algorithm
 * with rank-level parallelism.  Weights are sharded row-wise across
 * ranks; each rank screens and classifies its shard locally at the
 * rank's internal bandwidth, so there is no candidate-gathering
 * bottleneck — but the whole model must fit the (expensive) DRAM
 * pool, and capacity scaling means buying more ranks.
 */

#ifndef ECSSD_BASELINES_ENMC_HH
#define ECSSD_BASELINES_ENMC_HH

#include <cstdint>

#include "sim/types.hh"
#include "xclass/workload.hh"

namespace ecssd
{
namespace baselines
{

/** ENMC system parameters (Section 7.3 and the ENMC paper). */
struct EnmcConfig
{
    /** DRAM ranks, each with its own accelerator. */
    unsigned ranks = 64;
    /** Capacity per rank, bytes (64 x 8 GB = 512 GB). */
    std::uint64_t rankBytes = 8ULL << 30;
    /** Internal bandwidth per rank, GB/s. */
    double rankBandwidthGbps = 19.2;
    /** Aggregate peak compute (Section 7.3: 800 GFLOPS). */
    double peakGflops = 800.0;
    /** Peak INT4 rate, GOPS (scaled like ECSSD's 4:1 ratio). */
    double peakInt4Gops = 3200.0;
    /** System power, W (ECSSD's 4.55 GFLOPS/W vs ENMC's 3.805). */
    double systemPowerW = 800.0 / 3.805;
    /** 28 nm chip area relative to ECSSD's accelerator (154x). */
    double areaVsEcssd = 154.0;
    /**
     * Host-storage link used when the model exceeds DRAM capacity
     * and shards must stream from an SSD per batch, GB/s.
     */
    double storageGbps = 4.0;
};

/** Outcome of an ENMC run on one benchmark. */
struct EnmcResult
{
    /** Mean per-batch latency, milliseconds. */
    double batchMs = 0.0;
    /** True when the model fits the DRAM pool entirely. */
    bool fitsInDram = true;
    /** Achieved FP32 rate, GFLOPS. */
    double effectiveGflops = 0.0;
    /** Achieved energy efficiency, GFLOPS/W. */
    double gflopsPerWatt = 0.0;
};

/**
 * Simulate @p batches screened-inference batches on ENMC.
 *
 * Per batch and per rank: the rank screens its shard from local
 * DRAM (INT4 stream + compute overlapped), then classifies its
 * candidates (FP32 stream + compute overlapped); the batch finishes
 * when the slowest rank does.  Candidate-count imbalance across
 * ranks is drawn from the same trace machinery ECSSD uses.
 *
 * When the FP32 weights exceed the DRAM pool, the overflow fraction
 * streams from storage at storageGbps per batch — the degradation
 * Section 7.3 predicts for ever-growing models.
 */
EnmcResult simulateEnmc(const xclass::BenchmarkSpec &spec,
                        unsigned batches, std::uint64_t seed = 1,
                        const EnmcConfig &config = EnmcConfig{});

} // namespace baselines
} // namespace ecssd

#endif // ECSSD_BASELINES_ENMC_HH
