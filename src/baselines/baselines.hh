/**
 * @file
 * Models of the eight comparison architectures of Section 6.7:
 *
 *   CPU-N / CPU-AP           host CPU, weights streamed from the SSD
 *   GenStore-N / GenStore-AP in-SSD per-channel naive accelerators
 *   SmartSSD-N / -AP         FPGA behind a 3 GB/s PCIe switch
 *   SmartSSD-H-N / -H-AP     same with a 6 GB/s switch
 *
 * "-N" variants run dense full-precision classification over all L
 * rows; "-AP" variants use the approximate screening algorithm.  All
 * in/near-storage baselines share the same flash substrate model
 * (8 x 1 GB/s channels) so the comparison isolates the architecture,
 * and the in-SSD baselines get the same total compute-logic area as
 * the ECSSD accelerator.
 */

#ifndef ECSSD_BASELINES_BASELINES_HH
#define ECSSD_BASELINES_BASELINES_HH

#include <string>
#include <vector>

#include "accel/candidate_source.hh"
#include "sim/types.hh"
#include "ssdsim/config.hh"
#include "xclass/workload.hh"

namespace ecssd
{
namespace baselines
{

/** The architectures of Fig 13 (plus ECSSD itself). */
enum class Architecture
{
    CpuN,
    CpuAp,
    GenStoreN,
    GenStoreAp,
    SmartSsdN,
    SmartSsdAp,
    SmartSsdHN,
    SmartSsdHAp,
    Ecssd,
};

/** All eight baselines in the paper's Fig 13 order. */
std::vector<Architecture> allBaselines();

std::string toString(Architecture arch);

/** True for architectures using the approximate screening algorithm. */
bool usesScreening(Architecture arch);

/** Host/FPGA performance constants of the baseline models. */
struct HostParams
{
    /** SSD sequential I/O bandwidth to the host, GB/s (Section 2.2's
     *  "single digit GB/s, such as 4 GB/s"). */
    double ssdIoGbps = 4.0;
    /**
     * Effective CPU FP32 GEMV rate, GFLOPS.  The Xeon 4110's dense
     * classification is memory-bound at host-DRAM bandwidth with
     * little batch blocking, far below its peak.
     */
    double cpuGemvGflops = 45.0;
    /** Effective CPU INT8 screening rate, GOPS. */
    double cpuInt8Gops = 100.0;
    /** SmartSSD FPGA FP32 rate, GFLOPS (never the bottleneck). */
    double fpgaGflops = 1500.0;
    /** SmartSSD FPGA INT4 rate, GOPS. */
    double fpgaInt4Gops = 6000.0;
    /** SmartSSD SSD<->FPGA switch bandwidth, GB/s. */
    double switchGbps = 3.0;
    /** SmartSSD-H upgraded switch bandwidth, GB/s. */
    double switchHighGbps = 6.0;
    /**
     * Efficiency of page-granular random reads crossing the switch
     * (candidate fetches are discontinuous, so the link does not
     * reach its streaming rate).
     */
    double randomReadEfficiency = 0.6;
};

/** Outcome of one architecture on one benchmark. */
struct BaselineResult
{
    Architecture arch = Architecture::CpuN;
    std::string name;
    /** Mean latency of one inference batch, milliseconds. */
    double batchMs = 0.0;
    /** Candidate rows per batch (L for the -N variants). */
    std::uint64_t candidateRows = 0;
};

/**
 * Simulate @p batches inference batches of @p spec on @p arch.
 *
 * ECSSD itself is delegated to EcssdSystem; baselines use analytic
 * component models over the shared flash-substrate assumptions.
 *
 * @param arch Architecture.
 * @param spec Benchmark.
 * @param batches Batch count to average over.
 * @param seed Trace seed.
 * @param host Host/FPGA constants.
 */
BaselineResult simulate(Architecture arch,
                        const xclass::BenchmarkSpec &spec,
                        unsigned batches, std::uint64_t seed = 1,
                        const HostParams &host = HostParams{});

} // namespace baselines
} // namespace ecssd

#endif // ECSSD_BASELINES_BASELINES_HH
