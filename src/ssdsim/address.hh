/**
 * @file
 * Physical flash addressing: channel / die / plane / block / page,
 * with linearization helpers used by the FTL's mapping table.
 */

#ifndef ECSSD_SSDSIM_ADDRESS_HH
#define ECSSD_SSDSIM_ADDRESS_HH

#include <cstdint>

#include "sim/logging.hh"
#include "ssdsim/config.hh"

namespace ecssd
{
namespace ssdsim
{

/** A logical page number as seen by the host. */
using LogicalPage = std::uint64_t;

/** Sentinel for "unmapped". */
constexpr std::uint64_t invalidPage = ~std::uint64_t(0);

/** A fully-qualified physical page address. */
struct PhysicalPage
{
    unsigned channel = 0;
    unsigned die = 0;
    unsigned plane = 0;
    unsigned block = 0;
    unsigned page = 0;

    bool
    operator==(const PhysicalPage &other) const = default;
};

/**
 * Bijective packing of PhysicalPage into a 64-bit id, ordered
 * channel-major so that pages of one channel are contiguous.
 */
class AddressCodec
{
  public:
    explicit AddressCodec(const SsdConfig &config) : config_(config) {}

    std::uint64_t
    encode(const PhysicalPage &ppa) const
    {
        ECSSD_ASSERT(valid(ppa), "invalid physical page");
        std::uint64_t id = ppa.channel;
        id = id * config_.diesPerChannel + ppa.die;
        id = id * config_.planesPerDie + ppa.plane;
        id = id * config_.blocksPerPlane + ppa.block;
        id = id * config_.pagesPerBlock + ppa.page;
        return id;
    }

    PhysicalPage
    decode(std::uint64_t id) const
    {
        ECSSD_ASSERT(id < config_.totalPages(),
                     "physical page id out of range");
        PhysicalPage ppa;
        ppa.page = static_cast<unsigned>(id % config_.pagesPerBlock);
        id /= config_.pagesPerBlock;
        ppa.block = static_cast<unsigned>(id % config_.blocksPerPlane);
        id /= config_.blocksPerPlane;
        ppa.plane = static_cast<unsigned>(id % config_.planesPerDie);
        id /= config_.planesPerDie;
        ppa.die = static_cast<unsigned>(id % config_.diesPerChannel);
        id /= config_.diesPerChannel;
        ppa.channel = static_cast<unsigned>(id);
        return ppa;
    }

    bool
    valid(const PhysicalPage &ppa) const
    {
        return ppa.channel < config_.channels
            && ppa.die < config_.diesPerChannel
            && ppa.plane < config_.planesPerDie
            && ppa.block < config_.blocksPerPlane
            && ppa.page < config_.pagesPerBlock;
    }

  private:
    // Held by value: the config is a small POD and copying it removes
    // any lifetime coupling to the caller's configuration object.
    SsdConfig config_;
};

} // namespace ssdsim
} // namespace ecssd

#endif // ECSSD_SSDSIM_ADDRESS_HH
