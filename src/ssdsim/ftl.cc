#include "ftl.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace ecssd
{
namespace ssdsim
{

Ftl::Ftl(const SsdConfig &config, FlashArray &flash)
    : config_(config), flash_(flash), codec_(config)
{
    config_.validate();
    const double usable = 1.0 - config_.overProvisioning;
    logicalPages_ = static_cast<std::uint64_t>(
        static_cast<double>(config_.totalPages()) * usable);
    lpasPerChannel_ =
        (logicalPages_ + config_.channels - 1) / config_.channels;

    const std::size_t pool_count =
        static_cast<std::size_t>(config_.channels)
        * config_.diesPerChannel * config_.planesPerDie;
    pools_.resize(pool_count);
    blocks_.resize(pool_count * config_.blocksPerPlane);

    for (unsigned ch = 0; ch < config_.channels; ++ch) {
        for (unsigned die = 0; die < config_.diesPerChannel; ++die) {
            for (unsigned pl = 0; pl < config_.planesPerDie; ++pl) {
                Pool &pool = pools_[poolIndex(ch, die, pl)];
                pool.channel = ch;
                pool.die = die;
                pool.plane = pl;
                for (unsigned b = 0; b < config_.blocksPerPlane; ++b)
                    pool.freeBlocks.push_back(b);
            }
        }
    }
    eraseHist_[0] = blocks_.size();
}

std::size_t
Ftl::poolIndex(unsigned channel, unsigned die, unsigned plane) const
{
    return (static_cast<std::size_t>(channel)
                * config_.diesPerChannel
            + die)
        * config_.planesPerDie
        + plane;
}

std::size_t
Ftl::blockIndex(const PhysicalPage &ppa) const
{
    return poolIndex(ppa.channel, ppa.die, ppa.plane)
        * config_.blocksPerPlane
        + ppa.block;
}

unsigned
Ftl::channelOfLpa(LogicalPage lpa) const
{
    ECSSD_ASSERT(lpa < logicalPages_, "logical page out of range");
    const unsigned channel =
        static_cast<unsigned>(lpa / lpasPerChannel_);
    return std::min(channel, config_.channels - 1);
}

std::optional<PhysicalPage>
Ftl::translate(LogicalPage lpa) const
{
    const auto it = l2p_.find(lpa);
    if (it == l2p_.end())
        return std::nullopt;
    return codec_.decode(it->second);
}

std::uint64_t
Ftl::freePagesInPool(const Pool &pool) const
{
    std::uint64_t pages = static_cast<std::uint64_t>(
                              pool.freeBlocks.size())
        * config_.pagesPerBlock;
    if (pool.hasActive)
        pages += config_.pagesPerBlock - pool.nextPage;
    return pages;
}

PhysicalPage
Ftl::allocateInPool(Pool &pool)
{
    if (!pool.hasActive || pool.nextPage >= config_.pagesPerBlock) {
        if (pool.freeBlocks.empty()) {
            // Every block is live or retired: the device (or this
            // pool) has worn out.  A real drive turns read-only.
            sim::fatal("pool ch", pool.channel, " die", pool.die,
                       " plane", pool.plane,
                       " has no free blocks (", stats_.badBlocks,
                       " retired); device worn out");
        }
        pool.activeBlock = pool.freeBlocks.front();
        pool.freeBlocks.pop_front();
        pool.nextPage = 0;
        pool.hasActive = true;
    }
    PhysicalPage ppa;
    ppa.channel = pool.channel;
    ppa.die = pool.die;
    ppa.plane = pool.plane;
    ppa.block = pool.activeBlock;
    ppa.page = pool.nextPage++;
    return ppa;
}

Ftl::Pool &
Ftl::pickPool(unsigned channel)
{
    Pool *best = nullptr;
    std::uint64_t best_free = 0;
    for (unsigned die = 0; die < config_.diesPerChannel; ++die) {
        for (unsigned pl = 0; pl < config_.planesPerDie; ++pl) {
            Pool &pool = pools_[poolIndex(channel, die, pl)];
            const std::uint64_t free = freePagesInPool(pool);
            if (best == nullptr || free > best_free) {
                best = &pool;
                best_free = free;
            }
        }
    }
    ECSSD_ASSERT(best != nullptr, "channel has no pools");
    return *best;
}

bool
Ftl::findGcVictim(const Pool &pool, unsigned &victim,
                  unsigned &victim_valid) const
{
    // Greedy victim: fully-written block with the fewest valid pages;
    // erase count breaks ties so wear stays level.  A victim with no
    // stale pages reclaims nothing and is never worth the erase.
    bool found = false;
    std::uint64_t best_erase = 0;
    for (unsigned b = 0; b < config_.blocksPerPlane; ++b) {
        if (pool.hasActive && b == pool.activeBlock)
            continue;
        const bool is_free =
            std::find(pool.freeBlocks.begin(), pool.freeBlocks.end(),
                      b)
            != pool.freeBlocks.end();
        if (is_free)
            continue;
        PhysicalPage probe{pool.channel, pool.die, pool.plane, b, 0};
        const BlockInfo &info = blocks_[blockIndex(probe)];
        if (info.writtenPages < config_.pagesPerBlock
            || info.validPages >= config_.pagesPerBlock)
            continue;
        if (!found || info.validPages < victim_valid
            || (info.validPages == victim_valid
                && info.eraseCount < best_erase)) {
            victim = b;
            victim_valid = info.validPages;
            best_erase = info.eraseCount;
            found = true;
        }
    }
    return found;
}

sim::Tick
Ftl::collectGarbage(Pool &pool, sim::Tick issue_at, bool &progress)
{
    progress = false;

    unsigned victim = 0;
    unsigned best_valid = std::numeric_limits<unsigned>::max();
    if (!findGcVictim(pool, victim, best_valid))
        return issue_at; // Nothing reclaimable yet.

    // Relocations consume free space before the erase returns it;
    // without room for the victim's valid pages the collection would
    // deadlock the pool.
    if (freePagesInPool(pool) < best_valid)
        return issue_at;
    ++stats_.gcRuns;
    progress = true;
    ECSSD_TRACE_LOG(sim::TraceCategory::Ftl, issue_at,
                    "GC: pool ch", pool.channel, " die", pool.die,
                    " plane", pool.plane, " victim block ", victim,
                    " valid ", best_valid);

    // Relocate the victim's valid pages, then erase it.
    sim::Tick t = issue_at;
    for (unsigned pg = 0; pg < config_.pagesPerBlock; ++pg) {
        PhysicalPage src{pool.channel, pool.die, pool.plane, victim,
                         pg};
        const auto it = p2l_.find(codec_.encode(src));
        if (it == p2l_.end())
            continue;
        const LogicalPage lpa = it->second;
        bool unreadable = false;
        t = relocatePage(src, pool, t, unreadable);
        if (unreadable) {
            // The stale codeword still relocates (the block must be
            // reclaimed) but the copy is latent data loss: a future
            // host read of this lpa returns corrupt data on a real
            // drive.  Surfacing that would need per-page poison
            // state; counting + warning keeps the model honest.
            ++stats_.gcUncorrectableReads;
            sim::warn("GC relocating uncorrectable page lpa ", lpa);
        }
        ++stats_.gcRelocations;
    }

    ++stats_.gcErases;
    return eraseAndRecycle(pool, victim, t);
}

sim::Tick
Ftl::rescueCollect(Pool &pool, sim::Tick issue_at, bool &progress)
{
    progress = false;
    unsigned victim = 0;
    unsigned victim_valid = std::numeric_limits<unsigned>::max();
    if (!findGcVictim(pool, victim, victim_valid))
        return issue_at; // Every block fully valid: truly worn out.
    Pool &dst = pickPool(pool.channel);
    if (&dst == &pool || freePagesInPool(dst) < victim_valid)
        return issue_at; // No sibling with headroom either.

    ++stats_.gcRuns;
    ++stats_.rescueGcRuns;
    ECSSD_TRACE_LOG(sim::TraceCategory::Ftl, issue_at,
                    "rescue GC: pool ch", pool.channel, " die",
                    pool.die, " plane", pool.plane,
                    " evacuating block ", victim, " (", victim_valid,
                    " valid) into die", dst.die, " plane", dst.plane);

    sim::Tick t = issue_at;
    for (unsigned pg = 0; pg < config_.pagesPerBlock; ++pg) {
        PhysicalPage src{pool.channel, pool.die, pool.plane, victim,
                         pg};
        const auto it = p2l_.find(codec_.encode(src));
        if (it == p2l_.end())
            continue;
        const LogicalPage lpa = it->second;
        bool unreadable = false;
        t = relocatePage(src, dst, t, unreadable);
        if (unreadable) {
            ++stats_.gcUncorrectableReads;
            sim::warn("rescue GC relocating uncorrectable page lpa ",
                      lpa);
        }
        ++stats_.gcRelocations;
    }
    ++stats_.gcErases;
    progress = true;
    return eraseAndRecycle(pool, victim, t);
}

sim::Tick
Ftl::relocatePage(const PhysicalPage &src, Pool &dst_pool,
                  sim::Tick issue_at, bool &unreadable)
{
    const std::uint64_t src_id = codec_.encode(src);
    const auto it = p2l_.find(src_id);
    ECSSD_ASSERT(it != p2l_.end(), "relocating an unmapped page");
    const LogicalPage lpa = it->second;

    if (relocationListener_)
        relocationListener_(src);

    unreadable = false;
    sim::Tick t = flash_.readPage(src, issue_at, 0, 0, &unreadable);
    const PhysicalPage dst = allocateInPool(dst_pool);
    t = flash_.programPage(dst, t);

    const std::uint64_t dst_id = codec_.encode(dst);
    l2p_[lpa] = dst_id;
    p2l_.erase(it);
    p2l_[dst_id] = lpa;
    BlockInfo &src_info = blocks_[blockIndex(src)];
    ECSSD_ASSERT(src_info.validPages > 0,
                 "relocating page out of an empty block");
    --src_info.validPages;
    BlockInfo &dst_info = blocks_[blockIndex(dst)];
    ++dst_info.validPages;
    ++dst_info.writtenPages;
    return t;
}

sim::Tick
Ftl::migrateComputedPage(const PhysicalPage &src,
                         const PhysicalPage &dst,
                         sim::Tick issue_at)
{
    if (relocationListener_)
        relocationListener_(src);

    bool unreadable = false;
    sim::Tick t = flash_.readPage(src, issue_at, 0, 0, &unreadable);
    if (unreadable) {
        ++stats_.relayoutUnreadable;
        sim::warn("re-layout migrating uncorrectable weight page on "
                  "channel ",
                  src.channel);
    }
    t = flash_.programPage(dst, t);
    ++stats_.relayoutMigrations;
    return t;
}

void
Ftl::bumpEraseCount(BlockInfo &info)
{
    const auto it = eraseHist_.find(info.eraseCount);
    ECSSD_ASSERT(it != eraseHist_.end() && it->second > 0,
                 "erase histogram out of sync");
    if (--it->second == 0)
        eraseHist_.erase(it);
    ++info.eraseCount;
    ++eraseHist_[info.eraseCount];
}

sim::Tick
Ftl::eraseAndRecycle(Pool &pool, unsigned block, sim::Tick issue_at)
{
    PhysicalPage addr{pool.channel, pool.die, pool.plane, block, 0};
    BlockInfo &info = blocks_[blockIndex(addr)];
    info.validPages = 0;
    info.writtenPages = 0;
    bumpEraseCount(info);
    bool erase_failed = false;
    const sim::Tick done =
        flash_.eraseBlock(addr, issue_at, &erase_failed);
    if (erase_failed) {
        // Retire the block: it never returns to the free pool.
        ++stats_.badBlocks;
        sim::warn("retiring bad block ch", pool.channel, " die",
                  pool.die, " plane", pool.plane, " block ", block);
    } else {
        pool.freeBlocks.push_back(block);
    }
    return done;
}

sim::Tick
Ftl::write(LogicalPage lpa, sim::Tick issue_at, bool *rejected)
{
    ECSSD_ASSERT(lpa < logicalPages_, "logical page out of range");
    if (rejected)
        *rejected = false;
    if (readOnly_) {
        if (!rejected)
            sim::fatal("write to a read-only (end-of-life) device: "
                       "lpa ", lpa, " (", stats_.badBlocks,
                       " blocks retired)");
        ++stats_.rejectedWrites;
        *rejected = true;
        return issue_at;
    }

    const unsigned channel = channelOfLpa(lpa);
    Pool &pool = pickPool(channel);

    sim::Tick t = issue_at;
    const double threshold =
        std::max(config_.gcThreshold, 1.0e-9);
    const std::uint64_t pool_pages =
        static_cast<std::uint64_t>(config_.blocksPerPlane)
        * config_.pagesPerBlock;
    // Collect until the pool is healthy again or no victim can make
    // progress; a single pass may reclaim less than one block's
    // worth when victims are mostly valid.
    bool gc_stuck = false;
    while (static_cast<double>(freePagesInPool(pool))
           < threshold * static_cast<double>(pool_pages)) {
        bool progress = false;
        t = collectGarbage(pool, t, progress);
        if (!progress) {
            gc_stuck = true;
            break;
        }
    }

    // A pool can wedge with its GC deadlocked: collection needs one
    // free page of headroom per valid page in the victim, so a pool
    // below one block's worth of free pages whose victims all hold
    // more valid data than that can never reclaim its own stale
    // space — and pickPool (rightly) stops routing writes its way,
    // so the write-path GC above never touches it again while its
    // pinned pages slowly strangle the channel.  Unwedge it here:
    // same-pool GC first (low-valid victims fit the remaining
    // headroom), then a cross-pool evacuation into a sibling with
    // room.  One block of headroom makes the pool self-sustaining
    // again: any victim's valid pages fit below it.
    for (unsigned die = 0; die < config_.diesPerChannel; ++die) {
        for (unsigned pl = 0; pl < config_.planesPerDie; ++pl) {
            Pool &sibling = pools_[poolIndex(channel, die, pl)];
            if (freePagesInPool(sibling) >= config_.pagesPerBlock)
                continue;
            bool unwedged = true;
            while (unwedged
                   && freePagesInPool(sibling)
                       < config_.pagesPerBlock)
                t = collectGarbage(sibling, t, unwedged);
            while (freePagesInPool(sibling) < config_.pagesPerBlock) {
                bool rescued = false;
                t = rescueCollect(sibling, t, rescued);
                if (!rescued)
                    break;
            }
        }
    }

    // Static wear leveling piggybacks on the write path: writes are
    // what skews wear, so the spread check (O(1) via the histogram)
    // runs here and migrates at most one cold block per write.
    if (config_.wearLevelSpreadBound > 0) {
        bool moved = false;
        t = levelWear(t, moved);
    }

    // End of life: the pool can no longer provide a page, or GC is
    // stuck with the pool down to its configured last spares.  Turn
    // read-only instead of corrupting state; a real drive does the
    // same so the host can still evacuate its data.
    const bool needs_block = !pool.hasActive
        || pool.nextPage >= config_.pagesPerBlock;
    bool exhausted = needs_block && pool.freeBlocks.empty();

    // A starved pool is not necessarily a worn-out pool: host writes
    // can consume the last free pages faster than same-pool GC can
    // reclaim them (every victim's valid pages exceed the remaining
    // headroom), deadlocking a pool that still holds plenty of stale
    // data.  Evacuate a victim into a sibling pool of the channel to
    // break the deadlock; only a pool that stays starved after the
    // rescue is genuinely at end of life.
    while (exhausted) {
        bool rescued = false;
        t = rescueCollect(pool, t, rescued);
        if (!rescued)
            break;
        exhausted = pool.freeBlocks.empty();
    }
    const bool on_last_spares = gc_stuck
        && config_.eolSpareBlocks > 0
        && pool.freeBlocks.size() <= config_.eolSpareBlocks;
    if (exhausted || on_last_spares) {
        readOnly_ = true;
        sim::warn("device end of life: pool ch", pool.channel,
                  " die", pool.die, " plane", pool.plane, " has ",
                  pool.freeBlocks.size(), " spare blocks (",
                  stats_.badBlocks,
                  " retired); entering read-only mode");
        if (!rejected)
            sim::fatal("pool ch", pool.channel, " die", pool.die,
                       " plane", pool.plane,
                       " has no usable spare blocks (",
                       stats_.badBlocks,
                       " retired); device worn out");
        ++stats_.rejectedWrites;
        *rejected = true;
        return t;
    }
    ++stats_.hostWrites;

    // Invalidate the previous copy, if any.
    const auto old = l2p_.find(lpa);
    if (old != l2p_.end()) {
        const PhysicalPage old_ppa = codec_.decode(old->second);
        BlockInfo &old_info = blocks_[blockIndex(old_ppa)];
        ECSSD_ASSERT(old_info.validPages > 0,
                     "invalidating page in empty block");
        --old_info.validPages;
        p2l_.erase(old->second);
    }

    const PhysicalPage ppa = allocateInPool(pool);
    const std::uint64_t ppa_id = codec_.encode(ppa);
    l2p_[lpa] = ppa_id;
    p2l_[ppa_id] = lpa;
    BlockInfo &info = blocks_[blockIndex(ppa)];
    ++info.validPages;
    ++info.writtenPages;

    return flash_.programPage(ppa, t);
}

sim::Tick
Ftl::read(LogicalPage lpa, sim::Tick issue_at, bool *uncorrectable)
{
    const auto it = l2p_.find(lpa);
    if (it == l2p_.end())
        sim::fatal("read of unmapped logical page ", lpa);
    ++stats_.hostReads;
    bool failed = false;
    const sim::Tick done = flash_.readPage(
        codec_.decode(it->second), issue_at, 0, 0, &failed);
    if (failed)
        ++stats_.uncorrectableReads;
    if (uncorrectable)
        *uncorrectable = failed;
    return done;
}

void
Ftl::trim(LogicalPage lpa)
{
    const auto it = l2p_.find(lpa);
    if (it == l2p_.end())
        return;
    const PhysicalPage ppa = codec_.decode(it->second);
    BlockInfo &info = blocks_[blockIndex(ppa)];
    ECSSD_ASSERT(info.validPages > 0,
                 "trimming page in empty block");
    --info.validPages;
    p2l_.erase(it->second);
    l2p_.erase(it);
}

double
Ftl::freeFraction(unsigned channel) const
{
    std::uint64_t free = 0;
    std::uint64_t total = 0;
    for (unsigned die = 0; die < config_.diesPerChannel; ++die) {
        for (unsigned pl = 0; pl < config_.planesPerDie; ++pl) {
            const Pool &pool =
                pools_[poolIndex(channel, die, pl)];
            free += freePagesInPool(pool);
            total += static_cast<std::uint64_t>(
                         config_.blocksPerPlane)
                * config_.pagesPerBlock;
        }
    }
    return total ? static_cast<double>(free)
            / static_cast<double>(total)
                 : 0.0;
}

std::uint64_t
Ftl::eraseCountSpread() const
{
    if (eraseHist_.empty())
        return 0;
    return eraseHist_.rbegin()->first - eraseHist_.begin()->first;
}

sim::Tick
Ftl::patrolScrub(sim::Tick issue_at, unsigned page_budget)
{
    if (config_.scrubErrorThreshold <= 0.0)
        return issue_at;
    unsigned budget =
        page_budget ? page_budget : config_.scrubBudgetPages;

    sim::Tick t = issue_at;
    const std::size_t total_blocks = blocks_.size();
    std::size_t visited = 0;
    while (budget > 0 && visited < total_blocks) {
        const std::size_t bi = scrubCursor_;
        scrubCursor_ = (scrubCursor_ + 1) % total_blocks;
        ++visited;

        Pool &pool = pools_[bi / config_.blocksPerPlane];
        const unsigned block =
            static_cast<unsigned>(bi % config_.blocksPerPlane);
        if (blocks_[bi].validPages == 0)
            continue;
        // An *open* active block is still being filled — its data is
        // young, and refreshing into the block being scrubbed would
        // be circular.  Once full it is sealed media like any other.
        if (pool.hasActive && block == pool.activeBlock
            && pool.nextPage < config_.pagesPerBlock)
            continue;

        for (unsigned pg = 0;
             pg < config_.pagesPerBlock && budget > 0; ++pg) {
            const PhysicalPage src{pool.channel, pool.die,
                                   pool.plane, block, pg};
            const auto it = p2l_.find(codec_.encode(src));
            if (it == p2l_.end())
                continue;
            --budget;
            ++stats_.scrubbedPages;

            // Patrol read, then refresh if the model says the page
            // is rotting — or if the read already failed (latent
            // loss the scrub caught; the stale codeword relocates
            // with a warning, like GC).
            bool unreadable = false;
            const sim::Tick read_done =
                flash_.readPage(src, t, 0, 0, &unreadable);
            const bool rotting =
                flash_.predictedUncorrectableRate(src, t)
                >= config_.scrubErrorThreshold;
            t = read_done;
            if (!unreadable && !rotting)
                continue;

            Pool &dst = pickPool(pool.channel);
            if (freePagesInPool(dst) == 0) {
                bool progress = false;
                t = collectGarbage(dst, t, progress);
                if (freePagesInPool(dst) == 0)
                    continue; // No room to refresh into right now.
            }
            // The GC fallback may itself have relocated (or erased)
            // the page under patrol; re-resolve before refreshing.
            const auto still = p2l_.find(codec_.encode(src));
            if (still == p2l_.end())
                continue;
            if (unreadable) {
                ++stats_.scrubUncorrectable;
                sim::warn("patrol scrub found uncorrectable page "
                          "lpa ", still->second,
                          "; refreshing the stale copy");
                // relocatePage re-reads the page; the duplicate read
                // is the retry a real controller performs before
                // declaring the refresh source lost.
            }
            bool relocation_unreadable = false;
            t = relocatePage(src, dst, t, relocation_unreadable);
            ++stats_.scrubRelocations;
        }
    }
    return t;
}

sim::Tick
Ftl::levelWear(sim::Tick issue_at, bool &progress)
{
    progress = false;
    if (config_.wearLevelSpreadBound == 0
        || eraseCountSpread() <= config_.wearLevelSpreadBound)
        return issue_at;

    // The wear floor is pinned by *cold* blocks: valid data that
    // never gets overwritten never frees its block for the
    // allocation rotation.  Migrate the coldest such block; its
    // erase recycles it into the free pool, and free blocks rotate
    // FIFO through allocation, so the floor rises.
    std::size_t coldest = blocks_.size();
    std::uint64_t coldest_erases =
        std::numeric_limits<std::uint64_t>::max();
    for (std::size_t bi = 0; bi < blocks_.size(); ++bi) {
        const Pool &pool = pools_[bi / config_.blocksPerPlane];
        const unsigned block =
            static_cast<unsigned>(bi % config_.blocksPerPlane);
        if (pool.hasActive && block == pool.activeBlock
            && pool.nextPage < config_.pagesPerBlock)
            continue;
        const BlockInfo &info = blocks_[bi];
        if (info.validPages == 0)
            continue;
        if (info.eraseCount < coldest_erases) {
            coldest_erases = info.eraseCount;
            coldest = bi;
        }
    }
    if (coldest == blocks_.size())
        return issue_at;
    // Migration only helps when cold *data* pins the wear floor; a
    // floor pinned by free blocks (they rotate through allocation on
    // their own) would make every migration a wasted erase.
    if (coldest_erases != eraseHist_.begin()->first)
        return issue_at;

    Pool &pool = pools_[coldest / config_.blocksPerPlane];
    const unsigned block =
        static_cast<unsigned>(coldest % config_.blocksPerPlane);
    const BlockInfo &info = blocks_[coldest];
    Pool &dst = pickPool(pool.channel);
    if (freePagesInPool(dst) < info.validPages)
        return issue_at; // No headroom to migrate safely.

    sim::Tick t = issue_at;
    for (unsigned pg = 0; pg < config_.pagesPerBlock; ++pg) {
        const PhysicalPage src{pool.channel, pool.die, pool.plane,
                               block, pg};
        const auto it = p2l_.find(codec_.encode(src));
        if (it == p2l_.end())
            continue;
        bool unreadable = false;
        t = relocatePage(src, dst, t, unreadable);
        if (unreadable) {
            ++stats_.gcUncorrectableReads;
            sim::warn("wear leveling relocating uncorrectable page");
        }
        ++stats_.wearLevelMoves;
    }
    ++stats_.wearLevelRuns;
    progress = true;
    return eraseAndRecycle(pool, block, t);
}

HealthReport
Ftl::healthReport(sim::Tick now) const
{
    HealthReport report;
    report.capturedAt = now;

    // Wear, from the always-consistent histogram.
    std::uint64_t total_blocks = 0;
    double erase_sum = 0.0;
    for (const auto &[count, blocks] : eraseHist_) {
        report.eraseHistogram.emplace_back(count, blocks);
        total_blocks += blocks;
        erase_sum += static_cast<double>(count)
            * static_cast<double>(blocks);
    }
    if (!eraseHist_.empty()) {
        report.minEraseCount = eraseHist_.begin()->first;
        report.maxEraseCount = eraseHist_.rbegin()->first;
        report.meanEraseCount =
            erase_sum / static_cast<double>(total_blocks);
    }

    for (const Pool &pool : pools_)
        report.spareBlocks += pool.freeBlocks.size();
    report.badBlocks = stats_.badBlocks;
    report.readOnly = readOnly_;

    report.scrubbedPages = stats_.scrubbedPages;
    report.scrubRelocations = stats_.scrubRelocations;
    report.scrubUncorrectable = stats_.scrubUncorrectable;
    report.wearLevelMoves = stats_.wearLevelMoves;

    for (unsigned ch = 0; ch < config_.channels; ++ch) {
        const ChannelStats &stats = flash_.channelStats(ch);
        report.mediaReads += stats.pagesRead;
        report.mediaUncorrectable += stats.uncorrectableReads;
    }
    if (report.mediaReads > 0)
        report.observedErrorRate =
            static_cast<double>(report.mediaUncorrectable)
            / static_cast<double>(report.mediaReads);

    // Model prediction for a mean-wear page whose data has aged
    // since deployment (tick 0) — the paper's cold FP32 row.
    report.predictedErrorRate = config_.predictedUncorrectableRate(
        static_cast<std::uint64_t>(report.meanEraseCount), now);

    // Remaining life: minimum of three monotone non-increasing
    // terms (see health.hh).
    const double erase_life = 1.0
        - report.meanEraseCount / config_.wearRatedCycles;
    const double op_blocks = std::max(
        1.0,
        static_cast<double>(total_blocks) * config_.overProvisioning);
    const double spare_life = 1.0
        - static_cast<double>(report.badBlocks) / op_blocks;
    const double media_life = 1.0
        - report.predictedErrorRate / config_.eolMediaErrorRate;
    double life =
        std::min({erase_life, spare_life, media_life, 1.0});
    if (life < 0.0)
        life = 0.0;
    if (readOnly_)
        life = 0.0;
    report.lifeRemaining = life;
    return report;
}

void
Ftl::publishMetrics(sim::MetricsRegistry &registry) const
{
    const auto gauge = [&](const char *name, double value) {
        registry.gaugeSet(std::string("ftl.") + name, value);
    };
    gauge("host_writes", static_cast<double>(stats_.hostWrites));
    gauge("host_reads", static_cast<double>(stats_.hostReads));
    gauge("gc_runs", static_cast<double>(stats_.gcRuns));
    gauge("gc_relocations",
          static_cast<double>(stats_.gcRelocations));
    gauge("gc_erases", static_cast<double>(stats_.gcErases));
    gauge("bad_blocks", static_cast<double>(stats_.badBlocks));
    gauge("uncorrectable_reads",
          static_cast<double>(stats_.uncorrectableReads));
    gauge("scrubbed_pages",
          static_cast<double>(stats_.scrubbedPages));
    gauge("scrub_relocations",
          static_cast<double>(stats_.scrubRelocations));
    gauge("wear_level_runs",
          static_cast<double>(stats_.wearLevelRuns));
    gauge("wear_level_moves",
          static_cast<double>(stats_.wearLevelMoves));
    gauge("rejected_writes",
          static_cast<double>(stats_.rejectedWrites));
    gauge("write_amplification", stats_.writeAmplification());
    gauge("erase_count_spread",
          static_cast<double>(eraseCountSpread()));
    gauge("read_only", readOnly_ ? 1.0 : 0.0);
}

} // namespace ssdsim
} // namespace ecssd
