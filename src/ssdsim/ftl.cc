#include "ftl.hh"

#include <algorithm>
#include <limits>

#include "sim/logging.hh"
#include "sim/trace.hh"

namespace ecssd
{
namespace ssdsim
{

Ftl::Ftl(const SsdConfig &config, FlashArray &flash)
    : config_(config), flash_(flash), codec_(config)
{
    const double usable = 1.0 - config_.overProvisioning;
    logicalPages_ = static_cast<std::uint64_t>(
        static_cast<double>(config_.totalPages()) * usable);
    lpasPerChannel_ =
        (logicalPages_ + config_.channels - 1) / config_.channels;

    const std::size_t pool_count =
        static_cast<std::size_t>(config_.channels)
        * config_.diesPerChannel * config_.planesPerDie;
    pools_.resize(pool_count);
    blocks_.resize(pool_count * config_.blocksPerPlane);

    for (unsigned ch = 0; ch < config_.channels; ++ch) {
        for (unsigned die = 0; die < config_.diesPerChannel; ++die) {
            for (unsigned pl = 0; pl < config_.planesPerDie; ++pl) {
                Pool &pool = pools_[poolIndex(ch, die, pl)];
                pool.channel = ch;
                pool.die = die;
                pool.plane = pl;
                for (unsigned b = 0; b < config_.blocksPerPlane; ++b)
                    pool.freeBlocks.push_back(b);
            }
        }
    }
}

std::size_t
Ftl::poolIndex(unsigned channel, unsigned die, unsigned plane) const
{
    return (static_cast<std::size_t>(channel)
                * config_.diesPerChannel
            + die)
        * config_.planesPerDie
        + plane;
}

std::size_t
Ftl::blockIndex(const PhysicalPage &ppa) const
{
    return poolIndex(ppa.channel, ppa.die, ppa.plane)
        * config_.blocksPerPlane
        + ppa.block;
}

unsigned
Ftl::channelOfLpa(LogicalPage lpa) const
{
    ECSSD_ASSERT(lpa < logicalPages_, "logical page out of range");
    const unsigned channel =
        static_cast<unsigned>(lpa / lpasPerChannel_);
    return std::min(channel, config_.channels - 1);
}

std::optional<PhysicalPage>
Ftl::translate(LogicalPage lpa) const
{
    const auto it = l2p_.find(lpa);
    if (it == l2p_.end())
        return std::nullopt;
    return codec_.decode(it->second);
}

std::uint64_t
Ftl::freePagesInPool(const Pool &pool) const
{
    std::uint64_t pages = static_cast<std::uint64_t>(
                              pool.freeBlocks.size())
        * config_.pagesPerBlock;
    if (pool.hasActive)
        pages += config_.pagesPerBlock - pool.nextPage;
    return pages;
}

PhysicalPage
Ftl::allocateInPool(Pool &pool)
{
    if (!pool.hasActive || pool.nextPage >= config_.pagesPerBlock) {
        if (pool.freeBlocks.empty()) {
            // Every block is live or retired: the device (or this
            // pool) has worn out.  A real drive turns read-only.
            sim::fatal("pool ch", pool.channel, " die", pool.die,
                       " plane", pool.plane,
                       " has no free blocks (", stats_.badBlocks,
                       " retired); device worn out");
        }
        pool.activeBlock = pool.freeBlocks.front();
        pool.freeBlocks.pop_front();
        pool.nextPage = 0;
        pool.hasActive = true;
    }
    PhysicalPage ppa;
    ppa.channel = pool.channel;
    ppa.die = pool.die;
    ppa.plane = pool.plane;
    ppa.block = pool.activeBlock;
    ppa.page = pool.nextPage++;
    return ppa;
}

Ftl::Pool &
Ftl::pickPool(unsigned channel)
{
    Pool *best = nullptr;
    std::uint64_t best_free = 0;
    for (unsigned die = 0; die < config_.diesPerChannel; ++die) {
        for (unsigned pl = 0; pl < config_.planesPerDie; ++pl) {
            Pool &pool = pools_[poolIndex(channel, die, pl)];
            const std::uint64_t free = freePagesInPool(pool);
            if (best == nullptr || free > best_free) {
                best = &pool;
                best_free = free;
            }
        }
    }
    ECSSD_ASSERT(best != nullptr, "channel has no pools");
    return *best;
}

sim::Tick
Ftl::collectGarbage(Pool &pool, sim::Tick issue_at, bool &progress)
{
    progress = false;

    // Greedy victim: fully-written block with the fewest valid pages;
    // erase count breaks ties so wear stays level.  A victim with no
    // stale pages reclaims nothing and is never worth the erase.
    unsigned victim = 0;
    bool found = false;
    unsigned best_valid = std::numeric_limits<unsigned>::max();
    std::uint64_t best_erase = 0;
    for (unsigned b = 0; b < config_.blocksPerPlane; ++b) {
        if (pool.hasActive && b == pool.activeBlock)
            continue;
        const bool is_free =
            std::find(pool.freeBlocks.begin(), pool.freeBlocks.end(),
                      b)
            != pool.freeBlocks.end();
        if (is_free)
            continue;
        PhysicalPage probe{pool.channel, pool.die, pool.plane, b, 0};
        const BlockInfo &info = blocks_[blockIndex(probe)];
        if (info.writtenPages < config_.pagesPerBlock
            || info.validPages >= config_.pagesPerBlock)
            continue;
        if (!found || info.validPages < best_valid
            || (info.validPages == best_valid
                && info.eraseCount < best_erase)) {
            victim = b;
            best_valid = info.validPages;
            best_erase = info.eraseCount;
            found = true;
        }
    }
    if (!found)
        return issue_at; // Nothing reclaimable yet.

    // Relocations consume free space before the erase returns it;
    // without room for the victim's valid pages the collection would
    // deadlock the pool.
    if (freePagesInPool(pool) < best_valid)
        return issue_at;
    ++stats_.gcRuns;
    progress = true;
    ECSSD_TRACE_LOG(sim::TraceCategory::Ftl, issue_at,
                    "GC: pool ch", pool.channel, " die", pool.die,
                    " plane", pool.plane, " victim block ", victim,
                    " valid ", best_valid);

    // Relocate the victim's valid pages, then erase it.
    sim::Tick t = issue_at;
    for (unsigned pg = 0; pg < config_.pagesPerBlock; ++pg) {
        PhysicalPage src{pool.channel, pool.die, pool.plane, victim,
                         pg};
        const std::uint64_t src_id = codec_.encode(src);
        const auto it = p2l_.find(src_id);
        if (it == p2l_.end())
            continue;
        const LogicalPage lpa = it->second;
        bool unreadable = false;
        t = flash_.readPage(src, t, 0, 0, &unreadable);
        if (unreadable) {
            // The stale codeword still relocates (the block must be
            // reclaimed) but the copy is latent data loss: a future
            // host read of this lpa returns corrupt data on a real
            // drive.  Surfacing that would need per-page poison
            // state; counting + warning keeps the model honest.
            ++stats_.gcUncorrectableReads;
            sim::warn("GC relocating uncorrectable page lpa ", lpa);
        }
        const PhysicalPage dst = allocateInPool(pool);
        t = flash_.programPage(dst, t);
        const std::uint64_t dst_id = codec_.encode(dst);
        l2p_[lpa] = dst_id;
        p2l_.erase(it);
        p2l_[dst_id] = lpa;
        BlockInfo &dst_info = blocks_[blockIndex(dst)];
        ++dst_info.validPages;
        ++dst_info.writtenPages;
        ++stats_.gcRelocations;
    }

    PhysicalPage victim_addr{pool.channel, pool.die, pool.plane,
                             victim, 0};
    BlockInfo &victim_info = blocks_[blockIndex(victim_addr)];
    victim_info.validPages = 0;
    victim_info.writtenPages = 0;
    ++victim_info.eraseCount;
    ++stats_.gcErases;
    bool erase_failed = false;
    t = flash_.eraseBlock(victim_addr, t, &erase_failed);
    if (erase_failed) {
        // Retire the block: it never returns to the free pool.
        ++stats_.badBlocks;
        sim::warn("retiring bad block ch", pool.channel, " die",
                  pool.die, " plane", pool.plane, " block ",
                  victim);
    } else {
        pool.freeBlocks.push_back(victim);
    }
    return t;
}

sim::Tick
Ftl::write(LogicalPage lpa, sim::Tick issue_at)
{
    ECSSD_ASSERT(lpa < logicalPages_, "logical page out of range");
    ++stats_.hostWrites;

    const unsigned channel = channelOfLpa(lpa);
    Pool &pool = pickPool(channel);

    sim::Tick t = issue_at;
    const double threshold =
        std::max(config_.gcThreshold, 1.0e-9);
    const std::uint64_t pool_pages =
        static_cast<std::uint64_t>(config_.blocksPerPlane)
        * config_.pagesPerBlock;
    // Collect until the pool is healthy again or no victim can make
    // progress; a single pass may reclaim less than one block's
    // worth when victims are mostly valid.
    while (static_cast<double>(freePagesInPool(pool))
           < threshold * static_cast<double>(pool_pages)) {
        bool progress = false;
        t = collectGarbage(pool, t, progress);
        if (!progress)
            break;
    }

    // Invalidate the previous copy, if any.
    const auto old = l2p_.find(lpa);
    if (old != l2p_.end()) {
        const PhysicalPage old_ppa = codec_.decode(old->second);
        BlockInfo &old_info = blocks_[blockIndex(old_ppa)];
        ECSSD_ASSERT(old_info.validPages > 0,
                     "invalidating page in empty block");
        --old_info.validPages;
        p2l_.erase(old->second);
    }

    const PhysicalPage ppa = allocateInPool(pool);
    const std::uint64_t ppa_id = codec_.encode(ppa);
    l2p_[lpa] = ppa_id;
    p2l_[ppa_id] = lpa;
    BlockInfo &info = blocks_[blockIndex(ppa)];
    ++info.validPages;
    ++info.writtenPages;

    return flash_.programPage(ppa, t);
}

sim::Tick
Ftl::read(LogicalPage lpa, sim::Tick issue_at, bool *uncorrectable)
{
    const auto it = l2p_.find(lpa);
    if (it == l2p_.end())
        sim::fatal("read of unmapped logical page ", lpa);
    ++stats_.hostReads;
    bool failed = false;
    const sim::Tick done = flash_.readPage(
        codec_.decode(it->second), issue_at, 0, 0, &failed);
    if (failed)
        ++stats_.uncorrectableReads;
    if (uncorrectable)
        *uncorrectable = failed;
    return done;
}

void
Ftl::trim(LogicalPage lpa)
{
    const auto it = l2p_.find(lpa);
    if (it == l2p_.end())
        return;
    const PhysicalPage ppa = codec_.decode(it->second);
    BlockInfo &info = blocks_[blockIndex(ppa)];
    ECSSD_ASSERT(info.validPages > 0,
                 "trimming page in empty block");
    --info.validPages;
    p2l_.erase(it->second);
    l2p_.erase(it);
}

double
Ftl::freeFraction(unsigned channel) const
{
    std::uint64_t free = 0;
    std::uint64_t total = 0;
    for (unsigned die = 0; die < config_.diesPerChannel; ++die) {
        for (unsigned pl = 0; pl < config_.planesPerDie; ++pl) {
            const Pool &pool =
                pools_[poolIndex(channel, die, pl)];
            free += freePagesInPool(pool);
            total += static_cast<std::uint64_t>(
                         config_.blocksPerPlane)
                * config_.pagesPerBlock;
        }
    }
    return total ? static_cast<double>(free)
            / static_cast<double>(total)
                 : 0.0;
}

std::uint64_t
Ftl::eraseCountSpread() const
{
    std::uint64_t lo = std::numeric_limits<std::uint64_t>::max();
    std::uint64_t hi = 0;
    for (const BlockInfo &info : blocks_) {
        lo = std::min(lo, info.eraseCount);
        hi = std::max(hi, info.eraseCount);
    }
    return blocks_.empty() ? 0 : hi - lo;
}

} // namespace ssdsim
} // namespace ecssd
