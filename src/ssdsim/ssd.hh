/**
 * @file
 * The SSD device front-end: ties the flash array, FTL, DRAM, data
 * buffer, and host link together, and delivers host-command
 * completions through the event queue (the "SSD mode" of Section
 * 4.1).  Accelerator-mode code accesses the internals directly
 * through the accessors, exactly as the inserted accelerator sits on
 * the internal datapath in the real design.
 */

#ifndef ECSSD_SSDSIM_SSD_HH
#define ECSSD_SSDSIM_SSD_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/event_queue.hh"
#include "sim/types.hh"
#include "ssdsim/config.hh"
#include "ssdsim/data_buffer.hh"
#include "ssdsim/dram.hh"
#include "ssdsim/flash.hh"
#include "ssdsim/ftl.hh"

namespace ecssd
{
namespace ssdsim
{

/** Completion callback of a host command. */
using Completion = std::function<void(sim::Tick done_at)>;

/** Host-visible statistics. */
struct SsdStats
{
    std::uint64_t hostReadCommands = 0;
    std::uint64_t hostWriteCommands = 0;
    std::uint64_t hostBytesIn = 0;
    std::uint64_t hostBytesOut = 0;
    /** Raw bytes moved via hostTransfer (accelerator-mode I/O). */
    std::uint64_t hostBytesRaw = 0;
    /** Host reads completed with an uncorrectable-media error. */
    std::uint64_t hostUncorrectableReads = 0;
};

/** The simulated SSD device. */
class SsdDevice
{
  public:
    /**
     * @param config Geometry/timing (Table 2 defaults).
     * @param queue Event queue delivering command completions.
     */
    SsdDevice(const SsdConfig &config, sim::EventQueue &queue);

    const SsdConfig &config() const { return config_; }

    /**
     * Host write of one logical page (SSD mode).
     *
     * Models the host-link transfer in, the FTL allocation, and the
     * flash program; @p on_done fires when the program completes.
     */
    void hostWrite(LogicalPage lpa, Completion on_done);

    /**
     * Host read of one logical page (SSD mode); @p on_done fires when
     * the data has crossed the host link back out.
     */
    void hostRead(LogicalPage lpa, Completion on_done);

    /**
     * Host-link transfer of raw bytes (used for feature upload /
     * result download in accelerator mode).
     *
     * @return Completion tick.
     */
    sim::Tick hostTransfer(std::uint64_t bytes, sim::Tick issue_at);

    // --- Internal components (accelerator-mode datapath) ----------
    FlashArray &flash() { return flash_; }
    const FlashArray &flash() const { return flash_; }
    Ftl &ftl() { return ftl_; }
    const Ftl &ftl() const { return ftl_; }
    DramModel &dram() { return dram_; }
    const DramModel &dram() const { return dram_; }
    DataBuffer &dataBuffer() { return buffer_; }
    sim::EventQueue &queue() { return queue_; }

    const SsdStats &stats() const { return stats_; }

    /** SMART-style health snapshot (see ssdsim/health.hh). */
    HealthReport health(sim::Tick now) const
    {
        return ftl_.healthReport(now);
    }

    /**
     * One idle-time maintenance slice: a patrol-scrub pass within
     * the configured page budget, then a static wear-leveling step.
     * Both are no-ops unless enabled in the config.
     *
     * @return Completion tick of the slice.
     */
    sim::Tick idleMaintenance(sim::Tick issue_at);

    /**
     * Attach (or detach, with nullptr) a span tracer to the internal
     * components that emit busy-interval spans (currently the flash
     * array).  Recording never alters the simulated timing.
     */
    void setSpanTracer(sim::SpanTracer *tracer)
    {
        flash_.setSpanTracer(tracer);
    }

    /**
     * Snapshot device statistics into @p registry as gauges: the
     * flash channels ("flash.*"), the FTL ("ftl.*"), and the host
     * front-end ("ssd.*").
     */
    void publishMetrics(sim::MetricsRegistry &registry) const;

    /** Reset all internal timelines/statistics (not the FTL map). */
    void resetTimelines();

  private:
    SsdConfig config_;
    sim::EventQueue &queue_;
    FlashArray flash_;
    Ftl ftl_;
    DramModel dram_;
    DataBuffer buffer_;
    sim::Tick hostLinkFreeAt_ = 0;
    SsdStats stats_;
};

} // namespace ssdsim
} // namespace ecssd

#endif // ECSSD_SSDSIM_SSD_HH
