#include "ssd.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ecssd
{
namespace ssdsim
{

SsdDevice::SsdDevice(const SsdConfig &config, sim::EventQueue &queue)
    : config_(config), queue_(queue), flash_(config),
      ftl_(config, flash_), dram_(config),
      buffer_(config.dataBufferBytes)
{
    config_.validate();
}

sim::Tick
SsdDevice::idleMaintenance(sim::Tick issue_at)
{
    sim::Tick t = ftl_.patrolScrub(issue_at);
    bool moved = false;
    return ftl_.levelWear(t, moved);
}

sim::Tick
SsdDevice::hostTransfer(std::uint64_t bytes, sim::Tick issue_at)
{
    stats_.hostBytesRaw += bytes;
    const sim::Tick start = std::max(issue_at, hostLinkFreeAt_);
    const sim::Tick done = start
        + sim::microseconds(config_.hostLinkLatencyUs)
        + sim::transferTime(bytes, config_.hostLinkGbps);
    hostLinkFreeAt_ = done;
    return done;
}

void
SsdDevice::hostWrite(LogicalPage lpa, Completion on_done)
{
    ECSSD_ASSERT(on_done, "hostWrite needs a completion");
    ++stats_.hostWriteCommands;
    stats_.hostBytesIn += config_.pageBytes;

    // Command + payload cross the host link, the FTL consults its
    // DRAM-resident map, then the program happens in flash.
    const sim::Tick arrived =
        hostTransfer(config_.pageBytes, queue_.now());
    const sim::Tick map_done = dram_.stream(8, arrived);
    const sim::Tick done = ftl_.write(lpa, map_done);
    queue_.schedule(done,
                    [on_done = std::move(on_done), done] {
                        on_done(done);
                    },
                    "host_write_done");
}

void
SsdDevice::hostRead(LogicalPage lpa, Completion on_done)
{
    ECSSD_ASSERT(on_done, "hostRead needs a completion");
    ++stats_.hostReadCommands;
    stats_.hostBytesOut += config_.pageBytes;

    const sim::Tick arrived = hostTransfer(0, queue_.now());
    const sim::Tick map_done = dram_.stream(8, arrived);
    bool uncorrectable = false;
    const sim::Tick flash_done =
        ftl_.read(lpa, map_done, &uncorrectable);
    if (uncorrectable) {
        // The command completes with a media error status; only the
        // completion entry (no payload) crosses the host link.
        ++stats_.hostUncorrectableReads;
        stats_.hostBytesOut -= config_.pageBytes;
        const sim::Tick done = hostTransfer(0, flash_done);
        queue_.schedule(done,
                        [on_done = std::move(on_done), done] {
                            on_done(done);
                        },
                        "host_read_error");
        return;
    }
    const sim::Tick done =
        hostTransfer(config_.pageBytes, flash_done);
    queue_.schedule(done,
                    [on_done = std::move(on_done), done] {
                        on_done(done);
                    },
                    "host_read_done");
}

void
SsdDevice::publishMetrics(sim::MetricsRegistry &registry) const
{
    flash_.publishMetrics(registry);
    ftl_.publishMetrics(registry);
    registry.gaugeSet("ssd.host_read_commands",
                      static_cast<double>(stats_.hostReadCommands));
    registry.gaugeSet("ssd.host_write_commands",
                      static_cast<double>(stats_.hostWriteCommands));
    registry.gaugeSet("ssd.host_bytes_in",
                      static_cast<double>(stats_.hostBytesIn));
    registry.gaugeSet("ssd.host_bytes_out",
                      static_cast<double>(stats_.hostBytesOut));
    registry.gaugeSet("ssd.host_bytes_raw",
                      static_cast<double>(stats_.hostBytesRaw));
    registry.gaugeSet(
        "ssd.host_uncorrectable_reads",
        static_cast<double>(stats_.hostUncorrectableReads));
}

void
SsdDevice::resetTimelines()
{
    flash_.reset();
    dram_.reset();
    buffer_.reset();
    hostLinkFreeAt_ = 0;
    stats_ = SsdStats{};
}

} // namespace ssdsim
} // namespace ecssd
