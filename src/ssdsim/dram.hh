/**
 * @file
 * SSD-internal DRAM timing model.
 *
 * A single shared port with a fixed per-access latency and a stream
 * bandwidth of 12.8 GB/s (Table 2).  In SSD mode the DRAM holds FTL
 * metadata; in accelerator mode it additionally streams the INT4
 * screener weights to the INT4 MAC array (the heterogeneous data
 * layout of Section 4.3).
 */

#ifndef ECSSD_SSDSIM_DRAM_HH
#define ECSSD_SSDSIM_DRAM_HH

#include <cstdint>

#include "sim/logging.hh"
#include "sim/types.hh"
#include "ssdsim/config.hh"

namespace ecssd
{
namespace ssdsim
{

/** Timeline model of the SSD's DRAM. */
class DramModel
{
  public:
    explicit DramModel(const SsdConfig &config) : config_(config) {}

    /**
     * Stream @p bytes from DRAM.
     *
     * @param bytes Transfer size.
     * @param issue_at Request issue tick.
     * @return Completion tick.
     */
    sim::Tick
    stream(std::uint64_t bytes, sim::Tick issue_at)
    {
        const sim::Tick start = issue_at > freeAt_ ? issue_at : freeAt_;
        const sim::Tick done = start
            + sim::nanoseconds(config_.dramAccessLatencyNs)
            + sim::transferTime(bytes, config_.dramBandwidthGbps);
        freeAt_ = done;
        bytesMoved_ += bytes;
        busyTime_ += done - start;
        ++accesses_;
        return done;
    }

    std::uint64_t bytesMoved() const { return bytesMoved_; }
    std::uint64_t accesses() const { return accesses_; }
    sim::Tick busyTime() const { return busyTime_; }

    /** Reset the timeline and statistics. */
    void
    reset()
    {
        freeAt_ = 0;
        bytesMoved_ = 0;
        busyTime_ = 0;
        accesses_ = 0;
    }

    /** Capacity check used by weight deployment. */
    std::uint64_t capacityBytes() const { return config_.dramBytes; }

    /**
     * Reserve @p bytes of DRAM capacity (screener residency, hot-row
     * cache).  Pure accounting: reservations never touch the timing
     * model, they only track who claimed how much of the 16 GiB so
     * over-subscription is a configuration error, not a silent lie.
     */
    void
    reserve(std::uint64_t bytes)
    {
        ECSSD_ASSERT(bytes <= availableBytes(),
                     "DRAM capacity over-subscribed");
        reservedBytes_ += bytes;
    }

    /**
     * Reservation attempt that reports failure instead of dying:
     * the online-redeploy path probes whether a staged version fits
     * the leftover DRAM and rolls back gracefully when it does not.
     *
     * @return True when the reservation was taken.
     */
    bool
    tryReserve(std::uint64_t bytes)
    {
        if (bytes > availableBytes())
            return false;
        reservedBytes_ += bytes;
        return true;
    }

    /** Release a prior reservation (weight redeployment). */
    void
    release(std::uint64_t bytes)
    {
        ECSSD_ASSERT(bytes <= reservedBytes_,
                     "DRAM reservation underflow");
        reservedBytes_ -= bytes;
    }

    std::uint64_t reservedBytes() const { return reservedBytes_; }

    std::uint64_t
    availableBytes() const
    {
        return config_.dramBytes - reservedBytes_;
    }

  private:
    SsdConfig config_;
    sim::Tick freeAt_ = 0;
    std::uint64_t bytesMoved_ = 0;
    sim::Tick busyTime_ = 0;
    std::uint64_t accesses_ = 0;
    std::uint64_t reservedBytes_ = 0;
};

} // namespace ssdsim
} // namespace ecssd

#endif // ECSSD_SSDSIM_DRAM_HH
