/**
 * @file
 * Flash translation layer.
 *
 * Implements the embedded-processor firmware functions the paper
 * relies on (Section 2.2 / 5.3): logical-to-physical mapping, page
 * allocation, greedy garbage collection, and wear tracking.
 *
 * Channel steering follows the paper's mechanism for the interleaving
 * framework: the firmware statically assigns a logical-address range
 * to every flash channel, so a layout strategy places a weight vector
 * on channel c simply by giving it a logical page inside channel c's
 * range.  Within a channel, writes stripe over dies and planes.
 *
 * The map is kept sparse (hash map) so that small-footprint SSD-mode
 * workloads do not pay for the full 4 TB geometry; the accelerator
 * path uses the layout strategies' *computed* placement instead of
 * this table, mirroring how the paper keeps the weight L2P resident
 * in DRAM.
 */

#ifndef ECSSD_SSDSIM_FTL_HH
#define ECSSD_SSDSIM_FTL_HH

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "ssdsim/address.hh"
#include "ssdsim/config.hh"
#include "ssdsim/flash.hh"

namespace ecssd
{
namespace ssdsim
{

/** FTL activity counters. */
struct FtlStats
{
    std::uint64_t hostWrites = 0;
    std::uint64_t hostReads = 0;
    std::uint64_t gcRuns = 0;
    std::uint64_t gcRelocations = 0;
    std::uint64_t gcErases = 0;
    /** Blocks retired after erase failures. */
    std::uint64_t badBlocks = 0;
    /** Host reads whose page was uncorrectable (surfaced to the
     *  caller instead of being reported as success). */
    std::uint64_t uncorrectableReads = 0;
    /** GC relocation reads that hit an uncorrectable page; the stale
     *  copy is relocated anyway (latent data loss, warned). */
    std::uint64_t gcUncorrectableReads = 0;

    /** Write amplification factor. */
    double
    writeAmplification() const
    {
        if (hostWrites == 0)
            return 1.0;
        return static_cast<double>(hostWrites + gcRelocations)
            / static_cast<double>(hostWrites);
    }
};

/** The flash translation layer. */
class Ftl
{
  public:
    /**
     * @param config SSD geometry/timing.
     * @param flash The flash array the FTL drives (must outlive it).
     */
    Ftl(const SsdConfig &config, FlashArray &flash);

    /** Number of logical pages exposed to the host. */
    std::uint64_t logicalPages() const { return logicalPages_; }

    /** The channel owning @p lpa's logical-address range. */
    unsigned channelOfLpa(LogicalPage lpa) const;

    /** Current physical location of @p lpa, if mapped. */
    std::optional<PhysicalPage> translate(LogicalPage lpa) const;

    /**
     * Write (or overwrite) one logical page.
     *
     * Allocates a physical page in the lpa's channel, programs it,
     * invalidates the old copy, and runs GC if the channel's free
     * pool dropped below the threshold.
     *
     * @return Completion tick of the program (including any GC work
     *         that had to run first).
     */
    sim::Tick write(LogicalPage lpa, sim::Tick issue_at);

    /**
     * Read one logical page.
     *
     * @param[out] uncorrectable Set true when the media could not
     *        deliver the page (ECC failure after the retry ladder);
     *        the caller decides whether to degrade, refetch, or fail
     *        (nullptr to ignore, restoring the legacy
     *        pretend-success behaviour — the failure still counts in
     *        FtlStats).
     * @return Completion tick; fatal if the page was never written.
     */
    sim::Tick read(LogicalPage lpa, sim::Tick issue_at,
                   bool *uncorrectable = nullptr);

    /** Invalidate a logical page (TRIM). */
    void trim(LogicalPage lpa);

    const FtlStats &stats() const { return stats_; }

    /** Free-page fraction of a channel's pool, for tests. */
    double freeFraction(unsigned channel) const;

    /** Max erase-count spread across blocks (wear balance metric). */
    std::uint64_t eraseCountSpread() const;

  private:
    struct BlockInfo
    {
        unsigned validPages = 0;
        unsigned writtenPages = 0;
        std::uint64_t eraseCount = 0;
    };

    /** One allocation pool: a (channel, die, plane) tuple. */
    struct Pool
    {
        unsigned channel = 0;
        unsigned die = 0;
        unsigned plane = 0;
        std::deque<unsigned> freeBlocks;
        unsigned activeBlock = 0;
        unsigned nextPage = 0;
        bool hasActive = false;
    };

    std::size_t poolIndex(unsigned channel, unsigned die,
                          unsigned plane) const;
    std::size_t blockIndex(const PhysicalPage &ppa) const;

    /** Allocate the next physical page in @p pool (GC-free path). */
    PhysicalPage allocateInPool(Pool &pool);

    /** Pick the pool with the most free pages within a channel. */
    Pool &pickPool(unsigned channel);

    /**
     * Run one greedy GC pass on @p pool.
     *
     * @param[out] progress True when a victim was relocated+erased.
     * @return Completion tick of the pass.
     */
    sim::Tick collectGarbage(Pool &pool, sim::Tick issue_at,
                             bool &progress);

    std::uint64_t freePagesInPool(const Pool &pool) const;

    SsdConfig config_;
    FlashArray &flash_;
    AddressCodec codec_;
    std::uint64_t logicalPages_;
    std::uint64_t lpasPerChannel_;

    std::unordered_map<LogicalPage, std::uint64_t> l2p_;
    std::unordered_map<std::uint64_t, LogicalPage> p2l_;
    std::vector<BlockInfo> blocks_;
    std::vector<Pool> pools_;
    FtlStats stats_;
};

} // namespace ssdsim
} // namespace ecssd

#endif // ECSSD_SSDSIM_FTL_HH
