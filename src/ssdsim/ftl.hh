/**
 * @file
 * Flash translation layer.
 *
 * Implements the embedded-processor firmware functions the paper
 * relies on (Section 2.2 / 5.3): logical-to-physical mapping, page
 * allocation, greedy garbage collection, and wear tracking.
 *
 * Channel steering follows the paper's mechanism for the interleaving
 * framework: the firmware statically assigns a logical-address range
 * to every flash channel, so a layout strategy places a weight vector
 * on channel c simply by giving it a logical page inside channel c's
 * range.  Within a channel, writes stripe over dies and planes.
 *
 * The map is kept sparse (hash map) so that small-footprint SSD-mode
 * workloads do not pay for the full 4 TB geometry; the accelerator
 * path uses the layout strategies' *computed* placement instead of
 * this table, mirroring how the paper keeps the weight L2P resident
 * in DRAM.
 */

#ifndef ECSSD_SSDSIM_FTL_HH
#define ECSSD_SSDSIM_FTL_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "ssdsim/address.hh"
#include "ssdsim/config.hh"
#include "ssdsim/flash.hh"
#include "ssdsim/health.hh"

namespace ecssd
{
namespace ssdsim
{

/** FTL activity counters. */
struct FtlStats
{
    std::uint64_t hostWrites = 0;
    std::uint64_t hostReads = 0;
    std::uint64_t gcRuns = 0;
    std::uint64_t gcRelocations = 0;
    std::uint64_t gcErases = 0;
    /** Blocks retired after erase failures. */
    std::uint64_t badBlocks = 0;
    /** Host reads whose page was uncorrectable (surfaced to the
     *  caller instead of being reported as success). */
    std::uint64_t uncorrectableReads = 0;
    /** GC relocation reads that hit an uncorrectable page; the stale
     *  copy is relocated anyway (latent data loss, warned). */
    std::uint64_t gcUncorrectableReads = 0;
    /** Valid pages the patrol scrub examined (patrol reads). */
    std::uint64_t scrubbedPages = 0;
    /** Pages the scrub refreshed because their predicted error rate
     *  crossed the refresh threshold (or the patrol read failed). */
    std::uint64_t scrubRelocations = 0;
    /** Patrol reads that found an already-uncorrectable page (latent
     *  data loss caught by the scrub, warned). */
    std::uint64_t scrubUncorrectable = 0;
    /** Last-resort cross-pool evacuations that saved a write after
     *  same-pool GC deadlocked with no relocation headroom. */
    std::uint64_t rescueGcRuns = 0;
    /** Static wear-leveling migrations (cold blocks recycled). */
    std::uint64_t wearLevelRuns = 0;
    /** Valid pages moved by static wear leveling. */
    std::uint64_t wearLevelMoves = 0;
    /** Writes rejected because the device turned read-only. */
    std::uint64_t rejectedWrites = 0;
    /** Weight pages moved between channels by the background
     *  re-layout task (computed-placement migrations). */
    std::uint64_t relayoutMigrations = 0;
    /** Re-layout migration reads that came back uncorrectable (the
     *  stale codeword moves anyway, like GC). */
    std::uint64_t relayoutUnreadable = 0;

    /** Write amplification factor. */
    double
    writeAmplification() const
    {
        if (hostWrites == 0)
            return 1.0;
        return static_cast<double>(hostWrites + gcRelocations)
            / static_cast<double>(hostWrites);
    }
};

/** The flash translation layer. */
class Ftl
{
  public:
    /**
     * @param config SSD geometry/timing.
     * @param flash The flash array the FTL drives (must outlive it).
     */
    Ftl(const SsdConfig &config, FlashArray &flash);

    /** Number of logical pages exposed to the host. */
    std::uint64_t logicalPages() const { return logicalPages_; }

    /** The channel owning @p lpa's logical-address range. */
    unsigned channelOfLpa(LogicalPage lpa) const;

    /** Current physical location of @p lpa, if mapped. */
    std::optional<PhysicalPage> translate(LogicalPage lpa) const;

    /**
     * Write (or overwrite) one logical page.
     *
     * Allocates a physical page in the lpa's channel, programs it,
     * invalidates the old copy, and runs GC (and, when configured,
     * static wear leveling) if the channel's free pool dropped below
     * the threshold.
     *
     * @param[out] rejected Set true when the device is (or just
     *        turned) read-only and the write was refused without
     *        mutating any state; nullptr restores the legacy
     *        behaviour of dying fatally at end of life.
     * @return Completion tick of the program (including any GC work
     *         that had to run first); @p issue_at when rejected.
     */
    sim::Tick write(LogicalPage lpa, sim::Tick issue_at,
                    bool *rejected = nullptr);

    /**
     * Read one logical page.
     *
     * @param[out] uncorrectable Set true when the media could not
     *        deliver the page (ECC failure after the retry ladder);
     *        the caller decides whether to degrade, refetch, or fail
     *        (nullptr to ignore, restoring the legacy
     *        pretend-success behaviour — the failure still counts in
     *        FtlStats).
     * @return Completion tick; fatal if the page was never written.
     */
    sim::Tick read(LogicalPage lpa, sim::Tick issue_at,
                   bool *uncorrectable = nullptr);

    /** Invalidate a logical page (TRIM). */
    void trim(LogicalPage lpa);

    const FtlStats &stats() const { return stats_; }

    /** Free-page fraction of a channel's pool, for tests. */
    double freeFraction(unsigned channel) const;

    /** Max erase-count spread across blocks (wear balance metric). */
    std::uint64_t eraseCountSpread() const;

    // --- Wear-lifecycle maintenance --------------------------------
    /**
     * One background patrol-scrub pass: walk up to @p page_budget
     * valid pages (0 = the configured scrubBudgetPages) from a
     * persistent cursor, re-read each, and refresh (relocate within
     * its channel) any page whose predicted uncorrectable rate is at
     * or above scrubErrorThreshold — or whose patrol read already
     * failed.  A refresh resets the page's retention age.  No-op
     * unless the scrub is enabled in the config.
     *
     * @return Completion tick of the pass.
     */
    sim::Tick patrolScrub(sim::Tick issue_at,
                          unsigned page_budget = 0);

    /**
     * One static wear-leveling step: when eraseCountSpread() exceeds
     * the configured bound, migrate the coldest valid block (lowest
     * erase count) so its space rejoins the allocation rotation.
     * Runs automatically on the write path when enabled; exposed for
     * idle-time maintenance.
     *
     * @param[out] progress True when a block was migrated.
     * @return Completion tick.
     */
    sim::Tick levelWear(sim::Tick issue_at, bool &progress);

    /**
     * Move one *computed-placement* weight page from @p src to
     * @p dst: the background re-layout task's migration primitive.
     * Accelerator-mode weight pages live outside the l2p table (the
     * layout strategies compute their placement, mirroring the
     * paper's DRAM-resident weight L2P), so unlike relocatePage()
     * there is no mapping to patch — the media move is read(src) +
     * program(dst), and the relocation listener fires on @p src
     * first so DRAM-cached copies are dropped before the rewrite,
     * exactly like GC / patrol-scrub relocations.
     *
     * @return Completion tick of the program.
     */
    sim::Tick migrateComputedPage(const PhysicalPage &src,
                                  const PhysicalPage &dst,
                                  sim::Tick issue_at);

    /** True once spare blocks ran out and the device refuses
     *  writes (end of life). */
    bool readOnly() const { return readOnly_; }

    /** Latch the device read-only immediately (fault injection:
     *  end-of-life mid-redeploy).  Like the organic latch, it is
     *  never cleared. */
    void forceReadOnly() { readOnly_ = true; }

    /** SMART-style health snapshot at tick @p now. */
    HealthReport healthReport(sim::Tick now) const;

    /**
     * Snapshot the activity counters into @p registry as gauges
     * ("ftl.host_writes", ..., "ftl.write_amplification").
     */
    void publishMetrics(sim::MetricsRegistry &registry) const;

    /**
     * Register a callback invoked with the *source* physical page of
     * every relocation (GC, rescue evacuation, patrol scrub, wear
     * leveling), before the move.  Upper layers that shadow flash
     * contents (the DRAM hot-row cache) use it to drop stale copies.
     * Pass an empty function to detach.
     */
    void
    setRelocationListener(
        std::function<void(const PhysicalPage &)> listener)
    {
        relocationListener_ = std::move(listener);
    }

  private:
    struct BlockInfo
    {
        unsigned validPages = 0;
        unsigned writtenPages = 0;
        std::uint64_t eraseCount = 0;
    };

    /** One allocation pool: a (channel, die, plane) tuple. */
    struct Pool
    {
        unsigned channel = 0;
        unsigned die = 0;
        unsigned plane = 0;
        std::deque<unsigned> freeBlocks;
        unsigned activeBlock = 0;
        unsigned nextPage = 0;
        bool hasActive = false;
    };

    std::size_t poolIndex(unsigned channel, unsigned die,
                          unsigned plane) const;
    std::size_t blockIndex(const PhysicalPage &ppa) const;

    /** Allocate the next physical page in @p pool (GC-free path). */
    PhysicalPage allocateInPool(Pool &pool);

    /** Pick the pool with the most free pages within a channel. */
    Pool &pickPool(unsigned channel);

    /**
     * Greedy victim choice: the fully-written block with the fewest
     * valid pages (erase count breaks ties).  Skips the active block
     * and free blocks; a fully-valid block reclaims nothing and is
     * never chosen.
     *
     * @param[out] victim The chosen block within @p pool.
     * @param[out] victim_valid Its valid-page count.
     * @return False when no block is reclaimable.
     */
    bool findGcVictim(const Pool &pool, unsigned &victim,
                      unsigned &victim_valid) const;

    /**
     * Run one greedy GC pass on @p pool.
     *
     * @param[out] progress True when a victim was relocated+erased.
     * @return Completion tick of the pass.
     */
    sim::Tick collectGarbage(Pool &pool, sim::Tick issue_at,
                             bool &progress);

    /**
     * Last-resort evacuation when @p pool has run dry and same-pool
     * GC cannot run (every victim's valid pages exceed the pool's
     * remaining headroom): relocate the best victim's valid pages
     * into a *sibling* pool of the same channel and erase it.  Only
     * reachable from the write path when a pool has wedged at zero
     * free pages (or would otherwise be declared worn out), so
     * configurations that never starve a pool are unaffected.
     *
     * @param[out] progress True when a block was evacuated.
     * @return Completion tick.
     */
    sim::Tick rescueCollect(Pool &pool, sim::Tick issue_at,
                            bool &progress);

    /**
     * Move the valid page at @p src into @p dst_pool (read, program,
     * remap, fix per-block counters).  Shared by GC relocation, the
     * patrol scrub, and static wear leveling.
     *
     * @param[out] unreadable True when the relocation read was
     *        uncorrectable (the stale codeword moves anyway; the
     *        caller counts/warns the latent loss).
     * @return Completion tick.
     */
    sim::Tick relocatePage(const PhysicalPage &src, Pool &dst_pool,
                           sim::Tick issue_at, bool &unreadable);

    /** Advance a block's erase count, keeping the histogram
     *  consistent. */
    void bumpEraseCount(BlockInfo &info);

    /** Erase @p block of @p pool (after relocation emptied it):
     *  wear accounting, the flash erase, and retire-or-recycle. */
    sim::Tick eraseAndRecycle(Pool &pool, unsigned block,
                              sim::Tick issue_at);

    std::uint64_t freePagesInPool(const Pool &pool) const;

    SsdConfig config_;
    FlashArray &flash_;
    AddressCodec codec_;
    std::uint64_t logicalPages_;
    std::uint64_t lpasPerChannel_;

    std::unordered_map<LogicalPage, std::uint64_t> l2p_;
    std::unordered_map<std::uint64_t, LogicalPage> p2l_;
    std::vector<BlockInfo> blocks_;
    std::vector<Pool> pools_;
    FtlStats stats_;
    /** Erase count -> number of blocks at that count.  Maintained
     *  incrementally so eraseCountSpread() is O(1) and the health
     *  report's histogram is free. */
    std::map<std::uint64_t, std::uint64_t> eraseHist_;
    /** Patrol-scrub resume position (dense block index). */
    std::size_t scrubCursor_ = 0;
    /** Relocation notification hook (empty = detached). */
    std::function<void(const PhysicalPage &)> relocationListener_;
    /** End-of-life latch: set when spares run out, never cleared. */
    bool readOnly_ = false;
};

} // namespace ssdsim
} // namespace ecssd

#endif // ECSSD_SSDSIM_FTL_HH
