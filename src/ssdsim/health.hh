/**
 * @file
 * SMART-style device health telemetry.
 *
 * The FTL assembles a HealthReport from its wear bookkeeping plus the
 * flash array's media counters; the SSD front-end and the NVMe
 * controller re-export it (the NVMe SMART / Health Information log
 * page analog), and the serving layers above use it to act *before*
 * data is lost — the scale-out fleet drains a degrading shard onto a
 * spare device instead of waiting for the reactive failover path.
 */

#ifndef ECSSD_SSDSIM_HEALTH_HH
#define ECSSD_SSDSIM_HEALTH_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/types.hh"

namespace ecssd
{
namespace ssdsim
{

/** A point-in-time SMART-style health snapshot of one device. */
struct HealthReport
{
    /** Tick the report was captured at (retention ages are measured
     *  against this clock). */
    sim::Tick capturedAt = 0;

    // --- Wear -------------------------------------------------------
    /** Erase-count histogram: (erase count, blocks at that count),
     *  ascending; covers every block including retired ones. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>>
        eraseHistogram;
    std::uint64_t minEraseCount = 0;
    std::uint64_t maxEraseCount = 0;
    double meanEraseCount = 0.0;

    // --- Spares / end of life --------------------------------------
    /** Free (allocatable) blocks across every pool. */
    std::uint64_t spareBlocks = 0;
    /** Blocks retired after erase failures. */
    std::uint64_t badBlocks = 0;
    /** True once the device refuses writes (spares ran out). */
    bool readOnly = false;

    // --- Background maintenance ------------------------------------
    /** Valid pages the patrol scrub has examined. */
    std::uint64_t scrubbedPages = 0;
    /** Pages the scrub refreshed (relocated before they rotted). */
    std::uint64_t scrubRelocations = 0;
    /** Scrub reads that found an already-uncorrectable page. */
    std::uint64_t scrubUncorrectable = 0;
    /** Blocks migrated by static wear leveling. */
    std::uint64_t wearLevelMoves = 0;

    // --- Serving identity -------------------------------------------
    /** Deploy epoch the serving layer stamped on this device (0 when
     *  no versioned serving layer owns it).  Lets operators tell
     *  which weight generation a device is serving. */
    std::uint64_t deployEpoch = 0;
    /** Monotone weight-version id of the deployed model (0 = none or
     *  unversioned legacy deploy). */
    std::uint64_t weightVersion = 0;

    // --- Media-error trend -----------------------------------------
    /** Page reads the flash array has served (all paths). */
    std::uint64_t mediaReads = 0;
    /** Reads whose ECC failed after the full retry ladder. */
    std::uint64_t mediaUncorrectable = 0;
    /** Observed uncorrectable fraction of mediaReads. */
    double observedErrorRate = 0.0;
    /** Model-predicted uncorrectable rate of a mean-wear page whose
     *  data has aged since device deployment (tick 0). */
    double predictedErrorRate = 0.0;

    /**
     * Remaining-life estimate in [0, 1]: the minimum of the erase
     * budget left (mean erase count vs rated cycles), the
     * over-provisioned spares left (bad blocks vs the OP pool), and
     * the media-error headroom (predicted rate vs the configured
     * end-of-life rate).  Each term is monotone non-increasing over
     * a device's lifetime, so the estimate never recovers on its
     * own — only hardware replacement resets it.
     */
    double lifeRemaining = 1.0;
};

} // namespace ssdsim
} // namespace ecssd

#endif // ECSSD_SSDSIM_HEALTH_HH
