/**
 * @file
 * NVMe-style multi-queue host interface (the "multi-queue SSD"
 * behaviour MQSim models).
 *
 * The host posts commands to per-core submission queues; the
 * controller arbitrates round-robin across queues, keeps up to a
 * configured depth of commands in flight per queue, executes them
 * through the FTL, and posts completions to the matching completion
 * queue.  Multi-page commands move their payload across the host
 * link once and touch the FTL per page.
 */

#ifndef ECSSD_SSDSIM_NVME_HH
#define ECSSD_SSDSIM_NVME_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/types.hh"
#include "ssdsim/ssd.hh"

namespace ecssd
{
namespace ssdsim
{

/** NVMe command opcodes the model supports. */
enum class NvmeOpcode
{
    Read,
    Write,
    Trim,
};

/** One submitted command. */
struct NvmeCommand
{
    NvmeOpcode opcode = NvmeOpcode::Read;
    LogicalPage startPage = 0;
    std::uint32_t pageCount = 1;
    /** Host-chosen command id, echoed in the completion. */
    std::uint64_t commandId = 0;
};

/** One completion queue entry. */
struct NvmeCompletion
{
    std::uint64_t commandId = 0;
    sim::Tick completedAt = 0;
    bool success = true;
};

/** Per-queue statistics. */
struct NvmeQueueStats
{
    std::uint64_t submitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t rejectedFull = 0;
    sim::Tick totalLatency = 0;

    double
    meanLatencyUs() const
    {
        if (completed == 0)
            return 0.0;
        return sim::tickToUs(totalLatency)
            / static_cast<double>(completed);
    }
};

/** The multi-queue controller front-end. */
class NvmeController
{
  public:
    /**
     * @param device The SSD (must outlive the controller).
     * @param queue_pairs Number of submission/completion pairs.
     * @param queue_depth Max commands in flight per pair.
     * @param sq_size Submission ring capacity per pair (commands
     *        waiting to be pulled by the controller).
     */
    NvmeController(SsdDevice &device, unsigned queue_pairs,
                   unsigned queue_depth, unsigned sq_size = 1024);

    unsigned queuePairs() const
    {
        return static_cast<unsigned>(queues_.size());
    }
    unsigned queueDepth() const { return queueDepth_; }

    /**
     * Post a command to submission queue @p qp.
     *
     * @retval true accepted.
     * @retval false queue full (host must retry later).
     */
    bool submit(unsigned qp, const NvmeCommand &command);

    /** Drain queue @p qp's completion entries. */
    std::vector<NvmeCompletion> pollCompletions(unsigned qp);

    /** Outstanding + pending command count across all queues. */
    std::size_t inFlight() const;

    /**
     * Advance the simulation until every submitted command has
     * completed.
     *
     * @return The tick of the last completion.
     */
    sim::Tick drain();

    const NvmeQueueStats &queueStats(unsigned qp) const;

    /**
     * The SMART / Health Information log page analog: the device's
     * current HealthReport, captured at tick @p now.
     */
    HealthReport healthLogPage(sim::Tick now) const
    {
        return device_.health(now);
    }

  private:
    struct QueuePair
    {
        std::deque<NvmeCommand> submissions;
        std::vector<NvmeCompletion> completions;
        unsigned outstanding = 0;
        NvmeQueueStats stats;
    };

    /** Issue commands while arbitration and depth allow. */
    void pump();

    /** Execute one command; schedules its completion. */
    void execute(unsigned qp, const NvmeCommand &command);

    SsdDevice &device_;
    std::vector<QueuePair> queues_;
    unsigned queueDepth_;
    unsigned sqSize_;
    unsigned arbitrationCursor_ = 0;
};

} // namespace ssdsim
} // namespace ecssd

#endif // ECSSD_SSDSIM_NVME_HH
