/**
 * @file
 * SSD configuration (Table 2 of the paper is the default).
 */

#ifndef ECSSD_SSDSIM_CONFIG_HH
#define ECSSD_SSDSIM_CONFIG_HH

#include <cmath>
#include <cstdint>

#include "sim/types.hh"

namespace ecssd
{
namespace ssdsim
{

/**
 * Static geometry and timing of the simulated SSD.
 *
 * Defaults reproduce the paper's Table 2 medium-end configuration:
 * 8 channels x 1 GB/s NVDDR3, 4 KB pages, 4 TB flash, 16 GB DRAM at
 * 12.8 GB/s, 4 MB data buffer, PCIe 3.0 x4 host interface.
 */
struct SsdConfig
{
    // --- Flash geometry -------------------------------------------------
    // 8 x 16 x 2 x 8192 x 512 x 4096 B = 4 TiB.  Sixteen dies per
    // channel give tR / dies = 3.1 us < 4.1 us page transfer, so a
    // *die-balanced* read stream saturates the 1 GB/s channel bus
    // (the paper's bandwidth assumption); an unbalanced stream is
    // die-sense-bound, which is where the interleaving strategies
    // differ.
    unsigned channels = 8;
    unsigned diesPerChannel = 16;
    unsigned planesPerDie = 2;
    unsigned blocksPerPlane = 8192;
    unsigned pagesPerBlock = 512;
    unsigned pageBytes = 4096;

    // --- Flash timing ----------------------------------------------------
    /** NVDDR3 channel bus bandwidth, GB/s. */
    double channelBandwidthGbps = 1.0;
    /** Die-internal page sense latency (tR). */
    double readLatencyUs = 50.0;
    /** Page program latency (tPROG). */
    double programLatencyUs = 200.0;
    /** Block erase latency (tBERS). */
    double eraseLatencyMs = 1.5;
    /**
     * Allow the planes of one die to sense concurrently.  Real
     * multi-plane reads carry block-alignment constraints that
     * random candidate reads rarely satisfy, so the conservative
     * default serializes sensing per die; the ablation bench
     * quantifies the upside of relaxing it.
     */
    bool multiPlaneRead = false;
    /**
     * Fraction of page reads that need a read-retry (voltage
     * re-calibration) costing one extra tR.  Models media wear /
     * read-disturb; 0 disables injection.
     */
    double readRetryRate = 0.0;
    /**
     * Fraction of block erases that fail and retire the block (bad
     * block growth).  0 disables injection.
     */
    double eraseFailureRate = 0.0;
    /**
     * Fraction of page reads whose ECC cannot recover the data even
     * after the full retry ladder.  The read still occupies the die
     * and bus (the failure is discovered after the transfer, when
     * the controller decodes the codeword) plus one extra tR for the
     * exhausted retry ladder; callers receive the failure through
     * readPage's out-parameter.  0 disables injection.
     *
     * With the wear-lifecycle model enabled (below), this is the
     * *beginning-of-life* rate that the erase-count and retention
     * terms add to.
     */
    double uncorrectableReadRate = 0.0;

    // --- Wear lifecycle ---------------------------------------------
    /**
     * Uncorrectable-rate contribution of block wear: a block with
     * erase count E adds
     *   wearErrorCoefficient * (E / wearRatedCycles)^wearExponent
     * to the per-read uncorrectable probability.  0 disables the
     * term (and keeps the simulation bit-identical to a build
     * without the wear model).
     */
    double wearErrorCoefficient = 0.0;
    /** Shape of the wear curve (raw BER grows superlinearly in P/E
     *  cycles on real NAND). */
    double wearExponent = 2.0;
    /** P/E cycles at which the wear term equals the coefficient
     *  (the media's rated endurance). */
    double wearRatedCycles = 3000.0;
    /**
     * Uncorrectable-rate contribution of retention age: a page that
     * has sat programmed for S simulated seconds adds
     * retentionErrorCoefficient * S.  Retention is tracked at block
     * granularity (the oldest page in the block dominates the
     * block's raw BER).  0 disables the term.
     */
    double retentionErrorCoefficient = 0.0;

    // --- Patrol scrub / wear leveling / end-of-life -----------------
    /**
     * Predicted-uncorrectable-rate threshold above which the patrol
     * scrub relocates (refreshes) a valid page.  0 disables the
     * scrub.  Must exceed uncorrectableReadRate when set: a refresh
     * resets retention and (eventually) wear contributions but can
     * never push the rate below the base rate, so a threshold at or
     * below it would relocate every page on every pass.
     */
    double scrubErrorThreshold = 0.0;
    /** Valid pages a single patrol pass examines (its idle-time
     *  budget). */
    unsigned scrubBudgetPages = 64;
    /**
     * Static wear leveling: when eraseCountSpread() exceeds this
     * bound, the FTL migrates the coldest valid block so its space
     * rejoins the allocation rotation.  0 disables leveling.
     */
    std::uint64_t wearLevelSpreadBound = 0;
    /**
     * End-of-life guard: when garbage collection can make no more
     * progress and an allocation pool's spare-block count is at or
     * below this, the FTL turns read-only instead of dying.  The
     * device always turns read-only (or, for legacy callers, fatal)
     * when a pool is fully exhausted, whatever this is set to.
     */
    unsigned eolSpareBlocks = 0;
    /** Predicted uncorrectable rate treated as media end-of-life by
     *  the health report's remaining-life estimate. */
    double eolMediaErrorRate = 1e-2;

    // --- DRAM ------------------------------------------------------------
    std::uint64_t dramBytes = 16ULL * 1024 * 1024 * 1024;
    double dramBandwidthGbps = 12.8;
    double dramAccessLatencyNs = 50.0;

    // --- Buffer / host link ------------------------------------------
    std::uint64_t dataBufferBytes = 4ULL * 1024 * 1024;
    /** PCIe 3.0 x4 effective bandwidth, GB/s. */
    double hostLinkGbps = 3.938;
    /** Per-command host link latency. */
    double hostLinkLatencyUs = 2.0;

    // --- FTL -------------------------------------------------------------
    /** Fraction of blocks reserved as over-provisioning for GC. */
    double overProvisioning = 0.07;
    /** GC kicks in when the free-block fraction drops below this. */
    double gcThreshold = 0.02;

    // --- Derived ----------------------------------------------------
    std::uint64_t
    pagesPerDie() const
    {
        return static_cast<std::uint64_t>(planesPerDie)
            * blocksPerPlane * pagesPerBlock;
    }

    std::uint64_t
    pagesPerChannel() const
    {
        return pagesPerDie() * diesPerChannel;
    }

    std::uint64_t
    totalPages() const
    {
        return pagesPerChannel() * channels;
    }

    std::uint64_t
    capacityBytes() const
    {
        return totalPages() * pageBytes;
    }

    /** Aggregate internal flash bandwidth, GB/s. */
    double
    internalBandwidthGbps() const
    {
        return channelBandwidthGbps * channels;
    }

    /** Time for the channel bus to move one page. */
    sim::Tick
    pageTransferTime() const
    {
        return sim::transferTime(pageBytes, channelBandwidthGbps);
    }

    sim::Tick
    readLatency() const
    {
        return sim::microseconds(readLatencyUs);
    }

    sim::Tick
    programLatency() const
    {
        return sim::microseconds(programLatencyUs);
    }

    sim::Tick
    eraseLatency() const
    {
        return sim::milliseconds(eraseLatencyMs);
    }

    // --- Wear-lifecycle model --------------------------------------
    /** True when any age-dependent error term is active. */
    bool
    wearModelEnabled() const
    {
        return wearErrorCoefficient > 0.0
            || retentionErrorCoefficient > 0.0;
    }

    /**
     * The per-read uncorrectable probability of a page in a block
     * with @p erase_count erases whose data has aged
     * @p retention_age ticks since program.
     *
     * With both coefficients at zero this returns exactly
     * uncorrectableReadRate, so zero-coefficient configurations
     * replay the flat PR-1 fault sequence bit for bit.
     */
    double
    predictedUncorrectableRate(std::uint64_t erase_count,
                               sim::Tick retention_age) const
    {
        double rate = uncorrectableReadRate;
        if (wearErrorCoefficient > 0.0)
            rate += wearErrorCoefficient
                * std::pow(static_cast<double>(erase_count)
                               / wearRatedCycles,
                           wearExponent);
        if (retentionErrorCoefficient > 0.0)
            rate += retentionErrorCoefficient
                * sim::tickToSeconds(retention_age);
        return rate < 1.0 ? rate : 1.0;
    }

    /**
     * Reject out-of-range or contradictory configurations with a
     * descriptive sim::fatal.  Called from FlashArray/Ftl/SsdDevice
     * construction, so a bad knob fails fast instead of silently
     * misbehaving deep in a run.
     */
    void validate() const;
};

/**
 * A tiny geometry for unit tests: identical timing to the default but
 * with few blocks, so GC and wear paths trigger quickly and the FTL's
 * metadata stays small.
 */
inline SsdConfig
smallTestConfig()
{
    SsdConfig config;
    config.channels = 4;
    config.diesPerChannel = 2;
    config.planesPerDie = 1;
    config.blocksPerPlane = 16;
    config.pagesPerBlock = 8;
    config.gcThreshold = 0.15;
    return config;
}

} // namespace ssdsim
} // namespace ecssd

#endif // ECSSD_SSDSIM_CONFIG_HH
