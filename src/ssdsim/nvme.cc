#include "nvme.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace ecssd
{
namespace ssdsim
{

NvmeController::NvmeController(SsdDevice &device,
                               unsigned queue_pairs,
                               unsigned queue_depth,
                               unsigned sq_size)
    : device_(device), queues_(queue_pairs),
      queueDepth_(queue_depth), sqSize_(sq_size)
{
    ECSSD_ASSERT(queue_pairs > 0 && queue_depth > 0 && sq_size > 0,
                 "NVMe controller needs queues, depth, and a ring");
}

bool
NvmeController::submit(unsigned qp, const NvmeCommand &command)
{
    ECSSD_ASSERT(qp < queues_.size(), "queue pair out of range");
    ECSSD_ASSERT(command.pageCount > 0, "empty NVMe command");
    QueuePair &queue = queues_[qp];
    if (queue.submissions.size() >= sqSize_) {
        ++queue.stats.rejectedFull;
        return false;
    }
    queue.submissions.push_back(command);
    ++queue.stats.submitted;
    pump();
    return true;
}

void
NvmeController::pump()
{
    // Round-robin arbitration: visit queues starting at the cursor,
    // issuing at most one command per visit, until nothing is
    // eligible.
    bool issued = true;
    while (issued) {
        issued = false;
        for (std::size_t i = 0; i < queues_.size(); ++i) {
            const unsigned qp = static_cast<unsigned>(
                (arbitrationCursor_ + i) % queues_.size());
            QueuePair &queue = queues_[qp];
            if (queue.submissions.empty()
                || queue.outstanding >= queueDepth_)
                continue;
            const NvmeCommand command = queue.submissions.front();
            queue.submissions.pop_front();
            ++queue.outstanding;
            execute(qp, command);
            issued = true;
            arbitrationCursor_ = (qp + 1)
                % static_cast<unsigned>(queues_.size());
        }
    }
}

void
NvmeController::execute(unsigned qp, const NvmeCommand &command)
{
    sim::EventQueue &events = device_.queue();
    const sim::Tick submitted_at = events.now();
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(command.pageCount)
        * device_.config().pageBytes;

    sim::Tick done = submitted_at;
    bool ok = true;
    switch (command.opcode) {
      case NvmeOpcode::Write: {
        // Payload crosses the link once, then pages program.
        const sim::Tick arrived =
            device_.hostTransfer(bytes, submitted_at);
        for (std::uint32_t p = 0; p < command.pageCount; ++p)
            done = std::max(
                done,
                device_.ftl().write(command.startPage + p,
                                    arrived));
        break;
      }
      case NvmeOpcode::Read: {
        const sim::Tick arrived =
            device_.hostTransfer(0, submitted_at);
        sim::Tick flash_done = arrived;
        for (std::uint32_t p = 0; p < command.pageCount; ++p) {
            const LogicalPage lpa = command.startPage + p;
            if (!device_.ftl().translate(lpa)) {
                ok = false;
                continue;
            }
            bool uncorrectable = false;
            flash_done = std::max(
                flash_done,
                device_.ftl().read(lpa, arrived, &uncorrectable));
            // Uncorrectable media errors complete the command with
            // an error status, like a real NVMe device.
            if (uncorrectable)
                ok = false;
        }
        done = ok ? device_.hostTransfer(bytes, flash_done)
                  : flash_done;
        break;
      }
      case NvmeOpcode::Trim: {
        const sim::Tick arrived =
            device_.hostTransfer(64, submitted_at);
        for (std::uint32_t p = 0; p < command.pageCount; ++p)
            device_.ftl().trim(command.startPage + p);
        done = arrived;
        break;
      }
    }

    events.schedule(
        done,
        [this, qp, command, submitted_at, done, ok] {
            QueuePair &q = queues_[qp];
            ECSSD_ASSERT(q.outstanding > 0,
                         "completion without outstanding command");
            --q.outstanding;
            ++q.stats.completed;
            q.stats.totalLatency += done - submitted_at;
            q.completions.push_back(
                NvmeCompletion{command.commandId, done, ok});
            pump();
        },
        "nvme_completion");
}

std::vector<NvmeCompletion>
NvmeController::pollCompletions(unsigned qp)
{
    ECSSD_ASSERT(qp < queues_.size(), "queue pair out of range");
    std::vector<NvmeCompletion> out;
    out.swap(queues_[qp].completions);
    return out;
}

std::size_t
NvmeController::inFlight() const
{
    std::size_t count = 0;
    for (const QueuePair &queue : queues_)
        count += queue.submissions.size() + queue.outstanding;
    return count;
}

sim::Tick
NvmeController::drain()
{
    device_.queue().run();
    ECSSD_ASSERT(inFlight() == 0, "drain left commands in flight");
    return device_.queue().now();
}

const NvmeQueueStats &
NvmeController::queueStats(unsigned qp) const
{
    ECSSD_ASSERT(qp < queues_.size(), "queue pair out of range");
    return queues_[qp].stats;
}

} // namespace ssdsim
} // namespace ecssd
