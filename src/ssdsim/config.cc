#include "config.hh"

#include "sim/logging.hh"

namespace ecssd
{
namespace ssdsim
{

namespace
{

void
requireRate(double value, const char *name)
{
    if (value < 0.0 || value > 1.0)
        sim::fatal("SsdConfig: ", name, " must be in [0, 1], got ",
                   value);
}

} // namespace

void
SsdConfig::validate() const
{
    // --- Geometry ---------------------------------------------------
    if (channels == 0)
        sim::fatal("SsdConfig: channels must be positive");
    if (diesPerChannel == 0)
        sim::fatal("SsdConfig: diesPerChannel must be positive");
    if (planesPerDie == 0)
        sim::fatal("SsdConfig: planesPerDie must be positive");
    if (blocksPerPlane == 0)
        sim::fatal("SsdConfig: blocksPerPlane must be positive");
    if (pagesPerBlock == 0)
        sim::fatal("SsdConfig: pagesPerBlock must be positive");
    if (pageBytes == 0)
        sim::fatal("SsdConfig: pageBytes must be positive");

    // --- Timing / bandwidth ----------------------------------------
    if (channelBandwidthGbps <= 0.0 || dramBandwidthGbps <= 0.0
        || hostLinkGbps <= 0.0)
        sim::fatal("SsdConfig: bandwidths must be positive "
                   "(channel ", channelBandwidthGbps, ", dram ",
                   dramBandwidthGbps, ", host ", hostLinkGbps,
                   " GB/s)");
    if (readLatencyUs < 0.0 || programLatencyUs < 0.0
        || eraseLatencyMs < 0.0 || dramAccessLatencyNs < 0.0
        || hostLinkLatencyUs < 0.0)
        sim::fatal("SsdConfig: latencies must be non-negative");

    // --- Fault rates ------------------------------------------------
    requireRate(readRetryRate, "readRetryRate");
    requireRate(eraseFailureRate, "eraseFailureRate");
    requireRate(uncorrectableReadRate, "uncorrectableReadRate");

    // --- FTL --------------------------------------------------------
    if (overProvisioning < 0.0 || overProvisioning >= 1.0)
        sim::fatal("SsdConfig: overProvisioning must be in [0, 1), "
                   "got ", overProvisioning);
    if (gcThreshold < 0.0 || gcThreshold >= 1.0)
        sim::fatal("SsdConfig: gcThreshold must be in [0, 1), got ",
                   gcThreshold);

    // --- Wear lifecycle --------------------------------------------
    if (wearErrorCoefficient < 0.0)
        sim::fatal("SsdConfig: wearErrorCoefficient must be "
                   "non-negative, got ", wearErrorCoefficient);
    if (retentionErrorCoefficient < 0.0)
        sim::fatal("SsdConfig: retentionErrorCoefficient must be "
                   "non-negative, got ", retentionErrorCoefficient);
    if (wearExponent < 0.0)
        sim::fatal("SsdConfig: wearExponent must be non-negative, "
                   "got ", wearExponent);
    if (wearRatedCycles <= 0.0)
        sim::fatal("SsdConfig: wearRatedCycles must be positive, "
                   "got ", wearRatedCycles);

    // --- Scrub / wear leveling / EOL -------------------------------
    requireRate(scrubErrorThreshold, "scrubErrorThreshold");
    if (scrubErrorThreshold > 0.0) {
        if (scrubErrorThreshold <= uncorrectableReadRate)
            sim::fatal(
                "SsdConfig: scrubErrorThreshold (",
                scrubErrorThreshold,
                ") must exceed the base uncorrectableReadRate (",
                uncorrectableReadRate,
                "): a refresh can never drop a page's rate below "
                "the base rate, so the scrub would relocate every "
                "page on every pass");
        if (scrubBudgetPages == 0)
            sim::fatal("SsdConfig: scrub enabled "
                       "(scrubErrorThreshold > 0) with a zero "
                       "scrubBudgetPages budget: no page could "
                       "ever be examined");
        if (!wearModelEnabled())
            sim::fatal(
                "SsdConfig: scrub enabled but both "
                "wearErrorCoefficient and "
                "retentionErrorCoefficient are zero: the predicted "
                "rate never changes, so pages can never cross the "
                "scrub threshold");
    }
    if (eolSpareBlocks >= blocksPerPlane)
        sim::fatal("SsdConfig: eolSpareBlocks (", eolSpareBlocks,
                   ") must be below blocksPerPlane (", blocksPerPlane,
                   "); the device would be born read-only");
    if (eolMediaErrorRate <= 0.0 || eolMediaErrorRate > 1.0)
        sim::fatal("SsdConfig: eolMediaErrorRate must be in (0, 1], "
                   "got ", eolMediaErrorRate);
}

} // namespace ssdsim
} // namespace ecssd
