/**
 * @file
 * Flash array timing model.
 *
 * Each channel owns a shared NVDDR3 bus; each die performs sensing /
 * programming internally and only holds the bus while data moves.
 * Resources are modeled as monotonic timelines: a request issued at
 * tick T reserves the die for its array operation and the channel bus
 * for its transfer, and the model returns the completion tick.  As
 * long as callers issue requests in non-decreasing time order (the
 * device front-end guarantees this), the timeline model is exactly
 * equivalent to a full message-level simulation of FIFO resources.
 *
 * With 4 dies per channel and tR = 25 us vs 4.1 us of bus time per
 * 4 KB page, a read-saturated channel is bus-bound, matching the
 * paper's assumption that the per-channel 1 GB/s is the ceiling.
 */

#ifndef ECSSD_SSDSIM_FLASH_HH
#define ECSSD_SSDSIM_FLASH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/metrics.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"
#include "sim/types.hh"
#include "ssdsim/address.hh"
#include "ssdsim/config.hh"

namespace ecssd
{
namespace ssdsim
{

/** Per-channel utilization statistics. */
struct ChannelStats
{
    std::uint64_t pagesRead = 0;
    std::uint64_t pagesProgrammed = 0;
    std::uint64_t blocksErased = 0;
    /** Reads that needed a retry (extra tR). */
    std::uint64_t readRetries = 0;
    /** Reads whose ECC failed even after the retry ladder. */
    std::uint64_t uncorrectableReads = 0;
    /** Total bus-occupied time. */
    sim::Tick busBusyTime = 0;
    /** Bytes streamed over the channel bus by reads. */
    std::uint64_t bytesRead = 0;
    /** Completion tick of the last operation on this channel. */
    sim::Tick lastDoneAt = 0;
};

/**
 * The flash array: geometry plus per-die and per-channel timelines.
 */
class FlashArray
{
  public:
    explicit FlashArray(const SsdConfig &config);

    const SsdConfig &config() const { return config_; }

    /**
     * Read one page.
     *
     * @param ppa The physical page.
     * @param issue_at Tick at which the command reaches the channel
     *        controller (the die may begin sensing immediately).
     * @param transfer_gate Earliest tick at which the bus transfer
     *        may start, e.g. because downstream buffer space frees
     *        then; 0 means "no gate".
     * @param bytes Bytes actually streamed over the bus (partial
     *        page transfers are allowed; 0 means the full page).
     *        Sensing always costs a full tR.
     * @param[out] uncorrectable Set true when ECC could not recover
     *        the page even after the retry ladder; the returned tick
     *        then includes one extra tR for the exhausted ladder and
     *        the caller must treat the data as lost (nullptr to
     *        ignore).
     * @return Tick at which the data has fully crossed the channel
     *         bus into the data buffer.
     */
    sim::Tick readPage(const PhysicalPage &ppa, sim::Tick issue_at,
                       sim::Tick transfer_gate = 0,
                       std::uint32_t bytes = 0,
                       bool *uncorrectable = nullptr);

    /**
     * Program one page (bus transfer in, then array program).
     *
     * @return Tick at which the program operation finishes.
     */
    sim::Tick programPage(const PhysicalPage &ppa, sim::Tick issue_at);

    /**
     * Erase one block.
     *
     * @param[out] failed Set true when the erase failed and the
     *        block must be retired (nullptr to ignore).
     * @return Completion tick.
     */
    sim::Tick eraseBlock(const PhysicalPage &block_addr,
                         sim::Tick issue_at,
                         bool *failed = nullptr);

    /** Per-channel statistics. */
    const ChannelStats &channelStats(unsigned channel) const;

    /**
     * Channel-level bandwidth utilization over [window_start,
     * window_end]: bus busy time / window, averaged over channels.
     */
    double busUtilization(sim::Tick window_start,
                          sim::Tick window_end) const;

    /** Completion tick of the latest operation across all channels. */
    sim::Tick lastDoneAt() const;

    /**
     * Attach (or detach, with nullptr) a span tracer.  When attached,
     * every read/program/erase emits a leaf span covering its die/bus
     * occupancy; recording never alters the returned timing.
     */
    void setSpanTracer(sim::SpanTracer *tracer) { spans_ = tracer; }

    /**
     * Snapshot the per-channel statistics into @p registry as gauges
     * ("flash.channel00.pages_read", ..., "flash.util").  Values
     * reflect activity since the last reset().
     */
    void publishMetrics(sim::MetricsRegistry &registry) const;

    /**
     * Reset all timelines and statistics to tick zero.
     *
     * Media *wear* state (erase counts, program ticks) survives: it
     * is physical device history, not a timeline, and the serving
     * layer resets timelines between batches on a device whose
     * lifetime keeps advancing.
     */
    void reset();

    // --- Wear lifecycle --------------------------------------------
    /** Erase count of the block holding @p ppa. */
    std::uint64_t blockEraseCount(const PhysicalPage &ppa) const;

    /**
     * Retention age of @p ppa's block at tick @p now: ticks since
     * the block's oldest live page was programmed.  A block never
     * programmed through this model (e.g. accelerator-mode weight
     * pages deployed before the simulation) ages from tick 0 — the
     * deployment time — which is exactly the paper's cold-FP32-row
     * worst case.
     */
    sim::Tick retentionAge(const PhysicalPage &ppa,
                           sim::Tick now) const;

    /**
     * Model-predicted uncorrectable probability of reading @p ppa at
     * tick @p now (the same value the fault draw is compared
     * against).  Equals the flat uncorrectableReadRate when the wear
     * model is disabled.
     */
    double predictedUncorrectableRate(const PhysicalPage &ppa,
                                      sim::Tick now) const;

  private:
    struct Die
    {
        /** Per-plane sense timelines; planes share one entry when
         *  multi-plane read is disabled. */
        std::vector<sim::Tick> planeFreeAt;
    };

    struct Channel
    {
        sim::Tick busFreeAt = 0;
        ChannelStats stats;
    };

    /** Media wear state of one block (sparse: only blocks the run
     *  actually erases or programs get an entry). */
    struct BlockWear
    {
        std::uint64_t eraseCount = 0;
        /** Program tick of the oldest page since the last erase. */
        sim::Tick programmedAt = 0;
        bool hasProgram = false;
    };

    Die &dieOf(const PhysicalPage &ppa);
    Channel &channelOf(const PhysicalPage &ppa);
    sim::Tick &senseTimelineOf(const PhysicalPage &ppa);

    /** Deterministic per-event fault draw in [0, 1). */
    double faultDraw(const PhysicalPage &ppa, std::uint64_t salt);

    /** Dense index of @p ppa's block across the whole array. */
    std::uint64_t blockKey(const PhysicalPage &ppa) const;

    std::uint64_t faultCounter_ = 0;

    /** Optional busy-interval span sink (null = no tracing). */
    sim::SpanTracer *spans_ = nullptr;

    SsdConfig config_;
    std::vector<Channel> channels_;
    std::vector<Die> dies_; // channel-major
    std::unordered_map<std::uint64_t, BlockWear> wear_;
};

} // namespace ssdsim
} // namespace ecssd

#endif // ECSSD_SSDSIM_FLASH_HH
