/**
 * @file
 * The SSD data buffer, reused by the inserted accelerator as its
 * staging SRAM (Section 2.2 / 4.1).
 *
 * The buffer is operated in a ping-pong discipline: while the
 * accelerator consumes one half, the flash/DRAM side fills the other.
 * The model tracks occupancy and enforces capacity so pipeline code
 * cannot silently overcommit the 4 MB.
 */

#ifndef ECSSD_SSDSIM_DATA_BUFFER_HH
#define ECSSD_SSDSIM_DATA_BUFFER_HH

#include <algorithm>
#include <cstdint>

#include "sim/logging.hh"
#include "ssdsim/config.hh"

namespace ecssd
{
namespace ssdsim
{

/** Ping-pong staging buffer with capacity accounting. */
class DataBuffer
{
  public:
    explicit DataBuffer(std::uint64_t capacity_bytes)
        : capacity_(capacity_bytes)
    {
        ECSSD_ASSERT(capacity_bytes > 0, "buffer capacity must be > 0");
    }

    /** Capacity of one ping-pong half. */
    std::uint64_t
    halfCapacity() const
    {
        return capacity_ / 2;
    }

    std::uint64_t capacity() const { return capacity_; }

    /**
     * Reserve @p bytes in the half currently being filled.
     *
     * @retval true on success.
     * @retval false when the half cannot hold the allocation (the
     *         caller must drain / flip first).
     */
    bool
    reserve(std::uint64_t bytes)
    {
        if (fillOccupancy_ + bytes > halfCapacity())
            return false;
        fillOccupancy_ += bytes;
        peakOccupancy_ =
            std::max(peakOccupancy_, fillOccupancy_ + drainOccupancy_);
        return true;
    }

    /** Release @p bytes from the half being drained. */
    void
    release(std::uint64_t bytes)
    {
        ECSSD_ASSERT(bytes <= drainOccupancy_,
                     "releasing more than is held");
        drainOccupancy_ -= bytes;
    }

    /**
     * Flip the ping-pong halves: the filled half becomes the drain
     * half.
     *
     * @pre The previous drain half must be fully released.
     */
    void
    flip()
    {
        ECSSD_ASSERT(drainOccupancy_ == 0,
                     "flipping with undrained data");
        drainOccupancy_ = fillOccupancy_;
        fillOccupancy_ = 0;
        ++flips_;
    }

    std::uint64_t fillOccupancy() const { return fillOccupancy_; }
    std::uint64_t drainOccupancy() const { return drainOccupancy_; }
    std::uint64_t peakOccupancy() const { return peakOccupancy_; }
    std::uint64_t flips() const { return flips_; }

    /** Reset to empty. */
    void
    reset()
    {
        fillOccupancy_ = 0;
        drainOccupancy_ = 0;
        peakOccupancy_ = 0;
        flips_ = 0;
    }

  private:
    std::uint64_t capacity_;
    std::uint64_t fillOccupancy_ = 0;
    std::uint64_t drainOccupancy_ = 0;
    std::uint64_t peakOccupancy_ = 0;
    std::uint64_t flips_ = 0;
};

} // namespace ssdsim
} // namespace ecssd

#endif // ECSSD_SSDSIM_DATA_BUFFER_HH
