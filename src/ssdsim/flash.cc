#include "flash.hh"

#include <algorithm>
#include <cstdio>

namespace ecssd
{
namespace ssdsim
{

namespace
{

/** "flash.channel03." style gauge-name prefix. */
std::string
channelPrefix(unsigned channel)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "flash.channel%02u.", channel);
    return buf;
}

/** Emit one leaf span covering [start, end] when tracing is on. */
void
leafSpan(sim::SpanTracer *spans, const char *op, unsigned channel,
         sim::Tick start, sim::Tick end)
{
    if (!spans)
        return;
    const auto id =
        spans->begin(std::string(op) + ".ch" + std::to_string(channel),
                     start);
    spans->end(id, end);
}

} // namespace

FlashArray::FlashArray(const SsdConfig &config)
    : config_(config), channels_(config.channels),
      dies_(static_cast<std::size_t>(config.channels)
            * config.diesPerChannel)
{
    config_.validate();
    const std::size_t planes =
        config.multiPlaneRead ? config.planesPerDie : 1;
    for (Die &die : dies_)
        die.planeFreeAt.assign(planes, 0);
}

std::uint64_t
FlashArray::blockKey(const PhysicalPage &ppa) const
{
    return ((static_cast<std::uint64_t>(ppa.channel)
                 * config_.diesPerChannel
             + ppa.die)
                * config_.planesPerDie
            + ppa.plane)
        * config_.blocksPerPlane
        + ppa.block;
}

std::uint64_t
FlashArray::blockEraseCount(const PhysicalPage &ppa) const
{
    const auto it = wear_.find(blockKey(ppa));
    return it == wear_.end() ? 0 : it->second.eraseCount;
}

sim::Tick
FlashArray::retentionAge(const PhysicalPage &ppa,
                         sim::Tick now) const
{
    const auto it = wear_.find(blockKey(ppa));
    const sim::Tick programmed_at =
        (it != wear_.end() && it->second.hasProgram)
        ? it->second.programmedAt
        : 0;
    return now > programmed_at ? now - programmed_at : 0;
}

double
FlashArray::predictedUncorrectableRate(const PhysicalPage &ppa,
                                       sim::Tick now) const
{
    if (!config_.wearModelEnabled())
        return config_.uncorrectableReadRate;
    return config_.predictedUncorrectableRate(
        blockEraseCount(ppa), retentionAge(ppa, now));
}

FlashArray::Die &
FlashArray::dieOf(const PhysicalPage &ppa)
{
    return dies_[static_cast<std::size_t>(ppa.channel)
                     * config_.diesPerChannel
                 + ppa.die];
}

FlashArray::Channel &
FlashArray::channelOf(const PhysicalPage &ppa)
{
    return channels_[ppa.channel];
}

double
FlashArray::faultDraw(const PhysicalPage &ppa, std::uint64_t salt)
{
    // splitmix64 over (address, event counter): deterministic per
    // run, uncorrelated across events.
    std::uint64_t z = (static_cast<std::uint64_t>(ppa.channel) << 48)
        ^ (static_cast<std::uint64_t>(ppa.die) << 40)
        ^ (static_cast<std::uint64_t>(ppa.block) << 20)
        ^ ppa.page ^ (salt * 0x9e3779b97f4a7c15ULL);
    z += ++faultCounter_ * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return static_cast<double>(z >> 11) * 0x1.0p-53;
}

sim::Tick &
FlashArray::senseTimelineOf(const PhysicalPage &ppa)
{
    Die &die = dieOf(ppa);
    const std::size_t slot = config_.multiPlaneRead
        ? ppa.plane % die.planeFreeAt.size()
        : 0;
    return die.planeFreeAt[slot];
}

sim::Tick
FlashArray::readPage(const PhysicalPage &ppa, sim::Tick issue_at,
                     sim::Tick transfer_gate, std::uint32_t bytes,
                     bool *uncorrectable)
{
    if (uncorrectable)
        *uncorrectable = false;
    if (bytes == 0 || bytes > config_.pageBytes)
        bytes = config_.pageBytes;
    sim::Tick &sense_timeline = senseTimelineOf(ppa);
    Channel &channel = channelOf(ppa);

    // The die senses the page into its cache register, then the
    // channel bus streams it out.  Cache-read mode lets the next
    // sense on the same die start as soon as the current one
    // finishes, so a die sustains one page per tR and the channel is
    // bus-bound only while its dies are load-balanced.  The transfer
    // gate models downstream buffer availability: sensing may run
    // ahead, the bus transfer may not.
    const sim::Tick sense_start =
        std::max(issue_at, sense_timeline);
    sim::Tick sense_done = sense_start + config_.readLatency();
    if (config_.readRetryRate > 0.0
        && faultDraw(ppa, 0x5ead) < config_.readRetryRate) {
        sense_done += config_.readLatency();
        ++channel.stats.readRetries;
    }
    // The uncorrectable probability is the flat base rate plus, when
    // the wear model is active, the block's erase-count and
    // retention-age terms evaluated at the read's issue tick.  With
    // the coefficients at zero this is exactly the base rate — same
    // gate, same draw sequence — so zero-coefficient configurations
    // stay bit-identical to the flat model.
    const double uncorrectable_rate =
        config_.wearModelEnabled()
        ? config_.predictedUncorrectableRate(
              blockEraseCount(ppa), retentionAge(ppa, issue_at))
        : config_.uncorrectableReadRate;
    if (uncorrectable_rate > 0.0
        && faultDraw(ppa, 0xecc) < uncorrectable_rate) {
        // The controller walks the whole retry ladder before giving
        // up: one more tR on top of whatever retries already ran.
        sense_done += config_.readLatency();
        ++channel.stats.uncorrectableReads;
        if (uncorrectable)
            *uncorrectable = true;
    }
    const sim::Tick transfer =
        sim::transferTime(bytes, config_.channelBandwidthGbps);
    const sim::Tick bus_start = std::max(
        {sense_done, channel.busFreeAt, transfer_gate});
    const sim::Tick done = bus_start + transfer;

    sense_timeline = sense_done;
    channel.busFreeAt = done;
    channel.stats.pagesRead += 1;
    channel.stats.bytesRead += bytes;
    channel.stats.busBusyTime += transfer;
    channel.stats.lastDoneAt =
        std::max(channel.stats.lastDoneAt, done);
    leafSpan(spans_, "flash.read", ppa.channel, sense_start, done);
    return done;
}

sim::Tick
FlashArray::programPage(const PhysicalPage &ppa, sim::Tick issue_at)
{
    sim::Tick &sense_timeline = senseTimelineOf(ppa);
    Channel &channel = channelOf(ppa);

    // Data first crosses the bus into the die's page register, then
    // the array programs; the bus frees as soon as the transfer ends.
    const sim::Tick bus_start =
        std::max(issue_at, channel.busFreeAt);
    const sim::Tick transfer_done =
        bus_start + config_.pageTransferTime();
    const sim::Tick program_start =
        std::max(transfer_done, sense_timeline);
    const sim::Tick done = program_start + config_.programLatency();

    if (config_.wearModelEnabled()) {
        // Retention is tracked per block at oldest-page granularity:
        // the first program after an erase stamps the block, and the
        // stamp survives until the next erase.
        BlockWear &wear = wear_[blockKey(ppa)];
        if (!wear.hasProgram) {
            wear.programmedAt = program_start;
            wear.hasProgram = true;
        }
    }

    sense_timeline = done;
    channel.busFreeAt = transfer_done;
    channel.stats.pagesProgrammed += 1;
    channel.stats.busBusyTime += config_.pageTransferTime();
    channel.stats.lastDoneAt =
        std::max(channel.stats.lastDoneAt, done);
    leafSpan(spans_, "flash.program", ppa.channel, bus_start, done);
    return done;
}

sim::Tick
FlashArray::eraseBlock(const PhysicalPage &block_addr,
                       sim::Tick issue_at, bool *failed)
{
    sim::Tick &sense_timeline = senseTimelineOf(block_addr);
    Channel &channel = channelOf(block_addr);

    const sim::Tick start = std::max(issue_at, sense_timeline);
    const sim::Tick done = start + config_.eraseLatency();
    sense_timeline = done;
    if (config_.wearModelEnabled()) {
        BlockWear &wear = wear_[blockKey(block_addr)];
        ++wear.eraseCount;
        wear.hasProgram = false; // Erase resets retention age.
    }
    if (failed) {
        *failed = config_.eraseFailureRate > 0.0
            && faultDraw(block_addr, 0xdead)
                < config_.eraseFailureRate;
    }
    channel.stats.blocksErased += 1;
    channel.stats.lastDoneAt =
        std::max(channel.stats.lastDoneAt, done);
    leafSpan(spans_, "flash.erase", block_addr.channel, start, done);
    return done;
}

const ChannelStats &
FlashArray::channelStats(unsigned channel) const
{
    ECSSD_ASSERT(channel < channels_.size(),
                 "channel index out of range");
    return channels_[channel].stats;
}

double
FlashArray::busUtilization(sim::Tick window_start,
                           sim::Tick window_end) const
{
    if (window_end <= window_start)
        return 0.0;
    const double window =
        static_cast<double>(window_end - window_start);
    double total = 0.0;
    for (const Channel &channel : channels_)
        total += static_cast<double>(channel.stats.busBusyTime);
    return total / (window * static_cast<double>(channels_.size()));
}

sim::Tick
FlashArray::lastDoneAt() const
{
    sim::Tick last = 0;
    for (const Channel &channel : channels_)
        last = std::max(last, channel.stats.lastDoneAt);
    return last;
}

void
FlashArray::publishMetrics(sim::MetricsRegistry &registry) const
{
    const sim::Tick window = lastDoneAt();
    for (unsigned c = 0; c < channels_.size(); ++c) {
        const ChannelStats &stats = channels_[c].stats;
        const std::string prefix = channelPrefix(c);
        registry.gaugeSet(prefix + "pages_read",
                          static_cast<double>(stats.pagesRead));
        registry.gaugeSet(prefix + "pages_programmed",
                          static_cast<double>(stats.pagesProgrammed));
        registry.gaugeSet(prefix + "blocks_erased",
                          static_cast<double>(stats.blocksErased));
        registry.gaugeSet(prefix + "read_retries",
                          static_cast<double>(stats.readRetries));
        registry.gaugeSet(
            prefix + "uncorrectable_reads",
            static_cast<double>(stats.uncorrectableReads));
        registry.gaugeSet(prefix + "bytes_read",
                          static_cast<double>(stats.bytesRead));
        registry.gaugeSet(prefix + "bus_busy_us",
                          sim::tickToUs(stats.busBusyTime));
        registry.gaugeSet(
            prefix + "util",
            window == 0
                ? 0.0
                : static_cast<double>(stats.busBusyTime)
                    / static_cast<double>(window));
    }
    registry.gaugeSet("flash.util", busUtilization(0, window));
}

void
FlashArray::reset()
{
    for (Channel &channel : channels_) {
        channel.busFreeAt = 0;
        channel.stats = ChannelStats{};
    }
    for (Die &die : dies_)
        std::fill(die.planeFreeAt.begin(), die.planeFreeAt.end(),
                  0);
}

} // namespace ssdsim
} // namespace ecssd
