/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue owns simulated time.  Components schedule
 * callbacks at absolute or relative ticks; the queue fires them in
 * (tick, insertion-order) order so same-tick events are deterministic.
 */

#ifndef ECSSD_SIM_EVENT_QUEUE_HH
#define ECSSD_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <string>
#include <unordered_set>
#include <vector>

#include "types.hh"

namespace ecssd
{
namespace sim
{

/** Callback fired when an event's time arrives. */
using EventAction = std::function<void()>;

/**
 * The simulation event queue.
 *
 * Events are value objects held inside the queue; cancellation is
 * handled by id so components never hold dangling event pointers.
 */
class EventQueue
{
  public:
    /** Opaque handle for cancelling a scheduled event. */
    using EventId = std::uint64_t;

    EventQueue() = default;

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Number of pending (non-cancelled) events. */
    std::size_t pendingEvents() const { return size_; }

    /**
     * Schedule @p action at absolute time @p when.
     *
     * @pre when >= now(); scheduling in the past is a simulator bug.
     * @return An id usable with cancel().
     */
    EventId schedule(Tick when, EventAction action,
                     std::string label = {});

    /** Schedule @p action @p delay ticks after the current time. */
    EventId
    scheduleAfter(Tick delay, EventAction action, std::string label = {})
    {
        return schedule(now_ + delay, std::move(action),
                        std::move(label));
    }

    /**
     * Cancel a pending event.
     *
     * @retval true if the event was pending and is now cancelled.
     * @retval false if it already fired or was already cancelled.
     */
    bool cancel(EventId id);

    /**
     * Run until the queue drains.
     *
     * @return The time of the last fired event.
     */
    Tick run();

    /**
     * Run events with time <= @p limit, then stop with now() == limit
     * (or earlier if the queue drained first).
     *
     * @return The final simulated time.
     */
    Tick runUntil(Tick limit);

    /** Fire exactly one event if any is pending. @return true if fired. */
    bool step();

    /** Total number of events fired since construction. */
    std::uint64_t firedEvents() const { return fired_; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t sequence;
        EventId id;
        EventAction action;
        std::string label;

        bool
        operator>(const Entry &other) const
        {
            if (when != other.when)
                return when > other.when;
            return sequence > other.sequence;
        }
    };

    bool isCancelled(EventId id) const;

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>>
        heap_;
    std::vector<EventId> cancelled_;
    /** Ids scheduled but not yet fired or cancelled. */
    std::unordered_set<EventId> pending_;
    Tick now_ = 0;
    std::uint64_t nextSequence_ = 0;
    std::uint64_t nextId_ = 1;
    std::uint64_t fired_ = 0;
    std::size_t size_ = 0;
};

} // namespace sim
} // namespace ecssd

#endif // ECSSD_SIM_EVENT_QUEUE_HH
