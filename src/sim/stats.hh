/**
 * @file
 * Lightweight statistics collection.
 *
 * Components register named statistics with a StatGroup; benches and
 * tests read them back by name or dump the whole group.  The design is
 * a slimmed-down take on gem5's stats package: scalars, averages, and
 * fixed-bucket histograms/distributions.
 */

#ifndef ECSSD_SIM_STATS_HH
#define ECSSD_SIM_STATS_HH

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace ecssd
{
namespace sim
{

/**
 * A monotonically-increasing event counter.
 *
 * Unlike Scalar it is integral and saturates at the 64-bit maximum
 * instead of wrapping, so a counter that overflows during a very long
 * run pins at "a lot" rather than silently restarting from zero (which
 * would corrupt baseline comparisons).
 */
class Counter
{
  public:
    Counter() = default;

    Counter &
    operator+=(std::uint64_t n)
    {
        value_ = (value_ > ~std::uint64_t(0) - n) ? ~std::uint64_t(0)
                                                  : value_ + n;
        return *this;
    }

    Counter &operator++() { return *this += 1; }
    void reset() { value_ = 0; }

    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A named monotonically-updated scalar statistic. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    void reset() { value_ = 0.0; }

    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Tracks count/sum/min/max/mean of a sampled quantity. */
class Distribution
{
  public:
    Distribution() = default;

    /** Record one sample. */
    void sample(double v);

    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const;
    /** Population variance of the recorded samples. */
    double variance() const;

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSquares_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Fixed-width-bucket histogram over [lo, hi). */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets);

    /** Record one sample; out-of-range samples go to under/overflow. */
    void sample(double v);

    void reset();

    std::size_t buckets() const { return counts_.size(); }
    std::uint64_t bucketCount(std::size_t i) const { return counts_[i]; }
    std::uint64_t underflow() const { return underflow_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t totalSamples() const { return total_; }
    double bucketLow(std::size_t i) const;
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    double sum() const { return sum_; }
    double mean() const;
    double min() const { return total_ ? min_ : 0.0; }
    double max() const { return total_ ? max_ : 0.0; }

    /**
     * The q-quantile estimated from the bucket counts by linear
     * interpolation within the covering bucket.  Samples that landed
     * in under/overflow are attributed to the range edges, so the
     * estimate stays monotone even for out-of-range tails.  Returns 0
     * for an empty histogram.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }
    double p999() const { return quantile(0.999); }

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t underflow_ = 0;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Keeps every sample and answers arbitrary quantile queries; meant
 * for bounded-size latency studies (serving experiments), not
 * unbounded streams.
 */
class Percentiles
{
  public:
    Percentiles() = default;

    /** Record one sample. */
    void sample(double v);

    std::uint64_t count() const { return samples_.size(); }

    /**
     * The q-quantile of the recorded samples (nearest-rank).
     *
     * @param q Quantile in [0, 1]; 0.5 = median, 0.99 = p99.
     */
    double quantile(double q) const;

    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    void reset();

  private:
    // Kept lazily sorted: sorting happens on query, invalidated on
    // sample.
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
};

/**
 * A named collection of statistics; owns nothing, only indexes
 * statistics that live inside their components.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name) : name_(std::move(name)) {}

    /** Register a scalar under @p name (must outlive the group). */
    void addScalar(const std::string &name, const Scalar *stat);
    void addDistribution(const std::string &name,
                         const Distribution *stat);

    const std::string &name() const { return name_; }

    /** Look up a registered scalar value; fatal if missing. */
    double scalar(const std::string &name) const;
    const Distribution &distribution(const std::string &name) const;

    /** Write "group.stat value" lines for everything registered. */
    void dump(std::ostream &os) const;

  private:
    std::string name_;
    std::map<std::string, const Scalar *> scalars_;
    std::map<std::string, const Distribution *> distributions_;
};

} // namespace sim
} // namespace ecssd

#endif // ECSSD_SIM_STATS_HH
