/**
 * @file
 * Status-message and error-reporting helpers.
 *
 * Follows the gem5 convention: panic() flags simulator bugs and aborts,
 * fatal() flags user/configuration errors and exits cleanly, warn() and
 * inform() report conditions without stopping the run.
 */

#ifndef ECSSD_SIM_LOGGING_HH
#define ECSSD_SIM_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>
#include <string>

namespace ecssd
{
namespace sim
{

/** Thrown by fatal() so tests can intercept configuration errors. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &what_arg)
        : std::runtime_error(what_arg)
    {}
};

/** Thrown by panic() so tests can intercept internal invariant failures. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &what_arg)
        : std::logic_error(what_arg)
    {}
};

/** Global verbosity switch for inform()/warn() output. */
bool logVerbose();

/** Enable or disable inform()/warn() console output. */
void setLogVerbose(bool enabled);

namespace detail
{

inline void
formatInto(std::ostringstream &)
{
}

template <typename T, typename... Rest>
void
formatInto(std::ostringstream &os, const T &head, const Rest &...rest)
{
    os << head;
    formatInto(os, rest...);
}

template <typename... Args>
std::string
format(const Args &...args)
{
    std::ostringstream os;
    formatInto(os, args...);
    return os.str();
}

} // namespace detail

/**
 * Report an unrecoverable internal error (a simulator bug).
 *
 * @throws PanicError always.
 */
template <typename... Args>
[[noreturn]] void
panic(const Args &...args)
{
    const std::string msg = detail::format(args...);
    std::cerr << "panic: " << msg << std::endl;
    throw PanicError(msg);
}

/**
 * Report an unrecoverable user or configuration error.
 *
 * @throws FatalError always.
 */
template <typename... Args>
[[noreturn]] void
fatal(const Args &...args)
{
    const std::string msg = detail::format(args...);
    std::cerr << "fatal: " << msg << std::endl;
    throw FatalError(msg);
}

/** Report suspicious-but-survivable conditions. */
template <typename... Args>
void
warn(const Args &...args)
{
    if (logVerbose())
        std::cerr << "warn: " << detail::format(args...) << std::endl;
}

/** Report normal operating status. */
template <typename... Args>
void
inform(const Args &...args)
{
    if (logVerbose())
        std::cout << "info: " << detail::format(args...) << std::endl;
}

/**
 * Check a simulator invariant; panic with a message if it fails.
 */
#define ECSSD_ASSERT(cond, ...)                                          \
    do {                                                                 \
        if (!(cond)) {                                                   \
            ::ecssd::sim::panic("assertion '", #cond, "' failed at ",    \
                                __FILE__, ":", __LINE__, ": ",           \
                                ##__VA_ARGS__);                          \
        }                                                                \
    } while (0)

} // namespace sim
} // namespace ecssd

#endif // ECSSD_SIM_LOGGING_HH
