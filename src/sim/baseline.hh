/**
 * @file
 * Bench-baseline comparison: the perf-regression gate.
 *
 * Baselines are flat JSON documents (see bench/bench_smoke.cc) with
 * three top-level sections: "latency" (simulated times, utilizations,
 * throughputs — allowed to drift within a latency tolerance),
 * "counters" (deterministic event counts — held to a much tighter
 * tolerance) and "trend" (observability-only series such as cache
 * hit-rates — recorded for trend lines, never gated).
 * compareBaselines() diffs a current run against the checked-in
 * baseline and reports every violation; CI fails on any.
 */

#ifndef ECSSD_SIM_BASELINE_HH
#define ECSSD_SIM_BASELINE_HH

#include <map>
#include <string>
#include <vector>

namespace ecssd
{
namespace sim
{

/** Drift tolerances of the baseline gate (relative). */
struct BaselineTolerance
{
    /** Allowed relative drift for "latency." metrics. */
    double latency = 0.10;
    /** Allowed relative drift for everything else ("counters."). */
    double counter = 0.01;
};

/** True when @p key is held to the latency tolerance. */
bool isLatencyKey(const std::string &key);

/** True when @p key is trend-only: tracked, never gated. */
bool isTrendKey(const std::string &key);

/**
 * Compare @p current against @p baseline.
 *
 * Every baseline key must exist in @p current and sit within its
 * tolerance; keys present only in @p current are new metrics and are
 * ignored (checking in a fresh baseline picks them up).  "trend."
 * keys are exempt entirely — workload-dependent ratios like cache
 * hit-rate carry no pass/fail meaning, so they never gate.
 *
 * @return Human-readable violation descriptions; empty = pass.
 */
std::vector<std::string> compareBaselines(
    const std::map<std::string, double> &baseline,
    const std::map<std::string, double> &current,
    const BaselineTolerance &tolerance = BaselineTolerance{});

} // namespace sim
} // namespace ecssd

#endif // ECSSD_SIM_BASELINE_HH
