/**
 * @file
 * Category-gated debug tracing, in the spirit of gem5's DPRINTF.
 *
 * Components emit trace lines under a named category; categories are
 * enabled programmatically or via the ECSSD_TRACE environment
 * variable (comma-separated list, e.g. ECSSD_TRACE=ftl,pipeline).
 * Disabled categories cost one boolean test.
 */

#ifndef ECSSD_SIM_TRACE_HH
#define ECSSD_SIM_TRACE_HH

#include <iostream>
#include <string>

#include "logging.hh"
#include "types.hh"

namespace ecssd
{
namespace sim
{

/** Trace categories, one bit each. */
enum class TraceCategory : unsigned
{
    Flash = 1u << 0,
    Ftl = 1u << 1,
    Dram = 1u << 2,
    Nvme = 1u << 3,
    Pipeline = 1u << 4,
    Layout = 1u << 5,
    Api = 1u << 6,
};

/** Enable/disable one category at runtime. */
void setTraceEnabled(TraceCategory category, bool enabled);

/** True when the category is enabled. */
bool traceEnabled(TraceCategory category);

/** Parse a comma-separated category list ("ftl,pipeline,all"). */
void enableTraceCategories(const std::string &list);

/** Apply the ECSSD_TRACE environment variable (idempotent). */
void initTraceFromEnvironment();

/** Emit one trace line (internal; use ECSSD_TRACE_LOG). */
void traceLine(TraceCategory category, Tick when,
               const std::string &message);

/** Category name for the trace prefix. */
const char *traceCategoryName(TraceCategory category);

/**
 * Emit a trace line when the category is enabled.
 *
 * @param category A TraceCategory value.
 * @param when Current simulated tick.
 * @param ... Stream-style message parts.
 */
#define ECSSD_TRACE_LOG(category, when, ...)                          \
    do {                                                              \
        if (::ecssd::sim::traceEnabled(category)) {                   \
            ::ecssd::sim::traceLine(                                  \
                category, when,                                       \
                ::ecssd::sim::detail::format(__VA_ARGS__));           \
        }                                                             \
    } while (0)

} // namespace sim
} // namespace ecssd

#endif // ECSSD_SIM_TRACE_HH
