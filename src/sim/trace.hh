/**
 * @file
 * Category-gated debug tracing, in the spirit of gem5's DPRINTF.
 *
 * Components emit trace lines under a named category; categories are
 * enabled programmatically or via the ECSSD_TRACE environment
 * variable (comma-separated list, e.g. ECSSD_TRACE=ftl,pipeline).
 * Disabled categories cost one boolean test.
 */

#ifndef ECSSD_SIM_TRACE_HH
#define ECSSD_SIM_TRACE_HH

#include <cstdint>
#include <iostream>
#include <string>
#include <vector>

#include "logging.hh"
#include "types.hh"

namespace ecssd
{
namespace sim
{

/** Trace categories, one bit each. */
enum class TraceCategory : unsigned
{
    Flash = 1u << 0,
    Ftl = 1u << 1,
    Dram = 1u << 2,
    Nvme = 1u << 3,
    Pipeline = 1u << 4,
    Layout = 1u << 5,
    Api = 1u << 6,
};

/** Enable/disable one category at runtime. */
void setTraceEnabled(TraceCategory category, bool enabled);

/** True when the category is enabled. */
bool traceEnabled(TraceCategory category);

/** Parse a comma-separated category list ("ftl,pipeline,all"). */
void enableTraceCategories(const std::string &list);

/** Apply the ECSSD_TRACE environment variable (idempotent). */
void initTraceFromEnvironment();

/** Emit one trace line (internal; use ECSSD_TRACE_LOG). */
void traceLine(TraceCategory category, Tick when,
               const std::string &message);

/** Category name for the trace prefix. */
const char *traceCategoryName(TraceCategory category);

/**
 * Emit a trace line when the category is enabled.
 *
 * @param category A TraceCategory value.
 * @param when Current simulated tick.
 * @param ... Stream-style message parts.
 */
#define ECSSD_TRACE_LOG(category, when, ...)                          \
    do {                                                              \
        if (::ecssd::sim::traceEnabled(category)) {                   \
            ::ecssd::sim::traceLine(                                  \
                category, when,                                       \
                ::ecssd::sim::detail::format(__VA_ARGS__));           \
        }                                                             \
    } while (0)

// ---------------------------------------------------------------------
// Hierarchical span tracing
// ---------------------------------------------------------------------

/** Identifier of one span (1-based begin order; 0 = none). */
using SpanId = std::uint64_t;

/** One completed span: a named interval of simulated time. */
struct SpanRecord
{
    /** Begin-order id (1-based). */
    std::uint64_t id = 0;
    /** Id of the enclosing span; 0 for top-level spans. */
    std::uint64_t parent = 0;
    std::string name;
    /** Nesting depth; 0 = top-level. */
    unsigned depth = 0;
    sim::Tick start = 0;
    sim::Tick end = 0;

    sim::Tick duration() const { return end - start; }
};

/**
 * Records begin/end spans keyed on the simulated clock.
 *
 * Spans nest by call order (a child must end before its parent), which
 * mirrors how the pipeline drives the timing models; sibling spans may
 * still overlap in *simulated* time, e.g. the INT4 stage of tile t+1
 * against the FP32 stage of tile t.  Mismatched ends and
 * backwards-running spans are simulator bugs and panic.
 *
 * The tracer keeps at most @c maxSpans completed records (deeply
 * instrumented runs would otherwise grow without bound); spans beyond
 * the cap are counted in droppedSpans() but not stored.  All state is
 * deterministic: two identical runs produce byte-identical dumps.
 */
class SpanTracer
{
  public:
    using SpanId = sim::SpanId;

    explicit SpanTracer(std::size_t max_spans = 1u << 16)
        : maxSpans_(max_spans)
    {}

    /** Open a span at simulated tick @p at; returns its id.  The
     *  recorded name is namePrefix() + @p name. */
    SpanId begin(const std::string &name, Tick at);

    /**
     * Namespace prefix prepended to every span name recorded while it
     * is set ("tenant.a." turns "pipeline.batch" into
     * "tenant.a.pipeline.batch").  Multi-tenant layers set it around
     * each tenant-scoped call; the empty default records names
     * unchanged, keeping single-tenant dumps byte-identical.
     */
    void setNamePrefix(std::string prefix)
    {
        namePrefix_ = std::move(prefix);
    }

    const std::string &namePrefix() const { return namePrefix_; }

    /**
     * Close span @p id at tick @p at.  @p id must be the innermost
     * open span (panic otherwise), and @p at must not precede its
     * begin tick.
     */
    void end(SpanId id, Tick at);

    /** Spans currently open. */
    std::size_t openSpans() const { return stack_.size(); }

    /** Completed spans retained (capped at maxSpans). */
    const std::vector<SpanRecord> &records() const { return records_; }

    /** Completed spans discarded because the cap was reached. */
    std::uint64_t droppedSpans() const { return dropped_; }

    /** Drop all records and any open spans. */
    void reset();

    /**
     * Dump the completed spans as a JSON array (deterministic:
     * completion order, fixed field order).
     */
    void writeJson(std::ostream &os) const;

  private:
    struct OpenSpan
    {
        SpanId id;
        SpanId parent;
        std::string name;
        Tick start;
    };

    std::size_t maxSpans_;
    /** Namespace prefix applied by begin() ("" = names unchanged). */
    std::string namePrefix_;
    SpanId nextId_ = 1;
    std::vector<OpenSpan> stack_;
    std::vector<SpanRecord> records_;
    std::uint64_t dropped_ = 0;
};

/**
 * RAII helper for span emission in instrumented code.  A null tracer
 * makes the whole object a no-op, which is the zero-cost-when-disabled
 * path.
 */
class ScopedSpan
{
  public:
    ScopedSpan(SpanTracer *tracer, const char *name, Tick at)
        : tracer_(tracer)
    {
        if (tracer_)
            id_ = tracer_->begin(name, at);
    }

    /** Close the span at simulated tick @p at (idempotent). */
    void
    close(Tick at)
    {
        if (tracer_) {
            tracer_->end(id_, at);
            tracer_ = nullptr;
        }
    }

    // A span left open is visible through SpanTracer::openSpans();
    // the destructor stays lenient so unwinding after a panic in an
    // instrumented region cannot cascade into std::terminate.
    ~ScopedSpan() = default;

  private:
    SpanTracer *tracer_;
    SpanTracer::SpanId id_ = 0;
};

} // namespace sim
} // namespace ecssd

#endif // ECSSD_SIM_TRACE_HH
